// Small-n parallel-vs-sequential equivalence smoke for the chunked
// scheduler. Built and run under ThreadSanitizer by tools/sanitizer_smoke.sh
// (ctest target tsan_shard_scheduler_smoke) so every data race in the
// claim/cancel/merge paths fails the suite, not just slow manual runs.
//
// Exercises the three hot generators plus the stop_on_full_cover
// cancellation path at 4 threads and exits nonzero on any output mismatch.

#include <cstdio>
#include <vector>

#include "core/confidence.h"
#include "datagen/job_log.h"
#include "interval/generator.h"
#include "series/cumulative.h"

int main() {
  using namespace conservation;

  datagen::JobLogParams params;
  params.num_ticks = 20000;
  const datagen::JobLogData jobs = datagen::GenerateJobLog(params);
  const series::CumulativeSeries cumulative(jobs.counts);
  const core::ConfidenceEvaluator eval(&cumulative,
                                       core::ConfidenceModel::kBalance);
  const double whole = *eval.Confidence(1, params.num_ticks);

  struct Config {
    const char* name;
    interval::AlgorithmKind kind;
    core::TableauType type;
    double c_hat;
    bool stop_on_full_cover;
  };
  const Config configs[] = {
      {"area/hold", interval::AlgorithmKind::kAreaBased,
       core::TableauType::kHold, whole * 1.000001, false},
      {"area/fail", interval::AlgorithmKind::kAreaBased,
       core::TableauType::kFail, whole * 0.999, false},
      {"nab_opt/hold", interval::AlgorithmKind::kNonAreaBasedOpt,
       core::TableauType::kHold, whole * 1.000001, false},
      // Whole data qualifies -> the full-span early exit fires and the
      // cancellation flag/signal-chunk handshake runs.
      {"area/hold full-cover", interval::AlgorithmKind::kAreaBased,
       core::TableauType::kHold, whole * 0.5, true},
  };

  int failures = 0;
  for (const Config& config : configs) {
    interval::GeneratorOptions options;
    options.type = config.type;
    options.c_hat = config.c_hat;
    options.epsilon = 0.02;
    options.stop_on_full_cover = config.stop_on_full_cover;
    const auto generator = interval::MakeGenerator(config.kind);

    options.num_threads = 1;
    const std::vector<interval::Interval> sequential =
        generator->Generate(eval, options, nullptr);

    options.num_threads = 4;
    interval::GeneratorStats stats;
    const std::vector<interval::Interval> parallel =
        generator->Generate(eval, options, &stats);

    const bool identical = parallel == sequential;
    std::printf("%-22s candidates=%zu shards=%lld chunks=%lld %s\n",
                config.name, sequential.size(),
                static_cast<long long>(stats.shards),
                static_cast<long long>(stats.chunks),
                identical ? "OK" : "MISMATCH");
    if (!identical) ++failures;
  }
  if (failures > 0) {
    std::fprintf(stderr, "shard_smoke: %d config(s) diverged\n", failures);
    return 1;
  }
  std::printf("shard_smoke: parallel output identical to sequential\n");
  return 0;
}
