#!/usr/bin/env python3
"""Validate a Prometheus text-exposition (v0.0.4) payload written by the
obs scrape endpoint (obs::ToPrometheusText / crdiscover --serve_metrics).

Checks the format invariants the exporter promises, so an exposition
regression fails ctest instead of silently producing a payload a real
Prometheus server rejects:

  * every non-comment line parses as `name[{labels}] value`;
  * metric names match [a-zA-Z_:][a-zA-Z0-9_:]* and label names
    [a-zA-Z_][a-zA-Z0-9_]*; label values use valid \\\\ \\" \\n escapes;
  * every sample value parses as a float (+Inf/-Inf/NaN allowed);
  * each `# TYPE` line names a metric at most once and appears before
    that metric's first sample; every sample's family has a TYPE;
  * histogram families: per label partition, _bucket counts are cumulative
    (non-decreasing in le order), an le="+Inf" bucket exists and equals
    the partition's _count;
  * summary families: quantile labels parse as floats in [0, 1].

Optional requirements (for smoke tests):
  --require-series NAME   a sample with this exact metric name exists
                          (repeatable)
  --require-label k=v     some sample carries this label pair (repeatable)

Usage: tools/validate_prom.py METRICS.txt [--require-series N]...
Stdlib only; exit 0 on a valid payload, 1 with a diagnostic otherwise.
"""

import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# name, optional {labels}, value (no timestamps: the exporter never emits
# them).
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$")
TYPE_RE = re.compile(r"^# TYPE\s+([a-zA-Z_:][a-zA-Z0-9_:]*)\s+(\w+)$")
VALID_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def fail(message):
    print(f"validate_prom: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def parse_value(text):
    if text in ("+Inf", "Inf"):
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        return None


def parse_labels(block, where):
    """`{a="x",b="y"}` -> dict; fails on malformed quoting or names."""
    labels = {}
    body = block[1:-1]
    at = 0
    while at < len(body):
        eq = body.find("=", at)
        if eq < 0 or eq + 1 >= len(body) or body[eq + 1] != '"':
            fail(f"{where}: malformed label block {block!r}")
        name = body[at:eq]
        if not LABEL_NAME_RE.match(name):
            fail(f"{where}: bad label name {name!r}")
        value = []
        v = eq + 2
        closed = False
        while v < len(body):
            c = body[v]
            if c == "\\":
                if v + 1 >= len(body) or body[v + 1] not in ('\\', '"', "n"):
                    fail(f"{where}: bad escape in label value")
                value.append("\n" if body[v + 1] == "n" else body[v + 1])
                v += 2
            elif c == '"':
                closed = True
                v += 1
                break
            else:
                value.append(c)
                v += 1
        if not closed:
            fail(f"{where}: unterminated label value in {block!r}")
        if name in labels:
            fail(f"{where}: duplicate label {name!r}")
        labels[name] = "".join(value)
        at = v
        if at < len(body):
            if body[at] != ",":
                fail(f"{where}: expected ',' between labels in {block!r}")
            at += 1
    return labels


def family_of(name):
    """Strips the histogram/summary sample suffixes to the TYPE'd family."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def partition_key(labels, drop):
    return tuple(sorted((k, v) for k, v in labels.items() if k not in drop))


def main():
    args = sys.argv[1:]
    require_series = []
    require_labels = []
    paths = []
    k = 0
    while k < len(args):
        if args[k] == "--require-series":
            k += 1
            require_series.append(args[k])
        elif args[k] == "--require-label":
            k += 1
            key, _, value = args[k].partition("=")
            require_labels.append((key, value))
        else:
            paths.append(args[k])
        k += 1
    if len(paths) != 1:
        fail("usage: validate_prom.py METRICS.txt [--require-series N]...")
    path = paths[0]
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().split("\n")
    except OSError as error:
        fail(f"{path}: {error}")

    types = {}       # family -> type
    samples = []     # (name, labels, value)
    seen_names = set()
    buckets = {}     # (family, partition) -> list of (le, count)
    counts = {}      # (family, partition) -> _count value

    for lineno, line in enumerate(lines, start=1):
        where = f"{path}:{lineno}"
        if not line:
            continue
        if line.startswith("#"):
            match = TYPE_RE.match(line)
            if match:
                name, kind = match.groups()
                if kind not in VALID_TYPES:
                    fail(f"{where}: unknown TYPE {kind!r}")
                if name in types:
                    fail(f"{where}: duplicate TYPE for {name!r}")
                if name in seen_names:
                    fail(f"{where}: TYPE after samples of {name!r}")
                types[name] = kind
            # Other comments (# HELP, bare #) are legal and ignored.
            continue
        match = SAMPLE_RE.match(line)
        if not match:
            fail(f"{where}: unparseable sample line {line!r}")
        name, label_block, value_text = match.groups()
        if not NAME_RE.match(name):
            fail(f"{where}: bad metric name {name!r}")
        labels = parse_labels(label_block, where) if label_block else {}
        value = parse_value(value_text)
        if value is None:
            fail(f"{where}: bad sample value {value_text!r}")
        family = family_of(name)
        seen_names.add(family)
        if family not in types:
            fail(f"{where}: sample {name!r} has no preceding TYPE")
        kind = types[family]
        samples.append((name, labels, value))

        if kind == "histogram" and name.endswith("_bucket"):
            if "le" not in labels:
                fail(f"{where}: histogram bucket without le label")
            le = parse_value(labels["le"])
            if le is None:
                fail(f"{where}: bad le value {labels['le']!r}")
            key = (family, partition_key(labels, {"le"}))
            buckets.setdefault(key, []).append((le, value))
        elif kind == "histogram" and name.endswith("_count"):
            counts[(family, partition_key(labels, set()))] = value
        elif kind == "summary" and "quantile" in labels:
            q = parse_value(labels["quantile"])
            if q is None or not (0.0 <= q <= 1.0):
                fail(f"{where}: summary quantile {labels['quantile']!r} "
                     "not in [0, 1]")

    for (family, partition), entries in buckets.items():
        # The exporter emits buckets in ascending le order; verify rather
        # than sort so an ordering regression is caught too.
        les = [le for le, _ in entries]
        if les != sorted(les):
            fail(f"{family}{dict(partition)}: buckets not in le order")
        values = [count for _, count in entries]
        if any(b < a for a, b in zip(values, values[1:])):
            fail(f"{family}{dict(partition)}: bucket counts not cumulative")
        if not math.isinf(les[-1]):
            fail(f"{family}{dict(partition)}: missing le=\"+Inf\" bucket")
        total = counts.get((family, partition))
        if total is None:
            fail(f"{family}{dict(partition)}: histogram without _count")
        if values[-1] != total:
            fail(f"{family}{dict(partition)}: +Inf bucket {values[-1]} != "
                 f"_count {total}")

    if not samples:
        fail("no samples; a scrape of a live process is never empty")

    sample_names = {name for name, _, _ in samples}
    for name in require_series:
        if name not in sample_names:
            fail(f"required series {name!r} not found")
    all_label_pairs = {(k, v) for _, labels, _ in samples
                       for k, v in labels.items()}
    for key, value in require_labels:
        if (key, value) not in all_label_pairs:
            fail(f"required label {key}={value!r} not found on any sample")

    print(f"validate_prom: OK: {len(samples)} samples, "
          f"{len(types)} families, {len(buckets)} histogram partitions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
