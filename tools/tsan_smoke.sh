#!/usr/bin/env bash
# Builds shard_smoke under ThreadSanitizer and runs it: a fast
# parallel-vs-sequential equivalence check over the chunked scheduler's
# claim/cancel/merge paths. Registered in ctest as
# tsan_shard_scheduler_smoke so TSan coverage of the scheduler is enforced
# on every full test run, not just when someone remembers check_tsan.sh.
#
# Usage: tools/tsan_smoke.sh [build-dir]   (default: <repo>/build-tsan)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-tsan}"

cmake -B "${build_dir}" -S "${repo_root}" -DCONSERVATION_SANITIZE=thread
cmake --build "${build_dir}" -j --target shard_smoke

# halt_on_error: make the first race fail the run instead of scrolling by.
TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
  "${build_dir}/tools/shard_smoke"
