#!/usr/bin/env bash
# Builds a smoke binary under ThreadSanitizer and runs it: fast
# parallel-vs-sequential equivalence checks over the chunked generation
# scheduler (shard_smoke) and the cover-phase parallel seeding
# (cover_smoke). Registered in ctest as tsan_shard_scheduler_smoke and
# tsan_cover_seeding_smoke so TSan coverage of both parallel paths is
# enforced on every full test run, not just when someone remembers
# check_tsan.sh.
#
# Usage: tools/tsan_smoke.sh [build-dir] [target]
#   build-dir  default: <repo>/build-tsan
#   target     default: shard_smoke (also: cover_smoke)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-tsan}"
target="${2:-shard_smoke}"

cmake -B "${build_dir}" -S "${repo_root}" -DCONSERVATION_SANITIZE=thread
cmake --build "${build_dir}" -j --target "${target}"

# halt_on_error: make the first race fail the run instead of scrolling by.
TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
  "${build_dir}/tools/${target}"
