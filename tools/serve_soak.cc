// serve_soak: concurrency soak of the serving daemon over real sockets.
//
// In-process ServeDaemon with eviction and periodic cover refresh enabled,
// hammered by several client threads over loopback TCP — each thread owns
// a connection and round-robins appends across its tenant shard, honoring
// backpressure. After the drivers finish, the daemon drains and every
// tenant's maintained tableau is cross-checked bit-identical against
// from-scratch DiscoverTableau over the tenant's filtered log — the
// end-to-end statement that batching, scheduling, deferred covers,
// eviction and re-faulting changed nothing semantically.
//
// Run plain (divergence) and under TSan via tools/sanitizer_smoke.sh
// (memory model), like the other concurrency smokes. Sized to finish in
// seconds under TSan on one core.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/confidence.h"
#include "core/tableau.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "series/cumulative.h"
#include "series/sequence.h"
#include "util/check.h"

namespace {

using namespace conservation;

constexpr int kTenants = 24;
constexpr int kClients = 3;
constexpr int64_t kTicks = 160;
constexpr int64_t kBatch = 8;

// Deterministic per-tenant series: positive b, a tracking 0.9 b with a
// tenant-specific wobble — valid (B dominates A after filtering, never
// all-zero) and distinct per tenant so cross-tenant mixups would show.
void MakeSeries(uint64_t tenant_id, std::vector<double>* a,
                std::vector<double>* b) {
  a->resize(kTicks);
  b->resize(kTicks);
  uint64_t state = tenant_id * 2654435761u + 12345;
  for (int64_t t = 0; t < kTicks; ++t) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double noise = static_cast<double>((state >> 33) % 1000) / 1000.0;
    (*b)[t] = 5.0 + static_cast<double>((tenant_id + t) % 7) + noise;
    (*a)[t] = 0.9 * (*b)[t];
  }
}

void DriveShard(int port, int shard, bool* ok) {
  serve::ServeClient client;
  if (!client.Connect(port).ok()) {
    *ok = false;
    return;
  }
  struct Stream {
    uint64_t id;
    std::vector<double> a, b;
    int64_t sent = 0;
  };
  std::vector<Stream> streams;
  for (int t = shard; t < kTenants; t += kClients) {
    Stream s;
    s.id = static_cast<uint64_t>(t + 1);
    MakeSeries(s.id, &s.a, &s.b);
    streams.push_back(std::move(s));
  }
  bool progress = true;
  while (progress) {
    progress = false;
    for (Stream& s : streams) {
      const int64_t remaining = kTicks - s.sent;
      if (remaining <= 0) continue;
      progress = true;
      const int64_t k = remaining < kBatch ? remaining : kBatch;
      for (;;) {
        auto ack =
            client.Append(s.id, s.a.data() + s.sent, s.b.data() + s.sent, k);
        if (!ack.ok() || ack->status == serve::AckStatus::kShuttingDown) {
          *ok = false;
          return;
        }
        if (ack->status == serve::AckStatus::kOk) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      s.sent += k;
    }
  }
  *ok = true;
}

}  // namespace

int main() {
  serve::TenantConfig tenant_config;
  tenant_config.request.type = core::TableauType::kFail;
  tenant_config.request.c_hat = 0.5;
  tenant_config.request.s_hat = 0.05;
  tenant_config.append_only = true;
  tenant_config.max_hot = kTenants / 3;  // force eviction + re-fault churn

  serve::DaemonOptions options;
  options.readers = kClients;
  options.max_tenant_queue_ticks = 64;  // small: exercise backpressure
  options.refresh_ms = 10;              // aggressive refresh/evict sweeps

  serve::ServeDaemon daemon(tenant_config, options);
  util::Status status = daemon.Start();
  CR_CHECK(status.ok());

  std::vector<std::thread> drivers;
  bool results[kClients] = {};
  for (int c = 0; c < kClients; ++c) {
    drivers.emplace_back(DriveShard, daemon.port(), c, &results[c]);
  }
  for (std::thread& driver : drivers) driver.join();
  for (int c = 0; c < kClients; ++c) CR_CHECK(results[c]);

  daemon.Stop();

  const serve::DaemonStats stats = daemon.Stats();
  CR_CHECK(stats.ticks_ingested ==
           static_cast<uint64_t>(kTenants) * static_cast<uint64_t>(kTicks));
  CR_CHECK(stats.ticks_processed == stats.ticks_ingested);
  CR_CHECK(daemon.registry().size() == kTenants);

  // Deterministic eviction coverage on top of whatever the timing-driven
  // sweeps did: demote every third hot tenant now, then fault them back up
  // in the identity loop below.
  for (auto& [id, tenant] : daemon.registry().tenants()) {
    if (id % 3 == 0 && tenant->session != nullptr) {
      daemon.registry().Evict(*tenant);
    }
  }
  CR_CHECK(daemon.registry().evictions() > 0);

  // Post-drain identity: each tenant's tableau (faulting cold tenants back
  // up) must be bit-identical to from-scratch discovery over its log.
  int64_t checked = 0;
  for (auto& [id, tenant] : daemon.registry().tenants()) {
    CR_CHECK(tenant->pend_a.empty());
    if (tenant->session == nullptr) {
      daemon.registry().ApplyPending(*tenant);  // fault up from the log
    }
    CR_CHECK(tenant->session != nullptr);
    daemon.registry().RefreshCover(*tenant);
    const core::Tableau& maintained = tenant->session->tableau();

    auto counts = series::CountSequence::Create(tenant->log_a, tenant->log_b);
    CR_CHECK(counts.ok());
    const series::CumulativeSeries cumulative(counts.value());
    const core::ConfidenceEvaluator eval(&cumulative,
                                         tenant_config.request.model);
    auto fresh = core::DiscoverTableau(eval, tenant_config.request);
    CR_CHECK(fresh.ok());
    CR_CHECK(maintained.rows.size() == fresh->rows.size());
    for (size_t r = 0; r < maintained.rows.size(); ++r) {
      CR_CHECK(maintained.rows[r].interval.begin ==
               fresh->rows[r].interval.begin);
      CR_CHECK(maintained.rows[r].interval.end == fresh->rows[r].interval.end);
      CR_CHECK(std::memcmp(&maintained.rows[r].confidence,
                           &fresh->rows[r].confidence, sizeof(double)) == 0);
    }
    CR_CHECK(maintained.covered == fresh->covered);
    CR_CHECK(maintained.required == fresh->required);
    CR_CHECK(maintained.support_satisfied == fresh->support_satisfied);
    CR_CHECK(maintained.num_candidates == fresh->num_candidates);
    ++checked;
  }
  CR_CHECK(checked == kTenants);
  // The deterministic demotions re-faulted in the loop above, on top of
  // each tenant's initial fault.
  CR_CHECK(daemon.registry().faults() > kTenants);

  std::printf(
      "serve_soak: OK tenants=%d ticks=%" PRIu64 " rejected=%" PRIu64
      " refreshes=%" PRIu64 " faults=%" PRId64 " evictions=%" PRId64 "\n",
      kTenants, stats.ticks_processed, stats.appends_rejected,
      stats.cover_refreshes, daemon.registry().faults(),
      daemon.registry().evictions());
  return 0;
}
