// crserve_driver: replays a simulated node fleet into a running crserved.
//
// The first tenant population for the serving daemon: every link of every
// simulated node (src/network/simulator.h) becomes one tenant stream —
// outbound counts as a, inbound as b — driven over the loopback ingest
// socket in fixed-size tick batches, optionally paced to a target
// ticks/sec/tenant rate. Backpressure acks are honored by retrying the
// rejected batch after a short sleep.
//
// Usage:
//   crserve_driver --port=<p> | --port_file=<path>   (ingest endpoint)
//       --nodes=<n>           fleet size (default 8)
//       --bad_nodes=<n>       nodes with a hidden link (default 1)
//       --ticks=<t>           ticks per tenant to replay (default 512)
//       --batch=<m>           ticks per append frame (default 16)
//       --rate=<r>            ticks/sec/tenant pacing (default 0 = unpaced)
//       --seed=<s>            simulator seed (default 4242)
//
// Exits 0 when every tick was accepted and a final stats poll confirms the
// daemon processed at least this driver's tick volume.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "network/simulator.h"
#include "serve/client.h"
#include "util/flags.h"
#include "util/status.h"

namespace {

using namespace conservation;

int Fail(const std::string& message) {
  std::fprintf(stderr, "crserve_driver: %s\n", message.c_str());
  return 1;
}

struct TenantStream {
  uint64_t id = 0;
  std::vector<double> a;
  std::vector<double> b;
  int64_t sent = 0;  // ticks appended so far
};

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags;
  if (util::Status status = flags.Parse(argc, argv); !status.ok()) {
    return Fail(status.ToString());
  }

  auto port_flag = flags.GetIntOr("port", 0);
  if (!port_flag.ok()) return Fail(port_flag.status().ToString());
  int port = static_cast<int>(*port_flag);
  const std::string port_file = flags.GetStringOr("port_file", "");
  if (port == 0 && !port_file.empty()) {
    std::ifstream in(port_file);
    if (!in || !(in >> port)) {
      return Fail("cannot read port from " + port_file);
    }
  }
  if (port <= 0 || port > 65535) {
    return Fail("required: --port=<p> or --port_file=<path>");
  }

  auto nodes = flags.GetIntOr("nodes", 8);
  auto bad_nodes = flags.GetIntOr("bad_nodes", 1);
  auto ticks = flags.GetIntOr("ticks", 512);
  auto batch = flags.GetIntOr("batch", 16);
  auto rate = flags.GetDoubleOr("rate", 0.0);
  auto seed = flags.GetIntOr("seed", 4242);
  if (!nodes.ok() || *nodes < 1) return Fail("--nodes must be >= 1");
  if (!bad_nodes.ok() || *bad_nodes < 0) return Fail("--bad_nodes must be >= 0");
  if (!ticks.ok() || *ticks < 1) return Fail("--ticks must be >= 1");
  if (!batch.ok() || *batch < 1) return Fail("--batch must be >= 1");
  if (!rate.ok() || *rate < 0) return Fail("--rate must be >= 0");
  if (!seed.ok()) return Fail(seed.status().ToString());

  // Build the tenant population: one tenant per observed link direction
  // pair (outbound = a, inbound = b).
  const std::vector<network::NodeSimResult> fleet = network::SimulateNodeFleet(
      static_cast<int>(*nodes), static_cast<int>(*bad_nodes), *ticks,
      static_cast<uint64_t>(*seed));
  std::vector<TenantStream> tenants;
  uint64_t next_id = 1;
  for (const network::NodeSimResult& node : fleet) {
    for (const network::LinkSeries& link : node.observed) {
      TenantStream tenant;
      tenant.id = next_id++;
      tenant.a = link.from_node;
      tenant.b = link.to_node;
      tenants.push_back(std::move(tenant));
    }
  }
  if (tenants.empty()) return Fail("fleet produced no links");
  std::fprintf(stderr, "crserve_driver: %zu tenants x %lld ticks -> port %d\n",
               tenants.size(), static_cast<long long>(*ticks), port);

  serve::ServeClient client;
  if (util::Status status = client.Connect(port); !status.ok()) {
    return Fail(status.ToString());
  }

  // Round-robin across tenants, one batch per visit, so every tenant's
  // queue stays shallow and pacing applies fleet-wide.
  const int64_t m = *batch;
  const double tick_rate = *rate;
  const auto start = std::chrono::steady_clock::now();
  int64_t total_sent = 0;
  int64_t rejected = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (TenantStream& tenant : tenants) {
      const int64_t remaining =
          static_cast<int64_t>(tenant.a.size()) - tenant.sent;
      if (remaining <= 0) continue;
      progress = true;
      const int64_t k = std::min(m, remaining);
      if (tick_rate > 0) {
        // Pace: do not run ahead of rate * elapsed ticks for this tenant.
        for (;;) {
          const double elapsed =
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
          if (static_cast<double>(tenant.sent) <= tick_rate * elapsed) break;
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
      for (;;) {
        auto ack = client.Append(tenant.id, tenant.a.data() + tenant.sent,
                                 tenant.b.data() + tenant.sent, k);
        if (!ack.ok()) return Fail(ack.status().ToString());
        if (ack->status == serve::AckStatus::kOk) break;
        if (ack->status == serve::AckStatus::kShuttingDown) {
          return Fail("daemon is shutting down");
        }
        ++rejected;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      tenant.sent += k;
      total_sent += k;
    }
  }

  auto stats = client.Stats();
  if (!stats.ok()) return Fail(stats.status().ToString());
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::fprintf(stderr,
               "crserve_driver: sent %lld ticks in %.2fs (%.0f ticks/s, "
               "%lld backpressure retries); daemon ingested=%llu "
               "processed=%llu\n",
               static_cast<long long>(total_sent), elapsed,
               elapsed > 0 ? static_cast<double>(total_sent) / elapsed : 0.0,
               static_cast<long long>(rejected),
               static_cast<unsigned long long>(stats->ticks_ingested),
               static_cast<unsigned long long>(stats->ticks_processed));
  if (stats->ticks_ingested < static_cast<uint64_t>(total_sent)) {
    return Fail("daemon ingested fewer ticks than sent");
  }
  return 0;
}
