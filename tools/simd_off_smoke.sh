#!/usr/bin/env bash
# Cross-backend stdout regression: configures a CONSERVATION_SIMD=off build
# tree, builds its crdiscover, and runs tools/stdout_regression.sh with both
# binaries — the vectorized build's result stream must be byte-identical
# (modulo zeroed timing fields) to the scalar-only build's, on top of the
# usual thread-count invariance. Registered in ctest as
# cli_stdout_simd_regression next to the thread-count regression.
#
# Usage: tools/simd_off_smoke.sh OFF_BUILD_DIR MAIN_CRDISCOVER INPUT_CSV
set -euo pipefail
source "$(dirname "$0")/smoke_lib.sh"

if [[ $# -ne 3 ]]; then
  echo "usage: simd_off_smoke.sh OFF_BUILD_DIR MAIN_CRDISCOVER INPUT_CSV" >&2
  exit 2
fi
off_build_dir="$1"
main_crdiscover="$2"
input="$3"

smoke_build_variant "${off_build_dir}" crdiscover -DCONSERVATION_SIMD=off

exec "$(smoke_repo_root)/tools/stdout_regression.sh" \
  "${main_crdiscover}" "${input}" "${off_build_dir}/tools/crdiscover"
