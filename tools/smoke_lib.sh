# Shared helpers for the smoke / regression shell wrappers
# (sanitizer_smoke.sh, stdout_regression.sh, simd_off_smoke.sh). Sourced,
# not executed — each function is a small, composable step so the wrappers
# stay single-screen descriptions of *what* they check rather than how a
# variant build tree is produced.
#
# Usage (from a script in tools/):
#   source "$(dirname "$0")/smoke_lib.sh"

# Absolute path of the repository root (the parent of tools/), independent
# of the caller's working directory.
smoke_repo_root() {
  cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd
}

# Configures a variant build tree and builds one target in it:
#   smoke_build_variant BUILD_DIR TARGET [CMAKE_ARG...]
# Extra arguments are passed to the configure step (e.g.
# -DCONSERVATION_SANITIZE=thread, -DCONSERVATION_SIMD=off). Incremental:
# re-running against a warm tree only rebuilds what changed.
smoke_build_variant() {
  local build_dir="$1" target="$2"
  shift 2
  cmake -B "${build_dir}" -S "$(smoke_repo_root)" "$@"
  cmake --build "${build_dir}" -j --target "${target}"
}

# Creates a temporary scratch directory that is removed when the calling
# script exits (any path), and exposes it as SMOKE_WORKDIR. Must be called
# directly, not via command substitution: a $(...) subshell would take the
# EXIT trap with it and delete the directory before the caller uses it.
smoke_tmp_workdir() {
  SMOKE_WORKDIR="$(mktemp -d)"
  # shellcheck disable=SC2064  # expand now: simpler than quoting for later
  trap "rm -rf '${SMOKE_WORKDIR}'" EXIT
}
