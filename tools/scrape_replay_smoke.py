#!/usr/bin/env python3
"""End-to-end smoke for the live scrape endpoint: launch crdiscover in
paced --append_batch replay with --serve_metrics on an ephemeral port,
scrape /metrics twice while the replay is still running, validate both
payloads as Prometheus exposition (validate_prom.py), and require the
tenant-labeled batch-latency series plus the windowed quantile summary.

Usage: tools/scrape_replay_smoke.py CRDISCOVER_BIN INPUT.csv
Stdlib only; exit 0 on success, 1 with a diagnostic otherwise.
"""

import os
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import validate_prom  # noqa: E402


def fail(message):
    print(f"scrape_replay_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def wait_for_port_file(path, process, timeout_seconds=20.0):
    deadline = time.monotonic() + timeout_seconds
    while time.monotonic() < deadline:
        if process.poll() is not None:
            fail(f"crdiscover exited early with code {process.returncode}")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read().strip()
            if text:
                return int(text)
        except (OSError, ValueError):
            pass
        time.sleep(0.05)
    fail("timed out waiting for the serve_metrics port file")


def scrape(port):
    url = f"http://127.0.0.1:{port}/metrics"
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            content_type = response.headers.get("Content-Type", "")
            body = response.read().decode("utf-8")
    except (urllib.error.URLError, OSError) as error:
        fail(f"GET {url}: {error}")
    if "version=0.0.4" not in content_type:
        fail(f"unexpected Content-Type {content_type!r}")
    if not body:
        fail("empty scrape body")
    return body


def validate(body, label):
    with tempfile.NamedTemporaryFile(
            "w", suffix=".txt", delete=False, encoding="utf-8") as handle:
        handle.write(body)
        path = handle.name
    try:
        argv = [
            "validate_prom.py", path,
            "--require-series", "incr_batch_seconds_bucket",
            "--require-series", "incr_batch_seconds_window",
            "--require-series", "obs_window_span_seconds",
            "--require-label", "tenant=smoke",
        ]
        old_argv = sys.argv
        sys.argv = argv
        try:
            validate_prom.main()
        except SystemExit as stop:
            if stop.code not in (0, None):
                fail(f"{label}: validate_prom rejected the payload")
        finally:
            sys.argv = old_argv
    finally:
        os.unlink(path)


def main():
    if len(sys.argv) != 3:
        fail("usage: scrape_replay_smoke.py CRDISCOVER_BIN INPUT.csv")
    binary, input_csv = sys.argv[1], sys.argv[2]

    with tempfile.TemporaryDirectory() as tmpdir:
        port_file = os.path.join(tmpdir, "port.txt")
        # Slow pacing (40 ms/batch over >= 35 batches, ~1.5 s+ total) so
        # both scrapes land mid-replay even on a loaded CI machine.
        command = [
            binary,
            f"--input={input_csv}",
            "--append_batch=16",
            "--batch_pause_ms=40",
            "--metrics_every=2",
            "--serve_metrics=0",
            f"--serve_metrics_port_file={port_file}",
            "--tenant=smoke",
        ]
        process = subprocess.Popen(
            command, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True)
        try:
            port = wait_for_port_file(port_file, process)
            first = scrape(port)
            time.sleep(0.3)  # several batches and a window advance apart
            second = scrape(port)
            mid_flight = process.poll() is None
            stdout, stderr = process.communicate(timeout=120)
        except Exception:
            process.kill()
            raise

    if process.returncode != 0:
        fail(f"crdiscover exited {process.returncode}; stderr:\n{stderr}")
    if "cross-check vs from-scratch: identical" not in stdout:
        fail(f"replay cross-check missing/failed; stdout:\n{stdout}")
    if not mid_flight:
        fail("replay finished before the second scrape; increase pacing")

    validate(first, "first scrape")
    validate(second, "second scrape")

    # The windows must actually be live: the replay advances every 2
    # batches, so by the second scrape the span gauge is positive.
    def window_span(body):
        for line in body.split("\n"):
            if line.startswith("obs_window_span_seconds "):
                return float(line.split()[1])
        return None

    span = window_span(second)
    if span is None or span <= 0.0:
        fail(f"second scrape has no live window (span={span})")

    print("scrape_replay_smoke: OK: two mid-replay scrapes validated, "
          f"window span {span:.3f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
