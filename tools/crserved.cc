// crserved: the multi-tenant conservation serving daemon.
//
// Hosts a fleet of (a,b) tenant streams behind the binary ingest protocol
// (src/serve/protocol.h), applying appends through per-tenant
// StreamSessions on the shared pool and serving live metrics over HTTP.
// docs/SERVING.md is the operator guide.
//
// Usage:
//   crserved [flags]
//
// Ingest:
//   --port=<p>                    ingest port (default 0 = ephemeral)
//   --port_file=<path>            write the bound ingest port atomically
//   --readers=<k>                 reader threads / max concurrent clients
//                                 (default 2)
//   --max_tenant_queue_ticks=<n>  per-tenant admission bound (default 4096)
//   --max_global_queue_ticks=<n>  global admission bound (default 1M)
//
// Tenants (one shared rule config for the fleet):
//   --type=hold|fail --model=balance|credit|debit --c_hat --s_hat
//   --algorithm=exhaustive|area|area_opt|nab|nab_opt --epsilon
//   --window=<w>                  monitor sliding window (default 64)
//   --label_tenants               per-tenant labeled metric children
//   --append_only=true|false      defer cover work to the refresh tick
//                                 (default true)
//   --refresh_ms=<ms>             cover refresh / eviction sweep period
//                                 (default 200; 0 disables)
//   --max_hot=<n>                 hot-session bound; idle LRU tenants are
//                                 evicted to the sketch-tier cold store
//                                 (default 0 = unbounded)
//
// Observability:
//   --metrics_port=<p>            serve /metrics on 127.0.0.1:<p>
//   --metrics_port_file=<path>    write the bound metrics port atomically
//   --watchdog_budget_ms=<ms>     stall watchdog over dispatched batches
//
// Lifecycle: runs until SIGTERM/SIGINT, then drains every accepted tick,
// refreshes deferred covers, prints a drain summary and exits 0.

#include <csignal>
#include <cstdio>
#include <string>

#include "core/tableau.h"
#include "interval/generator.h"
#include "obs/scrape.h"
#include "obs/watchdog.h"
#include "serve/daemon.h"
#include "util/flags.h"
#include "util/status.h"

#include <chrono>
#include <thread>

namespace {

using namespace conservation;

volatile std::sig_atomic_t g_shutdown = 0;

void HandleSignal(int) { g_shutdown = 1; }

int Fail(const std::string& message) {
  std::fprintf(stderr, "crserved: %s\n", message.c_str());
  return 1;
}

util::Result<core::ConfidenceModel> ParseModel(const std::string& name) {
  if (name == "balance") return core::ConfidenceModel::kBalance;
  if (name == "credit") return core::ConfidenceModel::kCredit;
  if (name == "debit") return core::ConfidenceModel::kDebit;
  return util::Status::InvalidArgument("unknown model: " + name);
}

util::Result<interval::AlgorithmKind> ParseAlgorithm(
    const std::string& name) {
  if (name == "exhaustive") return interval::AlgorithmKind::kExhaustive;
  if (name == "area") return interval::AlgorithmKind::kAreaBased;
  if (name == "area_opt") return interval::AlgorithmKind::kAreaBasedOpt;
  if (name == "nab") return interval::AlgorithmKind::kNonAreaBased;
  if (name == "nab_opt") return interval::AlgorithmKind::kNonAreaBasedOpt;
  return util::Status::InvalidArgument("unknown algorithm: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags;
  if (util::Status status = flags.Parse(argc, argv); !status.ok()) {
    return Fail(status.ToString());
  }

  serve::TenantConfig tenant_config;
  const std::string type = flags.GetStringOr("type", "fail");
  if (type == "hold") {
    tenant_config.request.type = core::TableauType::kHold;
  } else if (type == "fail") {
    tenant_config.request.type = core::TableauType::kFail;
  } else {
    return Fail("unknown type: " + type);
  }
  auto model = ParseModel(flags.GetStringOr("model", "balance"));
  if (!model.ok()) return Fail(model.status().ToString());
  tenant_config.request.model = *model;
  tenant_config.stream.model = *model;
  auto algorithm = ParseAlgorithm(flags.GetStringOr("algorithm", "area_opt"));
  if (!algorithm.ok()) return Fail(algorithm.status().ToString());
  tenant_config.request.algorithm = *algorithm;
  auto c_hat = flags.GetDoubleOr("c_hat", 0.9);
  auto s_hat = flags.GetDoubleOr("s_hat", 0.1);
  auto epsilon = flags.GetDoubleOr("epsilon", 0.01);
  if (!c_hat.ok()) return Fail(c_hat.status().ToString());
  if (!s_hat.ok()) return Fail(s_hat.status().ToString());
  if (!epsilon.ok()) return Fail(epsilon.status().ToString());
  tenant_config.request.c_hat = *c_hat;
  tenant_config.request.s_hat = *s_hat;
  tenant_config.request.epsilon = *epsilon;
  auto window = flags.GetIntOr("window", 64);
  if (!window.ok() || *window <= 0) return Fail("--window must be > 0");
  tenant_config.stream.window = *window;
  auto label_tenants = flags.GetBoolOr("label_tenants", false);
  if (!label_tenants.ok()) return Fail(label_tenants.status().ToString());
  tenant_config.label_tenants = *label_tenants;
  auto append_only = flags.GetBoolOr("append_only", true);
  if (!append_only.ok()) return Fail(append_only.status().ToString());
  tenant_config.append_only = *append_only;
  auto max_hot = flags.GetIntOr("max_hot", 0);
  if (!max_hot.ok() || *max_hot < 0) return Fail("--max_hot must be >= 0");
  tenant_config.max_hot = *max_hot;

  serve::DaemonOptions options;
  auto port = flags.GetIntOr("port", 0);
  if (!port.ok() || *port < 0 || *port > 65535) {
    return Fail("--port must be in [0, 65535]");
  }
  options.port = static_cast<int>(*port);
  auto readers = flags.GetIntOr("readers", 2);
  if (!readers.ok() || *readers < 1) return Fail("--readers must be >= 1");
  options.readers = static_cast<int>(*readers);
  auto tenant_q = flags.GetIntOr("max_tenant_queue_ticks", 4096);
  auto global_q = flags.GetIntOr("max_global_queue_ticks", 1 << 20);
  if (!tenant_q.ok() || *tenant_q < 1 || !global_q.ok() || *global_q < 1) {
    return Fail("queue bounds must be >= 1");
  }
  options.max_tenant_queue_ticks = *tenant_q;
  options.max_global_queue_ticks = *global_q;
  auto refresh_ms = flags.GetIntOr("refresh_ms", 200);
  if (!refresh_ms.ok() || *refresh_ms < 0) {
    return Fail("--refresh_ms must be >= 0");
  }
  options.refresh_ms = *refresh_ms;

  if (flags.Has("watchdog_budget_ms")) {
    auto budget_ms = flags.GetIntOr("watchdog_budget_ms", 0);
    if (!budget_ms.ok() || *budget_ms <= 0) {
      return Fail("--watchdog_budget_ms must be > 0");
    }
    obs::WatchdogOptions watchdog_options;
    watchdog_options.default_budget_seconds =
        static_cast<double>(*budget_ms) / 1000.0;
    obs::StartWatchdog(watchdog_options);
    options.dispatch_budget_seconds = watchdog_options.default_budget_seconds;
  }

  obs::ScrapeServer scrape_server;
  if (flags.Has("metrics_port")) {
    auto metrics_port = flags.GetIntOr("metrics_port", 0);
    if (!metrics_port.ok() || *metrics_port < 0 || *metrics_port > 65535) {
      return Fail("--metrics_port must be in [0, 65535]");
    }
    obs::ScrapeServerOptions scrape_options;
    scrape_options.port = static_cast<int>(*metrics_port);
    scrape_options.port_file = flags.GetStringOr("metrics_port_file", "");
    std::string scrape_error;
    if (!scrape_server.Start(scrape_options, &scrape_error)) {
      return Fail("--metrics_port: " + scrape_error);
    }
    std::fprintf(stderr, "crserved: metrics on 127.0.0.1:%d/metrics\n",
                 scrape_server.port());
  } else if (flags.Has("metrics_port_file")) {
    return Fail("--metrics_port_file requires --metrics_port");
  }

  serve::ServeDaemon daemon(tenant_config, options);
  if (util::Status status = daemon.Start(); !status.ok()) {
    return Fail(status.ToString());
  }
  const std::string port_file = flags.GetStringOr("port_file", "");
  if (!port_file.empty()) {
    std::string write_error;
    if (!obs::AtomicWriteFile(port_file, std::to_string(daemon.port()) + "\n",
                              &write_error)) {
      return Fail("--port_file: " + write_error);
    }
  }
  std::fprintf(stderr, "crserved: ingest on 127.0.0.1:%d (readers=%d)\n",
               daemon.port(), options.readers);

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  while (g_shutdown == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::fprintf(stderr, "crserved: draining...\n");
  daemon.Stop();
  const serve::DaemonStats stats = daemon.Stats();
  std::fprintf(stderr,
               "crserved: drained tenants=%lld ticks_ingested=%llu "
               "ticks_processed=%llu appends_accepted=%llu "
               "appends_rejected=%llu refreshes=%llu faults=%lld "
               "evictions=%lld\n",
               static_cast<long long>(daemon.registry().size()),
               static_cast<unsigned long long>(stats.ticks_ingested),
               static_cast<unsigned long long>(stats.ticks_processed),
               static_cast<unsigned long long>(stats.appends_accepted),
               static_cast<unsigned long long>(stats.appends_rejected),
               static_cast<unsigned long long>(stats.cover_refreshes),
               static_cast<long long>(daemon.registry().faults()),
               static_cast<long long>(daemon.registry().evictions()));
  if (stats.ticks_ingested != stats.ticks_processed) {
    std::fprintf(stderr, "crserved: DRAIN MISMATCH\n");
    return 1;
  }
  return 0;
}
