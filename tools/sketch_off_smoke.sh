#!/usr/bin/env bash
# Sketch-screen stdout regression: configures a CONSERVATION_SKETCH=off
# build tree, builds its crdiscover, and runs tools/stdout_regression.sh
# with both binaries — the screened build's result stream must be
# byte-identical (modulo zeroed timing fields) to the unscreened build's,
# on top of the usual thread-count invariance. This is the end-to-end form
# of the candidate bit-identity contract in tests/sketch_prune_test.cc.
# Registered in ctest as cli_stdout_sketch_regression.
#
# Usage: tools/sketch_off_smoke.sh OFF_BUILD_DIR MAIN_CRDISCOVER INPUT_CSV
set -euo pipefail
source "$(dirname "$0")/smoke_lib.sh"

if [[ $# -ne 3 ]]; then
  echo "usage: sketch_off_smoke.sh OFF_BUILD_DIR MAIN_CRDISCOVER INPUT_CSV" >&2
  exit 2
fi
off_build_dir="$1"
main_crdiscover="$2"
input="$3"

smoke_build_variant "${off_build_dir}" crdiscover -DCONSERVATION_SKETCH=off

exec "$(smoke_repo_root)/tools/stdout_regression.sh" \
  "${main_crdiscover}" "${input}" "${off_build_dir}/tools/crdiscover"
