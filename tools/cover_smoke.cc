// Parallel-seeding equivalence smoke for the lazy-greedy partial set cover.
// Built and run under ThreadSanitizer by tools/sanitizer_smoke.sh (ctest target
// tsan_cover_seeding_smoke) so a data race in the ParallelFor seeding stage
// (disjoint-slot writes into the pre-sized heap vector) fails the suite.
//
// Runs the cover at 1 and 4 threads over candidate families that stress the
// heap (shingles, nested chains, duplicates) in both tie-break modes and
// exits nonzero on any divergence — thread count must never change the
// chosen set.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "cover/partial_set_cover.h"
#include "interval/interval.h"

int main() {
  using namespace conservation;
  using interval::Interval;

  const int64_t n = 200000;
  struct Family {
    const char* name;
    std::vector<Interval> candidates;
  };
  std::vector<Family> families(3);
  families[0].name = "shingles";
  for (int64_t b = 1; b <= n; b += 8) {
    families[0].candidates.push_back(Interval{b, std::min<int64_t>(n, b + 99)});
  }
  families[1].name = "nested";
  for (int64_t d = 0; d < 2000; ++d) {
    families[1].candidates.push_back(Interval{1 + d * 40, n - d * 40});
  }
  families[2].name = "duplicates";
  for (int64_t b = 1; b <= n; b += 50) {
    const Interval iv{b, std::min<int64_t>(n, b + 199)};
    for (int copy = 0; copy < 4; ++copy) {
      families[2].candidates.push_back(iv);
    }
  }

  int failures = 0;
  for (const Family& family : families) {
    for (const bool deterministic : {true, false}) {
      cover::CoverOptions options;
      options.s_hat = 0.95;
      options.deterministic_tie_break = deterministic;

      options.num_threads = 1;
      const cover::CoverResult sequential =
          cover::GreedyPartialSetCover(family.candidates, n, options);

      options.num_threads = 4;
      const cover::CoverResult parallel =
          cover::GreedyPartialSetCover(family.candidates, n, options);

      const bool identical = parallel.chosen == sequential.chosen &&
                             parallel.chosen_indices ==
                                 sequential.chosen_indices &&
                             parallel.covered == sequential.covered &&
                             parallel.satisfied == sequential.satisfied;
      std::printf("%-11s det=%d m=%zu rounds=%lld pops=%lld %s\n",
                  family.name, deterministic ? 1 : 0,
                  family.candidates.size(),
                  static_cast<long long>(parallel.stats.rounds),
                  static_cast<long long>(parallel.stats.heap_pops),
                  identical ? "OK" : "MISMATCH");
      if (!identical) ++failures;
    }
  }
  if (failures > 0) {
    std::fprintf(stderr, "cover_smoke: %d config(s) diverged\n", failures);
    return 1;
  }
  std::printf("cover_smoke: parallel seeding identical to sequential\n");
  return 0;
}
