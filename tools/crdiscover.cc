// crdiscover: discover conservation-rule tableaux in a two-column CSV.
//
// Usage:
//   crdiscover --input=data.csv [options]
//
// Input options:
//   --col_a=<idx> --col_b=<idx>   0-based columns (default 0, 1)
//   --sep=<char>                  field separator (default ',')
//   --no_header                   first row is data
// Rule options:
//   --type=hold|fail              (default fail)
//   --model=balance|credit|debit  (default balance)
//   --c_hat=<x>    confidence threshold        (default 0.8)
//   --s_hat=<x>    support fraction            (default 0.1)
//   --epsilon=<x>  approximation knob          (default 0.01)
//   --algorithm=exhaustive|area|area_opt|nab|nab_opt   (default area)
//   --threads=<k>  anchor-sharded generation threads; 0 = all cores
//                  (default 1; results are identical for every setting)
//   --chunks_per_thread=<k>  scheduler chunks per worker (default 12);
//                  load-balance knob only, results identical for every value
//   --walk_width=<w>  concurrent resumable anchor walks per chunk in the
//                  AB-opt cross-anchor scheduler (default 0 = auto: SIMD
//                  lane count x unroll; 1 = scalar walk); results identical
//                  for every value
//   --sketch=auto|off  quantized-sketch anchor screen (default auto);
//                  conservative pre-pass only, candidates are bit-identical
//                  for both settings (env CONSERVATION_SKETCH overrides)
//   --sketch_block=<t> ticks per sketch block (default 256)
//   --sketch_nab_right  also screen NAB/NAB-opt right anchors with the
//                  sketch (default off, DESIGN.md §4f); bit-identical
//                  either way
// Incremental replay (DESIGN.md §4g):
//   --append_batch=<m>  replay the input through the incremental engine in
//                  append batches of m ticks, print the maintained tableau
//                  after the last batch plus the incr.* replay stats, and
//                  cross-check the result against a from-scratch run
// Extras:
//   --report         full quality report (tableau + diagnosis + segments)
//   --json           emit the tableau as JSON (includes a "cover" stats
//                    object: rounds, heap_pops, stale_reevaluations, ...)
//   --cover_stats    also emit the cover-phase stats as a JSON object line
//   --severity       also print intervals ranked by misplaced mass
//   --sweep=a,b,c    threshold sweep instead of a single tableau
//   --profile=<w>    dump rolling window-w confidence to stdout as CSV
//   --segments=<len> per-segment confidence summary (CSV)
// Observability (docs/OBSERVABILITY.md):
//   --trace=FILE     record scoped spans during the run and write a
//                    Chrome/Perfetto trace-event JSON file on exit
//   --trace_verbosity=1|2   1 = phase/chunk spans (default); 2 adds
//                    per-pop instants in the cover selection loop
//   --metrics[=FILE] emit the metrics-registry snapshot: bare --metrics
//                    adds it to the --json document (or a stderr line in
//                    text mode); =FILE writes the snapshot JSON to FILE
//   --serve_metrics=<port>  serve live metrics over HTTP on 127.0.0.1
//                    for the whole run: GET /metrics (Prometheus text
//                    exposition v0.0.4 with windowed quantiles),
//                    /metrics.json, /healthz. Port 0 picks an ephemeral
//                    port; stdout is untouched (serving writes only to
//                    stderr and the socket)
//   --serve_metrics_port_file=<path>  write the bound port (one decimal
//                    line) once the server is up — how scripted scrapers
//                    find an ephemeral port
//   --metrics_every=<k>  in --append_batch replay: every k batches,
//                    advance the sliding metrics window and emit one JSON
//                    progress line to stderr (windowed rates + tick-latency
//                    quantiles); 0 (default) keeps only the final dump
//   --tenant=<name>  label this run's stream/replay metrics with
//                    {tenant="<name>"} (default "default")
//   --batch_pause_ms=<ms>  sleep between replay batches — paces the replay
//                    so a live scraper can observe it mid-flight
//   --watchdog_budget_ms=<ms>  enable the phase watchdog: a discovery
//                    phase or append batch exceeding the budget raises
//                    obs.stalls_detected and a stderr alert
//   --watchdog_trace=<path>  on the first stall, also dump the trace rings
//                    here (requires --trace to be recording)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/analysis.h"
#include "core/report.h"
#include "core/segmentation.h"
#include "core/conservation_rule.h"
#include "incr/incremental.h"
#include "interval/kernel_simd.h"
#include "io/csv.h"
#include "io/json.h"
#include "obs/labels.h"
#include "obs/metrics.h"
#include "obs/scrape.h"
#include "obs/sink.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "obs/window.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace {

using namespace conservation;

int Fail(const std::string& message) {
  std::fprintf(stderr, "crdiscover: %s\n", message.c_str());
  return 1;
}

util::Result<core::ConfidenceModel> ParseModel(const std::string& name) {
  if (name == "balance") return core::ConfidenceModel::kBalance;
  if (name == "credit") return core::ConfidenceModel::kCredit;
  if (name == "debit") return core::ConfidenceModel::kDebit;
  return util::Status::InvalidArgument("unknown model: " + name);
}

util::Result<interval::AlgorithmKind> ParseAlgorithm(
    const std::string& name) {
  if (name == "exhaustive") return interval::AlgorithmKind::kExhaustive;
  if (name == "area") return interval::AlgorithmKind::kAreaBased;
  if (name == "area_opt") return interval::AlgorithmKind::kAreaBasedOpt;
  if (name == "nab") return interval::AlgorithmKind::kNonAreaBased;
  if (name == "nab_opt") return interval::AlgorithmKind::kNonAreaBasedOpt;
  return util::Status::InvalidArgument("unknown algorithm: " + name);
}

bool WriteTextFile(const std::string& path, const std::string& text) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    std::fprintf(stderr, "crdiscover: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), file);
  const bool closed = std::fclose(file) == 0;
  if (written != text.size() || !closed) {
    std::fprintf(stderr, "crdiscover: short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

// Writes the trace and metrics files on every exit path (the profile /
// segments / report / sweep modes return early).
struct ObsGuard {
  std::string trace_path;
  std::string metrics_path;

  ~ObsGuard() {
    if (!trace_path.empty()) {
      obs::StopTracing();
      obs::WriteTrace(trace_path);
    }
    if (!metrics_path.empty()) {
      WriteTextFile(metrics_path,
                    obs::Registry::Global().Snapshot().ToJson() + "\n");
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags;
  if (util::Status status = flags.Parse(argc, argv); !status.ok()) {
    return Fail(status.ToString());
  }
  const std::string input = flags.GetStringOr("input", "");
  if (input.empty()) return Fail("required: --input=<csv>");

  // Observability setup, before any work so every phase is recorded.
  ObsGuard obs_guard;
  const bool want_metrics = flags.Has("metrics");
  obs_guard.metrics_path = flags.GetStringOr("metrics", "");
  if (flags.Has("trace")) {
    obs_guard.trace_path = flags.GetStringOr("trace", "");
    if (obs_guard.trace_path.empty()) {
      return Fail("--trace requires a file path");
    }
    auto trace_verbosity = flags.GetIntOr("trace_verbosity", 1);
    if (!trace_verbosity.ok()) return Fail(trace_verbosity.status().ToString());
    if (*trace_verbosity < 1 || *trace_verbosity > 2) {
      return Fail("--trace_verbosity must be 1 or 2");
    }
    obs::TraceOptions trace_options;
    trace_options.verbosity = static_cast<int>(*trace_verbosity);
    obs::StartTracing(trace_options);
    obs::SetCurrentThreadName("main");
  }

  // Live scrape endpoint: up before any work so an external scraper can
  // watch the whole run. Stack object — the destructor stops the serve
  // thread on every exit path. Serving writes only to stderr and the
  // socket; stdout byte-identity (tools/stdout_regression.sh) holds.
  obs::ScrapeServer scrape_server;
  if (flags.Has("serve_metrics")) {
    auto serve_port = flags.GetIntOr("serve_metrics", 0);
    if (!serve_port.ok()) return Fail(serve_port.status().ToString());
    if (*serve_port < 0 || *serve_port > 65535) {
      return Fail("--serve_metrics must be a port in [0, 65535]");
    }
    obs::ScrapeServerOptions serve_options;
    serve_options.port = static_cast<int>(*serve_port);
    // Written atomically (tmp + rename) by Start, so a polling scraper
    // never reads a torn port file even under rapid restarts.
    serve_options.port_file = flags.GetStringOr("serve_metrics_port_file", "");
    std::string serve_error;
    if (!scrape_server.Start(serve_options, &serve_error)) {
      return Fail("--serve_metrics: " + serve_error);
    }
    std::fprintf(stderr, "crdiscover: serving metrics on 127.0.0.1:%d\n",
                 scrape_server.port());
  } else if (flags.Has("serve_metrics_port_file")) {
    return Fail("--serve_metrics_port_file requires --serve_metrics");
  }

  // Phase watchdog: stalls raise obs.stalls_detected + a stderr alert
  // (and a one-shot trace dump when --watchdog_trace and --trace are set).
  if (flags.Has("watchdog_budget_ms")) {
    auto budget_ms = flags.GetIntOr("watchdog_budget_ms", 0);
    if (!budget_ms.ok()) return Fail(budget_ms.status().ToString());
    if (*budget_ms <= 0) return Fail("--watchdog_budget_ms must be > 0");
    obs::WatchdogOptions watchdog_options;
    watchdog_options.default_budget_seconds =
        static_cast<double>(*budget_ms) / 1000.0;
    watchdog_options.stall_trace_path = flags.GetStringOr("watchdog_trace", "");
    obs::StartWatchdog(watchdog_options);
  } else if (flags.Has("watchdog_trace")) {
    return Fail("--watchdog_trace requires --watchdog_budget_ms");
  }

  io::CsvReadOptions read_options;
  auto col_a = flags.GetIntOr("col_a", 0);
  auto col_b = flags.GetIntOr("col_b", 1);
  auto no_header = flags.GetBoolOr("no_header", false);
  if (!col_a.ok()) return Fail(col_a.status().ToString());
  if (!col_b.ok()) return Fail(col_b.status().ToString());
  if (!no_header.ok()) return Fail(no_header.status().ToString());
  read_options.column_a = static_cast<int>(*col_a);
  read_options.column_b = static_cast<int>(*col_b);
  read_options.has_header = !*no_header;
  const std::string sep = flags.GetStringOr("sep", ",");
  if (sep.size() != 1) return Fail("--sep must be one character");
  read_options.separator = sep[0];

  auto counts = io::ReadCountsCsv(input, read_options);
  if (!counts.ok()) return Fail(counts.status().ToString());
  auto rule = core::ConservationRule::Create(std::move(counts).value());
  if (!rule.ok()) return Fail(rule.status().ToString());

  auto model = ParseModel(flags.GetStringOr("model", "balance"));
  if (!model.ok()) return Fail(model.status().ToString());

  // Rolling profile mode.
  auto profile = flags.GetIntOr("profile", 0);
  if (!profile.ok()) return Fail(profile.status().ToString());
  if (*profile > 0) {
    if (*profile > rule->n()) return Fail("--profile window exceeds n");
    const std::vector<double> series =
        core::ConfidenceProfile(*rule, *model, *profile);
    std::printf("t,confidence\n");
    for (size_t k = 0; k < series.size(); ++k) {
      std::printf("%lld,%s\n",
                  static_cast<long long>(*profile + static_cast<int64_t>(k)),
                  util::FormatNumber(series[k], 6).c_str());
    }
    return 0;
  }

  // Per-segment summary mode.
  auto segments = flags.GetIntOr("segments", 0);
  if (!segments.ok()) return Fail(segments.status().ToString());
  if (*segments > 0) {
    const auto summaries = core::SummarizeSegments(
        *rule, *model, core::UniformSegments(rule->n(), *segments));
    std::printf("segment,begin,end,confidence,misplaced_mass\n");
    for (const core::SegmentSummary& summary : summaries) {
      std::printf("%s,%lld,%lld,%s,%s\n", summary.segment.label.c_str(),
                  static_cast<long long>(summary.segment.range.begin),
                  static_cast<long long>(summary.segment.range.end),
                  summary.confidence.has_value()
                      ? util::FormatNumber(*summary.confidence, 6).c_str()
                      : "undefined",
                  util::FormatNumber(summary.misplaced_mass, 3).c_str());
    }
    return 0;
  }

  // Full-report mode.
  auto want_report = flags.GetBoolOr("report", false);
  if (!want_report.ok()) return Fail(want_report.status().ToString());
  if (*want_report) {
    core::ReportOptions report_options;
    report_options.model = *model;
    auto c = flags.GetDoubleOr("c_hat", 0.7);
    auto s_opt = flags.GetDoubleOr("s_hat", 0.05);
    if (!c.ok()) return Fail(c.status().ToString());
    if (!s_opt.ok()) return Fail(s_opt.status().ToString());
    report_options.fail_c_hat = *c;
    report_options.support = *s_opt;
    auto report = core::BuildQualityReport(*rule, report_options);
    if (!report.ok()) return Fail(report.status().ToString());
    std::printf("%s", report->ToString().c_str());
    return 0;
  }

  core::TableauRequest request;
  const std::string type = flags.GetStringOr("type", "fail");
  if (type == "hold") {
    request.type = core::TableauType::kHold;
  } else if (type == "fail") {
    request.type = core::TableauType::kFail;
  } else {
    return Fail("unknown type: " + type);
  }
  request.model = *model;
  auto algorithm = ParseAlgorithm(flags.GetStringOr("algorithm", "area"));
  if (!algorithm.ok()) return Fail(algorithm.status().ToString());
  request.algorithm = *algorithm;
  auto c_hat = flags.GetDoubleOr("c_hat", 0.8);
  auto s_hat = flags.GetDoubleOr("s_hat", 0.1);
  auto epsilon = flags.GetDoubleOr("epsilon", 0.01);
  if (!c_hat.ok()) return Fail(c_hat.status().ToString());
  if (!s_hat.ok()) return Fail(s_hat.status().ToString());
  if (!epsilon.ok()) return Fail(epsilon.status().ToString());
  request.c_hat = *c_hat;
  request.s_hat = *s_hat;
  request.epsilon = *epsilon;
  auto threads = flags.GetIntOr("threads", 1);
  if (!threads.ok()) return Fail(threads.status().ToString());
  if (*threads < 0) return Fail("--threads must be >= 0");
  request.num_threads = static_cast<int>(*threads);
  auto chunks_per_thread = flags.GetIntOr("chunks_per_thread", 12);
  if (!chunks_per_thread.ok()) {
    return Fail(chunks_per_thread.status().ToString());
  }
  if (*chunks_per_thread < 1) return Fail("--chunks_per_thread must be >= 1");
  request.chunks_per_thread = static_cast<int>(*chunks_per_thread);
  auto walk_width = flags.GetIntOr("walk_width", 0);
  if (!walk_width.ok()) return Fail(walk_width.status().ToString());
  if (*walk_width < 0) return Fail("--walk_width must be >= 0 (0 = auto)");
  request.walk_width = static_cast<int>(*walk_width);

  const std::string sketch = flags.GetStringOr("sketch", "auto");
  if (sketch == "off") {
    request.sketch = conservation::interval::SketchMode::kOff;
  } else if (sketch != "auto") {
    return Fail("--sketch must be auto or off, got " + sketch);
  }
  auto sketch_block = flags.GetIntOr("sketch_block", 256);
  if (!sketch_block.ok()) return Fail(sketch_block.status().ToString());
  request.sketch_block = *sketch_block;  // range-checked by ValidateRequest
  auto sketch_nab_right = flags.GetBoolOr("sketch_nab_right", false);
  if (!sketch_nab_right.ok()) return Fail(sketch_nab_right.status().ToString());
  request.sketch_nab_right = *sketch_nab_right;

  std::printf("n = %lld ticks; overall %s confidence = %s\n",
              static_cast<long long>(rule->n()),
              core::ConfidenceModelName(*model),
              util::FormatNumber(
                  rule->OverallConfidence(*model).value_or(-1.0), 6)
                  .c_str());

  // Threshold sweep mode.
  const std::string sweep = flags.GetStringOr("sweep", "");
  if (!sweep.empty()) {
    std::vector<double> thresholds;
    for (const std::string& item : util::Split(sweep, ',')) {
      double value = 0.0;
      if (!util::ParseDouble(item, &value)) {
        return Fail("bad --sweep entry: " + item);
      }
      thresholds.push_back(value);
    }
    auto points = core::ThresholdSweep(*rule, request, thresholds);
    if (!points.ok()) return Fail(points.status().ToString());
    std::printf("c_hat,intervals,covered,satisfied\n");
    for (const core::SweepPoint& point : *points) {
      std::printf("%s,%zu,%lld,%s\n",
                  util::FormatNumber(point.c_hat, 4).c_str(),
                  point.tableau_size,
                  static_cast<long long>(point.covered),
                  point.support_satisfied ? "yes" : "no");
    }
    return 0;
  }

  // Incremental replay mode: feed the input through the maintenance engine
  // batch by batch, then cross-check the maintained tableau against a
  // from-scratch discovery over the full series (the engine's exactness
  // contract, enforced here on real inputs as a deployment smoke check).
  auto append_batch = flags.GetIntOr("append_batch", 0);
  if (!append_batch.ok()) return Fail(append_batch.status().ToString());
  if (*append_batch < 0) return Fail("--append_batch must be >= 0");
  if (*append_batch > 0) {
    auto metrics_every = flags.GetIntOr("metrics_every", 0);
    if (!metrics_every.ok()) return Fail(metrics_every.status().ToString());
    if (*metrics_every < 0) return Fail("--metrics_every must be >= 0");
    auto batch_pause_ms = flags.GetIntOr("batch_pause_ms", 0);
    if (!batch_pause_ms.ok()) return Fail(batch_pause_ms.status().ToString());
    if (*batch_pause_ms < 0) return Fail("--batch_pause_ms must be >= 0");
    const std::string tenant = flags.GetStringOr("tenant", "default");
    // Per-tenant/per-generator attribution of the batch latency; the
    // unlabeled incr.batch_seconds recorded inside AppendBatch stays the
    // all-up total. Hoisted here: one family lookup for the whole replay.
    obs::Histogram& batch_seconds =
        obs::LabeledHistogram("incr.batch_seconds",
                              {1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0})
            .With({{"tenant", tenant},
                   {"generator", flags.GetStringOr("algorithm", "area")}});

    const int64_t m = *append_batch;
    const series::CountSequence& full = rule->counts();
    const int64_t n = full.n();
    const int64_t initial = std::min<int64_t>(m, n);
    auto discoverer = incr::IncrementalDiscoverer::Create(
        full.Prefix(initial), request);
    if (!discoverer.ok()) return Fail(discoverer.status().ToString());
    const std::vector<double>& a = full.outbound();
    const std::vector<double>& b = full.inbound();
    int64_t batches_done = 0;
    for (int64_t at = initial; at < n; at += m) {
      util::Stopwatch batch_timer;
      discoverer->AppendBatch(a.data() + at, b.data() + at,
                              std::min<int64_t>(m, n - at));
      batch_seconds.Record(batch_timer.ElapsedSeconds());
      ++batches_done;
      if (*metrics_every > 0 && batches_done % *metrics_every == 0) {
        // Periodic emission: advance the shared sliding window and write
        // one self-contained JSON progress line to stderr — the end-to-end
        // path the windowed quantiles are designed for. Never stdout: the
        // result stream stays byte-identical with serving/metrics off.
        obs::WindowAggregator::Global().Advance();
        const obs::WindowSnapshot window =
            obs::WindowAggregator::Global().Snapshot();
        std::fprintf(stderr, "{\"batch\":%lld,\"ticks\":%lld,\"windows\":%s}\n",
                     static_cast<long long>(batches_done),
                     static_cast<long long>(std::min<int64_t>(at + m, n)),
                     window.ToJson().c_str());
        std::fflush(stderr);
      }
      if (*batch_pause_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(*batch_pause_ms));
      }
    }
    const incr::IncrStats& st = discoverer->stats();
    std::printf("%s", discoverer->tableau().ToString().c_str());
    std::printf(
        "incremental replay: batches=%lld candidates_extended=%lld "
        "cover_warm_pops=%lld full_rebuilds=%lld dirty_anchors=%lld\n",
        static_cast<long long>(st.batches),
        static_cast<long long>(st.candidates_extended),
        static_cast<long long>(st.cover_warm_pops),
        static_cast<long long>(st.full_rebuilds),
        static_cast<long long>(st.dirty_anchors));
    auto fresh = rule->DiscoverTableau(request);
    if (!fresh.ok()) return Fail(fresh.status().ToString());
    const core::Tableau& inc = discoverer->tableau();
    bool identical = inc.rows.size() == fresh->rows.size() &&
                     inc.covered == fresh->covered &&
                     inc.required == fresh->required &&
                     inc.support_satisfied == fresh->support_satisfied &&
                     inc.num_candidates == fresh->num_candidates;
    for (size_t r = 0; identical && r < inc.rows.size(); ++r) {
      identical = inc.rows[r].interval.begin == fresh->rows[r].interval.begin &&
                  inc.rows[r].interval.end == fresh->rows[r].interval.end &&
                  inc.rows[r].confidence == fresh->rows[r].confidence;
    }
    std::printf("cross-check vs from-scratch: %s\n",
                identical ? "identical" : "MISMATCH");
    return identical ? 0 : 1;
  }

  auto tableau = rule->DiscoverTableau(request);
  if (!tableau.ok()) return Fail(tableau.status().ToString());
  auto as_json = flags.GetBoolOr("json", false);
  if (!as_json.ok()) return Fail(as_json.status().ToString());
  auto want_cover_stats = flags.GetBoolOr("cover_stats", false);
  if (!want_cover_stats.ok()) return Fail(want_cover_stats.status().ToString());

  // Everything past discovery goes through one serialized sink and is
  // flushed as a single write per stream: result output (stdout) first,
  // then diagnostics (stderr). Direct printf here used to interleave the
  // two streams timing-dependently under `> log 2>&1`; stdout must also
  // stay bit-identical at any --threads value, which
  // tools/stdout_regression.sh enforces.
  obs::Sink sink;
  const auto kResult = obs::Sink::Channel::kResult;
  const auto kDiagnostic = obs::Sink::Channel::kDiagnostic;

  if (*as_json) {
    if (want_metrics) {
      const obs::MetricsSnapshot snapshot = obs::Registry::Global().Snapshot();
      sink.Line(kResult, io::TableauToJson(*tableau, &snapshot));
    } else {
      sink.Line(kResult, io::TableauToJson(*tableau));
    }
    sink.Flush();
    return 0;
  }
  sink.Line(kResult, tableau->ToString());

  // Phase stats are diagnostics: shard counts and wall times vary with
  // --threads, while the result channel stays bit-identical.
  const cover::CoverStats& cs = tableau->cover_stats;
  sink.Line(
      kDiagnostic,
      util::StrFormat(
          "generation: candidates=%llu tested=%llu shards=%d wall=%.4fs",
          static_cast<unsigned long long>(tableau->num_candidates),
          static_cast<unsigned long long>(
              tableau->generation_stats.intervals_tested),
          tableau->generation_stats.shards,
          tableau->generation_stats.wall_seconds));
  sink.Line(
      kDiagnostic,
      util::StrFormat(
          "cover: rounds=%lld heap_pops=%lld stale_reevals=%lld "
          "tick_visits=%lld peak_heap=%lld seed=%.4fs select=%.4fs "
          "total=%.4fs",
          static_cast<long long>(cs.rounds),
          static_cast<long long>(cs.heap_pops),
          static_cast<long long>(cs.stale_reevaluations),
          static_cast<long long>(cs.tick_visits),
          static_cast<long long>(cs.peak_heap_size), cs.seed_seconds,
          cs.select_seconds, tableau->cover_seconds));
  if (*want_cover_stats) {
    sink.Line(
        kResult,
        util::StrFormat(
            "{\"cover_stats\":{\"rounds\":%lld,\"heap_pops\":%lld,"
            "\"stale_reevaluations\":%lld,\"tick_visits\":%lld,"
            "\"peak_heap_size\":%lld,\"seed_seconds\":%s,"
            "\"select_seconds\":%s,\"seconds\":%s}}",
            static_cast<long long>(cs.rounds),
            static_cast<long long>(cs.heap_pops),
            static_cast<long long>(cs.stale_reevaluations),
            static_cast<long long>(cs.tick_visits),
            static_cast<long long>(cs.peak_heap_size),
            util::FormatNumber(cs.seed_seconds, 9).c_str(),
            util::FormatNumber(cs.select_seconds, 9).c_str(),
            util::FormatNumber(tableau->cover_seconds, 9).c_str()));
  }
  if (want_metrics && obs_guard.metrics_path.empty()) {
    // Diagnostic channel only: the selected backend is machine provenance
    // and must not reach the result stream, which stays byte-identical
    // across CONSERVATION_SIMD builds (tools/stdout_regression.sh).
    sink.Line(kDiagnostic,
              std::string("kernel backend: ") +
                  interval::internal::SimdBackendName(
                      interval::internal::ActiveSimdBackend()));
    sink.Line(kDiagnostic,
              "metrics: " + obs::Registry::Global().Snapshot().ToJson());
  }

  auto severity = flags.GetBoolOr("severity", false);
  if (!severity.ok()) return Fail(severity.status().ToString());
  if (*severity) {
    sink.Line(kResult, "\nby severity (misplaced mass):");
    for (const core::SeverityEntry& entry :
         core::RankBySeverity(*rule, *model, *tableau)) {
      sink.Line(kResult,
                util::StrFormat(
                    "  %-14s conf=%.4f misplaced=%s",
                    entry.interval.ToString().c_str(), entry.confidence,
                    util::FormatNumber(entry.misplaced_mass, 2).c_str()));
    }
  }
  sink.Flush();
  return 0;
}
