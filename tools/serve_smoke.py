#!/usr/bin/env python3
"""End-to-end smoke for the serving daemon: launch crserved on ephemeral
ingest + metrics ports, replay a ~32-tenant simulated node fleet through
crserve_driver (paced so the replay stays in flight), scrape /metrics
mid-run, validate the payload as Prometheus exposition (validate_prom.py)
and require the serve.* families, then SIGTERM the daemon and assert a
clean drain (exit 0, ticks_ingested == ticks_processed).

Usage: tools/serve_smoke.py CRSERVED_BIN CRSERVE_DRIVER_BIN
Stdlib only; exit 0 on success, 1 with a diagnostic otherwise.
"""

import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import validate_prom  # noqa: E402


def fail(message):
    print(f"serve_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def wait_for_port_file(path, process, what, timeout_seconds=20.0):
    deadline = time.monotonic() + timeout_seconds
    while time.monotonic() < deadline:
        if process.poll() is not None:
            fail(f"crserved exited early with code {process.returncode}")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read().strip()
            if text:
                return int(text)
        except (OSError, ValueError):
            pass
        time.sleep(0.05)
    fail(f"timed out waiting for the {what} port file")


def scrape(port):
    url = f"http://127.0.0.1:{port}/metrics"
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            body = response.read().decode("utf-8")
    except (urllib.error.URLError, OSError) as error:
        fail(f"GET {url}: {error}")
    if not body:
        fail("empty scrape body")
    return body


def validate(body):
    with tempfile.NamedTemporaryFile(
            "w", suffix=".txt", delete=False, encoding="utf-8") as handle:
        handle.write(body)
        path = handle.name
    try:
        argv = [
            "validate_prom.py", path,
            "--require-series", "serve_ticks_ingested",
            "--require-series", "serve_tenants",
            "--require-series", "serve_dispatch_batch_seconds_bucket",
        ]
        old_argv = sys.argv
        sys.argv = argv
        try:
            validate_prom.main()
        except SystemExit as stop:
            if stop.code not in (0, None):
                fail("validate_prom rejected the mid-run scrape")
        finally:
            sys.argv = old_argv
    finally:
        os.unlink(path)


def main():
    if len(sys.argv) != 3:
        fail("usage: serve_smoke.py CRSERVED_BIN CRSERVE_DRIVER_BIN")
    crserved_bin, driver_bin = sys.argv[1], sys.argv[2]

    with tempfile.TemporaryDirectory() as tmpdir:
        ingest_port_file = os.path.join(tmpdir, "ingest.port")
        metrics_port_file = os.path.join(tmpdir, "metrics.port")
        daemon = subprocess.Popen(
            [
                crserved_bin,
                "--port=0",
                f"--port_file={ingest_port_file}",
                "--metrics_port=0",
                f"--metrics_port_file={metrics_port_file}",
                "--readers=2",
                "--type=fail", "--c_hat=0.5", "--s_hat=0.05",
                "--refresh_ms=20",
                "--max_hot=8",  # forces eviction/fault traffic mid-run
            ],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        try:
            wait_for_port_file(ingest_port_file, daemon, "ingest")
            metrics_port = wait_for_port_file(
                metrics_port_file, daemon, "metrics")

            # ~32 tenants (8 nodes x ~4 links), paced to ~200
            # ticks/sec/tenant so the replay takes >= 0.8 s — plenty of
            # window for a mid-run scrape even on a loaded machine.
            driver = subprocess.Popen(
                [
                    driver_bin,
                    f"--port_file={ingest_port_file}",
                    "--nodes=8", "--bad_nodes=1",
                    "--ticks=160", "--batch=8", "--rate=200",
                ],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
            time.sleep(0.4)
            body = scrape(metrics_port)
            mid_flight = driver.poll() is None
            driver_out, driver_err = driver.communicate(timeout=120)
            if driver.returncode != 0:
                fail(f"crserve_driver exited {driver.returncode}; "
                     f"stderr:\n{driver_err}")
            if not mid_flight:
                fail("replay finished before the scrape; increase pacing")
            validate(body)

            # Clean drain on SIGTERM: exit 0 and ingested == processed
            # (crserved itself exits 1 and prints DRAIN MISMATCH if not).
            daemon.send_signal(signal.SIGTERM)
            stdout, stderr = daemon.communicate(timeout=120)
        except Exception:
            daemon.kill()
            raise

    if daemon.returncode != 0:
        fail(f"crserved exited {daemon.returncode}; stderr:\n{stderr}")
    if "DRAIN MISMATCH" in stderr:
        fail(f"drain mismatch; stderr:\n{stderr}")
    if "drained" not in stderr:
        fail(f"missing drain summary; stderr:\n{stderr}")

    print("serve_smoke: OK: mid-run scrape validated, clean SIGTERM drain")
    print(f"serve_smoke: driver: {driver_err.strip().splitlines()[-1]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
