#!/usr/bin/env bash
# Stdout bit-identity regression for crdiscover across thread counts and,
# optionally, across SIMD kernel backends.
#
# The discovery pipeline guarantees thread-count-independent results
# (DESIGN.md "Parallel execution"), and the obs::Sink routing guarantees
# deterministic output ordering — so crdiscover's stdout must be
# byte-for-byte identical at every --threads value. Diagnostics on stderr
# (wall times, shard counts) legitimately vary and are not compared; the
# *_seconds timing fields inside the --cover_stats JSON line vary between
# any two runs (even at the same thread count) and are zeroed before the
# comparison — every counter field stays under the bit-identity contract.
#
# When a second binary is given (a crdiscover from a CONSERVATION_SIMD=off
# build tree), its stdout is diffed against the first binary's: the batch
# kernels' bit-identity contract (interval/kernel_simd.h) makes the result
# stream independent of the dispatched backend, so a vectorized build and a
# scalar-only build must agree byte for byte too.
#
# Usage: tools/stdout_regression.sh CRDISCOVER_BINARY INPUT_CSV [OFF_BINARY]
set -euo pipefail
source "$(dirname "$0")/smoke_lib.sh"

if [[ $# -lt 2 || $# -gt 3 ]]; then
  echo "usage: stdout_regression.sh CRDISCOVER_BINARY INPUT_CSV [OFF_BINARY]" >&2
  exit 2
fi
crdiscover="$1"
input="$2"
off_binary="${3:-}"

smoke_tmp_workdir
workdir="${SMOKE_WORKDIR}"

common_args=(--input="${input}" --type=fail --c_hat=0.3 --s_hat=0.02
             --cover_stats --severity)

zero_timings() {
  sed -E 's/"(seed_seconds|select_seconds|seconds)":[0-9.eE+-]+/"\1":0/g'
}

for threads in 1 2 4; do
  "${crdiscover}" "${common_args[@]}" --threads="${threads}" 2> /dev/null \
    | zero_timings > "${workdir}/stdout_t${threads}.txt"
done

status=0
for threads in 2 4; do
  if ! cmp -s "${workdir}/stdout_t1.txt" "${workdir}/stdout_t${threads}.txt"; then
    echo "FAIL: stdout differs between --threads=1 and --threads=${threads}:" >&2
    diff "${workdir}/stdout_t1.txt" "${workdir}/stdout_t${threads}.txt" >&2 || true
    status=1
  fi
done

if [[ -n "${off_binary}" ]]; then
  "${off_binary}" "${common_args[@]}" --threads=1 2> /dev/null \
    | zero_timings > "${workdir}/stdout_simd_off.txt"
  if ! cmp -s "${workdir}/stdout_t1.txt" "${workdir}/stdout_simd_off.txt"; then
    echo "FAIL: stdout differs between SIMD and CONSERVATION_SIMD=off builds:" >&2
    diff "${workdir}/stdout_t1.txt" "${workdir}/stdout_simd_off.txt" >&2 || true
    status=1
  fi
fi

if [[ ${status} -eq 0 ]]; then
  if [[ -n "${off_binary}" ]]; then
    echo "OK: stdout bit-identical across --threads=1,2,4 and SIMD backends"
  else
    echo "OK: stdout bit-identical across --threads=1,2,4"
  fi
fi
exit ${status}
