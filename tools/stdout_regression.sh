#!/usr/bin/env bash
# Stdout bit-identity regression for crdiscover across thread counts.
#
# The discovery pipeline guarantees thread-count-independent results
# (DESIGN.md "Parallel execution"), and the obs::Sink routing guarantees
# deterministic output ordering — so crdiscover's stdout must be
# byte-for-byte identical at every --threads value. Diagnostics on stderr
# (wall times, shard counts) legitimately vary and are not compared; the
# *_seconds timing fields inside the --cover_stats JSON line vary between
# any two runs (even at the same thread count) and are zeroed before the
# comparison — every counter field stays under the bit-identity contract.
#
# Usage: tools/stdout_regression.sh CRDISCOVER_BINARY INPUT_CSV
set -euo pipefail

if [[ $# -ne 2 ]]; then
  echo "usage: stdout_regression.sh CRDISCOVER_BINARY INPUT_CSV" >&2
  exit 2
fi
crdiscover="$1"
input="$2"

workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT

common_args=(--input="${input}" --type=fail --c_hat=0.3 --s_hat=0.02
             --cover_stats --severity)

for threads in 1 2 4; do
  "${crdiscover}" "${common_args[@]}" --threads="${threads}" 2> /dev/null \
    | sed -E 's/"(seed_seconds|select_seconds|seconds)":[0-9.eE+-]+/"\1":0/g' \
    > "${workdir}/stdout_t${threads}.txt"
done

status=0
for threads in 2 4; do
  if ! cmp -s "${workdir}/stdout_t1.txt" "${workdir}/stdout_t${threads}.txt"; then
    echo "FAIL: stdout differs between --threads=1 and --threads=${threads}:" >&2
    diff "${workdir}/stdout_t1.txt" "${workdir}/stdout_t${threads}.txt" >&2 || true
    status=1
  fi
done

if [[ ${status} -eq 0 ]]; then
  echo "OK: stdout bit-identical across --threads=1,2,4"
fi
exit ${status}
