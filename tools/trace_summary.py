#!/usr/bin/env python3
"""Summarize a trace written by obs::WriteTrace (crdiscover --trace=FILE).

For every span name ("phase" in the <subsystem>.<step> naming convention)
prints:

  * count   — number of complete (ph=X) events;
  * cpu     — summed duration across all events, i.e. total thread-time
              spent inside the phase (parallel phases exceed wall);
  * wall    — length of the union of the phase's [ts, ts+dur) intervals
              across all threads, i.e. elapsed time during which at least
              one thread was inside the phase;
  * mean/max per-span duration.

Then lists the top 10 widest individual spans with their thread and start
time — the first place to look for a straggler chunk or a lopsided phase.

Usage: tools/trace_summary.py TRACE.json [--top=10]
Stdlib only. Times are reported in milliseconds.
"""

import argparse
import json
import sys
from collections import defaultdict


def union_length(intervals):
    """Total length covered by a list of (start, end) intervals."""
    total = 0.0
    last_end = None
    for start, end in sorted(intervals):
        if last_end is None or start > last_end:
            total += end - start
            last_end = end
        elif end > last_end:
            total += end - last_end
            last_end = end
    return total


def main():
    parser = argparse.ArgumentParser(
        description="Per-phase totals and widest spans of an obs trace.")
    parser.add_argument("trace", help="trace-event JSON file")
    parser.add_argument("--top", type=int, default=10,
                        help="how many widest spans to list (default 10)")
    args = parser.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"trace_summary: {args.trace}: {error}", file=sys.stderr)
        return 1

    events = doc.get("traceEvents", [])
    thread_names = {}
    spans = []
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            thread_names[event.get("tid")] = event.get("args", {}).get(
                "name", "")
        elif event.get("ph") == "X":
            spans.append(event)
    if not spans:
        print("trace_summary: no complete (ph=X) events in trace")
        return 1

    by_name = defaultdict(list)
    for span in spans:
        by_name[span["name"]].append(span)

    print(f"{'phase':<24} {'count':>7} {'cpu ms':>10} {'wall ms':>10} "
          f"{'mean ms':>9} {'max ms':>9}")
    # Phases ordered by CPU time: the biggest time sinks first.
    rows = []
    for name, group in by_name.items():
        durs = [s["dur"] for s in group]
        cpu = sum(durs)
        wall = union_length([(s["ts"], s["ts"] + s["dur"]) for s in group])
        rows.append((cpu, name, len(group), wall, max(durs)))
    for cpu, name, count, wall, max_dur in sorted(rows, reverse=True):
        print(f"{name:<24} {count:>7} {cpu / 1000.0:>10.3f} "
              f"{wall / 1000.0:>10.3f} {cpu / count / 1000.0:>9.3f} "
              f"{max_dur / 1000.0:>9.3f}")

    print(f"\ntop {args.top} widest spans:")
    widest = sorted(spans, key=lambda s: s["dur"], reverse=True)[:args.top]
    for span in widest:
        tid = span["tid"]
        thread = thread_names.get(tid, f"thread-{tid}")
        args_text = ""
        if span.get("args"):
            pairs = ", ".join(f"{k}={v}" for k, v in span["args"].items())
            args_text = f"  [{pairs}]"
        print(f"  {span['dur'] / 1000.0:>9.3f} ms  {span['name']:<20} "
              f"{thread:<16} @ {span['ts'] / 1000.0:.3f} ms{args_text}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
