// Concurrency smoke for the obs subsystem, built for ThreadSanitizer.
//
// Hammers the metrics registry, labeled families, and the trace ring
// buffers from more threads than there are counter stripes (kWriters >
// kStripes, so stripe sharing is exercised), while:
//   * a reader thread repeatedly snapshots and serializes the registry;
//   * a window thread advances the global WindowAggregator and takes
//     windowed snapshots;
//   * an in-process ScrapeServer serves /metrics and a client thread
//     scrapes it in a loop — the scrape-vs-hot-path interleavings the
//     TSan configuration exists to certify.
//
// Also asserts the arithmetic invariants that survive concurrency:
// counter totals are exact (no lost increments across shared stripes),
// histogram total_count matches the records issued, labeled With()
// resolution returns the same handle from every thread, and a final
// post-join snapshot equals the expected sums.
//
// Registered in ctest twice: obs_metrics_smoke (regular build, checks the
// invariants) and tsan_obs_metrics_smoke (via tools/sanitizer_smoke.sh,
// checks the memory model).

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "obs/labels.h"
#include "obs/metrics.h"
#include "obs/scrape.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "obs/window.h"

namespace {

using namespace conservation;

// 3x the stripe count: under ThreadIndex() % kStripes every stripe is
// shared by three writers, so relaxed fetch_add merging is actually
// exercised rather than each writer owning a private cell.
constexpr int kWriters = 3 * obs::kStripes;
constexpr uint64_t kIncrementsPerWriter = 20000;

void Die(const char* what) {
  std::fprintf(stderr, "obs_smoke: FAIL: %s\n", what);
  std::exit(1);
}

}  // namespace

int main() {
  static_assert(kWriters > obs::kStripes,
                "smoke must run more writers than stripes");
  obs::TraceOptions trace_options;
  trace_options.verbosity = 2;
  trace_options.buffer_capacity = 1024;  // force ring wrap under load
  obs::StartTracing(trace_options);

  obs::Registry& registry = obs::Registry::Global();
  registry.ResetForTest();
  obs::WindowAggregator::Global().ResetForTest();
  obs::Counter& hits = registry.Counter("smoke.hits");
  obs::Gauge& level = registry.Gauge("smoke.level");
  obs::Histogram& latency =
      registry.Histogram("smoke.latency", {1.0, 10.0, 100.0});
  obs::CounterFamily& labeled = obs::LabeledCounter("smoke.labeled_hits");

  // Watchdog with a generous budget: claims/releases race with the poll
  // thread but no stall should ever fire.
  obs::WatchdogOptions watchdog_options;
  watchdog_options.default_budget_seconds = 300.0;
  watchdog_options.poll_interval_seconds = 0.01;
  obs::StartWatchdog(watchdog_options);

  obs::ScrapeServer server;
  obs::ScrapeServerOptions serve_options;
  serve_options.window_advance_seconds = 0.02;  // aggressive cadence
  std::string serve_error;
  if (!server.Start(serve_options, &serve_error)) {
    std::fprintf(stderr, "obs_smoke: FAIL: scrape server: %s\n",
                 serve_error.c_str());
    return 1;
  }

  std::atomic<bool> stop{false};
  std::thread reader([&stop, &registry] {
    // Concurrent metric snapshots + serialization: must be torn-free
    // (counter values monotone across snapshots) and race-free under TSan.
    // Trace export is deliberately NOT exercised here: TraceToJson is a
    // quiescent-point operation (obs/trace.h) and runs after the join.
    uint64_t last = 0;
    int snapshots = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const obs::MetricsSnapshot snapshot = registry.Snapshot();
      for (const auto& [name, value] : snapshot.counters) {
        if (name != "smoke.hits") continue;
        if (value < last) Die("counter snapshot went backwards");
        last = value;
      }
      if (++snapshots % 50 == 0 && snapshot.ToJson().empty()) {
        Die("empty metrics export");
      }
      std::this_thread::yield();
    }
  });

  std::thread windower([&stop] {
    // Windowed snapshots concurrent with the writers: deltas of torn-free
    // snapshots must themselves stay non-negative and monotone-safe.
    while (!stop.load(std::memory_order_acquire)) {
      obs::WindowAggregator::Global().Advance();
      const obs::WindowSnapshot window =
          obs::WindowAggregator::Global().Snapshot();
      for (const obs::WindowedCounter& counter : window.counters) {
        if (counter.rate_per_sec < 0) Die("negative windowed rate");
      }
      if (window.ToJson().empty()) Die("empty window export");
      std::this_thread::yield();
    }
  });

  std::thread scraper([&stop, &server] {
    // Loopback HTTP client hammering /metrics (and the JSON mirror) while
    // writers run: the scrape-vs-hot-path data-race-freedom certification.
    int scrapes = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const std::string body = obs::ScrapeOnce(server.port(), "/metrics");
      if (body.empty()) Die("empty /metrics scrape");
      if (body.find("# TYPE smoke_hits counter") == std::string::npos) {
        Die("scrape missing smoke_hits family");
      }
      if (++scrapes % 4 == 0 &&
          obs::ScrapeOnce(server.port(), "/metrics.json").empty()) {
        Die("empty /metrics.json scrape");
      }
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([w, &hits, &level, &latency, &labeled] {
      obs::SetCurrentThreadName("smoke-writer-" + std::to_string(w));
      // Resolve the labeled child once per thread (two label values ->
      // half the writers share each child) and verify handle identity.
      const char* shard = (w % 2 == 0) ? "even" : "odd";
      obs::Counter& child = labeled.With({{"shard", shard}});
      if (&child != &labeled.With({{"shard", shard}})) {
        Die("labeled With() returned different handles for one labelset");
      }
      obs::ScopedDeadline deadline("smoke.writer");
      for (uint64_t k = 0; k < kIncrementsPerWriter; ++k) {
        CR_TRACE_SPAN_ARGS("smoke.iteration", "writer", w);
        hits.Increment();
        child.Increment();
        level.Set(static_cast<double>(k));
        latency.Record(static_cast<double>(k % 128));
        CR_TRACE_INSTANT_V2("smoke.tick");
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  windower.join();
  scraper.join();
  server.Stop();
  obs::StopWatchdog();
  obs::StopTracing();

  const uint64_t expected =
      static_cast<uint64_t>(kWriters) * kIncrementsPerWriter;
  if (hits.Value() != expected) Die("lost counter increments");
  if (latency.TotalCount() != expected) Die("lost histogram records");
  const uint64_t even = labeled.With({{"shard", "even"}}).Value();
  const uint64_t odd = labeled.With({{"shard", "odd"}}).Value();
  if (even + odd != expected) Die("lost labeled increments");
  if (even != (kWriters / 2 + kWriters % 2) * kIncrementsPerWriter) {
    Die("labeled even-shard total wrong");
  }
  if (obs::WatchdogStallCount() != 0) Die("spurious watchdog stall");
  const std::string trace = obs::TraceToJson();
  if (trace.find("\"smoke.iteration\"") == std::string::npos) {
    Die("trace export missing recorded spans");
  }
  // The 1024-slot rings wrapped under 20k events/thread, so the live drop
  // counter must have fired (satellite: obs.trace_events_dropped).
  if (registry.Counter("obs.trace_events_dropped").Value() == 0) {
    Die("trace ring wrapped but obs.trace_events_dropped stayed 0");
  }
  obs::ClearTrace();
  std::printf("obs_smoke: OK (%d writers x %llu increments, labels + "
              "windows + scrape + watchdog)\n",
              kWriters, static_cast<unsigned long long>(kIncrementsPerWriter));
  return 0;
}
