// Concurrency smoke for the obs subsystem, built for ThreadSanitizer.
//
// Hammers the metrics registry and the trace ring buffers from many
// threads at once while a reader thread repeatedly snapshots and exports —
// the exact interleavings TSan needs to see to certify the lock-free
// counter stripes and the release-published ring heads. Also asserts the
// arithmetic invariants that survive concurrency: counter totals are exact
// (no lost increments), histogram total_count matches the records issued,
// and a final post-join snapshot equals the expected sums.
//
// Registered in ctest twice: obs_metrics_smoke (regular build, checks the
// invariants) and tsan_obs_metrics_smoke (via tools/sanitizer_smoke.sh, checks
// the memory model).

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using namespace conservation;

constexpr int kWriters = 8;
constexpr uint64_t kIncrementsPerWriter = 50000;

void Die(const char* what) {
  std::fprintf(stderr, "obs_smoke: FAIL: %s\n", what);
  std::exit(1);
}

}  // namespace

int main() {
  obs::TraceOptions trace_options;
  trace_options.verbosity = 2;
  trace_options.buffer_capacity = 1024;  // force ring wrap under load
  obs::StartTracing(trace_options);

  obs::Registry& registry = obs::Registry::Global();
  registry.ResetForTest();
  obs::Counter& hits = registry.Counter("smoke.hits");
  obs::Gauge& level = registry.Gauge("smoke.level");
  obs::Histogram& latency =
      registry.Histogram("smoke.latency", {1.0, 10.0, 100.0});

  std::atomic<bool> stop{false};
  std::thread reader([&stop, &registry] {
    // Concurrent metric snapshots + serialization: must be torn-free
    // (counter values monotone across snapshots) and race-free under TSan.
    // Trace export is deliberately NOT exercised here: TraceToJson is a
    // quiescent-point operation (obs/trace.h) and runs after the join.
    uint64_t last = 0;
    int snapshots = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const obs::MetricsSnapshot snapshot = registry.Snapshot();
      for (const auto& [name, value] : snapshot.counters) {
        if (name != "smoke.hits") continue;
        if (value < last) Die("counter snapshot went backwards");
        last = value;
      }
      if (++snapshots % 50 == 0 && snapshot.ToJson().empty()) {
        Die("empty metrics export");
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([w, &hits, &level, &latency] {
      obs::SetCurrentThreadName("smoke-writer-" + std::to_string(w));
      for (uint64_t k = 0; k < kIncrementsPerWriter; ++k) {
        CR_TRACE_SPAN_ARGS("smoke.iteration", "writer", w);
        hits.Increment();
        level.Set(static_cast<double>(k));
        latency.Record(static_cast<double>(k % 128));
        CR_TRACE_INSTANT_V2("smoke.tick");
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  obs::StopTracing();

  const uint64_t expected =
      static_cast<uint64_t>(kWriters) * kIncrementsPerWriter;
  if (hits.Value() != expected) Die("lost counter increments");
  if (latency.TotalCount() != expected) Die("lost histogram records");
  const std::string trace = obs::TraceToJson();
  if (trace.find("\"smoke.iteration\"") == std::string::npos) {
    Die("trace export missing recorded spans");
  }
  obs::ClearTrace();
  std::printf("obs_smoke: OK (%d writers x %llu increments)\n", kWriters,
              static_cast<unsigned long long>(kIncrementsPerWriter));
  return 0;
}
