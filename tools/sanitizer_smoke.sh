#!/usr/bin/env bash
# Builds a binary in a sanitized build tree and runs it. Used by ctest to
# enforce sanitizer coverage on every full test run, not just when someone
# remembers check_tsan.sh:
#   - ThreadSanitizer over the parallel paths (shard_smoke, cover_smoke,
#     obs_smoke) and the batch-kernel differential suite;
#   - AddressSanitizer over the batch-kernel differential suite, which is
#     what catches an out-of-bounds vector lane read at a batch tail.
#
# Usage: tools/sanitizer_smoke.sh [build-dir] [target] [sanitizer] [subdir]
#   build-dir  default: <repo>/build-tsan
#   target     default: shard_smoke
#   sanitizer  'thread' (default) or 'address' (CONSERVATION_SANITIZE)
#   subdir     build-tree subdirectory holding the binary; default: tools
set -euo pipefail
source "$(dirname "$0")/smoke_lib.sh"

build_dir="${1:-$(smoke_repo_root)/build-tsan}"
target="${2:-shard_smoke}"
sanitizer="${3:-thread}"
subdir="${4:-tools}"

smoke_build_variant "${build_dir}" "${target}" \
  -DCONSERVATION_SANITIZE="${sanitizer}"

# halt_on_error: make the first report fail the run instead of scrolling by.
TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
ASAN_OPTIONS="halt_on_error=1 ${ASAN_OPTIONS:-}" \
  "${build_dir}/${subdir}/${target}"
