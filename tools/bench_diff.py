#!/usr/bin/env python3
"""Compare two bench --json files and print per-config deltas.

Records are keyed by (bench, n, algorithm, model, threads, k, walk_width,
sketch, sketch_block, incr_mode, batch, rate); k is 0 for records without a
candidate-count dimension (everything except the cover bench, which
sweeps k at fixed n), walk_width is 0 for records without a walk-width
dimension (everything except the walks bench, which sweeps it at fixed
n), sketch / sketch_block are "" / 0 outside the sketch bench (which
sweeps screen off-vs-auto at a fixed block span), and incr_mode / batch
are "" / 0 outside the incremental-maintenance bench (which compares
per-batch AppendBatch latency against a from-scratch run at each batch
size), and rate is 0.0 outside the serving bench (which sweeps tenant
count and pacing; its batch slot is the append frame size and its
threads slot the client count). The compared quantity is `seconds`
(end-to-end wall clock; mean per-batch latency on incr rows). Configs present in only one file are
listed separately. When both records carry the parallel observability
block, speedup and imbalance deltas are shown too; when both carry the
cover block, cover_speedup and stale-re-evaluation deltas are shown;
when both carry the walk block, lane-occupancy deltas are shown; when
both carry the sketch block, prune-rate deltas (or bytes-per-tick deltas
for the store-footprint rows) are shown; when both carry the incr block,
amortized-speedup and warm-heap-pop deltas are shown. Measurement
provenance (repeats / warmups, like the SIMD backend and the raw
pruned/scanned and rebuild/dirty counters) is dropped from keys and
comparisons.

Usage:
  tools/bench_diff.py OLD.json NEW.json [--threshold=5] [--fail-on-regress]

  --threshold=PCT      mark a config as a regression when NEW is more than
                       PCT percent slower than OLD (default 5)
  --fail-on-regress    exit 1 if any regression was marked (for CI gates)

Stdlib only; no third-party dependencies.
"""

import argparse
import json
import sys


def load_records(path):
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, list):
        raise SystemExit(f"{path}: expected a JSON array of records")
    records = {}
    for record in data:
        # The optional obs-registry snapshot (BenchJson::AttachMetrics) is
        # process-cumulative state, not a per-config quantity — drop it so
        # it can never leak into keys or comparisons. Likewise the SIMD
        # backend field: machine provenance, not part of the config.
        record.pop("metrics", None)
        record.pop("backend", None)
        record.pop("repeats", None)
        record.pop("warmups", None)
        record.pop("anchors_pruned", None)
        record.pop("sketch_scan_blocks", None)
        record.pop("candidates_extended", None)
        record.pop("full_rebuilds", None)
        record.pop("dirty_anchors", None)
        record.pop("serve_faults", None)
        record.pop("serve_evictions", None)
        key = (
            record.get("bench", ""),
            record.get("n", 0),
            record.get("algorithm", ""),
            record.get("model", ""),
            record.get("threads", 1),
            record.get("k", 0),
            record.get("walk_width", 0),
            record.get("sketch", ""),
            record.get("sketch_block", 0),
            record.get("incr_mode", ""),
            record.get("batch", 0),
            record.get("rate", 0.0),
        )
        if key in records:
            print(f"warning: {path}: duplicate record for {key}; "
                  "keeping the last one", file=sys.stderr)
        records[key] = record
    return records


def fmt_key(key):
    bench, n, algorithm, model, threads, k, walk_width, sketch, \
        sketch_block, incr_mode, batch, rate = key
    text = f"{bench} n={n} {algorithm} {model} threads={threads}"
    if k:
        text += f" k={k}"
    if walk_width:
        text += f" walk_width={walk_width}"
    if sketch:
        text += f" sketch={sketch}"
    if sketch_block:
        text += f" sketch_block={sketch_block}"
    if incr_mode:
        text += f" incr_mode={incr_mode}"
    if batch:
        text += f" batch={batch}"
    if rate:
        text += f" rate={rate:g}"
    return text


def main():
    parser = argparse.ArgumentParser(
        description="Diff two bench JSON files per config.")
    parser.add_argument("old", help="baseline bench JSON file")
    parser.add_argument("new", help="candidate bench JSON file")
    parser.add_argument("--threshold", type=float, default=5.0,
                        help="regression threshold in percent (default 5)")
    parser.add_argument("--fail-on-regress", action="store_true",
                        help="exit 1 when any config regresses past the "
                             "threshold")
    args = parser.parse_args()

    old = load_records(args.old)
    new = load_records(args.new)

    shared = sorted(set(old) & set(new))
    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))

    regressions = []
    print(f"comparing {args.old} (old) vs {args.new} (new): "
          f"{len(shared)} shared config(s)")
    for key in shared:
        o, n = old[key], new[key]
        o_sec, n_sec = o.get("seconds", 0.0), n.get("seconds", 0.0)
        if o_sec > 0:
            delta_pct = 100.0 * (n_sec - o_sec) / o_sec
            delta = f"{delta_pct:+.1f}%"
        else:
            delta_pct = 0.0
            delta = "n/a"
        marker = ""
        if o_sec > 0 and delta_pct > args.threshold:
            marker = "  <-- REGRESSION"
            regressions.append(key)
        elif o_sec > 0 and delta_pct < -args.threshold:
            marker = "  (improved)"
        line = (f"  {fmt_key(key)}: {o_sec:.3f}s -> {n_sec:.3f}s "
                f"({delta}){marker}")
        extras = []
        if "speedup" in o and "speedup" in n:
            extras.append(f"speedup {o['speedup']:.2f}x -> "
                          f"{n['speedup']:.2f}x")
        if "imbalance" in o and "imbalance" in n:
            extras.append(f"imbalance {o['imbalance']:.2f} -> "
                          f"{n['imbalance']:.2f}")
        if o.get("cover_speedup") and n.get("cover_speedup"):
            extras.append(f"cover_speedup {o['cover_speedup']:.1f}x -> "
                          f"{n['cover_speedup']:.1f}x")
        if "stale_reevaluations" in o and "stale_reevaluations" in n:
            extras.append(f"stale {o['stale_reevaluations']} -> "
                          f"{n['stale_reevaluations']}")
        if "lane_occupancy" in o and "lane_occupancy" in n:
            extras.append(f"occupancy {o['lane_occupancy']:.3f} -> "
                          f"{n['lane_occupancy']:.3f}")
        if "prune_rate" in o and "prune_rate" in n:
            extras.append(f"prune_rate {o['prune_rate']:.3f} -> "
                          f"{n['prune_rate']:.3f}")
        if "bytes_per_tick" in o and "bytes_per_tick" in n:
            extras.append(f"bytes_per_tick {o['bytes_per_tick']:.2f} -> "
                          f"{n['bytes_per_tick']:.2f}")
        if o.get("incr_speedup") and n.get("incr_speedup"):
            extras.append(f"incr_speedup {o['incr_speedup']:.1f}x -> "
                          f"{n['incr_speedup']:.1f}x")
        if "cover_warm_pops" in o and "cover_warm_pops" in n:
            extras.append(f"warm_pops {o['cover_warm_pops']} -> "
                          f"{n['cover_warm_pops']}")
        if "p99_ms" in o and "p99_ms" in n:
            extras.append(f"p50 {o.get('p50_ms', 0):.2f}ms -> "
                          f"{n.get('p50_ms', 0):.2f}ms")
            extras.append(f"p99 {o['p99_ms']:.2f}ms -> {n['p99_ms']:.2f}ms")
        if "ticks_per_sec" in o and "ticks_per_sec" in n:
            extras.append(f"ticks/s {o['ticks_per_sec']:.0f} -> "
                          f"{n['ticks_per_sec']:.0f}")
        if extras:
            line += "\n      " + ", ".join(extras)
        print(line)

    for key in only_old:
        print(f"  {fmt_key(key)}: only in {args.old}")
    for key in only_new:
        print(f"  {fmt_key(key)}: only in {args.new}")

    if regressions:
        print(f"{len(regressions)} regression(s) past "
              f"{args.threshold:.1f}% threshold")
        if args.fail_on_regress:
            return 1
    else:
        print("no regressions past threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
