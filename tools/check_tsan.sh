#!/usr/bin/env bash
# Builds the suite under ThreadSanitizer and runs the tests that exercise
# the parallel paths (thread pool, sharded generators, batched streaming).
#
# Usage: tools/check_tsan.sh [extra ctest args...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-tsan"

cmake -B "${build_dir}" -S "${repo_root}" -DCONSERVATION_SANITIZE=thread
cmake --build "${build_dir}" -j \
  --target parallel_test interval_test shard_scheduler_test \
  multi_resolution_test network_test

# gtest_discover_tests registers ctest entries per gtest suite.case, so
# filter on the suites that stress the concurrent code.
ctest --test-dir "${build_dir}" --output-on-failure \
  -R 'ParallelFor|ThreadPool|ShardInvariance|ShardScheduler|MultiWindowMonitor|FleetTest' \
  "$@"
