// crgen: generate synthetic conservation-rule datasets as CSV.
//
// Usage:
//   crgen --dataset=<name> --output=out.csv [options]
//
// Datasets: credit_card, people_count, router, router_bad, tcp, joblog,
//           wellbehaved, powergrid, powergrid_theft
// Common options: --n=<ticks> --seed=<k>
// Perturbation (applied after generation):
//   --perturb_fraction=<d>  remove d of total outbound at the peak
//   --loss                  do not compensate (default: delayed, not lost)

#include <cstdio>
#include <string>

#include "datagen/credit_card.h"
#include "datagen/job_log.h"
#include "datagen/people_count.h"
#include "datagen/perturb.h"
#include "datagen/power_grid.h"
#include "datagen/router.h"
#include "datagen/tcp_trace.h"
#include "io/csv.h"
#include "util/flags.h"

namespace {

using namespace conservation;

int Fail(const std::string& message) {
  std::fprintf(stderr, "crgen: %s\n", message.c_str());
  return 1;
}

util::Result<series::CountSequence> Generate(const std::string& dataset,
                                             int64_t n, uint64_t seed) {
  if (dataset == "credit_card") {
    datagen::CreditCardParams params;
    params.seed = seed;
    return datagen::GenerateCreditCard(params).counts;
  }
  if (dataset == "people_count") {
    datagen::PeopleCountParams params;
    params.seed = seed;
    return datagen::GeneratePeopleCount(params).counts;
  }
  if (dataset == "router" || dataset == "router_bad") {
    datagen::RouterParams params;
    params.profile = dataset == "router"
                         ? datagen::RouterProfile::kClean
                         : datagen::RouterProfile::kUnmonitoredLink;
    if (n > 0) params.num_ticks = n;
    params.seed = seed;
    return datagen::GenerateRouter(params).counts;
  }
  if (dataset == "tcp") {
    datagen::TcpTraceParams params;
    if (n > 0) params.num_ticks = n;
    params.seed = seed;
    return datagen::GenerateTcpTrace(params).counts;
  }
  if (dataset == "joblog") {
    datagen::JobLogParams params;
    if (n > 0) params.num_ticks = n;
    params.seed = seed;
    return datagen::GenerateJobLog(params).counts;
  }
  if (dataset == "wellbehaved") {
    return datagen::GenerateWellBehavedTraffic(n > 0 ? n : 906, seed);
  }
  if (dataset == "powergrid" || dataset == "powergrid_theft") {
    datagen::PowerGridParams params;
    if (n > 0) params.num_ticks = n;
    params.seed = seed;
    if (dataset == "powergrid_theft") {
      params.theft_start_tick = params.num_ticks / 3;
    }
    return datagen::GeneratePowerGrid(params).counts;
  }
  return util::Status::InvalidArgument("unknown dataset: " + dataset);
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags;
  if (util::Status status = flags.Parse(argc, argv); !status.ok()) {
    return Fail(status.ToString());
  }
  const std::string dataset = flags.GetStringOr("dataset", "");
  const std::string output = flags.GetStringOr("output", "");
  if (dataset.empty() || output.empty()) {
    return Fail("required: --dataset=<name> --output=<path> "
                "(see header comment for dataset names)");
  }
  auto n = flags.GetIntOr("n", 0);
  auto seed = flags.GetIntOr("seed", 12345);
  if (!n.ok()) return Fail(n.status().ToString());
  if (!seed.ok()) return Fail(seed.status().ToString());

  auto counts =
      Generate(dataset, *n, static_cast<uint64_t>(*seed));
  if (!counts.ok()) return Fail(counts.status().ToString());

  auto perturb_fraction = flags.GetDoubleOr("perturb_fraction", 0.0);
  if (!perturb_fraction.ok()) {
    return Fail(perturb_fraction.status().ToString());
  }
  if (*perturb_fraction > 0.0) {
    auto loss = flags.GetBoolOr("loss", false);
    if (!loss.ok()) return Fail(loss.status().ToString());
    datagen::PerturbationSpec spec;
    spec.fraction = *perturb_fraction;
    spec.compensate = !*loss;
    spec.latest_start_fraction = 0.5;
    spec.seed = static_cast<uint64_t>(*seed) + 1;
    datagen::PerturbationInfo info;
    *counts = datagen::ApplyPerturbation(*counts, spec, &info);
    std::fprintf(stderr,
                 "crgen: perturbed drop [%lld, %lld]%s\n",
                 static_cast<long long>(info.drop_begin),
                 static_cast<long long>(info.drop_end),
                 *loss ? " (loss)" : " (delayed)");
  }

  if (util::Status status = io::WriteCountsCsv(output, *counts);
      !status.ok()) {
    return Fail(status.ToString());
  }
  std::printf("crgen: wrote %lld ticks of '%s' to %s\n",
              static_cast<long long>(counts->n()), dataset.c_str(),
              output.c_str());
  return 0;
}
