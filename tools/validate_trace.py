#!/usr/bin/env python3
"""Validate a Chrome/Perfetto trace-event JSON file written by the obs
subsystem (obs::WriteTrace / crdiscover --trace=FILE).

Checks the schema invariants the exporter promises, so a formatting
regression fails ctest instead of silently producing a file Perfetto
rejects:

  * top level is an object with a "traceEvents" list;
  * every event has name/ph/pid/tid, ph is one of X (complete),
    i (instant) or M (metadata);
  * X events carry numeric ts and dur >= 0; i events carry ts and
    thread scope s == "t"; M events are thread_name metadata with an
    args.name string;
  * at least one X event exists (a trace of a real run is never empty);
  * every tid that records an X or i event also has a thread_name
    metadata event (named tracks in the Perfetto UI);
  * "otherData" carries a non-negative integer dropped_events count.

Usage: tools/validate_trace.py TRACE.json
Stdlib only; exit 0 on a valid trace, 1 with a diagnostic otherwise.
"""

import json
import sys


def fail(message):
    print(f"validate_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def main():
    if len(sys.argv) != 2:
        fail("usage: validate_trace.py TRACE.json")
    path = sys.argv[1]
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"{path}: {error}")

    if not isinstance(doc, dict):
        fail("top level must be an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail('missing "traceEvents" list')

    complete_events = 0
    event_tids = set()
    named_tids = set()
    for k, event in enumerate(events):
        where = f"traceEvents[{k}]"
        if not isinstance(event, dict):
            fail(f"{where}: not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                fail(f"{where}: missing {key!r}")
        ph = event["ph"]
        if ph not in ("X", "i", "M"):
            fail(f"{where}: unexpected ph {ph!r}")
        if ph == "X":
            complete_events += 1
            event_tids.add(event["tid"])
            if not number(event.get("ts")):
                fail(f"{where}: X event needs numeric ts")
            if not number(event.get("dur")) or event["dur"] < 0:
                fail(f"{where}: X event needs dur >= 0")
        elif ph == "i":
            event_tids.add(event["tid"])
            if not number(event.get("ts")):
                fail(f"{where}: i event needs numeric ts")
            if event.get("s") != "t":
                fail(f"{where}: i event needs thread scope s == 't'")
        else:  # M
            if event["name"] != "thread_name":
                fail(f"{where}: only thread_name metadata is emitted")
            name = event.get("args", {}).get("name")
            if not isinstance(name, str) or not name:
                fail(f"{where}: thread_name needs args.name string")
            named_tids.add(event["tid"])

    if complete_events == 0:
        fail("no complete (ph=X) events; trace of a real run is never empty")
    unnamed = event_tids - named_tids
    if unnamed:
        fail(f"tids without thread_name metadata: {sorted(unnamed)}")

    other = doc.get("otherData")
    if not isinstance(other, dict):
        fail('missing "otherData" object')
    dropped = other.get("dropped_events")
    if not isinstance(dropped, int) or isinstance(dropped, bool) or dropped < 0:
        fail("otherData.dropped_events must be a non-negative integer")

    print(f"validate_trace: OK: {len(events)} events "
          f"({complete_events} spans, {len(named_tids)} named threads, "
          f"{dropped} dropped)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
