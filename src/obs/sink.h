// Serialized sink for human-facing observability output.
//
// Motivating bug: crdiscover printed result JSON on stdout and phase stats
// on stderr as each phase finished. With both streams captured into one
// file (the usual `cmd > log 2>&1`), the interleaving — and at higher
// --threads values even the relative order of the stats lines — depended
// on thread timing, so logs were not diffable across runs. The sink
// restores a deterministic contract: every observability line is buffered
// per channel, and Flush() emits each channel as one contiguous write —
// result output first, then diagnostics — in append order within a
// channel. Stdout content therefore stays bit-identical across --threads
// settings (enforced by tools/stdout_regression.sh in ctest).
//
// Append is mutex-serialized and safe from any thread; Flush is meant for
// the end of a command.

#ifndef CONSERVATION_OBS_SINK_H_
#define CONSERVATION_OBS_SINK_H_

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

namespace conservation::obs {

class Sink {
 public:
  // kResult: machine-readable command output (flushed to stdout).
  // kDiagnostic: stats/progress lines (flushed to stderr, after kResult).
  enum class Channel { kResult, kDiagnostic };

  Sink() = default;
  Sink(const Sink&) = delete;
  Sink& operator=(const Sink&) = delete;

  // Appends one line (a trailing newline is added if missing).
  void Line(Channel channel, const std::string& text) {
    std::lock_guard<std::mutex> lock(mu_);
    std::string& buffer =
        channel == Channel::kResult ? result_ : diagnostic_;
    buffer += text;
    if (text.empty() || text.back() != '\n') buffer += '\n';
  }

  // Writes the result channel to `out` and the diagnostic channel to `err`
  // as single fwrite calls, then clears both buffers.
  void Flush(std::FILE* out = stdout, std::FILE* err = stderr) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!result_.empty()) {
      std::fwrite(result_.data(), 1, result_.size(), out);
      std::fflush(out);
      result_.clear();
    }
    if (!diagnostic_.empty()) {
      std::fwrite(diagnostic_.data(), 1, diagnostic_.size(), err);
      std::fflush(err);
      diagnostic_.clear();
    }
  }

 private:
  std::mutex mu_;
  std::string result_;
  std::string diagnostic_;
};

}  // namespace conservation::obs

#endif  // CONSERVATION_OBS_SINK_H_
