#include "obs/labels.h"

#include <algorithm>
#include <memory>

namespace conservation::obs {

LabelSet::LabelSet(std::vector<Label> labels) : entries_(std::move(labels)) {
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const Label& lhs, const Label& rhs) {
                     return lhs.first < rhs.first;
                   });
  // Keep the first occurrence of a duplicated key (stable sort preserves
  // the caller's order among equal keys).
  entries_.erase(std::unique(entries_.begin(), entries_.end(),
                             [](const Label& lhs, const Label& rhs) {
                               return lhs.first == rhs.first;
                             }),
                 entries_.end());
}

std::string EncodeLabeledName(const std::string& base,
                              const LabelSet& labels) {
  if (labels.empty()) return base;
  std::string out = base;
  out.push_back('{');
  bool first = true;
  for (const Label& label : labels.entries()) {
    if (!first) out.push_back(',');
    first = false;
    out += label.first;
    out += "=\"";
    for (const char c : label.second) {
      if (c == '\\' || c == '"') out.push_back('\\');
      out.push_back(c);
    }
    out.push_back('"');
  }
  out.push_back('}');
  return out;
}

DecodedName DecodeLabeledName(const std::string& encoded) {
  DecodedName decoded;
  const size_t brace = encoded.find('{');
  if (brace == std::string::npos || encoded.back() != '}') {
    decoded.base = encoded;
    return decoded;
  }
  decoded.base = encoded.substr(0, brace);
  size_t at = brace + 1;
  const size_t end = encoded.size() - 1;  // position of the closing '}'
  while (at < end) {
    const size_t eq = encoded.find('=', at);
    if (eq == std::string::npos || eq >= end || eq + 1 >= end ||
        encoded[eq + 1] != '"') {
      // Malformed: fall back to treating the whole string as a base name.
      return DecodedName{encoded, {}};
    }
    std::string key = encoded.substr(at, eq - at);
    std::string value;
    size_t v = eq + 2;
    bool closed = false;
    for (; v < end; ++v) {
      const char c = encoded[v];
      if (c == '\\' && v + 1 < end) {
        value.push_back(encoded[++v]);
      } else if (c == '"') {
        closed = true;
        break;
      } else {
        value.push_back(c);
      }
    }
    if (!closed) return DecodedName{encoded, {}};
    decoded.labels.emplace_back(std::move(key), std::move(value));
    at = v + 1;
    if (at < end && encoded[at] == ',') ++at;
  }
  return decoded;
}

Counter& LabelsDroppedCounter() {
  static Counter& counter =
      Registry::Global().Counter("obs.labelsets_dropped");
  return counter;
}

Counter& CounterFamily::With(const LabelSet& labels) {
  return Resolve(labels, [](const std::string& encoded) -> Counter& {
    return Registry::Global().Counter(encoded);
  });
}

Gauge& GaugeFamily::With(const LabelSet& labels) {
  return Resolve(labels, [](const std::string& encoded) -> Gauge& {
    return Registry::Global().Gauge(encoded);
  });
}

Histogram& HistogramFamily::With(const LabelSet& labels) {
  return Resolve(labels, [this](const std::string& encoded) -> Histogram& {
    return Registry::Global().Histogram(encoded, bounds_);
  });
}

namespace {

// Family registry, separate from the metric registry: families are lookup
// indirection, not metrics (their children are the metrics). Leaked for
// the same handle-lifetime reasons as Registry::Impl.
struct FamilyRegistry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<CounterFamily>> counters;
  std::map<std::string, std::unique_ptr<GaugeFamily>> gauges;
  std::map<std::string, std::unique_ptr<HistogramFamily>> histograms;

  static FamilyRegistry& Get() {
    static FamilyRegistry* instance = new FamilyRegistry();
    return *instance;
  }
};

}  // namespace

CounterFamily& LabeledCounter(const std::string& name, size_t max_labelsets) {
  FamilyRegistry& families = FamilyRegistry::Get();
  std::lock_guard<std::mutex> lock(families.mu);
  auto& slot = families.counters[name];
  if (slot == nullptr) {
    slot = std::make_unique<CounterFamily>(name, max_labelsets);
  }
  return *slot;
}

GaugeFamily& LabeledGauge(const std::string& name, size_t max_labelsets) {
  FamilyRegistry& families = FamilyRegistry::Get();
  std::lock_guard<std::mutex> lock(families.mu);
  auto& slot = families.gauges[name];
  if (slot == nullptr) {
    slot = std::make_unique<GaugeFamily>(name, max_labelsets);
  }
  return *slot;
}

HistogramFamily& LabeledHistogram(const std::string& name,
                                  std::vector<double> bounds,
                                  size_t max_labelsets) {
  FamilyRegistry& families = FamilyRegistry::Get();
  std::lock_guard<std::mutex> lock(families.mu);
  auto& slot = families.histograms[name];
  if (slot == nullptr) {
    slot = std::make_unique<HistogramFamily>(name, std::move(bounds),
                                             max_labelsets);
  }
  return *slot;
}

}  // namespace conservation::obs
