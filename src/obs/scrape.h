// Pull-based scrape surface for the metrics registry: Prometheus text
// exposition (format v0.0.4) and a minimal blocking HTTP/1.1 server — the
// first networking building block for the roadmap's long-running
// conservation daemon.
//
// Exposition mapping (docs/OBSERVABILITY.md):
//   * metric names sanitize to the Prometheus charset — every character
//     outside [a-zA-Z0-9_:] becomes '_' ("stream.ticks" -> "stream_ticks");
//   * encoded labeled names (obs/labels.h) split back into base + labels:
//     `incr.batch_seconds{tenant="t0"}` exports as
//     `incr_batch_seconds_*{tenant="t0",...}`;
//   * counters export as TYPE counter, gauges as TYPE gauge;
//   * histograms export in native Prometheus histogram form: cumulative
//     `<name>_bucket{le="..."}` samples (one per bound plus le="+Inf"),
//     `<name>_sum` and `<name>_count`;
//   * when a WindowSnapshot is supplied, each histogram additionally
//     exports `<name>_window` as TYPE summary (quantile="0.5|0.95|0.99"
//     samples over the sliding window plus `_window_sum`/`_window_count`),
//     each counter exports a `<name>_window_rate` gauge, and the window
//     span itself exports as `obs_window_span_seconds`.
//
// Server: one blocking accept loop on a private thread, bound to
// 127.0.0.1 by default (operator tooling, not an internet listener). GET
// /metrics serves the exposition text, GET /metrics.json the JSON snapshot
// plus the window block, GET /healthz a liveness probe; anything else is
// 404. Connections are serviced one at a time and closed per request —
// scrape cadences are seconds, not microseconds. The serve loop also
// advances the shared WindowAggregator on a configurable cadence, so
// merely running the server keeps the sliding windows live.
//
// Reads are snapshots (torn-free, metrics.h) and the server never touches
// hot-path writer state, so scraping is data-race free against instrumented
// code — certified by the TSan obs smoke, which scrapes in a loop while
// writer threads hammer the registry.
//
// Layering: standard library + POSIX sockets only (still below util; no
// util::Status — errors come back as bool + message).

#ifndef CONSERVATION_OBS_SCRAPE_H_
#define CONSERVATION_OBS_SCRAPE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/window.h"

namespace conservation::obs {

// Prometheus-legal metric name: [a-zA-Z_:][a-zA-Z0-9_:]*. Every illegal
// character maps to '_'; a leading digit gets a '_' prefix. Distinct raw
// names can collide after sanitization ("a.b" / "a_b") — the dotted
// convention never produces such pairs.
std::string SanitizePromName(const std::string& raw);

// Renders the full exposition document. `windows` may be null (no summary
// / rate section). Ends with a trailing newline as the format requires.
std::string ToPrometheusText(const MetricsSnapshot& snapshot,
                             const WindowSnapshot* windows);

struct ScrapeServerOptions {
  int port = 0;                      // 0 = ephemeral (read back via port())
  std::string bind_address = "127.0.0.1";
  // Cadence for advancing WindowAggregator::Global() from the serve loop;
  // <= 0 disables (the caller owns window advancement).
  double window_advance_seconds = 1.0;
  // When non-empty, the bound port is written here (one decimal line) by
  // Start, atomically (tmp + rename) so a watching scraper can never read
  // a torn file. Written after listen() succeeds; a write failure fails
  // Start and tears the socket back down.
  std::string port_file;
};

// Writes `contents` to `path` atomically: a same-directory "<path>.tmp" is
// written, fsync-ed and rename(2)-d over the target, so concurrent readers
// see either the old file or the complete new one, never a prefix. Shared
// by the scrape server and the serving daemon's port files. Returns false
// (with a reason in *error if non-null) on any I/O failure; the tmp file
// is cleaned up best-effort.
bool AtomicWriteFile(const std::string& path, const std::string& contents,
                     std::string* error);

class ScrapeServer {
 public:
  ScrapeServer() = default;
  ~ScrapeServer() { Stop(); }
  ScrapeServer(const ScrapeServer&) = delete;
  ScrapeServer& operator=(const ScrapeServer&) = delete;

  // Binds, listens and spawns the serve thread. Returns false (with a
  // human-readable reason in *error if non-null) when the socket cannot be
  // set up; the server is then inert and Start may be retried.
  bool Start(const ScrapeServerOptions& options, std::string* error);

  // Stops the serve thread and closes the listening socket. Idempotent;
  // called by the destructor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // Bound port (the ephemeral choice when options.port was 0).
  int port() const { return port_; }

 private:
  void ServeLoop();
  void HandleConnection(int fd);

  ScrapeServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
};

// Minimal loopback HTTP GET for tests, smokes and benches: fetches
// http://127.0.0.1:port<path> and returns the response body ("" on any
// error). Blocking, single attempt, 5 s receive timeout.
std::string ScrapeOnce(int port, const std::string& path);

}  // namespace conservation::obs

#endif  // CONSERVATION_OBS_SCRAPE_H_
