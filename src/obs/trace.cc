#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <mutex>
#include <vector>

#include "obs/metrics.h"

namespace conservation::obs {

namespace {

struct TraceEvent {
  const char* name = nullptr;
  const char* arg0_key = nullptr;
  const char* arg1_key = nullptr;
  int64_t arg0 = 0;
  int64_t arg1 = 0;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  char phase = 'X';  // 'X' complete, 'i' instant
};

// Single-writer ring buffer; the owning thread appends, the exporter reads
// at quiescence. `head` counts all events ever recorded (monotone), so
// size = min(head, capacity) and drops = head - size. Event storage is
// allocated on the thread's first recorded event — naming a thread (or
// merely touching obs from it) costs no buffer memory.
struct ThreadBuffer {
  explicit ThreadBuffer(int tid_in) : tid(tid_in) {}

  const int tid;
  std::vector<TraceEvent> events;  // empty until the first Record
  std::atomic<uint64_t> head{0};
  std::string thread_name;  // written by owner, read at quiescent export
  std::mutex name_mu;

  void Record(const TraceEvent& event);
};

struct TraceGlobals {
  std::mutex mu;
  std::vector<ThreadBuffer*> buffers;  // leaked; indexed registration order
  TraceOptions options;
};

TraceGlobals& Globals() {
  static TraceGlobals* globals = new TraceGlobals();
  return *globals;
}

Counter& TraceEventsDroppedCounter() {
  static Counter& counter =
      Registry::Global().Counter("obs.trace_events_dropped");
  return counter;
}

void ThreadBuffer::Record(const TraceEvent& event) {
  if (events.empty()) {
    // First event from this thread: size the ring to the active session's
    // capacity. One registry lock per thread per process.
    TraceGlobals& globals = Globals();
    std::lock_guard<std::mutex> lock(globals.mu);
    events.resize(globals.options.buffer_capacity);
  }
  const uint64_t slot = head.load(std::memory_order_relaxed);
  if (slot >= events.size()) {
    // The ring wrapped: this write evicts the oldest retained event.
    // Counted live so a scrape can alert on trace loss long before export.
    TraceEventsDroppedCounter().Increment();
  }
  events[static_cast<size_t>(slot % events.size())] = event;
  head.store(slot + 1, std::memory_order_release);
}

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

ThreadBuffer& LocalBuffer() {
  thread_local ThreadBuffer* buffer = [] {
    TraceGlobals& globals = Globals();
    std::lock_guard<std::mutex> lock(globals.mu);
    // Leaked so the exporter may read it after the thread exits.
    auto* created = new ThreadBuffer(ThreadIndex());
    globals.buffers.push_back(created);
    return created;
  }();
  return *buffer;
}

void AppendEscaped(std::string* out, const std::string& text) {
  out->push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// Microsecond timestamp with nanosecond fraction, as Chrome expects.
void AppendMicros(std::string* out, uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  *out += buf;
}

}  // namespace

uint64_t TraceNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - TraceEpoch())
          .count());
}

void StartTracing(const TraceOptions& options) {
  TraceEpoch();  // pin the epoch before the first event
  TraceGlobals& globals = Globals();
  {
    std::lock_guard<std::mutex> lock(globals.mu);
    globals.options = options;
    globals.options.verbosity = options.verbosity < 1 ? 1 : options.verbosity;
    if (globals.options.buffer_capacity < 16) {
      globals.options.buffer_capacity = 16;
    }
    // Re-size existing rings to the session capacity and drop stale events.
    // StartTracing is a quiescent-point operation: no thread may be
    // recording concurrently (recording was either never enabled or all
    // recording sections have joined).
    for (ThreadBuffer* buffer : globals.buffers) {
      if (!buffer->events.empty()) {
        buffer->events.assign(globals.options.buffer_capacity, TraceEvent{});
      }
      buffer->head.store(0, std::memory_order_release);
    }
  }
  TraceState().store(options.verbosity < 1 ? 1 : options.verbosity,
                     std::memory_order_relaxed);
}

void StopTracing() { TraceState().store(0, std::memory_order_relaxed); }

void ClearTrace() {
  TraceGlobals& globals = Globals();
  std::lock_guard<std::mutex> lock(globals.mu);
  for (ThreadBuffer* buffer : globals.buffers) {
    buffer->head.store(0, std::memory_order_release);
  }
}

void SetCurrentThreadName(const std::string& name) {
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.name_mu);
  buffer.thread_name = name;
}

void TraceInstant(const char* name) {
  if (!TracingEnabled()) return;
  TraceEvent event;
  event.name = name;
  event.start_ns = TraceNowNs();
  event.phase = 'i';
  LocalBuffer().Record(event);
}

void TraceComplete(const char* name, uint64_t start_ns, uint64_t dur_ns,
                   const char* arg0_key, int64_t arg0, const char* arg1_key,
                   int64_t arg1) {
  if (!TracingEnabled()) return;
  TraceEvent event;
  event.name = name;
  event.arg0_key = arg0_key;
  event.arg0 = arg0;
  event.arg1_key = arg1_key;
  event.arg1 = arg1;
  event.start_ns = start_ns;
  event.dur_ns = dur_ns;
  event.phase = 'X';
  LocalBuffer().Record(event);
}

std::string TraceToJson() {
  TraceGlobals& globals = Globals();
  std::vector<ThreadBuffer*> buffers;
  {
    std::lock_guard<std::mutex> lock(globals.mu);
    buffers = globals.buffers;
  }

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  uint64_t dropped_total = 0;
  for (ThreadBuffer* buffer : buffers) {
    const uint64_t head = buffer->head.load(std::memory_order_acquire);
    const size_t capacity = buffer->events.size();
    const uint64_t count = head < capacity ? head : capacity;
    dropped_total += head - count;

    std::string thread_name;
    {
      std::lock_guard<std::mutex> lock(buffer->name_mu);
      thread_name = buffer->thread_name;
    }
    if (thread_name.empty()) {
      thread_name = "thread-" + std::to_string(buffer->tid);
    }
    if (count > 0 || !thread_name.empty()) {
      if (!first) out += ',';
      first = false;
      out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
      out += std::to_string(buffer->tid);
      out += ",\"args\":{\"name\":";
      AppendEscaped(&out, thread_name);
      out += "}}";
    }

    // Oldest retained event first.
    const uint64_t begin = head - count;
    for (uint64_t k = begin; k < head; ++k) {
      const TraceEvent& event =
          buffer->events[static_cast<size_t>(k % capacity)];
      if (!first) out += ',';
      first = false;
      out += "{\"name\":";
      AppendEscaped(&out, event.name);
      out += ",\"ph\":\"";
      out.push_back(event.phase);
      out += "\",\"pid\":1,\"tid\":";
      out += std::to_string(buffer->tid);
      out += ",\"ts\":";
      AppendMicros(&out, event.start_ns);
      if (event.phase == 'X') {
        out += ",\"dur\":";
        AppendMicros(&out, event.dur_ns);
      } else {
        out += ",\"s\":\"t\"";  // thread-scoped instant
      }
      if (event.arg0_key != nullptr || event.arg1_key != nullptr) {
        out += ",\"args\":{";
        bool first_arg = true;
        if (event.arg0_key != nullptr) {
          AppendEscaped(&out, event.arg0_key);
          out += ':';
          out += std::to_string(event.arg0);
          first_arg = false;
        }
        if (event.arg1_key != nullptr) {
          if (!first_arg) out += ',';
          AppendEscaped(&out, event.arg1_key);
          out += ':';
          out += std::to_string(event.arg1);
        }
        out += '}';
      }
      out += '}';
    }
  }
  out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":";
  out += std::to_string(dropped_total);
  out += "}}";
  return out;
}

bool WriteTrace(const std::string& path) {
  const std::string json = TraceToJson();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "obs: cannot write trace file %s\n", path.c_str());
    return false;
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool closed = std::fclose(file) == 0;
  const bool ok = written == json.size() && closed;
  if (!ok) std::fprintf(stderr, "obs: short write to %s\n", path.c_str());
  return ok;
}

}  // namespace conservation::obs
