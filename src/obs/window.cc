#include "obs/window.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>

namespace conservation::obs {

namespace {

// Shared steady epoch so AdvanceAt/Advance interleave consistently within a
// process (tests use one or the other, never both).
std::chrono::steady_clock::time_point WindowEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

void AppendDouble(std::string* out, double value) {
  if (!std::isfinite(value)) {
    *out += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  *out += buf;
}

void AppendName(std::string* out, const std::string& name) {
  out->push_back('"');
  for (const char c : name) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

double QuantileFromBuckets(const std::vector<double>& bounds,
                           const std::vector<uint64_t>& counts, double q) {
  uint64_t total = 0;
  for (const uint64_t count : counts) total += count;
  if (total == 0 || bounds.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (size_t b = 0; b < counts.size(); ++b) {
    const double next = cumulative + static_cast<double>(counts[b]);
    if (next >= target && counts[b] > 0) {
      if (b >= bounds.size()) {
        // Overflow bucket: no finite upper bound; clamp to the last bound
        // (histogram_quantile's convention).
        return bounds.back();
      }
      const double lower = b == 0 ? std::min(0.0, bounds[0]) : bounds[b - 1];
      const double upper = bounds[b];
      const double fraction =
          (target - cumulative) / static_cast<double>(counts[b]);
      return lower + fraction * (upper - lower);
    }
    cumulative = next;
  }
  return bounds.back();
}

WindowAggregator::WindowAggregator(const WindowOptions& options)
    : options_(options) {
  if (options_.num_epochs < 1) options_.num_epochs = 1;
  ring_.resize(static_cast<size_t>(options_.num_epochs));
}

double WindowAggregator::NowSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       WindowEpoch())
      .count();
}

void WindowAggregator::Advance() { AdvanceAt(NowSeconds()); }

void WindowAggregator::AdvanceAt(double now_seconds) {
  MetricsSnapshot snapshot = Registry::Global().Snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  const size_t capacity = ring_.size();
  const size_t slot = (tail_ + size_) % capacity;
  ring_[slot].at_seconds = now_seconds;
  ring_[slot].metrics = std::move(snapshot);
  if (size_ < capacity) {
    ++size_;
  } else {
    tail_ = (tail_ + 1) % capacity;  // overwrote the oldest epoch
  }
}

WindowSnapshot WindowAggregator::Snapshot() const {
  return SnapshotAt(NowSeconds());
}

WindowSnapshot WindowAggregator::SnapshotAt(double now_seconds) const {
  WindowSnapshot out;
  const MetricsSnapshot current = Registry::Global().Snapshot();

  // Copy the baseline out under the lock; the delta math runs unlocked.
  MetricsSnapshot baseline;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.epochs = static_cast<int>(size_);
    if (size_ == 0) return out;
    const Epoch& oldest = ring_[tail_];
    out.span_seconds = std::max(0.0, now_seconds - oldest.at_seconds);
    baseline = oldest.metrics;
  }
  const double span = out.span_seconds;

  std::map<std::string, uint64_t> base_counters(baseline.counters.begin(),
                                                baseline.counters.end());
  out.counters.reserve(current.counters.size());
  for (const auto& [name, value] : current.counters) {
    WindowedCounter counter;
    counter.name = name;
    const auto it = base_counters.find(name);
    const uint64_t before = it == base_counters.end() ? 0 : it->second;
    // Metrics are monotone; guard anyway so a ResetForTest between epochs
    // can never underflow.
    counter.delta = value >= before ? value - before : value;
    counter.rate_per_sec =
        span > 0.0 ? static_cast<double>(counter.delta) / span : 0.0;
    out.counters.push_back(std::move(counter));
  }

  std::map<std::string, const HistogramSnapshot*> base_histograms;
  for (const HistogramSnapshot& h : baseline.histograms) {
    base_histograms[h.name] = &h;
  }
  out.histograms.reserve(current.histograms.size());
  for (const HistogramSnapshot& h : current.histograms) {
    WindowedHistogram windowed;
    windowed.name = h.name;
    windowed.bounds = h.bounds;
    windowed.delta_counts.assign(h.counts.size(), 0);
    const auto it = base_histograms.find(h.name);
    const HistogramSnapshot* before =
        it == base_histograms.end() ? nullptr : it->second;
    const bool comparable =
        before != nullptr && before->counts.size() == h.counts.size();
    double before_sum = 0.0;
    for (size_t b = 0; b < h.counts.size(); ++b) {
      const uint64_t old_count = comparable ? before->counts[b] : 0;
      windowed.delta_counts[b] =
          h.counts[b] >= old_count ? h.counts[b] - old_count : h.counts[b];
      windowed.count += windowed.delta_counts[b];
    }
    if (comparable) before_sum = before->sum;
    windowed.sum = h.sum - before_sum;
    windowed.rate_per_sec =
        span > 0.0 ? static_cast<double>(windowed.count) / span : 0.0;
    windowed.p50 = QuantileFromBuckets(h.bounds, windowed.delta_counts, 0.50);
    windowed.p95 = QuantileFromBuckets(h.bounds, windowed.delta_counts, 0.95);
    windowed.p99 = QuantileFromBuckets(h.bounds, windowed.delta_counts, 0.99);
    out.histograms.push_back(std::move(windowed));
  }
  return out;
}

void WindowAggregator::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  tail_ = 0;
  size_ = 0;
}

WindowAggregator& WindowAggregator::Global() {
  static WindowAggregator* instance = new WindowAggregator();
  return *instance;
}

std::string WindowSnapshot::ToJson() const {
  std::string out = "{\"span_seconds\":";
  AppendDouble(&out, span_seconds);
  out += ",\"epochs\":";
  out += std::to_string(epochs);
  out += ",\"counters\":{";
  bool first = true;
  for (const WindowedCounter& counter : counters) {
    if (!first) out += ',';
    first = false;
    AppendName(&out, counter.name);
    out += ":{\"delta\":";
    out += std::to_string(counter.delta);
    out += ",\"rate\":";
    AppendDouble(&out, counter.rate_per_sec);
    out += '}';
  }
  out += "},\"histograms\":{";
  first = true;
  for (const WindowedHistogram& histogram : histograms) {
    if (!first) out += ',';
    first = false;
    AppendName(&out, histogram.name);
    out += ":{\"count\":";
    out += std::to_string(histogram.count);
    out += ",\"rate\":";
    AppendDouble(&out, histogram.rate_per_sec);
    out += ",\"p50\":";
    AppendDouble(&out, histogram.p50);
    out += ",\"p95\":";
    AppendDouble(&out, histogram.p95);
    out += ",\"p99\":";
    AppendDouble(&out, histogram.p99);
    out += '}';
  }
  out += "}}";
  return out;
}

}  // namespace conservation::obs
