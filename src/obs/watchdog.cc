#include "obs/watchdog.h"

#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>

#include "obs/labels.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace conservation::obs {

namespace {

struct WatchdogGlobals {
  std::mutex mu;             // guards start/stop transitions
  WatchdogOptions options;
  std::thread thread;
  std::atomic<bool> stop{false};
  std::atomic<bool> trace_dumped{false};
  std::atomic<uint64_t> stalls{0};
  internal::WatchdogSlot slots[kWatchdogSlots];

  static WatchdogGlobals& Get() {
    static WatchdogGlobals* globals = new WatchdogGlobals();
    return *globals;
  }
};

Counter& StallsCounter() {
  static Counter& counter = Registry::Global().Counter("obs.stalls_detected");
  return counter;
}

Counter& SlotsMissedCounter() {
  static Counter& counter =
      Registry::Global().Counter("obs.watchdog_slots_missed");
  return counter;
}

CounterFamily& StallsFamily() {
  static CounterFamily& family = LabeledCounter("obs.stalls");
  return family;
}

void FlagStall(WatchdogGlobals& globals, internal::WatchdogSlot& slot,
               const char* phase, uint64_t now_ns) {
  const uint64_t start_ns = slot.start_ns.load(std::memory_order_relaxed);
  globals.stalls.fetch_add(1, std::memory_order_relaxed);
  StallsCounter().Increment();
  StallsFamily().With({{"phase", phase}}).Increment();
  std::fprintf(stderr,
               "obs: watchdog stall in phase %s: %.3f s elapsed, budget was "
               "%.3f s\n",
               phase, static_cast<double>(now_ns - start_ns) * 1e-9,
               static_cast<double>(slot.deadline_ns.load(
                                       std::memory_order_relaxed) -
                                   start_ns) *
                   1e-9);
  if (!globals.options.stall_trace_path.empty() && TracingEnabled() &&
      !globals.trace_dumped.exchange(true, std::memory_order_acq_rel)) {
    // Concurrent export while recording continues: trace.h documents this
    // as possibly lossy but never unsafe — the right trade for a stall
    // snapshot.
    WriteTrace(globals.options.stall_trace_path);
  }
}

void WatchdogLoop(WatchdogGlobals& globals) {
  const auto interval = std::chrono::duration<double>(
      globals.options.poll_interval_seconds > 0
          ? globals.options.poll_interval_seconds
          : 0.05);
  while (!globals.stop.load(std::memory_order_acquire)) {
    const uint64_t now_ns = TraceNowNs();
    for (internal::WatchdogSlot& slot : globals.slots) {
      const char* phase = slot.phase.load(std::memory_order_acquire);
      if (phase == nullptr) continue;
      if (slot.flagged.load(std::memory_order_relaxed)) continue;
      const uint64_t deadline = slot.deadline_ns.load(std::memory_order_relaxed);
      if (now_ns <= deadline) continue;
      // flagged is only ever set by this thread while the slot is claimed;
      // the exchange guards against the owner releasing + a new claimant
      // racing in between the phase load and here — worst case the new
      // claimant's fresh deadline simply gets re-checked next poll.
      if (!slot.flagged.exchange(true, std::memory_order_acq_rel)) {
        FlagStall(globals, slot, phase, now_ns);
      }
    }
    std::this_thread::sleep_for(interval);
  }
}

}  // namespace

namespace internal {

std::atomic<int>& WatchdogState() {
  static std::atomic<int> state{0};
  return state;
}

WatchdogSlot* ClaimSlot(const char* phase, double budget_seconds) {
  WatchdogGlobals& globals = WatchdogGlobals::Get();
  const double budget = budget_seconds > 0
                            ? budget_seconds
                            : globals.options.default_budget_seconds;
  const uint64_t now_ns = TraceNowNs();
  const uint64_t deadline_ns =
      now_ns + static_cast<uint64_t>(budget * 1e9);
  for (WatchdogSlot& slot : globals.slots) {
    const char* expected = nullptr;
    if (slot.phase.load(std::memory_order_relaxed) != nullptr) continue;
    // Stamp times before publishing the phase pointer: the poll thread
    // reads phase with acquire, so a visible phase implies visible times.
    slot.start_ns.store(now_ns, std::memory_order_relaxed);
    slot.deadline_ns.store(deadline_ns, std::memory_order_relaxed);
    slot.flagged.store(false, std::memory_order_relaxed);
    if (slot.phase.compare_exchange_strong(expected, phase,
                                           std::memory_order_release,
                                           std::memory_order_relaxed)) {
      return &slot;
    }
  }
  SlotsMissedCounter().Increment();
  return nullptr;
}

void ReleaseSlot(WatchdogSlot* slot) {
  slot->phase.store(nullptr, std::memory_order_release);
}

}  // namespace internal

void StartWatchdog(const WatchdogOptions& options) {
  WatchdogGlobals& globals = WatchdogGlobals::Get();
  std::lock_guard<std::mutex> lock(globals.mu);
  if (internal::WatchdogState().load(std::memory_order_relaxed) != 0) return;
  globals.options = options;
  if (globals.options.default_budget_seconds <= 0) {
    globals.options.default_budget_seconds = 60.0;
  }
  globals.stop.store(false, std::memory_order_release);
  globals.thread = std::thread([&globals] { WatchdogLoop(globals); });
  internal::WatchdogState().store(1, std::memory_order_relaxed);
}

void StopWatchdog() {
  WatchdogGlobals& globals = WatchdogGlobals::Get();
  std::lock_guard<std::mutex> lock(globals.mu);
  if (internal::WatchdogState().load(std::memory_order_relaxed) == 0) return;
  internal::WatchdogState().store(0, std::memory_order_relaxed);
  globals.stop.store(true, std::memory_order_release);
  if (globals.thread.joinable()) globals.thread.join();
}

bool WatchdogEnabled() {
  return internal::WatchdogState().load(std::memory_order_relaxed) != 0;
}

uint64_t WatchdogStallCount() {
  return WatchdogGlobals::Get().stalls.load(std::memory_order_relaxed);
}

}  // namespace conservation::obs
