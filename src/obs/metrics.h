// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// latency histograms for the whole discovery pipeline.
//
// Design goals, in order:
//   1. Hot-path writes must be wait-free and uncontended. Counters and
//      histograms are striped: each thread owns one cache-line-padded
//      64-bit atomic cell per metric (cells are assigned by a small
//      per-thread index, so two pool workers never share a cell under the
//      default pool size). An increment is one relaxed fetch_add on the
//      calling thread's own cell — no locks, no CAS loops, no false
//      sharing.
//   2. Snapshots are exact and torn-free. Merging sums the per-thread
//      cells; every cell is a 64-bit atomic, so a concurrent snapshot can
//      never observe a half-written value, and increments that complete
//      before Snapshot() starts are always included (relaxed ordering means
//      in-flight increments may land in this snapshot or the next — never
//      lost, never double counted).
//   3. Registration is rare and may lock. Looking a metric up by name takes
//      a mutex; call sites hoist the handle (static local or member) so the
//      steady state never touches the registry map.
//
// Layering: obs sits BELOW util (util/thread_pool instruments itself with
// these metrics), so this header uses only the standard library.
//
// Metric naming convention (docs/OBSERVABILITY.md): dotted lowercase paths,
// "<subsystem>.<quantity>", e.g. "generation.chunks_claimed",
// "cover.heap_pops", "pool.tasks_executed".

#ifndef CONSERVATION_OBS_METRICS_H_
#define CONSERVATION_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace conservation::obs {

// Number of independent stripes per metric. Threads map onto stripes by
// their obs-assigned index modulo kStripes; sums stay exact regardless of
// how many threads share a stripe (sharing only costs contention).
inline constexpr int kStripes = 16;

// Small dense index for the calling thread, assigned on first use (main
// thread gets 0 if it arrives first). Shared with the tracing layer, which
// uses it as the Perfetto tid.
int ThreadIndex();

namespace internal {

struct alignas(64) PaddedCell {
  std::atomic<uint64_t> value{0};
};

struct alignas(64) PaddedDoubleCell {
  std::atomic<double> value{0.0};
};

}  // namespace internal

// Monotone counter. Obtain via Registry::Counter(); handles stay valid for
// the process lifetime (metrics are never unregistered).
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta) {
    cells_[ThreadIndex() % kStripes].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  const std::string& name() const { return name_; }

  void ResetForTest() {
    for (auto& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
  }

 private:
  std::string name_;
  internal::PaddedCell cells_[kStripes];
};

// Last-writer-wins instantaneous value. Not striped: sets are rare (one per
// snapshot period), so a single atomic is both exact and cheap.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }

  void ResetForTest() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::string name_;
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram. Bucket semantics (asserted by
// tests/obs_metrics_test.cc): with upper bounds b_0 < b_1 < ... < b_{m-1},
// a recorded value v lands in the first bucket whose upper bound exceeds
// it — bucket 0 holds v < b_0, bucket i (0 < i < m) holds b_{i-1} <= v <
// b_i (inclusive lower, exclusive upper), and the overflow bucket m holds
// v >= b_{m-1}. There are always m + 1 buckets.
class Histogram {
 public:
  Histogram(std::string name, std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(double value);

  const std::string& name() const { return name_; }
  const std::vector<double>& bounds() const { return bounds_; }

  // Merged bucket counts (size bounds().size() + 1), total count, and sum
  // of recorded values.
  std::vector<uint64_t> BucketCounts() const;
  uint64_t TotalCount() const;
  double Sum() const;

  void ResetForTest();

 private:
  std::string name_;
  std::vector<double> bounds_;
  // cells_[stripe * num_buckets + bucket]; one padded sum cell per stripe.
  std::vector<internal::PaddedCell> cells_;
  internal::PaddedDoubleCell sums_[kStripes];
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<uint64_t> counts;  // bounds.size() + 1 entries
  uint64_t total_count = 0;
  double sum = 0.0;
};

// Point-in-time copy of every registered metric, sorted by name within each
// kind so serialized output is deterministic.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  // Compact JSON object:
  //   {"counters":{...},"gauges":{...},"histograms":{"name":{"bounds":[...],
  //    "counts":[...],"count":N,"sum":S}}}
  std::string ToJson() const;
};

// Global name-keyed registry. Lookup registers on first use; repeated
// lookups return the same handle.
class Registry {
 public:
  static Registry& Global();

  obs::Counter& Counter(const std::string& name);
  obs::Gauge& Gauge(const std::string& name);
  // `bounds` must be strictly increasing and non-empty; only the first
  // registration's bounds take effect (subsequent lookups by name return
  // the existing histogram).
  obs::Histogram& Histogram(const std::string& name,
                            std::vector<double> bounds);

  MetricsSnapshot Snapshot() const;

  // Zeroes every registered metric (handles stay valid). Test-and-CLI-only:
  // concurrent writers may interleave with the reset.
  void ResetForTest();

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace conservation::obs

#endif  // CONSERVATION_OBS_METRICS_H_
