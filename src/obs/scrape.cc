#include "obs/scrape.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <set>
#include <utility>

#include "obs/labels.h"

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace conservation::obs {

namespace {

Counter& ScrapesServedCounter() {
  static Counter& counter = Registry::Global().Counter("obs.scrapes_served");
  return counter;
}

bool IsPromNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':' || (c >= '0' && c <= '9');
}

void AppendPromDouble(std::string* out, double value) {
  if (std::isnan(value)) {
    *out += "NaN";
  } else if (std::isinf(value)) {
    *out += value > 0 ? "+Inf" : "-Inf";
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    *out += buf;
  }
}

void AppendPromLabelValue(std::string* out, const std::string& value) {
  for (const char c : value) {
    if (c == '\\') {
      *out += "\\\\";
    } else if (c == '"') {
      *out += "\\\"";
    } else if (c == '\n') {
      *out += "\\n";
    } else {
      out->push_back(c);
    }
  }
}

// `{a="x",b="y"}` (or "" for no labels), with `extra` appended after the
// decoded labels when non-empty (used for `le`/`quantile`).
std::string PromLabelBlock(const std::vector<Label>& labels,
                           const std::string& extra) {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const Label& label : labels) {
    if (!first) out += ',';
    first = false;
    out += SanitizePromName(label.first);
    out += "=\"";
    AppendPromLabelValue(&out, label.second);
    out += '"';
  }
  if (!extra.empty()) {
    if (!first) out += ',';
    out += extra;
  }
  out += '}';
  return out;
}

// Emits `# TYPE` once per exported family name, in first-seen order.
// Registry names are sorted, so all children of one base are contiguous.
void MaybeType(std::string* out, std::set<std::string>* typed,
               const std::string& name, const char* type) {
  if (!typed->insert(name).second) return;
  *out += "# TYPE ";
  *out += name;
  *out += ' ';
  *out += type;
  *out += '\n';
}

struct HttpRequest {
  std::string method;
  std::string path;
};

// Reads the request line + headers (we ignore the headers; every endpoint
// is a body-less GET). Caps the read so a misbehaving client cannot grow
// the buffer unboundedly.
bool ReadRequest(int fd, HttpRequest* request) {
  std::string buffer;
  char chunk[1024];
  while (buffer.find("\r\n\r\n") == std::string::npos &&
         buffer.find("\n\n") == std::string::npos) {
    if (buffer.size() > 8192) return false;
    const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer.append(chunk, static_cast<size_t>(n));
  }
  const size_t line_end = buffer.find_first_of("\r\n");
  if (line_end == std::string::npos) return false;
  const std::string line = buffer.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return false;
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return false;
  request->method = line.substr(0, sp1);
  request->path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  // Drop any query string; the endpoints take no parameters.
  const size_t query = request->path.find('?');
  if (query != std::string::npos) request->path.resize(query);
  return true;
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

void SendResponse(int fd, const char* status, const char* content_type,
                  const std::string& body) {
  std::string response = "HTTP/1.1 ";
  response += status;
  response += "\r\nContent-Type: ";
  response += content_type;
  response += "\r\nContent-Length: ";
  response += std::to_string(body.size());
  response += "\r\nConnection: close\r\n\r\n";
  response += body;
  SendAll(fd, response);
}

constexpr char kPromContentType[] = "text/plain; version=0.0.4; charset=utf-8";

}  // namespace

bool AtomicWriteFile(const std::string& path, const std::string& contents,
                     std::string* error) {
  const std::string tmp = path + ".tmp";
  const int fd = open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "open(" + tmp + "): " + std::strerror(errno);
    }
    return false;
  }
  size_t written = 0;
  while (written < contents.size()) {
    const ssize_t n =
        write(fd, contents.data() + written, contents.size() - written);
    if (n <= 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) {
        *error = "write(" + tmp + "): " + std::strerror(errno);
      }
      close(fd);
      unlink(tmp.c_str());
      return false;
    }
    written += static_cast<size_t>(n);
  }
  // Flush data before the rename publishes the name: a crash between the
  // two must not leave a complete-looking but empty target.
  if (fsync(fd) != 0 || close(fd) != 0) {
    if (error != nullptr) {
      *error = "fsync/close(" + tmp + "): " + std::strerror(errno);
    }
    unlink(tmp.c_str());
    return false;
  }
  if (rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) {
      *error = "rename(" + tmp + " -> " + path + "): " + std::strerror(errno);
    }
    unlink(tmp.c_str());
    return false;
  }
  return true;
}

std::string SanitizePromName(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 1);
  for (const char c : raw) {
    out.push_back(IsPromNameChar(c) ? c : '_');
  }
  if (out.empty()) out.assign(1, '_');
  // A leading digit is illegal even though digits are fine later; keep the
  // digit and prefix rather than destroying it.
  if (out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

std::string ToPrometheusText(const MetricsSnapshot& snapshot,
                             const WindowSnapshot* windows) {
  std::string out;
  std::set<std::string> typed;

  for (const auto& [encoded, value] : snapshot.counters) {
    const DecodedName decoded = DecodeLabeledName(encoded);
    const std::string name = SanitizePromName(decoded.base);
    MaybeType(&out, &typed, name, "counter");
    out += name;
    out += PromLabelBlock(decoded.labels, "");
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  }

  for (const auto& [encoded, value] : snapshot.gauges) {
    const DecodedName decoded = DecodeLabeledName(encoded);
    const std::string name = SanitizePromName(decoded.base);
    MaybeType(&out, &typed, name, "gauge");
    out += name;
    out += PromLabelBlock(decoded.labels, "");
    out += ' ';
    AppendPromDouble(&out, value);
    out += '\n';
  }

  for (const HistogramSnapshot& histogram : snapshot.histograms) {
    const DecodedName decoded = DecodeLabeledName(histogram.name);
    const std::string name = SanitizePromName(decoded.base);
    MaybeType(&out, &typed, name, "histogram");
    uint64_t cumulative = 0;
    for (size_t b = 0; b < histogram.counts.size(); ++b) {
      cumulative += histogram.counts[b];
      std::string le = "le=\"";
      if (b < histogram.bounds.size()) {
        AppendPromDouble(&le, histogram.bounds[b]);
      } else {
        le += "+Inf";
      }
      le += '"';
      out += name;
      out += "_bucket";
      out += PromLabelBlock(decoded.labels, le);
      out += ' ';
      out += std::to_string(cumulative);
      out += '\n';
    }
    out += name;
    out += "_sum";
    out += PromLabelBlock(decoded.labels, "");
    out += ' ';
    AppendPromDouble(&out, histogram.sum);
    out += '\n';
    out += name;
    out += "_count";
    out += PromLabelBlock(decoded.labels, "");
    out += ' ';
    out += std::to_string(cumulative);
    out += '\n';
  }

  if (windows != nullptr) {
    std::string span = "obs_window_span_seconds";
    MaybeType(&out, &typed, span, "gauge");
    out += span;
    out += ' ';
    AppendPromDouble(&out, windows->span_seconds);
    out += '\n';

    for (const WindowedCounter& counter : windows->counters) {
      const DecodedName decoded = DecodeLabeledName(counter.name);
      const std::string name = SanitizePromName(decoded.base) + "_window_rate";
      MaybeType(&out, &typed, name, "gauge");
      out += name;
      out += PromLabelBlock(decoded.labels, "");
      out += ' ';
      AppendPromDouble(&out, counter.rate_per_sec);
      out += '\n';
    }

    for (const WindowedHistogram& histogram : windows->histograms) {
      const DecodedName decoded = DecodeLabeledName(histogram.name);
      const std::string name = SanitizePromName(decoded.base) + "_window";
      MaybeType(&out, &typed, name, "summary");
      const std::pair<const char*, double> quantiles[] = {
          {"0.5", histogram.p50}, {"0.95", histogram.p95},
          {"0.99", histogram.p99}};
      for (const auto& [q, value] : quantiles) {
        std::string extra = "quantile=\"";
        extra += q;
        extra += '"';
        out += name;
        out += PromLabelBlock(decoded.labels, extra);
        out += ' ';
        AppendPromDouble(&out, value);
        out += '\n';
      }
      out += name;
      out += "_sum";
      out += PromLabelBlock(decoded.labels, "");
      out += ' ';
      AppendPromDouble(&out, histogram.sum);
      out += '\n';
      out += name;
      out += "_count";
      out += PromLabelBlock(decoded.labels, "");
      out += ' ';
      out += std::to_string(histogram.count);
      out += '\n';
    }
  }

  return out;
}

bool ScrapeServer::Start(const ScrapeServerOptions& options,
                         std::string* error) {
  if (running_.load(std::memory_order_acquire)) {
    if (error != nullptr) *error = "scrape server already running";
    return false;
  }
  options_ = options;

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) {
      *error = std::string("socket(): ") + std::strerror(errno);
    }
    return false;
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) {
      *error = "invalid bind address: " + options_.bind_address;
    }
    close(fd);
    return false;
  }
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = std::string("bind(): ") + std::strerror(errno);
    }
    close(fd);
    return false;
  }
  if (listen(fd, 16) != 0) {
    if (error != nullptr) {
      *error = std::string("listen(): ") + std::strerror(errno);
    }
    close(fd);
    return false;
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    if (error != nullptr) {
      *error = std::string("getsockname(): ") + std::strerror(errno);
    }
    close(fd);
    return false;
  }
  port_ = ntohs(bound.sin_port);
  if (!options_.port_file.empty()) {
    std::string write_error;
    if (!AtomicWriteFile(options_.port_file, std::to_string(port_) + "\n",
                         &write_error)) {
      if (error != nullptr) *error = "port file: " + write_error;
      close(fd);
      return false;
    }
  }
  listen_fd_ = fd;
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { ServeLoop(); });
  return true;
}

void ScrapeServer::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void ScrapeServer::ServeLoop() {
  auto last_advance = std::chrono::steady_clock::now();
  while (!stop_.load(std::memory_order_acquire)) {
    if (options_.window_advance_seconds > 0) {
      const auto now = std::chrono::steady_clock::now();
      if (std::chrono::duration<double>(now - last_advance).count() >=
          options_.window_advance_seconds) {
        WindowAggregator::Global().Advance();
        last_advance = now;
      }
    }
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int conn = accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    HandleConnection(conn);
    close(conn);
  }
}

void ScrapeServer::HandleConnection(int fd) {
  HttpRequest request;
  if (!ReadRequest(fd, &request)) return;
  if (request.method != "GET") {
    SendResponse(fd, "405 Method Not Allowed", "text/plain; charset=utf-8",
                 "method not allowed\n");
    return;
  }
  // Count before snapshotting so the in-flight scrape is included and the
  // counter is present from the very first payload.
  if (request.path == "/metrics") {
    ScrapesServedCounter().Increment();
    const MetricsSnapshot snapshot = Registry::Global().Snapshot();
    const WindowSnapshot windows = WindowAggregator::Global().Snapshot();
    SendResponse(fd, "200 OK", kPromContentType,
                 ToPrometheusText(snapshot, &windows));
  } else if (request.path == "/metrics.json") {
    ScrapesServedCounter().Increment();
    const MetricsSnapshot snapshot = Registry::Global().Snapshot();
    const WindowSnapshot windows = WindowAggregator::Global().Snapshot();
    std::string body = "{\"metrics\":";
    body += snapshot.ToJson();
    body += ",\"windows\":";
    body += windows.ToJson();
    body += "}\n";
    SendResponse(fd, "200 OK", "application/json; charset=utf-8", body);
  } else if (request.path == "/healthz") {
    SendResponse(fd, "200 OK", "text/plain; charset=utf-8", "ok\n");
  } else {
    SendResponse(fd, "404 Not Found", "text/plain; charset=utf-8",
                 "not found\n");
  }
}

std::string ScrapeOnce(int port, const std::string& path) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  timeval timeout;
  timeout.tv_sec = 5;
  timeout.tv_usec = 0;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close(fd);
    return "";
  }
  std::string request = "GET ";
  request += path;
  request += " HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n";
  if (!SendAll(fd, request)) {
    close(fd);
    return "";
  }
  std::string response;
  char chunk[4096];
  ssize_t n;
  while ((n = recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    response.append(chunk, static_cast<size_t>(n));
  }
  close(fd);
  size_t body = response.find("\r\n\r\n");
  if (body == std::string::npos) return "";
  return response.substr(body + 4);
}

}  // namespace conservation::obs
