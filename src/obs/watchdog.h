// Phase deadline watchdog: detects stalls in long-running phases
// (tableau discovery, incremental batches, pool tasks) and raises metrics
// plus a one-shot trace flush while the stall is still in progress — the
// daemon-side answer to "the replay stopped making progress an hour ago
// and nobody noticed".
//
// Mechanism: a fixed table of slots. ScopedDeadline claims a slot with a
// single CAS, stamping the phase name, the start time and the deadline
// (TraceNowNs clock); its destructor releases the slot with one store. A
// background thread polls the table every poll_interval; a slot past its
// deadline is flagged once (so one stall produces one alert, not one per
// poll), bumping "obs.stalls_detected", the labeled child
// `obs.stalls{phase=...}`, a stderr diagnostic, and — the first stall of
// the process only, when tracing is live — a trace dump to
// `stall_trace_path` capturing what every thread was doing.
//
// Cost when the watchdog is not started: ScopedDeadline is one relaxed
// load and a branch — the same regime as a stopped trace span, safe to
// leave in hot-ish paths (per-task, per-batch; not per-row).
//
// Slot exhaustion (more live deadlines than kWatchdogSlots) degrades
// gracefully: the excess deadlines simply go unmonitored (counted in
// "obs.watchdog_slots_missed").
//
// Layering: standard library only.

#ifndef CONSERVATION_OBS_WATCHDOG_H_
#define CONSERVATION_OBS_WATCHDOG_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace conservation::obs {

inline constexpr int kWatchdogSlots = 64;

struct WatchdogOptions {
  // Budget applied when a ScopedDeadline does not pass its own.
  double default_budget_seconds = 60.0;
  double poll_interval_seconds = 0.05;
  // When non-empty and tracing is active, the first detected stall writes
  // the trace rings here (one-shot per process).
  std::string stall_trace_path;
};

// Starts the watchdog thread. Safe to call once per process (subsequent
// calls while running are ignored). Not started => every ScopedDeadline is
// a no-op.
void StartWatchdog(const WatchdogOptions& options = WatchdogOptions());

// Stops the watchdog thread and releases nothing else — claimed slots
// drain naturally as their ScopedDeadlines destruct.
void StopWatchdog();

bool WatchdogEnabled();

// Total stalls flagged since process start (mirror of the
// "obs.stalls_detected" counter, readable without a registry snapshot).
uint64_t WatchdogStallCount();

namespace internal {

struct WatchdogSlot {
  std::atomic<const char*> phase{nullptr};  // nullptr = free
  std::atomic<uint64_t> start_ns{0};
  std::atomic<uint64_t> deadline_ns{0};
  std::atomic<bool> flagged{false};
};

// Claims a free slot for `phase` with deadline `budget_seconds` from now
// (0 => the watchdog's default budget). Returns nullptr when the table is
// full. Exposed for ScopedDeadline only.
WatchdogSlot* ClaimSlot(const char* phase, double budget_seconds);
void ReleaseSlot(WatchdogSlot* slot);

// One relaxed load: non-zero iff StartWatchdog has run and StopWatchdog
// has not.
std::atomic<int>& WatchdogState();

}  // namespace internal

// RAII deadline over the enclosing scope. `phase` must be a string literal
// (it is stored by pointer, like trace span names, and doubles as the
// `phase` label on "obs.stalls"). Budget 0 uses the watchdog default.
class ScopedDeadline {
 public:
  explicit ScopedDeadline(const char* phase, double budget_seconds = 0.0) {
    if (internal::WatchdogState().load(std::memory_order_relaxed) != 0) {
      slot_ = internal::ClaimSlot(phase, budget_seconds);
    }
  }
  ~ScopedDeadline() {
    if (slot_ != nullptr) internal::ReleaseSlot(slot_);
  }
  ScopedDeadline(const ScopedDeadline&) = delete;
  ScopedDeadline& operator=(const ScopedDeadline&) = delete;

 private:
  internal::WatchdogSlot* slot_ = nullptr;
};

}  // namespace conservation::obs

#endif  // CONSERVATION_OBS_WATCHDOG_H_
