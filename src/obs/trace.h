// RAII scoped spans recorded into per-thread ring buffers, exported as
// Chrome/Perfetto trace-event JSON (load the file in https://ui.perfetto.dev
// or chrome://tracing).
//
// Three cost regimes, from acceptance-tested guarantees down:
//   * Compiled out (-DCONSERVATION_TRACING=OFF): the CR_TRACE_* macros
//     expand to nothing — zero instructions on every instrumented path.
//   * Compiled in, tracing stopped (the default at runtime): a span costs
//     one relaxed atomic load and a predictable branch; no clock is read.
//   * Tracing started: a span reads the steady clock twice and writes one
//     64-byte event into the calling thread's private ring buffer; no
//     locks, no allocation (the buffer is allocated on the thread's first
//     event). The instrumentation-overhead bench (bench_obs_overhead)
//     guards the <2% end-to-end budget at default verbosity.
//
// Ring semantics: each thread keeps the most recent `buffer_capacity`
// events; older ones are overwritten and counted as dropped (reported in
// the exported JSON's "otherData"). Buffers are heap-allocated and leaked
// so export stays safe after a recording thread has exited.
//
// Export is designed for quiescent points (after a parallel section
// joined). Publication of each event is release/acquire on the buffer
// head, so events recorded before the exporting thread observed the head
// are fully visible; events recorded concurrently with the export may be
// missed or, if the ring wraps mid-read, partially garbled — never UB,
// and never the case in the shipped call sites (crdiscover exports after
// discovery completes; tests join writers first).
//
// Span naming convention (docs/OBSERVABILITY.md): "<subsystem>.<step>",
// e.g. "tableau.discover", "generate.chunk", "cover.select", "pool.task".
//
// Verbosity: level 1 (default) records phase/chunk spans plus scheduler
// steal instants; level 2 adds per-pop instants in the cover selection
// loop (high volume — expect ring wrap on large inputs).

#ifndef CONSERVATION_OBS_TRACE_H_
#define CONSERVATION_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#ifndef CONSERVATION_TRACING
#define CONSERVATION_TRACING 1
#endif

namespace conservation::obs {

struct TraceOptions {
  // 1 = spans + steal instants; 2 = + cover heap-pop instants.
  int verbosity = 1;
  // Events retained per thread (most recent win once the ring wraps).
  size_t buffer_capacity = 1 << 16;
};

// Starts recording. Clears previously recorded events so one process can
// record several sessions. Safe to call when already started (resets).
void StartTracing(const TraceOptions& options = TraceOptions());

// Stops recording; buffered events stay available for export.
void StopTracing();

// Discards all buffered events (does not change the enabled state).
void ClearTrace();

inline std::atomic<int>& TraceState() {
  // 0 = disabled, otherwise the active verbosity. One relaxed load answers
  // both "enabled?" and "how verbose?" on the hot path.
  static std::atomic<int> state{0};
  return state;
}

inline bool TracingEnabled() {
  return TraceState().load(std::memory_order_relaxed) != 0;
}
inline int TraceVerbosity() {
  return TraceState().load(std::memory_order_relaxed);
}

// Names the calling thread's track in the exported trace ("main",
// "pool-worker-3", ...). Last call wins; unnamed threads export as
// "thread-<tid>".
void SetCurrentThreadName(const std::string& name);

// Records an instant event (ph:"i", thread scope). `name` must outlive the
// trace session — pass a string literal.
void TraceInstant(const char* name);

// Records a completed span [start_ns, start_ns + dur_ns) on the calling
// thread. Exposed for ScopedSpan and for code that measures timestamps
// itself; most call sites should use CR_TRACE_SPAN.
void TraceComplete(const char* name, uint64_t start_ns, uint64_t dur_ns,
                   const char* arg0_key, int64_t arg0, const char* arg1_key,
                   int64_t arg1);

// Nanoseconds on the steady clock since the process's trace epoch.
uint64_t TraceNowNs();

// Serializes every buffered event as a Chrome trace-event JSON document:
//   {"traceEvents":[...],"displayTimeUnit":"ms","otherData":{...}}
// Complete spans use ph:"X" with microsecond ts/dur; instants ph:"i";
// thread names ph:"M" thread_name metadata. All events share pid 1; tid is
// the obs thread index.
std::string TraceToJson();

// Writes TraceToJson() to `path`; returns false (and reports on stderr)
// when the file cannot be written.
bool WriteTrace(const std::string& path);

// RAII span: records one complete event covering its lifetime. The name
// (and arg keys) must be string literals or otherwise outlive the session.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : ScopedSpan(name, nullptr, 0) {}
  ScopedSpan(const char* name, const char* arg0_key, int64_t arg0,
             const char* arg1_key = nullptr, int64_t arg1 = 0) {
    if (TracingEnabled()) {
      name_ = name;
      arg0_key_ = arg0_key;
      arg0_ = arg0;
      arg1_key_ = arg1_key;
      arg1_ = arg1;
      start_ns_ = TraceNowNs();
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr) {
      TraceComplete(name_, start_ns_, TraceNowNs() - start_ns_, arg0_key_,
                    arg0_, arg1_key_, arg1_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;  // nullptr: tracing was off at construction
  const char* arg0_key_ = nullptr;
  const char* arg1_key_ = nullptr;
  int64_t arg0_ = 0;
  int64_t arg1_ = 0;
  uint64_t start_ns_ = 0;
};

}  // namespace conservation::obs

#define CR_OBS_CONCAT_INNER(a, b) a##b
#define CR_OBS_CONCAT(a, b) CR_OBS_CONCAT_INNER(a, b)

#if CONSERVATION_TRACING
// Span covering the rest of the enclosing scope.
#define CR_TRACE_SPAN(name) \
  ::conservation::obs::ScopedSpan CR_OBS_CONCAT(cr_trace_span_, __LINE__)(name)
// Span with one or two integer args shown in the Perfetto detail pane.
#define CR_TRACE_SPAN_ARGS(name, ...)                                  \
  ::conservation::obs::ScopedSpan CR_OBS_CONCAT(cr_trace_span_,        \
                                                __LINE__)(name, __VA_ARGS__)
#define CR_TRACE_INSTANT(name)                     \
  do {                                             \
    if (::conservation::obs::TracingEnabled()) {   \
      ::conservation::obs::TraceInstant(name);     \
    }                                              \
  } while (0)
// Instant recorded only at verbosity >= 2 (high-volume events).
#define CR_TRACE_INSTANT_V2(name)                    \
  do {                                               \
    if (::conservation::obs::TraceVerbosity() >= 2) {\
      ::conservation::obs::TraceInstant(name);       \
    }                                                \
  } while (0)
#else
#define CR_TRACE_SPAN(name) ((void)0)
#define CR_TRACE_SPAN_ARGS(name, ...) ((void)0)
#define CR_TRACE_INSTANT(name) ((void)0)
#define CR_TRACE_INSTANT_V2(name) ((void)0)
#endif

#endif  // CONSERVATION_OBS_TRACE_H_
