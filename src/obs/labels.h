// Labeled metric families layered on top of the plain registry
// (obs/metrics.h): counters/gauges/histograms keyed by a small bounded set
// of label key/value pairs (e.g. tenant, generator, phase).
//
// Design, continuing the metrics.h goals:
//   1. Hot-path writes stay wait-free. A family resolves a (metric,
//      labelset) pair to an ordinary striped Counter/Gauge/Histogram
//      handle ONCE (With() takes a mutex); call sites hoist the handle —
//      a static local, a member resolved at construction — so the steady
//      state is exactly one relaxed fetch_add on the caller's stripe,
//      identical to an unlabeled metric.
//   2. Cardinality is capped. Each family admits at most
//      `max_labelsets` distinct label sets (default kMaxLabelSetsPerFamily);
//      past the cap, With() returns the family's shared overflow child
//      (labels {overflow="true"}) and bumps the process-wide
//      "obs.labelsets_dropped" counter once per rejected resolution — the
//      registry can never be ballooned by an unbounded label value (user
//      ids, raw paths) and a scrape can alert on the drop counter.
//   3. Children are real registry metrics. A child registers under the
//      encoded name `base{k1="v1",k2="v2"}` (keys sorted, values escaped),
//      so snapshots, JSON export and the torn-free merge contract are
//      inherited unchanged; the Prometheus exporter (obs/scrape.h) splits
//      the encoded name back into base + labels.
//
// Convention (docs/OBSERVABILITY.md): when a family coexists with an
// unlabeled metric of the same base name, the unlabeled series is the
// all-up total and the labeled children are its attribution — sum children
// per label, not across the unlabeled sample too.
//
// Layering: like the rest of obs, standard library only.

#ifndef CONSERVATION_OBS_LABELS_H_
#define CONSERVATION_OBS_LABELS_H_

#include <cstddef>
#include <initializer_list>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace conservation::obs {

// Default per-family distinct-labelset cap. Generous for the shipped label
// dimensions (tenant/generator/phase on a test fleet) while keeping the
// worst-case registry growth bounded.
inline constexpr size_t kMaxLabelSetsPerFamily = 64;

using Label = std::pair<std::string, std::string>;

// Canonicalized label set: entries sorted by key, duplicate keys rejected
// by keeping the first occurrence. Order-insensitive equality by
// construction, so {{"a","1"},{"b","2"}} and {{"b","2"},{"a","1"}} resolve
// to the same child.
class LabelSet {
 public:
  LabelSet() = default;
  LabelSet(std::initializer_list<Label> labels)
      : LabelSet(std::vector<Label>(labels)) {}
  explicit LabelSet(std::vector<Label> labels);

  const std::vector<Label>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }

  bool operator<(const LabelSet& other) const {
    return entries_ < other.entries_;
  }
  bool operator==(const LabelSet& other) const {
    return entries_ == other.entries_;
  }

 private:
  std::vector<Label> entries_;
};

// `base{k1="v1",k2="v2"}` with `\` and `"` escaped inside values; the empty
// label set encodes as the bare base name. Deterministic (keys sorted by
// LabelSet), so the encoded name is a stable registry key.
std::string EncodeLabeledName(const std::string& base, const LabelSet& labels);

// Splits an encoded name back into base + labels. Names without a '{' are
// returned whole with empty labels; a malformed suffix (unterminated brace,
// bad quoting) is treated as part of the base so an exporter can never
// crash on a hand-registered name.
struct DecodedName {
  std::string base;
  std::vector<Label> labels;
};
DecodedName DecodeLabeledName(const std::string& encoded);

// Process-wide count of With() resolutions rejected by a family cap
// ("obs.labelsets_dropped").
Counter& LabelsDroppedCounter();

namespace internal {

// Shared family machinery: the child map, the cap, and the overflow child.
// `Child` is the registry metric type; `Make` resolves an encoded name to a
// registered child.
template <typename Child>
class FamilyBase {
 public:
  FamilyBase(std::string name, size_t max_labelsets)
      : name_(std::move(name)),
        max_labelsets_(max_labelsets == 0 ? 1 : max_labelsets) {}
  FamilyBase(const FamilyBase&) = delete;
  FamilyBase& operator=(const FamilyBase&) = delete;

  const std::string& name() const { return name_; }
  size_t max_labelsets() const { return max_labelsets_; }

  size_t labelset_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return children_.size();
  }

 protected:
  template <typename MakeFn>
  Child& Resolve(const LabelSet& labels, MakeFn&& make) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = children_.find(labels);
    if (it != children_.end()) return *it->second;
    if (children_.size() >= max_labelsets_) {
      LabelsDroppedCounter().Increment();
      if (overflow_ == nullptr) {
        overflow_ = &make(
            EncodeLabeledName(name_, LabelSet{{"overflow", "true"}}));
      }
      return *overflow_;
    }
    Child& child = make(EncodeLabeledName(name_, labels));
    children_.emplace(labels, &child);
    return child;
  }

 private:
  const std::string name_;
  const size_t max_labelsets_;
  mutable std::mutex mu_;
  std::map<LabelSet, Child*> children_;
  Child* overflow_ = nullptr;
};

}  // namespace internal

// Counter family. With() is the slow path (mutex + map); hoist the
// returned handle exactly like a Registry::Counter handle — it stays valid
// for the process lifetime.
class CounterFamily : public internal::FamilyBase<Counter> {
 public:
  using FamilyBase::FamilyBase;
  Counter& With(const LabelSet& labels);
};

class GaugeFamily : public internal::FamilyBase<Gauge> {
 public:
  using FamilyBase::FamilyBase;
  Gauge& With(const LabelSet& labels);
};

// Histogram family: every child shares the family's bounds (fixed at first
// registration, like Registry::Histogram).
class HistogramFamily : public internal::FamilyBase<Histogram> {
 public:
  HistogramFamily(std::string name, std::vector<double> bounds,
                  size_t max_labelsets)
      : FamilyBase(std::move(name), max_labelsets),
        bounds_(std::move(bounds)) {}
  Histogram& With(const LabelSet& labels);
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;
};

// Family lookup, mirroring Registry::Counter/Gauge/Histogram: registers on
// first use, repeated lookups return the same family (the first
// registration's cap/bounds win). Rare and locking — hoist like any other
// registry lookup.
CounterFamily& LabeledCounter(const std::string& name,
                              size_t max_labelsets = kMaxLabelSetsPerFamily);
GaugeFamily& LabeledGauge(const std::string& name,
                          size_t max_labelsets = kMaxLabelSetsPerFamily);
HistogramFamily& LabeledHistogram(
    const std::string& name, std::vector<double> bounds,
    size_t max_labelsets = kMaxLabelSetsPerFamily);

}  // namespace conservation::obs

#endif  // CONSERVATION_OBS_LABELS_H_
