#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

namespace conservation::obs {

int ThreadIndex() {
  static std::atomic<int> next{0};
  thread_local int index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)),
      bounds_(std::move(bounds)),
      cells_(static_cast<size_t>(kStripes) * (bounds_.size() + 1)) {}

void Histogram::Record(double value) {
  // First bucket whose upper bound exceeds the value; overflow bucket when
  // none does. upper_bound implements exactly the documented
  // inclusive-lower / exclusive-upper split: v == b_i skips bucket i.
  const size_t bucket = static_cast<size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  const size_t stripe = static_cast<size_t>(ThreadIndex() % kStripes);
  cells_[stripe * (bounds_.size() + 1) + bucket].value.fetch_add(
      1, std::memory_order_relaxed);
  // C++20 atomic<double>::fetch_add; relaxed, single-writer per stripe in
  // the common case so the internal CAS loop rarely retries.
  sums_[stripe].value.fetch_add(value, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  const size_t buckets = bounds_.size() + 1;
  std::vector<uint64_t> counts(buckets, 0);
  for (size_t stripe = 0; stripe < static_cast<size_t>(kStripes); ++stripe) {
    for (size_t b = 0; b < buckets; ++b) {
      counts[b] +=
          cells_[stripe * buckets + b].value.load(std::memory_order_relaxed);
    }
  }
  return counts;
}

uint64_t Histogram::TotalCount() const {
  uint64_t total = 0;
  for (const uint64_t count : BucketCounts()) total += count;
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const auto& cell : sums_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::ResetForTest() {
  for (auto& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
  for (auto& cell : sums_) cell.value.store(0.0, std::memory_order_relaxed);
}

struct Registry::Impl {
  mutable std::mutex mu;
  // std::map keeps snapshot iteration name-sorted for free.
  std::map<std::string, std::unique_ptr<obs::Counter>> counters;
  std::map<std::string, std::unique_ptr<obs::Gauge>> gauges;
  std::map<std::string, std::unique_ptr<obs::Histogram>> histograms;
};

Registry::Impl& Registry::impl() const {
  // Leaked: metric handles are held in function-local statics across the
  // codebase and may be touched by late-running pool tasks.
  static Impl* instance = new Impl();
  return *instance;
}

Registry& Registry::Global() {
  static Registry* instance = new Registry();
  return *instance;
}

Counter& Registry::Counter(const std::string& name) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  auto& slot = state.counters[name];
  if (slot == nullptr) slot = std::make_unique<obs::Counter>(name);
  return *slot;
}

Gauge& Registry::Gauge(const std::string& name) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  auto& slot = state.gauges[name];
  if (slot == nullptr) slot = std::make_unique<obs::Gauge>(name);
  return *slot;
}

Histogram& Registry::Histogram(const std::string& name,
                               std::vector<double> bounds) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  auto& slot = state.histograms[name];
  if (slot == nullptr) {
    slot = std::make_unique<obs::Histogram>(name, std::move(bounds));
  }
  return *slot;
}

MetricsSnapshot Registry::Snapshot() const {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(state.counters.size());
  for (const auto& [name, counter] : state.counters) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  snapshot.gauges.reserve(state.gauges.size());
  for (const auto& [name, gauge] : state.gauges) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  snapshot.histograms.reserve(state.histograms.size());
  for (const auto& [name, histogram] : state.histograms) {
    HistogramSnapshot h;
    h.name = name;
    h.bounds = histogram->bounds();
    h.counts = histogram->BucketCounts();
    for (const uint64_t count : h.counts) h.total_count += count;
    h.sum = histogram->Sum();
    snapshot.histograms.push_back(std::move(h));
  }
  return snapshot;
}

void Registry::ResetForTest() {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  for (const auto& [name, counter] : state.counters) counter->ResetForTest();
  for (const auto& [name, gauge] : state.gauges) gauge->ResetForTest();
  for (const auto& [name, histogram] : state.histograms) {
    histogram->ResetForTest();
  }
}

namespace {

// Metric names follow the dotted-identifier convention, but escape anyway
// so a stray name can never corrupt the JSON document.
void AppendJsonString(std::string* out, const std::string& text) {
  out->push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonDouble(std::string* out, double value) {
  if (!std::isfinite(value)) {
    *out += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  *out += buf;
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(&out, name);
    out += ':';
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(&out, name);
    out += ':';
    AppendJsonDouble(&out, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramSnapshot& histogram : histograms) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(&out, histogram.name);
    out += ":{\"bounds\":[";
    for (size_t b = 0; b < histogram.bounds.size(); ++b) {
      if (b > 0) out += ',';
      AppendJsonDouble(&out, histogram.bounds[b]);
    }
    out += "],\"counts\":[";
    for (size_t b = 0; b < histogram.counts.size(); ++b) {
      if (b > 0) out += ',';
      out += std::to_string(histogram.counts[b]);
    }
    out += "],\"count\":";
    out += std::to_string(histogram.total_count);
    out += ",\"sum\":";
    AppendJsonDouble(&out, histogram.sum);
    out += '}';
  }
  out += "}}";
  return out;
}

}  // namespace conservation::obs
