// Sliding-window aggregation over the cumulative metrics registry: recent
// rates for counters and p50/p95/p99 quantile estimates for the
// fixed-bucket histograms, for a long-running daemon where "since process
// start" numbers stop being informative after the first hour.
//
// Mechanism: a ring of epochs. Advance() captures one torn-free registry
// snapshot (metrics.h contract) with a steady-clock timestamp and pushes it
// into a ring of `num_epochs` entries (default 60 — at a 1 s cadence, a one
// minute window). Snapshot() takes a fresh registry snapshot and subtracts
// the oldest retained epoch: counter deltas become windowed rates, and
// histogram bucket-count deltas become a windowed distribution from which
// quantiles are interpolated within the fixed bucket bounds.
//
// Consistency: both endpoints of every delta are torn-free merges, and
// counters/bucket cells are monotone, so each per-cell delta is exact and
// non-negative. Increments racing an Advance land in one epoch or the next
// — never lost, never double counted — the same relaxed-ordering contract
// the plain snapshots carry. Advance/Snapshot serialize on the
// aggregator's own mutex and never touch hot-path writers.
//
// Quantile semantics (also in docs/OBSERVABILITY.md): linear interpolation
// inside the bucket containing the rank, with the first bucket anchored at
// min(0, b_0) and the overflow bucket clamped to b_{m-1} — the same
// convention PromQL's histogram_quantile uses, so the scraped values and a
// PromQL computation over the exported buckets agree in shape.
//
// Cadence is the caller's: the scrape server (obs/scrape.h) advances on a
// configurable interval, crdiscover's replay mode advances every
// --metrics_every batches, and tests advance with explicit timestamps.

#ifndef CONSERVATION_OBS_WINDOW_H_
#define CONSERVATION_OBS_WINDOW_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace conservation::obs {

struct WindowOptions {
  // Epochs retained; the window spans up to num_epochs advances.
  int num_epochs = 60;
};

struct WindowedCounter {
  std::string name;       // encoded name (labels included)
  uint64_t delta = 0;     // increments inside the window
  double rate_per_sec = 0.0;
};

struct WindowedHistogram {
  std::string name;
  uint64_t count = 0;     // records inside the window
  double sum = 0.0;       // sum of recorded values inside the window
  double rate_per_sec = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  std::vector<double> bounds;
  std::vector<uint64_t> delta_counts;  // bounds.size() + 1 entries
};

struct WindowSnapshot {
  double span_seconds = 0.0;  // age of the oldest retained epoch
  int epochs = 0;             // epochs currently retained
  std::vector<WindowedCounter> counters;      // registry name order
  std::vector<WindowedHistogram> histograms;  // registry name order

  // {"span_seconds":S,"epochs":E,
  //  "counters":{"name":{"delta":D,"rate":R},...},
  //  "histograms":{"name":{"count":N,"rate":R,"p50":..,"p95":..,"p99":..}}}
  std::string ToJson() const;
};

// Quantile estimate from a fixed-bucket count vector (bounds.size() + 1
// buckets, metrics.h semantics). Returns 0 when total is zero. Exposed for
// tests and for exporters that window their own deltas.
double QuantileFromBuckets(const std::vector<double>& bounds,
                           const std::vector<uint64_t>& counts, double q);

class WindowAggregator {
 public:
  explicit WindowAggregator(const WindowOptions& options = WindowOptions());
  WindowAggregator(const WindowAggregator&) = delete;
  WindowAggregator& operator=(const WindowAggregator&) = delete;

  // Captures one epoch at the steady clock's now.
  void Advance();
  // Deterministic variant for tests: epoch timestamped `now_seconds`
  // (callers must pass non-decreasing times).
  void AdvanceAt(double now_seconds);

  // Deltas between a fresh registry snapshot (taken now) and the oldest
  // retained epoch. Before the first Advance the window is empty:
  // span_seconds 0, every delta 0.
  WindowSnapshot Snapshot() const;
  WindowSnapshot SnapshotAt(double now_seconds) const;

  // Drops all retained epochs (handles and options stay).
  void ResetForTest();

  int num_epochs() const { return options_.num_epochs; }

  // Shared process-wide aggregator: the scrape server and the CLI replay
  // loop advance and read the same window.
  static WindowAggregator& Global();

 private:
  struct Epoch {
    double at_seconds = 0.0;
    MetricsSnapshot metrics;
  };

  double NowSeconds() const;

  WindowOptions options_;
  mutable std::mutex mu_;
  std::vector<Epoch> ring_;  // capacity num_epochs, oldest at tail_
  size_t tail_ = 0;          // index of the oldest retained epoch
  size_t size_ = 0;
};

}  // namespace conservation::obs

#endif  // CONSERVATION_OBS_WINDOW_H_
