// ServeClient: a minimal blocking client for the crserved ingest protocol
// (serve/protocol.h). One client owns one loopback TCP connection; create
// one per driver thread — the class is not thread-safe.
//
// Two usage shapes:
//   * Append(): one request/one ack round trip — simplest, and what the
//     latency benchmarks measure (append-to-ack).
//   * SendAppend() + ReadAck(): pipelining — queue several appends before
//     collecting acks (the daemon guarantees per-connection ack order).

#ifndef CONSERVATION_SERVE_CLIENT_H_
#define CONSERVATION_SERVE_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.h"
#include "util/status.h"

namespace conservation::serve {

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  // Connects to 127.0.0.1:port.
  util::Status Connect(int port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // Blocking round trips.
  util::Result<AckFrame> Append(uint64_t tenant_id, const double* a,
                                const double* b, int64_t m);
  util::Result<AckFrame> Ping();
  util::Result<StatsReplyFrame> Stats();

  // Pipelined halves: SendAppend queues the request bytes (flushed by
  // Flush or implicitly by ReadAck), ReadAck pops the next ack in order.
  util::Status SendAppend(uint64_t tenant_id, const double* a,
                          const double* b, int64_t m);
  util::Status Flush();
  util::Result<AckFrame> ReadAck();

 private:
  util::Status SendAll(const char* data, size_t size);
  // Reads frames until one of `type` arrives.
  util::Result<Frame> ReadFrame(FrameType type);

  int fd_ = -1;
  std::string send_buffer_;
  FrameReader reader_;
};

}  // namespace conservation::serve

#endif  // CONSERVATION_SERVE_CLIENT_H_
