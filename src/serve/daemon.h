// ServeDaemon: the multi-tenant conservation serving loop.
//
// One process hosts thousands of tenant streams (serve/tenant_registry.h)
// behind a loopback TCP ingest socket speaking the length-prefixed frame
// protocol (serve/protocol.h). The moving parts:
//
//   ingest    An accept thread hands connections to a small reader pool.
//             Each reader services one connection at a time: decode frames,
//             admit-or-reject appends under the daemon mutex (bounded
//             per-tenant and global pending-tick depth), write one ack per
//             append in request order. Admission is O(1) — the expensive
//             work never runs on a reader thread.
//
//   dispatch  Accepting an append for a tenant with no dispatch in flight
//             marks it in_flight and submits ProcessTenant to the shared
//             util::ThreadPool. ProcessTenant swaps the tenant's pending
//             queue out under the mutex, applies it to the stream session
//             OUTSIDE the mutex (the batch append is the dominant cost),
//             then either resubmits itself (more ticks arrived meanwhile)
//             or clears in_flight. Per-tenant ordering is the in_flight
//             flag; cross-tenant parallelism is the pool. Each dispatched
//             batch runs under an obs::ScopedDeadline so a wedged tenant
//             trips the watchdog.
//
//   refresh   In append-only mode sessions defer cover maintenance
//             (incr/incremental.h SetAppendOnly); a periodic refresh
//             thread sweeps dirty idle tenants and brings their tableaux
//             up to date, amortizing cover cost across many small appends.
//             The same sweep enforces the hot-tenant bound by evicting
//             least-recently-dispatched idle sessions to the cold
//             sketch-tier store.
//
//   observe   serve.* counters/gauges/histograms (docs/OBSERVABILITY.md)
//             flow through the process registry; pair with
//             obs::ScrapeServer for a /metrics endpoint and
//             obs::StartWatchdog for stall detection — the daemon does not
//             own either, so embedders (tests, benches) compose them.
//
//   drain     Stop() closes the listener, waking readers, lets every
//             queued tick apply, runs a final cover refresh over dirty
//             tenants, and joins all threads. After Stop returns no tenant
//             has pending ticks — the "clean drain" the soak tests and
//             SIGTERM handler rely on.
//
// Concurrency notes: one mutex guards the registry + queues. That is a
// deliberate simplicity/scale trade-off — admission work under the lock is
// a few loads and vector pushes; the heavy per-tenant appends run outside
// it, pinned by in_flight. Profile before sharding.

#ifndef CONSERVATION_SERVE_DAEMON_H_
#define CONSERVATION_SERVE_DAEMON_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.h"
#include "serve/tenant_registry.h"
#include "util/status.h"

namespace conservation::serve {

struct DaemonOptions {
  // Ingest port; 0 picks an ephemeral one (read it back via port()).
  int port = 0;
  // Reader threads servicing accepted connections. Each reader owns one
  // connection at a time, so this bounds concurrent clients; keep small —
  // decoding is cheap and the machine also runs the dispatch pool.
  int readers = 2;
  // Admission bounds, in pending (accepted, unapplied) ticks. An append
  // that would push either depth past its bound is rejected with
  // kBackpressure and must be retried by the client.
  int64_t max_tenant_queue_ticks = 4096;
  int64_t max_global_queue_ticks = 1 << 20;
  // Cover refresh + eviction sweep period; 0 disables the thread (covers
  // then refresh only on Stop, eviction never runs).
  int64_t refresh_ms = 200;
  // Watchdog budget for one dispatched tenant batch (seconds; 0 = watchdog
  // default).
  double dispatch_budget_seconds = 30.0;
};

struct DaemonStats {
  uint64_t connections = 0;
  uint64_t frames = 0;
  uint64_t appends_accepted = 0;
  uint64_t appends_rejected = 0;
  uint64_t ticks_ingested = 0;
  uint64_t ticks_processed = 0;
  uint64_t batches_dispatched = 0;
  uint64_t cover_refreshes = 0;
  uint64_t protocol_errors = 0;
};

class ServeDaemon {
 public:
  ServeDaemon(const TenantConfig& tenant_config, const DaemonOptions& options);
  ~ServeDaemon();

  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  // Binds, listens and starts the accept/reader/refresh threads.
  util::Status Start();

  // Graceful shutdown: stop accepting, unblock and join readers, drain
  // every pending tick through the dispatch pool, final cover refresh,
  // join the refresh thread. Idempotent.
  void Stop();

  // Blocks until every accepted tick has been applied and no dispatch is
  // in flight (steady state for tests; Stop calls this too).
  void DrainQueues();

  int port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }
  DaemonStats Stats() const;
  // Registry access for tests/benches; take care — not synchronized with a
  // running daemon except via DrainQueues/Stop.
  TenantRegistry& registry() { return registry_; }

 private:
  struct PendingAck {
    int fd = 0;
    AckFrame ack;
  };

  void AcceptLoop();
  void ReaderLoop();
  void RefreshLoop();
  void ServeConnection(int fd);
  // Admission + enqueue for one decoded append; fills *ack. Called with
  // mu_ held.
  void AdmitAppendLocked(const AppendFrame& append, AckFrame* ack);
  // Dispatched on the shared pool; owns the tenant via in_flight.
  void ProcessTenant(uint64_t tenant_id);
  void RefreshSweep(bool final_sweep);
  void UpdateQueueGauges();  // mu_ held

  TenantConfig tenant_config_;
  DaemonOptions options_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  // Atomic: Stop() closes and clears the fd while AcceptLoop polls it. The
  // accept loop tolerates a concurrently closed fd (poll/accept fail and it
  // exits); the atomic only makes the handoff of the value itself race-free.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;

  std::thread accept_thread_;
  std::vector<std::thread> reader_threads_;
  std::thread refresh_thread_;

  // Accepted connections waiting for a reader.
  std::mutex conn_mu_;
  std::condition_variable conn_cv_;
  std::deque<int> conn_queue_;

  // Registry + scheduler state.
  mutable std::mutex mu_;
  std::condition_variable drain_cv_;
  TenantRegistry registry_;
  int64_t global_queue_ticks_ = 0;
  int64_t in_flight_tenants_ = 0;
  uint64_t dispatch_seq_ = 0;
  DaemonStats stats_;

  // Refresh thread wakeup (poked by Stop for prompt exit).
  std::mutex refresh_mu_;
  std::condition_variable refresh_cv_;
};

}  // namespace conservation::serve

#endif  // CONSERVATION_SERVE_DAEMON_H_
