#include "serve/protocol.h"

#include <cstring>

namespace conservation::serve {
namespace {

void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void PutU32(uint32_t v, std::string* out) {
  char b[4];
  b[0] = static_cast<char>(v & 0xff);
  b[1] = static_cast<char>((v >> 8) & 0xff);
  b[2] = static_cast<char>((v >> 16) & 0xff);
  b[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(b, 4);
}

void PutU64(uint64_t v, std::string* out) {
  PutU32(static_cast<uint32_t>(v & 0xffffffffu), out);
  PutU32(static_cast<uint32_t>(v >> 32), out);
}

void PutF64(double v, std::string* out) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits, out);
}

uint32_t GetU32(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
}

uint64_t GetU64(const char* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

double GetF64(const char* p) {
  const uint64_t bits = GetU64(p);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// Backpatches the u32 length prefix reserved at `len_at` once the payload
// between it and out->size() is complete.
void FinishFrame(size_t len_at, std::string* out) {
  const uint32_t payload = static_cast<uint32_t>(out->size() - len_at - 4);
  (*out)[len_at] = static_cast<char>(payload & 0xff);
  (*out)[len_at + 1] = static_cast<char>((payload >> 8) & 0xff);
  (*out)[len_at + 2] = static_cast<char>((payload >> 16) & 0xff);
  (*out)[len_at + 3] = static_cast<char>((payload >> 24) & 0xff);
}

size_t BeginFrame(std::string* out) {
  const size_t len_at = out->size();
  out->append(4, '\0');
  return len_at;
}

}  // namespace

const char* AckStatusName(AckStatus status) {
  switch (status) {
    case AckStatus::kOk:
      return "ok";
    case AckStatus::kBackpressure:
      return "backpressure";
    case AckStatus::kShuttingDown:
      return "shutting_down";
  }
  return "unknown";
}

void EncodeAppend(uint64_t tenant_id, const double* a, const double* b,
                  int64_t m, std::string* out) {
  const size_t len_at = BeginFrame(out);
  PutU8(static_cast<uint8_t>(FrameType::kAppend), out);
  PutU64(tenant_id, out);
  PutU32(static_cast<uint32_t>(m), out);
  for (int64_t k = 0; k < m; ++k) PutF64(a[k], out);
  for (int64_t k = 0; k < m; ++k) PutF64(b[k], out);
  FinishFrame(len_at, out);
}

void EncodeAck(const AckFrame& ack, std::string* out) {
  const size_t len_at = BeginFrame(out);
  PutU8(static_cast<uint8_t>(FrameType::kAck), out);
  PutU64(ack.tenant_id, out);
  PutU8(static_cast<uint8_t>(ack.status), out);
  PutU32(ack.accepted_ticks, out);
  PutU64(ack.queued_ticks, out);
  FinishFrame(len_at, out);
}

void EncodePing(std::string* out) {
  const size_t len_at = BeginFrame(out);
  PutU8(static_cast<uint8_t>(FrameType::kPing), out);
  FinishFrame(len_at, out);
}

void EncodeStatsRequest(std::string* out) {
  const size_t len_at = BeginFrame(out);
  PutU8(static_cast<uint8_t>(FrameType::kStats), out);
  FinishFrame(len_at, out);
}

void EncodeStatsReply(const StatsReplyFrame& stats, std::string* out) {
  const size_t len_at = BeginFrame(out);
  PutU8(static_cast<uint8_t>(FrameType::kStatsReply), out);
  PutU64(stats.tenants, out);
  PutU64(stats.ticks_ingested, out);
  PutU64(stats.ticks_processed, out);
  PutU64(stats.batches_rejected, out);
  FinishFrame(len_at, out);
}

void FrameReader::Feed(const char* data, size_t size) {
  if (failed_) return;
  // Compact lazily: only when the dead prefix dominates the buffer.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, size);
}

bool FrameReader::Violation(const std::string& message) {
  failed_ = true;
  error_ = message;
  buffer_.clear();
  consumed_ = 0;
  return false;
}

bool FrameReader::Next(Frame* frame) {
  if (failed_) return false;
  const size_t avail = buffer_.size() - consumed_;
  if (avail < 4) return false;
  const char* base = buffer_.data() + consumed_;
  const uint32_t payload_len = GetU32(base);
  if (payload_len < 1 || payload_len > kMaxFramePayload) {
    return Violation("bad frame length " + std::to_string(payload_len));
  }
  if (avail < 4 + static_cast<size_t>(payload_len)) return false;
  const char* p = base + 4;
  const char* end = p + payload_len;
  const uint8_t type = static_cast<uint8_t>(*p++);
  *frame = Frame();
  switch (type) {
    case static_cast<uint8_t>(FrameType::kAppend): {
      frame->type = FrameType::kAppend;
      if (end - p < 12) return Violation("short append header");
      frame->append.tenant_id = GetU64(p);
      p += 8;
      const uint32_t m = GetU32(p);
      p += 4;
      if (m == 0 || m > kMaxAppendTicks) {
        return Violation("bad append tick count " + std::to_string(m));
      }
      if (static_cast<size_t>(end - p) != static_cast<size_t>(m) * 16) {
        return Violation("append body size mismatch");
      }
      frame->append.a.resize(m);
      frame->append.b.resize(m);
      for (uint32_t k = 0; k < m; ++k, p += 8) frame->append.a[k] = GetF64(p);
      for (uint32_t k = 0; k < m; ++k, p += 8) frame->append.b[k] = GetF64(p);
      break;
    }
    case static_cast<uint8_t>(FrameType::kAck): {
      frame->type = FrameType::kAck;
      if (end - p != 8 + 1 + 4 + 8) return Violation("bad ack size");
      frame->ack.tenant_id = GetU64(p);
      p += 8;
      const uint8_t status = static_cast<uint8_t>(*p++);
      if (status > static_cast<uint8_t>(AckStatus::kShuttingDown)) {
        return Violation("bad ack status");
      }
      frame->ack.status = static_cast<AckStatus>(status);
      frame->ack.accepted_ticks = GetU32(p);
      p += 4;
      frame->ack.queued_ticks = GetU64(p);
      p += 8;
      break;
    }
    case static_cast<uint8_t>(FrameType::kPing): {
      frame->type = FrameType::kPing;
      if (p != end) return Violation("ping carries a body");
      break;
    }
    case static_cast<uint8_t>(FrameType::kStats): {
      frame->type = FrameType::kStats;
      if (p != end) return Violation("stats request carries a body");
      break;
    }
    case static_cast<uint8_t>(FrameType::kStatsReply): {
      frame->type = FrameType::kStatsReply;
      if (end - p != 32) return Violation("bad stats reply size");
      frame->stats.tenants = GetU64(p);
      frame->stats.ticks_ingested = GetU64(p + 8);
      frame->stats.ticks_processed = GetU64(p + 16);
      frame->stats.batches_rejected = GetU64(p + 24);
      break;
    }
    default:
      return Violation("unknown frame type " + std::to_string(type));
  }
  consumed_ += 4 + payload_len;
  if (consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  }
  return true;
}

}  // namespace conservation::serve
