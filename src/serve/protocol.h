// Wire protocol for the conservation serving daemon (crserved): a
// length-prefixed binary framing over a loopback TCP socket.
//
// Frame layout (all integers little-endian, floats IEEE-754 binary64 in
// little-endian byte order — the daemon is an operator-local loopback
// service, but the encoding is still pinned so a mixed-endian toolchain
// cannot silently corrupt counts):
//
//   frame   := u32 payload_len | payload          (len covers the payload)
//   payload := u8 type | body
//
//   kAppend(1)     u64 tenant_id | u32 m | m x f64 a | m x f64 b
//                  One batch of m ticks for one tenant. The daemon replies
//                  with exactly one kAck per kAppend, in request order
//                  (pipelining is allowed: a client may send several
//                  appends before reading the acks).
//   kAck(2)        u64 tenant_id | u8 status | u32 accepted_ticks |
//                  u64 queued_ticks
//                  status: AckStatus below. queued_ticks is the tenant's
//                  post-enqueue queue depth — admission-aware clients use
//                  it to self-pace before the hard backpressure bound.
//   kPing(3)       (empty body). Replies kAck{tenant_id=0, kOk}. Doubles
//                  as a sync barrier: the ack proves every earlier frame
//                  on this connection was decoded and enqueued.
//   kStats(4)      (empty body). Replies kStatsReply.
//   kStatsReply(5) u64 tenants | u64 ticks_ingested | u64 ticks_processed |
//                  u64 batches_rejected
//                  ticks_ingested counts accepted appends at enqueue time;
//                  ticks_processed counts ticks applied to tenant state.
//                  Drivers poll the delta to compute sustained throughput.
//
// Acks are per-append admission decisions: kOk means the batch is queued
// (durably owned by the daemon and guaranteed applied before a drain
// completes), not yet applied. kBackpressure means the batch was REJECTED
// under the per-tenant or global queue bound and must be retried later.
//
// FrameReader is the incremental decoder both sides use: feed it raw
// bytes as they arrive, pop complete frames. A protocol violation (bad
// type, oversized or short body) poisons the reader — the connection
// should be dropped, there is no resynchronization inside a stream.

#ifndef CONSERVATION_SERVE_PROTOCOL_H_
#define CONSERVATION_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace conservation::serve {

enum class FrameType : uint8_t {
  kAppend = 1,
  kAck = 2,
  kPing = 3,
  kStats = 4,
  kStatsReply = 5,
};

enum class AckStatus : uint8_t {
  kOk = 0,            // batch queued (or ping answered)
  kBackpressure = 1,  // rejected: queue bound hit, retry later
  kShuttingDown = 2,  // rejected: daemon is draining
};

const char* AckStatusName(AckStatus status);

// Hard cap on one frame's payload: 1 MiB of ticks (~65k ticks per append)
// is far beyond any sane batch; anything larger is a protocol violation,
// not a workload.
inline constexpr uint32_t kMaxFramePayload = 1u << 20;
// Largest m a kAppend may carry under kMaxFramePayload.
inline constexpr uint32_t kMaxAppendTicks =
    (kMaxFramePayload - 1 - 8 - 4) / 16;

struct AppendFrame {
  uint64_t tenant_id = 0;
  std::vector<double> a;
  std::vector<double> b;
};

struct AckFrame {
  uint64_t tenant_id = 0;
  AckStatus status = AckStatus::kOk;
  uint32_t accepted_ticks = 0;
  uint64_t queued_ticks = 0;
};

struct StatsReplyFrame {
  uint64_t tenants = 0;
  uint64_t ticks_ingested = 0;
  uint64_t ticks_processed = 0;
  uint64_t batches_rejected = 0;
};

// One decoded frame; the struct matching `type` is populated.
struct Frame {
  FrameType type = FrameType::kPing;
  AppendFrame append;
  AckFrame ack;
  StatsReplyFrame stats;
};

// Encoders append the complete frame (length prefix included) to *out.
void EncodeAppend(uint64_t tenant_id, const double* a, const double* b,
                  int64_t m, std::string* out);
void EncodeAck(const AckFrame& ack, std::string* out);
void EncodePing(std::string* out);
void EncodeStatsRequest(std::string* out);
void EncodeStatsReply(const StatsReplyFrame& stats, std::string* out);

class FrameReader {
 public:
  // Appends raw bytes to the decode buffer.
  void Feed(const char* data, size_t size);

  // Pops the next complete frame. Returns true and fills *frame when one
  // is available; false otherwise — distinguish "need more bytes" from a
  // protocol violation via failed(). Once failed, the reader stays failed
  // and Next always returns false.
  bool Next(Frame* frame);

  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }
  // Bytes buffered but not yet consumed (0 on a clean frame boundary).
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  bool Violation(const std::string& message);

  std::string buffer_;
  size_t consumed_ = 0;
  bool failed_ = false;
  std::string error_;
};

}  // namespace conservation::serve

#endif  // CONSERVATION_SERVE_PROTOCOL_H_
