#include "serve/daemon.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "obs/watchdog.h"
#include "util/check.h"
#include "util/thread_pool.h"

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace conservation::serve {
namespace {

// Hoisted registry handles (obs/metrics.h goal 3): resolved once, then
// every touch is a relaxed striped add.
struct ServeMetrics {
  obs::Counter& connections;
  obs::Counter& frames;
  obs::Counter& appends_accepted;
  obs::Counter& appends_rejected;
  obs::Counter& ticks_ingested;
  obs::Counter& ticks_processed;
  obs::Counter& batches_dispatched;
  obs::Counter& cover_refreshes;
  obs::Counter& protocol_errors;
  obs::Gauge& queue_depth;
  obs::Gauge& tenants;
  obs::Gauge& tenants_hot;
  obs::Gauge& inflight;
  obs::Histogram& dispatch_seconds;
  obs::Histogram& dispatch_ticks;

  static ServeMetrics& Get() {
    auto& reg = obs::Registry::Global();
    static ServeMetrics metrics{
        reg.Counter("serve.connections"),
        reg.Counter("serve.frames"),
        reg.Counter("serve.appends_accepted"),
        reg.Counter("serve.appends_rejected"),
        reg.Counter("serve.ticks_ingested"),
        reg.Counter("serve.ticks_processed"),
        reg.Counter("serve.batches_dispatched"),
        reg.Counter("serve.cover_refreshes"),
        reg.Counter("serve.protocol_errors"),
        reg.Gauge("serve.queue_depth_ticks"),
        reg.Gauge("serve.tenants"),
        reg.Gauge("serve.tenants_hot"),
        reg.Gauge("serve.inflight_tenants"),
        reg.Histogram("serve.dispatch_batch_seconds",
                      {1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0}),
        reg.Histogram("serve.dispatch_ticks",
                      {1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0}),
    };
    return metrics;
  }
};

bool SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

ServeDaemon::ServeDaemon(const TenantConfig& tenant_config,
                         const DaemonOptions& options)
    : tenant_config_(tenant_config),
      options_(options),
      registry_(tenant_config) {}

ServeDaemon::~ServeDaemon() { Stop(); }

util::Status ServeDaemon::Start() {
  CR_CHECK(!running_.load(std::memory_order_acquire));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return util::Status::Internal(std::string("socket: ") +
                                  std::strerror(errno));
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string message = std::string("bind: ") + std::strerror(errno);
    close(fd);
    return util::Status::Internal(message);
  }
  if (listen(fd, 128) != 0) {
    const std::string message = std::string("listen: ") + std::strerror(errno);
    close(fd);
    return util::Status::Internal(message);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    const std::string message =
        std::string("getsockname: ") + std::strerror(errno);
    close(fd);
    return util::Status::Internal(message);
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  const int readers = options_.readers > 0 ? options_.readers : 1;
  reader_threads_.reserve(static_cast<size_t>(readers));
  for (int i = 0; i < readers; ++i) {
    reader_threads_.emplace_back([this] { ReaderLoop(); });
  }
  if (options_.refresh_ms > 0) {
    refresh_thread_ = std::thread([this] { RefreshLoop(); });
  }
  return util::Status::Ok();
}

void ServeDaemon::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);

  // Closing the listener wakes the accept loop's poll with an error.
  const int listen_fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (listen_fd >= 0) {
    shutdown(listen_fd, SHUT_RDWR);
    close(listen_fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  conn_cv_.notify_all();
  for (std::thread& reader : reader_threads_) {
    if (reader.joinable()) reader.join();
  }
  reader_threads_.clear();
  // Close any connections accepted but never picked up.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    while (!conn_queue_.empty()) {
      close(conn_queue_.front());
      conn_queue_.pop_front();
    }
  }

  // Everything accepted must apply before shutdown is "clean".
  DrainQueues();

  refresh_cv_.notify_all();
  if (refresh_thread_.joinable()) refresh_thread_.join();
  RefreshSweep(/*final_sweep=*/true);

  running_.store(false, std::memory_order_release);
}

void ServeDaemon::DrainQueues() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] {
    return global_queue_ticks_ == 0 && in_flight_tenants_ == 0;
  });
}

DaemonStats ServeDaemon::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ServeDaemon::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) break;
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = poll(&pfd, 1, 100);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) {
      if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) break;
      continue;
    }
    const int conn = accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    const int one = 1;
    setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ServeMetrics::Get().connections.Increment();
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      conn_queue_.push_back(conn);
    }
    conn_cv_.notify_one();
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.connections;
    }
  }
}

void ServeDaemon::ReaderLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(conn_mu_);
      conn_cv_.wait(lock, [this] {
        return !conn_queue_.empty() ||
               stopping_.load(std::memory_order_acquire);
      });
      if (conn_queue_.empty()) return;  // stopping
      fd = conn_queue_.front();
      conn_queue_.pop_front();
    }
    ServeConnection(fd);
    close(fd);
  }
}

void ServeDaemon::ServeConnection(int fd) {
  FrameReader reader;
  std::string out;
  char chunk[64 * 1024];
  Frame frame;
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = poll(&pfd, 1, 100);
    if (ready < 0 && errno != EINTR) return;
    if (stopping_.load(std::memory_order_acquire)) return;
    if (ready <= 0) continue;
    if ((pfd.revents & (POLLERR | POLLNVAL)) != 0) return;
    const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) return;  // clean close
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    reader.Feed(chunk, static_cast<size_t>(n));
    out.clear();
    while (reader.Next(&frame)) {
      switch (frame.type) {
        case FrameType::kAppend: {
          AckFrame ack;
          {
            std::lock_guard<std::mutex> lock(mu_);
            AdmitAppendLocked(frame.append, &ack);
          }
          EncodeAck(ack, &out);
          break;
        }
        case FrameType::kPing: {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.frames;
          ServeMetrics::Get().frames.Increment();
          EncodeAck(AckFrame{}, &out);
          break;
        }
        case FrameType::kStats: {
          StatsReplyFrame reply;
          {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.frames;
            reply.tenants = static_cast<uint64_t>(registry_.size());
            reply.ticks_ingested = stats_.ticks_ingested;
            reply.ticks_processed = stats_.ticks_processed;
            reply.batches_rejected = stats_.appends_rejected;
          }
          ServeMetrics::Get().frames.Increment();
          EncodeStatsReply(reply, &out);
          break;
        }
        default: {
          // Clients must not send ack/stats-reply frames; drop the
          // connection after flushing any acks already produced.
          {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.protocol_errors;
          }
          ServeMetrics::Get().protocol_errors.Increment();
          if (!out.empty()) SendAll(fd, out.data(), out.size());
          return;
        }
      }
    }
    if (!out.empty() && !SendAll(fd, out.data(), out.size())) return;
    if (reader.failed()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.protocol_errors;
      }
      ServeMetrics::Get().protocol_errors.Increment();
      return;
    }
  }
}

void ServeDaemon::AdmitAppendLocked(const AppendFrame& append, AckFrame* ack) {
  ServeMetrics& metrics = ServeMetrics::Get();
  ++stats_.frames;
  metrics.frames.Increment();
  ack->tenant_id = append.tenant_id;
  const int64_t m = static_cast<int64_t>(append.a.size());
  if (stopping_.load(std::memory_order_acquire)) {
    ack->status = AckStatus::kShuttingDown;
    ++stats_.appends_rejected;
    metrics.appends_rejected.Increment();
    return;
  }
  Tenant& tenant = registry_.GetOrCreate(append.tenant_id);
  const int64_t tenant_depth = static_cast<int64_t>(tenant.pend_a.size());
  if (tenant_depth + m > options_.max_tenant_queue_ticks ||
      global_queue_ticks_ + m > options_.max_global_queue_ticks) {
    ack->status = AckStatus::kBackpressure;
    ack->queued_ticks = static_cast<uint64_t>(tenant_depth);
    ++stats_.appends_rejected;
    metrics.appends_rejected.Increment();
    return;
  }
  registry_.Enqueue(tenant, append.a.data(), append.b.data(), m);
  global_queue_ticks_ += m;
  ++stats_.appends_accepted;
  stats_.ticks_ingested += static_cast<uint64_t>(m);
  metrics.appends_accepted.Increment();
  metrics.ticks_ingested.Add(static_cast<uint64_t>(m));
  ack->status = AckStatus::kOk;
  ack->accepted_ticks = static_cast<uint32_t>(m);
  ack->queued_ticks = static_cast<uint64_t>(tenant.pend_a.size());
  if (!tenant.in_flight) {
    tenant.in_flight = true;
    ++in_flight_tenants_;
    tenant.last_dispatch_seq = ++dispatch_seq_;
    const uint64_t id = tenant.id;
    util::ThreadPool::Shared().Submit([this, id] { ProcessTenant(id); });
  }
  UpdateQueueGauges();
}

void ServeDaemon::ProcessTenant(uint64_t tenant_id) {
  ServeMetrics& metrics = ServeMetrics::Get();
  std::vector<double> a;
  std::vector<double> b;
  bool fault = false;
  Tenant* tenant = nullptr;
  int64_t m = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tenant = registry_.Find(tenant_id);
    CR_CHECK(tenant != nullptr && tenant->in_flight);
    m = registry_.PrepareDispatch(*tenant, &a, &b, &fault);
    global_queue_ticks_ -= m;
    UpdateQueueGauges();
  }

  const auto start = std::chrono::steady_clock::now();
  {
    obs::ScopedDeadline deadline("serve.tenant_batch",
                                 options_.dispatch_budget_seconds);
    registry_.ApplyBatch(*tenant, fault, a, b);
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  metrics.dispatch_seconds.Record(seconds);
  metrics.dispatch_ticks.Record(static_cast<double>(m));
  metrics.batches_dispatched.Increment();
  metrics.ticks_processed.Add(static_cast<uint64_t>(m));

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.batches_dispatched;
  stats_.ticks_processed += static_cast<uint64_t>(m);
  if (!tenant->pend_a.empty()) {
    // More ticks landed while we were applying: keep the pin, go again.
    tenant->last_dispatch_seq = ++dispatch_seq_;
    util::ThreadPool::Shared().Submit(
        [this, tenant_id] { ProcessTenant(tenant_id); });
    return;
  }
  tenant->in_flight = false;
  --in_flight_tenants_;
  UpdateQueueGauges();
  if (global_queue_ticks_ == 0 && in_flight_tenants_ == 0) {
    drain_cv_.notify_all();
  }
}

void ServeDaemon::RefreshLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    {
      std::unique_lock<std::mutex> lock(refresh_mu_);
      refresh_cv_.wait_for(
          lock, std::chrono::milliseconds(options_.refresh_ms),
          [this] { return stopping_.load(std::memory_order_acquire); });
    }
    if (stopping_.load(std::memory_order_acquire)) return;
    RefreshSweep(/*final_sweep=*/false);
  }
}

void ServeDaemon::RefreshSweep(bool final_sweep) {
  ServeMetrics& metrics = ServeMetrics::Get();
  // Pass 1: cover refreshes for dirty idle tenants. Each tenant is pinned
  // (in_flight) so the refresh can run unlocked without racing a dispatch.
  std::vector<uint64_t> dirty;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, tenant] : registry_.tenants()) {
      // in_flight must be tested first: session/cover_dirty are written by
      // the pinned worker outside mu_, so they may only be read once the
      // pin is observed clear (the worker releases it under mu_).
      if (!tenant->in_flight && tenant->pend_a.empty() &&
          tenant->session != nullptr && tenant->cover_dirty) {
        dirty.push_back(id);
      }
    }
  }
  for (const uint64_t id : dirty) {
    Tenant* tenant = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      tenant = registry_.Find(id);
      if (tenant == nullptr || tenant->in_flight || !tenant->cover_dirty ||
          tenant->session == nullptr || !tenant->pend_a.empty()) {
        continue;
      }
      tenant->in_flight = true;
      ++in_flight_tenants_;
    }
    {
      obs::ScopedDeadline deadline("serve.cover_refresh",
                                   options_.dispatch_budget_seconds);
      registry_.RefreshCover(*tenant);
    }
    metrics.cover_refreshes.Increment();
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.cover_refreshes;
    tenant->in_flight = false;
    --in_flight_tenants_;
    if (!tenant->pend_a.empty()) {
      // Ticks arrived mid-refresh and their admission saw in_flight set;
      // dispatch them now.
      tenant->in_flight = true;
      ++in_flight_tenants_;
      tenant->last_dispatch_seq = ++dispatch_seq_;
      util::ThreadPool::Shared().Submit([this, id] { ProcessTenant(id); });
    } else if (global_queue_ticks_ == 0 && in_flight_tenants_ == 0) {
      drain_cv_.notify_all();
    }
  }

  // Pass 2: enforce the hot-tenant bound (skipped on the final sweep —
  // shutdown keeps sessions so embedders can inspect them).
  const int64_t max_hot = registry_.config().max_hot;
  if (final_sweep || max_hot <= 0) return;
  while (registry_.hot_count() > max_hot) {
    Tenant* victim = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const std::vector<uint64_t> idle = registry_.HotIdleByLru();
      if (idle.empty()) return;
      victim = registry_.Find(idle.front());
      if (victim == nullptr || victim->in_flight ||
          victim->session == nullptr || !victim->pend_a.empty()) {
        return;
      }
      victim->in_flight = true;
      ++in_flight_tenants_;
    }
    registry_.Evict(*victim);
    std::lock_guard<std::mutex> lock(mu_);
    victim->in_flight = false;
    --in_flight_tenants_;
    UpdateQueueGauges();
    if (!victim->pend_a.empty()) {
      victim->in_flight = true;
      ++in_flight_tenants_;
      victim->last_dispatch_seq = ++dispatch_seq_;
      const uint64_t id = victim->id;
      util::ThreadPool::Shared().Submit([this, id] { ProcessTenant(id); });
    } else if (global_queue_ticks_ == 0 && in_flight_tenants_ == 0) {
      drain_cv_.notify_all();
    }
  }
}

void ServeDaemon::UpdateQueueGauges() {
  ServeMetrics& metrics = ServeMetrics::Get();
  metrics.queue_depth.Set(static_cast<double>(global_queue_ticks_));
  metrics.tenants.Set(static_cast<double>(registry_.size()));
  metrics.tenants_hot.Set(static_cast<double>(registry_.hot_count()));
  metrics.inflight.Set(static_cast<double>(in_flight_tenants_));
}

}  // namespace conservation::serve
