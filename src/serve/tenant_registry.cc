#include "serve/tenant_registry.h"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "series/sequence.h"
#include "util/check.h"

namespace conservation::serve {
namespace {

obs::Counter& FaultCounter() {
  static obs::Counter& c =
      obs::Registry::Global().Counter("serve.tenant_faults");
  return c;
}

obs::Counter& EvictionCounter() {
  static obs::Counter& c =
      obs::Registry::Global().Counter("serve.tenant_evictions");
  return c;
}

}  // namespace

TenantRegistry::TenantRegistry(const TenantConfig& config) : config_(config) {
  CR_CHECK(!config_.request.stop_on_full_cover);
}

Tenant& TenantRegistry::GetOrCreate(uint64_t id) {
  auto it = tenants_.find(id);
  if (it == tenants_.end()) {
    auto tenant = std::make_unique<Tenant>();
    tenant->id = id;
    it = tenants_.emplace(id, std::move(tenant)).first;
  }
  return *it->second;
}

Tenant* TenantRegistry::Find(uint64_t id) {
  auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : it->second.get();
}

void TenantRegistry::Enqueue(Tenant& tenant, const double* a, const double* b,
                             int64_t m) {
  for (int64_t k = 0; k < m; ++k) {
    double fa = a[k];
    double fb = b[k];
    tenant.filter.Apply(&fa, &fb);
    tenant.log_a.push_back(fa);
    tenant.log_b.push_back(fb);
    tenant.pend_a.push_back(fa);
    tenant.pend_b.push_back(fb);
  }
}

int64_t TenantRegistry::PrepareDispatch(Tenant& tenant, std::vector<double>* a,
                                        std::vector<double>* b, bool* fault) {
  const int64_t m = static_cast<int64_t>(tenant.pend_a.size());
  *fault = tenant.session == nullptr;
  if (*fault) {
    // The full-log copy (not a swap) keeps the canonical log intact; the
    // pending ticks are inside it, so clearing the queue loses nothing.
    *a = tenant.log_a;
    *b = tenant.log_b;
    tenant.pend_a.clear();
    tenant.pend_b.clear();
  } else {
    a->clear();
    b->clear();
    a->swap(tenant.pend_a);
    b->swap(tenant.pend_b);
  }
  return m;
}

void TenantRegistry::ApplyBatch(Tenant& tenant, bool fault,
                                const std::vector<double>& a,
                                const std::vector<double>& b) {
  if (fault) {
    if (FaultUp(tenant, a, b) && config_.append_only) {
      tenant.cover_dirty = true;
    }
    return;
  }
  CR_CHECK(tenant.session != nullptr);
  if (a.empty()) return;
  tenant.session->ObserveBatch(a, b);
  if (config_.append_only) tenant.cover_dirty = true;
}

int64_t TenantRegistry::ApplyPending(Tenant& tenant) {
  std::vector<double> a;
  std::vector<double> b;
  bool fault = false;
  const int64_t m = PrepareDispatch(tenant, &a, &b, &fault);
  ApplyBatch(tenant, fault, a, b);
  return m;
}

bool TenantRegistry::FaultUp(Tenant& tenant, const std::vector<double>& a,
                             const std::vector<double>& b) {
  auto counts = series::CountSequence::Create(a, b);
  if (!counts.ok()) return false;  // all-zero prefix; stay sessionless
  stream::StreamOptions stream = config_.stream;
  if (config_.label_tenants) {
    stream.tenant = "t" + std::to_string(tenant.id);
  }
  auto session =
      incr::StreamSession::Create(counts.value(), config_.request, stream);
  // The request was validated at registry construction and the sequence
  // just validated; creation cannot fail for data reasons.
  CR_CHECK(session.ok());
  tenant.session =
      std::make_unique<incr::StreamSession>(std::move(session).value());
  tenant.session->discoverer().SetAppendOnly(config_.append_only);
  if (!tenant.cold.empty()) tenant.cold = series::SeriesStore();
  hot_count_.fetch_add(1, std::memory_order_relaxed);
  faults_.fetch_add(1, std::memory_order_relaxed);
  FaultCounter().Increment();
  return true;
}

bool TenantRegistry::RefreshCover(Tenant& tenant) {
  if (tenant.session == nullptr || !tenant.cover_dirty) return false;
  tenant.session->discoverer().RefreshCover();
  tenant.cover_dirty = false;
  return true;
}

void TenantRegistry::Evict(Tenant& tenant) {
  CR_CHECK(tenant.session != nullptr);
  RefreshCover(tenant);  // don't discard deferred cover work with the session
  tenant.cold = series::SeriesStore::Build(
      tenant.session->discoverer().series(), config_.sketch_block);
  tenant.cold.Evict(series::SeriesStore::Tier::kSketch);
  tenant.session.reset();
  hot_count_.fetch_sub(1, std::memory_order_relaxed);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  EvictionCounter().Increment();
}

std::vector<uint64_t> TenantRegistry::HotIdleByLru() const {
  std::vector<std::pair<uint64_t, uint64_t>> order;  // (seq, id)
  for (const auto& [id, tenant] : tenants_) {
    // in_flight first: session is written by the pinned worker outside the
    // daemon mutex, so it is only safe to read once the pin reads clear.
    if (!tenant->in_flight && tenant->pend_a.empty() &&
        tenant->session != nullptr) {
      order.emplace_back(tenant->last_dispatch_seq, id);
    }
  }
  std::sort(order.begin(), order.end());
  std::vector<uint64_t> ids;
  ids.reserve(order.size());
  for (const auto& [seq, id] : order) ids.push_back(id);
  return ids;
}

}  // namespace conservation::serve
