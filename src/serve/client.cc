#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace conservation::serve {

ServeClient::~ServeClient() { Close(); }

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(other.fd_),
      send_buffer_(std::move(other.send_buffer_)),
      reader_(std::move(other.reader_)) {
  other.fd_ = -1;
}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    send_buffer_ = std::move(other.send_buffer_);
    reader_ = std::move(other.reader_);
    other.fd_ = -1;
  }
  return *this;
}

util::Status ServeClient::Connect(int port) {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return util::Status::Internal(std::string("socket: ") +
                                  std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string message =
        std::string("connect: ") + std::strerror(errno);
    close(fd);
    return util::Status::Internal(message);
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  reader_ = FrameReader();
  send_buffer_.clear();
  return util::Status::Ok();
}

void ServeClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

util::Status ServeClient::SendAll(const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::Status::Internal(std::string("send: ") +
                                    std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return util::Status::Ok();
}

util::Status ServeClient::SendAppend(uint64_t tenant_id, const double* a,
                                     const double* b, int64_t m) {
  if (fd_ < 0) return util::Status::FailedPrecondition("not connected");
  if (m <= 0 || m > static_cast<int64_t>(kMaxAppendTicks)) {
    return util::Status::InvalidArgument("bad append size");
  }
  EncodeAppend(tenant_id, a, b, m, &send_buffer_);
  return util::Status::Ok();
}

util::Status ServeClient::Flush() {
  if (send_buffer_.empty()) return util::Status::Ok();
  util::Status status = SendAll(send_buffer_.data(), send_buffer_.size());
  send_buffer_.clear();
  return status;
}

util::Result<Frame> ServeClient::ReadFrame(FrameType type) {
  if (fd_ < 0) return util::Status::FailedPrecondition("not connected");
  util::Status flush = Flush();
  if (!flush.ok()) return flush;
  Frame frame;
  char chunk[16 * 1024];
  for (;;) {
    if (reader_.Next(&frame)) {
      if (frame.type != type) {
        return util::Status::Internal("unexpected frame from server");
      }
      return frame;
    }
    if (reader_.failed()) {
      return util::Status::Internal("protocol error: " + reader_.error());
    }
    const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return util::Status::Internal("server closed connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::Status::Internal(std::string("recv: ") +
                                    std::strerror(errno));
    }
    reader_.Feed(chunk, static_cast<size_t>(n));
  }
}

util::Result<AckFrame> ServeClient::ReadAck() {
  auto frame = ReadFrame(FrameType::kAck);
  if (!frame.ok()) return frame.status();
  return frame.value().ack;
}

util::Result<AckFrame> ServeClient::Append(uint64_t tenant_id, const double* a,
                                           const double* b, int64_t m) {
  util::Status status = SendAppend(tenant_id, a, b, m);
  if (!status.ok()) return status;
  return ReadAck();
}

util::Result<AckFrame> ServeClient::Ping() {
  if (fd_ < 0) return util::Status::FailedPrecondition("not connected");
  EncodePing(&send_buffer_);
  return ReadAck();
}

util::Result<StatsReplyFrame> ServeClient::Stats() {
  if (fd_ < 0) return util::Status::FailedPrecondition("not connected");
  EncodeStatsRequest(&send_buffer_);
  auto frame = ReadFrame(FrameType::kStatsReply);
  if (!frame.ok()) return frame.status();
  return frame.value().stats;
}

}  // namespace conservation::serve
