// TenantRegistry: per-tenant stream state for the serving daemon.
//
// Each tenant is one (a,b) count-pair stream identified by a u64 id. The
// registry owns, per tenant:
//
//   * the canonical raw append log (every tick ever accepted, post
//     dominance filtering) — the source of truth a hot session is
//     (re)constructed from;
//   * an online dominance filter mirroring series::EnforceDominance
//     bitwise, so arbitrary client counts become a valid B-dominates-A
//     stream before they ever reach the discoverer (the incremental
//     engine's soundness assumption, incr/incremental.h);
//   * the pending queue: accepted-but-unapplied ticks awaiting a
//     scheduler dispatch;
//   * the HOT state, when resident: a StreamSession (incremental
//     discoverer + streaming monitor) over the full raw log, running in
//     append-only mode so small batches defer cover work to the periodic
//     refresh tick;
//   * the COLD state, after eviction: a sketch-tier SeriesStore
//     (~5.5 B/tick instead of the session's full working set). Fault-up
//     rebuilds the session from the raw log; by the incremental engine's
//     exactness contract the refreshed tableau after re-fault is
//     bit-identical to one maintained hot the whole time.
//
// Thread-safety: NONE — the registry is a plain data structure. The daemon
// (serve/daemon.h) serializes all access under its own mutex and uses the
// in_flight flag to pin a tenant while a dispatched batch runs outside the
// lock (ClaimForDispatch / FinishDispatch). Eviction skips in-flight
// tenants for the same reason.

#ifndef CONSERVATION_SERVE_TENANT_REGISTRY_H_
#define CONSERVATION_SERVE_TENANT_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/tableau.h"
#include "incr/stream_session.h"
#include "series/sketch.h"
#include "series/store.h"
#include "stream/streaming_monitor.h"
#include "util/status.h"

namespace conservation::serve {

// Streaming mirror of series::EnforceDominance: feeding ticks one at a
// time produces exactly the batch function's outputs (same carried
// cumulative state, same min/max/rounding guards), so a tenant's filtered
// log is independent of how its appends were batched.
class DominanceFilter {
 public:
  // Filters one raw tick in place.
  void Apply(double* a, double* b) {
    raw_a_cum_ += *a;
    raw_b_cum_ += *b;
    const double a_cum = raw_a_cum_ < raw_b_cum_ ? raw_a_cum_ : raw_b_cum_;
    const double b_cum = raw_a_cum_ < raw_b_cum_ ? raw_b_cum_ : raw_a_cum_;
    const double da = a_cum - prev_a_cum_;
    const double db = b_cum - prev_b_cum_;
    *a = da > 0.0 ? da : 0.0;
    *b = db > 0.0 ? db : 0.0;
    prev_a_cum_ = a_cum;
    prev_b_cum_ = b_cum;
  }

 private:
  double prev_a_cum_ = 0.0;
  double prev_b_cum_ = 0.0;
  double raw_a_cum_ = 0.0;
  double raw_b_cum_ = 0.0;
};

struct TenantConfig {
  // Tableau request shared by every tenant (per-tenant requests are a
  // non-goal: a fleet monitors one rule family). stop_on_full_cover must
  // be false (incremental engine restriction).
  core::TableauRequest request;
  stream::StreamOptions stream;
  // Defer per-batch cover maintenance to RefreshDirtyCovers (recommended
  // for serving; incr/incremental.h SetAppendOnly).
  bool append_only = true;
  // Label each tenant's monitor metrics ({tenant=...} children). Off by
  // default: past the 64-labelset family cap every extra tenant funnels
  // into the overflow child, which is noise at fleet scale.
  bool label_tenants = false;
  // Hot-tenant bound: after a dispatch completes, if more than this many
  // tenants hold live sessions the least-recently-dispatched idle ones are
  // evicted to the cold tier. 0 = unbounded.
  int64_t max_hot = 0;
  // Sketch block for cold-tier stores.
  int64_t sketch_block = series::SeriesSketch::kDefaultBlock;
};

struct Tenant {
  uint64_t id = 0;

  // Canonical post-filter append log. Kept even while hot: the cumulative
  // columns inside the session cannot reconstruct the exact count vectors
  // (subtraction reintroduces rounding), and fault-up needs them.
  std::vector<double> log_a;
  std::vector<double> log_b;
  DominanceFilter filter;

  // Accepted ticks not yet applied to the session.
  std::vector<double> pend_a;
  std::vector<double> pend_b;

  // Hot state; null while cold or before the first valid prefix (a
  // session needs a CountSequence, which rejects all-zero inputs — such
  // tenants stay pending-only until a nonzero tick arrives).
  std::unique_ptr<incr::StreamSession> session;
  // Cold state; empty while hot.
  series::SeriesStore cold;

  // Scheduler bookkeeping (owned by the daemon, stored here for eviction
  // ordering): set while a dispatched batch for this tenant runs outside
  // the registry lock.
  bool in_flight = false;
  // Appends were applied since the last cover refresh (append-only mode).
  bool cover_dirty = false;
  // Monotone dispatch clock position of the last dispatch (LRU key).
  uint64_t last_dispatch_seq = 0;

  int64_t applied_ticks() const {
    return static_cast<int64_t>(log_a.size() - pend_a.size());
  }
};

class TenantRegistry {
 public:
  explicit TenantRegistry(const TenantConfig& config);

  // Looks up or creates the tenant.
  Tenant& GetOrCreate(uint64_t id);
  Tenant* Find(uint64_t id);

  // Filters and appends m raw ticks to the tenant's log + pending queue.
  void Enqueue(Tenant& tenant, const double* a, const double* b, int64_t m);

  // Dispatch is split so the expensive half can run outside the daemon's
  // mutex while readers keep appending to the same tenant:
  //
  //   * PrepareDispatch (call LOCKED) snapshots the work — swaps the
  //     pending ticks into *a/*b, or, when the tenant has no session yet,
  //     copies the full raw log (the session's initial batch subsumes the
  //     pending ticks) and sets *fault. Clears the pending queue; returns
  //     the number of pending ticks consumed.
  //   * ApplyBatch (call UNLOCKED, tenant pinned via in_flight) feeds the
  //     snapshot to the session, creating it first on the fault path. Only
  //     tenant.session / tenant.cold / tenant.cover_dirty are touched —
  //     fields readers never access.
  int64_t PrepareDispatch(Tenant& tenant, std::vector<double>* a,
                          std::vector<double>* b, bool* fault);
  void ApplyBatch(Tenant& tenant, bool fault, const std::vector<double>& a,
                  const std::vector<double>& b);

  // Convenience for single-threaded callers (tests): Prepare + Apply.
  int64_t ApplyPending(Tenant& tenant);

  // Refreshes the deferred cover of a hot, dirty tenant (append-only
  // mode); no-op otherwise. Call unlocked with the tenant pinned. Returns
  // true when a refresh ran.
  bool RefreshCover(Tenant& tenant);

  // Demotes the tenant to the cold tier: refreshes any deferred cover,
  // builds a sketch-tier SeriesStore over its applied series and drops the
  // session. Call unlocked with the tenant pinned; ticks that arrive
  // during the eviction stay pending and fault the tenant right back up
  // on their dispatch.
  void Evict(Tenant& tenant);

  // Ids of hot, idle (not in_flight, no pending) tenants ordered by
  // last_dispatch_seq ascending — the eviction scan's candidate order.
  std::vector<uint64_t> HotIdleByLru() const;

  const TenantConfig& config() const { return config_; }
  int64_t size() const { return static_cast<int64_t>(tenants_.size()); }
  // Atomics: bumped by ApplyBatch/Evict, which run outside the daemon
  // mutex.
  int64_t hot_count() const {
    return hot_count_.load(std::memory_order_relaxed);
  }
  int64_t faults() const { return faults_.load(std::memory_order_relaxed); }
  int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  // Iteration for refresh ticks / drain checks.
  std::unordered_map<uint64_t, std::unique_ptr<Tenant>>& tenants() {
    return tenants_;
  }

 private:
  // (Re)creates tenant.session from a raw-log snapshot. Returns false when
  // the snapshot is not yet a valid CountSequence (all-zero so far).
  bool FaultUp(Tenant& tenant, const std::vector<double>& a,
               const std::vector<double>& b);

  TenantConfig config_;
  std::unordered_map<uint64_t, std::unique_ptr<Tenant>> tenants_;
  std::atomic<int64_t> hot_count_{0};
  std::atomic<int64_t> faults_{0};
  std::atomic<int64_t> evictions_{0};
};

}  // namespace conservation::serve

#endif  // CONSERVATION_SERVE_TENANT_REGISTRY_H_
