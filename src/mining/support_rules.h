// Baseline interval miner in the style of Optimized Support Rules
// (Fukuda, Morimoto, Morishita, Tokuyama — PODS 1996 [9]).
//
// The paper compares its confidence metrics against two alternatives that
// this family of algorithms can evaluate (§IV): the ratio of *instantaneous*
// count sums within an interval, and the ratio of areas under the cumulative
// curves with a fixed zero baseline. Both reduce, for a threshold c, to sign
// conditions on prefix sums of the transformed series u_l = x_l - c * y_l:
//   ratio(I) <= c  <=>  sum_{l in I} u_l <= 0.
// "Maximal intervals with ratio outside a range" are then found in
// O(n log n) with an order-statistics sweep over the prefix sums — no
// Theta(n^2) enumeration, faithful to the optimized spirit of [9].
//
// The technical reason these metrics are weaker than conservation-rule
// confidence (and the reason [9] cannot host the CR metrics) is that they
// use a single fixed baseline for all intervals, whereas CR baselines H_i
// depend on the interval's start (paper §VII).

#ifndef CONSERVATION_MINING_SUPPORT_RULES_H_
#define CONSERVATION_MINING_SUPPORT_RULES_H_

#include <cstdint>
#include <vector>

#include "core/model.h"
#include "interval/interval.h"
#include "series/sequence.h"

namespace conservation::mining {

enum class RatioMetric {
  // sum_{l in I} a_l / sum_{l in I} b_l — "summing up the counts".
  kInstantaneousSum,
  // sum_{l in I} A_l / sum_{l in I} B_l — cumulative areas down to a fixed
  // zero baseline.
  kZeroBaselineArea,
};

const char* RatioMetricName(RatioMetric metric);

struct MinedInterval {
  interval::Interval interval;
  double ratio = 0.0;
};

struct SupportRulesOptions {
  RatioMetric metric = RatioMetric::kInstantaneousSum;
  // kHold: ratio >= c_hat; kFail: ratio <= c_hat.
  core::TableauType type = core::TableauType::kFail;
  double c_hat = 0.8;
  // Drop intervals shorter than this many ticks.
  int64_t min_length = 1;
};

// All maximal qualifying intervals (not contained in another qualifying
// interval), sorted by position. Intervals whose ratio denominator is zero
// are skipped. O(n log n).
std::vector<MinedInterval> MineMaximalIntervals(
    const series::CountSequence& counts, const SupportRulesOptions& options);

// Maximal intervals whose ratio lies *outside* [range_low, range_high] —
// the formulation the paper quotes from [9]. Union of a fail pass at
// range_low and a hold pass at range_high.
std::vector<MinedInterval> MineOutsideRange(
    const series::CountSequence& counts, RatioMetric metric, double range_low,
    double range_high, int64_t min_length = 1);

}  // namespace conservation::mining

#endif  // CONSERVATION_MINING_SUPPORT_RULES_H_
