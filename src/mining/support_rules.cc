#include "mining/support_rules.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "series/cumulative.h"
#include "util/check.h"

namespace conservation::mining {

const char* RatioMetricName(RatioMetric metric) {
  switch (metric) {
    case RatioMetric::kInstantaneousSum:
      return "instantaneous_sum";
    case RatioMetric::kZeroBaselineArea:
      return "zero_baseline_area";
  }
  return "unknown";
}

namespace {

// Fenwick tree over value ranks storing the maximum position index; answers
// "largest j whose U_j is <= x" after offline rank compression.
class MaxPositionByRank {
 public:
  explicit MaxPositionByRank(size_t size)
      : tree_(size + 1, kNone) {}

  void Update(size_t rank, int64_t position) {
    for (size_t k = rank + 1; k < tree_.size(); k += k & (~k + 1)) {
      tree_[k] = std::max(tree_[k], position);
    }
  }

  // Max position among ranks [0, rank]; kNone when empty.
  int64_t QueryPrefix(size_t rank) const {
    int64_t best = kNone;
    for (size_t k = rank + 1; k > 0; k -= k & (~k + 1)) {
      best = std::max(best, tree_[k]);
    }
    return best;
  }

  static constexpr int64_t kNone = -1;

 private:
  std::vector<int64_t> tree_;
};

// The numerator/denominator series for the chosen metric, 1-based.
struct MetricSeries {
  std::vector<double> x;  // numerator terms (a_l or A_l), x[0] unused
  std::vector<double> y;  // denominator terms (b_l or B_l)
};

MetricSeries BuildMetricSeries(const series::CountSequence& counts,
                               RatioMetric metric) {
  const int64_t n = counts.n();
  MetricSeries out;
  out.x.resize(static_cast<size_t>(n) + 1, 0.0);
  out.y.resize(static_cast<size_t>(n) + 1, 0.0);
  if (metric == RatioMetric::kInstantaneousSum) {
    for (int64_t l = 1; l <= n; ++l) {
      out.x[static_cast<size_t>(l)] = counts.a(l);
      out.y[static_cast<size_t>(l)] = counts.b(l);
    }
  } else {
    const series::CumulativeSeries cumulative(counts);
    for (int64_t l = 1; l <= n; ++l) {
      out.x[static_cast<size_t>(l)] = cumulative.A(l);
      out.y[static_cast<size_t>(l)] = cumulative.B(l);
    }
  }
  return out;
}

}  // namespace

std::vector<MinedInterval> MineMaximalIntervals(
    const series::CountSequence& counts, const SupportRulesOptions& options) {
  const int64_t n = counts.n();
  const MetricSeries metric = BuildMetricSeries(counts, options.metric);

  // u_l = x_l - c * y_l, sign-flipped for hold so that "qualifies" is always
  // "interval sum <= 0" <=> U_j <= U_{i-1}.
  const double sign =
      options.type == core::TableauType::kFail ? 1.0 : -1.0;
  std::vector<double> U(static_cast<size_t>(n) + 1, 0.0);
  std::vector<double> Y(static_cast<size_t>(n) + 1, 0.0);  // denominator sums
  std::vector<double> X(static_cast<size_t>(n) + 1, 0.0);  // numerator sums
  for (int64_t l = 1; l <= n; ++l) {
    const size_t k = static_cast<size_t>(l);
    U[k] = U[k - 1] +
           sign * (metric.x[k] - options.c_hat * metric.y[k]);
    X[k] = X[k - 1] + metric.x[k];
    Y[k] = Y[k - 1] + metric.y[k];
  }

  // For each left endpoint i, the largest j >= i with U_j <= U_{i-1}.
  // Offline sweep from the right: positions j enter the structure keyed by
  // rank(U_j); the query for i is a prefix-max over ranks <= rank(U_{i-1}).
  // Ties in U are ordered by position so that equal values are admissible
  // (U_j == U_{i-1} qualifies; rank comparison must treat equal-valued later
  // positions as <=). To get that, ranks are compressed on value only.
  std::vector<double> sorted_values(U.begin(), U.end());
  std::sort(sorted_values.begin(), sorted_values.end());
  sorted_values.erase(
      std::unique(sorted_values.begin(), sorted_values.end()),
      sorted_values.end());
  auto value_rank = [&](double v) {
    return static_cast<size_t>(
        std::upper_bound(sorted_values.begin(), sorted_values.end(), v) -
        sorted_values.begin() - 1);
  };

  MaxPositionByRank structure(sorted_values.size());
  std::vector<int64_t> largest_j(static_cast<size_t>(n) + 1,
                                 MaxPositionByRank::kNone);
  // Process i descending; before answering i, insert j = i (intervals need
  // j >= i).
  for (int64_t i = n; i >= 1; --i) {
    structure.Update(value_rank(U[static_cast<size_t>(i)]), i);
    largest_j[static_cast<size_t>(i)] =
        structure.QueryPrefix(value_rank(U[static_cast<size_t>(i - 1)]));
  }

  // Keep only maximal intervals: scan left-to-right, keep [i, j_i] whose j_i
  // strictly exceeds every j seen so far.
  std::vector<MinedInterval> out;
  int64_t max_end_seen = 0;
  for (int64_t i = 1; i <= n; ++i) {
    const int64_t j = largest_j[static_cast<size_t>(i)];
    if (j < i) continue;
    if (j <= max_end_seen) continue;  // contained in an earlier interval
    max_end_seen = j;
    if (j - i + 1 < options.min_length) continue;
    const double denom =
        Y[static_cast<size_t>(j)] - Y[static_cast<size_t>(i - 1)];
    if (denom <= 0.0) continue;  // ratio undefined
    const double numer =
        X[static_cast<size_t>(j)] - X[static_cast<size_t>(i - 1)];
    out.push_back(MinedInterval{interval::Interval{i, j}, numer / denom});
  }
  return out;
}

std::vector<MinedInterval> MineOutsideRange(
    const series::CountSequence& counts, RatioMetric metric, double range_low,
    double range_high, int64_t min_length) {
  CR_CHECK(range_low <= range_high);
  SupportRulesOptions low_options;
  low_options.metric = metric;
  low_options.type = core::TableauType::kFail;
  low_options.c_hat = range_low;
  low_options.min_length = min_length;
  std::vector<MinedInterval> out = MineMaximalIntervals(counts, low_options);

  SupportRulesOptions high_options = low_options;
  high_options.type = core::TableauType::kHold;
  high_options.c_hat = range_high;
  std::vector<MinedInterval> high =
      MineMaximalIntervals(counts, high_options);
  out.insert(out.end(), high.begin(), high.end());
  std::sort(out.begin(), out.end(),
            [](const MinedInterval& lhs, const MinedInterval& rhs) {
              return interval::ByPosition(lhs.interval, rhs.interval);
            });
  return out;
}

}  // namespace conservation::mining
