// The naive divergence detectors of paper §I.B, provided as utilities and
// as foils for the experiments: pointwise divergence misses violations that
// build up slowly (false negatives), and fixed-size sliding windows are
// fooled by boundary effects (false positives).

#ifndef CONSERVATION_MINING_DIVERGENCE_H_
#define CONSERVATION_MINING_DIVERGENCE_H_

#include <cstdint>
#include <vector>

#include "interval/interval.h"
#include "series/sequence.h"

namespace conservation::mining {

struct DivergencePoint {
  int64_t tick = 0;
  // b_tick - a_tick (positive: inbound excess).
  double divergence = 0.0;
};

struct DivergenceWindow {
  interval::Interval window;
  // sum b - sum a over the window.
  double divergence = 0.0;
};

// The k ticks with the largest |b - a|, ordered by decreasing magnitude.
std::vector<DivergencePoint> TopPointwiseDivergence(
    const series::CountSequence& counts, int64_t k);

// The k non-overlapping windows of fixed length with the largest
// |sum b - sum a|, greedily selected by decreasing magnitude.
std::vector<DivergenceWindow> TopWindowDivergence(
    const series::CountSequence& counts, int64_t window_length, int64_t k);

}  // namespace conservation::mining

#endif  // CONSERVATION_MINING_DIVERGENCE_H_
