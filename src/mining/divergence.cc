#include "mining/divergence.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace conservation::mining {

std::vector<DivergencePoint> TopPointwiseDivergence(
    const series::CountSequence& counts, int64_t k) {
  CR_CHECK(k >= 1);
  std::vector<DivergencePoint> points;
  points.reserve(static_cast<size_t>(counts.n()));
  for (int64_t t = 1; t <= counts.n(); ++t) {
    points.push_back(DivergencePoint{t, counts.b(t) - counts.a(t)});
  }
  std::sort(points.begin(), points.end(),
            [](const DivergencePoint& lhs, const DivergencePoint& rhs) {
              const double la = std::fabs(lhs.divergence);
              const double ra = std::fabs(rhs.divergence);
              if (la != ra) return la > ra;
              return lhs.tick < rhs.tick;
            });
  if (static_cast<int64_t>(points.size()) > k) {
    points.resize(static_cast<size_t>(k));
  }
  return points;
}

std::vector<DivergenceWindow> TopWindowDivergence(
    const series::CountSequence& counts, int64_t window_length, int64_t k) {
  const int64_t n = counts.n();
  CR_CHECK(k >= 1);
  CR_CHECK(window_length >= 1 && window_length <= n);

  // Sliding-window sums of (b - a).
  std::vector<DivergenceWindow> windows;
  double sum = 0.0;
  for (int64_t t = 1; t <= n; ++t) {
    sum += counts.b(t) - counts.a(t);
    if (t > window_length) {
      const int64_t out = t - window_length;
      sum -= counts.b(out) - counts.a(out);
    }
    if (t >= window_length) {
      windows.push_back(
          DivergenceWindow{{t - window_length + 1, t}, sum});
    }
  }
  std::sort(windows.begin(), windows.end(),
            [](const DivergenceWindow& lhs, const DivergenceWindow& rhs) {
              const double la = std::fabs(lhs.divergence);
              const double ra = std::fabs(rhs.divergence);
              if (la != ra) return la > ra;
              return lhs.window.begin < rhs.window.begin;
            });

  // Greedy non-overlapping selection.
  std::vector<DivergenceWindow> chosen;
  for (const DivergenceWindow& candidate : windows) {
    if (static_cast<int64_t>(chosen.size()) >= k) break;
    bool overlaps = false;
    for (const DivergenceWindow& picked : chosen) {
      if (candidate.window.Overlaps(picked.window)) {
        overlaps = true;
        break;
      }
    }
    if (!overlaps) chosen.push_back(candidate);
  }
  return chosen;
}

}  // namespace conservation::mining
