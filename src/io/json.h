// Minimal JSON emission for machine-readable tool output. Writer-only by
// design: the library consumes CSV measurements and emits analysis results;
// no JSON parsing is needed.

#ifndef CONSERVATION_IO_JSON_H_
#define CONSERVATION_IO_JSON_H_

#include <cstdint>
#include <string>

#include "core/tableau.h"
#include "obs/metrics.h"

namespace conservation::io {

// Incremental JSON builder producing compact output. Usage:
//   JsonWriter json;
//   json.BeginObject();
//   json.Key("n"); json.Int(42);
//   json.Key("rows"); json.BeginArray(); ... json.EndArray();
//   json.EndObject();
//   std::string out = std::move(json).Take();
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  // Must be called inside an object, before the corresponding value.
  void Key(const std::string& name);
  void String(const std::string& value);
  void Int(int64_t value);
  void Double(double value);
  void Bool(bool value);
  void Null();
  // Splices pre-serialized JSON in as one value. The caller owns its
  // validity; used to embed sub-documents that already know how to
  // serialize themselves (e.g. obs::MetricsSnapshot::ToJson).
  void Raw(const std::string& json);

  std::string Take() && { return std::move(out_); }
  const std::string& str() const { return out_; }

 private:
  void Separate();
  void AppendEscaped(const std::string& text);

  std::string out_;
  // Whether the next emission at the current nesting level needs a comma.
  std::string pending_comma_stack_ = "n";  // 'n' = no, 'y' = yes, per level
  bool after_key_ = false;
};

// Serializes a tableau: type, model, coverage accounting, rows with
// intervals and confidences, and generation statistics. When `metrics` is
// non-null a trailing "metrics" block carries the registry snapshot; the
// default (null) output is byte-identical to what pre-observability
// builds emitted.
std::string TableauToJson(const core::Tableau& tableau,
                          const obs::MetricsSnapshot* metrics = nullptr);

}  // namespace conservation::io

#endif  // CONSERVATION_IO_JSON_H_
