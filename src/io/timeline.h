// Timelines: map 1-based ticks to human-readable labels, so that tableaux
// over monthly or half-hourly data print like the paper's tables
// ("Nov-Dec 2007", "Aug 09, 11:00-14:00").

#ifndef CONSERVATION_IO_TIMELINE_H_
#define CONSERVATION_IO_TIMELINE_H_

#include <cstdint>
#include <string>

#include "interval/interval.h"

namespace conservation::io {

// Monthly data: tick 1 = `start_month` of `start_year` (1 = January).
class MonthTimeline {
 public:
  MonthTimeline(int start_year, int start_month)
      : start_year_(start_year), start_month_(start_month) {}

  int YearOf(int64_t tick) const;
  int MonthOf(int64_t tick) const;  // 1..12

  // "Nov 2007".
  std::string Label(int64_t tick) const;
  // "Nov-Dec 2007" (or "Nov 2007 - Feb 2008" across a year boundary).
  std::string LabelRange(const interval::Interval& iv) const;

  // The tick of a given year/month, or 0 if before the timeline start.
  int64_t TickOf(int year, int month) const;

 private:
  int start_year_;
  int start_month_;
};

// Sub-daily data: tick 1 = slot 0 of day 0; `slots_per_day` equal slots.
class SlotTimeline {
 public:
  explicit SlotTimeline(int slots_per_day) : slots_per_day_(slots_per_day) {}

  int DayOf(int64_t tick) const;   // 0-based
  int SlotOf(int64_t tick) const;  // 0-based within the day

  // "day 042 11:00".
  std::string Label(int64_t tick) const;
  // "day 042 11:00-14:30" (or spanning days, "day 042 23:00 - day 043 01:00").
  std::string LabelRange(const interval::Interval& iv) const;

  // "11:00" for a slot index.
  std::string TimeOfSlot(int slot) const;

 private:
  int slots_per_day_;
};

}  // namespace conservation::io

#endif  // CONSERVATION_IO_TIMELINE_H_
