#include "io/store_io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>

namespace conservation::io {

util::Status SaveSeriesStore(const series::SeriesStore& store,
                             const std::string& path) {
  if (store.empty()) {
    return util::Status::FailedPrecondition(
        "SaveSeriesStore: empty store");
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return util::Status::NotFound("SaveSeriesStore: cannot open " + path);
  }
  const size_t written = std::fwrite(store.data(), 1, store.size(), f);
  const bool closed_ok = std::fclose(f) == 0;
  if (written != store.size() || !closed_ok) {
    return util::Status::Internal("SaveSeriesStore: short write to " + path);
  }
  return util::Status::Ok();
}

util::Result<series::SeriesStore> LoadSeriesStore(const std::string& path) {
  const int fd = open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return util::Status::NotFound("LoadSeriesStore: cannot open " + path);
  }
  struct stat st;
  if (fstat(fd, &st) != 0 || st.st_size <= 0) {
    close(fd);
    return util::Status::InvalidArgument("LoadSeriesStore: cannot stat " +
                                         path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  void* data = mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  close(fd);  // The mapping keeps its own reference to the file.
  if (data == MAP_FAILED) {
    return util::Status::Internal("LoadSeriesStore: mmap failed for " + path);
  }
  util::Result<series::SeriesStore> store =
      series::SeriesStore::Adopt(data, size, /*file_backed=*/true);
  if (!store.ok()) munmap(data, size);
  return store;
}

}  // namespace conservation::io
