#include "io/timeline.h"

#include "util/check.h"
#include "util/string_util.h"

namespace conservation::io {

namespace {

constexpr const char* kMonthNames[] = {"Jan", "Feb", "Mar", "Apr",
                                       "May", "Jun", "Jul", "Aug",
                                       "Sep", "Oct", "Nov", "Dec"};

}  // namespace

int MonthTimeline::YearOf(int64_t tick) const {
  CR_CHECK(tick >= 1);
  const int64_t months = (start_month_ - 1) + (tick - 1);
  return start_year_ + static_cast<int>(months / 12);
}

int MonthTimeline::MonthOf(int64_t tick) const {
  CR_CHECK(tick >= 1);
  const int64_t months = (start_month_ - 1) + (tick - 1);
  return static_cast<int>(months % 12) + 1;
}

std::string MonthTimeline::Label(int64_t tick) const {
  return util::StrFormat("%s %d", kMonthNames[MonthOf(tick) - 1],
                         YearOf(tick));
}

std::string MonthTimeline::LabelRange(const interval::Interval& iv) const {
  if (iv.begin == iv.end) return Label(iv.begin);
  if (YearOf(iv.begin) == YearOf(iv.end)) {
    return util::StrFormat("%s-%s %d", kMonthNames[MonthOf(iv.begin) - 1],
                           kMonthNames[MonthOf(iv.end) - 1], YearOf(iv.end));
  }
  return Label(iv.begin) + " - " + Label(iv.end);
}

int64_t MonthTimeline::TickOf(int year, int month) const {
  const int64_t months = static_cast<int64_t>(year - start_year_) * 12 +
                         (month - start_month_);
  return months < 0 ? 0 : months + 1;
}

int SlotTimeline::DayOf(int64_t tick) const {
  CR_CHECK(tick >= 1);
  return static_cast<int>((tick - 1) / slots_per_day_);
}

int SlotTimeline::SlotOf(int64_t tick) const {
  CR_CHECK(tick >= 1);
  return static_cast<int>((tick - 1) % slots_per_day_);
}

std::string SlotTimeline::TimeOfSlot(int slot) const {
  const int minutes_per_slot = 24 * 60 / slots_per_day_;
  const int minutes = slot * minutes_per_slot;
  return util::StrFormat("%02d:%02d", minutes / 60, minutes % 60);
}

std::string SlotTimeline::Label(int64_t tick) const {
  return util::StrFormat("day %03d %s", DayOf(tick),
                         TimeOfSlot(SlotOf(tick)).c_str());
}

std::string SlotTimeline::LabelRange(const interval::Interval& iv) const {
  if (DayOf(iv.begin) == DayOf(iv.end)) {
    return util::StrFormat("day %03d %s-%s", DayOf(iv.begin),
                           TimeOfSlot(SlotOf(iv.begin)).c_str(),
                           TimeOfSlot(SlotOf(iv.end)).c_str());
  }
  return Label(iv.begin) + " - " + Label(iv.end);
}

}  // namespace conservation::io
