// CSV I/O for count data: load real two-column measurement files and dump
// generated series for external plotting.

#ifndef CONSERVATION_IO_CSV_H_
#define CONSERVATION_IO_CSV_H_

#include <string>
#include <vector>

#include "series/sequence.h"
#include "util/status.h"

namespace conservation::io {

struct CsvReadOptions {
  // 0-based column indices of the outbound (a) and inbound (b) counts.
  int column_a = 0;
  int column_b = 1;
  char separator = ',';
  bool has_header = true;
  // Skip rows whose relevant fields do not parse (e.g. blank trailers);
  // when false, such rows fail the read.
  bool skip_malformed_rows = false;
};

// Reads a CountSequence from a CSV file.
util::Result<series::CountSequence> ReadCountsCsv(
    const std::string& path, const CsvReadOptions& options = {});

// Writes "a,b" rows (with a header) to `path`.
util::Status WriteCountsCsv(const std::string& path,
                            const series::CountSequence& counts);

// Writes named columns of equal length to `path`; handy for dumping the
// series behind a figure.
util::Status WriteColumnsCsv(
    const std::string& path,
    const std::vector<std::pair<std::string, std::vector<double>>>& columns);

}  // namespace conservation::io

#endif  // CONSERVATION_IO_CSV_H_
