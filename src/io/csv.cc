#include "io/csv.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace conservation::io {

util::Result<series::CountSequence> ReadCountsCsv(
    const std::string& path, const CsvReadOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return util::Status::NotFound("cannot open " + path);
  }
  const int needed_columns =
      std::max(options.column_a, options.column_b) + 1;

  std::vector<double> a;
  std::vector<double> b;
  std::string line;
  size_t line_number = 0;
  bool header_pending = options.has_header;
  while (std::getline(in, line)) {
    ++line_number;
    if (header_pending) {
      header_pending = false;
      continue;
    }
    if (util::StripWhitespace(line).empty()) continue;
    const std::vector<std::string> fields =
        util::Split(line, options.separator);
    double value_a = 0.0;
    double value_b = 0.0;
    const bool parsed =
        static_cast<int>(fields.size()) >= needed_columns &&
        util::ParseDouble(fields[static_cast<size_t>(options.column_a)],
                          &value_a) &&
        util::ParseDouble(fields[static_cast<size_t>(options.column_b)],
                          &value_b);
    if (!parsed) {
      if (options.skip_malformed_rows) continue;
      return util::Status::InvalidArgument(util::StrFormat(
          "%s:%zu: malformed row", path.c_str(), line_number));
    }
    a.push_back(value_a);
    b.push_back(value_b);
  }
  return series::CountSequence::Create(std::move(a), std::move(b));
}

util::Status WriteCountsCsv(const std::string& path,
                            const series::CountSequence& counts) {
  std::ofstream out(path);
  if (!out) {
    return util::Status::InvalidArgument("cannot open for write: " + path);
  }
  out << "outbound_a,inbound_b\n";
  for (int64_t t = 1; t <= counts.n(); ++t) {
    out << util::FormatNumber(counts.a(t), 9) << ','
        << util::FormatNumber(counts.b(t), 9) << '\n';
  }
  if (!out) {
    return util::Status::Internal("write failed: " + path);
  }
  return util::Status::Ok();
}

util::Status WriteColumnsCsv(
    const std::string& path,
    const std::vector<std::pair<std::string, std::vector<double>>>& columns) {
  if (columns.empty()) {
    return util::Status::InvalidArgument("no columns to write");
  }
  const size_t rows = columns.front().second.size();
  for (const auto& [name, values] : columns) {
    if (values.size() != rows) {
      return util::Status::InvalidArgument(
          "column length mismatch at " + name);
    }
  }
  std::ofstream out(path);
  if (!out) {
    return util::Status::InvalidArgument("cannot open for write: " + path);
  }
  for (size_t c = 0; c < columns.size(); ++c) {
    if (c > 0) out << ',';
    out << columns[c].first;
  }
  out << '\n';
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < columns.size(); ++c) {
      if (c > 0) out << ',';
      out << util::FormatNumber(columns[c].second[r], 9);
    }
    out << '\n';
  }
  if (!out) {
    return util::Status::Internal("write failed: " + path);
  }
  return util::Status::Ok();
}

}  // namespace conservation::io
