// Serialization for the tiered series store (series/store.h).
//
// The arena is written to disk verbatim, so loading is a single read-only
// file mmap: no parsing, no copies, and nothing resident until the
// generators touch a page. A loaded store is file-backed, which is what
// lets SeriesStore::Evict return dropped tiers to the page cache instead
// of losing them.

#ifndef CONSERVATION_IO_STORE_IO_H_
#define CONSERVATION_IO_STORE_IO_H_

#include <string>

#include "series/store.h"
#include "util/status.h"

namespace conservation::io {

// Writes the store's arena bytes to `path` (overwriting).
util::Status SaveSeriesStore(const series::SeriesStore& store,
                             const std::string& path);

// Maps `path` read-only and adopts it as a file-backed store after header
// validation. The mapping is released when the returned store is destroyed.
util::Result<series::SeriesStore> LoadSeriesStore(const std::string& path);

}  // namespace conservation::io

#endif  // CONSERVATION_IO_STORE_IO_H_
