// Aligned ASCII table rendering for the benchmark harness and examples.

#ifndef CONSERVATION_IO_TABLE_PRINTER_H_
#define CONSERVATION_IO_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace conservation::io {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  // Row length must match the header length.
  void AddRow(std::vector<std::string> row);

  // Renders headers, a separator rule, and the rows, column-aligned.
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace conservation::io

#endif  // CONSERVATION_IO_TABLE_PRINTER_H_
