#include "io/json.h"

#include <cmath>

#include "util/check.h"
#include "util/string_util.h"

namespace conservation::io {

void JsonWriter::Separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  CR_CHECK(!pending_comma_stack_.empty());
  if (pending_comma_stack_.back() == 'y') {
    out_ += ',';
  } else {
    pending_comma_stack_.back() = 'y';
  }
}

void JsonWriter::AppendEscaped(const std::string& text) {
  out_ += '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\t':
        out_ += "\\t";
        break;
      case '\r':
        out_ += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out_ += util::StrFormat("\\u%04x", c);
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

void JsonWriter::BeginObject() {
  Separate();
  out_ += '{';
  pending_comma_stack_ += 'n';
}

void JsonWriter::EndObject() {
  CR_CHECK(pending_comma_stack_.size() > 1);
  pending_comma_stack_.pop_back();
  out_ += '}';
}

void JsonWriter::BeginArray() {
  Separate();
  out_ += '[';
  pending_comma_stack_ += 'n';
}

void JsonWriter::EndArray() {
  CR_CHECK(pending_comma_stack_.size() > 1);
  pending_comma_stack_.pop_back();
  out_ += ']';
}

void JsonWriter::Key(const std::string& name) {
  Separate();
  AppendEscaped(name);
  out_ += ':';
  after_key_ = true;
}

void JsonWriter::String(const std::string& value) {
  Separate();
  AppendEscaped(value);
}

void JsonWriter::Int(int64_t value) {
  Separate();
  out_ += util::StrFormat("%lld", static_cast<long long>(value));
}

void JsonWriter::Double(double value) {
  Separate();
  if (!std::isfinite(value)) {
    out_ += "null";  // JSON has no NaN/Inf
    return;
  }
  out_ += util::FormatNumber(value, 9);
}

void JsonWriter::Bool(bool value) {
  Separate();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  Separate();
  out_ += "null";
}

void JsonWriter::Raw(const std::string& json) {
  Separate();
  out_ += json;
}

std::string TableauToJson(const core::Tableau& tableau,
                          const obs::MetricsSnapshot* metrics) {
  JsonWriter json;
  json.BeginObject();
  json.Key("type");
  json.String(core::TableauTypeName(tableau.type));
  json.Key("model");
  json.String(core::ConfidenceModelName(tableau.model));
  json.Key("covered");
  json.Int(tableau.covered);
  json.Key("required");
  json.Int(tableau.required);
  json.Key("support_satisfied");
  json.Bool(tableau.support_satisfied);
  json.Key("num_candidates");
  json.Int(static_cast<int64_t>(tableau.num_candidates));
  json.Key("rows");
  json.BeginArray();
  for (const core::TableauRow& row : tableau.rows) {
    json.BeginObject();
    json.Key("begin");
    json.Int(row.interval.begin);
    json.Key("end");
    json.Int(row.interval.end);
    json.Key("confidence");
    json.Double(row.confidence);
    json.EndObject();
  }
  json.EndArray();
  json.Key("generation");
  json.BeginObject();
  json.Key("intervals_tested");
  json.Int(static_cast<int64_t>(tableau.generation_stats.intervals_tested));
  json.Key("seconds");
  json.Double(tableau.generation_stats.seconds);
  json.EndObject();
  json.Key("cover");
  json.BeginObject();
  json.Key("rounds");
  json.Int(tableau.cover_stats.rounds);
  json.Key("heap_pops");
  json.Int(tableau.cover_stats.heap_pops);
  json.Key("stale_reevaluations");
  json.Int(tableau.cover_stats.stale_reevaluations);
  json.Key("tick_visits");
  json.Int(tableau.cover_stats.tick_visits);
  json.Key("peak_heap_size");
  json.Int(tableau.cover_stats.peak_heap_size);
  json.Key("seed_seconds");
  json.Double(tableau.cover_stats.seed_seconds);
  json.Key("select_seconds");
  json.Double(tableau.cover_stats.select_seconds);
  json.Key("seconds");
  json.Double(tableau.cover_seconds);
  json.EndObject();
  if (metrics != nullptr) {
    json.Key("metrics");
    json.Raw(metrics->ToJson());
  }
  json.EndObject();
  return std::move(json).Take();
}

}  // namespace conservation::io
