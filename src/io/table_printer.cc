#include "io/table_printer.h"

#include <algorithm>

#include "util/check.h"

namespace conservation::io {

void TablePrinter::AddRow(std::vector<std::string> row) {
  CR_CHECK(row.size() == headers_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += "  ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    // Trim trailing padding.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::string out = render_row(headers_);
  std::string rule;
  for (size_t c = 0; c < widths.size(); ++c) {
    if (c > 0) rule += "  ";
    rule.append(widths[c], '-');
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace conservation::io
