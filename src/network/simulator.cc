#include "network/simulator.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"
#include "util/random.h"
#include "util/string_util.h"

namespace conservation::network {

namespace {

// Samples an index proportionally to `weights` (total > 0).
int SampleWeighted(util::Rng& rng, const std::vector<double>& weights,
                   double total) {
  double pick = rng.Uniform(0.0, total);
  for (size_t k = 0; k < weights.size(); ++k) {
    pick -= weights[k];
    if (pick <= 0.0) return static_cast<int>(k);
  }
  return static_cast<int>(weights.size()) - 1;
}

}  // namespace

NodeSimResult SimulateNode(const NodeSimConfig& config) {
  CR_CHECK(config.num_links >= 2);
  CR_CHECK(config.num_ticks >= 2);
  util::Rng rng(config.seed);

  std::vector<double> arrival_rates = config.arrival_rates;
  arrival_rates.resize(static_cast<size_t>(config.num_links),
                       config.default_arrival_rate);
  std::vector<double> departure_weights = config.departure_weights;
  departure_weights.resize(static_cast<size_t>(config.num_links), 1.0);
  const double weight_total = std::accumulate(
      departure_weights.begin(), departure_weights.end(), 0.0);
  CR_CHECK(weight_total > 0.0);

  const size_t n = static_cast<size_t>(config.num_ticks);
  std::vector<LinkSeries> links(static_cast<size_t>(config.num_links));
  for (int l = 0; l < config.num_links; ++l) {
    links[static_cast<size_t>(l)].name =
        util::StrFormat("link-%c", 'A' + l);
    links[static_cast<size_t>(l)].to_node.assign(n, 0.0);
    links[static_cast<size_t>(l)].from_node.assign(n, 0.0);
  }

  for (int64_t t = 0; t < config.num_ticks; ++t) {
    for (int l = 0; l < config.num_links; ++l) {
      const int64_t arrivals =
          rng.Poisson(arrival_rates[static_cast<size_t>(l)]);
      links[static_cast<size_t>(l)].to_node[static_cast<size_t>(t)] +=
          static_cast<double>(arrivals);
      for (int64_t p = 0; p < arrivals; ++p) {
        const int departs_via =
            SampleWeighted(rng, departure_weights, weight_total);
        const int64_t departs_at =
            t + rng.UniformInt(0, config.max_forward_delay);
        if (departs_at < config.num_ticks) {
          links[static_cast<size_t>(departs_via)]
              .from_node[static_cast<size_t>(departs_at)] += 1.0;
        }
      }
    }
  }

  NodeSimResult result;
  result.config = config;
  result.ground_truth = links;
  for (int l = 0; l < config.num_links; ++l) {
    const bool hidden =
        std::find(config.hidden_links.begin(), config.hidden_links.end(),
                  l) != config.hidden_links.end();
    if (!hidden) result.observed.push_back(links[static_cast<size_t>(l)]);
  }
  return result;
}

std::vector<NodeSimResult> SimulateNodeFleet(int num_nodes, int num_bad,
                                             int64_t num_ticks,
                                             uint64_t seed) {
  CR_CHECK(num_bad <= num_nodes);
  std::vector<NodeSimResult> fleet;
  for (int k = 0; k < num_nodes; ++k) {
    NodeSimConfig config;
    config.node_name = util::StrFormat("node-%02d", k);
    config.num_ticks = num_ticks;
    config.seed = seed + static_cast<uint64_t>(k) * 7919;
    config.num_links = 4;
    if (k < num_bad) {
      // The hidden link carries a disproportionate share of departures, so
      // its absence leaves clearly-unmatched inbound traffic.
      config.departure_weights = {1.0, 1.0, 1.0, 3.0};
      config.hidden_links = {3};
    }
    fleet.push_back(SimulateNode(config));
  }
  return fleet;
}

}  // namespace conservation::network
