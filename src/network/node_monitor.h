// Node-level conservation analysis — the paper's motivating setting (§I,
// Figure 1): a network node (router, road intersection, substation) with
// several bidirectional links, each reporting inbound and outbound counts.
// Ideally total in-traffic equals total out-traffic at every tick; an
// unmonitored link shows up as a persistent conservation violation.
//
// This module aggregates per-link series into a node-level ConservationRule,
// quantifies the apparent missing share, and ranks links by how much of the
// node's imbalance disappears when the link's counts are excluded — the
// leave-one-out diagnosis a network operator runs when hunting for the
// link "D" of Figure 1.

#ifndef CONSERVATION_NETWORK_NODE_MONITOR_H_
#define CONSERVATION_NETWORK_NODE_MONITOR_H_

#include <string>
#include <vector>

#include "core/conservation_rule.h"
#include "core/model.h"
#include "util/status.h"

namespace conservation::network {

// Per-link measurements at a node: `to_node` counts traffic arriving at the
// node over this link, `from_node` traffic leaving over it. Vectors must
// share one length across all links of a node.
struct LinkSeries {
  std::string name;
  std::vector<double> to_node;    // inbound direction
  std::vector<double> from_node;  // outbound direction
};

// Diagnosis entry for one link (see NodeConservation::DiagnoseLinks).
struct LinkDiagnosis {
  std::string link;
  // Node-level confidence with all links included.
  double full_confidence = 0.0;
  // Node-level confidence with this link's two directions excluded.
  double without_link_confidence = 0.0;
  // without_link - full: positive means removing the link *improves*
  // conservation, i.e. the link sources unmatched inbound traffic whose
  // outbound counterpart is unaccounted for (or vice versa).
  double impact = 0.0;
  // This link's share of the node's inbound / outbound totals.
  double inbound_share = 0.0;
  double outbound_share = 0.0;
};

class NodeConservation {
 public:
  // Validates that all links share one length and aggregates them. The
  // node-level rule uses b = sum of to_node, a = sum of from_node.
  static util::Result<NodeConservation> Create(std::string node_name,
                                               std::vector<LinkSeries> links);

  const std::string& node_name() const { return node_name_; }
  int64_t n() const { return rule_.n(); }
  size_t num_links() const { return links_.size(); }
  const std::vector<LinkSeries>& links() const { return links_; }

  // The aggregated node-level conservation rule.
  const core::ConservationRule& rule() const { return rule_; }

  // Fraction of inbound traffic with no recorded outbound counterpart,
  // 1 - A_n / B_n. Near zero for a healthy node; approximately the traffic
  // share of an unmonitored outbound link otherwise.
  double MissingOutboundFraction() const;

  // Leave-one-out link ranking under `model`, sorted by decreasing impact.
  // Interpreting the top entry: a large positive impact with a large
  // inbound share and a small outbound share marks a link whose outbound
  // counterpart is likely unmonitored elsewhere.
  std::vector<LinkDiagnosis> DiagnoseLinks(core::ConfidenceModel model) const;

  // Node-level tableau passthrough.
  util::Result<core::Tableau> DiscoverTableau(
      const core::TableauRequest& request) const {
    return rule_.DiscoverTableau(request);
  }

 private:
  NodeConservation(std::string node_name, std::vector<LinkSeries> links,
                   core::ConservationRule rule)
      : node_name_(std::move(node_name)),
        links_(std::move(links)),
        rule_(std::move(rule)) {}

  static util::Result<core::ConservationRule> AggregateRule(
      const std::vector<LinkSeries>& links, const LinkSeries* exclude);

  std::string node_name_;
  std::vector<LinkSeries> links_;
  core::ConservationRule rule_;
};

// Ranks many nodes by how badly they fail a conservation rule: runs the
// given fail-tableau request per node and sorts by covered fraction, the
// Table II workflow generalized to a fleet.
struct NodeRanking {
  std::string node_name;
  double covered_fraction = 0.0;
  double overall_confidence = 0.0;
};

std::vector<NodeRanking> RankNodesByFailure(
    const std::vector<NodeConservation>& nodes,
    const core::TableauRequest& request);

}  // namespace conservation::network

#endif  // CONSERVATION_NETWORK_NODE_MONITOR_H_
