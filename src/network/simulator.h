// Node traffic simulator: the substrate for the Figure 1 scenario.
//
// Simulates a network node with several bidirectional links. Packets arrive
// on links (Poisson), are forwarded to an outgoing link chosen by weight
// after a small queueing delay, and depart. The monitoring system records
// per-link per-tick counts — except for links it does not know about
// (`hidden_links`), whose measurements are silently absent, exactly the
// data-quality failure the paper's introduction describes ("a new router
// interface is activated ... but this interface is not known to the
// monitoring system").

#ifndef CONSERVATION_NETWORK_SIMULATOR_H_
#define CONSERVATION_NETWORK_SIMULATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "network/node_monitor.h"

namespace conservation::network {

struct NodeSimConfig {
  std::string node_name = "node";
  int num_links = 4;
  int64_t num_ticks = 2000;
  // Mean packet arrivals per link per tick; resized/filled to `num_links`
  // with `default_arrival_rate` when left empty.
  std::vector<double> arrival_rates;
  double default_arrival_rate = 40.0;
  // Relative likelihood that a forwarded packet departs via each link;
  // uniform when empty. A hidden link with a high weight models the
  // "unmonitored exit" whose absence depresses outbound counts.
  std::vector<double> departure_weights;
  // 0-based link indices missing from the observed data.
  std::vector<int> hidden_links;
  // Packets depart between 0 and this many ticks after arrival.
  int64_t max_forward_delay = 2;
  uint64_t seed = 4242;
};

struct NodeSimResult {
  // What the monitoring system sees: only non-hidden links.
  std::vector<LinkSeries> observed;
  // Everything, including hidden links (ground truth for tests).
  std::vector<LinkSeries> ground_truth;
  NodeSimConfig config;
};

NodeSimResult SimulateNode(const NodeSimConfig& config);

// Convenience: a fleet of independently-seeded nodes, `num_bad` of which
// have their highest-weight departure link hidden.
std::vector<NodeSimResult> SimulateNodeFleet(int num_nodes, int num_bad,
                                             int64_t num_ticks,
                                             uint64_t seed);

}  // namespace conservation::network

#endif  // CONSERVATION_NETWORK_SIMULATOR_H_
