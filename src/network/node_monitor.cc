#include "network/node_monitor.h"

#include <algorithm>
#include <numeric>

#include "obs/labels.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/parallel.h"
#include "util/string_util.h"

namespace conservation::network {

util::Result<core::ConservationRule> NodeConservation::AggregateRule(
    const std::vector<LinkSeries>& links, const LinkSeries* exclude) {
  if (links.empty()) {
    return util::Status::InvalidArgument("node has no links");
  }
  const size_t n = links.front().to_node.size();
  std::vector<double> inbound(n, 0.0);
  std::vector<double> outbound(n, 0.0);
  for (const LinkSeries& link : links) {
    if (&link == exclude) continue;
    if (link.to_node.size() != n || link.from_node.size() != n) {
      return util::Status::InvalidArgument(util::StrFormat(
          "link %s has mismatched series length", link.name.c_str()));
    }
    for (size_t t = 0; t < n; ++t) {
      inbound[t] += link.to_node[t];
      outbound[t] += link.from_node[t];
    }
  }
  return core::ConservationRule::Create(std::move(outbound),
                                        std::move(inbound));
}

util::Result<NodeConservation> NodeConservation::Create(
    std::string node_name, std::vector<LinkSeries> links) {
  auto rule = AggregateRule(links, nullptr);
  if (!rule.ok()) return rule.status();
  return NodeConservation(std::move(node_name), std::move(links),
                          std::move(rule).value());
}

double NodeConservation::MissingOutboundFraction() const {
  const auto& cumulative = rule_.cumulative();
  const double total_in = cumulative.B(rule_.n());
  if (total_in <= 0.0) return 0.0;
  return 1.0 - cumulative.A(rule_.n()) / total_in;
}

std::vector<LinkDiagnosis> NodeConservation::DiagnoseLinks(
    core::ConfidenceModel model) const {
  CR_TRACE_SPAN_ARGS("network.diagnose_links", "links",
                     static_cast<int64_t>(links_.size()));
  static obs::Counter& diagnoses =
      obs::Registry::Global().Counter("network.link_diagnoses");
  diagnoses.Add(links_.size());
  // Per-node attribution. DiagnoseLinks is a coarse operation (seconds,
  // not microseconds), so the family lookup per call is fine; the default
  // cardinality cap folds an unbounded node fleet into {overflow="true"}.
  obs::LabeledCounter("network.link_diagnoses")
      .With({{"node", node_name_}})
      .Add(links_.size());
  std::vector<LinkDiagnosis> out;
  const double full =
      rule_.OverallConfidence(model).value_or(1.0);
  const double total_in = rule_.cumulative().B(rule_.n());
  const double total_out = rule_.cumulative().A(rule_.n());

  for (const LinkSeries& link : links_) {
    LinkDiagnosis diagnosis;
    diagnosis.link = link.name;
    diagnosis.full_confidence = full;

    auto without = AggregateRule(links_, &link);
    // A node with one link degenerates when that link is excluded; report
    // the full confidence as a neutral fallback.
    diagnosis.without_link_confidence =
        without.ok() ? without->OverallConfidence(model).value_or(full)
                     : full;
    diagnosis.impact = diagnosis.without_link_confidence - full;

    const double link_in =
        std::accumulate(link.to_node.begin(), link.to_node.end(), 0.0);
    const double link_out =
        std::accumulate(link.from_node.begin(), link.from_node.end(), 0.0);
    diagnosis.inbound_share = total_in > 0.0 ? link_in / total_in : 0.0;
    diagnosis.outbound_share = total_out > 0.0 ? link_out / total_out : 0.0;
    out.push_back(diagnosis);
  }
  std::sort(out.begin(), out.end(),
            [](const LinkDiagnosis& lhs, const LinkDiagnosis& rhs) {
              if (lhs.impact != rhs.impact) return lhs.impact > rhs.impact;
              return lhs.link < rhs.link;
            });
  return out;
}

std::vector<NodeRanking> RankNodesByFailure(
    const std::vector<NodeConservation>& nodes,
    const core::TableauRequest& request) {
  CR_TRACE_SPAN_ARGS("network.rank_nodes", "nodes",
                     static_cast<int64_t>(nodes.size()));
  static obs::Counter& ranked =
      obs::Registry::Global().Counter("network.nodes_ranked");
  ranked.Add(nodes.size());
  std::vector<NodeRanking> out(nodes.size());
  // Per-node audits are independent; fan them out across the shared pool at
  // the request's thread budget. Each node's own discovery stays
  // sequential — whole-node parallelism dominates for fleets.
  core::TableauRequest node_request = request;
  node_request.num_threads = 1;
  util::ParallelFor(
      static_cast<int64_t>(nodes.size()), request.num_threads,
      [&](int64_t k) {
    const NodeConservation& node = nodes[static_cast<size_t>(k)];
    CR_TRACE_SPAN_ARGS("network.rank_node", "index", k);
    NodeRanking ranking;
    ranking.node_name = node.node_name();
    ranking.overall_confidence =
        node.rule().OverallConfidence(request.model).value_or(1.0);
    auto tableau = node.DiscoverTableau(node_request);
    if (tableau.ok() && node.n() > 0) {
      ranking.covered_fraction = static_cast<double>(tableau->covered) /
                                 static_cast<double>(node.n());
    }
    out[static_cast<size_t>(k)] = ranking;
  });
  std::sort(out.begin(), out.end(),
            [](const NodeRanking& lhs, const NodeRanking& rhs) {
              if (lhs.covered_fraction != rhs.covered_fraction) {
                return lhs.covered_fraction > rhs.covered_fraction;
              }
              return lhs.overall_confidence < rhs.overall_confidence;
            });
  return out;
}

}  // namespace conservation::network
