#include "datagen/perturb.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"
#include "util/random.h"

namespace conservation::datagen {

series::CountSequence ApplyPerturbation(const series::CountSequence& counts,
                                        const PerturbationSpec& spec,
                                        PerturbationInfo* info) {
  CR_CHECK(spec.fraction > 0.0 && spec.fraction < 1.0);
  CR_CHECK(spec.max_step_drop_fraction > 0.0 &&
           spec.max_step_drop_fraction <= 1.0);
  const int64_t n = counts.n();
  std::vector<double> a = counts.outbound();
  std::vector<double> b = counts.inbound();

  const double total =
      std::accumulate(a.begin(), a.end(), 0.0);
  double to_remove = spec.fraction * total;

  // Drop starts at the tick with the highest outbound count — among the
  // starts whose suffix holds enough removable mass, so the drop always
  // fits inside the trace (the paper's peak happened to be early enough).
  std::vector<double> removable_suffix(static_cast<size_t>(n) + 1, 0.0);
  for (int64_t t = n - 1; t >= 0; --t) {
    removable_suffix[static_cast<size_t>(t)] =
        removable_suffix[static_cast<size_t>(t) + 1] +
        spec.max_step_drop_fraction * a[static_cast<size_t>(t)];
  }
  // When compensating, the drop must end before the last tick so a recovery
  // index exists after it.
  const double reserve =
      spec.compensate ? removable_suffix[static_cast<size_t>(n) - 1] : 0.0;
  CR_CHECK(removable_suffix[0] - reserve >= to_remove - 1e-9);
  CR_CHECK(spec.latest_start_fraction > 0.0 &&
           spec.latest_start_fraction <= 1.0);
  const int64_t latest_start = std::max<int64_t>(
      1, static_cast<int64_t>(spec.latest_start_fraction *
                              static_cast<double>(n)));
  int64_t start = 0;
  for (int64_t t = 0; t < latest_start; ++t) {
    if (removable_suffix[static_cast<size_t>(t)] - reserve < to_remove) break;
    if (a[static_cast<size_t>(t)] > a[static_cast<size_t>(start)]) start = t;
  }

  PerturbationInfo result;
  result.drop_begin = start + 1;  // to 1-based
  result.amount_removed = 0.0;

  int64_t t = start;
  while (to_remove > 1e-9 && t < n) {
    const double available =
        spec.max_step_drop_fraction * a[static_cast<size_t>(t)];
    const double removed = std::min(available, to_remove);
    a[static_cast<size_t>(t)] -= removed;
    to_remove -= removed;
    result.amount_removed += removed;
    result.drop_end = t + 1;
    ++t;
  }
  CR_CHECK(to_remove <= 1e-6 * total);  // the drop must fit in the trace

  if (spec.compensate) {
    util::Rng rng(spec.seed);
    int64_t recovery = spec.recovery_tick;
    if (recovery <= 0) {
      // A random index strictly after the drop, leaving room to observe the
      // post-recovery regime.
      const int64_t lo = result.drop_end + 1;
      const int64_t hi = std::max(lo, n - std::max<int64_t>(1, n / 10));
      recovery = rng.UniformInt(lo, hi);
    }
    CR_CHECK(recovery > result.drop_end && recovery <= n);
    a[static_cast<size_t>(recovery - 1)] += result.amount_removed;
    result.recovery_tick = recovery;
  }

  if (info != nullptr) *info = result;
  auto sequence = series::CountSequence::Create(std::move(a), std::move(b));
  CR_CHECK(sequence.ok());
  return std::move(sequence).value();
}

}  // namespace conservation::datagen
