#include "datagen/job_log.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <utility>

#include "util/check.h"
#include "util/random.h"

namespace conservation::datagen {

JobLogData GenerateJobLog(const JobLogParams& params) {
  CR_CHECK(params.num_ticks >= 2);
  util::Rng rng(params.seed);

  const int64_t n = params.num_ticks;
  std::vector<double> completions(static_cast<size_t>(n), 0.0);
  std::vector<double> submissions(static_cast<size_t>(n), 0.0);

  for (int64_t t = 0; t < n; ++t) {
    const int64_t day = t / params.ticks_per_day;
    const bool weekend = day % 7 >= 5;
    const double phase = 2.0 * std::numbers::pi *
                         static_cast<double>(t % params.ticks_per_day) /
                         static_cast<double>(params.ticks_per_day);
    double rate = params.mean_submissions_per_tick *
                  (1.0 + params.diurnal_amplitude * std::sin(phase - 1.1));
    if (weekend) rate *= params.weekend_factor;

    const int64_t submitted = rng.Poisson(rate);
    submissions[static_cast<size_t>(t)] = static_cast<double>(submitted);
    for (int64_t j = 0; j < submitted; ++j) {
      if (rng.Bernoulli(params.cancel_fraction)) continue;
      const double runtime =
          rng.LogNormal(params.runtime_log_mean, params.runtime_log_sigma);
      const int64_t done_at =
          t + std::max<int64_t>(0, static_cast<int64_t>(runtime));
      if (done_at < n) completions[static_cast<size_t>(done_at)] += 1.0;
    }
  }

  auto counts = series::CountSequence::Create(std::move(completions),
                                              std::move(submissions));
  CR_CHECK(counts.ok());
  return JobLogData{std::move(counts).value(), params};
}

}  // namespace conservation::datagen
