// Synthetic stand-in for the Network Monitoring dataset (paper §IV.C):
// per-router counts of incoming (inbound b) and outgoing (outbound a)
// traffic, one measurement every five minutes for about two weeks
// (n = 3800 per router), for a fleet of several hundred routers.
//
// Structure the paper's experiment depends on:
//   * most routers conserve traffic up to small jitter — their debit-model
//     confidence is high but rarely above 0.99 for long ("small violations
//     of the conservation law are normal", Table III);
//   * some routers have an unmonitored link, so a fraction of outgoing
//     traffic is never measured: debit-model fail tableaux at c_hat = 0.5
//     flag the whole range (Table II);
//   * one router's missing link starts being monitored late in the trace
//     (Router-7 at tick ~3610): the fail interval ends there and a
//     hold interval at c_hat = 0.9 begins near there (Tables II-III).
//
// The generator also provides the "well-behaved" profile used as the
// substrate for the §IV.D perturbation experiments (n = 906).

#ifndef CONSERVATION_DATAGEN_ROUTER_H_
#define CONSERVATION_DATAGEN_ROUTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "series/sequence.h"

namespace conservation::datagen {

enum class RouterProfile {
  // Outgoing matches incoming with <= 1-tick jitter and tiny noise.
  kClean,
  // A fraction of outgoing traffic is never measured, for the whole trace.
  kUnmonitoredLink,
  // Like kUnmonitoredLink until `activation_tick`, fully monitored after.
  kLateActivation,
};

struct RouterParams {
  RouterProfile profile = RouterProfile::kClean;
  std::string name = "Router";
  int64_t num_ticks = 3800;
  // Mean packets per tick; modulated by a diurnal wave.
  double mean_traffic = 1200.0;
  double diurnal_amplitude = 0.35;
  // Ticks per simulated day (5-minute ticks -> 288).
  int64_t ticks_per_day = 288;
  // Fraction of outgoing traffic flowing over the unmonitored link.
  double unmonitored_fraction = 0.55;
  // First tick at which the missing link is monitored (kLateActivation).
  int64_t activation_tick = 3610;
  // Fraction of each tick's outgoing traffic delayed to the next tick.
  double forwarding_jitter = 0.15;
  uint64_t seed = 7001;
};

struct RouterData {
  std::string name;
  series::CountSequence counts;  // a = measured outgoing, b = incoming
  RouterParams params;
};

RouterData GenerateRouter(const RouterParams& params);

// A fleet mirroring the paper's Table II setting: `num_clean` clean routers,
// plus unmonitored routers (names from the paper's table: Router-1, -10,
// -12, -6, -25) and the late-activation Router-7. Seeds derive from `seed`.
std::vector<RouterData> GenerateRouterFleet(int num_clean, int64_t num_ticks,
                                            uint64_t seed);

// The §IV.D substrate: a clean trace with confidence ~1 over [1, n].
series::CountSequence GenerateWellBehavedTraffic(int64_t num_ticks = 906,
                                                 uint64_t seed = 906906);

}  // namespace conservation::datagen

#endif  // CONSERVATION_DATAGEN_ROUTER_H_
