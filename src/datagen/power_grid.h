// Synthetic smart-grid feeder data — the electricity scenario of the
// paper's introduction (Kirchhoff's node law; hacked meters; diverted
// energy). A substation meter measures energy supplied to a feeder
// (inbound b); customer smart meters measure consumption (outbound a).
// Conservation holds up to a small technical loss. Two injectable faults:
//   * diversion ("theft"): from some tick on, a fraction of one customer's
//     real load bypasses the meter — a persistent, growing imbalance that
//     debit-model fail tableaux flag;
//   * meter outage: a customer's meter reports zero for a bounded period —
//     a transient imbalance that ends, which hold tableaux bracket.

#ifndef CONSERVATION_DATAGEN_POWER_GRID_H_
#define CONSERVATION_DATAGEN_POWER_GRID_H_

#include <cstdint>

#include "series/sequence.h"

namespace conservation::datagen {

struct PowerGridParams {
  int64_t num_ticks = 2880;  // 15-minute intervals, 30 days
  int64_t ticks_per_day = 96;
  int num_customers = 40;
  // Mean per-customer load per tick (kWh), modulated by a diurnal curve.
  double mean_load = 0.5;
  double diurnal_amplitude = 0.45;
  // Fraction of supplied energy lost in the wires (never metered).
  double technical_loss_fraction = 0.04;
  // Diversion: from `theft_start_tick` (1-based; 0 disables), the thief's
  // metered reading drops to (1 - theft_fraction) of their real load.
  int64_t theft_start_tick = 0;
  double theft_fraction = 0.6;
  // Meter outage: readings of one customer are zero in
  // [outage_begin_tick, outage_end_tick] (1-based; 0 disables).
  int64_t outage_begin_tick = 0;
  int64_t outage_end_tick = 0;
  uint64_t seed = 230460;
};

struct PowerGridData {
  series::CountSequence counts;  // a = metered consumption, b = supplied
  PowerGridParams params;
};

PowerGridData GeneratePowerGrid(const PowerGridParams& params = {});

}  // namespace conservation::datagen

#endif  // CONSERVATION_DATAGEN_POWER_GRID_H_
