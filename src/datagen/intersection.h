// Synthetic road-intersection data — the traffic-monitoring scenario of the
// paper's introduction ("every car that enters an intersection should exit
// it"). Road sensors report aggregated counts per approach; congestion
// delays cars inside the intersection zone, a failed sensor or an
// unmonitored segment loses counts.
//
// Unlike the router generator (packets, tiny jitter), this models the
// road-specific effects the intro calls out: rush-hour congestion that
// *stretches* transit delay (confidence dips but recovers — delay, not
// loss) and a sensor outage on one approach (loss bounded in time).

#ifndef CONSERVATION_DATAGEN_INTERSECTION_H_
#define CONSERVATION_DATAGEN_INTERSECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "series/sequence.h"

namespace conservation::datagen {

struct IntersectionParams {
  // One tick per 30 seconds; a day is 2880 ticks.
  int64_t num_ticks = 2880;
  int64_t ticks_per_day = 2880;
  int num_approaches = 4;
  // Mean vehicles per approach per tick off-peak.
  double base_rate = 3.0;
  // Rush hours multiply arrival rates and stretch transit times.
  double rush_multiplier = 3.5;
  // Rush windows as fractions of the day: [start, end) pairs.
  double morning_rush_begin = 0.30;  // ~7:12
  double morning_rush_end = 0.40;    // ~9:36
  double evening_rush_begin = 0.70;  // ~16:48
  double evening_rush_end = 0.80;    // ~19:12
  // Transit time through the intersection, in ticks (mean), off-peak and
  // the additional congestion delay at peak.
  double base_transit_ticks = 1.0;
  double rush_extra_transit_ticks = 6.0;
  // Optional exit-sensor outage: counts of departing vehicles are lost in
  // [outage_begin_tick, outage_end_tick] (1-based; 0 disables).
  int64_t outage_begin_tick = 0;
  int64_t outage_end_tick = 0;
  uint64_t seed = 30303;
};

struct IntersectionData {
  series::CountSequence counts;  // a = vehicles exiting, b = entering
  IntersectionParams params;
  // Ground-truth rush windows (1-based tick ranges), for tests/benches.
  std::vector<std::pair<int64_t, int64_t>> rush_windows;
};

IntersectionData GenerateIntersection(const IntersectionParams& params = {});

}  // namespace conservation::datagen

#endif  // CONSERVATION_DATAGEN_INTERSECTION_H_
