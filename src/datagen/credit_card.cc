#include "datagen/credit_card.h"

#include <cmath>
#include <vector>

#include "util/check.h"
#include "util/random.h"

namespace conservation::datagen {

CreditCardData GenerateCreditCard(const CreditCardParams& params) {
  CR_CHECK(params.num_months >= 12);
  util::Rng rng(params.seed);

  std::vector<double> payments;
  std::vector<double> charges;
  payments.reserve(static_cast<size_t>(params.num_months));
  charges.reserve(static_cast<size_t>(params.num_months));

  double outstanding_debt = 0.0;
  for (int m = 0; m < params.num_months; ++m) {
    const int month = m % 12 + 1;  // 1 = January
    const int year = params.start_year + m / 12;
    const int years_elapsed = year - params.start_year;

    // Monthly charges: exponential trend, seasonal boost, noise.
    double amount = params.base_monthly_charges *
                    std::pow(1.0 + params.annual_growth, years_elapsed);
    const double boost_growth =
        1.0 + params.holiday_boost_growth_per_year * years_elapsed;
    const bool recession = year == params.recession_year;
    if (month == 11) {
      amount *= recession ? 1.0 : params.november_charge_boost * boost_growth;
    } else if (month == 12) {
      amount *= recession ? 1.0 : params.december_charge_boost * boost_growth;
    }
    if (recession && (month == 11 || month == 12)) {
      amount *= params.recession_charge_factor;
    }
    amount *= rng.LogNormal(0.0, params.charge_noise_sigma);

    outstanding_debt += amount;

    const double holiday_erosion =
        params.holiday_repay_decline_per_year * years_elapsed;
    double repay_fraction = params.repay_fraction_normal;
    if (month == 11) {
      repay_fraction = std::max(params.holiday_repay_floor,
                                params.repay_fraction_november -
                                    holiday_erosion);
    }
    if (month == 12) {
      repay_fraction = std::max(params.holiday_repay_floor,
                                params.repay_fraction_december -
                                    holiday_erosion);
    }
    if (recession && (month == 11 || month == 12)) {
      repay_fraction = params.repay_fraction_normal;
    }
    if (month == 1) repay_fraction = params.repay_fraction_january;
    const double payment = repay_fraction * outstanding_debt;
    outstanding_debt -= payment;

    charges.push_back(amount);
    payments.push_back(payment);
  }

  auto counts = series::CountSequence::Create(std::move(payments),
                                              std::move(charges));
  CR_CHECK(counts.ok());
  return CreditCardData{std::move(counts).value(), params};
}

}  // namespace conservation::datagen
