// Synthetic stand-in for the NZ-Credit-Card dataset (paper §IV.A):
// monthly aggregated credit-card charges (inbound b) and payments
// (outbound a), Jan 1981 - Aug 2009, n = 344.
//
// The generator reproduces the structure the paper's experiment depends on:
//   * payments trail charges by roughly one month, so overall confidence is
//     close to 1;
//   * November-December holiday spending outpaces payments, increasingly so
//     in recent years, creating low-confidence Nov-Dec intervals under the
//     balance model;
//   * January payments catch up, so no fail interval ends in January;
//   * the 2008 recession dampens holiday charges, so Nov-Dec 2008 is absent
//     from the fail tableau.

#ifndef CONSERVATION_DATAGEN_CREDIT_CARD_H_
#define CONSERVATION_DATAGEN_CREDIT_CARD_H_

#include <cstdint>

#include "series/sequence.h"

namespace conservation::datagen {

struct CreditCardParams {
  int start_year = 1981;
  int num_months = 344;  // Jan 1981 .. Aug 2009
  // Charges start here (millions of dollars) and grow by `annual_growth`.
  double base_monthly_charges = 120.0;
  double annual_growth = 0.055;
  // Month-over-month lognormal noise on charges.
  double charge_noise_sigma = 0.04;
  // Fraction of outstanding debt paid each month, by regime. Holiday
  // repayment discipline erodes over the years (`holiday_repay_decline_per_
  // year`), which is what concentrates the fail intervals in recent years.
  double repay_fraction_normal = 0.92;
  double repay_fraction_november = 0.88;
  double repay_fraction_december = 0.85;
  double repay_fraction_january = 0.97;
  double holiday_repay_decline_per_year = 0.012;
  double holiday_repay_floor = 0.50;
  // Holiday charge multipliers; the excess over 1.0 scales up linearly so
  // that late years show stronger Nov-Dec imbalance (paper: "more intervals
  // from the recent years").
  double november_charge_boost = 1.18;
  double december_charge_boost = 1.40;
  double holiday_boost_growth_per_year = 0.012;
  // The recession year: holiday boosts collapse to ~1, charges shrink, and
  // repayment reverts to the normal regime (dampened consumption means no
  // holiday debt pile-up — the paper's missing Nov-Dec 2008).
  int recession_year = 2008;
  double recession_charge_factor = 0.80;
  uint64_t seed = 20120401;
};

struct CreditCardData {
  series::CountSequence counts;  // a = payments, b = charges
  CreditCardParams params;
};

CreditCardData GenerateCreditCard(const CreditCardParams& params = {});

}  // namespace conservation::datagen

#endif  // CONSERVATION_DATAGEN_CREDIT_CARD_H_
