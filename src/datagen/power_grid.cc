#include "datagen/power_grid.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.h"
#include "util/random.h"

namespace conservation::datagen {

PowerGridData GeneratePowerGrid(const PowerGridParams& params) {
  CR_CHECK(params.num_ticks >= 2);
  CR_CHECK(params.num_customers >= 1);
  CR_CHECK(params.technical_loss_fraction >= 0.0 &&
           params.technical_loss_fraction < 1.0);
  util::Rng rng(params.seed);

  const int64_t n = params.num_ticks;
  std::vector<double> metered(static_cast<size_t>(n), 0.0);
  std::vector<double> supplied(static_cast<size_t>(n), 0.0);

  // Per-customer scale factors (households differ).
  std::vector<double> customer_scale(
      static_cast<size_t>(params.num_customers));
  for (double& scale : customer_scale) {
    scale = rng.LogNormal(0.0, 0.4);
  }
  const int thief = 0;         // customer 0 diverts, if enabled
  const int outage_meter = 1;  // customer 1's meter fails, if enabled

  for (int64_t t = 1; t <= n; ++t) {
    const double phase = 2.0 * std::numbers::pi *
                         static_cast<double>((t - 1) % params.ticks_per_day) /
                         static_cast<double>(params.ticks_per_day);
    const double diurnal =
        1.0 + params.diurnal_amplitude * std::sin(phase - 2.1);

    double real_total = 0.0;
    double metered_total = 0.0;
    for (int c = 0; c < params.num_customers; ++c) {
      const double load = std::max(
          0.0, params.mean_load * diurnal *
                   customer_scale[static_cast<size_t>(c)] *
                   rng.LogNormal(0.0, 0.15));
      real_total += load;

      double reading = load;
      if (params.theft_start_tick > 0 && c == thief &&
          t >= params.theft_start_tick) {
        reading *= 1.0 - params.theft_fraction;
      }
      if (params.outage_begin_tick > 0 && c == outage_meter &&
          t >= params.outage_begin_tick && t <= params.outage_end_tick) {
        reading = 0.0;
      }
      metered_total += reading;
    }

    // The substation supplies the real consumption plus wire losses.
    supplied[static_cast<size_t>(t - 1)] =
        real_total / (1.0 - params.technical_loss_fraction);
    metered[static_cast<size_t>(t - 1)] = metered_total;
  }

  auto counts =
      series::CountSequence::Create(std::move(metered), std::move(supplied));
  CR_CHECK(counts.ok());
  return PowerGridData{std::move(counts).value(), params};
}

}  // namespace conservation::datagen
