// Synthetic stand-in for the GWA-T-1 grid Job Log (paper §IV): per-tick
// counts of submitted jobs (inbound b) and completed jobs (outbound a),
// about 1.1 million jobs. The large-n timing substrate for Figs. 6-10.
//
// Submissions follow a diurnal + weekly cycle; completions occur after a
// log-normal runtime plus possible queueing delay; a small fraction of jobs
// is cancelled silently (never completes). The resulting overall confidence
// is extremely high — the Fig. 7 experiment relies on conf(1, n) being above
// 0.99999 / (1 + eps).

#ifndef CONSERVATION_DATAGEN_JOB_LOG_H_
#define CONSERVATION_DATAGEN_JOB_LOG_H_

#include <cstdint>

#include "series/sequence.h"

namespace conservation::datagen {

struct JobLogParams {
  // Defaults sized so that the full-n Fig. 9/10 benches finish quickly;
  // pass a larger value (the paper's trace spans >1M ticks) to stress.
  int64_t num_ticks = 200000;
  double mean_submissions_per_tick = 1.0;
  double diurnal_amplitude = 0.5;
  double weekend_factor = 0.55;
  int64_t ticks_per_day = 1440;  // one-minute ticks
  // Runtime ~ LogNormal(log_mean, log_sigma) ticks.
  double runtime_log_mean = 2.5;  // median ~12 minutes
  double runtime_log_sigma = 1.0;
  double cancel_fraction = 0.001;
  uint64_t seed = 11243;
};

struct JobLogData {
  series::CountSequence counts;  // a = completions, b = submissions
  JobLogParams params;
};

JobLogData GenerateJobLog(const JobLogParams& params = {});

}  // namespace conservation::datagen

#endif  // CONSERVATION_DATAGEN_JOB_LOG_H_
