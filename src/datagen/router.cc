#include "datagen/router.h"

#include <cmath>
#include <numbers>
#include <utility>

#include "util/check.h"
#include "util/random.h"
#include "util/string_util.h"

namespace conservation::datagen {

RouterData GenerateRouter(const RouterParams& params) {
  CR_CHECK(params.num_ticks >= 2);
  CR_CHECK(params.unmonitored_fraction >= 0.0 &&
           params.unmonitored_fraction < 1.0);
  util::Rng rng(params.seed);

  const int64_t n = params.num_ticks;
  std::vector<double> outgoing(static_cast<size_t>(n), 0.0);
  std::vector<double> incoming(static_cast<size_t>(n), 0.0);

  double carried_over = 0.0;  // traffic delayed by forwarding jitter
  for (int64_t t = 0; t < n; ++t) {
    const double phase = 2.0 * std::numbers::pi *
                         static_cast<double>(t % params.ticks_per_day) /
                         static_cast<double>(params.ticks_per_day);
    const double rate =
        params.mean_traffic *
        (1.0 + params.diurnal_amplitude * std::sin(phase - 1.3));
    const double in = static_cast<double>(rng.Poisson(rate));
    incoming[static_cast<size_t>(t)] = in;

    // Everything that comes in goes out, but a share slips to the next tick.
    const double ready = in + carried_over;
    const double delayed =
        t + 1 < n ? params.forwarding_jitter * ready *
                        rng.Uniform(0.6, 1.4) / 1.0
                  : 0.0;
    const double sent = std::max(ready - delayed, 0.0);
    carried_over = ready - sent;

    double measured = sent;
    const bool link_hidden =
        params.profile == RouterProfile::kUnmonitoredLink ||
        (params.profile == RouterProfile::kLateActivation &&
         t + 1 < params.activation_tick);  // ticks are 1-based outside
    if (link_hidden) {
      measured *= 1.0 - params.unmonitored_fraction;
    }
    outgoing[static_cast<size_t>(t)] = std::floor(measured);
  }

  auto counts =
      series::CountSequence::Create(std::move(outgoing), std::move(incoming));
  CR_CHECK(counts.ok());
  return RouterData{params.name, std::move(counts).value(), params};
}

std::vector<RouterData> GenerateRouterFleet(int num_clean, int64_t num_ticks,
                                            uint64_t seed) {
  std::vector<RouterData> fleet;

  // The paper's Table II names: fully unmonitored routers...
  const int unmonitored_ids[] = {1, 10, 12, 6, 25};
  for (int id : unmonitored_ids) {
    RouterParams params;
    params.profile = RouterProfile::kUnmonitoredLink;
    params.name = util::StrFormat("Router-%d", id);
    params.num_ticks = num_ticks;
    params.seed = seed + static_cast<uint64_t>(id) * 101;
    params.mean_traffic = 800.0 + 90.0 * id;
    fleet.push_back(GenerateRouter(params));
  }

  // ... and Router-7, whose hidden link gets monitored near tick 3610.
  {
    RouterParams params;
    params.profile = RouterProfile::kLateActivation;
    params.name = "Router-7";
    params.num_ticks = num_ticks;
    params.activation_tick = num_ticks - 190;  // = 3610 when n = 3800
    params.seed = seed + 7 * 101;
    fleet.push_back(GenerateRouter(params));
  }

  for (int k = 0; k < num_clean; ++k) {
    RouterParams params;
    params.profile = RouterProfile::kClean;
    params.name = util::StrFormat("Router-%d", 100 + k);
    params.num_ticks = num_ticks;
    params.seed = seed + 10007 + static_cast<uint64_t>(k) * 131;
    params.mean_traffic = 600.0 + 40.0 * (k % 23);
    fleet.push_back(GenerateRouter(params));
  }
  return fleet;
}

series::CountSequence GenerateWellBehavedTraffic(int64_t num_ticks,
                                                 uint64_t seed) {
  RouterParams params;
  params.profile = RouterProfile::kClean;
  params.name = "well-behaved";
  params.num_ticks = num_ticks;
  params.mean_traffic = 1500.0;
  params.forwarding_jitter = 0.08;
  params.seed = seed;
  return GenerateRouter(params).counts;
}

}  // namespace conservation::datagen
