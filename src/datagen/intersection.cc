#include "datagen/intersection.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/random.h"

namespace conservation::datagen {

IntersectionData GenerateIntersection(const IntersectionParams& params) {
  CR_CHECK(params.num_ticks >= 2);
  CR_CHECK(params.num_approaches >= 1);
  util::Rng rng(params.seed);

  const int64_t n = params.num_ticks;
  std::vector<double> exits(static_cast<size_t>(n), 0.0);
  std::vector<double> entries(static_cast<size_t>(n), 0.0);

  std::vector<std::pair<int64_t, int64_t>> rush_windows;
  const auto day_fraction = [&](int64_t t) {
    return static_cast<double>(t % params.ticks_per_day) /
           static_cast<double>(params.ticks_per_day);
  };
  const auto in_rush = [&](int64_t t) {
    const double f = day_fraction(t);
    return (f >= params.morning_rush_begin && f < params.morning_rush_end) ||
           (f >= params.evening_rush_begin && f < params.evening_rush_end);
  };

  // Record the ground-truth rush windows (contiguous in-rush tick runs).
  int64_t run_begin = 0;
  for (int64_t t = 0; t <= n; ++t) {
    const bool rush = t < n && in_rush(t);
    if (rush && run_begin == 0) run_begin = t + 1;
    if (!rush && run_begin != 0) {
      rush_windows.emplace_back(run_begin, t);
      run_begin = 0;
    }
  }

  for (int64_t t = 0; t < n; ++t) {
    const bool rush = in_rush(t);
    const double rate =
        params.base_rate * (rush ? params.rush_multiplier : 1.0);
    for (int approach = 0; approach < params.num_approaches; ++approach) {
      const int64_t arrivals = rng.Poisson(rate);
      entries[static_cast<size_t>(t)] += static_cast<double>(arrivals);
      for (int64_t v = 0; v < arrivals; ++v) {
        const double mean_transit =
            params.base_transit_ticks +
            (rush ? params.rush_extra_transit_ticks : 0.0);
        const int64_t transit = std::max<int64_t>(
            0, static_cast<int64_t>(std::round(
                   rng.Normal(mean_transit, 0.5 + mean_transit * 0.25))));
        const int64_t exits_at = t + transit;
        if (exits_at >= n) continue;  // still inside at the horizon
        const bool lost = params.outage_begin_tick > 0 &&
                          exits_at + 1 >= params.outage_begin_tick &&
                          exits_at + 1 <= params.outage_end_tick;
        if (!lost) exits[static_cast<size_t>(exits_at)] += 1.0;
      }
    }
  }

  auto counts =
      series::CountSequence::Create(std::move(exits), std::move(entries));
  CR_CHECK(counts.ok());
  return IntersectionData{std::move(counts).value(), params,
                          std::move(rush_windows)};
}

}  // namespace conservation::datagen
