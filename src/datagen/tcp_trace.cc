#include "datagen/tcp_trace.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/check.h"
#include "util/random.h"

namespace conservation::datagen {

TcpTraceData GenerateTcpTrace(const TcpTraceParams& params) {
  CR_CHECK(params.num_ticks >= 2);
  util::Rng rng(params.seed);

  const int64_t n = params.num_ticks;
  std::vector<double> terminations(static_cast<size_t>(n), 0.0);
  std::vector<double> opens(static_cast<size_t>(n), 0.0);

  double rate = params.mean_syn_rate;
  for (int64_t t = 0; t < n; ++t) {
    // Mean-reverting multiplicative random walk keeps the rate positive and
    // produces the bursty structure of real packet traces.
    rate *= std::exp(rng.Normal(0.0, params.rate_volatility));
    rate += 0.01 * (params.mean_syn_rate - rate);
    rate = std::max(rate, 0.05);

    const int64_t syns = rng.Poisson(rate);
    opens[static_cast<size_t>(t)] = static_cast<double>(syns);
    for (int64_t c = 0; c < syns; ++c) {
      if (rng.Bernoulli(params.abandon_fraction)) continue;
      const double lifetime =
          rng.LogNormal(params.lifetime_log_mean, params.lifetime_log_sigma);
      const int64_t closes_at =
          t + std::max<int64_t>(0, static_cast<int64_t>(lifetime));
      if (closes_at < n) {
        terminations[static_cast<size_t>(closes_at)] += 1.0;
      }
      // Connections outliving the trace simply never terminate in it —
      // indistinguishable from loss, as the paper models it.
    }
  }

  auto counts = series::CountSequence::Create(std::move(terminations),
                                              std::move(opens));
  CR_CHECK(counts.ok());
  return TcpTraceData{std::move(counts).value(), params};
}

}  // namespace conservation::datagen
