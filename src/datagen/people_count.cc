#include "datagen/people_count.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/check.h"
#include "util/random.h"
#include "util/string_util.h"

namespace conservation::datagen {

namespace {

// Clamps a slot to [lo, hi].
int ClampSlot(int slot, int lo, int hi) {
  return std::max(lo, std::min(hi, slot));
}

}  // namespace

PeopleCountData GeneratePeopleCount(const PeopleCountParams& params) {
  CR_CHECK(params.num_weeks >= 2);
  CR_CHECK(params.slots_per_day >= 24);
  CR_CHECK(params.side_exit_fraction >= 0.0 &&
           params.side_exit_fraction < 1.0);
  util::Rng rng(params.seed);

  const int num_days = params.num_weeks * 7;
  const int spd = params.slots_per_day;
  const int64_t n = static_cast<int64_t>(num_days) * spd;
  std::vector<double> exits(static_cast<size_t>(n), 0.0);
  std::vector<double> entrances(static_cast<size_t>(n), 0.0);

  // Slot helpers (slot = half hour when spd == 48).
  const auto hour_to_slot = [&](double hour) {
    return static_cast<int>(hour * spd / 24.0);
  };
  const int open_slot = hour_to_slot(6.0);
  const int close_slot = hour_to_slot(22.0);

  const auto record_entry = [&](int day, int slot) {
    slot = ClampSlot(slot, open_slot, close_slot);
    entrances[static_cast<size_t>(day) * spd + slot] += 1.0;
    return slot;
  };
  const auto record_exit = [&](int day, int slot) {
    slot = ClampSlot(slot, open_slot, spd - 1);
    if (!rng.Bernoulli(params.side_exit_fraction)) {
      exits[static_cast<size_t>(day) * spd + slot] += 1.0;
    }
  };

  // Regular occupants. The trace starts on a Sunday (day % 7 == 0), matching
  // the UCI CalIt2 convention the paper used.
  for (int day = 0; day < num_days; ++day) {
    const int weekday = day % 7;
    const bool weekend = weekday == 0 || weekday == 6;
    const double population =
        weekend ? params.weekend_population : params.weekday_population;
    const int64_t arrivals = rng.Poisson(population);
    for (int64_t p = 0; p < arrivals; ++p) {
      const bool staff = rng.Bernoulli(params.staff_fraction);
      if (staff) {
        // Staff: morning arrival around 8:30, eight-hour stay.
        int arrive = hour_to_slot(rng.Normal(8.5, 1.4));
        arrive = record_entry(day, arrive);
        const int depart = ClampSlot(arrive + hour_to_slot(rng.Normal(8.0, 1.2)),
                                     arrive + 1, spd - 1);

        // Lunchtime round trip for a third of weekday staff.
        if (!weekend && rng.Bernoulli(0.35)) {
          int lunch_out = hour_to_slot(rng.Normal(12.0, 0.6));
          lunch_out = ClampSlot(lunch_out, arrive + 1, depart - 2);
          if (lunch_out > arrive) {
            record_exit(day, lunch_out);
            const int lunch_back = ClampSlot(
                lunch_out + 1 + static_cast<int>(rng.UniformInt(0, 1)),
                lunch_out + 1, depart - 1);
            record_entry(day, lunch_back);
          }
        }
        record_exit(day, depart);
      } else {
        // Visitor: arrives during business hours, stays under an hour.
        int arrive = hour_to_slot(rng.Normal(13.0, 3.0));
        arrive = record_entry(day, arrive);
        const int depart = ClampSlot(
            arrive + 1 + static_cast<int>(rng.UniformInt(0, 1)),
            arrive + 1, spd - 1);
        record_exit(day, depart);
      }
    }
  }

  // Scheduled events on distinct working days in the second half of the
  // trace (the paper's known events were all in one late month).
  std::vector<BuildingEvent> events;
  std::set<int> used_days;
  const int first_event_day = num_days / 2;
  int attempts = 0;
  while (static_cast<int>(events.size()) < params.num_events &&
         attempts < params.num_events * 50) {
    ++attempts;
    const int day =
        static_cast<int>(rng.UniformInt(first_event_day, num_days - 1));
    const int weekday = day % 7;
    if (weekday == 0 || weekday == 6) continue;
    if (used_days.count(day) > 0) continue;
    used_days.insert(day);

    BuildingEvent event;
    event.day = day;
    event.start_slot = hour_to_slot(rng.Uniform(8.0, 17.0));
    const int duration_slots =
        static_cast<int>(rng.UniformInt(2, hour_to_slot(9.0)));
    event.end_slot =
        ClampSlot(event.start_slot + duration_slots, event.start_slot + 1,
                  close_slot);
    event.attendance = static_cast<int>(
        rng.UniformInt(params.min_attendance, params.max_attendance));
    event.label = util::StrFormat("event-day%03d", day);
    events.push_back(event);

    for (int p = 0; p < event.attendance; ++p) {
      // Attendees stream in just before the event and leave together just
      // after it ends — the entry/exit delay the fail tableau should flag.
      const int arrive = ClampSlot(
          event.start_slot - static_cast<int>(rng.UniformInt(0, 2)),
          open_slot, event.start_slot);
      record_entry(day, arrive);
      const int depart = ClampSlot(
          event.end_slot + static_cast<int>(rng.UniformInt(0, 2)),
          event.end_slot, spd - 1);
      record_exit(day, depart);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const BuildingEvent& lhs, const BuildingEvent& rhs) {
              if (lhs.day != rhs.day) return lhs.day < rhs.day;
              return lhs.start_slot < rhs.start_slot;
            });

  auto counts =
      series::CountSequence::Create(std::move(exits), std::move(entrances));
  CR_CHECK(counts.ok());
  return PeopleCountData{std::move(counts).value(), std::move(events),
                         params};
}

}  // namespace conservation::datagen
