// Synthetic stand-in for the DEC-PKT-3 TCP trace (paper §IV): per-tick
// counts of SYN packets (inbound b: connection-open requests) and FIN+RST
// packets (outbound a: connection terminations), n = 177802.
//
// The conservation law: every opened connection eventually terminates. The
// generator produces bursty SYN arrivals (a mean-reverting random-walk rate)
// and terminations after heavy-tailed connection lifetimes, with a small
// fraction of connections never terminating inside the trace. Used as the
// timing substrate for Fig. 6 (middle/right).

#ifndef CONSERVATION_DATAGEN_TCP_TRACE_H_
#define CONSERVATION_DATAGEN_TCP_TRACE_H_

#include <cstdint>

#include "series/sequence.h"

namespace conservation::datagen {

struct TcpTraceParams {
  int64_t num_ticks = 177802;
  // Mean SYNs per tick; the actual rate random-walks around this.
  double mean_syn_rate = 6.0;
  double rate_volatility = 0.03;
  // Connection lifetime ~ LogNormal(log_mean, log_sigma) ticks.
  double lifetime_log_mean = 2.2;  // median ~9 ticks
  double lifetime_log_sigma = 1.1;
  // Fraction of connections that never send FIN/RST.
  double abandon_fraction = 0.003;
  uint64_t seed = 177802;
};

struct TcpTraceData {
  series::CountSequence counts;  // a = FIN+RST, b = SYN
  TcpTraceParams params;
};

TcpTraceData GenerateTcpTrace(const TcpTraceParams& params = {});

}  // namespace conservation::datagen

#endif  // CONSERVATION_DATAGEN_TCP_TRACE_H_
