// Synthetic stand-in for the People-Count dataset (paper §IV.B): optical
// sensor counts of people entering (inbound b) and exiting (outbound a) a
// building's front door in half-hour bins — 48 bins/day over 15 weeks,
// n = 5040, starting on a Sunday in late July (mirroring UCI CalIt2).
//
// Structure the paper's experiment depends on:
//   * an unmonitored side exit: a fixed fraction of exits is never recorded,
//     so the cumulative exit curve falls ever further behind the entrance
//     curve (Fig. 4) — this is what motivates the credit model;
//   * scheduled events: bursts of attendees arriving before the event and
//     leaving together after it, creating event-local entry/exit delay that
//     credit-model fail tableaux at c_hat = 0.6 should flag (Table I);
//   * a lunchtime imbalance on working days (people leave and re-enter).

#ifndef CONSERVATION_DATAGEN_PEOPLE_COUNT_H_
#define CONSERVATION_DATAGEN_PEOPLE_COUNT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "series/sequence.h"

namespace conservation::datagen {

// A scheduled event: ground truth for Table I.
struct BuildingEvent {
  int day = 0;         // 0-based day index within the trace
  int start_slot = 0;  // 0-based half-hour slot within the day (0 = 00:00)
  int end_slot = 0;    // inclusive
  int attendance = 0;
  std::string label;

  // 1-based tick range covered by the event.
  int64_t BeginTick(int slots_per_day = 48) const {
    return static_cast<int64_t>(day) * slots_per_day + start_slot + 1;
  }
  int64_t EndTick(int slots_per_day = 48) const {
    return static_cast<int64_t>(day) * slots_per_day + end_slot + 1;
  }
};

struct PeopleCountParams {
  int num_weeks = 15;
  int slots_per_day = 48;
  // Fraction of exits through the unmonitored side door. Kept small so the
  // accumulated unmatched mass stays comparable to one event's attendance;
  // a larger leak would dominate the credit-model denominator and drown the
  // event-local delay signal the experiment looks for.
  double side_exit_fraction = 0.02;
  // Mean regular (non-event) arrivals per working day.
  double weekday_population = 250.0;
  double weekend_population = 20.0;
  // Share of arrivals who are staff (all-day stay); the rest are short
  // visitors. Short visits keep background confidence high, so the hours-
  // long dwell of event crowds stands out to the fail tableau.
  double staff_fraction = 0.2;
  // Events: `num_events` of them placed on distinct working days in the
  // second half of the trace (the paper's were in August), with attendance
  // in [min_attendance, max_attendance].
  int num_events = 14;
  int min_attendance = 250;
  int max_attendance = 400;
  uint64_t seed = 50401;
};

struct PeopleCountData {
  series::CountSequence counts;  // a = recorded exits, b = entrances
  std::vector<BuildingEvent> events;
  PeopleCountParams params;
};

PeopleCountData GeneratePeopleCount(const PeopleCountParams& params = {});

}  // namespace conservation::datagen

#endif  // CONSERVATION_DATAGEN_PEOPLE_COUNT_H_
