// Controlled delay/loss perturbation of outbound traffic — paper §IV.D.
//
// "We removed a fraction of total traffic d at the time step i with highest
//  a_i, such that the cumulative amount d * sum(a) was subtracted from
//  consecutive elements a_i, a_{i+1}, ..., a_j, subject to these values' not
//  falling below 0. Then, at some random index i' > i, the previously
//  subtracted quantity was added to a_{i'} to compensate."
//
// Variants implemented, as in the paper:
//   * delay (compensate = true) vs loss (compensate = false);
//   * dampened drop: each a_t loses at most `max_step_drop_fraction` of its
//     value (the paper's "at most 25%" gradual-loss experiment).
//
// Removing outbound mass preserves dominance (A only shrinks); compensation
// restores A to its original level from the recovery index on, so dominance
// is preserved throughout.

#ifndef CONSERVATION_DATAGEN_PERTURB_H_
#define CONSERVATION_DATAGEN_PERTURB_H_

#include <cstdint>
#include <vector>

#include "series/sequence.h"

namespace conservation::datagen {

struct PerturbationSpec {
  // Fraction d of total outbound traffic to remove.
  double fraction = 0.1;
  // true: the removed amount reappears at the recovery index (delay);
  // false: it never does (loss).
  bool compensate = true;
  // Each a_t may lose at most this fraction of its value; 1.0 reproduces the
  // paper's full drop-to-zero, 0.25 its dampened variant.
  double max_step_drop_fraction = 1.0;
  // Recovery index (1-based). <= 0 picks a random index after the drop.
  int64_t recovery_tick = 0;
  // The drop may only start within the first `latest_start_fraction` of the
  // trace (the paper's peak happened to come early; constraining the start
  // keeps room to observe the outage and the post-recovery regime).
  double latest_start_fraction = 1.0;
  uint64_t seed = 424242;
};

struct PerturbationInfo {
  int64_t drop_begin = 0;     // first perturbed tick (1-based)
  int64_t drop_end = 0;       // last tick that lost traffic
  int64_t recovery_tick = 0;  // 0 when compensate == false
  double amount_removed = 0.0;
};

// Returns the perturbed sequence (same inbound b, modified outbound a) and
// fills `info` (may be null). CR_CHECKs that the drop fits in the trace.
series::CountSequence ApplyPerturbation(const series::CountSequence& counts,
                                        const PerturbationSpec& spec,
                                        PerturbationInfo* info);

}  // namespace conservation::datagen

#endif  // CONSERVATION_DATAGEN_PERTURB_H_
