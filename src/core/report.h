// QualityReport: the one-call data-quality summary, composing the library's
// pieces the way §IV of the paper walks through them by hand — overall
// confidence under each model, a fail tableau at the requested threshold,
// per-interval delay/loss diagnosis, severity ranking, and per-segment
// confidence.

#ifndef CONSERVATION_CORE_REPORT_H_
#define CONSERVATION_CORE_REPORT_H_

#include <optional>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/conservation_rule.h"
#include "core/diagnose.h"
#include "core/segmentation.h"
#include "core/tableau.h"
#include "util/status.h"

namespace conservation::core {

struct ReportOptions {
  // The model driving the tableau, diagnosis and segments.
  ConfidenceModel model = ConfidenceModel::kBalance;
  double fail_c_hat = 0.7;
  double support = 0.05;
  double epsilon = 0.01;
  // Segment length for the per-segment table; 0 picks ~12 segments.
  int64_t segment_length = 0;
  // Cap on rows rendered per section in ToString().
  size_t max_rows = 12;
};

struct QualityReport {
  int64_t n = 0;
  // Overall confidence per model: balance, credit, debit (in that order).
  std::vector<std::pair<std::string, std::optional<double>>> overall;
  DelayReport delay;
  Tableau fail_tableau;
  std::vector<ViolationDiagnosis> diagnoses;   // aligned with tableau rows
  std::vector<SeverityEntry> by_severity;      // sorted desc
  std::vector<SegmentSummary> segments;
  ReportOptions options;

  // Multi-section human-readable rendering.
  std::string ToString() const;
};

// Builds the full report; fails only if the tableau request is invalid.
util::Result<QualityReport> BuildQualityReport(const ConservationRule& rule,
                                               const ReportOptions& options);

}  // namespace conservation::core

#endif  // CONSERVATION_CORE_REPORT_H_
