#include "core/diagnose.h"

#include <algorithm>

#include "util/string_util.h"

namespace conservation::core {

const char* ViolationKindName(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kDelay:
      return "delay";
    case ViolationKind::kLoss:
      return "loss";
    case ViolationKind::kOngoing:
      return "ongoing";
  }
  return "unknown";
}

std::string ViolationDiagnosis::ToString() const {
  std::string out = util::StrFormat(
      "%s: %s, missing mass %s, %.0f%% recovered",
      interval.ToString().c_str(), ViolationKindName(kind),
      util::FormatNumber(missing_mass, 2).c_str(),
      recovered_fraction * 100.0);
  if (recovery_tick > 0) {
    out += util::StrFormat(" (recovery at tick %lld)",
                           static_cast<long long>(recovery_tick));
  }
  return out;
}

ViolationDiagnosis DiagnoseViolation(const series::CumulativeSeries& series,
                                     const interval::Interval& interval,
                                     const DiagnoseOptions& options) {
  CR_CHECK(interval.begin >= 1 && interval.begin <= interval.end &&
           interval.end <= series.n());
  ViolationDiagnosis diagnosis;
  diagnosis.interval = interval;

  const auto gap_at = [&](int64_t t) { return series.B(t) - series.A(t); };
  const double gap_before = gap_at(interval.begin - 1);
  const double gap_end = gap_at(interval.end);
  diagnosis.missing_mass = std::max(gap_end - gap_before, 0.0);

  if (diagnosis.missing_mass <= 1e-9) {
    // Nothing went missing across the interval (a low-confidence interval
    // can still arise from in-interval churn): trivially "recovered".
    diagnosis.kind = ViolationKind::kDelay;
    diagnosis.recovery_tick = interval.end;
    diagnosis.recovered_fraction = 1.0;
    return diagnosis;
  }

  // Scan the suffix for the minimum residual gap and the first tick at
  // which recovery (within tolerance) is reached.
  const double recovery_level =
      gap_before + options.recovery_tolerance * diagnosis.missing_mass;
  double min_gap_after = gap_end;
  for (int64_t t = interval.end + 1; t <= series.n(); ++t) {
    const double gap = gap_at(t);
    min_gap_after = std::min(min_gap_after, gap);
    if (diagnosis.recovery_tick == 0 && gap <= recovery_level) {
      diagnosis.recovery_tick = t;
    }
  }
  diagnosis.recovered_fraction = std::clamp(
      (gap_end - min_gap_after) / diagnosis.missing_mass, 0.0, 1.0);

  if (diagnosis.recovered_fraction >= options.delay_min_recovered) {
    diagnosis.kind = ViolationKind::kDelay;
  } else if (diagnosis.recovered_fraction <= options.loss_max_recovered) {
    diagnosis.kind = ViolationKind::kLoss;
  } else {
    diagnosis.kind = ViolationKind::kOngoing;
  }
  return diagnosis;
}

std::vector<ViolationDiagnosis> DiagnoseTableau(
    const ConservationRule& rule, const Tableau& tableau,
    const DiagnoseOptions& options) {
  std::vector<ViolationDiagnosis> out;
  out.reserve(tableau.rows.size());
  for (const TableauRow& row : tableau.rows) {
    out.push_back(
        DiagnoseViolation(rule.cumulative(), row.interval, options));
  }
  return out;
}

}  // namespace conservation::core
