#include "core/model.h"

namespace conservation::core {

const char* ConfidenceModelName(ConfidenceModel model) {
  switch (model) {
    case ConfidenceModel::kBalance:
      return "balance";
    case ConfidenceModel::kCredit:
      return "credit";
    case ConfidenceModel::kDebit:
      return "debit";
  }
  return "unknown";
}

const char* TableauTypeName(TableauType type) {
  switch (type) {
    case TableauType::kHold:
      return "hold";
    case TableauType::kFail:
      return "fail";
  }
  return "unknown";
}

}  // namespace conservation::core
