// The three confidence models of paper §II and the tableau polarity.

#ifndef CONSERVATION_CORE_MODEL_H_
#define CONSERVATION_CORE_MODEL_H_

namespace conservation::core {

// How the history before an interval is discounted when scoring it
// (Definitions 2-4). The choice encodes the analyst's hypothesis:
enum class ConfidenceModel {
  // Penalizes the interval for the unmatched balance B_{i-1} - A_{i-1}
  // accumulated before it begins. Use when both sequences may be at fault.
  kBalance,
  // Injects the missing outbound events into A (shift A up by S_i). Use when
  // outbound events are suspected to be missing/unmonitored.
  kCredit,
  // Removes the unmatched inbound events from B (shift B down by S_i). Use
  // when inbound events may have been spuriously counted.
  kDebit,
};

// Hold tableaux collect intervals of confidence >= c_hat; fail tableaux
// collect intervals of confidence <= c_hat (paper §I.B).
enum class TableauType {
  kHold,
  kFail,
};

const char* ConfidenceModelName(ConfidenceModel model);
const char* TableauTypeName(TableauType type);

}  // namespace conservation::core

#endif  // CONSERVATION_CORE_MODEL_H_
