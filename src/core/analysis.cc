#include "core/analysis.h"

#include <algorithm>

#include "util/parallel.h"

namespace conservation::core {

util::Result<std::vector<SweepPoint>> ThresholdSweep(
    const ConservationRule& rule, const TableauRequest& base_request,
    const std::vector<double>& thresholds) {
  std::vector<SweepPoint> out(thresholds.size());
  std::vector<util::Status> failures(thresholds.size(), util::Status::Ok());
  util::ParallelFor(
      static_cast<int64_t>(thresholds.size()), base_request.num_threads,
      [&](int64_t k) {
        TableauRequest request = base_request;
        request.c_hat = thresholds[static_cast<size_t>(k)];
        // Whole requests are already fanned out; keep the inner anchor
        // loop sequential instead of oversubscribing the pool.
        request.num_threads = 1;
        auto tableau = rule.DiscoverTableau(request);
        if (!tableau.ok()) {
          failures[static_cast<size_t>(k)] = tableau.status();
          return;
        }
        SweepPoint point;
        point.c_hat = request.c_hat;
        point.tableau_size = tableau->size();
        point.covered = tableau->covered;
        point.support_satisfied = tableau->support_satisfied;
        out[static_cast<size_t>(k)] = point;
      });
  for (const util::Status& status : failures) {
    if (!status.ok()) return status;
  }
  return out;
}

std::vector<double> ConfidenceProfile(const ConservationRule& rule,
                                      ConfidenceModel model, int64_t window) {
  CR_CHECK(window >= 1 && window <= rule.n());
  const ConfidenceEvaluator eval = rule.Evaluator(model);
  std::vector<double> out;
  out.reserve(static_cast<size_t>(rule.n() - window + 1));
  for (int64_t t = window; t <= rule.n(); ++t) {
    const std::optional<double> conf = eval.Confidence(t - window + 1, t);
    out.push_back(conf.value_or(-1.0));
  }
  return out;
}

std::vector<SeverityEntry> RankBySeverity(const ConservationRule& rule,
                                          ConfidenceModel model,
                                          const Tableau& tableau) {
  const ConfidenceEvaluator eval = rule.Evaluator(model);
  std::vector<SeverityEntry> out;
  out.reserve(tableau.rows.size());
  for (const TableauRow& row : tableau.rows) {
    SeverityEntry entry;
    entry.interval = row.interval;
    entry.confidence = row.confidence;
    entry.misplaced_mass = eval.AreaB(row.interval.begin, row.interval.end) -
                           eval.AreaA(row.interval.begin, row.interval.end);
    out.push_back(entry);
  }
  std::sort(out.begin(), out.end(),
            [](const SeverityEntry& lhs, const SeverityEntry& rhs) {
              if (lhs.misplaced_mass != rhs.misplaced_mass) {
                return lhs.misplaced_mass > rhs.misplaced_mass;
              }
              return interval::ByPosition(lhs.interval, rhs.interval);
            });
  return out;
}

}  // namespace conservation::core
