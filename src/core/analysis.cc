#include "core/analysis.h"

#include <algorithm>

namespace conservation::core {

util::Result<std::vector<SweepPoint>> ThresholdSweep(
    const ConservationRule& rule, const TableauRequest& base_request,
    const std::vector<double>& thresholds) {
  std::vector<SweepPoint> out;
  out.reserve(thresholds.size());
  for (const double c_hat : thresholds) {
    TableauRequest request = base_request;
    request.c_hat = c_hat;
    auto tableau = rule.DiscoverTableau(request);
    if (!tableau.ok()) return tableau.status();
    SweepPoint point;
    point.c_hat = c_hat;
    point.tableau_size = tableau->size();
    point.covered = tableau->covered;
    point.support_satisfied = tableau->support_satisfied;
    out.push_back(point);
  }
  return out;
}

std::vector<double> ConfidenceProfile(const ConservationRule& rule,
                                      ConfidenceModel model, int64_t window) {
  CR_CHECK(window >= 1 && window <= rule.n());
  const ConfidenceEvaluator eval = rule.Evaluator(model);
  std::vector<double> out;
  out.reserve(static_cast<size_t>(rule.n() - window + 1));
  for (int64_t t = window; t <= rule.n(); ++t) {
    const std::optional<double> conf = eval.Confidence(t - window + 1, t);
    out.push_back(conf.value_or(-1.0));
  }
  return out;
}

std::vector<SeverityEntry> RankBySeverity(const ConservationRule& rule,
                                          ConfidenceModel model,
                                          const Tableau& tableau) {
  const ConfidenceEvaluator eval = rule.Evaluator(model);
  std::vector<SeverityEntry> out;
  out.reserve(tableau.rows.size());
  for (const TableauRow& row : tableau.rows) {
    SeverityEntry entry;
    entry.interval = row.interval;
    entry.confidence = row.confidence;
    entry.misplaced_mass = eval.AreaB(row.interval.begin, row.interval.end) -
                           eval.AreaA(row.interval.begin, row.interval.end);
    out.push_back(entry);
  }
  std::sort(out.begin(), out.end(),
            [](const SeverityEntry& lhs, const SeverityEntry& rhs) {
              if (lhs.misplaced_mass != rhs.misplaced_mass) {
                return lhs.misplaced_mass > rhs.misplaced_mass;
              }
              return interval::ByPosition(lhs.interval, rhs.interval);
            });
  return out;
}

}  // namespace conservation::core
