// Calendar segmentation: per-day (or per-week, per-anything) summaries of a
// conservation rule. This is the protocol behind the paper's Table I, where
// maximal fail intervals are reported *per day* and compared against that
// day's scheduled events.

#ifndef CONSERVATION_CORE_SEGMENTATION_H_
#define CONSERVATION_CORE_SEGMENTATION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/conservation_rule.h"
#include "interval/interval.h"

namespace conservation::core {

struct Segment {
  interval::Interval range;
  std::string label;
};

// Consecutive segments of `segment_length` ticks over {1..n}; the last one
// may be shorter. Labels are "seg 000", "seg 001", ...
std::vector<Segment> UniformSegments(int64_t n, int64_t segment_length);

struct SegmentSummary {
  Segment segment;
  // Confidence of the whole segment (nullopt when undefined).
  std::optional<double> confidence;
  // sum_{l in segment} (B_l - A_l) above the model baseline.
  double misplaced_mass = 0.0;
};

// Per-segment confidence and misplaced mass under `model`.
std::vector<SegmentSummary> SummarizeSegments(
    const ConservationRule& rule, ConfidenceModel model,
    const std::vector<Segment>& segments);

// The candidates lying entirely inside `segment`, reduced to maximal ones
// (none contained in another). The per-day interval lists of Table I.
std::vector<interval::Interval> SegmentLocalMaximal(
    const std::vector<interval::Interval>& candidates,
    const interval::Interval& segment);

}  // namespace conservation::core

#endif  // CONSERVATION_CORE_SEGMENTATION_H_
