// Tableau discovery: the paper's headline operation (§I.B, §III).
//
// A hold tableau is a smallest-possible collection of intervals, each of
// confidence >= c_hat, whose union covers at least s_hat * n ticks; a fail
// tableau uses confidence <= c_hat. Discovery runs in two phases:
//   1. candidate interval generation (interval/ generators), and
//   2. greedy PARTIAL SET COVER over the candidates (cover/).

#ifndef CONSERVATION_CORE_TABLEAU_H_
#define CONSERVATION_CORE_TABLEAU_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/confidence.h"
#include "core/model.h"
#include "cover/partial_set_cover.h"
#include "interval/generator.h"
#include "interval/interval.h"
#include "util/status.h"

namespace conservation::core {

struct TableauRequest {
  TableauType type = TableauType::kHold;
  ConfidenceModel model = ConfidenceModel::kBalance;
  // Confidence threshold in [0, 1].
  double c_hat = 0.9;
  // Support: fraction of ticks the tableau must cover, in [0, 1].
  double s_hat = 0.5;
  // Candidate generation algorithm and its knobs.
  interval::AlgorithmKind algorithm = interval::AlgorithmKind::kAreaBased;
  double epsilon = 0.01;  // ignored by the exhaustive algorithm
  interval::DeltaMode delta_mode = interval::DeltaMode::kMinPositiveCount;
  bool stop_on_full_cover = false;
  bool largest_first_early_exit = false;
  // Threads for anchor-sharded candidate generation (and for the analysis
  // layers that fan out whole requests): 1 = sequential, 0 = hardware
  // concurrency. Candidate output is identical for every setting.
  int num_threads = 1;
  // Scheduler chunks dispatched per worker during parallel generation; see
  // interval::GeneratorOptions::chunks_per_thread. Must be >= 1. Output is
  // identical for every setting — this only tunes load balance.
  int chunks_per_thread = 12;
  // Concurrently resumable anchor walks per chunk in AB-opt's cross-anchor
  // scheduler; see interval::GeneratorOptions::walk_width. 0 = auto (SIMD
  // lane count x unroll), 1 = scalar walk. Candidates and counters are
  // identical for every setting.
  int walk_width = 0;
  // Quantized-sketch anchor screen; see interval::GeneratorOptions::sketch.
  // kAuto enables the conservative pre-pass on large series (candidates are
  // bit-identical either way), kOff disables it. sketch_block is the ticks
  // per sketch block; must be in [8, 1 << 20].
  interval::SketchMode sketch = interval::SketchMode::kAuto;
  int64_t sketch_block = 256;
  // NAB/NAB-opt right-anchor sketch screen; see
  // interval::GeneratorOptions::sketch_nab_right. Off by default
  // (DESIGN.md §4f); candidates are bit-identical either way.
  bool sketch_nab_right = false;
};

struct TableauRow {
  interval::Interval interval;
  // conf(interval) under the request's model.
  double confidence = 0.0;
};

struct Tableau {
  TableauType type = TableauType::kHold;
  ConfidenceModel model = ConfidenceModel::kBalance;
  std::vector<TableauRow> rows;

  // Coverage accounting from the set-cover phase.
  int64_t covered = 0;
  int64_t required = 0;
  // False when the candidates cannot reach the requested support; `rows`
  // then covers as much as possible.
  bool support_satisfied = false;

  // Phase diagnostics.
  uint64_t num_candidates = 0;
  interval::GeneratorStats generation_stats;
  double cover_seconds = 0.0;
  // Lazy-greedy cover-phase counters (rounds, heap pops, stale
  // re-evaluations, tick visits, seed/select split); see cover/.
  cover::CoverStats cover_stats;

  bool empty() const { return rows.empty(); }
  size_t size() const { return rows.size(); }

  // Multi-line human-readable rendering ("[12, 24]  conf=0.8312" per row).
  std::string ToString() const;
};

// Request validation (thresholds in range, epsilon > 0 for approximate
// algorithms, NAB/NAB-opt only with the balance model). Shared by
// DiscoverTableau and the incremental engine (incr/incremental.h), so the
// two front doors cannot drift on what a well-formed request is.
util::Status ValidateTableauRequest(const TableauRequest& request);

// Validates the request and runs both phases.
util::Result<Tableau> DiscoverTableau(const ConfidenceEvaluator& eval,
                                      const TableauRequest& request);

}  // namespace conservation::core

#endif  // CONSERVATION_CORE_TABLEAU_H_
