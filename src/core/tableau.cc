#include "core/tableau.h"

#include <utility>

#include "cover/partial_set_cover.h"
#include "obs/labels.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace conservation::core {

util::Status ValidateTableauRequest(const TableauRequest& request) {
  if (request.c_hat < 0.0 || request.c_hat > 1.0) {
    return util::Status::InvalidArgument(
        util::StrFormat("c_hat must be in [0, 1], got %g", request.c_hat));
  }
  if (request.s_hat < 0.0 || request.s_hat > 1.0) {
    return util::Status::InvalidArgument(
        util::StrFormat("s_hat must be in [0, 1], got %g", request.s_hat));
  }
  const bool approximate =
      request.algorithm != interval::AlgorithmKind::kExhaustive;
  if (approximate && request.epsilon <= 0.0) {
    return util::Status::InvalidArgument(util::StrFormat(
        "epsilon must be > 0 for %s",
        interval::AlgorithmKindName(request.algorithm)));
  }
  if (request.num_threads < 0) {
    return util::Status::InvalidArgument(util::StrFormat(
        "num_threads must be >= 0 (0 = hardware concurrency), got %d",
        request.num_threads));
  }
  if (request.chunks_per_thread < 1) {
    return util::Status::InvalidArgument(
        util::StrFormat("chunks_per_thread must be >= 1, got %d",
                        request.chunks_per_thread));
  }
  if (request.walk_width < 0) {
    return util::Status::InvalidArgument(util::StrFormat(
        "walk_width must be >= 0 (0 = auto), got %d", request.walk_width));
  }
  if (request.sketch_block < 8 || request.sketch_block > (int64_t{1} << 20)) {
    return util::Status::InvalidArgument(util::StrFormat(
        "sketch_block must be in [8, 1048576], got %lld",
        static_cast<long long>(request.sketch_block)));
  }
  const bool non_area_based =
      request.algorithm == interval::AlgorithmKind::kNonAreaBased ||
      request.algorithm == interval::AlgorithmKind::kNonAreaBasedOpt;
  if (non_area_based && request.model != ConfidenceModel::kBalance) {
    return util::Status::InvalidArgument(util::StrFormat(
        "%s supports only the balance model (paper §V); got %s",
        interval::AlgorithmKindName(request.algorithm),
        ConfidenceModelName(request.model)));
  }
  return util::Status::Ok();
}

std::string Tableau::ToString() const {
  std::string out = util::StrFormat(
      "%s tableau (%s model): %zu interval(s), covered %lld/%lld ticks%s\n",
      TableauTypeName(type), ConfidenceModelName(model), rows.size(),
      static_cast<long long>(covered), static_cast<long long>(required),
      support_satisfied ? "" : " [support NOT satisfied]");
  for (const TableauRow& row : rows) {
    out += util::StrFormat("  %-16s conf=%.4f\n",
                           row.interval.ToString().c_str(), row.confidence);
  }
  return out;
}

util::Result<Tableau> DiscoverTableau(const ConfidenceEvaluator& eval,
                                      const TableauRequest& request) {
  if (util::Status status = ValidateTableauRequest(request); !status.ok()) {
    return status;
  }
  if (eval.model() != request.model) {
    return util::Status::InvalidArgument(
        "evaluator model does not match request model");
  }
  CR_TRACE_SPAN_ARGS("tableau.discover", "n", eval.n(), "threads",
                     request.num_threads);
  obs::ScopedDeadline discover_deadline("tableau.discover");
  static obs::Counter& discoveries =
      obs::Registry::Global().Counter("tableau.discoveries");
  discoveries.Increment();
  // Phase attribution for the discovery pipeline: one histogram family,
  // children hoisted once (labels.h). Same bounds as the cover phase
  // histograms so cross-phase comparisons line up bucket for bucket.
  struct PhaseMetrics {
    obs::Histogram& generate;
    obs::Histogram& cover;
    obs::Histogram& assemble;
  };
  static PhaseMetrics& phase_seconds = *[] {
    obs::HistogramFamily& family = obs::LabeledHistogram(
        "tableau.phase_seconds", {1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0});
    return new PhaseMetrics{family.With({{"phase", "generate"}}),
                            family.With({{"phase", "cover"}}),
                            family.With({{"phase", "assemble"}})};
  }();

  interval::GeneratorOptions gen_options;
  gen_options.type = request.type;
  gen_options.c_hat = request.c_hat;
  gen_options.epsilon = request.epsilon;
  gen_options.delta_mode = request.delta_mode;
  gen_options.stop_on_full_cover = request.stop_on_full_cover;
  gen_options.largest_first_early_exit = request.largest_first_early_exit;
  gen_options.num_threads = request.num_threads;
  gen_options.chunks_per_thread = request.chunks_per_thread;
  gen_options.walk_width = request.walk_width;
  gen_options.sketch = request.sketch;
  gen_options.sketch_block = request.sketch_block;
  gen_options.sketch_nab_right = request.sketch_nab_right;

  Tableau tableau;
  tableau.type = request.type;
  tableau.model = request.model;

  const auto generator = interval::MakeGenerator(request.algorithm);
  std::vector<interval::Candidate> candidates;
  {
    CR_TRACE_SPAN("tableau.generate");
    util::Stopwatch generate_timer;
    candidates = generator->GenerateCandidates(eval, gen_options,
                                               &tableau.generation_stats);
    phase_seconds.generate.Record(generate_timer.ElapsedSeconds());
  }
  tableau.num_candidates = candidates.size();
  // Walk-scheduler observability: how many resumable walks ran, and how
  // full the probe lanes stayed (1.0 = every lane of every round held a
  // live walk; 0 lane slots = the scalar walk ran and the gauge is not
  // updated).
  static obs::Counter& active_walks =
      obs::Registry::Global().Counter("generation.active_walks");
  active_walks.Add(tableau.generation_stats.walks);
  if (tableau.generation_stats.walk_lane_slots > 0) {
    static obs::Gauge& lane_occupancy =
        obs::Registry::Global().Gauge("kernel.lane_occupancy");
    lane_occupancy.Set(tableau.generation_stats.LaneOccupancy());
  }

  cover::CoverResult cover;
  {
    CR_TRACE_SPAN_ARGS("tableau.cover", "candidates",
                       static_cast<int64_t>(candidates.size()));
    std::vector<interval::Interval> intervals;
    intervals.reserve(candidates.size());
    for (const interval::Candidate& candidate : candidates) {
      intervals.push_back(candidate.interval);
    }

    util::Stopwatch cover_timer;
    cover::CoverOptions cover_options;
    cover_options.s_hat = request.s_hat;
    cover_options.num_threads = request.num_threads;
    cover = cover::GreedyPartialSetCover(intervals, eval.n(), cover_options);
    tableau.cover_seconds = cover_timer.ElapsedSeconds();
    tableau.cover_stats = cover.stats;
    phase_seconds.cover.Record(tableau.cover_seconds);
  }

  CR_TRACE_SPAN_ARGS("tableau.assemble", "rows",
                     static_cast<int64_t>(cover.chosen.size()));
  util::Stopwatch assemble_timer;
  tableau.covered = cover.covered;
  tableau.required = cover.required;
  tableau.support_satisfied = cover.satisfied;
  tableau.rows.reserve(cover.chosen.size());
  // Row confidences are the values the generator computed when it admitted
  // each candidate (kernel arithmetic is bit-identical to
  // eval.Confidence) — no per-row O(1)+dispatch rescan here.
  for (size_t r = 0; r < cover.chosen.size(); ++r) {
    tableau.rows.push_back(TableauRow{
        cover.chosen[r], candidates[cover.chosen_indices[r]].confidence});
  }
  static obs::Gauge& last_rows =
      obs::Registry::Global().Gauge("tableau.last_rows");
  last_rows.Set(static_cast<double>(tableau.rows.size()));
  phase_seconds.assemble.Record(assemble_timer.ElapsedSeconds());
  return tableau;
}

}  // namespace conservation::core
