// Delay metrics derived from the conservation-law theory of paper §II.
//
// Lemma 2: when A_n = B_n and B dominates A, every rightward perfect matching
// between inbound and outbound events has total delay sum_l (B_l - A_l).
// Confidence is 1 minus this delay normalized by its maximum over the
// interval, so these metrics are the "raw" counterparts of confidence and are
// useful on their own as data-quality summaries.

#ifndef CONSERVATION_CORE_DELAY_H_
#define CONSERVATION_CORE_DELAY_H_

#include <cstdint>

#include "series/cumulative.h"

namespace conservation::core {

struct DelayReport {
  // sum_{l=i..j} (B_l - A_l): total ticks of delay attributed to [i, j],
  // counting missing outbound events as delayed until after j.
  double total_delay = 0.0;
  // total_delay divided by the number of inbound events in [1..j]; an
  // estimate of per-event delay in ticks.
  double delay_per_event = 0.0;
  // B_j - A_j: events still outstanding at the end of the interval.
  double outstanding_at_end = 0.0;
};

// Delay over the whole series.
DelayReport TotalDelay(const series::CumulativeSeries& series);

// Delay restricted to the interval [i, j] (1-based, inclusive).
DelayReport IntervalDelay(const series::CumulativeSeries& series, int64_t i,
                          int64_t j);

}  // namespace conservation::core

#endif  // CONSERVATION_CORE_DELAY_H_
