#include "core/segmentation.h"

#include <algorithm>

#include "util/string_util.h"

namespace conservation::core {

std::vector<Segment> UniformSegments(int64_t n, int64_t segment_length) {
  CR_CHECK(n >= 1);
  CR_CHECK(segment_length >= 1);
  std::vector<Segment> out;
  int index = 0;
  for (int64_t begin = 1; begin <= n; begin += segment_length, ++index) {
    Segment segment;
    segment.range = {begin, std::min(n, begin + segment_length - 1)};
    segment.label = util::StrFormat("seg %03d", index);
    out.push_back(std::move(segment));
  }
  return out;
}

std::vector<SegmentSummary> SummarizeSegments(
    const ConservationRule& rule, ConfidenceModel model,
    const std::vector<Segment>& segments) {
  const ConfidenceEvaluator eval = rule.Evaluator(model);
  std::vector<SegmentSummary> out;
  out.reserve(segments.size());
  for (const Segment& segment : segments) {
    SegmentSummary summary;
    summary.segment = segment;
    summary.confidence =
        eval.Confidence(segment.range.begin, segment.range.end);
    summary.misplaced_mass =
        eval.AreaB(segment.range.begin, segment.range.end) -
        eval.AreaA(segment.range.begin, segment.range.end);
    out.push_back(std::move(summary));
  }
  return out;
}

std::vector<interval::Interval> SegmentLocalMaximal(
    const std::vector<interval::Interval>& candidates,
    const interval::Interval& segment) {
  std::vector<interval::Interval> local;
  for (const interval::Interval& candidate : candidates) {
    if (segment.Contains(candidate)) local.push_back(candidate);
  }
  std::sort(local.begin(), local.end(), interval::ByPosition);
  // Keep intervals not contained in another local interval: scanning by
  // position, an interval is maximal iff its end exceeds every previous
  // end (a contained interval starts later and ends no later).
  std::vector<interval::Interval> maximal;
  int64_t max_end = 0;
  for (const interval::Interval& candidate : local) {
    if (candidate.end > max_end) {
      maximal.push_back(candidate);
      max_end = candidate.end;
    }
  }
  return maximal;
}

}  // namespace conservation::core
