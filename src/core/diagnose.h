// Violation diagnosis: classify a fail interval as delay or loss.
//
// §IV.D of the paper distinguishes the two regimes — with *delay* the
// removed outbound mass reappears later and hold tableaux resume after the
// recovery; with *loss* it never does and balance-model fail intervals run
// "until the end of time". OSR-style metrics cannot tell them apart; the
// cumulative-gap geometry can: after a delay episode the gap B_t - A_t
// returns to its pre-interval level, after loss it stays elevated.

#ifndef CONSERVATION_CORE_DIAGNOSE_H_
#define CONSERVATION_CORE_DIAGNOSE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/conservation_rule.h"
#include "core/tableau.h"
#include "interval/interval.h"
#include "series/cumulative.h"

namespace conservation::core {

enum class ViolationKind {
  // The gap recovered to (near) its pre-interval level: the outbound
  // events were late, not lost.
  kDelay,
  // The gap never recovered meaningfully by the end of the trace.
  kLoss,
  // Recovery was under way but incomplete when the trace ended.
  kOngoing,
};

const char* ViolationKindName(ViolationKind kind);

struct ViolationDiagnosis {
  interval::Interval interval;
  ViolationKind kind = ViolationKind::kDelay;
  // Gap growth across the interval: (B_j - A_j) - (B_{i-1} - A_{i-1}),
  // clamped at 0. The conservation mass that went missing inside I.
  double missing_mass = 0.0;
  // First tick after the interval where the gap has recovered to within
  // `recovery_tolerance * missing_mass` of its pre-interval level;
  // 0 when no such tick exists.
  int64_t recovery_tick = 0;
  // Fraction of the missing mass recovered by the end of the trace, in
  // [0, 1].
  double recovered_fraction = 0.0;

  std::string ToString() const;
};

struct DiagnoseOptions {
  // Recovery is declared when the residual gap is within this fraction of
  // the missing mass.
  double recovery_tolerance = 0.1;
  // Classification cutoffs on recovered_fraction.
  double delay_min_recovered = 0.9;
  double loss_max_recovered = 0.25;
};

// Diagnoses one interval. Degenerate intervals with ~zero missing mass are
// reported as kDelay with recovery at the interval end.
ViolationDiagnosis DiagnoseViolation(const series::CumulativeSeries& series,
                                     const interval::Interval& interval,
                                     const DiagnoseOptions& options = {});

// Diagnoses every row of a (typically fail) tableau.
std::vector<ViolationDiagnosis> DiagnoseTableau(
    const ConservationRule& rule, const Tableau& tableau,
    const DiagnoseOptions& options = {});

}  // namespace conservation::core

#endif  // CONSERVATION_CORE_DIAGNOSE_H_
