#include "core/multi_resolution.h"

#include <algorithm>

namespace conservation::core {

util::Result<std::vector<ResolutionResult>> MultiResolutionScan(
    const series::CountSequence& counts, const TableauRequest& request,
    const std::vector<int64_t>& factors) {
  std::vector<int64_t> sorted = factors;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  std::vector<ResolutionResult> out;
  for (const int64_t factor : sorted) {
    if (factor < 1) {
      return util::Status::InvalidArgument("factors must be >= 1");
    }
    if (factor > counts.n() / 2) continue;  // too coarse to be meaningful

    series::ResampleOptions resample;
    resample.factor = factor;
    const series::CountSequence coarse =
        factor == 1 ? counts : series::Downsample(counts, resample);
    auto rule = ConservationRule::Create(coarse);
    if (!rule.ok()) return rule.status();

    auto tableau = rule->DiscoverTableau(request);
    if (!tableau.ok()) return tableau.status();

    ResolutionResult result;
    result.factor = factor;
    result.coarse_n = coarse.n();
    result.overall_confidence =
        rule->OverallConfidence(request.model).value_or(0.0);
    result.support_satisfied = tableau->support_satisfied;
    for (const TableauRow& row : tableau->rows) {
      const series::TickRange begin =
          series::NativeRange(row.interval.begin, resample, counts.n());
      const series::TickRange end =
          series::NativeRange(row.interval.end, resample, counts.n());
      result.native_intervals.push_back(
          interval::Interval{begin.first, end.last});
      result.covered_native_ticks += end.last - begin.first + 1;
    }
    out.push_back(std::move(result));
  }
  return out;
}

}  // namespace conservation::core
