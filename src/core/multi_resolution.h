// Multi-resolution scanning: run the same tableau request on progressively
// coarser roll-ups of the data. Coarsening absorbs violations shorter than
// a bucket, so the resolution at which a fail tableau *stops* finding
// intervals bounds the duration of the underlying violations — a cheap way
// to separate micro-jitter from structural problems before drilling in.

#ifndef CONSERVATION_CORE_MULTI_RESOLUTION_H_
#define CONSERVATION_CORE_MULTI_RESOLUTION_H_

#include <cstdint>
#include <vector>

#include "core/conservation_rule.h"
#include "core/tableau.h"
#include "series/resample.h"

namespace conservation::core {

struct ResolutionResult {
  // Ticks per bucket at this resolution (1 = native).
  int64_t factor = 1;
  int64_t coarse_n = 0;
  // Whole-series confidence at this resolution.
  double overall_confidence = 0.0;
  // The request's tableau at this resolution, with intervals mapped back
  // to *native* tick ranges.
  std::vector<interval::Interval> native_intervals;
  int64_t covered_native_ticks = 0;
  bool support_satisfied = false;
};

// Runs `request` at each factor (ascending; factor 1 = the input itself).
// Factors must be >= 1; a factor larger than n/2 is skipped.
util::Result<std::vector<ResolutionResult>> MultiResolutionScan(
    const series::CountSequence& counts, const TableauRequest& request,
    const std::vector<int64_t>& factors);

}  // namespace conservation::core

#endif  // CONSERVATION_CORE_MULTI_RESOLUTION_H_
