#include "core/delay.h"

#include "util/check.h"

namespace conservation::core {

DelayReport IntervalDelay(const series::CumulativeSeries& series, int64_t i,
                          int64_t j) {
  CR_CHECK(i >= 1 && i <= j && j <= series.n());
  DelayReport report;
  report.total_delay = series.SumB(i, j) - series.SumA(i, j);
  const double events = series.B(j);
  report.delay_per_event = events > 0.0 ? report.total_delay / events : 0.0;
  report.outstanding_at_end = series.B(j) - series.A(j);
  return report;
}

DelayReport TotalDelay(const series::CumulativeSeries& series) {
  return IntervalDelay(series, 1, series.n());
}

}  // namespace conservation::core
