#include "core/conservation_rule.h"

#include <utility>

namespace conservation::core {

util::Result<ConservationRule> ConservationRule::Create(
    std::vector<double> outbound_a, std::vector<double> inbound_b,
    const Options& options) {
  auto counts = series::CountSequence::Create(std::move(outbound_a),
                                              std::move(inbound_b));
  if (!counts.ok()) return counts.status();
  return Create(std::move(counts).value(), options);
}

util::Result<ConservationRule> ConservationRule::Create(
    series::CountSequence counts, const Options& options) {
  auto cumulative = std::make_unique<series::CumulativeSeries>(counts);
  if (!cumulative->Dominates()) {
    if (!options.enforce_dominance) {
      return util::Status::FailedPrecondition(
          "inbound cumulative B does not dominate outbound cumulative A; "
          "enable Options::enforce_dominance or preprocess the data");
    }
    counts = series::EnforceDominance(counts);
    cumulative = std::make_unique<series::CumulativeSeries>(counts);
  }
  return ConservationRule(std::move(counts), std::move(cumulative));
}

}  // namespace conservation::core
