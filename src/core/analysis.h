// Analyst utilities layered on top of tableau discovery: threshold sweeps,
// rolling confidence profiles, and severity ranking of intervals. These are
// the "further analysis" steps the paper's conclusion points at once a
// tableau has suggested interesting subsets of the data.

#ifndef CONSERVATION_CORE_ANALYSIS_H_
#define CONSERVATION_CORE_ANALYSIS_H_

#include <cstdint>
#include <vector>

#include "core/conservation_rule.h"
#include "core/tableau.h"

namespace conservation::core {

// One row of a threshold sweep.
struct SweepPoint {
  double c_hat = 0.0;
  size_t tableau_size = 0;
  int64_t covered = 0;
  bool support_satisfied = false;
};

// Runs DiscoverTableau over each threshold in `thresholds` (all other
// request fields taken from `base_request`), returning one point per
// threshold. Useful for picking c_hat: the paper notes the choice trades
// false negatives against pinpointing (§IV.D).
//
// base_request.num_threads > 1 (or 0 = hardware concurrency) fans the
// thresholds out across the shared thread pool — each inner discovery then
// runs its generation sequentially, since whole-request parallelism
// dominates for sweeps. Points come back in threshold order either way; on
// error, the failure for the earliest threshold is returned.
util::Result<std::vector<SweepPoint>> ThresholdSweep(
    const ConservationRule& rule, const TableauRequest& base_request,
    const std::vector<double>& thresholds);

// Rolling confidence: conf([t - window + 1, t]) for every t >= window,
// under `model`. Entry k corresponds to t = window + k. Undefined windows
// yield -1. O(n).
std::vector<double> ConfidenceProfile(const ConservationRule& rule,
                                      ConfidenceModel model, int64_t window);

// An interval scored by the conservation mass it misplaces.
struct SeverityEntry {
  interval::Interval interval;
  double confidence = 0.0;
  // Total unmatched delay inside the interval, sum_{l in I} (B_l - A_l)
  // above the model baseline: area_B - area_A. Bigger = worse.
  double misplaced_mass = 0.0;
};

// Ranks tableau rows by misplaced mass, descending — the triage order for
// a data-quality engineer.
std::vector<SeverityEntry> RankBySeverity(const ConservationRule& rule,
                                          ConfidenceModel model,
                                          const Tableau& tableau);

}  // namespace conservation::core

#endif  // CONSERVATION_CORE_ANALYSIS_H_
