// ConservationRule: the library's front door.
//
// Bundles a validated count pair with its cumulative preprocessing and
// exposes the paper's operations — confidence queries under any model, delay
// metrics, and hold/fail tableau discovery — behind one object.
//
//   auto rule = core::ConservationRule::Create(outbound, inbound);
//   CR_CHECK(rule.ok());
//   core::TableauRequest request;
//   request.type = core::TableauType::kFail;
//   request.model = core::ConfidenceModel::kBalance;
//   request.c_hat = 0.8;
//   request.s_hat = 0.1;
//   auto tableau = rule->DiscoverTableau(request);

#ifndef CONSERVATION_CORE_CONSERVATION_RULE_H_
#define CONSERVATION_CORE_CONSERVATION_RULE_H_

#include <memory>
#include <optional>
#include <vector>

#include "core/confidence.h"
#include "core/delay.h"
#include "core/model.h"
#include "core/tableau.h"
#include "series/cumulative.h"
#include "series/preprocess.h"
#include "series/sequence.h"
#include "util/status.h"

namespace conservation::core {

class ConservationRule {
 public:
  struct Options {
    // Apply the §II min/max cumulative swap when B does not dominate A.
    // When false and dominance is violated, Create fails.
    bool enforce_dominance = true;
  };

  // Validates, optionally preprocesses, and builds the cumulative layer.
  static util::Result<ConservationRule> Create(std::vector<double> outbound_a,
                                               std::vector<double> inbound_b,
                                               const Options& options);
  static util::Result<ConservationRule> Create(series::CountSequence counts,
                                               const Options& options);
  // Default-options overloads (a defaulted `Options{}` argument cannot be
  // used while the enclosing class is incomplete).
  static util::Result<ConservationRule> Create(std::vector<double> outbound_a,
                                               std::vector<double> inbound_b) {
    return Create(std::move(outbound_a), std::move(inbound_b), Options{});
  }
  static util::Result<ConservationRule> Create(series::CountSequence counts) {
    return Create(std::move(counts), Options{});
  }

  int64_t n() const { return cumulative_->n(); }
  const series::CountSequence& counts() const { return counts_; }
  const series::CumulativeSeries& cumulative() const { return *cumulative_; }

  // An evaluator bound to this rule's series; valid while the rule lives.
  ConfidenceEvaluator Evaluator(ConfidenceModel model) const {
    return ConfidenceEvaluator(cumulative_.get(), model);
  }

  // conf(i, j) under `model` (1-based inclusive); nullopt when undefined.
  std::optional<double> Confidence(ConfidenceModel model, int64_t i,
                                   int64_t j) const {
    return Evaluator(model).Confidence(i, j);
  }

  // Confidence of the whole series [1, n].
  std::optional<double> OverallConfidence(ConfidenceModel model) const {
    return Confidence(model, 1, n());
  }

  DelayReport Delay() const { return TotalDelay(*cumulative_); }

  util::Result<Tableau> DiscoverTableau(const TableauRequest& request) const {
    const ConfidenceEvaluator eval = Evaluator(request.model);
    return core::DiscoverTableau(eval, request);
  }

 private:
  ConservationRule(series::CountSequence counts,
                   std::unique_ptr<series::CumulativeSeries> cumulative)
      : counts_(std::move(counts)), cumulative_(std::move(cumulative)) {}

  series::CountSequence counts_;
  // unique_ptr keeps the series' address stable across moves of the rule,
  // so evaluators created before a move stay valid.
  std::unique_ptr<series::CumulativeSeries> cumulative_;
};

}  // namespace conservation::core

#endif  // CONSERVATION_CORE_CONSERVATION_RULE_H_
