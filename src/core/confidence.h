// ConfidenceEvaluator: O(1) interval confidence for all three models.
//
// Implements Definitions 2-4 of the paper via the closed forms of Theorem 1:
//   area_A(i,j) = (SA_j - SA_{i-1}) - (j-i+1) * H_i^A
//   area_B(i,j) = (SB_j - SB_{i-1}) - (j-i+1) * H_i^B
//   conf(i,j)   = area_A(i,j) / area_B(i,j)       (if the denominator > 0)
// where the baselines are (S_i = min_{k>=i}(B_k - A_k)):
//   balance: H_i^A = H_i^B = A_{i-1}
//   credit : H_i^A = A_{i-1} - S_i,   H_i^B = A_{i-1}
//   debit  : H_i^A = A_{i-1},         H_i^B = A_{i-1} + S_i

#ifndef CONSERVATION_CORE_CONFIDENCE_H_
#define CONSERVATION_CORE_CONFIDENCE_H_

#include <cstdint>
#include <optional>

#include "core/model.h"
#include "series/cumulative.h"
#include "util/check.h"

namespace conservation::core {

class ConfidenceEvaluator {
 public:
  // Does not take ownership: `series` must outlive the evaluator. Requires
  // B to dominate A (run series::EnforceDominance first if unsure).
  ConfidenceEvaluator(const series::CumulativeSeries* series,
                      ConfidenceModel model)
      : series_(series), model_(model) {
    CR_CHECK(series != nullptr);
  }

  ConfidenceModel model() const { return model_; }
  const series::CumulativeSeries& series() const { return *series_; }
  int64_t n() const { return series_->n(); }

  // Baselines H_i^A / H_i^B for 1 <= i <= n.
  double BaselineA(int64_t i) const {
    const double prev = series_->A(i - 1);
    return model_ == ConfidenceModel::kCredit
               ? prev - series_->SuffixMinGap(i)
               : prev;
  }
  double BaselineB(int64_t i) const {
    const double prev = series_->A(i - 1);
    return model_ == ConfidenceModel::kDebit
               ? prev + series_->SuffixMinGap(i)
               : prev;
  }

  // Model-dependent numerator/denominator areas for 1 <= i <= j <= n.
  // Non-negative when B dominates A (values are clamped at 0 to shed
  // floating-point noise).
  double AreaA(int64_t i, int64_t j) const {
    const double raw =
        series_->SumA(i, j) - static_cast<double>(j - i + 1) * BaselineA(i);
    return raw < 0.0 ? 0.0 : raw;
  }
  double AreaB(int64_t i, int64_t j) const {
    const double raw =
        series_->SumB(i, j) - static_cast<double>(j - i + 1) * BaselineB(i);
    return raw < 0.0 ? 0.0 : raw;
  }

  // The *balance-model* numerator area, regardless of this evaluator's
  // model. The credit-model fail-tableau algorithm (paper §III.D) anchors
  // its sparse endpoints on this quantity while still testing conf_c.
  double AreaABalance(int64_t i, int64_t j) const {
    const double raw = series_->SumA(i, j) -
                       static_cast<double>(j - i + 1) * series_->A(i - 1);
    return raw < 0.0 ? 0.0 : raw;
  }

  // conf(i,j); nullopt when the denominator is not positive (the paper
  // leaves the confidence undefined there).
  std::optional<double> Confidence(int64_t i, int64_t j) const {
    const double denom = AreaB(i, j);
    if (denom <= 0.0) return std::nullopt;
    return AreaA(i, j) / denom;
  }

 private:
  const series::CumulativeSeries* series_;
  ConfidenceModel model_;
};

}  // namespace conservation::core

#endif  // CONSERVATION_CORE_CONFIDENCE_H_
