#include "core/report.h"

#include <algorithm>

#include "util/string_util.h"

namespace conservation::core {

util::Result<QualityReport> BuildQualityReport(const ConservationRule& rule,
                                               const ReportOptions& options) {
  QualityReport report;
  report.n = rule.n();
  report.options = options;

  for (const ConfidenceModel model :
       {ConfidenceModel::kBalance, ConfidenceModel::kCredit,
        ConfidenceModel::kDebit}) {
    report.overall.emplace_back(ConfidenceModelName(model),
                                rule.OverallConfidence(model));
  }
  report.delay = rule.Delay();

  TableauRequest request;
  request.type = TableauType::kFail;
  request.model = options.model;
  request.c_hat = options.fail_c_hat;
  request.s_hat = options.support;
  request.epsilon = options.epsilon;
  auto tableau = rule.DiscoverTableau(request);
  if (!tableau.ok()) return tableau.status();
  report.fail_tableau = std::move(tableau).value();

  report.diagnoses = DiagnoseTableau(rule, report.fail_tableau);
  report.by_severity =
      RankBySeverity(rule, options.model, report.fail_tableau);

  const int64_t segment_length =
      options.segment_length > 0
          ? options.segment_length
          : std::max<int64_t>(1, rule.n() / 12);
  report.segments = SummarizeSegments(
      rule, options.model, UniformSegments(rule.n(), segment_length));
  return report;
}

std::string QualityReport::ToString() const {
  std::string out = util::StrFormat(
      "=== conservation-rule quality report (%lld ticks) ===\n",
      static_cast<long long>(n));

  out += "overall confidence:";
  for (const auto& [name, conf] : overall) {
    out += util::StrFormat(
        "  %s=%s", name.c_str(),
        conf.has_value() ? util::FormatNumber(*conf, 4).c_str() : "undef");
  }
  out += util::StrFormat(
      "\ntotal delay: %s tick-events (%.3f per inbound event), "
      "outstanding at end: %s\n\n",
      util::FormatNumber(delay.total_delay, 1).c_str(),
      delay.delay_per_event,
      util::FormatNumber(delay.outstanding_at_end, 1).c_str());

  out += util::StrFormat("fail tableau (%s, c_hat=%.2f):\n",
                         ConfidenceModelName(options.model),
                         options.fail_c_hat);
  if (fail_tableau.rows.empty()) {
    out += "  (empty — no interval fails the threshold)\n";
  }
  for (size_t k = 0;
       k < std::min(fail_tableau.rows.size(), options.max_rows); ++k) {
    const TableauRow& row = fail_tableau.rows[k];
    const ViolationDiagnosis& diagnosis = diagnoses[k];
    out += util::StrFormat(
        "  %-16s conf=%.4f  %s (%.0f%% recovered)\n",
        row.interval.ToString().c_str(), row.confidence,
        ViolationKindName(diagnosis.kind),
        diagnosis.recovered_fraction * 100.0);
  }
  if (fail_tableau.rows.size() > options.max_rows) {
    out += util::StrFormat("  ... (%zu more)\n",
                           fail_tableau.rows.size() - options.max_rows);
  }

  if (!by_severity.empty()) {
    out += "\nworst interval by misplaced mass: ";
    out += util::StrFormat(
        "%s (%s)\n", by_severity.front().interval.ToString().c_str(),
        util::FormatNumber(by_severity.front().misplaced_mass, 1).c_str());
  }

  out += "\nper-segment confidence:\n";
  for (size_t k = 0; k < std::min(segments.size(), options.max_rows); ++k) {
    const SegmentSummary& summary = segments[k];
    std::string bar;
    if (summary.confidence.has_value()) {
      const int filled = static_cast<int>(*summary.confidence * 20.0 + 0.5);
      bar = std::string(static_cast<size_t>(std::clamp(filled, 0, 20)), '#');
    }
    out += util::StrFormat(
        "  %s %-16s %-6s |%-20s|\n", summary.segment.label.c_str(),
        summary.segment.range.ToString().c_str(),
        summary.confidence.has_value()
            ? util::FormatNumber(*summary.confidence, 3).c_str()
            : "undef",
        bar.c_str());
  }
  if (segments.size() > options.max_rows) {
    out += util::StrFormat("  ... (%zu more)\n",
                           segments.size() - options.max_rows);
  }
  return out;
}

}  // namespace conservation::core
