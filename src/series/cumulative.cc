#include "series/cumulative.h"

#include <algorithm>
#include <limits>

namespace conservation::series {

CumulativeSeries::CumulativeSeries(const CountSequence& counts)
    : n_(counts.n()) {
  const size_t size = static_cast<size_t>(n_) + 1;
  A_.resize(size);
  B_.resize(size);
  SA_.resize(size);
  SB_.resize(size);
  A_[0] = B_[0] = SA_[0] = SB_[0] = 0.0;

  delta_ = std::numeric_limits<double>::infinity();
  for (int64_t l = 1; l <= n_; ++l) {
    const double a = counts.a(l);
    const double b = counts.b(l);
    const size_t k = static_cast<size_t>(l);
    A_[k] = A_[k - 1] + a;
    B_[k] = B_[k - 1] + b;
    SA_[k] = SA_[k - 1] + A_[k];
    SB_[k] = SB_[k - 1] + B_[k];
    if (a > 0.0) delta_ = std::min(delta_, a);
    if (b > 0.0) delta_ = std::min(delta_, b);
  }
  // CountSequence::Create guarantees at least one positive count.
  CR_CHECK(delta_ < std::numeric_limits<double>::infinity());

  suffix_min_gap_.resize(size + 1);
  suffix_min_gap_[size] = std::numeric_limits<double>::infinity();
  for (int64_t i = n_; i >= 1; --i) {
    const size_t k = static_cast<size_t>(i);
    suffix_min_gap_[k] = std::min(suffix_min_gap_[k + 1], B_[k] - A_[k]);
  }
  if (!suffix_min_gap_.empty()) {
    suffix_min_gap_[0] = suffix_min_gap_[std::min<size_t>(1, size - 1)];
  }
}

CumulativeSeries CumulativeSeries::View(int64_t n, const double* a,
                                        const double* b, const double* sa,
                                        const double* sb, const double* s,
                                        double delta) {
  CumulativeSeries view;
  view.n_ = n;
  view.delta_ = delta;
  view.view_a_ = a;
  view.view_b_ = b;
  view.view_sa_ = sa;
  view.view_sb_ = sb;
  view.view_s_ = s;
  return view;
}

bool CumulativeSeries::Dominates(double tolerance) const {
  for (int64_t l = 1; l <= n_; ++l) {
    if (B(l) - A(l) < -tolerance) return false;
  }
  return true;
}

}  // namespace conservation::series
