#include "series/cumulative.h"

#include <algorithm>
#include <cstring>
#include <limits>

namespace conservation::series {

CumulativeSeries::CumulativeSeries(const CountSequence& counts)
    : n_(counts.n()) {
  const size_t size = static_cast<size_t>(n_) + 1;
  A_.resize(size);
  B_.resize(size);
  SA_.resize(size);
  SB_.resize(size);
  A_[0] = B_[0] = SA_[0] = SB_[0] = 0.0;

  delta_ = std::numeric_limits<double>::infinity();
  for (int64_t l = 1; l <= n_; ++l) {
    const double a = counts.a(l);
    const double b = counts.b(l);
    const size_t k = static_cast<size_t>(l);
    A_[k] = A_[k - 1] + a;
    B_[k] = B_[k - 1] + b;
    SA_[k] = SA_[k - 1] + A_[k];
    SB_[k] = SB_[k - 1] + B_[k];
    if (a > 0.0) delta_ = std::min(delta_, a);
    if (b > 0.0) delta_ = std::min(delta_, b);
  }
  // CountSequence::Create guarantees at least one positive count.
  CR_CHECK(delta_ < std::numeric_limits<double>::infinity());

  suffix_min_gap_.resize(size + 1);
  suffix_min_gap_[size] = std::numeric_limits<double>::infinity();
  for (int64_t i = n_; i >= 1; --i) {
    const size_t k = static_cast<size_t>(i);
    suffix_min_gap_[k] = std::min(suffix_min_gap_[k + 1], B_[k] - A_[k]);
  }
  if (!suffix_min_gap_.empty()) {
    suffix_min_gap_[0] = suffix_min_gap_[std::min<size_t>(1, size - 1)];
  }
}

CumulativeSeries::AppendResult CumulativeSeries::Append(const double* a,
                                                        const double* b,
                                                        int64_t m) {
  // Views alias external arenas and cannot grow; only owned series append.
  CR_CHECK(view_a_ == nullptr);
  CR_CHECK(m >= 0);
  AppendResult result;
  result.old_n = n_;
  const double old_delta = delta_;
  const int64_t new_n = n_ + m;
  const size_t new_size = static_cast<size_t>(new_n) + 1;
  A_.resize(new_size);
  B_.resize(new_size);
  SA_.resize(new_size);
  SB_.resize(new_size);
  for (int64_t l = 1; l <= m; ++l) {
    const double av = a[l - 1];
    const double bv = b[l - 1];
    CR_CHECK(av >= 0.0 && bv >= 0.0);
    const size_t k = static_cast<size_t>(n_ + l);
    A_[k] = A_[k - 1] + av;
    B_[k] = B_[k - 1] + bv;
    SA_[k] = SA_[k - 1] + A_[k];
    SB_[k] = SB_[k - 1] + B_[k];
    if (av > 0.0) delta_ = std::min(delta_, av);
    if (bv > 0.0) delta_ = std::min(delta_, bv);
  }

  // Recompute the suffix minima downward from the new tail. Once an old
  // entry's recomputed value matches its stored bits, every entry below it
  // is fed identical inputs by the recurrence and is already correct, so
  // the walk stops. Bitwise (not ==) comparison keeps the early stop exact
  // across -0.0/+0.0.
  suffix_min_gap_.resize(new_size + 1);
  suffix_min_gap_[new_size] = std::numeric_limits<double>::infinity();
  result.first_changed_s = new_n + 1;
  for (int64_t i = new_n; i >= 1; --i) {
    const size_t k = static_cast<size_t>(i);
    const double v = std::min(suffix_min_gap_[k + 1], B_[k] - A_[k]);
    if (i <= result.old_n) {
      uint64_t new_bits;
      uint64_t old_bits;
      std::memcpy(&new_bits, &v, sizeof(new_bits));
      std::memcpy(&old_bits, &suffix_min_gap_[k], sizeof(old_bits));
      if (new_bits == old_bits) break;
    }
    suffix_min_gap_[k] = v;
    result.first_changed_s = i;
  }
  suffix_min_gap_[0] = suffix_min_gap_[std::min<size_t>(1, new_size - 1)];

  n_ = new_n;
  result.delta_decreased = delta_ < old_delta;
  return result;
}

CumulativeSeries CumulativeSeries::View(int64_t n, const double* a,
                                        const double* b, const double* sa,
                                        const double* sb, const double* s,
                                        double delta) {
  CumulativeSeries view;
  view.n_ = n;
  view.delta_ = delta;
  view.view_a_ = a;
  view.view_b_ = b;
  view.view_sa_ = sa;
  view.view_sb_ = sb;
  view.view_s_ = s;
  return view;
}

bool CumulativeSeries::Dominates(double tolerance) const {
  for (int64_t l = 1; l <= n_; ++l) {
    if (B(l) - A(l) < -tolerance) return false;
  }
  return true;
}

}  // namespace conservation::series
