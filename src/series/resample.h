// Resampling: re-aggregate count sequences at coarser granularities.
//
// Monitoring systems aggregate events at some native interval (the paper's
// datasets range from 5-minute SNMP buckets to monthly card statements).
// Analysts often work coarser: hourly roll-ups of minute data, daily
// roll-ups of half-hour people counts. Coarsening sums counts within
// buckets, which preserves totals and dominance but absorbs any violation
// shorter than a bucket — delays within one bucket become invisible
// (confidence can only increase for intervals aligned to bucket
// boundaries). The tests pin down exactly that semantics.

#ifndef CONSERVATION_SERIES_RESAMPLE_H_
#define CONSERVATION_SERIES_RESAMPLE_H_

#include <cstdint>

#include "series/sequence.h"

namespace conservation::series {

struct ResampleOptions {
  // Number of native ticks per output bucket (>= 1).
  int64_t factor = 1;
  // When the length is not a multiple of `factor`: keep a final partial
  // bucket (true) or drop the tail ticks (false).
  bool keep_partial_tail = true;
};

// Sums counts within consecutive buckets of `factor` ticks.
CountSequence Downsample(const CountSequence& counts,
                         const ResampleOptions& options);

// Maps a 1-based tick of the downsampled series back to the native range
// [first, last] it covers.
struct TickRange {
  int64_t first = 0;
  int64_t last = 0;
};
TickRange NativeRange(int64_t coarse_tick, const ResampleOptions& options,
                      int64_t native_n);

}  // namespace conservation::series

#endif  // CONSERVATION_SERIES_RESAMPLE_H_
