#include "series/store.h"

#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <limits>
#include <utility>

#include "obs/metrics.h"
#include "util/check.h"

namespace conservation::series {
namespace {

// "CRSSTORE" little-endian; bumped with any layout change.
constexpr uint64_t kMagic = 0x45524f5453535243ull;
// Version 2 appends the capacity field; version-1 arenas (capacity == n,
// same layout arithmetic) are still adopted.
constexpr uint32_t kVersion = 2;

// Fixed-width POD at arena offset 0. The remainder of the first kAlign
// bytes is zero padding, so the full-precision region starts page-aligned.
struct StoreHeader {
  uint64_t magic;
  uint32_t version;
  uint32_t reserved;
  int64_t n;
  int64_t block;
  double delta;
  uint64_t total_bytes;
  uint64_t full_offset;
  uint64_t maps_offset;
  uint64_t codes_offset;
  int64_t capacity;  // version >= 2; version-1 pads read as 0 (== n)
};
static_assert(sizeof(StoreHeader) <= SeriesStore::kAlign,
              "store header must fit in the alignment pad");

size_t AlignUp(size_t v) {
  return (v + SeriesStore::kAlign - 1) & ~(SeriesStore::kAlign - 1);
}

// Drops the file-backed pages fully inside [begin, end) (arena offsets),
// rounding inward to the runtime page size: madvise demands page-aligned
// addresses, and partial edge pages are shared with neighbouring regions.
void DropInward(uint8_t* base, size_t begin, size_t end) {
  const size_t page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  const size_t lo = (begin + page - 1) & ~(page - 1);
  const size_t hi = end & ~(page - 1);
  if (hi > lo) madvise(base + lo, hi - lo, MADV_DONTNEED);
}

}  // namespace

SeriesStore::Layout SeriesStore::Layout::For(int64_t n, int64_t block) {
  return ForCapacity(n, block, n);
}

SeriesStore::Layout SeriesStore::Layout::ForCapacity(int64_t n, int64_t block,
                                                     int64_t capacity) {
  CR_CHECK(n >= 1);
  CR_CHECK(block > 0);
  CR_CHECK(capacity >= n);
  Layout l;
  l.n = n;
  l.block = block;
  l.capacity = capacity;
  l.nb = SeriesSketch::NumBlocksFor(capacity, block);
  l.full_offset = kAlign;
  l.full_bytes = static_cast<size_t>(4 * (capacity + 1) + (capacity + 2)) *
                 sizeof(double);
  l.maps_offset = AlignUp(l.full_offset + l.full_bytes);
  l.maps_bytes = static_cast<size_t>(SeriesSketch::kNumColumns) * 3 *
                 static_cast<size_t>(l.nb) * sizeof(double);
  l.codes_offset = l.maps_offset + l.maps_bytes;
  l.codes_bytes = static_cast<size_t>(SeriesSketch::kNumColumns) *
                  static_cast<size_t>(l.nb * block);
  l.total_bytes = AlignUp(l.codes_offset + l.codes_bytes);
  return l;
}

SeriesStore::SeriesStore(SeriesStore&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      file_backed_(std::exchange(other.file_backed_, false)),
      tier_(other.tier_),
      layout_(other.layout_),
      delta_(other.delta_) {}

SeriesStore& SeriesStore::operator=(SeriesStore&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) munmap(data_, size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    file_backed_ = std::exchange(other.file_backed_, false);
    tier_ = other.tier_;
    layout_ = other.layout_;
    delta_ = other.delta_;
  }
  return *this;
}

SeriesStore::~SeriesStore() {
  if (data_ != nullptr) munmap(data_, size_);
}

SeriesStore SeriesStore::Build(const CumulativeSeries& series, int64_t block,
                               int64_t capacity) {
  const int64_t n = series.n();
  if (capacity < n) capacity = n;
  const Layout layout = Layout::ForCapacity(n, block, capacity);
  void* data = mmap(nullptr, layout.total_bytes, PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  CR_CHECK(data != MAP_FAILED);

  auto* bytes = static_cast<uint8_t*>(data);
  StoreHeader header{};
  header.magic = kMagic;
  header.version = kVersion;
  header.n = layout.n;
  header.block = layout.block;
  header.delta = series.delta();
  header.total_bytes = layout.total_bytes;
  header.full_offset = layout.full_offset;
  header.maps_offset = layout.maps_offset;
  header.codes_offset = layout.codes_offset;
  header.capacity = layout.capacity;
  std::memcpy(bytes, &header, sizeof(header));

  // Columns are laid out at capacity strides; the tail past the logical
  // length stays zero (anonymous pages), so the arena is a deterministic
  // function of (series, block, capacity) and Append can reproduce it.
  const int64_t cap = layout.capacity;
  auto* full = reinterpret_cast<double*>(bytes + layout.full_offset);
  std::memcpy(full + 0 * (cap + 1), series.a_data(), (n + 1) * sizeof(double));
  std::memcpy(full + 1 * (cap + 1), series.b_data(), (n + 1) * sizeof(double));
  std::memcpy(full + 2 * (cap + 1), series.sa_data(),
              (n + 1) * sizeof(double));
  std::memcpy(full + 3 * (cap + 1), series.sb_data(),
              (n + 1) * sizeof(double));
  std::memcpy(full + 4 * (cap + 1), series.suffix_min_gap_data(),
              (n + 2) * sizeof(double));

  BuildSketchBuffers(series, block,
                     reinterpret_cast<double*>(bytes + layout.maps_offset),
                     bytes + layout.codes_offset, layout.nb);

  SeriesStore store;
  store.data_ = data;
  store.size_ = layout.total_bytes;
  store.file_backed_ = false;
  store.tier_ = Tier::kFull;
  store.layout_ = layout;
  store.delta_ = series.delta();
  store.PublishGauges();
  return store;
}

void SeriesStore::Append(const CumulativeSeries& series,
                         const CumulativeSeries::AppendResult& delta) {
  CR_CHECK(data_ != nullptr);
  // File-backed arenas are mapped read-only (MAP_PRIVATE of the saved
  // bytes); only anonymous Build-ed stores grow in place.
  CR_CHECK(!file_backed_);
  CR_CHECK(delta.old_n == layout_.n);
  const int64_t old_n = delta.old_n;
  const int64_t new_n = series.n();
  CR_CHECK(new_n >= old_n && new_n <= layout_.capacity);

  auto* bytes = static_cast<uint8_t*>(data_);
  const int64_t cap = layout_.capacity;
  const int64_t block = layout_.block;
  auto* full = reinterpret_cast<double*>(bytes + layout_.full_offset);
  const int64_t m = new_n - old_n;
  const double* columns[4] = {series.a_data(), series.b_data(),
                              series.sa_data(), series.sb_data()};
  for (int c = 0; c < 4; ++c) {
    std::memcpy(full + c * (cap + 1) + (old_n + 1), columns[c] + old_n + 1,
                static_cast<size_t>(m) * sizeof(double));
  }
  // Suffix-min gaps: entries in [first_changed_s, new_n + 1] changed, plus
  // the index-0 mirror when S_1 did. The old +inf sentinel at old_n + 1 is
  // always inside the copied range.
  const int64_t s_from =
      delta.first_changed_s <= 1
          ? 0
          : std::min<int64_t>(delta.first_changed_s, old_n + 1);
  std::memcpy(full + 4 * (cap + 1) + s_from,
              series.suffix_min_gap_data() + s_from,
              static_cast<size_t>(new_n + 2 - s_from) * sizeof(double));

  // Sketch tier: for the cumulative columns only blocks holding an index
  // >= old_n + 1 can differ (earlier blocks were full and their values are
  // unchanged); for S, blocks from the changed suffix through the new
  // sentinel. Each block is re-encoded from scratch, so the bytes equal a
  // fresh BuildSketchBuffers of the grown series.
  auto* maps = reinterpret_cast<double*>(bytes + layout_.maps_offset);
  uint8_t* codes = bytes + layout_.codes_offset;
  const int64_t nb = layout_.nb;
  const int64_t padded = nb * block;
  for (int c = 0; c < 4; ++c) {
    const int64_t length = new_n + 1;
    for (int64_t b = (old_n + 1) / block; b <= new_n / block; ++b) {
      EncodeSketchBlock(columns[c], length, block, nb, b, maps + c * 3 * nb,
                        codes + c * padded);
    }
  }
  {
    const int c = SeriesSketch::kS;
    const int64_t length = new_n + 2;
    for (int64_t b = s_from / block; b <= (new_n + 1) / block; ++b) {
      EncodeSketchBlock(series.suffix_min_gap_data(), length, block, nb, b,
                        maps + c * 3 * nb, codes + c * padded);
    }
  }

  layout_.n = new_n;
  delta_ = series.delta();
  StoreHeader header;
  std::memcpy(&header, bytes, sizeof(header));
  header.n = new_n;
  header.delta = delta_;
  std::memcpy(bytes, &header, sizeof(header));
  PublishGauges();
}

util::Result<SeriesStore> SeriesStore::Adopt(void* data, size_t size,
                                             bool file_backed) {
  if (data == nullptr || size < sizeof(StoreHeader)) {
    return util::Status::InvalidArgument("series store: arena too small");
  }
  StoreHeader header;
  std::memcpy(&header, data, sizeof(header));
  if (header.magic != kMagic) {
    return util::Status::InvalidArgument("series store: bad magic");
  }
  if (header.version != 1 && header.version != kVersion) {
    return util::Status::InvalidArgument("series store: unsupported version");
  }
  if (header.n < 1 || header.block < 1 ||
      header.block > (int64_t{1} << 30)) {
    return util::Status::InvalidArgument("series store: corrupt header");
  }
  // Version-1 arenas predate the capacity field (their header pad reads 0)
  // and were always laid out at capacity == n.
  const int64_t capacity = header.version == 1 ? header.n : header.capacity;
  if (capacity < header.n) {
    return util::Status::InvalidArgument("series store: corrupt capacity");
  }
  const Layout layout = Layout::ForCapacity(header.n, header.block, capacity);
  if (header.total_bytes != layout.total_bytes ||
      header.full_offset != layout.full_offset ||
      header.maps_offset != layout.maps_offset ||
      header.codes_offset != layout.codes_offset || size != layout.total_bytes) {
    return util::Status::InvalidArgument(
        "series store: layout mismatch (truncated or corrupt arena)");
  }
  SeriesStore store;
  store.data_ = data;
  store.size_ = size;
  store.file_backed_ = file_backed;
  store.tier_ = Tier::kFull;
  store.layout_ = layout;
  store.delta_ = header.delta;
  store.PublishGauges();
  return store;
}

CumulativeSeries SeriesStore::MakeSeriesView() const {
  CR_CHECK(data_ != nullptr);
  const int64_t cap = layout_.capacity;
  const auto* full =
      reinterpret_cast<const double*>(base() + layout_.full_offset);
  return CumulativeSeries::View(layout_.n, full + 0 * (cap + 1),
                                full + 1 * (cap + 1), full + 2 * (cap + 1),
                                full + 3 * (cap + 1), full + 4 * (cap + 1),
                                delta_);
}

SeriesSketch SeriesStore::MakeSketchView() const {
  CR_CHECK(data_ != nullptr);
  return SeriesSketch::View(
      layout_.n, layout_.block,
      reinterpret_cast<const double*>(base() + layout_.maps_offset),
      base() + layout_.codes_offset, layout_.nb);
}

void SeriesStore::Evict(Tier tier) {
  CR_CHECK(data_ != nullptr);
  // Real page drops only for file-backed mappings: the pages refault from
  // the backing file on the next access. On an anonymous (Build-ed) arena
  // MADV_DONTNEED would replace the pages with zeros and destroy the data,
  // so eviction there is bookkeeping only.
  if (file_backed_) {
    auto* bytes = static_cast<uint8_t*>(data_);
    if (tier == Tier::kSketch || tier == Tier::kCold) {
      DropInward(bytes, layout_.full_offset, layout_.maps_offset);
    }
    if (tier == Tier::kCold) {
      // Keep the block maps and the SA code column (the screen's dominant
      // term); drop codes for A, B (columns 0-1) and SB, S (columns 3-4).
      const size_t cb = static_cast<size_t>(layout_.nb * layout_.block);
      const size_t codes = layout_.codes_offset;
      DropInward(bytes, codes, codes + 2 * cb);
      DropInward(bytes, codes + 3 * cb, codes + 5 * cb);
    }
  }
  tier_ = tier;
  PublishGauges();
}

size_t SeriesStore::ResidentBytesEstimate() const {
  if (data_ == nullptr) return 0;
  const size_t full_region = layout_.maps_offset - layout_.full_offset;
  const size_t cb = static_cast<size_t>(layout_.nb * layout_.block);
  switch (tier_) {
    case Tier::kFull:
      return layout_.total_bytes;
    case Tier::kSketch:
      return layout_.total_bytes - full_region;
    case Tier::kCold:
      return layout_.total_bytes - full_region - 4 * cb;
  }
  CR_UNREACHABLE();
}

void SeriesStore::PublishGauges() const {
  obs::Registry& registry = obs::Registry::Global();
  registry.Gauge("store.bytes_full").Set(static_cast<double>(size_));
  registry.Gauge("store.bytes_sketch")
      .Set(static_cast<double>(layout_.maps_bytes + layout_.codes_bytes));
  registry.Gauge("store.bytes_resident")
      .Set(static_cast<double>(ResidentBytesEstimate()));
}

}  // namespace conservation::series
