// SeriesStore: a tiered columnar arena for one tenant's series.
//
// All derived state the generators touch — the five full-precision columns
// (A, B, SA, SB, suffix_min_gap) plus the quantized sketch tier (block
// maps + 1-byte codes, series/sketch.h) — lives in ONE contiguous,
// mmap-able arena:
//
//   [ header | full-precision region | sketch maps + code columns ]
//              ^ page-aligned          ^ page-aligned
//
// io/store_io.h serializes the arena verbatim and loads it back with a
// single file mmap, so a loaded store starts with nothing resident and
// faults pages in on first touch. Residency is then tiered per tenant:
//
//   kFull    everything may be resident (~41 B/tick).
//   kSketch  the full-precision region is dropped; the sketch tier
//            (~5.5 B/tick) answers screen queries (interval/prune.h).
//   kCold    additionally drops every code column except SA, keeping the
//            block maps + one code column (~1.5 B/tick).
//
// Evict is an madvise(MADV_DONTNEED) on file-backed stores — dropped pages
// refault from the file on demand, which is what makes "cold tenants hold
// the sketch tier and fault in full precision when queried" work. On a
// Build-ed (anonymous) arena Evict only retiers the bookkeeping: DONTNEED
// would zero anonymous pages and destroy the data.
//
// MakeSeriesView / MakeSketchView return zero-copy views over the arena;
// generators run on them unchanged (CumulativeSeries::View resolves the
// same pointers the owning constructor would).
//
// Gauges (docs/OBSERVABILITY.md): store.bytes_full, store.bytes_sketch and
// store.bytes_resident track the arena and the current tier's estimated
// resident footprint.

#ifndef CONSERVATION_SERIES_STORE_H_
#define CONSERVATION_SERIES_STORE_H_

#include <cstddef>
#include <cstdint>

#include "series/cumulative.h"
#include "series/sketch.h"
#include "util/status.h"

namespace conservation::series {

class SeriesStore {
 public:
  enum class Tier { kFull, kSketch, kCold };

  // Arena layout derived purely from (n, block, capacity); stored and
  // recomputed on load for validation. All offsets are from the arena base;
  // the full and sketch regions start on kAlign boundaries so they can be
  // madvised independently. Region sizes and column strides come from
  // `capacity` (reserved ticks), so an appendable store can grow its
  // logical n in place without moving any column.
  struct Layout {
    int64_t n = 0;
    int64_t block = 0;
    int64_t capacity = 0;      // reserved ticks; == n when not appendable
    int64_t nb = 0;            // sketch block stride (capacity blocks)
    size_t full_offset = 0;    // A,B,SA,SB (cap+1 doubles each), S (cap+2)
    size_t full_bytes = 0;
    size_t maps_offset = 0;    // 5 x (lo,hi,w) x nb doubles
    size_t maps_bytes = 0;
    size_t codes_offset = 0;   // 5 contiguous columns of nb*block bytes
    size_t codes_bytes = 0;
    size_t total_bytes = 0;    // padded to kAlign
    static Layout For(int64_t n, int64_t block);
    static Layout ForCapacity(int64_t n, int64_t block, int64_t capacity);
  };

  // Region alignment inside the arena. A constant (not the runtime page
  // size) so the on-disk layout is stable; Evict rounds madvise spans
  // inward to the runtime page size.
  static constexpr size_t kAlign = 4096;

  SeriesStore() = default;
  SeriesStore(SeriesStore&& other) noexcept;
  SeriesStore& operator=(SeriesStore&& other) noexcept;
  SeriesStore(const SeriesStore&) = delete;
  SeriesStore& operator=(const SeriesStore&) = delete;
  ~SeriesStore();

  // Builds the arena (anonymous mmap) from an owning series: copies the
  // five columns and encodes the sketch tier in place. `capacity` reserves
  // room for future Append calls (0 = exactly n, not appendable further);
  // the padded arena is a deterministic function of (series, block,
  // capacity) — anonymous pages are zero-filled and the sketch encoder
  // writes degenerate maps for blocks past the logical length.
  static SeriesStore Build(const CumulativeSeries& series,
                           int64_t block = SeriesSketch::kDefaultBlock,
                           int64_t capacity = 0);

  // Grows the store in place to match `series`, which must be this store's
  // series after a CumulativeSeries::Append (`delta` is that call's
  // result). Copies only the appended column tails plus the changed
  // suffix-min range, and re-encodes only the sketch blocks an append can
  // touch — the last partial old block onward for the cumulative columns,
  // the changed-suffix blocks for S. The resulting arena is byte-identical
  // to Build(series, block, capacity). Anonymous (Build-ed) stores only;
  // series.n() must fit the reserved capacity.
  void Append(const CumulativeSeries& series,
              const CumulativeSeries::AppendResult& delta);

  // Adopts an externally mmap-ed arena (io/store_io.h): validates the
  // header against the recomputed layout and takes ownership of the
  // mapping (munmap on destruction). `file_backed` marks mappings whose
  // pages refault from a file, enabling real eviction.
  static util::Result<SeriesStore> Adopt(void* data, size_t size,
                                         bool file_backed);

  bool empty() const { return data_ == nullptr; }
  int64_t n() const { return layout_.n; }
  int64_t block() const { return layout_.block; }
  int64_t capacity() const { return layout_.capacity; }
  double delta() const { return delta_; }
  Tier tier() const { return tier_; }
  bool file_backed() const { return file_backed_; }

  // Zero-copy views over the arena; valid while the store lives. The
  // sketch view remains usable in every tier (its pages are never
  // evicted below kCold's kept subset only for non-SA code columns).
  CumulativeSeries MakeSeriesView() const;
  SeriesSketch MakeSketchView() const;

  // Drops (file-backed) or retiers (anonymous) residency; see header
  // comment. Moving to a warmer tier never prefaults — pages return on
  // first touch. Updates the store.* gauges.
  void Evict(Tier tier);

  size_t total_bytes() const { return layout_.total_bytes; }
  // Estimated resident bytes for the current tier (layout arithmetic, not
  // an RSS probe — deterministic for tests and gauges).
  size_t ResidentBytesEstimate() const;

  // Raw arena for serialization.
  const uint8_t* data() const { return static_cast<const uint8_t*>(data_); }
  size_t size() const { return size_; }

 private:
  void PublishGauges() const;
  const uint8_t* base() const { return static_cast<const uint8_t*>(data_); }

  void* data_ = nullptr;
  size_t size_ = 0;
  bool file_backed_ = false;
  Tier tier_ = Tier::kFull;
  Layout layout_;
  double delta_ = 0.0;
};

}  // namespace conservation::series

#endif  // CONSERVATION_SERIES_STORE_H_
