#include "series/sketch.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace conservation::series {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

inline double DecodeLower(double lo, double w, uint8_t code) {
  if (w == 0.0 || code == 0) return lo;
  return lo + static_cast<double>(code) * w;
}

inline double DecodeUpper(double lo, double hi, double w, uint8_t code) {
  if (w == 0.0 || code == 255) return hi;
  return lo + static_cast<double>(code + 1) * w;
}

// Encodes one block of `count` values starting at `values` into `codes`,
// writing the (lo, hi, w) map entries. The code bounds are verified (and
// nudged) per value so that DecodeLower <= v <= DecodeUpper holds bitwise;
// uniform-grid rounding alone cannot guarantee that under round-to-nearest.
void EncodeBlock(const double* values, int64_t count, double* lo_out,
                 double* hi_out, double* w_out, uint8_t* codes) {
  if (count <= 0) {
    *lo_out = kInf;
    *hi_out = -kInf;
    *w_out = 0.0;
    return;
  }
  double lo = values[0];
  double hi = values[0];
  for (int64_t k = 1; k < count; ++k) {
    lo = std::min(lo, values[k]);
    hi = std::max(hi, values[k]);
  }
  *lo_out = lo;
  *hi_out = hi;
  double w = 0.0;
  // Constant blocks (hi == lo), infinite endpoints (the suffix sentinel) and
  // span overflow all land in the w == 0 degenerate path: codes stay 0 and
  // decoding returns the exact block bounds. No NaN can form because w is
  // only used when it is a positive finite double.
  if (std::isfinite(lo) && std::isfinite(hi) && hi > lo) {
    const double span = hi - lo;
    if (std::isfinite(span)) {
      w = span / 255.0;
      if (!(w > 0.0) || !std::isfinite(w)) w = 0.0;
    }
  }
  *w_out = w;
  if (w == 0.0) return;  // codes are pre-zeroed by the caller
  for (int64_t k = 0; k < count; ++k) {
    const double v = values[k];
    double idx = std::floor((v - lo) / w);
    if (!(idx >= 0.0)) idx = 0.0;
    if (idx > 255.0) idx = 255.0;
    uint8_t code = static_cast<uint8_t>(idx);
    // Fix-up: rounding in (v - lo) / w can land one cell off in either
    // direction. Each loop terminates because DecodeLower(0) == lo <= v and
    // DecodeUpper(255) == hi >= v, and the two cannot fight: when the first
    // loop stops at code c, DecodeUpper(c) == DecodeLower(c + 1) > v.
    while (code > 0 && DecodeLower(lo, w, code) > v) --code;
    while (code < 255 && DecodeUpper(lo, hi, w, code) < v) ++code;
    codes[k] = code;
  }
}

void EncodeColumn(const double* column, int64_t length, int64_t block,
                  int64_t nb, double* maps, uint8_t* codes) {
  double* lo = maps + 0 * nb;
  double* hi = maps + 1 * nb;
  double* w = maps + 2 * nb;
  for (int64_t b = 0; b < nb; ++b) {
    const int64_t begin = b * block;
    const int64_t count = std::min<int64_t>(block, length - begin);
    EncodeBlock(column + begin, count, lo + b, hi + b, w + b,
                codes + begin);
  }
}

}  // namespace

void BuildSketchBuffers(const CumulativeSeries& series, int64_t block,
                        double* maps, uint8_t* codes,
                        int64_t stride_blocks) {
  CR_CHECK(block > 0);
  const int64_t n = series.n();
  const int64_t nb =
      stride_blocks > 0 ? stride_blocks : SeriesSketch::NumBlocksFor(n, block);
  CR_CHECK(nb >= SeriesSketch::NumBlocksFor(n, block));
  const int64_t padded = nb * block;
  std::fill(codes, codes + SeriesSketch::kNumColumns * padded, uint8_t{0});
  const double* columns[SeriesSketch::kNumColumns] = {
      series.a_data(), series.b_data(), series.sa_data(), series.sb_data(),
      series.suffix_min_gap_data()};
  for (int c = 0; c < SeriesSketch::kNumColumns; ++c) {
    const int64_t length = c == SeriesSketch::kS ? n + 2 : n + 1;
    EncodeColumn(columns[c], length, block, nb, maps + c * 3 * nb,
                 codes + c * padded);
  }
}

void EncodeSketchBlock(const double* column, int64_t length, int64_t block,
                       int64_t stride_blocks, int64_t b, double* maps_col,
                       uint8_t* codes_col) {
  CR_CHECK(block > 0 && b >= 0 && b < stride_blocks);
  const int64_t begin = b * block;
  const int64_t count = std::min<int64_t>(block, length - begin);
  uint8_t* codes = codes_col + begin;
  std::fill(codes, codes + block, uint8_t{0});
  EncodeBlock(count > 0 ? column + begin : column, count,
              maps_col + 0 * stride_blocks + b,
              maps_col + 1 * stride_blocks + b,
              maps_col + 2 * stride_blocks + b, codes);
}

SeriesSketch SeriesSketch::Build(const CumulativeSeries& series,
                                 int64_t block) {
  SeriesSketch sketch;
  sketch.n_ = series.n();
  sketch.block_ = block;
  sketch.nb_ = NumBlocksFor(series.n(), block);
  sketch.owned_maps_.resize(sketch.MapDoubles());
  sketch.owned_codes_.resize(sketch.CodeBytes());
  BuildSketchBuffers(series, block, sketch.owned_maps_.data(),
                     sketch.owned_codes_.data());
  return sketch;
}

SeriesSketch SeriesSketch::View(int64_t n, int64_t block, const double* maps,
                                const uint8_t* codes,
                                int64_t stride_blocks) {
  SeriesSketch sketch;
  sketch.n_ = n;
  sketch.block_ = block;
  sketch.nb_ = stride_blocks > 0 ? stride_blocks : NumBlocksFor(n, block);
  CR_CHECK(sketch.nb_ >= NumBlocksFor(n, block));
  sketch.view_maps_ = maps;
  sketch.view_codes_ = codes;
  return sketch;
}

double SeriesSketch::CodeLower(Column c, int64_t idx) const {
  const int64_t b = idx / block_;
  return DecodeLower(BlockLo(c, b), BlockWidth(c, b),
                     ColumnCodes(c)[idx]);
}

double SeriesSketch::CodeUpper(Column c, int64_t idx) const {
  const int64_t b = idx / block_;
  return DecodeUpper(BlockLo(c, b), BlockHi(c, b), BlockWidth(c, b),
                     ColumnCodes(c)[idx]);
}

void SeriesSketch::RangeBounds(Column c, int64_t lo_idx, int64_t hi_idx,
                               double* out_lo, double* out_hi) const {
  lo_idx = std::max<int64_t>(lo_idx, 0);
  hi_idx = std::min<int64_t>(hi_idx, column_length(c) - 1);
  double lo = kInf;
  double hi = -kInf;
  if (lo_idx <= hi_idx) {
    for (int64_t b = lo_idx / block_; b <= hi_idx / block_; ++b) {
      lo = std::min(lo, BlockLo(c, b));
      hi = std::max(hi, BlockHi(c, b));
    }
  }
  *out_lo = lo;
  *out_hi = hi;
}

}  // namespace conservation::series
