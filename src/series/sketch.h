// SeriesSketch: per-block quantized 1-byte code columns over the derived
// cumulative arrays, with per-block min/max quantization maps.
//
// The generators' anchor pre-pass (interval/prune.h) needs *conservative*
// lower/upper bounds on A, B, SA, SB and SuffixMinGap over index ranges:
// every bound must bracket the exact double in the full-precision column, so
// the screen's "no interval anchored here can pass the threshold" verdict
// has no false negatives. The sketch provides two granularities:
//
//   block maps  - per block of `block()` consecutive indices, the exact
//                 min/max of the column over that block (plain doubles, no
//                 quantization error). RangeBounds unions the maps of the
//                 covering blocks, so a range bound is block-granular but
//                 still exact-inclusive.
//   byte codes  - per index, a 1-byte code c into the block's uniform
//                 quantization grid [lo, lo + 256 * w). Decoding yields
//                 CodeLower(idx) <= column[idx] <= CodeUpper(idx), verified
//                 bitwise at encode time (the encoder nudges codes until the
//                 inequality holds under round-to-nearest arithmetic).
//
// Degenerate blocks are handled without NaN/overflow codes: a block whose
// values are all equal, or whose span (hi - lo) is not a positive finite
// double (e.g. the suffix_min_gap +infinity sentinel at index n+1), stores
// quantization width w = 0 and all-zero codes, and decoding falls back to
// the exact block map bounds.
//
// Memory: maps cost 3 doubles per block per column (~0.47 B/tick at the
// default 256-tick block); codes cost 1 B/tick per column. series/store.h
// lays both out in an mmap-able arena for the tiered resident-set story.

#ifndef CONSERVATION_SERIES_SKETCH_H_
#define CONSERVATION_SERIES_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "series/cumulative.h"

namespace conservation::series {

class SeriesSketch {
 public:
  enum Column { kA = 0, kB, kSA, kSB, kS, kNumColumns };

  // Default block span; small unit-test series (n < 2 * kDefaultBlock) keep
  // the screen off under the `auto` policy (interval/prune.h).
  static constexpr int64_t kDefaultBlock = 256;

  SeriesSketch() = default;

  // Builds maps and codes for all five columns in O(n).
  static SeriesSketch Build(const CumulativeSeries& series, int64_t block);

  // Zero-copy view over externally owned map/code arrays laid out exactly
  // like Build's (series/store.h arena). The arrays must outlive the view.
  // `stride_blocks` is the per-column block stride of the arena layout; 0
  // means NumBlocksFor(n, block). Appendable stores reserve capacity for
  // more ticks than the logical n, so their stride exceeds the logical
  // block count; blocks past the logical length hold (+inf, -inf, 0) maps
  // and zero codes, and bounded callers never consult them.
  static SeriesSketch View(int64_t n, int64_t block, const double* maps,
                           const uint8_t* codes, int64_t stride_blocks = 0);

  bool empty() const { return nb_ == 0; }
  int64_t n() const { return n_; }
  int64_t block() const { return block_; }
  // Per-column block stride of the map/code layout (== the logical block
  // count for Build and unstrided views; larger for capacity-reserving
  // store arenas). Columns are padded to a common stride.
  int64_t num_blocks() const { return nb_; }
  // Logical length of a column: n+1 for the cumulative columns, n+2 for
  // suffix_min_gap (whose final entry is the +infinity sentinel).
  int64_t column_length(Column c) const {
    return c == kS ? n_ + 2 : n_ + 1;
  }

  // Per-block quantization maps; valid for 0 <= b < num_blocks(). Blocks
  // past a column's logical length hold (+inf, -inf, 0) and are never
  // consulted by bounded callers.
  double BlockLo(Column c, int64_t b) const {
    return maps()[(static_cast<int64_t>(c) * 3 + 0) * nb_ + b];
  }
  double BlockHi(Column c, int64_t b) const {
    return maps()[(static_cast<int64_t>(c) * 3 + 1) * nb_ + b];
  }
  double BlockWidth(Column c, int64_t b) const {
    return maps()[(static_cast<int64_t>(c) * 3 + 2) * nb_ + b];
  }
  // Flat per-block arrays (length num_blocks()) for the SIMD block scans.
  const double* BlockLoData(Column c) const {
    return maps() + (static_cast<int64_t>(c) * 3 + 0) * nb_;
  }
  const double* BlockHiData(Column c) const {
    return maps() + (static_cast<int64_t>(c) * 3 + 1) * nb_;
  }

  // Per-index decoded bounds: CodeLower(c, i) <= column[i] <= CodeUpper(c, i)
  // bitwise, for 0 <= i < column_length(c).
  double CodeLower(Column c, int64_t idx) const;
  double CodeUpper(Column c, int64_t idx) const;

  // Conservative bounds on column[i] over all i in [lo_idx, hi_idx]
  // (intersected with the column's valid range), from the union of the
  // covering block maps. An empty intersection yields (+inf, -inf).
  void RangeBounds(Column c, int64_t lo_idx, int64_t hi_idx, double* out_lo,
                   double* out_hi) const;

  // Arena accessors (series/store.h serializes these verbatim).
  const double* maps() const {
    return owned_maps_.empty() ? view_maps_ : owned_maps_.data();
  }
  const uint8_t* codes() const {
    return owned_codes_.empty() ? view_codes_ : owned_codes_.data();
  }
  // Buffer sizes shared with the store layout: 5 columns x (lo, hi, w) maps
  // and 5 columns x (nb * block) padded codes.
  static int64_t NumBlocksFor(int64_t n, int64_t block) {
    return block <= 0 ? 0 : (n + 2 + block - 1) / block;
  }
  size_t MapDoubles() const {
    return static_cast<size_t>(kNumColumns) * 3 * static_cast<size_t>(nb_);
  }
  size_t CodeBytes() const {
    return static_cast<size_t>(kNumColumns) *
           static_cast<size_t>(nb_ * block_);
  }
  size_t MapBytes() const { return MapDoubles() * sizeof(double); }
  // Codes for one column (padded to nb * block entries).
  const uint8_t* ColumnCodes(Column c) const {
    return codes() + static_cast<int64_t>(c) * nb_ * block_;
  }

 private:
  int64_t n_ = 0;
  int64_t block_ = 0;
  int64_t nb_ = 0;
  std::vector<double> owned_maps_;
  std::vector<uint8_t> owned_codes_;
  // Set only for views; owners resolve through the vectors so that copies
  // and moves never dangle.
  const double* view_maps_ = nullptr;
  const uint8_t* view_codes_ = nullptr;
};

// Fills `maps` (SeriesSketch::MapDoubles layout) and `codes`
// (SeriesSketch::CodeBytes layout) for the given series; shared by Build
// and the store arena builder. `stride_blocks` (0 = NumBlocksFor(n, block))
// selects the per-column layout stride; stride blocks past the logical
// length get the degenerate (+inf, -inf, 0) maps and zero codes, so a
// capacity-padded arena is a deterministic function of (series, block,
// stride) — the store's append path relies on this for bit-identity.
void BuildSketchBuffers(const CumulativeSeries& series, int64_t block,
                        double* maps, uint8_t* codes,
                        int64_t stride_blocks = 0);

// Re-encodes block `b` of one column in place: `maps_col` points at the
// column's 3 * stride map doubles, `codes_col` at its stride * block codes,
// `length` is the column's logical length. Zeroes the block's codes first
// (the encoder's degenerate path leaves them untouched), so the result is
// byte-identical to a fresh BuildSketchBuffers of the grown series — the
// store append path rewrites only the blocks an append can change.
void EncodeSketchBlock(const double* column, int64_t length, int64_t block,
                       int64_t stride_blocks, int64_t b, double* maps_col,
                       uint8_t* codes_col);

}  // namespace conservation::series

#endif  // CONSERVATION_SERIES_SKETCH_H_
