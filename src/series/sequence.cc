#include "series/sequence.h"

#include <cmath>

#include "util/string_util.h"

namespace conservation::series {

util::Result<CountSequence> CountSequence::Create(
    std::vector<double> outbound_a, std::vector<double> inbound_b) {
  if (outbound_a.size() != inbound_b.size()) {
    return util::Status::InvalidArgument(util::StrFormat(
        "sequence lengths differ: |a|=%zu |b|=%zu", outbound_a.size(),
        inbound_b.size()));
  }
  if (outbound_a.empty()) {
    return util::Status::InvalidArgument("sequences must be non-empty");
  }
  bool a_has_positive = false;
  bool b_has_positive = false;
  for (size_t k = 0; k < outbound_a.size(); ++k) {
    const double av = outbound_a[k];
    const double bv = inbound_b[k];
    if (!std::isfinite(av) || !std::isfinite(bv)) {
      return util::Status::InvalidArgument(
          util::StrFormat("non-finite count at tick %zu", k + 1));
    }
    if (av < 0.0 || bv < 0.0) {
      return util::Status::InvalidArgument(
          util::StrFormat("negative count at tick %zu", k + 1));
    }
    a_has_positive |= av > 0.0;
    b_has_positive |= bv > 0.0;
  }
  if (!a_has_positive && !b_has_positive) {
    return util::Status::InvalidArgument(
        "both sequences are identically zero");
  }
  return CountSequence(std::move(outbound_a), std::move(inbound_b));
}

CountSequence CountSequence::Prefix(int64_t m) const {
  CR_CHECK(m >= 1 && m <= n());
  std::vector<double> a(a_.begin(), a_.begin() + m);
  std::vector<double> b(b_.begin(), b_.begin() + m);
  return CountSequence(std::move(a), std::move(b));
}

CountSequence CountSequence::Scaled(double factor) const {
  CR_CHECK(factor > 0.0);
  std::vector<double> a = a_;
  std::vector<double> b = b_;
  for (double& v : a) v *= factor;
  for (double& v : b) v *= factor;
  return CountSequence(std::move(a), std::move(b));
}

}  // namespace conservation::series
