// Domain-independent preprocessing from paper §II.
//
// The confidence definitions assume B dominates A (B_l >= A_l for all l).
// When raw data violates this, the paper suggests the cumulative swap
//   A'_l := min{A_l, B_l},  B'_l := max{A_l, B_l},
// which preserves monotonicity and therefore yields valid (non-negative)
// instantaneous sequences a', b'.

#ifndef CONSERVATION_SERIES_PREPROCESS_H_
#define CONSERVATION_SERIES_PREPROCESS_H_

#include <vector>

#include "series/sequence.h"
#include "util/status.h"

namespace conservation::series {

// Applies the min/max cumulative swap and returns the corrected sequence.
// If B already dominates A the result equals the input.
CountSequence EnforceDominance(const CountSequence& counts);

// Convenience entry point: validates raw vectors, then enforces dominance.
util::Result<CountSequence> MakeDominatedSequence(std::vector<double> a,
                                                  std::vector<double> b);

}  // namespace conservation::series

#endif  // CONSERVATION_SERIES_PREPROCESS_H_
