#include "series/preprocess.h"

#include <algorithm>
#include <utility>

#include "series/cumulative.h"

namespace conservation::series {

CountSequence EnforceDominance(const CountSequence& counts) {
  const int64_t n = counts.n();
  std::vector<double> a(static_cast<size_t>(n));
  std::vector<double> b(static_cast<size_t>(n));
  double prev_a_cum = 0.0;  // A'_{l-1}
  double prev_b_cum = 0.0;  // B'_{l-1}
  double raw_a_cum = 0.0;   // A_l
  double raw_b_cum = 0.0;   // B_l
  for (int64_t l = 1; l <= n; ++l) {
    raw_a_cum += counts.a(l);
    raw_b_cum += counts.b(l);
    const double a_cum = std::min(raw_a_cum, raw_b_cum);
    const double b_cum = std::max(raw_a_cum, raw_b_cum);
    // min/max of nondecreasing functions is nondecreasing, so the diffs are
    // non-negative; max(..., 0) guards rounding only.
    a[static_cast<size_t>(l - 1)] = std::max(a_cum - prev_a_cum, 0.0);
    b[static_cast<size_t>(l - 1)] = std::max(b_cum - prev_b_cum, 0.0);
    prev_a_cum = a_cum;
    prev_b_cum = b_cum;
  }
  auto result = CountSequence::Create(std::move(a), std::move(b));
  // Input was a valid CountSequence; the swap cannot invalidate it.
  CR_CHECK(result.ok());
  return std::move(result).value();
}

util::Result<CountSequence> MakeDominatedSequence(std::vector<double> a,
                                                  std::vector<double> b) {
  auto counts = CountSequence::Create(std::move(a), std::move(b));
  if (!counts.ok()) return counts.status();
  return EnforceDominance(counts.value());
}

}  // namespace conservation::series
