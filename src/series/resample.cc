#include "series/resample.h"

#include <algorithm>

#include "util/check.h"

namespace conservation::series {

CountSequence Downsample(const CountSequence& counts,
                         const ResampleOptions& options) {
  CR_CHECK(options.factor >= 1);
  const int64_t n = counts.n();
  const int64_t full_buckets = n / options.factor;
  const bool has_tail = n % options.factor != 0;
  const int64_t buckets =
      full_buckets + (has_tail && options.keep_partial_tail ? 1 : 0);
  CR_CHECK(buckets >= 1);

  std::vector<double> a(static_cast<size_t>(buckets), 0.0);
  std::vector<double> b(static_cast<size_t>(buckets), 0.0);
  for (int64_t t = 1; t <= n; ++t) {
    const int64_t bucket = (t - 1) / options.factor;
    if (bucket >= buckets) break;  // dropped tail
    a[static_cast<size_t>(bucket)] += counts.a(t);
    b[static_cast<size_t>(bucket)] += counts.b(t);
  }
  auto result = CountSequence::Create(std::move(a), std::move(b));
  CR_CHECK(result.ok());
  return std::move(result).value();
}

TickRange NativeRange(int64_t coarse_tick, const ResampleOptions& options,
                      int64_t native_n) {
  CR_CHECK(coarse_tick >= 1);
  TickRange range;
  range.first = (coarse_tick - 1) * options.factor + 1;
  range.last = std::min(native_n, coarse_tick * options.factor);
  CR_CHECK(range.first <= native_n);
  return range;
}

}  // namespace conservation::series
