// CountSequence: the validated input of a conservation rule.
//
// A conservation rule relates two non-negative numeric sequences over the
// same uniformly-spaced ordered attribute (paper §II):
//   b = <b_1..b_n>  "inbound" counts (events),
//   a = <a_1..a_n>  "outbound" counts (responses to those events).
//
// Indexing convention used throughout this library: time ticks are 1-based,
// matching the paper, so element k of the underlying std::vector is a_{k+1}.
// See Interval in interval/interval.h.

#ifndef CONSERVATION_SERIES_SEQUENCE_H_
#define CONSERVATION_SERIES_SEQUENCE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "util/status.h"

namespace conservation::series {

class CountSequence {
 public:
  // Validates and adopts the two sequences. Requirements:
  //   * equal, non-zero length;
  //   * all values finite and non-negative;
  //   * neither sequence identically zero (the algorithms' Delta — the
  //     minimum positive count — must exist, paper §III.A).
  static util::Result<CountSequence> Create(std::vector<double> outbound_a,
                                            std::vector<double> inbound_b);

  // Number of time ticks n.
  int64_t n() const { return static_cast<int64_t>(a_.size()); }

  // 1-based element access: a(1) is the first outbound count.
  double a(int64_t t) const { return a_[static_cast<size_t>(t - 1)]; }
  double b(int64_t t) const { return b_[static_cast<size_t>(t - 1)]; }

  const std::vector<double>& outbound() const { return a_; }
  const std::vector<double>& inbound() const { return b_; }

  // The first `m` ticks as a new sequence (1 <= m <= n). Used by the
  // scalability benchmarks, which sweep over prefixes of a large trace.
  CountSequence Prefix(int64_t m) const;

  // Both sequences multiplied by `factor` (> 0). The candidate-generation
  // algorithms are scale invariant (paper §III.A); tests use this to verify.
  CountSequence Scaled(double factor) const;

 private:
  CountSequence(std::vector<double> a, std::vector<double> b)
      : a_(std::move(a)), b_(std::move(b)) {}

  std::vector<double> a_;  // outbound
  std::vector<double> b_;  // inbound
};

}  // namespace conservation::series

#endif  // CONSERVATION_SERIES_SEQUENCE_H_
