// CumulativeSeries: the linear-time preprocessing layer of the paper (§III).
//
// From a CountSequence it derives, in O(n):
//   A_l = sum_{k<=l} a_k,  B_l = sum_{k<=l} b_k        (cumulative counts)
//   SA_l = sum_{k<=l} A_k, SB_l = sum_{k<=l} B_k       (prefix sums of those)
//   S_i = min_{i<=k<=n} (B_k - A_k)                    (suffix minimum gaps)
//   Delta = minimum positive a_i or b_i
//
// With these, every area/confidence query used by the candidate-generation
// algorithms is O(1):
//   sum_{l=i..j} A_l = SA_j - SA_{i-1}
//   area_A(i,j)      = (SA_j - SA_{i-1}) - (j-i+1) * H_i^A      (Theorem 1)
//
// All indices are 1-based per the paper; A(0) == B(0) == 0.

#ifndef CONSERVATION_SERIES_CUMULATIVE_H_
#define CONSERVATION_SERIES_CUMULATIVE_H_

#include <cstdint>
#include <vector>

#include "series/sequence.h"
#include "util/check.h"

namespace conservation::series {

class CumulativeSeries {
 public:
  // Builds all derived arrays in O(n).
  explicit CumulativeSeries(const CountSequence& counts);

  // Zero-copy view over externally owned arrays laid out exactly like the
  // owned vectors (a/b/sa/sb of length n+1, s of length n+2 with the
  // +infinity sentinel at [n+1]); series/store.h uses this to run the
  // generators straight off an mmap-ed arena. The arrays must outlive the
  // view; `delta` is the stored minimum positive count.
  static CumulativeSeries View(int64_t n, const double* a, const double* b,
                               const double* sa, const double* sb,
                               const double* s, double delta);

  int64_t n() const { return n_; }

  // Result of an in-place Append: which prefix state survived the batch.
  struct AppendResult {
    int64_t old_n = 0;
    // Smallest index i <= old_n whose suffix-min gap S_i changed bitwise
    // (old_n + 1 when every old S_i is unchanged). Appends can only lower a
    // suffix of the old gaps, so [first_changed_s, old_n] is exactly the
    // dirty anchor range for the credit/debit models.
    int64_t first_changed_s = 0;
    // True when a new tick introduced a smaller positive count, lowering
    // delta(). The area-based algorithms' threshold ladders depend on
    // delta, so incremental maintenance must rebuild when this fires.
    bool delta_decreased = false;
  };

  // Appends m ticks (a[k], b[k] for k in [0, m)) in place, extending every
  // derived array with the constructor's exact recurrences so the result is
  // bitwise identical to rebuilding from the concatenated counts. The
  // suffix-min gaps are recomputed downward with a bitwise-equality early
  // stop, so the cost is O(m + changed suffix). Owned series only (views
  // cannot grow); counts must be non-negative.
  AppendResult Append(const double* a, const double* b, int64_t m);

  // Cumulative counts; valid for 0 <= l <= n. A(0) == B(0) == 0.
  double A(int64_t l) const { return a_data()[l]; }
  double B(int64_t l) const { return b_data()[l]; }

  // sum_{l=i..j} A_l for 1 <= i <= j <= n (and 0 when i > j).
  double SumA(int64_t i, int64_t j) const {
    if (i > j) return 0.0;
    return sa_data()[j] - sa_data()[i - 1];
  }
  double SumB(int64_t i, int64_t j) const {
    if (i > j) return 0.0;
    return sb_data()[j] - sb_data()[i - 1];
  }

  // S_i = min_{i<=k<=n} (B_k - A_k), for 1 <= i <= n. This is the "credit"
  // applied when discounting unmatched history (paper Definitions 3-4);
  // using the suffix minimum rather than B_{i-1}-A_{i-1} guarantees that the
  // shifted B still dominates the shifted A.
  double SuffixMinGap(int64_t i) const { return suffix_min_gap_data()[i]; }

  // The minimum positive a_i or b_i. The approximation algorithms use it as
  // the base area unit: the smallest non-zero area of any interval is >= Delta.
  double delta() const { return delta_; }

  // Raw flat views for the generators' inner-loop kernels
  // (interval/kernel.h): contiguous arrays indexed exactly like the
  // accessors above (a_data()[l] == A(l), valid for 0 <= l <= n;
  // suffix_min_gap_data()[i] == SuffixMinGap(i), valid for 1 <= i <= n+1).
  const double* a_data() const { return view_a_ ? view_a_ : A_.data(); }
  const double* b_data() const { return view_b_ ? view_b_ : B_.data(); }
  const double* sa_data() const { return view_sa_ ? view_sa_ : SA_.data(); }
  const double* sb_data() const { return view_sb_ ? view_sb_ : SB_.data(); }
  const double* suffix_min_gap_data() const {
    return view_s_ ? view_s_ : suffix_min_gap_.data();
  }

  // True when B dominates A (B_l >= A_l for all l), the standing assumption
  // of the paper. A small negative tolerance absorbs floating-point noise.
  bool Dominates(double tolerance = 1e-9) const;

  // Total conservation delay sum_{l=1..n} (B_l - A_l): by Lemma 2 this is
  // the delay of every rightward perfect matching (after topping A up to B).
  double TotalDelay() const { return sb_data()[n_] - sa_data()[n_]; }

 private:
  CumulativeSeries() = default;

  int64_t n_ = 0;
  std::vector<double> A_;               // size n+1
  std::vector<double> B_;               // size n+1
  std::vector<double> SA_;              // size n+1, SA_[l] = sum_{k<=l} A_k
  std::vector<double> SB_;              // size n+1
  std::vector<double> suffix_min_gap_;  // size n+2; [n+1] = +infinity sentinel
  double delta_ = 0.0;
  // External arrays for View instances; owners leave these null and resolve
  // through the vectors, so copies and moves never dangle.
  const double* view_a_ = nullptr;
  const double* view_b_ = nullptr;
  const double* view_sa_ = nullptr;
  const double* view_sb_ = nullptr;
  const double* view_s_ = nullptr;
};

}  // namespace conservation::series

#endif  // CONSERVATION_SERIES_CUMULATIVE_H_
