// Resumable walk states for cross-anchor batched execution.
//
// The per-anchor sparsification walks of AB and AB-opt are serial: every
// probe's address depends on the previous probe's outcome, so one anchor's
// walk can never fill a SIMD lane, and its accept/reject branch — a
// binary-search direction, i.e. data-random — mispredicts every other
// probe (BENCH_kernel.json's ~1.0x end-to-end ceiling against 1.4-3.5x
// op-level wins). This header turns the walk into an explicit state
// machine — probe address out, probed area in — so a scheduler can keep W
// independent walks in flight with their search registers in
// structure-of-arrays lane buffers, advancing all lanes per round through
// one branchless kernel step (kernel_simd.h SparseWalkRound) and touching
// per-walk scalar code only when a lane's search completes (~1 round in
// log n per lane).
//
// Bit-identity contract: a walk advanced this way visits exactly the probe
// sequence of the scalar per-anchor code (area_based_opt.cc's
// LargestEndpointWithin loop), counts exactly the probes that code counts,
// and produces the same breakpoint list bit for bit — regardless of how
// many other walks interleave between its probes. Checkpointing a state
// mid-walk (it is a plain copyable value) and resuming later is therefore
// exact, which tests/walk_resume_test.cc exercises at adversarial
// boundaries.
//
// The walk width knob (GeneratorOptions::walk_width) picks W; 0 = auto
// (backend lane count x unroll factor). Width 1 — and any scalar backend,
// including CONSERVATION_SIMD=off builds — delegates to the untouched
// per-anchor scalar walk, which stays the reference semantics.

#ifndef CONSERVATION_INTERVAL_WALK_H_
#define CONSERVATION_INTERVAL_WALK_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "interval/generator.h"
#include "interval/kernel.h"
#include "interval/kernel_simd.h"

namespace conservation::interval::internal {

// Lane capacity of one SparseWalkRound call: completions are reported as a
// uint64_t bitmask. A scheduler running wider than this advances its lanes
// in banks of 64 within each round.
inline constexpr int kMaxRoundLanes = 64;

// Scheduler-level cap on concurrently active walks. Wider keeps more
// independent probe chains in flight (better latency hiding) at the cost
// of lane-buffer footprint; 256 lanes is ~12 KB of SoA state, still
// L1-resident alongside the hot sp lines.
inline constexpr int kMaxWalkWidth = 256;

// Active-walk width for a generator run: explicit option value, or
// backend lanes x unroll on auto. The auto unroll (128 walks on a 4-lane
// backend) is chosen to saturate the core's memory-level parallelism:
// each lane's next probe is a dependent load, so only independent walks
// can overlap the binary searches' cache traffic, and measured throughput
// peaks near 128 before lane-buffer footprint starts crowding L1. The
// scalar backend always walks one anchor at a time.
inline int ResolveWalkWidth(const GeneratorOptions& options,
                            SimdBackend backend) {
  if (backend == SimdBackend::kScalar) return 1;
  if (options.walk_width > 0) {
    return std::min(options.walk_width, kMaxWalkWidth);
  }
  return std::min(SimdLaneWidth(backend) * 32, kMaxWalkWidth);
}

// Structure-of-arrays lane state for a walk scheduler: one slot per
// concurrently active walk, laid out contiguously so the round kernel
// reads and writes lane registers with plain vector loads/stores. The
// anchor-hoisted fields (i, sp_prev, h_sp) change only when a slot is
// (re)filled; the search registers (lo..probe_area) are mutated in place
// by SparseWalkRound between phase changes.
struct WalkLaneBuffers {
  std::vector<int64_t> i;
  std::vector<double> sp_prev;
  std::vector<double> h_sp;
  std::vector<int64_t> lo;
  std::vector<int64_t> hi;
  std::vector<double> threshold;
  // Generic probe scratch for gather-form rounds (AB's exists probes and
  // pending-confidence flushes).
  std::vector<int64_t> j;
  std::vector<double> area;

  explicit WalkLaneBuffers(int width)
      : i(static_cast<size_t>(width)),
        sp_prev(static_cast<size_t>(width)),
        h_sp(static_cast<size_t>(width)),
        lo(static_cast<size_t>(width)),
        hi(static_cast<size_t>(width)),
        threshold(static_cast<size_t>(width)),
        j(static_cast<size_t>(width)),
        area(static_cast<size_t>(width)) {}

  // Copies lane `from`'s state into lane `to` (slot compaction after a
  // walk retires).
  void MoveLane(int to, int from) {
    const size_t t = static_cast<size_t>(to);
    const size_t f = static_cast<size_t>(from);
    i[t] = i[f];
    sp_prev[t] = sp_prev[f];
    h_sp[t] = h_sp[f];
    lo[t] = lo[f];
    hi[t] = hi[f];
    threshold[t] = threshold[f];
  }

  // Round-kernel argument block for the lane bank starting at `base`
  // (the kernel's completion mask covers kMaxRoundLanes lanes per call).
  WalkRoundArgs RoundArgs(int base = 0) {
    const size_t o = static_cast<size_t>(base);
    return WalkRoundArgs{nullptr,      sp_prev.data() + o,   h_sp.data() + o,
                         i.data() + o, threshold.data() + o, lo.data() + o,
                         hi.data() + o};
  }
};

// Shared chunk-level context for AB-opt walks: everything the per-anchor
// scalar code closes over.
struct AbOptWalkContext {
  int64_t n = 0;
  double delta = 0.0;
  double growth = 0.0;
  // Credit-model fail tableaux prepend a zero-area search and the
  // length-geometric zero-prefix probes (see area_based_opt.cc).
  bool credit_fail = false;
  const std::vector<int64_t>* zero_prefix_lengths = nullptr;
  // The kernel's sparsification cumulative array (ConfidenceKernel::sp()),
  // for re-deriving a completed search's accepted-probe area — the round
  // kernel does not maintain a result_area register (see WalkRoundArgs).
  const double* sp = nullptr;
};

// One anchor's AB-opt breakpoint construction as a resumable state
// machine. The walk is a chain of largest-endpoint binary searches:
//
//   kZeroSearch  (credit_fail only) largest j with area == 0 over [i, n];
//                on completion emits the zero-prefix breakpoints and the
//                zero-area end, then starts kInitSearch.
//   kInitSearch  largest j with area <= Delta over [i, n]; completion
//                yields the initial breakpoint cur (forced to i when even
//                [i, i] exceeds Delta).
//   kNextSearch  largest j with area <= max(area(cur), Delta)*(1+eps)
//                over [cur+1, n]; repeats until cur reaches n.
//   kEvaluate    breakpoints complete; ready for the confidence batch.
//
// Two stepping forms drive it, interchangeable probe for probe:
//   - Advance(area): consume one probe scalar-style (probe_j() exposes the
//     next probe endpoint). Used by the resume tests and anywhere a single
//     walk is stepped in isolation.
//   - StoreRegs/CompleteSearch: park the in-progress search registers in
//     WalkLaneBuffers lanes, let kernel SparseWalkRound advance all lanes
//     branchlessly, and pull a lane back in only when its search finished.
//
// area(cur) never costs a counted probe. The lane registers end a search
// holding only lo/hi (the round kernel maintains no result or probe-area
// register — see WalkRoundArgs); completion reconstructs the rest:
//   - result == lo - 1 always (accepting a probe sets result = mid and
//     lo = mid + 1 in the same step; both start at lo0 - 1 / lo0).
//   - If any probe was accepted, the last accepted one was at result, and
//     its area re-derives from the lane's hoisted (sp_prev, h_sp)
//     baselines — the identical expression the kernel evaluated when it
//     accepted that probe, hence the identical double.
//   - If every probe failed (forced advance), the final probe was at
//     exactly lo == the forced point == result + 1 (hi shrinks onto lo
//     before the range empties), and its area re-derives the same way.
// Both reproduce kernel.SparseArea(cur) bit for bit, so the growth
// target — and with it every later probe — matches the scalar walk.
class AbOptWalkState {
 public:
  enum class Phase { kZeroSearch, kInitSearch, kNextSearch, kEvaluate };

  // Resets this state to the start of anchor i's walk. The breakpoint
  // storage is reused across Begin calls (the schedulers recycle retired
  // walk slots).
  void Begin(int64_t i, const AbOptWalkContext& ctx) {
    anchor_ = i;
    probes_ = 0;
    breakpoints_.clear();
    if (ctx.credit_fail) {
      StartSearch(Phase::kZeroSearch, i, ctx.n, 0.0);
    } else {
      StartSearch(Phase::kInitSearch, i, ctx.n, ctx.delta);
    }
  }

  // Endpoint of the next sparsification-area probe. Valid while !done().
  int64_t probe_j() const { return lo_ + (hi_ - lo_) / 2; }

  bool done() const { return phase_ == Phase::kEvaluate; }

  // Consumes the probed area for probe_j() and advances the machine.
  // Branchless accept/reject mirror of one SparseWalkRound lane step.
  void Advance(double area, const AbOptWalkContext& ctx) {
    ++probes_;
    probe_area_ = area;
    const int64_t mid = probe_j();
    const bool ok = area <= threshold_;
    result_ = ok ? mid : result_;
    result_area_ = ok ? area : result_area_;
    lo_ = ok ? mid + 1 : lo_;
    hi_ = ok ? hi_ : mid - 1;
    if (lo_ <= hi_) return;  // search continues
    OnSearchComplete(ctx);
  }

  // Seeds lane k of the buffers with the current search registers (after
  // Begin or a phase change).
  void StoreRegs(WalkLaneBuffers* lanes, int k) const {
    const size_t s = static_cast<size_t>(k);
    lanes->lo[s] = lo_;
    lanes->hi[s] = hi_;
    lanes->threshold[s] = threshold_;
  }

  // Pulls lane k's finished search registers back in (the lane's completed
  // bit was set by SparseWalkRound), reconstructs result/result_area per
  // the invariants in the class comment, and advances the phase. Returns
  // true when the walk retired (kEvaluate); otherwise the next search's
  // registers have been stored back into lane k. Note: probe counting for
  // lane-stepped walks is the scheduler's (one per lane per round);
  // probes() tracks Advance()-stepped probes only.
  bool CompleteSearch(WalkLaneBuffers* lanes, int k,
                      const AbOptWalkContext& ctx) {
    const size_t s = static_cast<size_t>(k);
    lo_ = lanes->lo[s];
    hi_ = lanes->hi[s];
    result_ = lo_ - 1;
    // Re-derive the two areas the phase transition can need, branchlessly
    // (which one a completion reads is data-random): the last accepted
    // probe's area (at result) and a forced search's final probe area (at
    // result + 1 == start_). Each is the exact expression SparseWalkRound
    // evaluated for that probe. When a value is meaningless — result_area
    // on a forced search (result < start_, index start_ - 1 >= 0),
    // probe_area on a found one (result + 1 capped at ctx.n) — it is
    // well-defined garbage that OnSearchComplete never reads.
    const int64_t iv = lanes->i[s];
    const double sp_prev = lanes->sp_prev[s];
    const double h_sp = lanes->h_sp[s];
    const int64_t forced_j = result_ + 1 <= ctx.n ? result_ + 1 : ctx.n;
    const double found_raw =
        (ctx.sp[result_] - sp_prev) -
        static_cast<double>(result_ - iv + 1) * h_sp;
    const double forced_raw =
        (ctx.sp[forced_j] - sp_prev) -
        static_cast<double>(forced_j - iv + 1) * h_sp;
    result_area_ = found_raw < 0.0 ? 0.0 : found_raw;
    probe_area_ = forced_raw < 0.0 ? 0.0 : forced_raw;
    OnSearchComplete(ctx);
    if (done()) return true;
    StoreRegs(lanes, k);
    return false;
  }

  int64_t anchor() const { return anchor_; }
  Phase phase() const { return phase_; }
  // Counted search probes so far — matches the scalar walk's ++*probes.
  uint64_t probes() const { return probes_; }
  const std::vector<int64_t>& breakpoints() const { return breakpoints_; }

 private:
  void StartSearch(Phase phase, int64_t lo, int64_t hi, double threshold) {
    phase_ = phase;
    lo_ = lo;
    hi_ = hi;
    start_ = lo;
    result_ = lo - 1;
    threshold_ = threshold;
  }

  // Phase transition on search completion (lo_ > hi_).
  void OnSearchComplete(const AbOptWalkContext& ctx) {
    switch (phase_) {
      case Phase::kZeroSearch: {
        const int64_t zero_area_end = result_;
        for (const int64_t len : *ctx.zero_prefix_lengths) {
          const int64_t j = anchor_ + len - 1;
          if (j >= zero_area_end) break;  // zero_area_end is a breakpoint
          breakpoints_.push_back(j);
        }
        if (zero_area_end >= anchor_) breakpoints_.push_back(zero_area_end);
        StartSearch(Phase::kInitSearch, anchor_, ctx.n, ctx.delta);
        return;
      }
      case Phase::kInitSearch: {
        // Forced start (no probe accepted): the search's final failing
        // probe was at anchor_ itself, so probe_area_ is area(i, i).
        // Whether a step is forced is data-random; select branchlessly.
        const bool found = result_ >= anchor_;
        cur_ = found ? result_ : anchor_;
        cur_area_ = found ? result_area_ : probe_area_;
        if (breakpoints_.empty() || breakpoints_.back() < cur_) {
          breakpoints_.push_back(cur_);
        }
        StartNextOrEvaluate(ctx);
        return;
      }
      case Phase::kNextSearch: {
        // Forced advance: final failing probe was at cur_ + 1.
        const bool found = result_ >= cur_ + 1;
        cur_ = found ? result_ : cur_ + 1;
        cur_area_ = found ? result_area_ : probe_area_;
        breakpoints_.push_back(cur_);
        StartNextOrEvaluate(ctx);
        return;
      }
      case Phase::kEvaluate:
        return;  // unreachable: no probes are issued once done
    }
  }

  void StartNextOrEvaluate(const AbOptWalkContext& ctx) {
    if (cur_ < ctx.n) {
      StartSearch(Phase::kNextSearch, cur_ + 1, ctx.n,
                  std::max(cur_area_, ctx.delta) * ctx.growth);
    } else {
      phase_ = Phase::kEvaluate;
    }
  }

  int64_t anchor_ = 0;
  Phase phase_ = Phase::kEvaluate;
  int64_t lo_ = 0;
  int64_t hi_ = -1;
  int64_t start_ = 0;  // the search's initial lo (forced-advance detection)
  int64_t result_ = 0;
  double threshold_ = 0.0;
  double result_area_ = 0.0;
  double probe_area_ = 0.0;
  int64_t cur_ = 0;
  double cur_area_ = 0.0;
  uint64_t probes_ = 0;
  std::vector<int64_t> breakpoints_;
};

// Counters a walk step accumulates; field-for-field the scalar loops'
// chunk counters, so the shard sums match bit for bit.
struct WalkStepCounters {
  uint64_t tested = 0;
  uint64_t steps = 0;
  uint64_t batches = 0;
};

// Chunk-level context an AB walk steps against. `pointer` is the
// never-retreating per-level breakpoint cursor shared by every anchor in
// the chunk (Lemma 3) — AB walks in one chunk are therefore coupled
// through it, and checkpointing an AB walk means checkpointing the chunk's
// pointer vector alongside the state (walk_resume_test.cc does exactly
// that). This coupling is also why AB keeps per-anchor stepping rather
// than the cross-anchor lane scheduler: interleaved anchors would race on
// the pointers' amortization, and the linear walks they amortize are
// already batched wide through SparseAreaBatch.
struct AbWalkContext {
  int64_t n = 0;
  double delta = 0.0;
  double growth = 0.0;
  const std::vector<double>* thresholds = nullptr;
  std::vector<int64_t>* pointer = nullptr;
  const GeneratorOptions* options = nullptr;
  bool fail_type = false;    // tableau has the prepended zero level
  bool credit_fail = false;  // fail tableau under the credit model
  const std::vector<int64_t>* zero_prefix_lengths = nullptr;
};

// Reusable scratch for AB walk steps (batch walk window, zero-prefix probe
// lists); chunk-local, carries no walk state.
struct AbWalkScratch {
  static constexpr int64_t kMaxWalk = 256;
  double area_buf[kMaxWalk];
  std::vector<int64_t> zp_js;
  std::vector<double> zp_conf;
  std::vector<uint8_t> zp_valid;
};

// One anchor's AB level sweep as a resumable state machine. Each Step()
// consumes one level — first-touch binary search or pointer-amortized
// batched linear walk, then the breakpoint's confidence probe — and the
// credit-fail zero-prefix batch runs as a final step. Checkpointing
// between steps and resuming (with the chunk's pointer vector restored)
// reproduces the uninterrupted walk's candidate and counters exactly: a
// step is the scalar loop body verbatim, and all cross-step state lives in
// this struct plus ctx.pointer. The kernel must be anchored at anchor()
// (BeginAnchor) when Begin/Step run.
class AbWalkState {
 public:
  enum class Phase { kLevels, kZeroPrefix, kDone };

  void Begin(int64_t i, const ConfidenceKernel& kernel,
             const AbWalkContext& ctx) {
    anchor_ = i;
    best_j_ = 0;
    best_conf_ = 0.0;
    zero_area_end_ = 0;
    // Levels whose threshold is below area(i, i) have no breakpoint for
    // this anchor; skip straight past them (with a safety margin of one
    // level against floating-point rounding). The zero level for fail
    // tableaux (index 0, threshold 0) is never skipped.
    first_level_ = ctx.fail_type ? 1 : 0;
    const double anchor_area = kernel.SparseArea(i);
    if (anchor_area > ctx.delta) {
      const double levels_below =
          std::log(anchor_area / ctx.delta) / std::log(ctx.growth);
      first_level_ += static_cast<size_t>(std::max(0.0, levels_below - 1.0));
    }
    level_ = ctx.fail_type ? 0 : first_level_;
    phase_ = level_ < ctx.thresholds->size() ? Phase::kLevels
                                             : Phase::kZeroPrefix;
    if (phase_ == Phase::kZeroPrefix && !NeedsZeroPrefix(ctx)) {
      phase_ = Phase::kDone;
    }
  }

  bool done() const { return phase_ == Phase::kDone; }
  int64_t anchor() const { return anchor_; }
  Phase phase() const { return phase_; }
  int64_t best_j() const { return best_j_; }
  double best_conf() const { return best_conf_; }

  // Executes one resumable slice of the walk (one level, or the final
  // zero-prefix batch). Counter increments are the scalar loop's, step for
  // step.
  void Step(const ConfidenceKernel& kernel, const AbWalkContext& ctx,
            AbWalkScratch* scratch, WalkStepCounters* counters) {
    if (phase_ == Phase::kZeroPrefix) {
      StepZeroPrefix(kernel, ctx, scratch, counters);
      return;
    }
    const double threshold = (*ctx.thresholds)[level_];
    int64_t& pointer = (*ctx.pointer)[level_];
    int64_t t;
    if (pointer == 0) {
      // First touch in this chunk: binary-search the largest endpoint in
      // [i, n] whose area is within the threshold (t = i when even [i, i]
      // exceeds it, matching the walk's no-advance case).
      int64_t lo = anchor_;
      int64_t hi = ctx.n;
      t = anchor_;
      while (lo <= hi) {
        const int64_t mid = lo + (hi - lo) / 2;
        ++counters->steps;
        if (kernel.SparseArea(mid) <= threshold) {
          t = mid;
          lo = mid + 1;
        } else {
          hi = mid - 1;
        }
      }
    } else {
      t = std::max(pointer, anchor_);
      // Batched linear walk: evaluate the next window of areas in one
      // SparseAreaBatch call and advance through its within-threshold
      // prefix. Stops at the same breakpoint as the scalar walk (the area
      // is evaluated for every advanced endpoint plus the first failing
      // one — extra lanes are speculative and side-effect free), and
      // `steps` still counts only actual advances.
      int64_t window = 4;
      while (t + 1 <= ctx.n) {
        const int64_t j1 = std::min<int64_t>(ctx.n, t + window);
        const int64_t len = j1 - t;
        kernel.SparseAreaBatch(t + 1, j1, scratch->area_buf);
        ++counters->batches;
        int64_t advanced = 0;
        while (advanced < len && scratch->area_buf[advanced] <= threshold) {
          ++advanced;
        }
        t += advanced;
        counters->steps += static_cast<uint64_t>(advanced);
        if (advanced < len) break;  // hit the first endpoint past T
        window = std::min<int64_t>(window * 2, AbWalkScratch::kMaxWalk);
      }
    }
    pointer = t;
    const bool exists = kernel.SparseArea(t) <= threshold;
    if (exists) {
      if (threshold == 0.0) zero_area_end_ = t;
      double conf;
      ++counters->tested;
      if (kernel.Confidence(t, &conf) &&
          PassesRelaxedThreshold(conf, *ctx.options) && t > best_j_) {
        best_j_ = t;
        best_conf_ = conf;
      }
    }
    // Once the breakpoint reaches n, higher levels produce the same
    // interval; the paper's level count L_i = ceil(log(area(i,n)/Delta))
    // stops here too.
    if (exists && t == ctx.n) {
      FinishLevels(ctx);
      return;
    }
    ++level_;
    if (level_ == 1 && first_level_ > 1) level_ = first_level_;  // after zero
    if (level_ >= ctx.thresholds->size()) FinishLevels(ctx);
  }

 private:
  bool NeedsZeroPrefix(const AbWalkContext& ctx) const {
    return ctx.credit_fail && zero_area_end_ > anchor_;
  }

  void FinishLevels(const AbWalkContext& ctx) {
    phase_ = NeedsZeroPrefix(ctx) ? Phase::kZeroPrefix : Phase::kDone;
  }

  void StepZeroPrefix(const ConfidenceKernel& kernel, const AbWalkContext& ctx,
                      AbWalkScratch* scratch, WalkStepCounters* counters) {
    // Zero-prefix probes, batched through the index-list kernel. Duplicate
    // lengths (floor((1+eps)^h) repeats for small eps) are kept: each
    // counts as a test, exactly as the scalar loop counted them, and a
    // duplicate j can never displace itself (j > best_j).
    scratch->zp_js.clear();
    for (const int64_t len : *ctx.zero_prefix_lengths) {
      const int64_t j = anchor_ + len - 1;
      if (j >= zero_area_end_) break;  // zero_area_end itself was tested
      scratch->zp_js.push_back(j);
    }
    if (!scratch->zp_js.empty()) {
      scratch->zp_conf.resize(scratch->zp_js.size());
      scratch->zp_valid.resize(scratch->zp_js.size());
      kernel.ConfidenceIndexBatch(scratch->zp_js.data(),
                                  static_cast<int64_t>(scratch->zp_js.size()),
                                  scratch->zp_conf.data(),
                                  scratch->zp_valid.data());
      ++counters->batches;
      counters->tested += scratch->zp_js.size();
      for (size_t k = 0; k < scratch->zp_js.size(); ++k) {
        if (scratch->zp_valid[k] &&
            PassesRelaxedThreshold(scratch->zp_conf[k], *ctx.options) &&
            scratch->zp_js[k] > best_j_) {
          best_j_ = scratch->zp_js[k];
          best_conf_ = scratch->zp_conf[k];
        }
      }
    }
    phase_ = Phase::kDone;
  }

  int64_t anchor_ = 0;
  Phase phase_ = Phase::kDone;
  size_t level_ = 0;
  size_t first_level_ = 0;
  int64_t best_j_ = 0;
  double best_conf_ = 0.0;
  int64_t zero_area_end_ = 0;
};

// Chunk-level context for NAB walk steps.
struct NabWalkContext {
  const std::vector<int64_t>* lengths = nullptr;
  const GeneratorOptions* options = nullptr;
};

// Reusable scratch for NAB walk steps.
struct NabWalkScratch {
  std::vector<int64_t> level_is;
  std::vector<double> conf;
  std::vector<uint8_t> valid;
};

// One right anchor's NAB sweep as a resumable state. The level probes are
// already a wide batch (lanes fill within the anchor), so cross-anchor
// scheduling has nothing to add; the state machine is the checkpoint and
// resume surface. Begin() snapshots the applicable level count; each
// Step() consumes one probe block — the whole sweep, or one reverse
// largest-first block — until `finished`. The kernel must be right-anchored
// at j (BeginRightAnchor) when Step runs.
struct NabWalkState {
  int64_t j = 0;          // right anchor
  size_t applicable = 0;  // schedule entries probed for this anchor
  // Reverse-block cursor for largest_first_early_exit; `applicable` down
  // to 0. For the plain sweep a single step consumes everything.
  size_t block_end = 0;
  int64_t best_i = 0;
  double best_conf = 0.0;
  bool finished = false;

  void Begin(int64_t right_anchor, size_t applicable_levels) {
    j = right_anchor;
    applicable = applicable_levels;
    block_end = applicable_levels;
    best_i = 0;
    best_conf = 0.0;
    finished = false;
  }

  void Step(const ConfidenceKernel& kernel, const NabWalkContext& ctx,
            NabWalkScratch* scratch, WalkStepCounters* counters) {
    const std::vector<int64_t>& lengths = *ctx.lengths;
    const GeneratorOptions& options = *ctx.options;
    // Left anchors per level, probed through the right-anchored batch
    // kernel (index-list gather over a, SA, SB). Recomputed per step from
    // the state alone so a resumed walk sees identical lanes.
    scratch->level_is.resize(applicable);
    scratch->conf.resize(applicable);
    scratch->valid.resize(applicable);
    for (size_t h = 0; h < applicable; ++h) {
      scratch->level_is[h] = std::max<int64_t>(1, j + 1 - lengths[h]);
    }
    if (options.largest_first_early_exit) {
      // Longest level first, one reverse block per step; the first
      // qualifying level wins (best_i is always 0 at that point, so the
      // scalar `i < best_i` refinement is vacuous). Lanes past the winner
      // are speculative and uncounted, keeping `tested` scalar-identical.
      constexpr size_t kProbeBlock = 8;
      const size_t end = block_end;
      const size_t begin = end >= kProbeBlock ? end - kProbeBlock : 0;
      kernel.ConfidenceFromBatch(scratch->level_is.data() + begin,
                                 static_cast<int64_t>(end - begin),
                                 scratch->conf.data(), scratch->valid.data());
      ++counters->batches;
      for (size_t h = end; h-- > begin;) {
        ++counters->tested;
        if (scratch->valid[h - begin] &&
            PassesRelaxedThreshold(scratch->conf[h - begin], options)) {
          best_i = scratch->level_is[h];
          best_conf = scratch->conf[h - begin];
          finished = true;
          return;
        }
      }
      block_end = begin;
      if (block_end == 0) finished = true;
      return;
    }
    kernel.ConfidenceFromBatch(scratch->level_is.data(),
                               static_cast<int64_t>(applicable),
                               scratch->conf.data(), scratch->valid.data());
    ++counters->batches;
    counters->tested += applicable;
    for (size_t h = 0; h < applicable; ++h) {
      if (scratch->valid[h] &&
          PassesRelaxedThreshold(scratch->conf[h], options) &&
          (best_i == 0 || scratch->level_is[h] < best_i)) {
        best_i = scratch->level_is[h];
        best_conf = scratch->conf[h];
      }
    }
    finished = true;
  }
};

}  // namespace conservation::interval::internal

#endif  // CONSERVATION_INTERVAL_WALK_H_
