// Anchor-sharded execution driver for the candidate generators.
//
// Every generator's outer loop visits anchors whose outputs are mutually
// independent; the only cross-anchor state (AB's level pointers, NAB's
// schedule cursor) is an amortization device, not a correctness carrier.
// Splitting the anchor range into contiguous blocks and giving each worker
// private amortization state initialized at its block start therefore
// reproduces the sequential output exactly — the per-block pointer reset
// costs at most one extra sweep per level per block, amortized inside the
// block (DESIGN.md "Parallel execution").
//
// The driver concatenates per-block outputs in anchor order and merges
// per-block stats (sums + max wall time), so callers observe bit-identical
// candidates for every num_threads setting.

#ifndef CONSERVATION_INTERVAL_SHARD_H_
#define CONSERVATION_INTERVAL_SHARD_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "interval/generator.h"
#include "interval/interval.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace conservation::interval::internal {

// Runs block(begin, end, &shard_stats) over contiguous anchor blocks
// covering [1, n] (inclusive bounds), concurrently when ResolveNumShards
// allows, and returns the concatenation of the block outputs in block
// order. `stats` (may be null) receives the merged counters; its
// wall_seconds is the driver's end-to-end elapsed time.
//
// BlockFn: std::vector<Interval>(int64_t begin, int64_t end,
//                                GeneratorStats* shard_stats).
template <typename BlockFn>
std::vector<Interval> RunSharded(int64_t n, const GeneratorOptions& options,
                                 GeneratorStats* stats, BlockFn&& block) {
  util::Stopwatch timer;
  const int shards = ResolveNumShards(n, options);

  std::vector<Interval> out;
  GeneratorStats merged;
  merged.shards = shards;

  if (shards <= 1) {
    GeneratorStats shard_stats;
    util::Stopwatch shard_timer;
    out = block(1, n, &shard_stats);
    shard_stats.seconds = shard_timer.ElapsedSeconds();
    shard_stats.wall_seconds = shard_stats.seconds;
    merged.Merge(shard_stats);
  } else {
    const int64_t width = (n + shards - 1) / shards;
    std::vector<std::vector<Interval>> block_out(
        static_cast<size_t>(shards));
    std::vector<GeneratorStats> block_stats(static_cast<size_t>(shards));
    util::PoolParallelFor(
        util::ThreadPool::Shared(), shards, shards, [&](int64_t k) {
          const int64_t begin = 1 + k * width;
          const int64_t end = std::min<int64_t>(n, begin + width - 1);
          if (begin > end) return;
          GeneratorStats* shard_stats = &block_stats[static_cast<size_t>(k)];
          util::Stopwatch shard_timer;
          block_out[static_cast<size_t>(k)] =
              block(begin, end, shard_stats);
          shard_stats->seconds = shard_timer.ElapsedSeconds();
          shard_stats->wall_seconds = shard_stats->seconds;
        });
    size_t total = 0;
    for (const auto& part : block_out) total += part.size();
    out.reserve(total);
    for (size_t k = 0; k < block_out.size(); ++k) {
      out.insert(out.end(), block_out[k].begin(), block_out[k].end());
      merged.Merge(block_stats[k]);
    }
  }

  merged.candidates = out.size();
  merged.wall_seconds = timer.ElapsedSeconds();
  if (stats != nullptr) *stats = merged;
  return out;
}

}  // namespace conservation::interval::internal

#endif  // CONSERVATION_INTERVAL_SHARD_H_
