// Chunked, dynamically balanced execution driver for the candidate
// generators.
//
// Every generator's outer loop visits anchors whose outputs are mutually
// independent; the only cross-anchor state (AB's level pointers, NAB's
// schedule cursor) is an amortization device, not a correctness carrier.
// Cutting the anchor range into contiguous chunks and giving each chunk
// private amortization state initialized at its chunk start therefore
// reproduces the sequential output exactly (DESIGN.md "Parallel execution").
//
// Why many fine chunks instead of one contiguous block per worker: the
// per-anchor cost of the O(n·δ⁻¹·ε⁻¹) generators is triangular — anchor i
// sweeps right endpoints up to n — so equal-width per-worker blocks leave
// the first block owning most of the work while the rest idle (PR 1's
// measured flat-to-negative scaling). The driver instead cuts [1, n] into
// ≈ chunks_per_thread × workers chunks and lets workers claim them off an
// atomic cursor; whichever worker finishes early claims more, bounding the
// finish-time spread by one chunk's work regardless of the skew shape.
//
// Determinism: chunk boundaries are a pure function of (n, workers,
// chunks_per_thread); outputs land in a per-chunk slot and are concatenated
// in chunk (= anchor) order, so the candidate list is bit-identical to the
// sequential run for every thread count and chunking — only the stats'
// timing fields vary run to run.
//
// stop_on_full_cover: a generator's early exit fires only at the anchor the
// sequential run visits first (i = 1 for left-anchored sweeps, j = n for
// right-anchored ones) and emits exactly the full-span interval [1, n], so
// the sequential output is exactly {[1, n]}. The chunked driver reproduces
// it: the signaling chunk's output replaces everything, outstanding chunks
// are cancelled at claim granularity, and already-running chunks complete
// but are discarded. ChunkOrder lets right-anchored generators claim the
// chunk containing anchor n first so the cancellation actually saves work.

#ifndef CONSERVATION_INTERVAL_SHARD_H_
#define CONSERVATION_INTERVAL_SHARD_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "interval/generator.h"
#include "interval/interval.h"
#include "obs/labels.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace conservation::interval::internal {

// Registry counters mirroring the per-run GeneratorStats/ShardWork structs
// (which remain the API-stable per-call view; these accumulate across the
// process). Kernel work (confidence evaluations, endpoint steps) is
// published per chunk from the chunk's merged counters, so the flat-array
// kernels stay uninstrumented on their inner loops.
struct GenerationMetrics {
  obs::Counter& chunks_claimed;
  obs::Counter& steals;
  obs::Counter& candidates;
  obs::Counter& confidence_evals;
  obs::Counter& endpoint_steps;
  obs::Counter& batches;
  obs::Counter& anchors_pruned;
  obs::Counter& sketch_scan_blocks;
  obs::Histogram& chunk_seconds;
  // Attribution of generation.chunks_claimed by how the chunk was won:
  // "fair" = within the worker's static fair share, "stolen" = claimed
  // beyond it off a slower worker (== generation.steals). Children of the
  // labeled family "generation.chunks"; batch-published per run like the
  // flat counters above.
  obs::Counter& chunks_fair;
  obs::Counter& chunks_stolen;

  static GenerationMetrics& Get() {
    static GenerationMetrics* metrics = [] {
      obs::Registry& registry = obs::Registry::Global();
      obs::CounterFamily& chunks = obs::LabeledCounter("generation.chunks");
      return new GenerationMetrics{
          registry.Counter("generation.chunks_claimed"),
          registry.Counter("generation.steals"),
          registry.Counter("generation.candidates"),
          registry.Counter("kernel.confidence_evals"),
          registry.Counter("kernel.endpoint_steps"),
          registry.Counter("kernel.batches"),
          registry.Counter("generation.anchors_pruned"),
          registry.Counter("sketch.scan_blocks"),
          registry.Histogram("generation.chunk_seconds",
                             {1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0}),
          chunks.With({{"kind", "fair"}}),
          chunks.With({{"kind", "stolen"}})};
    }();
    return *metrics;
  }
};

// Blocks may emit bare Intervals or Candidates (interval + confidence);
// the driver's full-cover detection only needs the interval view.
inline const Interval& ElementInterval(const Interval& element) {
  return element;
}
inline const Interval& ElementInterval(const Candidate& element) {
  return element.interval;
}

// Claim order of chunks: the direction the sequential run visits anchors.
// Output is identical either way; the order only determines which chunk the
// stop_on_full_cover cancellation can short-circuit behind.
enum class ChunkOrder { kAscending, kDescending };

// Runs block(begin, end, &chunk_stats) over contiguous anchor chunks
// covering [1, n] (inclusive bounds), claimed dynamically by
// ResolveNumShards workers, and returns the concatenation of the chunk
// outputs in anchor order. `stats` (may be null) receives the merged
// counters plus the scheduler observability fields (shards, chunks,
// shard_work); its wall_seconds is the driver's end-to-end elapsed time and
// its seconds the summed per-worker work time.
//
// BlockFn: std::vector<Interval> or std::vector<Candidate>
//          (int64_t begin, int64_t end, GeneratorStats* chunk_stats).
// Blocks fill only the work counters of chunk_stats; timing and scheduling
// fields are owned by this driver.
template <typename BlockFn>
auto RunSharded(int64_t n, const GeneratorOptions& options,
                GeneratorStats* stats, BlockFn&& block,
                ChunkOrder order = ChunkOrder::kAscending) {
  using OutVec = std::invoke_result_t<BlockFn&, int64_t, int64_t,
                                      GeneratorStats*>;
  util::Stopwatch timer;
  const int workers = ResolveNumShards(n, options);
  GenerationMetrics& metrics = GenerationMetrics::Get();
  CR_TRACE_SPAN_ARGS("generate.sharded", "n", n, "workers", workers);

  OutVec out;
  GeneratorStats merged;
  merged.shards = workers;
  merged.chunks = 1;
  merged.shard_work.resize(static_cast<size_t>(workers));

  if (workers <= 1) {
    GeneratorStats counters;
    util::Stopwatch work_timer;
    {
      CR_TRACE_SPAN_ARGS("generate.chunk", "begin", 1, "end", n);
      out = block(1, n, &counters);
    }
    merged.Merge(counters);
    merged.seconds = work_timer.ElapsedSeconds();
    merged.shard_work[0] =
        ShardWork{merged.seconds, /*chunks_claimed=*/1, /*steals=*/0};
    metrics.chunks_claimed.Increment();
    metrics.chunks_fair.Increment();
    metrics.chunk_seconds.Record(merged.seconds);
  } else {
    const int64_t requested = ResolveNumChunks(n, workers, options);
    const int64_t width = (n + requested - 1) / requested;
    const int64_t chunks = (n + width - 1) / width;
    merged.chunks = chunks;
    const uint64_t fair_share = static_cast<uint64_t>(
        (chunks + workers - 1) / static_cast<int64_t>(workers));

    std::vector<OutVec> chunk_out(static_cast<size_t>(chunks));
    std::vector<GeneratorStats> worker_counters(
        static_cast<size_t>(workers));
    std::atomic<int64_t> cursor{0};
    std::atomic<bool> full_cover{false};
    std::atomic<int64_t> signal_chunk{-1};
    GeneratorStats signal_counters;  // written by the unique signaling
                                     // worker, read only after the join

    util::PoolParallelFor(
        util::ThreadPool::Shared(), workers, workers, [&](int64_t w) {
          ShardWork work;
          GeneratorStats local;
          for (;;) {
            if (options.stop_on_full_cover &&
                full_cover.load(std::memory_order_acquire)) {
              break;
            }
            const int64_t claim =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (claim >= chunks) break;
            const int64_t k =
                order == ChunkOrder::kDescending ? chunks - 1 - claim : claim;
            const int64_t begin = 1 + k * width;
            const int64_t end = std::min<int64_t>(n, begin + width - 1);
            GeneratorStats chunk_counters;
            util::Stopwatch chunk_timer;
            {
              CR_TRACE_SPAN_ARGS("generate.chunk", "begin", begin, "end",
                                 end);
              chunk_out[static_cast<size_t>(k)] =
                  block(begin, end, &chunk_counters);
            }
            const double chunk_elapsed = chunk_timer.ElapsedSeconds();
            work.seconds += chunk_elapsed;
            ++work.chunks_claimed;
            metrics.chunk_seconds.Record(chunk_elapsed);
            if (work.chunks_claimed > fair_share) {
              // Chunk claimed beyond the static fair share: this worker
              // out-ran the others and took over a chunk a slower worker
              // would have owned (mirrors ShardWork::steals).
              CR_TRACE_INSTANT("generate.steal");
            }
            local.Merge(chunk_counters);
            if (options.stop_on_full_cover) {
              const OutVec& part = chunk_out[static_cast<size_t>(k)];
              const bool spans_all = std::any_of(
                  part.begin(), part.end(), [n](const auto& v) {
                    const Interval& iv = ElementInterval(v);
                    return iv.begin == 1 && iv.end == n;
                  });
              if (spans_all) {
                signal_counters = chunk_counters;
                signal_chunk.store(k, std::memory_order_relaxed);
                full_cover.store(true, std::memory_order_release);
                break;
              }
            }
          }
          work.steals = work.chunks_claimed > fair_share
                            ? work.chunks_claimed - fair_share
                            : 0;
          merged.shard_work[static_cast<size_t>(w)] = work;
          worker_counters[static_cast<size_t>(w)] = local;
        });

    const int64_t signal = signal_chunk.load(std::memory_order_relaxed);
    if (signal >= 0) {
      // Sequential equivalence: the sequential run stops at its first
      // anchor, so chunks other than the signaling one contribute neither
      // output nor counters (their work still shows in shard_work.seconds).
      out = std::move(chunk_out[static_cast<size_t>(signal)]);
      merged.Merge(signal_counters);
    } else {
      size_t total = 0;
      for (const auto& part : chunk_out) total += part.size();
      out.reserve(total);
      for (auto& part : chunk_out) {
        out.insert(out.end(), part.begin(), part.end());
      }
      for (const GeneratorStats& local : worker_counters) merged.Merge(local);
    }
    for (const ShardWork& work : merged.shard_work) {
      merged.seconds += work.seconds;
      metrics.chunks_claimed.Add(work.chunks_claimed);
      metrics.steals.Add(work.steals);
      metrics.chunks_fair.Add(work.chunks_claimed - work.steals);
      metrics.chunks_stolen.Add(work.steals);
    }
  }

  merged.candidates = out.size();
  merged.wall_seconds = timer.ElapsedSeconds();
  // Batch-published per run: the kernels' confidence-evaluation and
  // endpoint-step work reaches the registry without touching the hot
  // sweeps themselves.
  metrics.candidates.Add(merged.candidates);
  metrics.confidence_evals.Add(merged.intervals_tested);
  metrics.endpoint_steps.Add(merged.endpoint_steps);
  metrics.batches.Add(merged.batches);
  metrics.anchors_pruned.Add(merged.anchors_pruned);
  metrics.sketch_scan_blocks.Add(merged.sketch_blocks);
  if (stats != nullptr) *stats = std::move(merged);
  return out;
}

}  // namespace conservation::interval::internal

#endif  // CONSERVATION_INTERVAL_SHARD_H_
