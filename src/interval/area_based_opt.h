// AreaBasedOptGenerator (AB-opt): the improved area-based variant of §VI.
//
// Plain AB insists on the absolute thresholds Delta*(1+eps)^l, so when eps is
// small many consecutive levels share the same breakpoint and the same
// interval is tested repeatedly. AB-opt instead finds, per anchor, each next
// breakpoint by binary search so that consecutive tested areas grow by a
// factor as close as possible to (1+eps):
//   r_{l} = largest j with area(i, j) <= (1+eps) * max(area(i, r_{l-1}), Delta)
// (forced to advance by at least one position). Every breakpoint is distinct,
// so no interval is tested twice; the price is a log(n) binary-search factor
// per breakpoint, which is why the paper finds AB-opt tests far fewer
// intervals than AB yet runs slower than NAB-opt (Fig. 10).
//
// The approximation guarantee is preserved: any j* falls in some
// (r_{l-1}, r_l], and either area(i, r_l) <= (1+eps) * area(i, j*) holds via
// monotonicity, or the advance was forced and then r_l == j* exactly.

#ifndef CONSERVATION_INTERVAL_AREA_BASED_OPT_H_
#define CONSERVATION_INTERVAL_AREA_BASED_OPT_H_

#include <vector>

#include "interval/generator.h"

namespace conservation::interval {

class AreaBasedOptGenerator : public CandidateGenerator {
 public:
  std::vector<Candidate> GenerateCandidates(
      const core::ConfidenceEvaluator& eval, const GeneratorOptions& options,
      GeneratorStats* stats) const override;

  AlgorithmKind kind() const override { return AlgorithmKind::kAreaBasedOpt; }
};

}  // namespace conservation::interval

#endif  // CONSERVATION_INTERVAL_AREA_BASED_OPT_H_
