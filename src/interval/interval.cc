#include "interval/interval.h"

#include <algorithm>

#include "util/string_util.h"

namespace conservation::interval {

std::string Interval::ToString() const {
  return util::StrFormat("[%lld, %lld]", static_cast<long long>(begin),
                         static_cast<long long>(end));
}

bool ByPosition(const Interval& lhs, const Interval& rhs) {
  if (lhs.begin != rhs.begin) return lhs.begin < rhs.begin;
  return lhs.end < rhs.end;
}

int64_t UnionSize(std::vector<Interval> intervals) {
  if (intervals.empty()) return 0;
  std::sort(intervals.begin(), intervals.end(), ByPosition);
  int64_t covered = 0;
  int64_t cur_begin = intervals[0].begin;
  int64_t cur_end = intervals[0].end;
  for (size_t k = 1; k < intervals.size(); ++k) {
    const Interval& iv = intervals[k];
    if (iv.begin > cur_end + 1) {
      covered += cur_end - cur_begin + 1;
      cur_begin = iv.begin;
      cur_end = iv.end;
    } else {
      cur_end = std::max(cur_end, iv.end);
    }
  }
  covered += cur_end - cur_begin + 1;
  return covered;
}

}  // namespace conservation::interval
