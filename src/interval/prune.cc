#include "interval/prune.h"

#include <bit>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "util/check.h"

namespace conservation::interval::internal {

namespace {

// Case-insensitive parse of the CONSERVATION_SKETCH environment value,
// resolved once per process. Same contract as CONSERVATION_SIMD: an unknown
// token is a fatal configuration error, not a silent fallback.
bool SketchEnvOff() {
  static const bool off = [] {
    const char* env = std::getenv("CONSERVATION_SKETCH");
    if (env == nullptr) return false;
    char lowered[8];
    size_t len = 0;
    bool invalid = false;
    for (; env[len] != '\0'; ++len) {
      if (len >= sizeof(lowered) - 1) {
        invalid = true;
        break;
      }
      lowered[len] = static_cast<char>(
          std::tolower(static_cast<unsigned char>(env[len])));
    }
    if (!invalid) {
      const std::string_view value(lowered, len);
      if (value.empty() || value == "auto") return false;
      if (value == "off") return true;
    }
    std::fprintf(stderr,
                 "CONSERVATION_SKETCH: unknown value '%s' "
                 "(expected auto or off)\n",
                 env);
    std::exit(2);
  }();
  return off;
}

}  // namespace

int64_t ResolveSketchBlock(const GeneratorOptions& options) {
  return options.sketch_block > 0 ? options.sketch_block
                                  : series::SeriesSketch::kDefaultBlock;
}

bool SketchScreenEnabled(const GeneratorOptions& options, int64_t n) {
#if defined(CONSERVATION_SKETCH_DISABLED)
  (void)options;
  (void)n;
  return false;
#else
  if (SketchEnvOff()) return false;
  if (options.sketch == SketchMode::kOff) return false;
  return n >= kSketchAutoGateBlocks * ResolveSketchBlock(options);
#endif
}

SketchScreen::SketchScreen(const core::ConfidenceEvaluator& eval,
                           const series::SeriesSketch& sketch,
                           const GeneratorOptions& options, Anchor anchor,
                           bool relaxed)
    : sketch_(sketch),
      anchor_(anchor),
      a_(eval.series().a_data()),
      s_(eval.series().suffix_min_gap_data()),
      sa_(eval.series().sa_data()),
      sb_(eval.series().sb_data()),
      model_(eval.model()),
      hold_(options.type == core::TableauType::kHold),
      n_(eval.series().n()),
      block_(sketch.block()),
      backend_(ActiveSimdBackend()) {
  CR_CHECK(sketch.n() == n_);
  CR_CHECK(block_ > 0);
  // Same rounding as PassesRelaxedThreshold / PassesExactThreshold: the
  // screen compares its conservative confidence bound against the exact
  // constant the generator compares the exact confidence against.
  if (relaxed) {
    threshold_ = hold_ ? options.c_hat / (1.0 + options.epsilon)
                       : options.c_hat * (1.0 + options.epsilon);
  } else {
    threshold_ = options.c_hat;
  }

  using series::SeriesSketch;
  const int64_t num_groups = n_ / block_ + 1;
  group_mixed_.assign(static_cast<size_t>(num_groups), 1);

  if (anchor_ == Anchor::kLeft) {
    const int64_t b_end = n_ / block_;
    for (int64_t g = 0; g < num_groups; ++g) {
      const int64_t i_lo = std::max<int64_t>(1, g * block_);
      const int64_t i_hi = std::min<int64_t>(n_, g * block_ + block_ - 1);
      SketchScanArgs args;
      args.sa_blk_lo = sketch_.BlockLoData(SeriesSketch::kSA);
      args.sa_blk_hi = sketch_.BlockHiData(SeriesSketch::kSA);
      args.sb_blk_lo = sketch_.BlockLoData(SeriesSketch::kSB);
      args.sb_blk_hi = sketch_.BlockHiData(SeriesSketch::kSB);
      double prev_lo, prev_hi;
      sketch_.RangeBounds(SeriesSketch::kA, i_lo - 1, i_hi - 1, &prev_lo,
                          &prev_hi);
      sketch_.RangeBounds(SeriesSketch::kSA, i_lo - 1, i_hi - 1,
                          &args.sa_prev_lo, &args.sa_prev_hi);
      sketch_.RangeBounds(SeriesSketch::kSB, i_lo - 1, i_hi - 1,
                          &args.sb_prev_lo, &args.sb_prev_hi);
      args.h_a_lo = prev_lo;
      args.h_a_hi = prev_hi;
      args.h_b_lo = prev_lo;
      args.h_b_hi = prev_hi;
      if (model_ == core::ConfidenceModel::kCredit ||
          model_ == core::ConfidenceModel::kDebit) {
        double gap_lo, gap_hi;
        sketch_.RangeBounds(SeriesSketch::kS, i_lo, i_hi, &gap_lo, &gap_hi);
        // gap_hi may be +infinity when the covering blocks reach the
        // suffix sentinel; the resulting infinite h bound only widens the
        // screen (kernel_simd.h keeps the arithmetic NaN-free).
        if (model_ == core::ConfidenceModel::kCredit) {
          args.h_a_lo = prev_lo - gap_hi;
          args.h_a_hi = prev_hi - gap_lo;
        } else {
          args.h_b_lo = prev_lo + gap_lo;
          args.h_b_hi = prev_hi + gap_hi;
        }
      }
      args.i_lo = i_lo;
      args.i_hi = i_hi;
      args.block = block_;
      args.n = n_;
      args.threshold = threshold_;
      args.hold = hold_;
      bool mixed = false;
      for (int64_t b = i_lo / block_; b <= b_end && !mixed; b += 64) {
        const int64_t count = std::min<int64_t>(64, b_end - b + 1);
        construction_blocks_ += static_cast<uint64_t>(count);
        mixed = ScanLeftChunk(args, b, count) != 0;
      }
      group_mixed_[static_cast<size_t>(g)] = mixed ? 1 : 0;
    }
    return;
  }

  // Right screen (NAB): derive the per-anchor-block bound arrays once, then
  // precompute the per-endpoint-group verdicts against them.
  const int64_t nu = n_ / block_ + 1;
  right_h_lo_.resize(static_cast<size_t>(nu));
  right_h_hi_.resize(static_cast<size_t>(nu));
  right_sap_lo_.resize(static_cast<size_t>(nu));
  right_sap_hi_.resize(static_cast<size_t>(nu));
  right_sbp_lo_.resize(static_cast<size_t>(nu));
  right_sbp_hi_.resize(static_cast<size_t>(nu));
  for (int64_t u = 0; u < nu; ++u) {
    const int64_t lo_idx = u * block_ - 1;
    const int64_t hi_idx = u * block_ + block_ - 2;
    const size_t k = static_cast<size_t>(u);
    sketch_.RangeBounds(SeriesSketch::kA, lo_idx, hi_idx, &right_h_lo_[k],
                        &right_h_hi_[k]);
    sketch_.RangeBounds(SeriesSketch::kSA, lo_idx, hi_idx, &right_sap_lo_[k],
                        &right_sap_hi_[k]);
    sketch_.RangeBounds(SeriesSketch::kSB, lo_idx, hi_idx, &right_sbp_lo_[k],
                        &right_sbp_hi_[k]);
  }
  for (int64_t g = 0; g < num_groups; ++g) {
    const int64_t j_lo = std::max<int64_t>(1, g * block_);
    const int64_t j_hi = std::min<int64_t>(n_, g * block_ + block_ - 1);
    SketchScanRightArgs args;
    args.h_blk_lo = right_h_lo_.data();
    args.h_blk_hi = right_h_hi_.data();
    args.sap_blk_lo = right_sap_lo_.data();
    args.sap_blk_hi = right_sap_hi_.data();
    args.sbp_blk_lo = right_sbp_lo_.data();
    args.sbp_blk_hi = right_sbp_hi_.data();
    sketch_.RangeBounds(SeriesSketch::kSA, j_lo, j_hi, &args.sa_end_lo,
                        &args.sa_end_hi);
    sketch_.RangeBounds(SeriesSketch::kSB, j_lo, j_hi, &args.sb_end_lo,
                        &args.sb_end_hi);
    args.j_lo = j_lo;
    args.j_hi = j_hi;
    args.block = block_;
    args.threshold = threshold_;
    args.hold = hold_;
    const int64_t u_end = j_hi / block_;
    bool mixed = false;
    for (int64_t u = 0; u <= u_end && !mixed; u += 64) {
      const int64_t count = std::min<int64_t>(64, u_end - u + 1);
      construction_blocks_ += static_cast<uint64_t>(count);
      mixed = ScanRightChunk(args, u, count) != 0;
    }
    group_mixed_[static_cast<size_t>(g)] = mixed ? 1 : 0;
  }
}

uint64_t SketchScreen::ScanLeftChunk(const SketchScanArgs& args, int64_t b0,
                                     int64_t count) const {
  switch (backend_) {
#if CONSERVATION_KERNEL_HAVE_AVX2
    case SimdBackend::kAvx2:
      return avx2::SketchMaybeMask(args, b0, count);
#endif
#if CONSERVATION_KERNEL_HAVE_NEON
    case SimdBackend::kNeon:
      return neon::SketchMaybeMask(args, b0, count);
#endif
    default:
      return SketchMaybeMaskScalar(args, b0, count);
  }
}

uint64_t SketchScreen::ScanRightChunk(const SketchScanRightArgs& args,
                                      int64_t u0, int64_t count) const {
  switch (backend_) {
#if CONSERVATION_KERNEL_HAVE_AVX2
    case SimdBackend::kAvx2:
      return avx2::SketchMaybeMaskRight(args, u0, count);
#endif
#if CONSERVATION_KERNEL_HAVE_NEON
    case SimdBackend::kNeon:
      return neon::SketchMaybeMaskRight(args, u0, count);
#endif
    default:
      return SketchMaybeMaskRightScalar(args, u0, count);
  }
}

bool SketchScreen::RefineLeftBlock(const SketchScanArgs& args,
                                   int64_t b) const {
  using series::SeriesSketch;
  const int64_t j_begin = std::max<int64_t>(args.i_lo, b * block_);
  const int64_t j_end = std::min<int64_t>(n_, b * block_ + block_ - 1);
  const double t = threshold_;
  for (int64_t j = j_begin; j <= j_end; ++j) {
    // Exact anchor scalars (args ranges are collapsed, lo == hi), exact
    // length: only the SA/SB endpoint reads are bracketed, by the decoded
    // per-tick codes instead of the whole-block maps.
    const double len = static_cast<double>(j - args.i_lo + 1);
    const double hb_term = len * args.h_b_lo;
    const double den_ub =
        (sketch_.CodeUpper(SeriesSketch::kSB, j) - args.sb_prev_lo) - hb_term;
    if (!(den_ub > 0.0)) continue;  // den_ub >= den: no valid pair here
    if (hold_) {
      const double den_lb_raw =
          (sketch_.CodeLower(SeriesSketch::kSB, j) - args.sb_prev_lo) -
          hb_term;
      const double den_lb = den_lb_raw < 0.0 ? 0.0 : den_lb_raw;
      const double ha_term = len * args.h_a_lo;
      const double num_ub_raw =
          (sketch_.CodeUpper(SeriesSketch::kSA, j) - args.sa_prev_lo) -
          ha_term;
      const double num_ub = num_ub_raw < 0.0 ? 0.0 : num_ub_raw;
      if (den_lb > 0.0 ? num_ub / den_lb >= t : (num_ub > 0.0 || t <= 0.0)) {
        return true;
      }
    } else {
      const double ha_term = len * args.h_a_lo;
      const double num_lb_raw =
          (sketch_.CodeLower(SeriesSketch::kSA, j) - args.sa_prev_lo) -
          ha_term;
      const double num_lb = num_lb_raw < 0.0 ? 0.0 : num_lb_raw;
      if (num_lb / den_ub <= t) return true;
    }
  }
  return false;
}

bool SketchScreen::MayEmit(int64_t i, uint64_t* scan_blocks) const {
  CR_CHECK(anchor_ == Anchor::kLeft);
  CR_CHECK(i >= 1 && i <= n_);
  if (group_mixed_[static_cast<size_t>(i / block_)] == 0) return false;
  const double prev = a_[i - 1];
  const double gap = s_[i];
  SketchScanArgs args;
  args.sa_blk_lo = sketch_.BlockLoData(series::SeriesSketch::kSA);
  args.sa_blk_hi = sketch_.BlockHiData(series::SeriesSketch::kSA);
  args.sb_blk_lo = sketch_.BlockLoData(series::SeriesSketch::kSB);
  args.sb_blk_hi = sketch_.BlockHiData(series::SeriesSketch::kSB);
  args.sa_prev_lo = args.sa_prev_hi = sa_[i - 1];
  args.sb_prev_lo = args.sb_prev_hi = sb_[i - 1];
  // Same expressions as ConfidenceKernel::BeginAnchor: the collapsed h
  // ranges are bitwise the exact per-anchor baselines.
  const double h_a =
      model_ == core::ConfidenceModel::kCredit ? prev - gap : prev;
  const double h_b =
      model_ == core::ConfidenceModel::kDebit ? prev + gap : prev;
  args.h_a_lo = args.h_a_hi = h_a;
  args.h_b_lo = args.h_b_hi = h_b;
  args.i_lo = args.i_hi = i;
  args.block = block_;
  args.n = n_;
  args.threshold = threshold_;
  args.hold = hold_;

  const int64_t b_end = n_ / block_;
  int refine_budget = kRefineBudget;
  int64_t scanned = 0;
  int64_t b = i / block_;
  while (b <= b_end) {
    if (scanned >= kAnchorScanCap) return true;  // deterministic give-up
    const int64_t count = std::min<int64_t>(64, b_end - b + 1);
    const uint64_t mask = ScanLeftChunk(args, b, count);
    scanned += count;
    *scan_blocks += static_cast<uint64_t>(count);
    if (mask == 0) {
      b += count;
      continue;
    }
    const int64_t maybe_block = b + std::countr_zero(mask);
    if (refine_budget == 0) return true;
    --refine_budget;
    *scan_blocks += 1;
    if (RefineLeftBlock(args, maybe_block)) return true;
    // The maybe block was refuted tick by tick; resume the map-level scan
    // just past it (later bits of this chunk get rescanned — harmless and
    // deterministic).
    b = maybe_block + 1;
  }
  return false;
}

bool SketchScreen::MayEmitRight(int64_t j, uint64_t* scan_blocks) const {
  CR_CHECK(anchor_ == Anchor::kRight);
  CR_CHECK(j >= 1 && j <= n_);
  if (group_mixed_[static_cast<size_t>(j / block_)] == 0) return false;
  SketchScanRightArgs args;
  args.h_blk_lo = right_h_lo_.data();
  args.h_blk_hi = right_h_hi_.data();
  args.sap_blk_lo = right_sap_lo_.data();
  args.sap_blk_hi = right_sap_hi_.data();
  args.sbp_blk_lo = right_sbp_lo_.data();
  args.sbp_blk_hi = right_sbp_hi_.data();
  args.sa_end_lo = args.sa_end_hi = sa_[j];
  args.sb_end_lo = args.sb_end_hi = sb_[j];
  args.j_lo = args.j_hi = j;
  args.block = block_;
  args.threshold = threshold_;
  args.hold = hold_;
  const int64_t u_end = j / block_;
  int64_t scanned = 0;
  for (int64_t u = 0; u <= u_end; u += 64) {
    if (scanned >= kAnchorScanCap) return true;
    const int64_t count = std::min<int64_t>(64, u_end - u + 1);
    scanned += count;
    *scan_blocks += static_cast<uint64_t>(count);
    if (ScanRightChunk(args, u, count) != 0) return true;
  }
  return false;
}

ScopedSketchScreen::ScopedSketchScreen(const core::ConfidenceEvaluator& eval,
                                       const GeneratorOptions& options,
                                       SketchScreen::Anchor anchor,
                                       bool relaxed) {
  const int64_t n = eval.n();
  if (!SketchScreenEnabled(options, n)) return;
  const int64_t block = ResolveSketchBlock(options);
  const series::SeriesSketch* sketch = options.sketch_ptr;
  if (sketch == nullptr || sketch->n() != n || sketch->block() != block) {
    sketch_ = series::SeriesSketch::Build(eval.series(), block);
    sketch = &sketch_;
  }
  screen_.emplace(eval, *sketch, options, anchor, relaxed);
}

}  // namespace conservation::interval::internal
