// Flat-array confidence kernels for the generator inner sweeps.
//
// The generators evaluate areas and confidences hundreds of millions of
// times per run. Routing every evaluation through ConfidenceEvaluator costs,
// per call: two pointer hops into the series object, a recomputation of the
// per-anchor baselines H_i^A / H_i^B (A(i-1) and SuffixMinGap(i) lookups and
// a model branch), and an std::optional round trip. ConfidenceKernel
// resolves the cumulative arrays (A, SA, SB, S) to __restrict pointers once
// per chunk and hoists the anchor baselines out of the endpoint loop, so the
// inner sweep touches only flat arrays and registers.
//
// Bit-identity contract: every expression below reproduces the evaluator's
// arithmetic with the same operand values and the same evaluation order
// (see core/confidence.h), so kernel results are bit-identical to evaluator
// results — the sharded drivers rely on this to keep parallel output equal
// to the sequential run.
//
// Batch APIs: the *Batch methods evaluate a run (or index list) of
// endpoints in one call through the SIMD backends in kernel_simd.h. The
// backend is resolved once per kernel from the process-wide selection
// (runtime CPU detection gated by CONSERVATION_SIMD); every backend honours
// the same bit-identity contract, so batch outputs equal a loop over the
// scalar calls byte for byte — including out_conf == 0.0 on invalid lanes.

#ifndef CONSERVATION_INTERVAL_KERNEL_H_
#define CONSERVATION_INTERVAL_KERNEL_H_

#include <cstdint>

#include "core/confidence.h"
#include "core/model.h"
#include "interval/kernel_simd.h"

namespace conservation::interval::internal {

class ConfidenceKernel {
 public:
  ConfidenceKernel(const core::ConfidenceEvaluator& eval,
                   core::TableauType type)
      : a_(eval.series().a_data()),
        sa_(eval.series().sa_data()),
        sb_(eval.series().sb_data()),
        s_(eval.series().suffix_min_gap_data()),
        model_(eval.model()),
        hold_(type == core::TableauType::kHold),
        // Fail tableaux sparsify on the numerator area; in the credit model
        // the baseline A_{i-1} - S_i is not monotone, so the algorithm
        // reuses the balance-model breakpoints (paper §III.D, Theorems 5-6).
        sparse_balance_(!hold_ &&
                        eval.model() == core::ConfidenceModel::kCredit) {}

  // --- Left-anchored sweeps (AB, AB-opt): fix anchor i, vary endpoint j ---

  void BeginAnchor(int64_t i) {
    i_ = i;
    const double prev = a_[i - 1];
    const double gap = s_[i];
    h_a_ = model_ == core::ConfidenceModel::kCredit ? prev - gap : prev;
    h_b_ = model_ == core::ConfidenceModel::kDebit ? prev + gap : prev;
    sa_prev_ = sa_[i - 1];
    sb_prev_ = sb_[i - 1];
    sp_ = hold_ ? sb_ : sa_;
    sp_prev_ = hold_ ? sb_prev_ : sa_prev_;
    h_sp_ = hold_ ? h_b_ : (sparse_balance_ ? prev : h_a_);
  }

  // SparsificationArea(i_, j): area_B for hold, area_A for fail
  // (balance-model area_A when the model is credit).
  double SparseArea(int64_t j) const {
    const double raw = (sp_[j] - sp_prev_) -
                       static_cast<double>(j - i_ + 1) * h_sp_;
    return raw < 0.0 ? 0.0 : raw;
  }

  // conf(i_, j); false when the denominator is not positive (undefined).
  bool Confidence(int64_t j, double* conf) const {
    const double len = static_cast<double>(j - i_ + 1);
    const double den_raw = (sb_[j] - sb_prev_) - len * h_b_;
    const double den = den_raw < 0.0 ? 0.0 : den_raw;
    if (den <= 0.0) return false;
    const double num_raw = (sa_[j] - sa_prev_) - len * h_a_;
    const double num = num_raw < 0.0 ? 0.0 : num_raw;
    *conf = num / den;
    return true;
  }

  // SparseArea(j) for every j in [j0, j1]; out[k] holds j0 + k.
  void SparseAreaBatch(int64_t j0, int64_t j1, double* out) const {
    const SparseBatchArgs args{sp_, sp_prev_, h_sp_, i_};
    // Tiny batches (AB's first adaptive-walk windows, where most anchors
    // stop) don't amortize the vector setup; the scalar reference computes
    // identical bits, so routing them there is purely a perf decision.
    if (j1 - j0 + 1 < 8) {
      SparseAreaBatchScalar(args, j0, j1, out);
      return;
    }
    switch (backend_) {
#if CONSERVATION_KERNEL_HAVE_AVX2
      case SimdBackend::kAvx2:
        avx2::SparseAreaBatch(args, j0, j1, out);
        return;
#endif
#if CONSERVATION_KERNEL_HAVE_NEON
      case SimdBackend::kNeon:
        neon::SparseAreaBatch(args, j0, j1, out);
        return;
#endif
      default:
        SparseAreaBatchScalar(args, j0, j1, out);
        return;
    }
  }

  // Confidence(j) for every j in [j0, j1]; lane k holds j0 + k.
  // out_valid[k] is 1 iff the denominator is positive; out_conf[k] is the
  // confidence when valid and exactly 0.0 otherwise (all backends).
  void ConfidenceBatch(int64_t j0, int64_t j1, double* out_conf,
                       uint8_t* out_valid) const {
    const LeftAnchorBatchArgs args{sa_,  sb_,  sa_prev_, sb_prev_,
                                   h_a_, h_b_, i_};
    switch (backend_) {
#if CONSERVATION_KERNEL_HAVE_AVX2
      case SimdBackend::kAvx2:
        avx2::ConfidenceBatch(args, j0, j1, out_conf, out_valid);
        return;
#endif
#if CONSERVATION_KERNEL_HAVE_NEON
      case SimdBackend::kNeon:
        neon::ConfidenceBatch(args, j0, j1, out_conf, out_valid);
        return;
#endif
      default:
        ConfidenceBatchScalar(args, j0, j1, out_conf, out_valid);
        return;
    }
  }

  // Confidence(js[k]) for an ascending endpoint list (AB-opt breakpoint
  // probes); same output contract as ConfidenceBatch.
  void ConfidenceIndexBatch(const int64_t* js, int64_t count,
                            double* out_conf, uint8_t* out_valid) const {
    const LeftAnchorBatchArgs args{sa_,  sb_,  sa_prev_, sb_prev_,
                                   h_a_, h_b_, i_};
    switch (backend_) {
#if CONSERVATION_KERNEL_HAVE_AVX2
      case SimdBackend::kAvx2:
        avx2::ConfidenceIndexBatch(args, js, count, out_conf, out_valid);
        return;
#endif
#if CONSERVATION_KERNEL_HAVE_NEON
      case SimdBackend::kNeon:
        neon::ConfidenceIndexBatch(args, js, count, out_conf, out_valid);
        return;
#endif
      default:
        ConfidenceIndexBatchScalar(args, js, count, out_conf, out_valid);
        return;
    }
  }

  // --- Cross-walk rounds (interval/walk.h) ---
  // One lane per active walk; per-anchor state becomes per-lane arrays.

  // Hoisted sparsification state for the current anchor (after
  // BeginAnchor); the walk schedulers snapshot these into their lane
  // arrays so a lane's probes skip the per-probe baseline re-derivation.
  double sp_prev() const { return sp_prev_; }
  double h_sp() const { return h_sp_; }
  // The sparsification cumulative array itself, for walk completion code
  // that re-derives a probe's area outside a batch call (walk.h). Computed
  // from the tableau type, not the BeginAnchor-lazy sp_ cache, so it is
  // valid before the first anchor begins.
  const double* sp() const { return hold_ ? sb_ : sa_; }

  // One branchless binary-search step for `count` in-progress walk-lane
  // searches: probes SparseArea at each lane's midpoint and updates the
  // lane's lo/hi/result registers in place (see WalkRoundArgs). Returns
  // the bitmask of lanes whose search just completed, so count <= 64.
  // args.sp is supplied by the kernel; per lane, one round is bit-identical
  // to one iteration of the scalar largest-endpoint search loop.
  uint64_t SparseWalkRound(WalkRoundArgs args, int64_t count) const {
    args.sp = sp_;
    if (count < 4) return SparseWalkRoundScalar(args, count);
    switch (backend_) {
#if CONSERVATION_KERNEL_HAVE_AVX2
      case SimdBackend::kAvx2:
        return avx2::SparseWalkRound(args, count);
#endif
#if CONSERVATION_KERNEL_HAVE_NEON
      case SimdBackend::kNeon:
        return neon::SparseWalkRound(args, count);
#endif
      default:
        return SparseWalkRoundScalar(args, count);
    }
  }

  // --- Right-anchored sweeps (NAB): fix endpoint j, vary anchor i ---

  void BeginRightAnchor(int64_t j) {
    j_ = j;
    sa_end_ = sa_[j];
    sb_end_ = sb_[j];
  }

  // conf(i, j_); false when the denominator is not positive.
  bool ConfidenceFrom(int64_t i, double* conf) const {
    const double prev = a_[i - 1];
    const double gap = s_[i];
    const double h_a =
        model_ == core::ConfidenceModel::kCredit ? prev - gap : prev;
    const double h_b =
        model_ == core::ConfidenceModel::kDebit ? prev + gap : prev;
    const double len = static_cast<double>(j_ - i + 1);
    const double den_raw = (sb_end_ - sb_[i - 1]) - len * h_b;
    const double den = den_raw < 0.0 ? 0.0 : den_raw;
    if (den <= 0.0) return false;
    const double num_raw = (sa_end_ - sa_[i - 1]) - len * h_a;
    const double num = num_raw < 0.0 ? 0.0 : num_raw;
    *conf = num / den;
    return true;
  }

  // ConfidenceFrom(is[k]) for an anchor list (NAB level probes); same
  // output contract as ConfidenceBatch.
  void ConfidenceFromBatch(const int64_t* is, int64_t count,
                           double* out_conf, uint8_t* out_valid) const {
    const RightAnchorBatchArgs args{a_,      s_,      sa_, sb_,
                                    sa_end_, sb_end_, j_,  model_};
    switch (backend_) {
#if CONSERVATION_KERNEL_HAVE_AVX2
      case SimdBackend::kAvx2:
        avx2::ConfidenceFromBatch(args, is, count, out_conf, out_valid);
        return;
#endif
#if CONSERVATION_KERNEL_HAVE_NEON
      case SimdBackend::kNeon:
        neon::ConfidenceFromBatch(args, is, count, out_conf, out_valid);
        return;
#endif
      default:
        ConfidenceFromBatchScalar(args, is, count, out_conf, out_valid);
        return;
    }
  }

  SimdBackend backend() const { return backend_; }

 private:
  const double* __restrict a_;
  const double* __restrict sa_;
  const double* __restrict sb_;
  const double* __restrict s_;
  const core::ConfidenceModel model_;
  const bool hold_;
  const bool sparse_balance_;
  // Resolved once per kernel so the per-batch dispatch is a predictable
  // switch on a register, not an atomic load.
  const SimdBackend backend_ = ActiveSimdBackend();

  // Left-anchor state (BeginAnchor).
  int64_t i_ = 0;
  double h_a_ = 0.0;
  double h_b_ = 0.0;
  double sa_prev_ = 0.0;
  double sb_prev_ = 0.0;
  const double* __restrict sp_ = nullptr;
  double sp_prev_ = 0.0;
  double h_sp_ = 0.0;

  // Right-anchor state (BeginRightAnchor).
  int64_t j_ = 0;
  double sa_end_ = 0.0;
  double sb_end_ = 0.0;
};

}  // namespace conservation::interval::internal

#endif  // CONSERVATION_INTERVAL_KERNEL_H_
