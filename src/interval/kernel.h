// Flat-array confidence kernels for the generator inner sweeps.
//
// The generators evaluate areas and confidences hundreds of millions of
// times per run. Routing every evaluation through ConfidenceEvaluator costs,
// per call: two pointer hops into the series object, a recomputation of the
// per-anchor baselines H_i^A / H_i^B (A(i-1) and SuffixMinGap(i) lookups and
// a model branch), and an std::optional round trip. ConfidenceKernel
// resolves the cumulative arrays (A, SA, SB, S) to __restrict pointers once
// per chunk and hoists the anchor baselines out of the endpoint loop, so the
// inner sweep touches only flat arrays and registers.
//
// Bit-identity contract: every expression below reproduces the evaluator's
// arithmetic with the same operand values and the same evaluation order
// (see core/confidence.h), so kernel results are bit-identical to evaluator
// results — the sharded drivers rely on this to keep parallel output equal
// to the sequential run.

#ifndef CONSERVATION_INTERVAL_KERNEL_H_
#define CONSERVATION_INTERVAL_KERNEL_H_

#include <cstdint>

#include "core/confidence.h"
#include "core/model.h"

namespace conservation::interval::internal {

class ConfidenceKernel {
 public:
  ConfidenceKernel(const core::ConfidenceEvaluator& eval,
                   core::TableauType type)
      : a_(eval.series().a_data()),
        sa_(eval.series().sa_data()),
        sb_(eval.series().sb_data()),
        s_(eval.series().suffix_min_gap_data()),
        model_(eval.model()),
        hold_(type == core::TableauType::kHold),
        // Fail tableaux sparsify on the numerator area; in the credit model
        // the baseline A_{i-1} - S_i is not monotone, so the algorithm
        // reuses the balance-model breakpoints (paper §III.D, Theorems 5-6).
        sparse_balance_(!hold_ &&
                        eval.model() == core::ConfidenceModel::kCredit) {}

  // --- Left-anchored sweeps (AB, AB-opt): fix anchor i, vary endpoint j ---

  void BeginAnchor(int64_t i) {
    i_ = i;
    const double prev = a_[i - 1];
    const double gap = s_[i];
    h_a_ = model_ == core::ConfidenceModel::kCredit ? prev - gap : prev;
    h_b_ = model_ == core::ConfidenceModel::kDebit ? prev + gap : prev;
    sa_prev_ = sa_[i - 1];
    sb_prev_ = sb_[i - 1];
    sp_ = hold_ ? sb_ : sa_;
    sp_prev_ = hold_ ? sb_prev_ : sa_prev_;
    h_sp_ = hold_ ? h_b_ : (sparse_balance_ ? prev : h_a_);
  }

  // SparsificationArea(i_, j): area_B for hold, area_A for fail
  // (balance-model area_A when the model is credit).
  double SparseArea(int64_t j) const {
    const double raw = (sp_[j] - sp_prev_) -
                       static_cast<double>(j - i_ + 1) * h_sp_;
    return raw < 0.0 ? 0.0 : raw;
  }

  // conf(i_, j); false when the denominator is not positive (undefined).
  bool Confidence(int64_t j, double* conf) const {
    const double len = static_cast<double>(j - i_ + 1);
    const double den_raw = (sb_[j] - sb_prev_) - len * h_b_;
    const double den = den_raw < 0.0 ? 0.0 : den_raw;
    if (den <= 0.0) return false;
    const double num_raw = (sa_[j] - sa_prev_) - len * h_a_;
    const double num = num_raw < 0.0 ? 0.0 : num_raw;
    *conf = num / den;
    return true;
  }

  // --- Right-anchored sweeps (NAB): fix endpoint j, vary anchor i ---

  void BeginRightAnchor(int64_t j) {
    j_ = j;
    sa_end_ = sa_[j];
    sb_end_ = sb_[j];
  }

  // conf(i, j_); false when the denominator is not positive.
  bool ConfidenceFrom(int64_t i, double* conf) const {
    const double prev = a_[i - 1];
    const double gap = s_[i];
    const double h_a =
        model_ == core::ConfidenceModel::kCredit ? prev - gap : prev;
    const double h_b =
        model_ == core::ConfidenceModel::kDebit ? prev + gap : prev;
    const double len = static_cast<double>(j_ - i + 1);
    const double den_raw = (sb_end_ - sb_[i - 1]) - len * h_b;
    const double den = den_raw < 0.0 ? 0.0 : den_raw;
    if (den <= 0.0) return false;
    const double num_raw = (sa_end_ - sa_[i - 1]) - len * h_a;
    const double num = num_raw < 0.0 ? 0.0 : num_raw;
    *conf = num / den;
    return true;
  }

 private:
  const double* __restrict a_;
  const double* __restrict sa_;
  const double* __restrict sb_;
  const double* __restrict s_;
  const core::ConfidenceModel model_;
  const bool hold_;
  const bool sparse_balance_;

  // Left-anchor state (BeginAnchor).
  int64_t i_ = 0;
  double h_a_ = 0.0;
  double h_b_ = 0.0;
  double sa_prev_ = 0.0;
  double sb_prev_ = 0.0;
  const double* __restrict sp_ = nullptr;
  double sp_prev_ = 0.0;
  double h_sp_ = 0.0;

  // Right-anchor state (BeginRightAnchor).
  int64_t j_ = 0;
  double sa_end_ = 0.0;
  double sb_end_ = 0.0;
};

}  // namespace conservation::interval::internal

#endif  // CONSERVATION_INTERVAL_KERNEL_H_
