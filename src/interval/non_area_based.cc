#include "interval/non_area_based.h"

#include <algorithm>
#include <cmath>

#include "interval/kernel.h"
#include "interval/prune.h"
#include "interval/shard.h"
#include "interval/walk.h"

namespace conservation::interval {

std::vector<int64_t> NonAreaBasedGenerator::MakeLengthSchedule(
    LengthSchedule schedule, double epsilon, int64_t max_length) {
  CR_CHECK(epsilon > 0.0);
  CR_CHECK(max_length >= 1);
  const double growth = 1.0 + epsilon;
  std::vector<int64_t> lengths;
  if (schedule == LengthSchedule::kGeometric) {
    // floor((1+eps)^h), h = 0, 1, 2, ... — duplicates included, as in the
    // paper's NAB, whose per-anchor level count is 1 + ceil(log_{1+eps} j).
    double power = 1.0;
    while (true) {
      const int64_t len = static_cast<int64_t>(power);
      lengths.push_back(std::min(len, max_length));
      if (len >= max_length) break;
      power *= growth;
    }
  } else {
    int64_t len = 1;
    while (true) {
      lengths.push_back(std::min(len, max_length));
      if (len >= max_length) break;
      len = std::max(len + 1,
                     static_cast<int64_t>(growth * static_cast<double>(len)));
    }
  }
  return lengths;
}

std::vector<Candidate> NonAreaBasedGenerator::GenerateCandidates(
    const core::ConfidenceEvaluator& eval, const GeneratorOptions& options,
    GeneratorStats* stats) const {
  // The §V algorithms are defined for the balance model only; the tableau
  // facade routes other models to AB. See header.
  CR_CHECK(eval.model() == core::ConfidenceModel::kBalance);
  const int64_t n = eval.n();
  const std::vector<int64_t> lengths =
      MakeLengthSchedule(schedule_, options.epsilon, n);

  // Sketch anchor screen over right anchors (relaxed threshold), shared
  // read-only by every chunk. Gated behind sketch_nab_right (default off,
  // DESIGN.md §4f): the length schedule already caps probes per anchor at
  // O(log n), so the screen rarely amortizes its construction here. The
  // walks below keep using `options` — only the screen sees the override.
  GeneratorOptions screen_options = options;
  if (!options.sketch_nab_right) screen_options.sketch = SketchMode::kOff;
  const internal::ScopedSketchScreen scoped(
      eval, screen_options, internal::SketchScreen::Anchor::kRight,
      /*relaxed=*/true);
  const internal::SketchScreen* screen = scoped.get();

  // Right anchors are processed in descending order within a chunk, and
  // chunks are claimed in descending anchor order (ChunkOrder::kDescending),
  // so the anchor that can produce [1, n] under stop_on_full_cover comes
  // first — mirroring AB, whose i = 1 anchor comes first. Results are order
  // independent otherwise, and the final sort makes the concatenated chunk
  // outputs identical to the sequential run (each anchor emits at most one
  // interval, so positions are distinct).
  //
  // `first_covering` tracks the index of the first schedule entry >= j; it
  // only moves left as j decreases, so maintaining it is O(1) amortized.
  // Each chunk re-bases it from the end of the schedule — at most one extra
  // walk down the schedule per chunk. The confidence sweep runs on the
  // flat-array kernel with the right-endpoint prefix sums hoisted per
  // anchor (interval/kernel.h).
  auto block = [&, n](int64_t j_begin, int64_t j_end,
                      GeneratorStats* chunk_stats) {
    internal::ConfidenceKernel kernel(eval, options.type);
    internal::NabWalkContext ctx{&lengths, &options};
    internal::NabWalkScratch scratch;
    internal::WalkStepCounters counters;
    internal::NabWalkState walk;
    std::vector<Candidate> out;
    out.reserve(static_cast<size_t>(j_end - j_begin + 1));
    uint64_t walks_started = 0;
    uint64_t walk_steps = 0;
    uint64_t pruned = 0;
    uint64_t sketch_blocks = 0;
    size_t first_covering = lengths.size() - 1;  // last entry is >= n >= j
    for (int64_t j = j_end; j >= j_begin; --j) {
      // first_covering is monotone cross-anchor state: keep it current even
      // for anchors the screen skips, so later (smaller) j see the same
      // cursor the unscreened sweep would.
      while (first_covering > 0 && lengths[first_covering - 1] >= j) {
        --first_covering;
      }
      if (screen != nullptr && !screen->MayEmitRight(j, &sketch_blocks)) {
        ++pruned;
        continue;
      }
      kernel.BeginRightAnchor(j);
      // Schedule entries applicable to this anchor: all lengths < j plus
      // the first one >= j (which clamps to i = 1).
      walk.Begin(j, first_covering + 1);
      ++walks_started;
      while (!walk.finished) {
        walk.Step(kernel, ctx, &scratch, &counters);
        ++walk_steps;
      }
      if (walk.best_i >= 1) {
        out.push_back(Candidate{Interval{walk.best_i, j}, walk.best_conf});
        if (options.stop_on_full_cover && walk.best_i == 1 && j == n) break;
      }
    }
    chunk_stats->intervals_tested = counters.tested;
    chunk_stats->batches = counters.batches;
    chunk_stats->walks = walks_started;
    chunk_stats->walk_rounds = walk_steps;
    chunk_stats->anchors_pruned = pruned;
    chunk_stats->sketch_blocks = sketch_blocks;
    return out;
  };

  std::vector<Candidate> out = internal::RunSharded(
      n, options, stats, block, internal::ChunkOrder::kDescending);
  if (stats != nullptr) stats->sketch_blocks += scoped.construction_blocks();
  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    return ByPosition(a.interval, b.interval);
  });
  return out;
}

}  // namespace conservation::interval
