#include "interval/non_area_based.h"

#include <algorithm>
#include <cmath>

#include "interval/kernel.h"
#include "interval/shard.h"

namespace conservation::interval {

std::vector<int64_t> NonAreaBasedGenerator::MakeLengthSchedule(
    LengthSchedule schedule, double epsilon, int64_t max_length) {
  CR_CHECK(epsilon > 0.0);
  CR_CHECK(max_length >= 1);
  const double growth = 1.0 + epsilon;
  std::vector<int64_t> lengths;
  if (schedule == LengthSchedule::kGeometric) {
    // floor((1+eps)^h), h = 0, 1, 2, ... — duplicates included, as in the
    // paper's NAB, whose per-anchor level count is 1 + ceil(log_{1+eps} j).
    double power = 1.0;
    while (true) {
      const int64_t len = static_cast<int64_t>(power);
      lengths.push_back(std::min(len, max_length));
      if (len >= max_length) break;
      power *= growth;
    }
  } else {
    int64_t len = 1;
    while (true) {
      lengths.push_back(std::min(len, max_length));
      if (len >= max_length) break;
      len = std::max(len + 1,
                     static_cast<int64_t>(growth * static_cast<double>(len)));
    }
  }
  return lengths;
}

std::vector<Candidate> NonAreaBasedGenerator::GenerateCandidates(
    const core::ConfidenceEvaluator& eval, const GeneratorOptions& options,
    GeneratorStats* stats) const {
  // The §V algorithms are defined for the balance model only; the tableau
  // facade routes other models to AB. See header.
  CR_CHECK(eval.model() == core::ConfidenceModel::kBalance);
  const int64_t n = eval.n();
  const std::vector<int64_t> lengths =
      MakeLengthSchedule(schedule_, options.epsilon, n);

  // Right anchors are processed in descending order within a chunk, and
  // chunks are claimed in descending anchor order (ChunkOrder::kDescending),
  // so the anchor that can produce [1, n] under stop_on_full_cover comes
  // first — mirroring AB, whose i = 1 anchor comes first. Results are order
  // independent otherwise, and the final sort makes the concatenated chunk
  // outputs identical to the sequential run (each anchor emits at most one
  // interval, so positions are distinct).
  //
  // `first_covering` tracks the index of the first schedule entry >= j; it
  // only moves left as j decreases, so maintaining it is O(1) amortized.
  // Each chunk re-bases it from the end of the schedule — at most one extra
  // walk down the schedule per chunk. The confidence sweep runs on the
  // flat-array kernel with the right-endpoint prefix sums hoisted per
  // anchor (interval/kernel.h).
  auto block = [&, n](int64_t j_begin, int64_t j_end,
                      GeneratorStats* chunk_stats) {
    internal::ConfidenceKernel kernel(eval, options.type);
    std::vector<Candidate> out;
    out.reserve(static_cast<size_t>(j_end - j_begin + 1));
    std::vector<int64_t> level_is(lengths.size());
    std::vector<double> conf_buf(lengths.size());
    std::vector<uint8_t> valid_buf(lengths.size());
    uint64_t tested = 0;
    uint64_t batches = 0;
    size_t first_covering = lengths.size() - 1;  // last entry is >= n >= j
    for (int64_t j = j_end; j >= j_begin; --j) {
      kernel.BeginRightAnchor(j);
      int64_t best_i = 0;
      double best_conf = 0.0;
      while (first_covering > 0 && lengths[first_covering - 1] >= j) {
        --first_covering;
      }
      // Schedule entries applicable to this anchor: all lengths < j plus
      // the first one >= j (which clamps to i = 1).
      const size_t applicable = first_covering + 1;

      // Left anchors per level, probed through the right-anchored batch
      // kernel (index-list gather over a, SA, SB).
      for (size_t h = 0; h < applicable; ++h) {
        level_is[h] = std::max<int64_t>(1, j + 1 - lengths[h]);
      }

      if (options.largest_first_early_exit) {
        // Longest level first, in reverse blocks; the first qualifying
        // level wins (best_i is always 0 at that point, so the scalar
        // `i < best_i` refinement is vacuous). Lanes past the winner are
        // speculative and uncounted, keeping `tested` scalar-identical.
        constexpr size_t kProbeBlock = 8;
        bool found = false;
        for (size_t end = applicable; end > 0 && !found;) {
          const size_t begin = end >= kProbeBlock ? end - kProbeBlock : 0;
          kernel.ConfidenceFromBatch(level_is.data() + begin,
                                     static_cast<int64_t>(end - begin),
                                     conf_buf.data(), valid_buf.data());
          ++batches;
          for (size_t h = end; h-- > begin;) {
            ++tested;
            if (valid_buf[h - begin] &&
                PassesRelaxedThreshold(conf_buf[h - begin], options)) {
              best_i = level_is[h];
              best_conf = conf_buf[h - begin];
              found = true;
              break;
            }
          }
          end = begin;
        }
      } else {
        kernel.ConfidenceFromBatch(level_is.data(),
                                   static_cast<int64_t>(applicable),
                                   conf_buf.data(), valid_buf.data());
        ++batches;
        tested += applicable;
        for (size_t h = 0; h < applicable; ++h) {
          if (valid_buf[h] && PassesRelaxedThreshold(conf_buf[h], options) &&
              (best_i == 0 || level_is[h] < best_i)) {
            best_i = level_is[h];
            best_conf = conf_buf[h];
          }
        }
      }

      if (best_i >= 1) {
        out.push_back(Candidate{Interval{best_i, j}, best_conf});
        if (options.stop_on_full_cover && best_i == 1 && j == n) break;
      }
    }
    chunk_stats->intervals_tested = tested;
    chunk_stats->batches = batches;
    return out;
  };

  std::vector<Candidate> out = internal::RunSharded(
      n, options, stats, block, internal::ChunkOrder::kDescending);
  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    return ByPosition(a.interval, b.interval);
  });
  return out;
}

}  // namespace conservation::interval
