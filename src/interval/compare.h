// Interval-set comparison: quantify how two candidate/tableau interval sets
// relate. Used to reproduce the paper's §VI result-agreement analysis (AB
// vs NAB) and generally useful for comparing algorithm variants, epsilon
// settings, or runs over revised data.

#ifndef CONSERVATION_INTERVAL_COMPARE_H_
#define CONSERVATION_INTERVAL_COMPARE_H_

#include <cstddef>
#include <vector>

#include "interval/interval.h"

namespace conservation::interval {

struct SetComparison {
  size_t lhs_total = 0;
  size_t rhs_total = 0;
  // Intervals present (exactly) in both sets.
  size_t identical = 0;
  // Non-identical lhs intervals overlapping at least one rhs interval.
  size_t overlapping = 0;
  // Non-identical lhs intervals with no rhs overlap at all.
  size_t unmatched = 0;
  // Mean best-overlap Jaccard among the `overlapping` ones.
  double mean_jaccard = 0.0;
  // Coverage agreement: |union(lhs) ∩ union(rhs)| / |union(lhs) ∪
  // union(rhs)|; 1.0 when both cover exactly the same ticks (or both are
  // empty).
  double coverage_jaccard = 1.0;
};

// Jaccard similarity of two intervals: |∩| / |∪| over ticks; 0 when
// disjoint.
double IntervalJaccard(const Interval& lhs, const Interval& rhs);

// Compares the two sets. O(|lhs| * |rhs| + (|lhs|+|rhs|) log(...)).
SetComparison CompareIntervalSets(const std::vector<Interval>& lhs,
                                  const std::vector<Interval>& rhs);

}  // namespace conservation::interval

#endif  // CONSERVATION_INTERVAL_COMPARE_H_
