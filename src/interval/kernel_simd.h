// Batched, branchless confidence-kernel backends with runtime dispatch.
//
// The generator inner sweeps (interval/kernel.h) are scan-shaped: evaluate
// one arithmetic expression over a run of endpoints (or an index list of
// endpoints) against flat cumulative arrays. This header implements those
// sweeps as batch routines in three backends — AVX2 (4 lanes), NEON
// (2 lanes), and portable scalar — and selects one backend per process at
// first use via runtime CPU detection (util/cpu.h), gated by the
// CONSERVATION_SIMD build option (auto | avx2 | neon | off).
//
// Bit-identity contract (the whole point): every backend reproduces the
// scalar kernel's arithmetic lane by lane — the same operand values, the
// same operation order, only IEEE-exact lanewise add/sub/mul/div. No FMA
// (the build pins -ffp-contract=off and no backend enables an FMA ISA), no
// reassociation, no approximate reciprocals. Clamp-to-zero is a compare
// mask + select replicating `raw < 0.0 ? 0.0 : raw` exactly (a plain
// vector max would rewrite -0.0 to +0.0 and disagree with the scalar
// ternary in the last bit); validity is a `den > 0.0` compare mask.
// Consequently the candidate stream of every generator is byte-identical
// across backends, thread counts, and CONSERVATION_SIMD settings —
// enforced by tests/kernel_batch_test.cc and tools/stdout_regression.sh.
//
// Batch output contract:
//   * Lane k of a batch holds endpoint j0 + k (contiguous forms) or
//     index_list[k] (index-list forms) — ascending, no permutation.
//   * out_valid[k] is 1 iff the confidence denominator is > 0 (the paper
//     leaves conf undefined otherwise); out_conf[k] is the confidence when
//     valid and exactly 0.0 when invalid, on every backend, so whole
//     output arrays can be compared bytewise in tests.
//   * Tails shorter than the vector width run the identical scalar
//     expressions — batches never load past the requested range (the ASan
//     configuration of kernel_batch_test guards this).
//   * Exact int64 -> double lane conversion assumes indices < 2^52, far
//     above any representable tick count.

#ifndef CONSERVATION_INTERVAL_KERNEL_SIMD_H_
#define CONSERVATION_INTERVAL_KERNEL_SIMD_H_

#include <atomic>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "core/model.h"
#include "obs/metrics.h"
#include "util/cpu.h"

// Compile-time backend availability. CONSERVATION_SIMD=off defines
// CONSERVATION_SIMD_DISABLED and strips every vector backend from the
// build; avx2/neon define CONSERVATION_SIMD_FORCE_* and narrow the runtime
// choice to that backend (still subject to CPU support, falling back to
// scalar when the hardware lacks it).
#if !defined(CONSERVATION_SIMD_DISABLED) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define CONSERVATION_KERNEL_HAVE_AVX2 1
#include <immintrin.h>
#else
#define CONSERVATION_KERNEL_HAVE_AVX2 0
#endif

#if !defined(CONSERVATION_SIMD_DISABLED) && defined(__aarch64__)
#define CONSERVATION_KERNEL_HAVE_NEON 1
#include <arm_neon.h>
#else
#define CONSERVATION_KERNEL_HAVE_NEON 0
#endif

namespace conservation::interval::internal {

// Numeric codes are stable and published as the `kernel.backend` gauge
// (docs/OBSERVABILITY.md): 0 = scalar, 1 = avx2, 2 = neon.
enum class SimdBackend : int { kScalar = 0, kAvx2 = 1, kNeon = 2 };

inline const char* SimdBackendName(SimdBackend backend) {
  switch (backend) {
    case SimdBackend::kAvx2:
      return "avx2";
    case SimdBackend::kNeon:
      return "neon";
    case SimdBackend::kScalar:
    default:
      return "scalar";
  }
}

// Vector lanes per batch op on a backend (doubles per register). The walk
// schedulers size their auto width as a multiple of this.
inline int SimdLaneWidth(SimdBackend backend) {
  switch (backend) {
    case SimdBackend::kAvx2:
      return 4;
    case SimdBackend::kNeon:
      return 2;
    case SimdBackend::kScalar:
    default:
      return 1;
  }
}

// --- Backend selection -----------------------------------------------------

// What a CONSERVATION_SIMD environment value asks for. kAuto covers the
// unset/empty/"auto" cases (use the build-time default and CPU detection);
// kInvalid marks a token that names no backend — SelectBackend treats it as
// a fatal configuration error rather than silently running scalar.
enum class SimdRequest { kAuto, kScalar, kAvx2, kNeon, kInvalid };

// Case-insensitive parse of a CONSERVATION_SIMD value. "off" and "scalar"
// are synonyms, matching the CMake option's spelling and the backend name.
inline SimdRequest ParseSimdRequest(const char* text) {
  if (text == nullptr) return SimdRequest::kAuto;
  char lowered[8];
  size_t len = 0;
  for (; text[len] != '\0'; ++len) {
    if (len >= sizeof(lowered) - 1) return SimdRequest::kInvalid;
    lowered[len] = static_cast<char>(
        std::tolower(static_cast<unsigned char>(text[len])));
  }
  lowered[len] = '\0';
  const std::string_view value(lowered, len);
  if (value.empty() || value == "auto") return SimdRequest::kAuto;
  if (value == "off" || value == "scalar") return SimdRequest::kScalar;
  if (value == "avx2") return SimdRequest::kAvx2;
  if (value == "neon") return SimdRequest::kNeon;
  return SimdRequest::kInvalid;
}

namespace simd_detail {

// -1 = not yet selected; >= 0 holds the SimdBackend code.
inline std::atomic<int>& BackendStorage() {
  static std::atomic<int> storage{-1};
  return storage;
}

inline void PublishBackendGauge(SimdBackend backend) {
  obs::Registry::Global().Gauge("kernel.backend").Set(
      static_cast<double>(static_cast<int>(backend)));
}

// Build-time default: what the CMake CONSERVATION_SIMD option narrowed the
// runtime choice to, subject to CPU support.
inline SimdBackend SelectBackendDefault() {
#if defined(CONSERVATION_SIMD_DISABLED)
  return SimdBackend::kScalar;
#else
  const util::CpuFeatures& cpu = util::CpuInfo();
#if defined(CONSERVATION_SIMD_FORCE_AVX2)
  return (CONSERVATION_KERNEL_HAVE_AVX2 && cpu.avx2) ? SimdBackend::kAvx2
                                                     : SimdBackend::kScalar;
#elif defined(CONSERVATION_SIMD_FORCE_NEON)
  return (CONSERVATION_KERNEL_HAVE_NEON && cpu.neon) ? SimdBackend::kNeon
                                                     : SimdBackend::kScalar;
#else
  if (CONSERVATION_KERNEL_HAVE_AVX2 && cpu.avx2) return SimdBackend::kAvx2;
  if (CONSERVATION_KERNEL_HAVE_NEON && cpu.neon) return SimdBackend::kNeon;
  return SimdBackend::kScalar;
#endif
#endif
}

// Runtime backend choice: the CONSERVATION_SIMD environment variable (same
// vocabulary as the CMake option, case-insensitive) overrides the build
// default; a backend the build stripped or the CPU lacks falls back to
// scalar (a hardware fact, not a typo). An unknown token is a fatal error:
// silently running scalar would make every benchmark on the machine lie.
inline SimdBackend SelectBackend() {
  const char* env = std::getenv("CONSERVATION_SIMD");
  switch (ParseSimdRequest(env)) {
    case SimdRequest::kScalar:
      return SimdBackend::kScalar;
    case SimdRequest::kAvx2:
      return (CONSERVATION_KERNEL_HAVE_AVX2 && util::CpuInfo().avx2)
                 ? SimdBackend::kAvx2
                 : SimdBackend::kScalar;
    case SimdRequest::kNeon:
      return (CONSERVATION_KERNEL_HAVE_NEON && util::CpuInfo().neon)
                 ? SimdBackend::kNeon
                 : SimdBackend::kScalar;
    case SimdRequest::kInvalid:
      std::fprintf(stderr,
                   "CONSERVATION_SIMD: unknown value '%s' "
                   "(expected auto, avx2, neon, off, or scalar)\n",
                   env);
      std::exit(2);
    case SimdRequest::kAuto:
      break;
  }
  return SelectBackendDefault();
}

}  // namespace simd_detail

// The backend every ConfidenceKernel constructed afterwards will use.
// Selected once (first caller wins; concurrent first calls agree because
// SelectBackend is deterministic) and published to the `kernel.backend`
// gauge.
inline SimdBackend ActiveSimdBackend() {
  std::atomic<int>& storage = simd_detail::BackendStorage();
  int current = storage.load(std::memory_order_relaxed);
  if (current < 0) {
    const SimdBackend selected = simd_detail::SelectBackend();
    int expected = -1;
    if (storage.compare_exchange_strong(expected,
                                        static_cast<int>(selected),
                                        std::memory_order_relaxed)) {
      simd_detail::PublishBackendGauge(selected);
    }
    current = storage.load(std::memory_order_relaxed);
  }
  return static_cast<SimdBackend>(current);
}

// Test/bench override: forces the backend used by subsequently constructed
// kernels (a backend not compiled in, or not supported by this CPU,
// silently behaves as scalar at dispatch). Not for concurrent use with
// in-flight generation.
inline void SetSimdBackendForTest(SimdBackend backend) {
  simd_detail::BackendStorage().store(static_cast<int>(backend),
                                      std::memory_order_relaxed);
  simd_detail::PublishBackendGauge(backend);
}

// --- Batch argument blocks -------------------------------------------------
// Snapshots of the per-anchor state the scalar kernel hoists
// (interval/kernel.h); built by ConfidenceKernel, consumed by the backends.

// Left-anchored confidence sweep: anchor i fixed, endpoint j varies.
struct LeftAnchorBatchArgs {
  const double* sa;
  const double* sb;
  double sa_prev;
  double sb_prev;
  double h_a;
  double h_b;
  int64_t i;
};

// Left-anchored sparsification-area sweep.
struct SparseBatchArgs {
  const double* sp;
  double sp_prev;
  double h_sp;
  int64_t i;
};

// Right-anchored confidence sweep (NAB): endpoint j fixed, anchor i varies.
struct RightAnchorBatchArgs {
  const double* a;
  const double* s;
  const double* sa;
  const double* sb;
  double sa_end;
  double sb_end;
  int64_t j;
  core::ConfidenceModel model;
};

// --- Cross-walk round form -------------------------------------------------
// One lane per concurrently active walk (interval/walk.h): every lane
// carries its own anchor, so the per-anchor snapshots become per-lane
// arrays. The shared cumulative arrays stay process-wide pointers.

// One binary-search step for every walk lane at once. Each lane is an
// in-progress largest-endpoint-within search (area_based_opt.cc): the
// round computes mid = lo + (hi - lo)/2, probes SparseArea_{i}(mid), and
// applies the accept/reject register update branchlessly — the outcome is
// data-random, so per-lane branches would mispredict every other probe.
// Bit-identical per lane to one iteration of the scalar search loop.
// Returns a bitmask of lanes whose search just completed (lo > hi), which
// caps a round at 64 lanes.
struct WalkRoundArgs {
  const double* sp;        // shared cumulative array (SB hold / SA fail)
  const double* sp_prev;   // per lane: sp[i-1] hoisted at walk start
  const double* h_sp;      // per lane: sparsification baseline
  const int64_t* i;        // per lane: walk anchor
  const double* threshold; // per lane: current search threshold
  int64_t* lo;             // per lane search registers, updated in place
  int64_t* hi;
};
// The round deliberately maintains no `result` or probe-area register: the
// accept step (lo = mid + 1 on success, result = mid) keeps result == lo - 1
// at every point of the search, and on completion both the accepted probe's
// area (at result) and a forced search's final probe area (at result + 1)
// re-derive bit-exactly from sp and the hoisted lane baselines (walk.h
// AbOptWalkState). Dropping the registers saves lane loads, blends, and
// stores on every probe of every search.

// --- Sketch screen block forms ---------------------------------------------
// Conservative "could any (anchor, endpoint) pair touching this sketch
// block pass the threshold?" tests over the block quantization maps
// (series/sketch.h), used by the anchor screen (interval/prune.h). Lane m
// evaluates sketch block b0 + m; its bit is 1 when the block MAY contain a
// passing pair — never 0 for a block that does, which is the screen's
// no-false-negative guarantee (DESIGN.md §4f derives the bounds). All
// backends use lanewise-identical IEEE arithmetic, so the mask — and with
// it every prune decision and pruned-aware counter — is the same for every
// CONSERVATION_SIMD setting.

// Left-anchored form (exhaustive / AB / AB-opt): anchors i in [i_lo, i_hi]
// (a single anchor when i_lo == i_hi, with the sa_prev/sb_prev/h ranges
// collapsed to the exact hoisted scalars of BeginAnchor), endpoints j
// grouped by sketch block.
struct SketchScanArgs {
  // Per-endpoint-block bounds on SA and SB (sketch block maps).
  const double* sa_blk_lo;
  const double* sa_blk_hi;
  const double* sb_blk_lo;
  const double* sb_blk_hi;
  // Anchor-side ranges: exact scalars for a single-anchor test (lo == hi)
  // or sketch-derived bounds for a whole anchor group.
  double sa_prev_lo, sa_prev_hi;
  double sb_prev_lo, sb_prev_hi;
  double h_a_lo, h_a_hi;
  double h_b_lo, h_b_hi;
  int64_t i_lo, i_hi;  // anchor index range
  int64_t block;       // ticks per sketch block
  int64_t n;           // endpoint ceiling (j <= n)
  double threshold;    // acceptance constant t (interval/prune.h)
  bool hold;           // hold: pass is conf >= t; fail: conf <= t
};

// Right-anchored form (NAB, balance model: H_i^A == H_i^B == A_{i-1}):
// endpoints j in [j_lo, j_hi] (a single endpoint when equal, with exact
// sa_end/sb_end scalars), anchors i grouped by sketch block, with the
// anchor-side bounds precomputed per block by the screen.
struct SketchScanRightArgs {
  // Per-anchor-block bounds on the baseline A[i-1] and on SA/SB[i-1].
  const double* h_blk_lo;
  const double* h_blk_hi;
  const double* sap_blk_lo;
  const double* sap_blk_hi;
  const double* sbp_blk_lo;
  const double* sbp_blk_hi;
  double sa_end_lo, sa_end_hi;
  double sb_end_lo, sb_end_hi;
  int64_t j_lo, j_hi;
  int64_t block;
  double threshold;
  bool hold;
};

// --- Portable scalar backend ----------------------------------------------
// The reference semantics: expression-for-expression the scalar kernel
// (and therefore core::ConfidenceEvaluator). Every vector backend must
// match these bytes.

inline void SparseAreaBatchScalar(const SparseBatchArgs& args, int64_t j0,
                                  int64_t j1, double* out) {
  const double* __restrict sp = args.sp;
  for (int64_t j = j0; j <= j1; ++j) {
    const double raw = (sp[j] - args.sp_prev) -
                       static_cast<double>(j - args.i + 1) * args.h_sp;
    out[j - j0] = raw < 0.0 ? 0.0 : raw;
  }
}

inline void ConfidenceBatchScalar(const LeftAnchorBatchArgs& args, int64_t j0,
                                  int64_t j1, double* out_conf,
                                  uint8_t* out_valid) {
  const double* __restrict sa = args.sa;
  const double* __restrict sb = args.sb;
  for (int64_t j = j0; j <= j1; ++j) {
    const int64_t k = j - j0;
    const double len = static_cast<double>(j - args.i + 1);
    const double den_raw = (sb[j] - args.sb_prev) - len * args.h_b;
    const double den = den_raw < 0.0 ? 0.0 : den_raw;
    const double num_raw = (sa[j] - args.sa_prev) - len * args.h_a;
    const double num = num_raw < 0.0 ? 0.0 : num_raw;
    const bool valid = den > 0.0;
    out_conf[k] = valid ? num / den : 0.0;
    out_valid[k] = valid ? 1 : 0;
  }
}

inline void ConfidenceIndexBatchScalar(const LeftAnchorBatchArgs& args,
                                       const int64_t* js, int64_t count,
                                       double* out_conf, uint8_t* out_valid) {
  const double* __restrict sa = args.sa;
  const double* __restrict sb = args.sb;
  for (int64_t k = 0; k < count; ++k) {
    const int64_t j = js[k];
    const double len = static_cast<double>(j - args.i + 1);
    const double den_raw = (sb[j] - args.sb_prev) - len * args.h_b;
    const double den = den_raw < 0.0 ? 0.0 : den_raw;
    const double num_raw = (sa[j] - args.sa_prev) - len * args.h_a;
    const double num = num_raw < 0.0 ? 0.0 : num_raw;
    const bool valid = den > 0.0;
    out_conf[k] = valid ? num / den : 0.0;
    out_valid[k] = valid ? 1 : 0;
  }
}

inline uint64_t SparseWalkRoundScalar(const WalkRoundArgs& args,
                                      int64_t count) {
  const double* __restrict sp = args.sp;
  uint64_t completed = 0;
  for (int64_t k = 0; k < count; ++k) {
    const int64_t lo = args.lo[k];
    const int64_t hi = args.hi[k];
    const int64_t mid = lo + (hi - lo) / 2;
    const double raw = (sp[mid] - args.sp_prev[k]) -
                       static_cast<double>(mid - args.i[k] + 1) * args.h_sp[k];
    const double area = raw < 0.0 ? 0.0 : raw;
    const bool ok = area <= args.threshold[k];
    const int64_t new_lo = ok ? mid + 1 : lo;
    const int64_t new_hi = ok ? hi : mid - 1;
    args.lo[k] = new_lo;
    args.hi[k] = new_hi;
    completed |= static_cast<uint64_t>(new_lo > new_hi) << k;
  }
  return completed;
}

inline void ConfidenceFromBatchScalar(const RightAnchorBatchArgs& args,
                                      const int64_t* is, int64_t count,
                                      double* out_conf, uint8_t* out_valid) {
  const double* __restrict a = args.a;
  const double* __restrict s = args.s;
  const double* __restrict sa = args.sa;
  const double* __restrict sb = args.sb;
  for (int64_t k = 0; k < count; ++k) {
    const int64_t i = is[k];
    const double prev = a[i - 1];
    const double gap = s[i];
    const double h_a =
        args.model == core::ConfidenceModel::kCredit ? prev - gap : prev;
    const double h_b =
        args.model == core::ConfidenceModel::kDebit ? prev + gap : prev;
    const double len = static_cast<double>(args.j - i + 1);
    const double den_raw = (args.sb_end - sb[i - 1]) - len * h_b;
    const double den = den_raw < 0.0 ? 0.0 : den_raw;
    const double num_raw = (args.sa_end - sa[i - 1]) - len * h_a;
    const double num = num_raw < 0.0 ? 0.0 : num_raw;
    const bool valid = den > 0.0;
    out_conf[k] = valid ? num / den : 0.0;
    out_valid[k] = valid ? 1 : 0;
  }
}

// Left-anchored sketch screen: bit m of the result is 1 when endpoint block
// b0 + m may hold a passing (i, j) pair for the anchor range in `args`.
// `count` <= 64. The bound construction: den <= den_ub because
// SB[j] <= sb_blk_hi, SB[i-1] >= sb_prev_lo, and len * h_b >= hb_min_term
// (the sign-aware min product over [len_min, len_max] x [h_b_lo, h_b_hi]);
// mirrored for den_lb / num_ub / num_lb. Each bound is the same single
// rounding shape as the exact kernel expression it brackets, so per-op
// round-to-nearest monotonicity keeps the bracketing bitwise sound.
inline uint64_t SketchMaybeMaskScalar(const SketchScanArgs& args, int64_t b0,
                                      int64_t count) {
  const double block = static_cast<double>(args.block);
  const double n = static_cast<double>(args.n);
  const double i_lo = static_cast<double>(args.i_lo);
  const double i_hi = static_cast<double>(args.i_hi);
  const double t = args.threshold;
  uint64_t maybe = 0;
  for (int64_t m = 0; m < count; ++m) {
    const int64_t b = b0 + m;
    const double j_lo = static_cast<double>(b) * block;
    const double j_hi = std::min(n, j_lo + (block - 1.0));
    // Interval length range over the covered (i, j) pairs, clamped to >= 1
    // so products with infinite h bounds stay +/-inf rather than NaN.
    const double len_min = std::max(1.0, (j_lo - i_hi) + 1.0);
    const double len_max = std::max(len_min, (j_hi - i_lo) + 1.0);
    const double hb_min_term =
        args.h_b_lo >= 0.0 ? len_min * args.h_b_lo : len_max * args.h_b_lo;
    const double den_ub = (args.sb_blk_hi[b] - args.sb_prev_lo) - hb_min_term;
    bool lane;
    if (args.hold) {
      const double hb_max_term =
          args.h_b_hi >= 0.0 ? len_max * args.h_b_hi : len_min * args.h_b_hi;
      const double ha_min_term =
          args.h_a_lo >= 0.0 ? len_min * args.h_a_lo : len_max * args.h_a_lo;
      const double den_lb_raw =
          (args.sb_blk_lo[b] - args.sb_prev_hi) - hb_max_term;
      const double den_lb = den_lb_raw < 0.0 ? 0.0 : den_lb_raw;
      const double num_ub_raw =
          (args.sa_blk_hi[b] - args.sa_prev_lo) - ha_min_term;
      const double num_ub = num_ub_raw < 0.0 ? 0.0 : num_ub_raw;
      // conf <= num_ub / den_lb when den_lb > 0; when den could be 0 the
      // pair is only a candidate if it can be valid (den_ub > 0) and either
      // the numerator can be positive or the threshold accepts conf == 0.
      lane = den_ub > 0.0 && (den_lb > 0.0 ? num_ub / den_lb >= t
                                           : (num_ub > 0.0 || t <= 0.0));
    } else {
      const double ha_max_term =
          args.h_a_hi >= 0.0 ? len_max * args.h_a_hi : len_min * args.h_a_hi;
      const double num_lb_raw =
          (args.sa_blk_lo[b] - args.sa_prev_hi) - ha_max_term;
      const double num_lb = num_lb_raw < 0.0 ? 0.0 : num_lb_raw;
      lane = den_ub > 0.0 && num_lb / den_ub <= t;
    }
    maybe |= static_cast<uint64_t>(lane) << m;
  }
  return maybe;
}

// Right-anchored sketch screen (balance model only, so h_a == h_b and the
// per-anchor-block h bounds serve both the numerator and denominator
// products). Bit m covers anchor block u0 + m.
inline uint64_t SketchMaybeMaskRightScalar(const SketchScanRightArgs& args,
                                           int64_t u0, int64_t count) {
  const double block = static_cast<double>(args.block);
  const double j_lo = static_cast<double>(args.j_lo);
  const double j_hi = static_cast<double>(args.j_hi);
  const double t = args.threshold;
  uint64_t maybe = 0;
  for (int64_t m = 0; m < count; ++m) {
    const int64_t u = u0 + m;
    const double u_base = static_cast<double>(u) * block;
    const double i_min = std::max(1.0, u_base);
    const double i_max = std::min(j_hi, u_base + (block - 1.0));
    const double len_min = std::max(1.0, (j_lo - i_max) + 1.0);
    const double len_max = std::max(len_min, (j_hi - i_min) + 1.0);
    const double h_lo = args.h_blk_lo[u];
    const double h_hi = args.h_blk_hi[u];
    const double min_term = h_lo >= 0.0 ? len_min * h_lo : len_max * h_lo;
    const double den_ub = (args.sb_end_hi - args.sbp_blk_lo[u]) - min_term;
    bool lane;
    if (args.hold) {
      const double max_term = h_hi >= 0.0 ? len_max * h_hi : len_min * h_hi;
      const double den_lb_raw =
          (args.sb_end_lo - args.sbp_blk_hi[u]) - max_term;
      const double den_lb = den_lb_raw < 0.0 ? 0.0 : den_lb_raw;
      const double num_ub_raw =
          (args.sa_end_hi - args.sap_blk_lo[u]) - min_term;
      const double num_ub = num_ub_raw < 0.0 ? 0.0 : num_ub_raw;
      lane = den_ub > 0.0 && (den_lb > 0.0 ? num_ub / den_lb >= t
                                           : (num_ub > 0.0 || t <= 0.0));
    } else {
      const double max_term = h_hi >= 0.0 ? len_max * h_hi : len_min * h_hi;
      const double num_lb_raw =
          (args.sa_end_lo - args.sap_blk_hi[u]) - max_term;
      const double num_lb = num_lb_raw < 0.0 ? 0.0 : num_lb_raw;
      lane = den_ub > 0.0 && num_lb / den_ub <= t;
    }
    maybe |= static_cast<uint64_t>(lane) << m;
  }
  return maybe;
}

// --- AVX2 backend ----------------------------------------------------------

#if CONSERVATION_KERNEL_HAVE_AVX2

namespace avx2 {

// `raw < 0.0 ? 0.0 : raw`, lanewise, with the scalar ternary's exact
// semantics: -0.0 and NaN pass through (an ordered < compare is false for
// both), which _mm256_max_pd would not guarantee for -0.0.
__attribute__((target("avx2"))) inline __m256d ClampZero(__m256d raw) {
  const __m256d zero = _mm256_setzero_pd();
  return _mm256_blendv_pd(raw, zero,
                          _mm256_cmp_pd(raw, zero, _CMP_LT_OQ));
}

// Exact int64 -> double for 0 <= v < 2^52: OR the value into the mantissa
// of 2^52 and subtract 2^52 back out (AVX2 has no direct epi64 -> pd
// conversion; this classic trick is bit-exact in the supported range).
__attribute__((target("avx2"))) inline __m256d SmallInt64ToDouble(__m256i v) {
  const __m256i magic = _mm256_set1_epi64x(0x4330000000000000LL);
  return _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(v, magic)),
                       _mm256_set1_pd(4503599627370496.0));  // 2^52
}

// Four scalar loads assembled into one vector. Deliberately not
// _mm256_i64gather_pd: hardware gathers are microcoded on most cores and
// lose to plain loads when the indices already sit in memory. `offset` is
// applied to every index (for the idx-1 prefix reads).
__attribute__((target("avx2"))) inline __m256d GatherLanes(
    const double* base, const int64_t* idx, int64_t offset = 0) {
  return _mm256_setr_pd(base[idx[0] + offset], base[idx[1] + offset],
                        base[idx[2] + offset], base[idx[3] + offset]);
}

// Gather with the indices still in a vector register. Bouncing them
// through the stack would make every load address depend on a wide store
// forwarding into narrow reloads, which serializes on in-order store
// retirement; extracting via ALU keeps independent iterations pipelined.
__attribute__((target("avx2"))) inline __m256d GatherLanesReg(
    const double* base, __m256i idx) {
  const __m128i idx_lo = _mm256_castsi256_si128(idx);
  const __m128i idx_hi = _mm256_extracti128_si256(idx, 1);
  return _mm256_setr_pd(base[_mm_cvtsi128_si64(idx_lo)],
                        base[_mm_extract_epi64(idx_lo, 1)],
                        base[_mm_cvtsi128_si64(idx_hi)],
                        base[_mm_extract_epi64(idx_hi, 1)]);
}

__attribute__((target("avx2"))) inline void StoreValid(uint8_t* out,
                                                       __m256d mask) {
  const int bits = _mm256_movemask_pd(mask);
  out[0] = static_cast<uint8_t>(bits & 1);
  out[1] = static_cast<uint8_t>((bits >> 1) & 1);
  out[2] = static_cast<uint8_t>((bits >> 2) & 1);
  out[3] = static_cast<uint8_t>((bits >> 3) & 1);
}

// Shared tail of every confidence form: clamp, validity mask, guarded
// divide (invalid lanes are masked to exactly 0.0 so output arrays are
// deterministic across backends).
__attribute__((target("avx2"))) inline void EmitConfidence(
    __m256d den_raw, __m256d num_raw, double* out_conf, uint8_t* out_valid) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d den = ClampZero(den_raw);
  const __m256d num = ClampZero(num_raw);
  const __m256d valid = _mm256_cmp_pd(den, zero, _CMP_GT_OQ);
  const __m256d conf = _mm256_and_pd(_mm256_div_pd(num, den), valid);
  _mm256_storeu_pd(out_conf, conf);
  StoreValid(out_valid, valid);
}

__attribute__((target("avx2"))) inline void SparseAreaBatch(
    const SparseBatchArgs& args, int64_t j0, int64_t j1, double* out) {
  const int64_t count = j1 - j0 + 1;
  const __m256d sp_prev = _mm256_set1_pd(args.sp_prev);
  const __m256d h_sp = _mm256_set1_pd(args.h_sp);
  const __m256d four = _mm256_set1_pd(4.0);
  const double len0 = static_cast<double>(j0 - args.i + 1);
  __m256d len = _mm256_setr_pd(len0, len0 + 1.0, len0 + 2.0, len0 + 3.0);
  int64_t k = 0;
  for (; k + 4 <= count; k += 4) {
    const __m256d sp = _mm256_loadu_pd(args.sp + j0 + k);
    const __m256d raw = _mm256_sub_pd(_mm256_sub_pd(sp, sp_prev),
                                      _mm256_mul_pd(len, h_sp));
    _mm256_storeu_pd(out + k, ClampZero(raw));
    len = _mm256_add_pd(len, four);  // exact: integer-valued doubles
  }
  if (k < count) SparseAreaBatchScalar(args, j0 + k, j1, out + k);
}

__attribute__((target("avx2"))) inline void ConfidenceBatch(
    const LeftAnchorBatchArgs& args, int64_t j0, int64_t j1, double* out_conf,
    uint8_t* out_valid) {
  const int64_t count = j1 - j0 + 1;
  const __m256d sa_prev = _mm256_set1_pd(args.sa_prev);
  const __m256d sb_prev = _mm256_set1_pd(args.sb_prev);
  const __m256d h_a = _mm256_set1_pd(args.h_a);
  const __m256d h_b = _mm256_set1_pd(args.h_b);
  const __m256d four = _mm256_set1_pd(4.0);
  const double len0 = static_cast<double>(j0 - args.i + 1);
  __m256d len = _mm256_setr_pd(len0, len0 + 1.0, len0 + 2.0, len0 + 3.0);
  int64_t k = 0;
  for (; k + 4 <= count; k += 4) {
    const __m256d sb = _mm256_loadu_pd(args.sb + j0 + k);
    const __m256d sa = _mm256_loadu_pd(args.sa + j0 + k);
    const __m256d den_raw = _mm256_sub_pd(_mm256_sub_pd(sb, sb_prev),
                                          _mm256_mul_pd(len, h_b));
    const __m256d num_raw = _mm256_sub_pd(_mm256_sub_pd(sa, sa_prev),
                                          _mm256_mul_pd(len, h_a));
    EmitConfidence(den_raw, num_raw, out_conf + k, out_valid + k);
    len = _mm256_add_pd(len, four);
  }
  if (k < count) {
    ConfidenceBatchScalar(args, j0 + k, j1, out_conf + k, out_valid + k);
  }
}

__attribute__((target("avx2"))) inline void ConfidenceIndexBatch(
    const LeftAnchorBatchArgs& args, const int64_t* js, int64_t count,
    double* out_conf, uint8_t* out_valid) {
  const __m256d sa_prev = _mm256_set1_pd(args.sa_prev);
  const __m256d sb_prev = _mm256_set1_pd(args.sb_prev);
  const __m256d h_a = _mm256_set1_pd(args.h_a);
  const __m256d h_b = _mm256_set1_pd(args.h_b);
  const __m256i i_minus_1 = _mm256_set1_epi64x(args.i - 1);
  int64_t k = 0;
  for (; k + 4 <= count; k += 4) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(js + k));
    const __m256d sa = GatherLanes(args.sa, js + k);
    const __m256d sb = GatherLanes(args.sb, js + k);
    const __m256d len = SmallInt64ToDouble(_mm256_sub_epi64(idx, i_minus_1));
    const __m256d den_raw = _mm256_sub_pd(_mm256_sub_pd(sb, sb_prev),
                                          _mm256_mul_pd(len, h_b));
    const __m256d num_raw = _mm256_sub_pd(_mm256_sub_pd(sa, sa_prev),
                                          _mm256_mul_pd(len, h_a));
    EmitConfidence(den_raw, num_raw, out_conf + k, out_valid + k);
  }
  if (k < count) {
    ConfidenceIndexBatchScalar(args, js + k, count - k, out_conf + k,
                               out_valid + k);
  }
}

__attribute__((target("avx2"))) inline uint64_t SparseWalkRound(
    const WalkRoundArgs& args, int64_t count) {
  const __m256i one = _mm256_set1_epi64x(1);
  uint64_t completed = 0;
  int64_t k = 0;
  for (; k + 4 <= count; k += 4) {
    const __m256i lo = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(args.lo + k));
    const __m256i hi = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(args.hi + k));
    // mid = lo + (hi - lo) / 2; hi >= lo for an in-progress search, so the
    // logical shift is exact integer division.
    const __m256i mid = _mm256_add_epi64(
        lo, _mm256_srli_epi64(_mm256_sub_epi64(hi, lo), 1));
    const __m256d sp = GatherLanesReg(args.sp, mid);
    const __m256d sp_prev = _mm256_loadu_pd(args.sp_prev + k);
    const __m256d h_sp = _mm256_loadu_pd(args.h_sp + k);
    const __m256i iv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(args.i + k));
    const __m256d len =
        SmallInt64ToDouble(_mm256_sub_epi64(mid, _mm256_sub_epi64(iv, one)));
    const __m256d raw = _mm256_sub_pd(_mm256_sub_pd(sp, sp_prev),
                                      _mm256_mul_pd(len, h_sp));
    const __m256d area = ClampZero(raw);
    const __m256d ok_pd = _mm256_cmp_pd(
        area, _mm256_loadu_pd(args.threshold + k), _CMP_LE_OQ);
    const __m256i ok = _mm256_castpd_si256(ok_pd);
    const __m256i new_lo =
        _mm256_blendv_epi8(lo, _mm256_add_epi64(mid, one), ok);
    const __m256i new_hi =
        _mm256_blendv_epi8(_mm256_sub_epi64(mid, one), hi, ok);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(args.lo + k), new_lo);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(args.hi + k), new_hi);
    const __m256i done = _mm256_cmpgt_epi64(new_lo, new_hi);
    completed |= static_cast<uint64_t>(_mm256_movemask_pd(
                     _mm256_castsi256_pd(done)))
                 << k;
  }
  if (k < count) {
    const WalkRoundArgs tail{args.sp,           args.sp_prev + k,
                             args.h_sp + k,      args.i + k,
                             args.threshold + k, args.lo + k,
                             args.hi + k};
    completed |= SparseWalkRoundScalar(tail, count - k) << k;
  }
  return completed;
}

__attribute__((target("avx2"))) inline void ConfidenceFromBatch(
    const RightAnchorBatchArgs& args, const int64_t* is, int64_t count,
    double* out_conf, uint8_t* out_valid) {
  const __m256d sa_end = _mm256_set1_pd(args.sa_end);
  const __m256d sb_end = _mm256_set1_pd(args.sb_end);
  const __m256i j_plus_1 = _mm256_set1_epi64x(args.j + 1);
  const bool credit = args.model == core::ConfidenceModel::kCredit;
  const bool debit = args.model == core::ConfidenceModel::kDebit;
  int64_t k = 0;
  for (; k + 4 <= count; k += 4) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(is + k));
    const __m256d prev = GatherLanes(args.a, is + k, -1);
    // The model is uniform across lanes, so the baseline branch runs once
    // per vector — the lanes themselves stay branchless. Balance skips the
    // gap load entirely (the scalar kernel loads but never uses it).
    __m256d h_a = prev;
    __m256d h_b = prev;
    if (credit || debit) {
      const __m256d gap = GatherLanes(args.s, is + k);
      if (credit) h_a = _mm256_sub_pd(prev, gap);
      if (debit) h_b = _mm256_add_pd(prev, gap);
    }
    const __m256d sa_im1 = GatherLanes(args.sa, is + k, -1);
    const __m256d sb_im1 = GatherLanes(args.sb, is + k, -1);
    const __m256d len = SmallInt64ToDouble(_mm256_sub_epi64(j_plus_1, idx));
    const __m256d den_raw = _mm256_sub_pd(_mm256_sub_pd(sb_end, sb_im1),
                                          _mm256_mul_pd(len, h_b));
    const __m256d num_raw = _mm256_sub_pd(_mm256_sub_pd(sa_end, sa_im1),
                                          _mm256_mul_pd(len, h_a));
    EmitConfidence(den_raw, num_raw, out_conf + k, out_valid + k);
  }
  if (k < count) {
    ConfidenceFromBatchScalar(args, is + k, count - k, out_conf + k,
                              out_valid + k);
  }
}

// Vector mirror of SketchMaybeMaskScalar. The anchor-side h bounds are
// per-call scalars, so the sign-aware len selection is a C++ ternary
// choosing between the len_min and len_max vectors; divisions run unmasked
// and any junk lane (0/0 -> NaN) is neutralized by ordered compares exactly
// as the scalar short-circuit would neutralize it.
__attribute__((target("avx2"))) inline uint64_t SketchMaybeMask(
    const SketchScanArgs& args, int64_t b0, int64_t count) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d all_true = _mm256_cmp_pd(zero, zero, _CMP_EQ_OQ);
  const __m256d vt = _mm256_set1_pd(args.threshold);
  const double block = static_cast<double>(args.block);
  const __m256d vblock = _mm256_set1_pd(block);
  const __m256d vblock_m1 = _mm256_set1_pd(block - 1.0);
  const __m256d vn = _mm256_set1_pd(static_cast<double>(args.n));
  const __m256d vi_lo = _mm256_set1_pd(static_cast<double>(args.i_lo));
  const __m256d vi_hi = _mm256_set1_pd(static_cast<double>(args.i_hi));
  const __m256d sb_prev_lo = _mm256_set1_pd(args.sb_prev_lo);
  const __m256d sb_prev_hi = _mm256_set1_pd(args.sb_prev_hi);
  const __m256d sa_prev_lo = _mm256_set1_pd(args.sa_prev_lo);
  const __m256d sa_prev_hi = _mm256_set1_pd(args.sa_prev_hi);
  const __m256d vh_b_lo = _mm256_set1_pd(args.h_b_lo);
  const __m256d vh_b_hi = _mm256_set1_pd(args.h_b_hi);
  const __m256d vh_a_lo = _mm256_set1_pd(args.h_a_lo);
  const __m256d vh_a_hi = _mm256_set1_pd(args.h_a_hi);
  const double b0d = static_cast<double>(b0);
  __m256d vb = _mm256_setr_pd(b0d, b0d + 1.0, b0d + 2.0, b0d + 3.0);
  const __m256d four = _mm256_set1_pd(4.0);
  uint64_t maybe = 0;
  int64_t m = 0;
  for (; m + 4 <= count; m += 4, vb = _mm256_add_pd(vb, four)) {
    const __m256d j_lo = _mm256_mul_pd(vb, vblock);
    const __m256d j_hi = _mm256_min_pd(vn, _mm256_add_pd(j_lo, vblock_m1));
    const __m256d len_min = _mm256_max_pd(
        one, _mm256_add_pd(_mm256_sub_pd(j_lo, vi_hi), one));
    const __m256d len_max = _mm256_max_pd(
        len_min, _mm256_add_pd(_mm256_sub_pd(j_hi, vi_lo), one));
    const __m256d hb_min_term =
        _mm256_mul_pd(args.h_b_lo >= 0.0 ? len_min : len_max, vh_b_lo);
    const __m256d sb_hi_v = _mm256_loadu_pd(args.sb_blk_hi + b0 + m);
    const __m256d den_ub = _mm256_sub_pd(_mm256_sub_pd(sb_hi_v, sb_prev_lo),
                                         hb_min_term);
    const __m256d den_ub_pos = _mm256_cmp_pd(den_ub, zero, _CMP_GT_OQ);
    __m256d lane;
    if (args.hold) {
      const __m256d hb_max_term =
          _mm256_mul_pd(args.h_b_hi >= 0.0 ? len_max : len_min, vh_b_hi);
      const __m256d ha_min_term =
          _mm256_mul_pd(args.h_a_lo >= 0.0 ? len_min : len_max, vh_a_lo);
      const __m256d sb_lo_v = _mm256_loadu_pd(args.sb_blk_lo + b0 + m);
      const __m256d den_lb = ClampZero(_mm256_sub_pd(
          _mm256_sub_pd(sb_lo_v, sb_prev_hi), hb_max_term));
      const __m256d sa_hi_v = _mm256_loadu_pd(args.sa_blk_hi + b0 + m);
      const __m256d num_ub = ClampZero(_mm256_sub_pd(
          _mm256_sub_pd(sa_hi_v, sa_prev_lo), ha_min_term));
      const __m256d den_lb_pos = _mm256_cmp_pd(den_lb, zero, _CMP_GT_OQ);
      const __m256d div_ok = _mm256_cmp_pd(_mm256_div_pd(num_ub, den_lb), vt,
                                           _CMP_GE_OQ);
      const __m256d zero_den_ok =
          args.threshold <= 0.0 ? all_true
                                : _mm256_cmp_pd(num_ub, zero, _CMP_GT_OQ);
      const __m256d cond = _mm256_or_pd(_mm256_and_pd(den_lb_pos, div_ok),
                                        _mm256_andnot_pd(den_lb_pos,
                                                         zero_den_ok));
      lane = _mm256_and_pd(den_ub_pos, cond);
    } else {
      const __m256d ha_max_term =
          _mm256_mul_pd(args.h_a_hi >= 0.0 ? len_max : len_min, vh_a_hi);
      const __m256d sa_lo_v = _mm256_loadu_pd(args.sa_blk_lo + b0 + m);
      const __m256d num_lb = ClampZero(_mm256_sub_pd(
          _mm256_sub_pd(sa_lo_v, sa_prev_hi), ha_max_term));
      const __m256d div_ok = _mm256_cmp_pd(_mm256_div_pd(num_lb, den_ub), vt,
                                           _CMP_LE_OQ);
      lane = _mm256_and_pd(den_ub_pos, div_ok);
    }
    maybe |= static_cast<uint64_t>(_mm256_movemask_pd(lane)) << m;
  }
  if (m < count) {
    maybe |= SketchMaybeMaskScalar(args, b0 + m, count - m) << m;
  }
  return maybe;
}

// Vector mirror of SketchMaybeMaskRightScalar. Here the h bounds vary per
// lane (one anchor block each), so the len selection is a lanewise blend on
// the sign compare — identical to the scalar's `h >= 0 ? len_min : len_max`
// because the h bounds are finite (A is finite everywhere).
__attribute__((target("avx2"))) inline uint64_t SketchMaybeMaskRight(
    const SketchScanRightArgs& args, int64_t u0, int64_t count) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d all_true = _mm256_cmp_pd(zero, zero, _CMP_EQ_OQ);
  const __m256d vt = _mm256_set1_pd(args.threshold);
  const double block = static_cast<double>(args.block);
  const __m256d vblock = _mm256_set1_pd(block);
  const __m256d vblock_m1 = _mm256_set1_pd(block - 1.0);
  const __m256d vj_lo = _mm256_set1_pd(static_cast<double>(args.j_lo));
  const __m256d vj_hi = _mm256_set1_pd(static_cast<double>(args.j_hi));
  const __m256d sb_end_lo = _mm256_set1_pd(args.sb_end_lo);
  const __m256d sb_end_hi = _mm256_set1_pd(args.sb_end_hi);
  const __m256d sa_end_lo = _mm256_set1_pd(args.sa_end_lo);
  const __m256d sa_end_hi = _mm256_set1_pd(args.sa_end_hi);
  const double u0d = static_cast<double>(u0);
  __m256d vu = _mm256_setr_pd(u0d, u0d + 1.0, u0d + 2.0, u0d + 3.0);
  const __m256d four = _mm256_set1_pd(4.0);
  uint64_t maybe = 0;
  int64_t m = 0;
  for (; m + 4 <= count; m += 4, vu = _mm256_add_pd(vu, four)) {
    const __m256d u_base = _mm256_mul_pd(vu, vblock);
    const __m256d i_min = _mm256_max_pd(one, u_base);
    const __m256d i_max = _mm256_min_pd(vj_hi, _mm256_add_pd(u_base,
                                                             vblock_m1));
    const __m256d len_min = _mm256_max_pd(
        one, _mm256_add_pd(_mm256_sub_pd(vj_lo, i_max), one));
    const __m256d len_max = _mm256_max_pd(
        len_min, _mm256_add_pd(_mm256_sub_pd(vj_hi, i_min), one));
    const __m256d h_lo = _mm256_loadu_pd(args.h_blk_lo + u0 + m);
    const __m256d h_hi = _mm256_loadu_pd(args.h_blk_hi + u0 + m);
    const __m256d lo_nonneg = _mm256_cmp_pd(h_lo, zero, _CMP_GE_OQ);
    const __m256d hi_nonneg = _mm256_cmp_pd(h_hi, zero, _CMP_GE_OQ);
    const __m256d min_term = _mm256_mul_pd(
        _mm256_blendv_pd(len_max, len_min, lo_nonneg), h_lo);
    const __m256d max_term = _mm256_mul_pd(
        _mm256_blendv_pd(len_min, len_max, hi_nonneg), h_hi);
    const __m256d sbp_lo = _mm256_loadu_pd(args.sbp_blk_lo + u0 + m);
    const __m256d den_ub = _mm256_sub_pd(_mm256_sub_pd(sb_end_hi, sbp_lo),
                                         min_term);
    const __m256d den_ub_pos = _mm256_cmp_pd(den_ub, zero, _CMP_GT_OQ);
    __m256d lane;
    if (args.hold) {
      const __m256d sbp_hi = _mm256_loadu_pd(args.sbp_blk_hi + u0 + m);
      const __m256d den_lb = ClampZero(_mm256_sub_pd(
          _mm256_sub_pd(sb_end_lo, sbp_hi), max_term));
      const __m256d sap_lo = _mm256_loadu_pd(args.sap_blk_lo + u0 + m);
      const __m256d num_ub = ClampZero(_mm256_sub_pd(
          _mm256_sub_pd(sa_end_hi, sap_lo), min_term));
      const __m256d den_lb_pos = _mm256_cmp_pd(den_lb, zero, _CMP_GT_OQ);
      const __m256d div_ok = _mm256_cmp_pd(_mm256_div_pd(num_ub, den_lb), vt,
                                           _CMP_GE_OQ);
      const __m256d zero_den_ok =
          args.threshold <= 0.0 ? all_true
                                : _mm256_cmp_pd(num_ub, zero, _CMP_GT_OQ);
      const __m256d cond = _mm256_or_pd(_mm256_and_pd(den_lb_pos, div_ok),
                                        _mm256_andnot_pd(den_lb_pos,
                                                         zero_den_ok));
      lane = _mm256_and_pd(den_ub_pos, cond);
    } else {
      const __m256d sap_hi = _mm256_loadu_pd(args.sap_blk_hi + u0 + m);
      const __m256d num_lb = ClampZero(_mm256_sub_pd(
          _mm256_sub_pd(sa_end_lo, sap_hi), max_term));
      const __m256d div_ok = _mm256_cmp_pd(_mm256_div_pd(num_lb, den_ub), vt,
                                           _CMP_LE_OQ);
      lane = _mm256_and_pd(den_ub_pos, div_ok);
    }
    maybe |= static_cast<uint64_t>(_mm256_movemask_pd(lane)) << m;
  }
  if (m < count) {
    maybe |= SketchMaybeMaskRightScalar(args, u0 + m, count - m) << m;
  }
  return maybe;
}

}  // namespace avx2

#endif  // CONSERVATION_KERNEL_HAVE_AVX2

// --- NEON backend ----------------------------------------------------------

#if CONSERVATION_KERNEL_HAVE_NEON

namespace neon {

// `raw < 0.0 ? 0.0 : raw` lanewise; compare + select rather than vmaxq,
// which rewrites -0.0 to +0.0 (FMAX implements IEEE max, not the ternary).
inline float64x2_t ClampZero(float64x2_t raw) {
  const float64x2_t zero = vdupq_n_f64(0.0);
  return vbslq_f64(vcltq_f64(raw, zero), zero, raw);
}

inline void EmitConfidence(float64x2_t den_raw, float64x2_t num_raw,
                           double* out_conf, uint8_t* out_valid) {
  const float64x2_t zero = vdupq_n_f64(0.0);
  const float64x2_t den = ClampZero(den_raw);
  const float64x2_t num = ClampZero(num_raw);
  const uint64x2_t valid = vcgtq_f64(den, zero);
  const float64x2_t conf = vbslq_f64(valid, vdivq_f64(num, den), zero);
  vst1q_f64(out_conf, conf);
  out_valid[0] = static_cast<uint8_t>(vgetq_lane_u64(valid, 0) & 1);
  out_valid[1] = static_cast<uint8_t>(vgetq_lane_u64(valid, 1) & 1);
}

inline void SparseAreaBatch(const SparseBatchArgs& args, int64_t j0,
                            int64_t j1, double* out) {
  const int64_t count = j1 - j0 + 1;
  const float64x2_t sp_prev = vdupq_n_f64(args.sp_prev);
  const float64x2_t h_sp = vdupq_n_f64(args.h_sp);
  const float64x2_t two = vdupq_n_f64(2.0);
  const double len0 = static_cast<double>(j0 - args.i + 1);
  float64x2_t len = {len0, len0 + 1.0};
  int64_t k = 0;
  for (; k + 2 <= count; k += 2) {
    const float64x2_t sp = vld1q_f64(args.sp + j0 + k);
    const float64x2_t raw =
        vsubq_f64(vsubq_f64(sp, sp_prev), vmulq_f64(len, h_sp));
    vst1q_f64(out + k, ClampZero(raw));
    len = vaddq_f64(len, two);  // exact: integer-valued doubles
  }
  if (k < count) SparseAreaBatchScalar(args, j0 + k, j1, out + k);
}

inline void ConfidenceBatch(const LeftAnchorBatchArgs& args, int64_t j0,
                            int64_t j1, double* out_conf,
                            uint8_t* out_valid) {
  const int64_t count = j1 - j0 + 1;
  const float64x2_t sa_prev = vdupq_n_f64(args.sa_prev);
  const float64x2_t sb_prev = vdupq_n_f64(args.sb_prev);
  const float64x2_t h_a = vdupq_n_f64(args.h_a);
  const float64x2_t h_b = vdupq_n_f64(args.h_b);
  const float64x2_t two = vdupq_n_f64(2.0);
  const double len0 = static_cast<double>(j0 - args.i + 1);
  float64x2_t len = {len0, len0 + 1.0};
  int64_t k = 0;
  for (; k + 2 <= count; k += 2) {
    const float64x2_t sb = vld1q_f64(args.sb + j0 + k);
    const float64x2_t sa = vld1q_f64(args.sa + j0 + k);
    const float64x2_t den_raw =
        vsubq_f64(vsubq_f64(sb, sb_prev), vmulq_f64(len, h_b));
    const float64x2_t num_raw =
        vsubq_f64(vsubq_f64(sa, sa_prev), vmulq_f64(len, h_a));
    EmitConfidence(den_raw, num_raw, out_conf + k, out_valid + k);
    len = vaddq_f64(len, two);
  }
  if (k < count) {
    ConfidenceBatchScalar(args, j0 + k, j1, out_conf + k, out_valid + k);
  }
}

inline void ConfidenceIndexBatch(const LeftAnchorBatchArgs& args,
                                 const int64_t* js, int64_t count,
                                 double* out_conf, uint8_t* out_valid) {
  const float64x2_t sa_prev = vdupq_n_f64(args.sa_prev);
  const float64x2_t sb_prev = vdupq_n_f64(args.sb_prev);
  const float64x2_t h_a = vdupq_n_f64(args.h_a);
  const float64x2_t h_b = vdupq_n_f64(args.h_b);
  const int64x2_t i_minus_1 = vdupq_n_s64(args.i - 1);
  int64_t k = 0;
  for (; k + 2 <= count; k += 2) {
    const int64x2_t idx = vld1q_s64(js + k);
    const double sa_lanes[2] = {args.sa[js[k]], args.sa[js[k + 1]]};
    const double sb_lanes[2] = {args.sb[js[k]], args.sb[js[k + 1]]};
    const float64x2_t sa = vld1q_f64(sa_lanes);
    const float64x2_t sb = vld1q_f64(sb_lanes);
    // vcvtq is exact for |v| < 2^52, matching static_cast bit for bit.
    const float64x2_t len = vcvtq_f64_s64(vsubq_s64(idx, i_minus_1));
    const float64x2_t den_raw =
        vsubq_f64(vsubq_f64(sb, sb_prev), vmulq_f64(len, h_b));
    const float64x2_t num_raw =
        vsubq_f64(vsubq_f64(sa, sa_prev), vmulq_f64(len, h_a));
    EmitConfidence(den_raw, num_raw, out_conf + k, out_valid + k);
  }
  if (k < count) {
    ConfidenceIndexBatchScalar(args, js + k, count - k, out_conf + k,
                               out_valid + k);
  }
}

inline uint64_t SparseWalkRound(const WalkRoundArgs& args, int64_t count) {
  const int64x2_t one = vdupq_n_s64(1);
  uint64_t completed = 0;
  int64_t k = 0;
  for (; k + 2 <= count; k += 2) {
    const int64x2_t lo = vld1q_s64(args.lo + k);
    const int64x2_t hi = vld1q_s64(args.hi + k);
    // mid = lo + (hi - lo) / 2; hi >= lo in-progress, so the logical shift
    // is exact integer division.
    const int64x2_t mid = vaddq_s64(
        lo, vreinterpretq_s64_u64(
                vshrq_n_u64(vreinterpretq_u64_s64(vsubq_s64(hi, lo)), 1)));
    const double sp_lanes[2] = {args.sp[vgetq_lane_s64(mid, 0)],
                                args.sp[vgetq_lane_s64(mid, 1)]};
    const float64x2_t sp = vld1q_f64(sp_lanes);
    const float64x2_t sp_prev = vld1q_f64(args.sp_prev + k);
    const float64x2_t h_sp = vld1q_f64(args.h_sp + k);
    const int64x2_t iv = vld1q_s64(args.i + k);
    const float64x2_t len =
        vcvtq_f64_s64(vsubq_s64(mid, vsubq_s64(iv, one)));
    const float64x2_t raw =
        vsubq_f64(vsubq_f64(sp, sp_prev), vmulq_f64(len, h_sp));
    const float64x2_t area = ClampZero(raw);
    const uint64x2_t ok = vcleq_f64(area, vld1q_f64(args.threshold + k));
    const int64x2_t new_lo = vbslq_s64(ok, vaddq_s64(mid, one), lo);
    const int64x2_t new_hi = vbslq_s64(ok, hi, vsubq_s64(mid, one));
    vst1q_s64(args.lo + k, new_lo);
    vst1q_s64(args.hi + k, new_hi);
    const uint64x2_t done = vcgtq_s64(new_lo, new_hi);
    completed |= (vgetq_lane_u64(done, 0) & 1) << k;
    completed |= (vgetq_lane_u64(done, 1) & 1) << (k + 1);
  }
  if (k < count) {
    const WalkRoundArgs tail{args.sp,           args.sp_prev + k,
                             args.h_sp + k,      args.i + k,
                             args.threshold + k, args.lo + k,
                             args.hi + k};
    completed |= SparseWalkRoundScalar(tail, count - k) << k;
  }
  return completed;
}

inline void ConfidenceFromBatch(const RightAnchorBatchArgs& args,
                                const int64_t* is, int64_t count,
                                double* out_conf, uint8_t* out_valid) {
  const float64x2_t sa_end = vdupq_n_f64(args.sa_end);
  const float64x2_t sb_end = vdupq_n_f64(args.sb_end);
  const int64x2_t j_plus_1 = vdupq_n_s64(args.j + 1);
  const bool credit = args.model == core::ConfidenceModel::kCredit;
  const bool debit = args.model == core::ConfidenceModel::kDebit;
  int64_t k = 0;
  for (; k + 2 <= count; k += 2) {
    const int64x2_t idx = vld1q_s64(is + k);
    const int64_t i0 = is[k];
    const int64_t i1 = is[k + 1];
    const double prev_lanes[2] = {args.a[i0 - 1], args.a[i1 - 1]};
    const float64x2_t prev = vld1q_f64(prev_lanes);
    float64x2_t h_a = prev;
    float64x2_t h_b = prev;
    if (credit || debit) {
      const double gap_lanes[2] = {args.s[i0], args.s[i1]};
      const float64x2_t gap = vld1q_f64(gap_lanes);
      if (credit) h_a = vsubq_f64(prev, gap);
      if (debit) h_b = vaddq_f64(prev, gap);
    }
    const double sa_lanes[2] = {args.sa[i0 - 1], args.sa[i1 - 1]};
    const double sb_lanes[2] = {args.sb[i0 - 1], args.sb[i1 - 1]};
    const float64x2_t sa_im1 = vld1q_f64(sa_lanes);
    const float64x2_t sb_im1 = vld1q_f64(sb_lanes);
    const float64x2_t len = vcvtq_f64_s64(vsubq_s64(j_plus_1, idx));
    const float64x2_t den_raw =
        vsubq_f64(vsubq_f64(sb_end, sb_im1), vmulq_f64(len, h_b));
    const float64x2_t num_raw =
        vsubq_f64(vsubq_f64(sa_end, sa_im1), vmulq_f64(len, h_a));
    EmitConfidence(den_raw, num_raw, out_conf + k, out_valid + k);
  }
  if (k < count) {
    ConfidenceFromBatchScalar(args, is + k, count - k, out_conf + k,
                              out_valid + k);
  }
}

// NEON mirror of avx2::SketchMaybeMask; see the scalar form for the bound
// derivation. Two lanes per step, block counter kept as exact-integer
// doubles, unmasked divisions neutralized by the ordered compares.
inline uint64_t SketchMaybeMask(const SketchScanArgs& args, int64_t b0,
                                int64_t count) {
  const float64x2_t zero = vdupq_n_f64(0.0);
  const float64x2_t one = vdupq_n_f64(1.0);
  const float64x2_t vt = vdupq_n_f64(args.threshold);
  const double block = static_cast<double>(args.block);
  const float64x2_t vblock = vdupq_n_f64(block);
  const float64x2_t vblock_m1 = vdupq_n_f64(block - 1.0);
  const float64x2_t vn = vdupq_n_f64(static_cast<double>(args.n));
  const float64x2_t vi_lo = vdupq_n_f64(static_cast<double>(args.i_lo));
  const float64x2_t vi_hi = vdupq_n_f64(static_cast<double>(args.i_hi));
  const float64x2_t sb_prev_lo = vdupq_n_f64(args.sb_prev_lo);
  const float64x2_t sb_prev_hi = vdupq_n_f64(args.sb_prev_hi);
  const float64x2_t sa_prev_lo = vdupq_n_f64(args.sa_prev_lo);
  const float64x2_t sa_prev_hi = vdupq_n_f64(args.sa_prev_hi);
  const float64x2_t vh_b_lo = vdupq_n_f64(args.h_b_lo);
  const float64x2_t vh_b_hi = vdupq_n_f64(args.h_b_hi);
  const float64x2_t vh_a_lo = vdupq_n_f64(args.h_a_lo);
  const float64x2_t vh_a_hi = vdupq_n_f64(args.h_a_hi);
  const double b0d = static_cast<double>(b0);
  const double b_init[2] = {b0d, b0d + 1.0};
  float64x2_t vb = vld1q_f64(b_init);
  const float64x2_t two = vdupq_n_f64(2.0);
  uint64_t maybe = 0;
  int64_t m = 0;
  for (; m + 2 <= count; m += 2, vb = vaddq_f64(vb, two)) {
    const float64x2_t j_lo = vmulq_f64(vb, vblock);
    const float64x2_t j_hi = vminq_f64(vn, vaddq_f64(j_lo, vblock_m1));
    const float64x2_t len_min =
        vmaxq_f64(one, vaddq_f64(vsubq_f64(j_lo, vi_hi), one));
    const float64x2_t len_max =
        vmaxq_f64(len_min, vaddq_f64(vsubq_f64(j_hi, vi_lo), one));
    const float64x2_t hb_min_term =
        vmulq_f64(args.h_b_lo >= 0.0 ? len_min : len_max, vh_b_lo);
    const float64x2_t sb_hi_v = vld1q_f64(args.sb_blk_hi + b0 + m);
    const float64x2_t den_ub =
        vsubq_f64(vsubq_f64(sb_hi_v, sb_prev_lo), hb_min_term);
    const uint64x2_t den_ub_pos = vcgtq_f64(den_ub, zero);
    uint64x2_t lane;
    if (args.hold) {
      const float64x2_t hb_max_term =
          vmulq_f64(args.h_b_hi >= 0.0 ? len_max : len_min, vh_b_hi);
      const float64x2_t ha_min_term =
          vmulq_f64(args.h_a_lo >= 0.0 ? len_min : len_max, vh_a_lo);
      const float64x2_t sb_lo_v = vld1q_f64(args.sb_blk_lo + b0 + m);
      const float64x2_t den_lb =
          ClampZero(vsubq_f64(vsubq_f64(sb_lo_v, sb_prev_hi), hb_max_term));
      const float64x2_t sa_hi_v = vld1q_f64(args.sa_blk_hi + b0 + m);
      const float64x2_t num_ub =
          ClampZero(vsubq_f64(vsubq_f64(sa_hi_v, sa_prev_lo), ha_min_term));
      const uint64x2_t den_lb_pos = vcgtq_f64(den_lb, zero);
      const uint64x2_t div_ok = vcgeq_f64(vdivq_f64(num_ub, den_lb), vt);
      const uint64x2_t zero_den_ok = args.threshold <= 0.0
                                         ? vdupq_n_u64(~uint64_t{0})
                                         : vcgtq_f64(num_ub, zero);
      const uint64x2_t cond = vorrq_u64(
          vandq_u64(den_lb_pos, div_ok),
          vbicq_u64(zero_den_ok, den_lb_pos));
      lane = vandq_u64(den_ub_pos, cond);
    } else {
      const float64x2_t ha_max_term =
          vmulq_f64(args.h_a_hi >= 0.0 ? len_max : len_min, vh_a_hi);
      const float64x2_t sa_lo_v = vld1q_f64(args.sa_blk_lo + b0 + m);
      const float64x2_t num_lb =
          ClampZero(vsubq_f64(vsubq_f64(sa_lo_v, sa_prev_hi), ha_max_term));
      const uint64x2_t div_ok = vcleq_f64(vdivq_f64(num_lb, den_ub), vt);
      lane = vandq_u64(den_ub_pos, div_ok);
    }
    maybe |= (vgetq_lane_u64(lane, 0) & 1) << m;
    maybe |= (vgetq_lane_u64(lane, 1) & 1) << (m + 1);
  }
  if (m < count) {
    maybe |= SketchMaybeMaskScalar(args, b0 + m, count - m) << m;
  }
  return maybe;
}

// NEON mirror of avx2::SketchMaybeMaskRight: per-lane h bounds, sign-blend
// len selection via vbslq on the >= 0 compare.
inline uint64_t SketchMaybeMaskRight(const SketchScanRightArgs& args,
                                     int64_t u0, int64_t count) {
  const float64x2_t zero = vdupq_n_f64(0.0);
  const float64x2_t one = vdupq_n_f64(1.0);
  const float64x2_t vt = vdupq_n_f64(args.threshold);
  const double block = static_cast<double>(args.block);
  const float64x2_t vblock = vdupq_n_f64(block);
  const float64x2_t vblock_m1 = vdupq_n_f64(block - 1.0);
  const float64x2_t vj_lo = vdupq_n_f64(static_cast<double>(args.j_lo));
  const float64x2_t vj_hi = vdupq_n_f64(static_cast<double>(args.j_hi));
  const float64x2_t sb_end_lo = vdupq_n_f64(args.sb_end_lo);
  const float64x2_t sb_end_hi = vdupq_n_f64(args.sb_end_hi);
  const float64x2_t sa_end_lo = vdupq_n_f64(args.sa_end_lo);
  const float64x2_t sa_end_hi = vdupq_n_f64(args.sa_end_hi);
  const double u0d = static_cast<double>(u0);
  const double u_init[2] = {u0d, u0d + 1.0};
  float64x2_t vu = vld1q_f64(u_init);
  const float64x2_t two = vdupq_n_f64(2.0);
  uint64_t maybe = 0;
  int64_t m = 0;
  for (; m + 2 <= count; m += 2, vu = vaddq_f64(vu, two)) {
    const float64x2_t u_base = vmulq_f64(vu, vblock);
    const float64x2_t i_min = vmaxq_f64(one, u_base);
    const float64x2_t i_max = vminq_f64(vj_hi, vaddq_f64(u_base, vblock_m1));
    const float64x2_t len_min =
        vmaxq_f64(one, vaddq_f64(vsubq_f64(vj_lo, i_max), one));
    const float64x2_t len_max =
        vmaxq_f64(len_min, vaddq_f64(vsubq_f64(vj_hi, i_min), one));
    const float64x2_t h_lo = vld1q_f64(args.h_blk_lo + u0 + m);
    const float64x2_t h_hi = vld1q_f64(args.h_blk_hi + u0 + m);
    const float64x2_t min_term =
        vmulq_f64(vbslq_f64(vcgeq_f64(h_lo, zero), len_min, len_max), h_lo);
    const float64x2_t max_term =
        vmulq_f64(vbslq_f64(vcgeq_f64(h_hi, zero), len_max, len_min), h_hi);
    const float64x2_t sbp_lo = vld1q_f64(args.sbp_blk_lo + u0 + m);
    const float64x2_t den_ub =
        vsubq_f64(vsubq_f64(sb_end_hi, sbp_lo), min_term);
    const uint64x2_t den_ub_pos = vcgtq_f64(den_ub, zero);
    uint64x2_t lane;
    if (args.hold) {
      const float64x2_t sbp_hi = vld1q_f64(args.sbp_blk_hi + u0 + m);
      const float64x2_t den_lb =
          ClampZero(vsubq_f64(vsubq_f64(sb_end_lo, sbp_hi), max_term));
      const float64x2_t sap_lo = vld1q_f64(args.sap_blk_lo + u0 + m);
      const float64x2_t num_ub =
          ClampZero(vsubq_f64(vsubq_f64(sa_end_hi, sap_lo), min_term));
      const uint64x2_t den_lb_pos = vcgtq_f64(den_lb, zero);
      const uint64x2_t div_ok = vcgeq_f64(vdivq_f64(num_ub, den_lb), vt);
      const uint64x2_t zero_den_ok = args.threshold <= 0.0
                                         ? vdupq_n_u64(~uint64_t{0})
                                         : vcgtq_f64(num_ub, zero);
      const uint64x2_t cond = vorrq_u64(
          vandq_u64(den_lb_pos, div_ok),
          vbicq_u64(zero_den_ok, den_lb_pos));
      lane = vandq_u64(den_ub_pos, cond);
    } else {
      const float64x2_t sap_hi = vld1q_f64(args.sap_blk_hi + u0 + m);
      const float64x2_t num_lb =
          ClampZero(vsubq_f64(vsubq_f64(sa_end_lo, sap_hi), max_term));
      const uint64x2_t div_ok = vcleq_f64(vdivq_f64(num_lb, den_ub), vt);
      lane = vandq_u64(den_ub_pos, div_ok);
    }
    maybe |= (vgetq_lane_u64(lane, 0) & 1) << m;
    maybe |= (vgetq_lane_u64(lane, 1) & 1) << (m + 1);
  }
  if (m < count) {
    maybe |= SketchMaybeMaskRightScalar(args, u0 + m, count - m) << m;
  }
  return maybe;
}

}  // namespace neon

#endif  // CONSERVATION_KERNEL_HAVE_NEON

}  // namespace conservation::interval::internal

#endif  // CONSERVATION_INTERVAL_KERNEL_SIMD_H_
