// ExhaustiveGenerator: the Theta(n^2) exact baseline of paper §III.
//
// For each left endpoint i it scans every right endpoint j and returns the
// largest j such that [i, j] satisfies the exact confidence predicate.
// Confidence is not monotone in j, so the full scan is necessary for
// exactness. Serves as the ground truth for the approximation-guarantee
// tests and as the "naive" competitor in the Fig. 6 benchmark.

#ifndef CONSERVATION_INTERVAL_EXHAUSTIVE_H_
#define CONSERVATION_INTERVAL_EXHAUSTIVE_H_

#include <vector>

#include "interval/generator.h"

namespace conservation::interval {

class ExhaustiveGenerator : public CandidateGenerator {
 public:
  std::vector<Candidate> GenerateCandidates(
      const core::ConfidenceEvaluator& eval, const GeneratorOptions& options,
      GeneratorStats* stats) const override;

  AlgorithmKind kind() const override { return AlgorithmKind::kExhaustive; }
};

}  // namespace conservation::interval

#endif  // CONSERVATION_INTERVAL_EXHAUSTIVE_H_
