// Quantized-sketch anchor screen: the generators' conservative pre-pass.
//
// Before a generator sweeps an anchor, the screen answers "can ANY interval
// anchored here pass the (relaxed) threshold?" from the SeriesSketch block
// maps alone (series/sketch.h) — an O(n / block) scan with a guaranteed
// no-false-negative verdict. Anchors whose per-anchor optimum is provably
// empty are skipped before BeginAnchor, so a high-prune-rate run touches a
// fraction of the full-precision columns; the emitted candidate set stays
// bit-identical because a pruned anchor would have emitted nothing.
//
// Soundness (DESIGN.md §4f): for each endpoint block the screen evaluates
// the same expression shapes as the exact kernel (interval/kernel.h) with
// every operand replaced by the bracketing end of its sketch range, and
// sign-aware min/max products for the len * H terms. Per-operation
// round-to-nearest monotonicity then gives conf_ub >= conf (hold) and
// conf_lb <= conf (fail) for every exact (i, j) pair the block covers, so a
// "no" verdict can never hide a passing pair. The screen over-covers
// invalid pairs (i > j, zero denominators) — that only weakens pruning,
// never correctness.
//
// Determinism: every verdict is a pure function of (series, sketch,
// options, anchor). The SIMD backends in kernel_simd.h compute lanewise
// bit-identical maybe-masks, and block accounting is chunk-granular, so
// decisions AND counters are invariant across thread counts, chunkings,
// walk widths, and CONSERVATION_SIMD settings — the cross-backend equality
// assertions in tests/kernel_batch_test.cc and tests/walk_resume_test.cc
// keep holding with the screen enabled.

#ifndef CONSERVATION_INTERVAL_PRUNE_H_
#define CONSERVATION_INTERVAL_PRUNE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/confidence.h"
#include "interval/generator.h"
#include "interval/kernel_simd.h"
#include "series/sketch.h"

namespace conservation::interval::internal {

// Minimum series length, in sketch blocks, before the auto screen engages.
// Tuned with bench_micro --sketch_json sweeps over n/block ratios {2..64} at
// blocks {128, 256, 512, 1024}: a single-block sketch cannot discriminate
// anchors at all (the screen quantizes verdicts at block granularity), while
// at two blocks the screen already wins 1.9-4.7x on prunable families
// (low_conf_hold) and costs only measurement noise (<= 8%, typically <= 4%)
// on unprunable ones (uniform_pass, joblog). Raising the gate to 4 blocks
// would forfeit those ratio-2 wins without buying any overhead reduction, so
// 2 is the tuned floor. bench_micro --sketch_json --check_gate_overhead
// asserts the overhead side of this trade-off at the gate boundary.
inline constexpr int64_t kSketchAutoGateBlocks = 2;

// Whether the sketch screen should run for this call. Resolution order:
// build-time -DCONSERVATION_SKETCH=off, then the CONSERVATION_SKETCH
// environment variable (auto | off, case-insensitive; an unknown token is a
// fatal configuration error, mirroring CONSERVATION_SIMD), then
// options.sketch, then the auto gate n >= kSketchAutoGateBlocks *
// sketch_block (shorter series cannot amortize sketch construction, and the
// gate keeps tiny unit-test fixtures on the unscreened path).
bool SketchScreenEnabled(const GeneratorOptions& options, int64_t n);

// The block span the screen (and any transient sketch) should use:
// options.sketch_block when positive, else SeriesSketch::kDefaultBlock.
int64_t ResolveSketchBlock(const GeneratorOptions& options);

class SketchScreen {
 public:
  enum class Anchor {
    kLeft,   // exhaustive / AB / AB-opt: MayEmit(i) over endpoints j >= i
    kRight,  // NAB (balance model only): MayEmitRight(j) over anchors i <= j
  };

  // Precomputes, for every block of `sketch.block()` consecutive anchors, a
  // group verdict: kPruned (no anchor in the block can emit — each is
  // skipped with no further work) or kMixed (anchors get an individual
  // sketch scan on first visit). `relaxed` selects the approximate
  // generators' relaxed threshold over the exhaustive generator's exact
  // one. The screen is immutable after construction and safe to share
  // across worker threads; `eval` and `sketch` must outlive it.
  SketchScreen(const core::ConfidenceEvaluator& eval,
               const series::SeriesSketch& sketch,
               const GeneratorOptions& options, Anchor anchor, bool relaxed);

  // True when some interval anchored at i may pass the threshold.
  // `scan_blocks` (required) accumulates sketch blocks scanned.
  bool MayEmit(int64_t i, uint64_t* scan_blocks) const;

  // Right-anchored form: true when some interval ending at j may pass.
  bool MayEmitRight(int64_t j, uint64_t* scan_blocks) const;

  // Sketch blocks scanned while precomputing the group verdicts; callers
  // fold this into GeneratorStats::sketch_blocks once per run.
  uint64_t construction_blocks() const { return construction_blocks_; }

 private:
  // Per-anchor sketch scans in mixed groups give up after this many blocks
  // and conservatively report "may emit". A deterministic cap: the scan
  // order and the first maybe-block are backend-invariant, so the cap
  // triggers identically everywhere.
  static constexpr int64_t kAnchorScanCap = 512;
  // Per-tick code refinements allowed per anchor (left screens only): on a
  // map-level maybe block, decode the 1-byte codes and retest per tick;
  // a killed block lets the scan continue past it.
  static constexpr int kRefineBudget = 2;

  uint64_t ScanLeftChunk(const SketchScanArgs& args, int64_t b0,
                         int64_t count) const;
  uint64_t ScanRightChunk(const SketchScanRightArgs& args, int64_t u0,
                          int64_t count) const;
  // True when, after decoding the per-tick codes of endpoint block b, some
  // endpoint j in it still may pass for the exact anchor scalars in `args`.
  bool RefineLeftBlock(const SketchScanArgs& args, int64_t b) const;

  const series::SeriesSketch& sketch_;
  Anchor anchor_;
  const double* a_ = nullptr;
  const double* s_ = nullptr;
  const double* sa_ = nullptr;
  const double* sb_ = nullptr;
  core::ConfidenceModel model_;
  bool hold_ = false;
  double threshold_ = 0.0;
  int64_t n_ = 0;
  int64_t block_ = 0;
  SimdBackend backend_ = SimdBackend::kScalar;
  // 1 = mixed (anchors need individual scans), 0 = whole group pruned.
  std::vector<uint8_t> group_mixed_;
  // Right screens: per-anchor-block bounds derived once from the sketch
  // maps — the balance baseline A[i-1] and the SA/SB[i-1] prefixes for
  // anchors i in block u (kernel_simd.h SketchScanRightArgs layout).
  std::vector<double> right_h_lo_, right_h_hi_;
  std::vector<double> right_sap_lo_, right_sap_hi_;
  std::vector<double> right_sbp_lo_, right_sbp_hi_;
  uint64_t construction_blocks_ = 0;
};

// Owns the (possibly transient) sketch and screen for one
// GenerateCandidates call. Generators construct one before dispatching
// chunks; get() is null when the screen is disabled for this call.
// Reuses options.sketch_ptr when it matches the series and block span
// (the series/store.h tier), otherwise builds a transient sketch.
class ScopedSketchScreen {
 public:
  ScopedSketchScreen(const core::ConfidenceEvaluator& eval,
                     const GeneratorOptions& options,
                     SketchScreen::Anchor anchor, bool relaxed);
  ScopedSketchScreen(const ScopedSketchScreen&) = delete;
  ScopedSketchScreen& operator=(const ScopedSketchScreen&) = delete;

  const SketchScreen* get() const {
    return screen_.has_value() ? &*screen_ : nullptr;
  }
  uint64_t construction_blocks() const {
    return screen_.has_value() ? screen_->construction_blocks() : 0;
  }

 private:
  series::SeriesSketch sketch_;
  std::optional<SketchScreen> screen_;
};

}  // namespace conservation::interval::internal

#endif  // CONSERVATION_INTERVAL_PRUNE_H_
