// NonAreaBasedGenerator (NAB / NAB-opt): the improved algorithms of paper §V.
//
// AB's running time carries a log(area/Delta) factor. NAB removes the area
// dependence entirely by (1) anchoring intervals at *right* endpoints j and
// (2) sparsifying the *left* endpoints by geometric growth of interval
// length:
//   l_jh = smallest i <= j with j - i + 1 <= (1+eps)^h.
// Fixing the right endpoint is what makes length-based sparsification sound:
// the proofs of Theorems 8-9 bound the area contributed by the extra prefix
// [l_jk, i*-1] using the monotonicity of A and B, which fails for
// length-sparsified right endpoints. Balance model only (the credit/debit
// baselines break the proof's rewrite of area(l_jk, j)).
//
// Guarantees: hold (Thm 8) — per anchor j, if an interval [i*, j] of
// confidence >= c_hat exists, an interval [i', j] with i' <= i* and
// confidence >= c_hat/(1+eps) is produced. Fail (Thm 9) — the produced
// [i', j] has length >= (length of [i*, j]) / (1+eps).
//
// Two length schedules:
//   kGeometric: lengths floor((1+eps)^h), h = 0, 1, 2, ... — the plain NAB
//     of §V; when eps is small, many consecutive h give the same length and
//     the same interval is tested repeatedly.
//   kRecursive: len := max(len + 1, floor((1+eps) * len)) — the §VI
//     optimization (NAB-opt) that visits each length at most once. (The
//     paper prints this with `min`, which would never advance; `max` is the
//     evident intent and preserves the Theorem 8/9 guarantees: either the
//     step is +1, in which case the target length is tested exactly, or it
//     is a factor <= 1+eps.)

#ifndef CONSERVATION_INTERVAL_NON_AREA_BASED_H_
#define CONSERVATION_INTERVAL_NON_AREA_BASED_H_

#include <vector>

#include "interval/generator.h"

namespace conservation::interval {

class NonAreaBasedGenerator : public CandidateGenerator {
 public:
  enum class LengthSchedule {
    kGeometric,  // plain NAB
    kRecursive,  // NAB-opt
  };

  explicit NonAreaBasedGenerator(LengthSchedule schedule)
      : schedule_(schedule) {}

  std::vector<Candidate> GenerateCandidates(
      const core::ConfidenceEvaluator& eval, const GeneratorOptions& options,
      GeneratorStats* stats) const override;

  AlgorithmKind kind() const override {
    return schedule_ == LengthSchedule::kGeometric
               ? AlgorithmKind::kNonAreaBased
               : AlgorithmKind::kNonAreaBasedOpt;
  }

  // The tested interval lengths, ascending, covering 1..max_length. Exposed
  // for tests and for the Fig. 9 analysis of duplicate tests.
  static std::vector<int64_t> MakeLengthSchedule(LengthSchedule schedule,
                                                 double epsilon,
                                                 int64_t max_length);

 private:
  LengthSchedule schedule_;
};

}  // namespace conservation::interval

#endif  // CONSERVATION_INTERVAL_NON_AREA_BASED_H_
