#include "interval/exhaustive.h"

#include "interval/shard.h"

namespace conservation::interval {

std::vector<Candidate> ExhaustiveGenerator::GenerateCandidates(
    const core::ConfidenceEvaluator& eval, const GeneratorOptions& options,
    GeneratorStats* stats) const {
  const int64_t n = eval.n();

  auto block = [&eval, &options, n](int64_t i_begin, int64_t i_end,
                                    GeneratorStats* shard_stats) {
    std::vector<Candidate> out;
    uint64_t tested = 0;
    for (int64_t i = i_begin; i <= i_end; ++i) {
      int64_t best_j = 0;
      double best_conf = 0.0;
      for (int64_t j = i; j <= n; ++j) {
        const std::optional<double> conf = eval.Confidence(i, j);
        ++tested;
        if (!conf.has_value()) continue;  // denominator <= 0: undefined
        if (PassesExactThreshold(*conf, options)) {
          best_j = j;
          best_conf = *conf;
        }
      }
      if (best_j >= i) {
        out.push_back(Candidate{Interval{i, best_j}, best_conf});
        if (options.stop_on_full_cover && i == 1 && best_j == n) break;
      }
    }
    shard_stats->intervals_tested = tested;
    return out;
  };

  return internal::RunSharded(n, options, stats, block);
}

}  // namespace conservation::interval
