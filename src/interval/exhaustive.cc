#include "interval/exhaustive.h"

#include "util/stopwatch.h"

namespace conservation::interval {

std::vector<Interval> ExhaustiveGenerator::Generate(
    const core::ConfidenceEvaluator& eval, const GeneratorOptions& options,
    GeneratorStats* stats) const {
  util::Stopwatch timer;
  const int64_t n = eval.n();
  std::vector<Interval> out;
  uint64_t tested = 0;

  for (int64_t i = 1; i <= n; ++i) {
    int64_t best_j = 0;
    for (int64_t j = i; j <= n; ++j) {
      const std::optional<double> conf = eval.Confidence(i, j);
      ++tested;
      if (!conf.has_value()) continue;  // denominator <= 0: undefined
      if (PassesExactThreshold(*conf, options)) best_j = j;
    }
    if (best_j >= i) {
      out.push_back(Interval{i, best_j});
      if (options.stop_on_full_cover && i == 1 && best_j == n) break;
    }
  }

  if (stats != nullptr) {
    stats->intervals_tested = tested;
    stats->candidates = out.size();
    stats->seconds = timer.ElapsedSeconds();
  }
  return out;
}

}  // namespace conservation::interval
