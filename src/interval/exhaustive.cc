#include "interval/exhaustive.h"

#include <algorithm>

#include "interval/kernel.h"
#include "interval/prune.h"
#include "interval/shard.h"

namespace conservation::interval {

std::vector<Candidate> ExhaustiveGenerator::GenerateCandidates(
    const core::ConfidenceEvaluator& eval, const GeneratorOptions& options,
    GeneratorStats* stats) const {
  const int64_t n = eval.n();

  // Sketch anchor screen (exact threshold — this generator applies no
  // epsilon relaxation), shared read-only by every chunk. A pruned anchor
  // provably has no qualifying endpoint, so skipping it emits nothing and
  // contributes nothing to intervals_tested.
  const internal::ScopedSketchScreen scoped(
      eval, options, internal::SketchScreen::Anchor::kLeft,
      /*relaxed=*/false);
  const internal::SketchScreen* screen = scoped.get();

  // The dense endpoint sweep [i, n] is the ideal batch-kernel shape:
  // contiguous endpoints, no early exit, every j logically tested. Each
  // anchor sweeps in kBatch-wide ConfidenceBatch blocks, then scans the
  // block backwards for its last qualifying endpoint — same winner as the
  // scalar forward scan (last qualifying j overall), and the carried
  // confidence is bit-identical to eval.Confidence by the kernel contract.
  auto block = [&eval, &options, n, screen](int64_t i_begin, int64_t i_end,
                                            GeneratorStats* shard_stats) {
    internal::ConfidenceKernel kernel(eval, options.type);
    constexpr int64_t kBatch = 512;
    double conf[kBatch];
    uint8_t valid[kBatch];
    std::vector<Candidate> out;
    uint64_t tested = 0;
    uint64_t batches = 0;
    uint64_t pruned = 0;
    uint64_t sketch_blocks = 0;
    for (int64_t i = i_begin; i <= i_end; ++i) {
      if (screen != nullptr && !screen->MayEmit(i, &sketch_blocks)) {
        ++pruned;
        continue;
      }
      kernel.BeginAnchor(i);
      int64_t best_j = 0;
      double best_conf = 0.0;
      for (int64_t j0 = i; j0 <= n; j0 += kBatch) {
        const int64_t j1 = std::min<int64_t>(n, j0 + kBatch - 1);
        kernel.ConfidenceBatch(j0, j1, conf, valid);
        ++batches;
        for (int64_t k = j1 - j0; k >= 0; --k) {
          if (valid[k] && PassesExactThreshold(conf[k], options)) {
            best_j = j0 + k;
            best_conf = conf[k];
            break;
          }
        }
      }
      tested += static_cast<uint64_t>(n - i + 1);
      if (best_j >= i) {
        out.push_back(Candidate{Interval{i, best_j}, best_conf});
        if (options.stop_on_full_cover && i == 1 && best_j == n) break;
      }
    }
    shard_stats->intervals_tested = tested;
    shard_stats->batches = batches;
    shard_stats->anchors_pruned = pruned;
    shard_stats->sketch_blocks = sketch_blocks;
    return out;
  };

  auto out = internal::RunSharded(n, options, stats, block);
  if (stats != nullptr) stats->sketch_blocks += scoped.construction_blocks();
  return out;
}

}  // namespace conservation::interval
