#include "interval/area_based.h"

#include <algorithm>
#include <cmath>

#include "interval/kernel.h"
#include "interval/shard.h"

namespace conservation::interval {

namespace internal {

double SparsificationArea(const core::ConfidenceEvaluator& eval,
                          core::TableauType type, int64_t i, int64_t j) {
  if (type == core::TableauType::kHold) return eval.AreaB(i, j);
  // Fail tableaux sparsify on the numerator area. In the credit model the
  // baseline A_{i-1} - S_i is not monotone, so the algorithm reuses the
  // balance-model breakpoints (paper §III.D, Theorems 5-6).
  if (eval.model() == core::ConfidenceModel::kCredit) {
    return eval.AreaABalance(i, j);
  }
  return eval.AreaA(i, j);
}

}  // namespace internal

std::vector<Candidate> AreaBasedGenerator::GenerateCandidates(
    const core::ConfidenceEvaluator& eval, const GeneratorOptions& options,
    GeneratorStats* stats) const {
  CR_CHECK(options.epsilon > 0.0);
  const int64_t n = eval.n();
  const core::TableauType type = options.type;
  const double delta = ResolveDelta(eval.series(), options);
  const double growth = 1.0 + options.epsilon;

  // Upper bound on the number of levels: area(i, n) <= Sum(1, n) because all
  // baselines are >= 0 (A is non-negative and, for debit, S_i >= 0).
  const double max_area = type == core::TableauType::kHold
                              ? eval.series().SumB(1, n)
                              : eval.series().SumA(1, n);
  int64_t num_levels = 0;
  if (max_area > delta) {
    num_levels =
        static_cast<int64_t>(std::ceil(std::log(max_area / delta) /
                                       std::log(growth))) +
        1;
  }

  // Level thresholds T_l = Delta * (1+eps)^l. For fail tableaux a "zero
  // level" T = 0 is prepended to catch confidence-0 intervals.
  std::vector<double> thresholds;
  if (type == core::TableauType::kFail) thresholds.push_back(0.0);
  double t_value = delta;
  for (int64_t l = 0; l <= num_levels; ++l) {
    thresholds.push_back(t_value);
    t_value *= growth;
  }

  // Credit-model fail tableaux need extra care beyond the paper's zero
  // level: within the prefix where the balance numerator area is 0, the
  // credit confidence (len * S_i) / area_B is not 0 and not monotone, so the
  // single zero-level breakpoint may overshoot past every qualifying j.
  // Testing length-geometric endpoints inside that prefix restores the
  // guarantee: len' <= (1+eps) len* and area_B(i,j') >= area_B(i,j*) give
  // conf_c(i,j') <= (1+eps) conf_c(i,j*).
  const bool credit_fail = type == core::TableauType::kFail &&
                           eval.model() == core::ConfidenceModel::kCredit;
  std::vector<int64_t> zero_prefix_lengths;
  if (credit_fail) {
    double power = 1.0;
    while (static_cast<int64_t>(power) < n) {
      zero_prefix_lengths.push_back(static_cast<int64_t>(power));
      power *= growth;
    }
    zero_prefix_lengths.push_back(n);
  }

  // Per-chunk anchor sweep. The level pointers are never-retreating within
  // a chunk (Lemma 3) and the breakpoint t is a function of (i, level)
  // alone — the pointer only amortizes the search for it — so re-basing the
  // pointers per chunk changes no output. A naive re-base (walk from the
  // chunk start) would re-sweep up to a whole level per chunk; instead the
  // first touch of a level inside a chunk locates its breakpoint by binary
  // search over the nondecreasing area (O(log n) per level per chunk), and
  // the walk proceeds linearly from there as in the sequential run.
  //
  // The inner sweep runs on the flat-array kernel: the cumulative series is
  // resolved to __restrict pointers once per chunk and the anchor baselines
  // H_i^A / H_i^B are hoisted out of the endpoint loop (bit-identical
  // arithmetic; see interval/kernel.h).
  auto block = [&, n, type, delta, growth](int64_t i_begin, int64_t i_end,
                                           GeneratorStats* chunk_stats) {
    internal::ConfidenceKernel kernel(eval, type);
    // One never-retreating pointer per level; 0 = not yet located in this
    // chunk (anchors and breakpoints are always >= 1).
    std::vector<int64_t> pointer(thresholds.size(), 0);

    // Batch-walk scratch. The linear walk usually advances a handful of
    // steps, so it starts narrow and doubles up to kMaxWalk while every
    // lane stays within the threshold.
    constexpr int64_t kMaxWalk = 256;
    double area_buf[kMaxWalk];
    std::vector<int64_t> zp_js;
    std::vector<double> zp_conf;
    std::vector<uint8_t> zp_valid;

    std::vector<Candidate> out;
    out.reserve(static_cast<size_t>(i_end - i_begin + 1));
    uint64_t tested = 0;
    uint64_t steps = 0;
    uint64_t batches = 0;

    for (int64_t i = i_begin; i <= i_end; ++i) {
      kernel.BeginAnchor(i);
      int64_t best_j = 0;
      double best_conf = 0.0;
      int64_t zero_area_end = 0;  // largest j with zero sparsification area
      // Levels whose threshold is below area(i, i) have no breakpoint for
      // this anchor; skip straight past them (with a safety margin of one
      // level against floating-point rounding). The zero level for fail
      // tableaux (index 0, threshold 0) is never skipped. Output-equivalent
      // to iterating every level, but avoids an O(log(area(i,i)/Delta) / eps)
      // undefined prefix per anchor.
      size_t first_level = type == core::TableauType::kFail ? 1 : 0;
      {
        const double anchor_area = kernel.SparseArea(i);
        if (anchor_area > delta) {
          const double levels_below =
              std::log(anchor_area / delta) / std::log(growth);
          first_level +=
              static_cast<size_t>(std::max(0.0, levels_below - 1.0));
        }
      }
      for (size_t level = type == core::TableauType::kFail ? 0 : first_level;
           level < thresholds.size(); ++level) {
        if (level == 1 && first_level > 1) level = first_level;  // after zero
        const double threshold = thresholds[level];
        int64_t t;
        if (pointer[level] == 0) {
          // First touch in this chunk: binary-search the largest endpoint
          // in [i, n] whose area is within the threshold (t = i when even
          // [i, i] exceeds it, matching the walk's no-advance case).
          int64_t lo = i;
          int64_t hi = n;
          t = i;
          while (lo <= hi) {
            const int64_t mid = lo + (hi - lo) / 2;
            ++steps;
            if (kernel.SparseArea(mid) <= threshold) {
              t = mid;
              lo = mid + 1;
            } else {
              hi = mid - 1;
            }
          }
        } else {
          t = std::max(pointer[level], i);
          // Batched linear walk: evaluate the next window of areas in one
          // SparseAreaBatch call and advance through its within-threshold
          // prefix. Stops at the same breakpoint as the scalar walk (the
          // area is evaluated for every advanced endpoint plus the first
          // failing one — extra lanes are speculative and side-effect
          // free), and `steps` still counts only actual advances.
          int64_t window = 4;
          while (t + 1 <= n) {
            const int64_t j1 = std::min<int64_t>(n, t + window);
            const int64_t len = j1 - t;
            kernel.SparseAreaBatch(t + 1, j1, area_buf);
            ++batches;
            int64_t advanced = 0;
            while (advanced < len && area_buf[advanced] <= threshold) {
              ++advanced;
            }
            t += advanced;
            steps += static_cast<uint64_t>(advanced);
            if (advanced < len) break;  // hit the first endpoint past T
            window = std::min<int64_t>(window * 2, kMaxWalk);
          }
        }
        pointer[level] = t;
        const bool exists = kernel.SparseArea(t) <= threshold;
        if (exists) {
          if (threshold == 0.0) zero_area_end = t;
          double conf;
          ++tested;
          if (kernel.Confidence(t, &conf) &&
              PassesRelaxedThreshold(conf, options) && t > best_j) {
            best_j = t;
            best_conf = conf;
          }
        }
        // Once the breakpoint reaches n, higher levels produce the same
        // interval; the paper's level count L_i = ceil(log(area(i,n)/Delta))
        // stops here too.
        if (exists && t == n) break;
      }
      if (credit_fail && zero_area_end > i) {
        // Zero-prefix probes, batched through the index-list kernel.
        // Duplicate lengths (floor((1+eps)^h) repeats for small eps) are
        // kept: each counts as a test, exactly as the scalar loop counted
        // them, and a duplicate j can never displace itself (j > best_j).
        zp_js.clear();
        for (const int64_t len : zero_prefix_lengths) {
          const int64_t j = i + len - 1;
          if (j >= zero_area_end) break;  // zero_area_end itself was tested
          zp_js.push_back(j);
        }
        if (!zp_js.empty()) {
          zp_conf.resize(zp_js.size());
          zp_valid.resize(zp_js.size());
          kernel.ConfidenceIndexBatch(zp_js.data(),
                                      static_cast<int64_t>(zp_js.size()),
                                      zp_conf.data(), zp_valid.data());
          ++batches;
          tested += zp_js.size();
          for (size_t k = 0; k < zp_js.size(); ++k) {
            if (zp_valid[k] && PassesRelaxedThreshold(zp_conf[k], options) &&
                zp_js[k] > best_j) {
              best_j = zp_js[k];
              best_conf = zp_conf[k];
            }
          }
        }
      }
      if (best_j >= i) {
        out.push_back(Candidate{Interval{i, best_j}, best_conf});
        if (options.stop_on_full_cover && i == 1 && best_j == n) break;
      }
    }

    chunk_stats->intervals_tested = tested;
    chunk_stats->endpoint_steps = steps;
    chunk_stats->batches = batches;
    return out;
  };

  return internal::RunSharded(n, options, stats, block);
}

}  // namespace conservation::interval
