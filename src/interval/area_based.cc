#include "interval/area_based.h"

#include <algorithm>
#include <cmath>

#include "interval/kernel.h"
#include "interval/prune.h"
#include "interval/shard.h"
#include "interval/walk.h"

namespace conservation::interval {

namespace internal {

double SparsificationArea(const core::ConfidenceEvaluator& eval,
                          core::TableauType type, int64_t i, int64_t j) {
  if (type == core::TableauType::kHold) return eval.AreaB(i, j);
  // Fail tableaux sparsify on the numerator area. In the credit model the
  // baseline A_{i-1} - S_i is not monotone, so the algorithm reuses the
  // balance-model breakpoints (paper §III.D, Theorems 5-6).
  if (eval.model() == core::ConfidenceModel::kCredit) {
    return eval.AreaABalance(i, j);
  }
  return eval.AreaA(i, j);
}

}  // namespace internal

std::vector<Candidate> AreaBasedGenerator::GenerateCandidates(
    const core::ConfidenceEvaluator& eval, const GeneratorOptions& options,
    GeneratorStats* stats) const {
  CR_CHECK(options.epsilon > 0.0);
  const int64_t n = eval.n();
  const core::TableauType type = options.type;
  const double delta = ResolveDelta(eval.series(), options);
  const double growth = 1.0 + options.epsilon;

  // Upper bound on the number of levels: area(i, n) <= Sum(1, n) because all
  // baselines are >= 0 (A is non-negative and, for debit, S_i >= 0).
  const double max_area = type == core::TableauType::kHold
                              ? eval.series().SumB(1, n)
                              : eval.series().SumA(1, n);
  int64_t num_levels = 0;
  if (max_area > delta) {
    num_levels =
        static_cast<int64_t>(std::ceil(std::log(max_area / delta) /
                                       std::log(growth))) +
        1;
  }

  // Level thresholds T_l = Delta * (1+eps)^l. For fail tableaux a "zero
  // level" T = 0 is prepended to catch confidence-0 intervals.
  std::vector<double> thresholds;
  if (type == core::TableauType::kFail) thresholds.push_back(0.0);
  double t_value = delta;
  for (int64_t l = 0; l <= num_levels; ++l) {
    thresholds.push_back(t_value);
    t_value *= growth;
  }

  // Credit-model fail tableaux need extra care beyond the paper's zero
  // level: within the prefix where the balance numerator area is 0, the
  // credit confidence (len * S_i) / area_B is not 0 and not monotone, so the
  // single zero-level breakpoint may overshoot past every qualifying j.
  // Testing length-geometric endpoints inside that prefix restores the
  // guarantee: len' <= (1+eps) len* and area_B(i,j') >= area_B(i,j*) give
  // conf_c(i,j') <= (1+eps) conf_c(i,j*).
  const bool credit_fail = type == core::TableauType::kFail &&
                           eval.model() == core::ConfidenceModel::kCredit;
  std::vector<int64_t> zero_prefix_lengths;
  if (credit_fail) {
    double power = 1.0;
    while (static_cast<int64_t>(power) < n) {
      zero_prefix_lengths.push_back(static_cast<int64_t>(power));
      power *= growth;
    }
    zero_prefix_lengths.push_back(n);
  }

  // Sketch anchor screen (relaxed threshold), shared read-only by every
  // chunk. Skipping a pruned anchor is safe here because the level pointers
  // are pure amortization state: the breakpoint for (i, level) is a
  // function of the series alone, and the pointers never retreat, so later
  // anchors simply walk them forward from wherever the last unpruned
  // anchor left them.
  const internal::ScopedSketchScreen scoped(
      eval, options, internal::SketchScreen::Anchor::kLeft, /*relaxed=*/true);
  const internal::SketchScreen* screen = scoped.get();

  // Per-chunk anchor sweep. The level pointers are never-retreating within
  // a chunk (Lemma 3) and the breakpoint t is a function of (i, level)
  // alone — the pointer only amortizes the search for it — so re-basing the
  // pointers per chunk changes no output. A naive re-base (walk from the
  // chunk start) would re-sweep up to a whole level per chunk; instead the
  // first touch of a level inside a chunk locates its breakpoint by binary
  // search over the nondecreasing area (O(log n) per level per chunk), and
  // the walk proceeds linearly from there as in the sequential run.
  //
  // The inner sweep runs on the flat-array kernel: the cumulative series is
  // resolved to __restrict pointers once per chunk and the anchor baselines
  // H_i^A / H_i^B are hoisted out of the endpoint loop (bit-identical
  // arithmetic; see interval/kernel.h).
  auto block = [&, n, type, delta, growth](int64_t i_begin, int64_t i_end,
                                           GeneratorStats* chunk_stats) {
    internal::ConfidenceKernel kernel(eval, type);
    // One never-retreating pointer per level; 0 = not yet located in this
    // chunk (anchors and breakpoints are always >= 1). The pointers are
    // part of the walks' resumable state: checkpointing an AB walk means
    // checkpointing this vector with it (interval/walk.h).
    std::vector<int64_t> pointer(thresholds.size(), 0);

    internal::AbWalkContext ctx;
    ctx.n = n;
    ctx.delta = delta;
    ctx.growth = growth;
    ctx.thresholds = &thresholds;
    ctx.pointer = &pointer;
    ctx.options = &options;
    ctx.fail_type = type == core::TableauType::kFail;
    ctx.credit_fail = credit_fail;
    ctx.zero_prefix_lengths = &zero_prefix_lengths;

    internal::AbWalkScratch scratch;
    internal::WalkStepCounters counters;
    internal::AbWalkState walk;

    std::vector<Candidate> out;
    out.reserve(static_cast<size_t>(i_end - i_begin + 1));
    uint64_t walks_started = 0;
    uint64_t walk_steps = 0;
    uint64_t pruned = 0;
    uint64_t sketch_blocks = 0;

    for (int64_t i = i_begin; i <= i_end; ++i) {
      if (screen != nullptr && !screen->MayEmit(i, &sketch_blocks)) {
        ++pruned;
        continue;
      }
      kernel.BeginAnchor(i);
      walk.Begin(i, kernel, ctx);
      ++walks_started;
      while (!walk.done()) {
        walk.Step(kernel, ctx, &scratch, &counters);
        ++walk_steps;
      }
      if (walk.best_j() >= i) {
        out.push_back(Candidate{Interval{i, walk.best_j()}, walk.best_conf()});
        if (options.stop_on_full_cover && i == 1 && walk.best_j() == n) break;
      }
    }

    chunk_stats->intervals_tested = counters.tested;
    chunk_stats->endpoint_steps = counters.steps;
    chunk_stats->batches = counters.batches;
    chunk_stats->walks = walks_started;
    chunk_stats->walk_rounds = walk_steps;
    chunk_stats->anchors_pruned = pruned;
    chunk_stats->sketch_blocks = sketch_blocks;
    return out;
  };

  auto result = internal::RunSharded(n, options, stats, block);
  if (stats != nullptr) stats->sketch_blocks += scoped.construction_blocks();
  return result;
}

}  // namespace conservation::interval
