#include "interval/generator.h"

#include <algorithm>
#include <thread>

#include "interval/exhaustive.h"
#include "interval/area_based.h"
#include "interval/area_based_opt.h"
#include "interval/non_area_based.h"

namespace conservation::interval {

const char* AlgorithmKindName(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kExhaustive:
      return "exhaustive";
    case AlgorithmKind::kAreaBased:
      return "area_based";
    case AlgorithmKind::kAreaBasedOpt:
      return "area_based_opt";
    case AlgorithmKind::kNonAreaBased:
      return "non_area_based";
    case AlgorithmKind::kNonAreaBasedOpt:
      return "non_area_based_opt";
  }
  return "unknown";
}

std::vector<Interval> CandidateGenerator::Generate(
    const core::ConfidenceEvaluator& eval, const GeneratorOptions& options,
    GeneratorStats* stats) const {
  const std::vector<Candidate> candidates =
      GenerateCandidates(eval, options, stats);
  std::vector<Interval> out;
  out.reserve(candidates.size());
  for (const Candidate& candidate : candidates) {
    out.push_back(candidate.interval);
  }
  return out;
}

std::unique_ptr<CandidateGenerator> MakeGenerator(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kExhaustive:
      return std::make_unique<ExhaustiveGenerator>();
    case AlgorithmKind::kAreaBased:
      return std::make_unique<AreaBasedGenerator>();
    case AlgorithmKind::kAreaBasedOpt:
      return std::make_unique<AreaBasedOptGenerator>();
    case AlgorithmKind::kNonAreaBased:
      return std::make_unique<NonAreaBasedGenerator>(
          NonAreaBasedGenerator::LengthSchedule::kGeometric);
    case AlgorithmKind::kNonAreaBasedOpt:
      return std::make_unique<NonAreaBasedGenerator>(
          NonAreaBasedGenerator::LengthSchedule::kRecursive);
  }
  CR_UNREACHABLE();
}

int ResolveNumShards(int64_t n, const GeneratorOptions& options) {
  if (n <= 0) return 1;
  int shards = options.num_threads > 0
                   ? options.num_threads
                   : static_cast<int>(std::thread::hardware_concurrency());
  shards = std::max(1, shards);
  return static_cast<int>(std::min<int64_t>(shards, n));
}

int64_t ResolveNumChunks(int64_t n, int workers,
                         const GeneratorOptions& options) {
  if (workers <= 1 || n <= 1) return 1;
  const int64_t per_thread =
      std::max<int64_t>(1, static_cast<int64_t>(options.chunks_per_thread));
  return std::min<int64_t>(n, static_cast<int64_t>(workers) * per_thread);
}

namespace {

// Work seconds of workers that claimed at least one chunk, ascending.
std::vector<double> ParticipatingSeconds(const GeneratorStats& stats) {
  std::vector<double> seconds;
  seconds.reserve(stats.shard_work.size());
  for (const ShardWork& work : stats.shard_work) {
    if (work.chunks_claimed > 0) seconds.push_back(work.seconds);
  }
  std::sort(seconds.begin(), seconds.end());
  return seconds;
}

}  // namespace

double GeneratorStats::MinShardSeconds() const {
  const std::vector<double> s = ParticipatingSeconds(*this);
  return s.empty() ? 0.0 : s.front();
}

double GeneratorStats::MaxShardSeconds() const {
  const std::vector<double> s = ParticipatingSeconds(*this);
  return s.empty() ? 0.0 : s.back();
}

double GeneratorStats::MedianShardSeconds() const {
  const std::vector<double> s = ParticipatingSeconds(*this);
  if (s.empty()) return 0.0;
  const size_t mid = s.size() / 2;
  return s.size() % 2 == 1 ? s[mid] : (s[mid - 1] + s[mid]) / 2.0;
}

double GeneratorStats::ImbalanceRatio() const {
  const std::vector<double> s = ParticipatingSeconds(*this);
  if (s.size() < 2) return 1.0;
  double sum = 0.0;
  for (const double v : s) sum += v;
  const double mean = sum / static_cast<double>(s.size());
  return mean > 0.0 ? s.back() / mean : 1.0;
}

uint64_t GeneratorStats::TotalSteals() const {
  uint64_t total = 0;
  for (const ShardWork& work : shard_work) total += work.steals;
  return total;
}

double ResolveDelta(const series::CumulativeSeries& series,
                    const GeneratorOptions& options) {
  switch (options.delta_mode) {
    case DeltaMode::kMinPositiveCount:
      return series.delta();
    case DeltaMode::kOne:
      return 1.0;
  }
  CR_UNREACHABLE();
}

bool PassesRelaxedThreshold(double conf, const GeneratorOptions& options) {
  if (options.type == core::TableauType::kHold) {
    return conf >= options.c_hat / (1.0 + options.epsilon);
  }
  return conf <= options.c_hat * (1.0 + options.epsilon);
}

bool PassesExactThreshold(double conf, const GeneratorOptions& options) {
  if (options.type == core::TableauType::kHold) {
    return conf >= options.c_hat;
  }
  return conf <= options.c_hat;
}

}  // namespace conservation::interval
