#include "interval/generator.h"

#include "interval/exhaustive.h"
#include "interval/area_based.h"
#include "interval/area_based_opt.h"
#include "interval/non_area_based.h"

namespace conservation::interval {

const char* AlgorithmKindName(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kExhaustive:
      return "exhaustive";
    case AlgorithmKind::kAreaBased:
      return "area_based";
    case AlgorithmKind::kAreaBasedOpt:
      return "area_based_opt";
    case AlgorithmKind::kNonAreaBased:
      return "non_area_based";
    case AlgorithmKind::kNonAreaBasedOpt:
      return "non_area_based_opt";
  }
  return "unknown";
}

std::unique_ptr<CandidateGenerator> MakeGenerator(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kExhaustive:
      return std::make_unique<ExhaustiveGenerator>();
    case AlgorithmKind::kAreaBased:
      return std::make_unique<AreaBasedGenerator>();
    case AlgorithmKind::kAreaBasedOpt:
      return std::make_unique<AreaBasedOptGenerator>();
    case AlgorithmKind::kNonAreaBased:
      return std::make_unique<NonAreaBasedGenerator>(
          NonAreaBasedGenerator::LengthSchedule::kGeometric);
    case AlgorithmKind::kNonAreaBasedOpt:
      return std::make_unique<NonAreaBasedGenerator>(
          NonAreaBasedGenerator::LengthSchedule::kRecursive);
  }
  CR_UNREACHABLE();
}

double ResolveDelta(const series::CumulativeSeries& series,
                    const GeneratorOptions& options) {
  switch (options.delta_mode) {
    case DeltaMode::kMinPositiveCount:
      return series.delta();
    case DeltaMode::kOne:
      return 1.0;
  }
  CR_UNREACHABLE();
}

bool PassesRelaxedThreshold(double conf, const GeneratorOptions& options) {
  if (options.type == core::TableauType::kHold) {
    return conf >= options.c_hat / (1.0 + options.epsilon);
  }
  return conf <= options.c_hat * (1.0 + options.epsilon);
}

bool PassesExactThreshold(double conf, const GeneratorOptions& options) {
  if (options.type == core::TableauType::kHold) {
    return conf >= options.c_hat;
  }
  return conf <= options.c_hat;
}

}  // namespace conservation::interval
