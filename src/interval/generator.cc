#include "interval/generator.h"

#include <algorithm>
#include <thread>

#include "interval/exhaustive.h"
#include "interval/area_based.h"
#include "interval/area_based_opt.h"
#include "interval/non_area_based.h"

namespace conservation::interval {

const char* AlgorithmKindName(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kExhaustive:
      return "exhaustive";
    case AlgorithmKind::kAreaBased:
      return "area_based";
    case AlgorithmKind::kAreaBasedOpt:
      return "area_based_opt";
    case AlgorithmKind::kNonAreaBased:
      return "non_area_based";
    case AlgorithmKind::kNonAreaBasedOpt:
      return "non_area_based_opt";
  }
  return "unknown";
}

std::unique_ptr<CandidateGenerator> MakeGenerator(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kExhaustive:
      return std::make_unique<ExhaustiveGenerator>();
    case AlgorithmKind::kAreaBased:
      return std::make_unique<AreaBasedGenerator>();
    case AlgorithmKind::kAreaBasedOpt:
      return std::make_unique<AreaBasedOptGenerator>();
    case AlgorithmKind::kNonAreaBased:
      return std::make_unique<NonAreaBasedGenerator>(
          NonAreaBasedGenerator::LengthSchedule::kGeometric);
    case AlgorithmKind::kNonAreaBasedOpt:
      return std::make_unique<NonAreaBasedGenerator>(
          NonAreaBasedGenerator::LengthSchedule::kRecursive);
  }
  CR_UNREACHABLE();
}

int ResolveNumShards(int64_t n, const GeneratorOptions& options) {
  // stop_on_full_cover breaks out of the anchor loop as soon as a full-span
  // candidate appears; that early exit is inherently sequential, so the
  // sharded path is bypassed to keep output identical.
  if (n <= 0 || options.stop_on_full_cover) return 1;
  int shards = options.num_threads > 0
                   ? options.num_threads
                   : static_cast<int>(std::thread::hardware_concurrency());
  shards = std::max(1, shards);
  return static_cast<int>(std::min<int64_t>(shards, n));
}

double ResolveDelta(const series::CumulativeSeries& series,
                    const GeneratorOptions& options) {
  switch (options.delta_mode) {
    case DeltaMode::kMinPositiveCount:
      return series.delta();
    case DeltaMode::kOne:
      return 1.0;
  }
  CR_UNREACHABLE();
}

bool PassesRelaxedThreshold(double conf, const GeneratorOptions& options) {
  if (options.type == core::TableauType::kHold) {
    return conf >= options.c_hat / (1.0 + options.epsilon);
  }
  return conf <= options.c_hat * (1.0 + options.epsilon);
}

bool PassesExactThreshold(double conf, const GeneratorOptions& options) {
  if (options.type == core::TableauType::kHold) {
    return conf >= options.c_hat;
  }
  return conf <= options.c_hat;
}

}  // namespace conservation::interval
