// Candidate interval generation — phase 1 of TABLEAU DISCOVERY (paper §III).
//
// The CANDIDATE INTERVAL GENERATION PROBLEM (Definition 5): for each anchor,
// find the longest interval satisfying the confidence predicate
//   hold: conf(I) >= c_hat        fail: conf(I) <= c_hat.
// The exhaustive generator solves it exactly in Theta(n^2). The approximate
// generators trade the threshold for speed: they return, per anchor, the
// longest tested interval with
//   hold: conf(I) >= c_hat / (1 + epsilon)
//   fail: conf(I) <= c_hat * (1 + epsilon)
// and guarantee (Theorems 2, 3, 6, 8, 9) that the returned interval is at
// least as long as the exact per-anchor optimum, so no optimal tableau
// interval is missed ("no false negatives").

#ifndef CONSERVATION_INTERVAL_GENERATOR_H_
#define CONSERVATION_INTERVAL_GENERATOR_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/confidence.h"
#include "core/model.h"
#include "interval/interval.h"

namespace conservation::series {
class SeriesSketch;
}  // namespace conservation::series

namespace conservation::interval {

enum class AlgorithmKind {
  // Tests all Theta(n^2) intervals; exact, no epsilon relaxation.
  kExhaustive,
  // Area-based (AB, paper §III): anchored at left endpoints, sparse right
  // endpoints chosen by geometric growth of area_B (hold) / area_A (fail).
  // Supports all three models. O((n/eps) * log(area/Delta)).
  kAreaBased,
  // AB-opt (paper §VI): like AB, but endpoints found by per-anchor binary
  // search so that consecutive tested areas differ by a factor ~(1+eps),
  // eliminating duplicate tests at the cost of a log factor per step.
  kAreaBasedOpt,
  // Non-area-based (NAB, paper §V): anchored at right endpoints, sparse left
  // endpoints chosen by geometric growth of interval *length*; running time
  // independent of the area under the curves. Balance model only.
  kNonAreaBased,
  // NAB-opt (paper §VI): NAB with the recursive length schedule
  // len := min(len + 1, floor((1+eps) * len)), which skips the duplicate
  // lengths that plain NAB tests when (1+eps)^h grows slower than 1 per step.
  kNonAreaBasedOpt,
};

const char* AlgorithmKindName(AlgorithmKind kind);

// The paper's theory sets Delta to the minimum positive count; the paper's
// own implementation fixed Delta = 1 (§IV). Both are supported for ablation.
enum class DeltaMode {
  kMinPositiveCount,
  kOne,
};

// Quantized-sketch anchor pruning (interval/prune.h). kAuto enables the
// pre-pass whenever the series is long enough to amortize sketch
// construction (n >= 2 * sketch_block); kOff disables it unconditionally.
// The emitted candidate set is bit-identical either way — the screen only
// skips anchors whose per-anchor optimum is provably empty — so this is a
// pure performance knob (intervals_tested / endpoint_steps may shrink).
// Also overridable per process via the CONSERVATION_SKETCH env var and per
// build via -DCONSERVATION_SKETCH=off.
enum class SketchMode {
  kAuto,
  kOff,
};

struct GeneratorOptions {
  core::TableauType type = core::TableauType::kHold;
  // Confidence threshold c_hat in [0, 1].
  double c_hat = 0.9;
  // Approximation knob; must be > 0 for the approximate generators.
  double epsilon = 0.01;
  DeltaMode delta_mode = DeltaMode::kMinPositiveCount;
  // §VI optimizations, both off by default to match the paper's experiments:
  //
  // Stop the anchor loop as soon as an emitted candidate spans [1, n] — the
  // greedy cover then needs nothing else. Used by the Fig. 7 benchmark.
  bool stop_on_full_cover = false;
  // Per anchor, test candidate intervals longest-first and stop at the first
  // one satisfying the (relaxed) threshold; shorter qualifying intervals are
  // subsumed. Supported by the per-anchor generators (AB-opt, NAB, NAB-opt).
  bool largest_first_early_exit = false;
  // Anchor-sharded parallel generation: the anchor range is split into
  // many fine-grained contiguous chunks that workers claim dynamically off
  // an atomic cursor; each chunk runs the unmodified sequential sweep with
  // its own amortization state (level pointers / schedule cursor), and
  // per-chunk outputs are concatenated in anchor order — results are
  // identical to the sequential run for every algorithm/model/tableau-type
  // combination and every chunking. 1 = sequential (default), 0 = hardware
  // concurrency.
  int num_threads = 1;
  // Chunks dispatched per worker. Per-anchor cost is triangular (anchor i
  // sweeps right endpoints up to n), so contiguous equal-width per-worker
  // blocks leave the first block owning most of the work; cutting the range
  // into chunks_per_thread * num_threads chunks and claiming them
  // dynamically bounds the imbalance by one chunk's work. 8–16 is the sweet
  // spot: fewer re-exposes the skew, many more just pays per-chunk pointer
  // re-base overhead. Values < 1 are clamped to 1.
  int chunks_per_thread = 12;
  // Concurrently active resumable walks per chunk in the cross-anchor walk
  // schedulers (interval/walk.h): the AB/AB-opt sparsification sweeps keep
  // this many anchor walks in flight and gather one probe per walk into
  // contiguous lane buffers for the batch kernels. 0 = auto (SIMD backend
  // lane count x unroll factor: 16 on AVX2, 8 on NEON); 1 (or a scalar /
  // CONSERVATION_SIMD=off backend) delegates to the per-anchor scalar walk.
  // Candidate output and the tested/steps counters are identical for every
  // setting — this only tunes how full the SIMD lanes run.
  int walk_width = 0;
  // Sketch anchor-pruning policy and block span (ticks per sketch block).
  // See SketchMode above; the block span trades screen resolution (smaller
  // blocks prune more precisely) against sketch footprint and scan length.
  SketchMode sketch = SketchMode::kAuto;
  int64_t sketch_block = 256;
  // Right-anchor sketch screen for NAB/NAB-opt. The NAB screen bounds each
  // right anchor's reachable LEFT endpoints through the sketch, which pays
  // off far less often than the left-anchored screen (the length schedule
  // already caps probes per anchor at O(log n)), so it defaults OFF and the
  // `sketch` mode above then governs only the left-anchored generators; see
  // DESIGN.md §4f. Candidates are bit-identical either way.
  bool sketch_nab_right = false;
  // Optional prebuilt sketch over the same series (series/store.h tier).
  // When null and the screen is enabled, generators build a transient
  // sketch per GenerateCandidates call. Must outlive the call.
  const series::SeriesSketch* sketch_ptr = nullptr;
};

// Per-worker accounting from one sharded run. Pure observability: none of
// these values feed back into generation, and (unlike the candidate output)
// they are timing-dependent, so they vary run to run.
struct ShardWork {
  // Summed in-chunk work time of this worker (excludes claim overhead and
  // idle time).
  double seconds = 0.0;
  // Chunks this worker pulled off the claim cursor.
  uint64_t chunks_claimed = 0;
  // Chunks claimed beyond the static fair share ceil(chunks / workers) —
  // work this worker effectively took over from slower workers. 0 everywhere
  // means static partitioning would have balanced just as well.
  uint64_t steals = 0;
};

struct GeneratorStats {
  // Number of confidence evaluations ("iterations" in paper Figs. 7-10).
  uint64_t intervals_tested = 0;
  // Endpoint-search work: pointer advances (AB/NAB) or binary-search probes
  // (AB-opt). Chunked runs re-base their level pointers per chunk (one
  // O(log n) search per level per chunk), so this can exceed the sequential
  // count slightly.
  uint64_t endpoint_steps = 0;
  // Batch kernel calls issued (interval/kernel_simd.h). Unlike
  // intervals_tested this is allowed to vary with batching policy — it
  // measures how well the sweeps amortize dispatch, not logical work.
  uint64_t batches = 0;
  // Number of candidate intervals emitted.
  uint64_t candidates = 0;
  // Cross-anchor walk-scheduler accounting (interval/walk.h). Like
  // `batches`, these describe execution shape, not logical work, and may
  // vary with walk_width and backend; zero when the scalar walk ran.
  uint64_t walks = 0;        // resumable walks activated
  uint64_t walk_rounds = 0;  // gather rounds the schedulers issued
  uint64_t walk_lanes = 0;   // probe lanes actually occupied across rounds
  // Lane capacity of those rounds (rounds x walk width); occupancy is
  // walk_lanes / walk_lane_slots.
  uint64_t walk_lane_slots = 0;
  // Sketch screen accounting (interval/prune.h): anchors skipped because
  // the screen proved their per-anchor optimum empty, and sketch blocks
  // scanned doing so (both screen construction and per-anchor rescans).
  // Deterministic for a given series + options — the screen's decisions and
  // scan order do not depend on threading, walk width, or SIMD backend.
  uint64_t anchors_pruned = 0;
  uint64_t sketch_blocks = 0;
  // Total work time: summed across workers. Equals wall_seconds for a
  // sequential run; approaches shards * wall_seconds under perfect scaling.
  double seconds = 0.0;
  // End-to-end elapsed time of Generate — the number to plot for parallel
  // scaling. Set once by the execution driver, never merged.
  double wall_seconds = 0.0;
  // Workers the driver dispatched (1 for sequential runs).
  int shards = 1;
  // Scheduler chunks the anchor range was cut into (1 for sequential runs).
  int64_t chunks = 1;
  // One entry per worker (index = worker id). Empty until the driver fills
  // it; sequential runs get a single entry.
  std::vector<ShardWork> shard_work;

  void Reset() { *this = GeneratorStats{}; }

  // Accumulates per-chunk (or per-shard) counters into this one: counters
  // and work seconds add. wall_seconds, shards, chunks, and shard_work
  // describe the whole run and are owned by the execution driver — Merge
  // leaves them untouched.
  void Merge(const GeneratorStats& shard) {
    intervals_tested += shard.intervals_tested;
    endpoint_steps += shard.endpoint_steps;
    batches += shard.batches;
    candidates += shard.candidates;
    walks += shard.walks;
    walk_rounds += shard.walk_rounds;
    walk_lanes += shard.walk_lanes;
    walk_lane_slots += shard.walk_lane_slots;
    anchors_pruned += shard.anchors_pruned;
    sketch_blocks += shard.sketch_blocks;
    seconds += shard.seconds;
  }

  // Fraction of walk-scheduler lane slots that carried a live probe, in
  // [0, 1]; 0.0 when no walk scheduler ran. The bench_smoke_walks gate
  // asserts this stays > 0.9 for the auto width on a vector backend.
  double LaneOccupancy() const {
    return walk_lane_slots == 0
               ? 0.0
               : static_cast<double>(walk_lanes) /
                     static_cast<double>(walk_lane_slots);
  }

  // Shard-level observability, derived from shard_work. Workers that
  // claimed no chunk (they reached the cursor after exhaustion) are
  // excluded: they did no work by design, not from imbalance.
  double MinShardSeconds() const;
  double MedianShardSeconds() const;
  double MaxShardSeconds() const;
  // Max/mean work seconds over participating workers; 1.0 when fewer than
  // two workers participated. 1.0 is perfect balance; the contiguous-block
  // scheduler this replaced measured ~1.9 at 8 workers on triangular work.
  double ImbalanceRatio() const;
  uint64_t TotalSteals() const;
};

// A candidate interval together with the confidence value that admitted it.
// The generators evaluate conf(interval) anyway while testing endpoints;
// carrying it out lets tableau assembly (core/tableau.cc) skip re-evaluating
// every chosen row. Kernel arithmetic is bit-identical to
// core::ConfidenceEvaluator (interval/kernel.h), so the carried value equals
// what a rescan would produce.
struct Candidate {
  Interval interval;
  double confidence = 0.0;

  friend bool operator==(const Candidate&, const Candidate&) = default;
};

class CandidateGenerator {
 public:
  virtual ~CandidateGenerator() = default;

  // Produces the per-anchor longest qualifying intervals, each paired with
  // its confidence, sorted by position. `stats` may be null.
  virtual std::vector<Candidate> GenerateCandidates(
      const core::ConfidenceEvaluator& eval, const GeneratorOptions& options,
      GeneratorStats* stats) const = 0;

  // Interval-only view of GenerateCandidates, for callers that do not need
  // the confidences.
  std::vector<Interval> Generate(const core::ConfidenceEvaluator& eval,
                                 const GeneratorOptions& options,
                                 GeneratorStats* stats) const;

  virtual AlgorithmKind kind() const = 0;
};

// Factory for all five algorithms.
std::unique_ptr<CandidateGenerator> MakeGenerator(AlgorithmKind kind);

// Resolves Delta per `options.delta_mode`.
double ResolveDelta(const series::CumulativeSeries& series,
                    const GeneratorOptions& options);

// Number of workers a generator should dispatch for n anchors: clamps
// options.num_threads (0 = hardware concurrency) to [1, n].
int ResolveNumShards(int64_t n, const GeneratorOptions& options);

// Number of scheduler chunks for n anchors and `workers` workers:
// min(n, workers * max(1, options.chunks_per_thread)), and 1 when
// workers == 1 (a sequential run needs no chunking).
int64_t ResolveNumChunks(int64_t n, int workers,
                         const GeneratorOptions& options);

// The relaxed acceptance predicate used by the approximate generators, and
// the exact one (epsilon = 0) used by the exhaustive generator.
bool PassesRelaxedThreshold(double conf, const GeneratorOptions& options);
bool PassesExactThreshold(double conf, const GeneratorOptions& options);

}  // namespace conservation::interval

#endif  // CONSERVATION_INTERVAL_GENERATOR_H_
