// Interval: a closed range [begin, end] of 1-based time ticks.

#ifndef CONSERVATION_INTERVAL_INTERVAL_H_
#define CONSERVATION_INTERVAL_INTERVAL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace conservation::interval {

struct Interval {
  int64_t begin = 0;  // first tick, 1-based, inclusive
  int64_t end = 0;    // last tick, inclusive

  int64_t length() const { return end - begin + 1; }

  bool Contains(int64_t tick) const { return begin <= tick && tick <= end; }
  bool Contains(const Interval& other) const {
    return begin <= other.begin && other.end <= end;
  }
  bool Overlaps(const Interval& other) const {
    return begin <= other.end && other.begin <= end;
  }

  friend bool operator==(const Interval&, const Interval&) = default;

  std::string ToString() const;
};

// Orders by begin, then end; the canonical order for tableau output.
bool ByPosition(const Interval& lhs, const Interval& rhs);

// Total number of ticks covered by the union of `intervals` (which may
// overlap). O(k log k).
int64_t UnionSize(std::vector<Interval> intervals);

}  // namespace conservation::interval

#endif  // CONSERVATION_INTERVAL_INTERVAL_H_
