// AreaBasedGenerator (AB): the approximation algorithm of paper §III.
//
// For each left anchor i it tests only the sparse right endpoints
//   r_il = largest j >= i with area(i, j) <= Delta * (1 + eps)^l
// where `area` is area_B for hold tableaux and area_A for fail tableaux
// (balance-model area_A for the credit model, §III.D). Because the baselines
// H_i are monotone nondecreasing in i (Lemmas 4-5 and Theorem 5), the r_il
// are nondecreasing in i for each level l, so one never-retreating pointer
// per level finds all of them in O(n) amortized time per level:
// O(n log_{1+eps}(area(1,n)/Delta)) total.
//
// Guarantees (Theorems 2, 3, 6): every emitted interval passes the relaxed
// threshold, and for each anchor with an exact-threshold interval [i, j*]
// the emitted interval [i, j'] has j' >= j*.
//
// Fail tableaux additionally run a "zero level" (T = 0) that finds the
// largest j with area_A(i, j) = 0 — such intervals have confidence exactly 0
// and would otherwise be missed (the easy special case the paper notes in
// §III.C-D).

#ifndef CONSERVATION_INTERVAL_AREA_BASED_H_
#define CONSERVATION_INTERVAL_AREA_BASED_H_

#include <vector>

#include "interval/generator.h"

namespace conservation::interval {

class AreaBasedGenerator : public CandidateGenerator {
 public:
  std::vector<Candidate> GenerateCandidates(
      const core::ConfidenceEvaluator& eval, const GeneratorOptions& options,
      GeneratorStats* stats) const override;

  AlgorithmKind kind() const override { return AlgorithmKind::kAreaBased; }
};

namespace internal {

// The sparsification area for anchor i, endpoint j: area_B for hold,
// area_A for fail (balance-model area_A when the evaluator is credit).
double SparsificationArea(const core::ConfidenceEvaluator& eval,
                          core::TableauType type, int64_t i, int64_t j);

}  // namespace internal

}  // namespace conservation::interval

#endif  // CONSERVATION_INTERVAL_AREA_BASED_H_
