#include "interval/compare.h"

#include <algorithm>
#include <set>

namespace conservation::interval {

double IntervalJaccard(const Interval& lhs, const Interval& rhs) {
  if (!lhs.Overlaps(rhs)) return 0.0;
  const int64_t intersection =
      std::min(lhs.end, rhs.end) - std::max(lhs.begin, rhs.begin) + 1;
  const int64_t union_size =
      std::max(lhs.end, rhs.end) - std::min(lhs.begin, rhs.begin) + 1;
  return static_cast<double>(intersection) /
         static_cast<double>(union_size);
}

namespace {

// Ticks covered by the intersection of two interval unions, plus by each
// union alone, via a merged boundary sweep.
void CoverageCounts(std::vector<Interval> lhs, std::vector<Interval> rhs,
                    int64_t* both, int64_t* either) {
  // Coalesce each side into disjoint sorted runs.
  const auto coalesce = [](std::vector<Interval>& intervals) {
    std::sort(intervals.begin(), intervals.end(), ByPosition);
    std::vector<Interval> out;
    for (const Interval& iv : intervals) {
      if (!out.empty() && iv.begin <= out.back().end + 1) {
        out.back().end = std::max(out.back().end, iv.end);
      } else {
        out.push_back(iv);
      }
    }
    intervals = std::move(out);
  };
  coalesce(lhs);
  coalesce(rhs);

  *both = 0;
  *either = 0;
  size_t i = 0;
  size_t j = 0;
  // Union sizes plus intersection by two-pointer sweep.
  for (const Interval& iv : lhs) *either += iv.length();
  for (const Interval& iv : rhs) *either += iv.length();
  while (i < lhs.size() && j < rhs.size()) {
    const Interval& a = lhs[i];
    const Interval& b = rhs[j];
    const int64_t lo = std::max(a.begin, b.begin);
    const int64_t hi = std::min(a.end, b.end);
    if (lo <= hi) *both += hi - lo + 1;
    if (a.end < b.end) {
      ++i;
    } else {
      ++j;
    }
  }
  *either -= *both;
}

}  // namespace

SetComparison CompareIntervalSets(const std::vector<Interval>& lhs,
                                  const std::vector<Interval>& rhs) {
  SetComparison result;
  result.lhs_total = lhs.size();
  result.rhs_total = rhs.size();

  std::set<std::pair<int64_t, int64_t>> rhs_exact;
  for (const Interval& iv : rhs) rhs_exact.emplace(iv.begin, iv.end);

  double jaccard_sum = 0.0;
  for (const Interval& candidate : lhs) {
    if (rhs_exact.count({candidate.begin, candidate.end}) > 0) {
      ++result.identical;
      continue;
    }
    double best = 0.0;
    for (const Interval& other : rhs) {
      best = std::max(best, IntervalJaccard(candidate, other));
    }
    if (best > 0.0) {
      ++result.overlapping;
      jaccard_sum += best;
    } else {
      ++result.unmatched;
    }
  }
  result.mean_jaccard =
      result.overlapping > 0 ? jaccard_sum / result.overlapping : 0.0;

  if (lhs.empty() && rhs.empty()) {
    result.coverage_jaccard = 1.0;
  } else {
    int64_t both = 0;
    int64_t either = 0;
    CoverageCounts(lhs, rhs, &both, &either);
    result.coverage_jaccard =
        either > 0 ? static_cast<double>(both) / static_cast<double>(either)
                   : 1.0;
  }
  return result;
}

}  // namespace conservation::interval
