#include "interval/area_based_opt.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "interval/kernel.h"
#include "interval/prune.h"
#include "interval/shard.h"
#include "interval/walk.h"

namespace conservation::interval {

namespace {

// Largest j in [lo, hi] with area(i, j) <= threshold, or lo - 1 if even
// area(i, lo) exceeds it. Binary search over the nondecreasing area; the
// kernel must be anchored at i (BeginAnchor).
int64_t LargestEndpointWithin(const internal::ConfidenceKernel& kernel,
                              int64_t lo, int64_t hi, double threshold,
                              uint64_t* probes) {
  int64_t result = lo - 1;
  while (lo <= hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    ++*probes;
    if (kernel.SparseArea(mid) <= threshold) {
      result = mid;
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return result;
}

struct EvalBuffers {
  std::vector<double> conf;
  std::vector<uint8_t> valid;
};

// Confidence-evaluates a completed breakpoint list for the kernel's current
// anchor and returns the longest qualifying endpoint (0 if none) with its
// confidence. Shared by the per-anchor scalar walk and the batched walk
// scheduler, so retirement cannot drift from the reference semantics.
std::pair<int64_t, double> EvaluateBreakpoints(
    const internal::ConfidenceKernel& kernel,
    const std::vector<int64_t>& breakpoints, const GeneratorOptions& options,
    EvalBuffers* buf, uint64_t* tested, uint64_t* batches) {
  int64_t best_j = 0;
  double best_conf = 0.0;
  const int64_t count = static_cast<int64_t>(breakpoints.size());
  buf->conf.resize(breakpoints.size());
  buf->valid.resize(breakpoints.size());
  if (options.largest_first_early_exit) {
    // Longest-first: the first qualifying breakpoint subsumes the rest.
    // Probe in reverse blocks; lanes past the first qualifying one are
    // speculative and uncounted, so `tested` matches the scalar scan
    // (probes up to and including the winner).
    constexpr int64_t kProbeBlock = 16;
    bool found = false;
    for (int64_t end = count; end > 0 && !found;) {
      const int64_t begin = std::max<int64_t>(0, end - kProbeBlock);
      kernel.ConfidenceIndexBatch(breakpoints.data() + begin, end - begin,
                                  buf->conf.data(), buf->valid.data());
      ++*batches;
      for (int64_t k = end; k-- > begin;) {
        ++*tested;
        if (buf->valid[k - begin] &&
            PassesRelaxedThreshold(buf->conf[k - begin], options)) {
          best_j = breakpoints[static_cast<size_t>(k)];
          best_conf = buf->conf[k - begin];
          found = true;
          break;
        }
      }
      end = begin;
    }
  } else {
    kernel.ConfidenceIndexBatch(breakpoints.data(), count, buf->conf.data(),
                                buf->valid.data());
    ++*batches;
    *tested += static_cast<uint64_t>(count);
    for (int64_t k = 0; k < count; ++k) {
      const int64_t j = breakpoints[static_cast<size_t>(k)];
      if (buf->valid[k] && PassesRelaxedThreshold(buf->conf[k], options) &&
          j > best_j) {
        best_j = j;
        best_conf = buf->conf[k];
      }
    }
  }
  return {best_j, best_conf};
}

}  // namespace

std::vector<Candidate> AreaBasedOptGenerator::GenerateCandidates(
    const core::ConfidenceEvaluator& eval, const GeneratorOptions& options,
    GeneratorStats* stats) const {
  CR_CHECK(options.epsilon > 0.0);
  const int64_t n = eval.n();
  const core::TableauType type = options.type;
  const double delta = ResolveDelta(eval.series(), options);
  const double growth = 1.0 + options.epsilon;

  // See AreaBasedGenerator: credit-model fail tableaux additionally probe
  // length-geometric endpoints inside the zero-area prefix, where the
  // credit confidence is nonzero and non-monotone.
  const bool credit_fail = type == core::TableauType::kFail &&
                           eval.model() == core::ConfidenceModel::kCredit;
  std::vector<int64_t> zero_prefix_lengths;
  if (credit_fail) {
    double power = 1.0;
    while (static_cast<int64_t>(power) < n) {
      zero_prefix_lengths.push_back(static_cast<int64_t>(power));
      power *= growth;
    }
    zero_prefix_lengths.push_back(n);
  }

  // Width of the cross-anchor walk scheduler. stop_on_full_cover needs the
  // scalar loop's mid-chunk early break (walks retire out of anchor order),
  // and width 1 has no cross-walk parallelism to harvest, so both take the
  // per-anchor reference path below.
  const int walk_width =
      internal::ResolveWalkWidth(options, internal::ActiveSimdBackend());
  const bool use_walks = walk_width > 1 && !options.stop_on_full_cover;

  // Sketch anchor screen (relaxed threshold), shared read-only by every
  // chunk. AB-opt anchors are stateless, so both execution paths below
  // simply never start work for a pruned anchor.
  const internal::ScopedSketchScreen scoped(
      eval, options, internal::SketchScreen::Anchor::kLeft, /*relaxed=*/true);
  const internal::SketchScreen* screen = scoped.get();

  // AB-opt carries no cross-anchor state (each anchor's breakpoints come
  // from fresh binary searches), so anchor chunks parallelize directly.
  // Inner sweeps run on the flat-array kernel (interval/kernel.h).
  auto block = [&, n, delta, growth](int64_t i_begin, int64_t i_end,
                                     GeneratorStats* chunk_stats) {
    internal::ConfidenceKernel kernel(eval, type);
    std::vector<Candidate> out;
    out.reserve(static_cast<size_t>(i_end - i_begin + 1));
    uint64_t tested = 0;
    uint64_t probes = 0;
    uint64_t batches = 0;
    uint64_t pruned = 0;
    uint64_t sketch_blocks = 0;
    EvalBuffers buf;

    if (use_walks) {
      // Cross-anchor batched execution: keep up to walk_width resumable
      // walks (interval/walk.h) in flight, their binary-search registers
      // parked in SoA lane buffers, and advance every lane per round with
      // one branchless SparseWalkRound kernel step. Per-walk scalar code
      // runs only when a lane's search completes (~once per log n rounds).
      // Each walk follows the reference probe sequence exactly, so
      // candidates and counters match the scalar loop bit for bit.
      const internal::AbOptWalkContext ctx{n,           delta,
                                           growth,      credit_fail,
                                           &zero_prefix_lengths, kernel.sp()};
      const int64_t span = i_end - i_begin + 1;
      const int width = static_cast<int>(
          std::min<int64_t>(static_cast<int64_t>(walk_width), span));
      internal::WalkLaneBuffers lanes(width);
      std::vector<internal::AbOptWalkState> walks(
          static_cast<size_t>(width));
      // Walks retire out of anchor order; park results in per-anchor slots
      // and emit in anchor order afterwards.
      std::vector<int64_t> slot_j(static_cast<size_t>(span), 0);
      std::vector<double> slot_conf(static_cast<size_t>(span), 0.0);
      // The round kernel reports completions as a 64-bit mask, so a round
      // advances the lanes in banks of kMaxRoundLanes.
      constexpr int kBankLanes = internal::kMaxRoundLanes;
      constexpr int kNumBanks =
          (internal::kMaxWalkWidth + kBankLanes - 1) / kBankLanes;
      internal::WalkRoundArgs bank_args[kNumBanks];
      for (int b = 0; b * kBankLanes < width; ++b) {
        bank_args[b] = lanes.RoundArgs(b * kBankLanes);
      }
      uint64_t done_mask[kNumBanks] = {0};
      int64_t frontier = i_begin;
      int active = 0;
      uint64_t rounds = 0;
      uint64_t lanes_occupied = 0;
      uint64_t walks_started = 0;
      for (;;) {
        // Refill retired lanes from the anchor frontier. A freshly begun
        // walk is always mid-search ([i, n] is never empty), so every
        // active lane participates in the round below.
        while (active < width && frontier <= i_end) {
          if (screen != nullptr &&
              !screen->MayEmit(frontier, &sketch_blocks)) {
            ++pruned;
            ++frontier;
            continue;  // pruned anchor: no walk, no slot write (stays 0)
          }
          internal::AbOptWalkState& walk =
              walks[static_cast<size_t>(active)];
          walk.Begin(frontier, ctx);
          kernel.BeginAnchor(frontier);
          lanes.i[static_cast<size_t>(active)] = frontier;
          lanes.sp_prev[static_cast<size_t>(active)] = kernel.sp_prev();
          lanes.h_sp[static_cast<size_t>(active)] = kernel.h_sp();
          walk.StoreRegs(&lanes, active);
          ++walks_started;
          ++frontier;
          ++active;
        }
        if (active == 0) break;

        for (int b = 0; b * kBankLanes < active; ++b) {
          const int bank_n = std::min(kBankLanes, active - b * kBankLanes);
          done_mask[b] = kernel.SparseWalkRound(bank_args[b], bank_n);
        }
        ++rounds;
        lanes_occupied += static_cast<uint64_t>(active);

        // Pull back only the lanes whose search completed, highest lane
        // first: a retiring walk's slot is refilled from the last active
        // lane, and descending order guarantees that lane has no pending
        // completion bit of its own (it would have been processed first),
        // so no bit ever needs to move.
        for (int b = (active - 1) / kBankLanes; b >= 0; --b) {
          while (done_mask[b] != 0) {
            const int bit = 63 - std::countl_zero(done_mask[b]);
            done_mask[b] &= ~(uint64_t{1} << bit);
            const int k = b * kBankLanes + bit;
            internal::AbOptWalkState& walk = walks[static_cast<size_t>(k)];
            if (!walk.CompleteSearch(&lanes, k, ctx)) continue;
            kernel.BeginAnchor(walk.anchor());
            const auto [best_j, best_conf] = EvaluateBreakpoints(
                kernel, walk.breakpoints(), options, &buf, &tested,
                &batches);
            const size_t slot = static_cast<size_t>(walk.anchor() - i_begin);
            slot_j[slot] = best_j;
            slot_conf[slot] = best_conf;
            --active;
            if (k != active) {
              std::swap(walks[static_cast<size_t>(k)],
                        walks[static_cast<size_t>(active)]);
              lanes.MoveLane(k, active);
            }
          }
        }
      }
      for (int64_t i = i_begin; i <= i_end; ++i) {
        const size_t slot = static_cast<size_t>(i - i_begin);
        if (slot_j[slot] >= i) {
          out.push_back(Candidate{Interval{i, slot_j[slot]}, slot_conf[slot]});
        }
      }
      // One counted probe per occupied lane per round, and one kernel
      // batch per round (folded out of the hot loop).
      probes += lanes_occupied;
      batches += rounds;
      chunk_stats->walks = walks_started;
      chunk_stats->walk_rounds = rounds;
      chunk_stats->walk_lanes = lanes_occupied;
      chunk_stats->walk_lane_slots = rounds * static_cast<uint64_t>(width);
    } else {
      std::vector<int64_t> breakpoints;
      for (int64_t i = i_begin; i <= i_end; ++i) {
        if (screen != nullptr && !screen->MayEmit(i, &sketch_blocks)) {
          ++pruned;
          continue;
        }
        kernel.BeginAnchor(i);
        breakpoints.clear();

        if (credit_fail) {
          const int64_t zero_area_end =
              LargestEndpointWithin(kernel, i, n, 0.0, &probes);
          for (const int64_t len : zero_prefix_lengths) {
            const int64_t j = i + len - 1;
            if (j >= zero_area_end) break;  // zero_area_end is a breakpoint
            breakpoints.push_back(j);
          }
          if (zero_area_end >= i) breakpoints.push_back(zero_area_end);
        }

        // Initial area breakpoint: the largest j whose area is within the
        // base unit Delta; if even [i, i] exceeds it, start at i (forced).
        // For fail tableaux this also covers the zero-area (confidence 0)
        // special case, since the zero-area prefix lies below Delta.
        int64_t cur = LargestEndpointWithin(kernel, i, n, delta, &probes);
        if (cur < i) cur = i;
        if (breakpoints.empty() || breakpoints.back() < cur) {
          breakpoints.push_back(cur);
        }

        while (cur < n) {
          const double cur_area = kernel.SparseArea(cur);
          const double target = std::max(cur_area, delta) * growth;
          int64_t next =
              LargestEndpointWithin(kernel, cur + 1, n, target, &probes);
          if (next < cur + 1) next = cur + 1;  // forced advance
          breakpoints.push_back(next);
          cur = next;
        }

        const auto [best_j, best_conf] = EvaluateBreakpoints(
            kernel, breakpoints, options, &buf, &tested, &batches);
        if (best_j >= i) {
          out.push_back(Candidate{Interval{i, best_j}, best_conf});
          if (options.stop_on_full_cover && i == 1 && best_j == n) break;
        }
      }
    }

    chunk_stats->intervals_tested = tested;
    chunk_stats->endpoint_steps = probes;
    chunk_stats->batches = batches;
    chunk_stats->anchors_pruned = pruned;
    chunk_stats->sketch_blocks = sketch_blocks;
    return out;
  };

  auto result = internal::RunSharded(n, options, stats, block);
  if (stats != nullptr) stats->sketch_blocks += scoped.construction_blocks();
  return result;
}

}  // namespace conservation::interval
