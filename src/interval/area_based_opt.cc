#include "interval/area_based_opt.h"

#include <algorithm>

#include "interval/kernel.h"
#include "interval/shard.h"

namespace conservation::interval {

namespace {

// Largest j in [lo, hi] with area(i, j) <= threshold, or lo - 1 if even
// area(i, lo) exceeds it. Binary search over the nondecreasing area; the
// kernel must be anchored at i (BeginAnchor).
int64_t LargestEndpointWithin(const internal::ConfidenceKernel& kernel,
                              int64_t lo, int64_t hi, double threshold,
                              uint64_t* probes) {
  int64_t result = lo - 1;
  while (lo <= hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    ++*probes;
    if (kernel.SparseArea(mid) <= threshold) {
      result = mid;
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return result;
}

}  // namespace

std::vector<Candidate> AreaBasedOptGenerator::GenerateCandidates(
    const core::ConfidenceEvaluator& eval, const GeneratorOptions& options,
    GeneratorStats* stats) const {
  CR_CHECK(options.epsilon > 0.0);
  const int64_t n = eval.n();
  const core::TableauType type = options.type;
  const double delta = ResolveDelta(eval.series(), options);
  const double growth = 1.0 + options.epsilon;

  // See AreaBasedGenerator: credit-model fail tableaux additionally probe
  // length-geometric endpoints inside the zero-area prefix, where the
  // credit confidence is nonzero and non-monotone.
  const bool credit_fail = type == core::TableauType::kFail &&
                           eval.model() == core::ConfidenceModel::kCredit;
  std::vector<int64_t> zero_prefix_lengths;
  if (credit_fail) {
    double power = 1.0;
    while (static_cast<int64_t>(power) < n) {
      zero_prefix_lengths.push_back(static_cast<int64_t>(power));
      power *= growth;
    }
    zero_prefix_lengths.push_back(n);
  }

  // AB-opt carries no cross-anchor state (each anchor's breakpoints come
  // from fresh binary searches), so anchor chunks parallelize directly.
  // Inner sweeps run on the flat-array kernel (interval/kernel.h).
  auto block = [&, n, delta, growth](int64_t i_begin, int64_t i_end,
                                     GeneratorStats* chunk_stats) {
    internal::ConfidenceKernel kernel(eval, type);
    std::vector<Candidate> out;
    out.reserve(static_cast<size_t>(i_end - i_begin + 1));
    uint64_t tested = 0;
    uint64_t probes = 0;
    uint64_t batches = 0;
    std::vector<int64_t> breakpoints;
    std::vector<double> conf_buf;
    std::vector<uint8_t> valid_buf;

    for (int64_t i = i_begin; i <= i_end; ++i) {
      kernel.BeginAnchor(i);
      breakpoints.clear();

      if (credit_fail) {
        const int64_t zero_area_end =
            LargestEndpointWithin(kernel, i, n, 0.0, &probes);
        for (const int64_t len : zero_prefix_lengths) {
          const int64_t j = i + len - 1;
          if (j >= zero_area_end) break;  // zero_area_end is a breakpoint
          breakpoints.push_back(j);
        }
        if (zero_area_end >= i) breakpoints.push_back(zero_area_end);
      }

      // Initial area breakpoint: the largest j whose area is within the base
      // unit Delta; if even [i, i] exceeds it, start at i (forced). For fail
      // tableaux this also covers the zero-area (confidence 0) special case,
      // since the zero-area prefix lies below Delta.
      int64_t cur = LargestEndpointWithin(kernel, i, n, delta, &probes);
      if (cur < i) cur = i;
      if (breakpoints.empty() || breakpoints.back() < cur) {
        breakpoints.push_back(cur);
      }

      while (cur < n) {
        const double cur_area = kernel.SparseArea(cur);
        const double target = std::max(cur_area, delta) * growth;
        int64_t next =
            LargestEndpointWithin(kernel, cur + 1, n, target, &probes);
        if (next < cur + 1) next = cur + 1;  // forced advance
        breakpoints.push_back(next);
        cur = next;
      }

      int64_t best_j = 0;
      double best_conf = 0.0;
      const int64_t count = static_cast<int64_t>(breakpoints.size());
      conf_buf.resize(breakpoints.size());
      valid_buf.resize(breakpoints.size());
      if (options.largest_first_early_exit) {
        // Longest-first: the first qualifying breakpoint subsumes the rest.
        // Probe in reverse blocks; lanes past the first qualifying one are
        // speculative and uncounted, so `tested` matches the scalar scan
        // (probes up to and including the winner).
        constexpr int64_t kProbeBlock = 16;
        bool found = false;
        for (int64_t end = count; end > 0 && !found;) {
          const int64_t begin = std::max<int64_t>(0, end - kProbeBlock);
          kernel.ConfidenceIndexBatch(breakpoints.data() + begin,
                                      end - begin, conf_buf.data(),
                                      valid_buf.data());
          ++batches;
          for (int64_t k = end; k-- > begin;) {
            ++tested;
            if (valid_buf[k - begin] &&
                PassesRelaxedThreshold(conf_buf[k - begin], options)) {
              best_j = breakpoints[static_cast<size_t>(k)];
              best_conf = conf_buf[k - begin];
              found = true;
              break;
            }
          }
          end = begin;
        }
      } else {
        kernel.ConfidenceIndexBatch(breakpoints.data(), count,
                                    conf_buf.data(), valid_buf.data());
        ++batches;
        tested += static_cast<uint64_t>(count);
        for (int64_t k = 0; k < count; ++k) {
          const int64_t j = breakpoints[static_cast<size_t>(k)];
          if (valid_buf[k] && PassesRelaxedThreshold(conf_buf[k], options) &&
              j > best_j) {
            best_j = j;
            best_conf = conf_buf[k];
          }
        }
      }
      if (best_j >= i) {
        out.push_back(Candidate{Interval{i, best_j}, best_conf});
        if (options.stop_on_full_cover && i == 1 && best_j == n) break;
      }
    }

    chunk_stats->intervals_tested = tested;
    chunk_stats->endpoint_steps = probes;
    chunk_stats->batches = batches;
    return out;
  };

  return internal::RunSharded(n, options, stats, block);
}

}  // namespace conservation::interval
