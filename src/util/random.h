// Deterministic random number generation for the synthetic data generators.
//
// Wraps std::mt19937_64 behind a small interface so every generator in
// src/datagen is reproducible from a single uint64 seed and the distribution
// zoo used across generators lives in one place.

#ifndef CONSERVATION_UTIL_RANDOM_H_
#define CONSERVATION_UTIL_RANDOM_H_

#include <cstdint>
#include <random>

namespace conservation::util {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  // Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  // Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  // Poisson count with the given mean (mean <= 0 yields 0).
  int64_t Poisson(double mean) {
    if (mean <= 0.0) return 0;
    std::poisson_distribution<int64_t> dist(mean);
    return dist(engine_);
  }

  // Log-normal: exp(Normal(log_mean, log_stddev)).
  double LogNormal(double log_mean, double log_stddev) {
    std::lognormal_distribution<double> dist(log_mean, log_stddev);
    return dist(engine_);
  }

  // Geometric number of failures before first success; p in (0, 1].
  int64_t Geometric(double p) {
    std::geometric_distribution<int64_t> dist(p);
    return dist(engine_);
  }

  // True with probability p.
  bool Bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace conservation::util

#endif  // CONSERVATION_UTIL_RANDOM_H_
