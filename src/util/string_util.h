// Small string helpers used by the I/O and reporting layers.

#ifndef CONSERVATION_UTIL_STRING_UTIL_H_
#define CONSERVATION_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace conservation::util {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Splits on a single character; keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view text, char sep);

// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

// Parses a double; returns false on malformed or trailing garbage.
bool ParseDouble(std::string_view text, double* out);

// Formats a double compactly: integers without a decimal point, otherwise up
// to `max_decimals` digits with trailing zeros trimmed.
std::string FormatNumber(double value, int max_decimals = 4);

}  // namespace conservation::util

#endif  // CONSERVATION_UTIL_STRING_UTIL_H_
