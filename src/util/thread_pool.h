// Persistent worker pool behind all parallel execution in the library.
//
// The original ParallelFor spawned (and joined) fresh std::threads on every
// call, which is fine for one-shot fleet audits but wasteful on the tableau
// hot path, where a server handling many discovery requests would pay thread
// creation per request. ThreadPool keeps the workers alive across calls;
// ParallelFor (util/parallel.h) and the sharded candidate generators all
// dispatch onto the shared instance.
//
// Deadlock note: parallel sections may nest (e.g. RankNodesByFailure fans
// out per node, and each node's tableau discovery may shard its anchor
// loop). A waiter that merely blocked could then starve the queue when all
// workers are themselves waiting. Waiters therefore HELP: while a parallel
// section is unfinished, the waiting thread drains tasks from the queue
// (RunOneTask), so every blocked section makes global progress.

#ifndef CONSERVATION_UTIL_THREAD_POOL_H_
#define CONSERVATION_UTIL_THREAD_POOL_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace conservation::util {

class ThreadPool {
 public:
  // 0 = hardware concurrency (at least 1 worker either way).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  // Enqueues a task. Tasks must not throw.
  void Submit(std::function<void()> task);

  // Runs one queued task on the calling thread if any is available.
  // Returns false when the queue was empty.
  bool RunOneTask();

  // Process-wide pool sized to the hardware, created on first use and
  // intentionally leaked (avoids static-destruction-order races with
  // late-running tasks).
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

// Invokes fn(i) for every i in [0, count) using the pool, with at most
// `max_concurrency` indices in flight (<= 0 means pool size + 1). The
// calling thread participates; blocks until every call returned. fn must be
// safe to call concurrently for distinct indices.
template <typename Fn>
void PoolParallelFor(ThreadPool& pool, int64_t count, int max_concurrency,
                     Fn&& fn) {
  if (count <= 0) return;
  int lanes = max_concurrency > 0 ? max_concurrency : pool.size() + 1;
  lanes = static_cast<int>(
      std::min<int64_t>(static_cast<int64_t>(std::max(1, lanes)), count));
  if (lanes == 1) {
    for (int64_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // Static block partition: lane t owns [t * block, min(count, (t+1) *
  // block)). Each lane is one task, so at most `lanes` run concurrently no
  // matter how large the pool is.
  const int64_t block = (count + lanes - 1) / lanes;
  struct Completion {
    std::mutex mu;
    std::condition_variable cv;
    int pending = 0;
  } done;

  auto run_lane = [&fn, block, count](int lane) {
    const int64_t begin = static_cast<int64_t>(lane) * block;
    const int64_t end = std::min(count, begin + block);
    for (int64_t i = begin; i < end; ++i) fn(i);
  };

  int submitted = 0;
  for (int lane = 1; lane < lanes; ++lane) {
    if (static_cast<int64_t>(lane) * block >= count) break;
    ++submitted;
  }
  done.pending = submitted;
  for (int lane = 1; lane <= submitted; ++lane) {
    pool.Submit([&run_lane, &done, lane] {
      run_lane(lane);
      std::lock_guard<std::mutex> lock(done.mu);
      if (--done.pending == 0) done.cv.notify_all();
    });
  }
  run_lane(0);

  // Help-while-wait: drain other tasks (possibly nested sections) until our
  // lanes all finished. The short timed wait covers the window between "no
  // task available" and "our last lane completes on a worker".
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(done.mu);
      if (done.pending == 0) return;
    }
    if (!pool.RunOneTask()) {
      std::unique_lock<std::mutex> lock(done.mu);
      done.cv.wait_for(lock, std::chrono::microseconds(200),
                       [&done] { return done.pending == 0; });
      if (done.pending == 0) return;
    }
  }
}

}  // namespace conservation::util

#endif  // CONSERVATION_UTIL_THREAD_POOL_H_
