// Lightweight contract-checking macros.
//
// The library does not use exceptions (see DESIGN.md §5). Programming errors
// (violated preconditions, broken invariants) abort with a diagnostic via
// CR_CHECK; recoverable errors (bad input files, unsatisfiable requests)
// travel through util::Status / util::Result instead.

#ifndef CONSERVATION_UTIL_CHECK_H_
#define CONSERVATION_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace conservation::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CR_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace conservation::internal

// Aborts the process when `expr` is false. Always on, including in release
// builds: the cost is negligible next to the scans this library performs, and
// silent invariant violations in a data-quality tool are worse than a crash.
#define CR_CHECK(expr)                                                \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::conservation::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                                 \
  } while (0)

// Marks unreachable code paths.
#define CR_UNREACHABLE() \
  ::conservation::internal::CheckFailed(__FILE__, __LINE__, "unreachable")

#endif  // CONSERVATION_UTIL_CHECK_H_
