// Monotonic stopwatch for the benchmark harness, generator statistics, and
// span timing. Uses std::chrono::steady_clock exclusively: bench records
// and trace timestamps must never skew under NTP adjustment or DST, which
// a system_clock-based timer would (tests/util_test.cc asserts
// monotonicity; the static_assert makes picking a non-steady clock a
// compile error rather than a flaky-bench incident).

#ifndef CONSERVATION_UTIL_STOPWATCH_H_
#define CONSERVATION_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace conservation::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Restart(). Non-negative
  // and non-decreasing across successive calls.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  // Integer nanoseconds for callers that must avoid double rounding
  // (trace timestamps).
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  static_assert(Clock::is_steady,
                "timing must come from a monotonic clock; wall-clock-based "
                "timings skew bench records under NTP adjustment");
  Clock::time_point start_;
};

}  // namespace conservation::util

#endif  // CONSERVATION_UTIL_STOPWATCH_H_
