// Wall-clock stopwatch for the benchmark harness and generator statistics.

#ifndef CONSERVATION_UTIL_STOPWATCH_H_
#define CONSERVATION_UTIL_STOPWATCH_H_

#include <chrono>

namespace conservation::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace conservation::util

#endif  // CONSERVATION_UTIL_STOPWATCH_H_
