// Minimal command-line flag parsing for the tools and bench binaries.
//
// Supports "--name=value" and "--name value" forms, plus bare boolean
// "--name". Unknown arguments are collected as positionals. No global
// registry — a FlagParser is built per main().

#ifndef CONSERVATION_UTIL_FLAGS_H_
#define CONSERVATION_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace conservation::util {

class FlagParser {
 public:
  // Parses argv; returns an error for malformed input ("--=x").
  Status Parse(int argc, const char* const* argv);

  bool Has(const std::string& name) const {
    return values_.count(name) > 0;
  }

  // Typed getters with defaults; Get*Or returns the fallback when the flag
  // is absent, and an error only when present but unparseable.
  std::string GetStringOr(const std::string& name,
                          const std::string& fallback) const;
  Result<int64_t> GetIntOr(const std::string& name, int64_t fallback) const;
  Result<double> GetDoubleOr(const std::string& name, double fallback) const;
  // Bare "--name" and "--name=true/1/yes" are true; "=false/0/no" false.
  Result<bool> GetBoolOr(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positionals() const { return positionals_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
};

}  // namespace conservation::util

#endif  // CONSERVATION_UTIL_FLAGS_H_
