#include "util/flags.h"

#include <cerrno>
#include <cstdlib>

#include "util/string_util.h"

namespace conservation::util {

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    if (arg.rfind("--", 0) != 0) {
      positionals_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      const std::string name = body.substr(0, eq);
      if (name.empty()) {
        return Status::InvalidArgument("malformed flag: " + arg);
      }
      values_[name] = body.substr(eq + 1);
      continue;
    }
    if (body.empty()) {
      return Status::InvalidArgument("malformed flag: " + arg);
    }
    // "--name value" when the next token is not a flag; bare boolean
    // otherwise.
    if (k + 1 < argc && std::string(argv[k + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[k + 1];
      ++k;
    } else {
      values_[body] = "";
    }
  }
  return Status::Ok();
}

std::string FlagParser::GetStringOr(const std::string& name,
                                    const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

Result<int64_t> FlagParser::GetIntOr(const std::string& name,
                                     int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(it->second.c_str(), &end, 10);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument(
        StrFormat("flag --%s: not an integer: '%s'", name.c_str(),
                  it->second.c_str()));
  }
  return static_cast<int64_t>(value);
}

Result<double> FlagParser::GetDoubleOr(const std::string& name,
                                       double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  double value = 0.0;
  if (!ParseDouble(it->second, &value)) {
    return Status::InvalidArgument(
        StrFormat("flag --%s: not a number: '%s'", name.c_str(),
                  it->second.c_str()));
  }
  return value;
}

Result<bool> FlagParser::GetBoolOr(const std::string& name,
                                   bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& value = it->second;
  if (value.empty() || value == "true" || value == "1" || value == "yes") {
    return true;
  }
  if (value == "false" || value == "0" || value == "no") {
    return false;
  }
  return Status::InvalidArgument(
      StrFormat("flag --%s: not a boolean: '%s'", name.c_str(),
                value.c_str()));
}

}  // namespace conservation::util
