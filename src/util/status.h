// Error propagation without exceptions: Status and Result<T>.
//
// Modeled on the absl::Status / StatusOr idiom. Used at the library boundary
// (file I/O, request validation); internal invariants use CR_CHECK instead.

#ifndef CONSERVATION_UTIL_STATUS_H_
#define CONSERVATION_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace conservation::util {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
};

// Returns a stable human-readable name ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

// A success-or-error value. Cheap to copy on the success path (no message
// allocated), explicit about failure on the error path.
class Status {
 public:
  // Success.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    CR_CHECK(code != StatusCode::kOk);
  }

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// A value or an error. `value()` CR_CHECKs on access when not ok.
template <typename T>
class Result {
 public:
  // Implicit construction from values and errors keeps call sites natural:
  //   Result<int> F() { return 42; }
  //   Result<int> G() { return Status::InvalidArgument("nope"); }
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    CR_CHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CR_CHECK(ok());
    return *value_;
  }
  T& value() & {
    CR_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    CR_CHECK(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // ok() unless an error was stored.
  std::optional<T> value_;
};

}  // namespace conservation::util

#endif  // CONSERVATION_UTIL_STATUS_H_
