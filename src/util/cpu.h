// Runtime CPU feature detection for the SIMD kernel dispatch
// (interval/kernel_simd.h).
//
// Detection runs once per process (CpuInfo caches it) and answers only the
// questions the kernels ask: "may I execute AVX2 instructions?" on x86-64
// and "may I execute Advanced SIMD instructions?" on AArch64. Everything
// else about backend choice — what was compiled in, what the
// CONSERVATION_SIMD build option allows — is layered on top by the
// interval layer; this header is pure hardware capability.

#ifndef CONSERVATION_UTIL_CPU_H_
#define CONSERVATION_UTIL_CPU_H_

namespace conservation::util {

struct CpuFeatures {
  // x86-64: AVX2 (256-bit integer + double lanes, vector gathers).
  bool avx2 = false;
  // AArch64: Advanced SIMD (NEON). Architecturally mandatory for AArch64,
  // so this is true on every 64-bit ARM build.
  bool neon = false;
};

inline CpuFeatures DetectCpuFeatures() {
  CpuFeatures features;
#if defined(__x86_64__) || defined(__i386__)
#if defined(__GNUC__) || defined(__clang__)
  __builtin_cpu_init();
  features.avx2 = __builtin_cpu_supports("avx2") != 0;
#endif
#elif defined(__aarch64__)
  features.neon = true;
#endif
  return features;
}

// Cached process-wide view; the detection itself is cheap but callers treat
// this as a constant, so compute it exactly once.
inline const CpuFeatures& CpuInfo() {
  static const CpuFeatures features = DetectCpuFeatures();
  return features;
}

}  // namespace conservation::util

#endif  // CONSERVATION_UTIL_CPU_H_
