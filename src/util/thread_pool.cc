#include "util/thread_pool.h"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/labels.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/watchdog.h"

namespace conservation::util {

namespace {

// Registry lookups are mutex-protected; hoist the handle once.
obs::Counter& TasksExecutedCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().Counter("pool.tasks_executed");
  return counter;
}

// Attribution children of pool.tasks_executed: which execution path ran
// the task. "worker" = a pool worker thread; "helper" = a waiting caller
// help-draining the queue (thread_pool.h). The unlabeled counter above
// stays the all-up total per the labels.h convention.
obs::Counter& WorkerTasksCounter() {
  static obs::Counter& counter =
      obs::LabeledCounter("pool.tasks").With({{"queue", "worker"}});
  return counter;
}

obs::Counter& HelperTasksCounter() {
  static obs::Counter& counter =
      obs::LabeledCounter("pool.tasks").With({{"queue", "helper"}});
  return counter;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  int threads = num_threads > 0
                    ? num_threads
                    : static_cast<int>(std::thread::hardware_concurrency());
  threads = std::max(1, threads);
  workers_.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers_.emplace_back([this, t] {
      obs::SetCurrentThreadName("pool-worker-" + std::to_string(t));
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::RunOneTask() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  {
    // Help-drained task: runs on a waiting thread, not a pool worker.
    CR_TRACE_SPAN("pool.task");
    obs::ScopedDeadline deadline("pool.task");
    task();
  }
  TasksExecutedCounter().Increment();
  HelperTasksCounter().Increment();
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    {
      CR_TRACE_SPAN("pool.task");
      obs::ScopedDeadline deadline("pool.task");
      task();
    }
    TasksExecutedCounter().Increment();
    WorkerTasksCounter().Increment();
  }
}

ThreadPool& ThreadPool::Shared() {
  // Leaked by design; see header.
  static ThreadPool* shared = new ThreadPool(0);
  return *shared;
}

}  // namespace conservation::util
