#include "util/string_util.h"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <cmath>

namespace conservation::util {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    // +1 for the terminating NUL vsnprintf writes.
    std::vsnprintf(out.data(), static_cast<size_t>(needed) + 1, fmt,
                   args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool ParseDouble(std::string_view text, double* out) {
  text = StripWhitespace(text);
  if (text.empty() || text.size() > 63) return false;
  char buf[64];
  std::memcpy(buf, text.data(), text.size());
  buf[text.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(buf, &end);
  if (errno != 0 || end != buf + text.size()) return false;
  *out = value;
  return true;
}

std::string FormatNumber(double value, int max_decimals) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 1e15) {
    return StrFormat("%.0f", value);
  }
  std::string out = StrFormat("%.*f", max_decimals, value);
  // Trim trailing zeros but keep at least one digit after the point.
  const size_t dot = out.find('.');
  if (dot != std::string::npos) {
    size_t last = out.size() - 1;
    while (last > dot + 1 && out[last] == '0') --last;
    out.resize(last + 1);
  }
  return out;
}

}  // namespace conservation::util
