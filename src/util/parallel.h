// Parallel-for over the shared persistent ThreadPool (util/thread_pool.h).
//
// Historically this spawned fresh std::threads per call; it now dispatches
// onto ThreadPool::Shared() so repeated parallel sections (per-request
// tableau sharding, fleet audits) reuse warm workers. Semantics are
// unchanged: static block partitioning, each index processed exactly once,
// determinism left to the caller. Nested calls are safe — waiters help
// drain the pool queue instead of blocking it.

#ifndef CONSERVATION_UTIL_PARALLEL_H_
#define CONSERVATION_UTIL_PARALLEL_H_

#include <algorithm>
#include <cstdint>
#include <thread>
#include <utility>

#include "util/thread_pool.h"

namespace conservation::util {

// Invokes fn(i) for every i in [0, count), with at most `num_threads`
// indices in flight (0 = hardware concurrency). fn must be safe to call
// concurrently for distinct indices. Blocks until all calls return;
// num_threads == 1 runs sequentially on the calling thread.
template <typename Fn>
void ParallelFor(int64_t count, int num_threads, Fn&& fn) {
  if (count <= 0) return;
  int threads = num_threads > 0
                    ? num_threads
                    : static_cast<int>(std::thread::hardware_concurrency());
  if (count < threads) threads = static_cast<int>(count);
  threads = std::max(1, threads);
  if (threads == 1) {
    for (int64_t i = 0; i < count; ++i) fn(i);
    return;
  }
  PoolParallelFor(ThreadPool::Shared(), count, threads,
                  std::forward<Fn>(fn));
}

}  // namespace conservation::util

#endif  // CONSERVATION_UTIL_PARALLEL_H_
