// Small parallel-for helper for embarrassingly-parallel analysis loops
// (per-router/per-node audits over a fleet). Deliberately minimal: static
// block partitioning over std::thread, no work stealing — fleet items cost
// roughly the same, and determinism matters more than peak throughput here
// (each index is processed exactly once; the caller owns any ordering).

#ifndef CONSERVATION_UTIL_PARALLEL_H_
#define CONSERVATION_UTIL_PARALLEL_H_

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

namespace conservation::util {

// Invokes fn(i) for every i in [0, count), spread over up to `num_threads`
// threads (0 = hardware concurrency). fn must be safe to call concurrently
// for distinct indices. Blocks until all calls return.
template <typename Fn>
void ParallelFor(int64_t count, int num_threads, Fn&& fn) {
  if (count <= 0) return;
  int threads = num_threads > 0
                    ? num_threads
                    : static_cast<int>(std::thread::hardware_concurrency());
  threads = std::max(1, std::min<int>(threads, static_cast<int>(count)));
  if (threads == 1) {
    for (int64_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  const int64_t block = (count + threads - 1) / threads;
  for (int t = 0; t < threads; ++t) {
    const int64_t begin = static_cast<int64_t>(t) * block;
    const int64_t end = std::min(count, begin + block);
    if (begin >= end) break;
    pool.emplace_back([begin, end, &fn] {
      for (int64_t i = begin; i < end; ++i) fn(i);
    });
  }
  for (std::thread& worker : pool) worker.join();
}

}  // namespace conservation::util

#endif  // CONSERVATION_UTIL_PARALLEL_H_
