// Greedy PARTIAL SET COVER for intervals — phase 2 of tableau discovery.
//
// Given candidate intervals over the tick universe {1..n} and a support
// requirement s_hat, choose a subcollection whose union covers at least
// ceil(s_hat * n) ticks, greedily picking at each step the interval covering
// the most not-yet-covered ticks (the algorithm of Golab et al., PVLDB'09
// [12], which the paper reuses unchanged). Greedy partial set cover yields a
// tableau at most a small constant factor larger than optimal.
//
// Implementation: LAZY greedy (CELF-style). Marginal coverage is monotone
// non-increasing as the covered set grows, so a max-heap of cached gains
// stays sound even when entries go stale: the popped top is re-evaluated,
// and only if its cached gain is still current is it the true argmax —
// otherwise it is pushed back with the refreshed (smaller) gain. This
// removes the per-round O(n + k) rescan of the original implementation:
//   - marginal gains are O(log n) point queries against a Fenwick tree over
//     the covered indicator,
//   - marking a chosen interval walks a "next-uncovered" skip-pointer array
//     (union-find with path halving), so the total marking cost across all
//     picks is O(n alpha(n)) instead of O(total chosen length),
//   - the initial k gains are seeded in parallel on the shared ThreadPool
//     (CoverOptions::num_threads; the heap itself is built sequentially).
// The chosen set is bit-identical to the naive rescan for both tie-break
// modes (tests/reference_cover.h keeps the naive code as the differential
// oracle). Complexity: O(k + n alpha(n) + (rounds + stale) log k) pops plus
// O((k + newly covered) log n) Fenwick traffic, vs O(rounds * (n + k)).

#ifndef CONSERVATION_COVER_PARTIAL_SET_COVER_H_
#define CONSERVATION_COVER_PARTIAL_SET_COVER_H_

#include <cstdint>
#include <vector>

#include "interval/interval.h"

namespace conservation::cover {

// Observability for one cover run. Pure diagnostics: none of these feed
// back into the algorithm. Counter fields are deterministic for a given
// input; the timing fields vary run to run.
struct CoverStats {
  // Greedy rounds = number of chosen intervals.
  int64_t rounds = 0;
  // Heap pops during selection (>= rounds; the excess is retired
  // zero-gain entries plus stale re-evaluations).
  int64_t heap_pops = 0;
  // Pops whose cached gain had decayed and were re-pushed with the
  // refreshed gain (the CELF "lazy" work).
  int64_t stale_reevaluations = 0;
  // Skip-pointer advances while marking chosen intervals. Bounded by
  // O((n + rounds) alpha(n)) — NOT by the total chosen length; asserted in
  // tests/cover_lazy_differential_test.cc on nested adversarial inputs.
  int64_t tick_visits = 0;
  // Heap size high-water mark (== k after seeding; re-pushes never grow it).
  int64_t peak_heap_size = 0;
  // Wall time of the parallel gain seeding (heap build included).
  double seed_seconds = 0.0;
  // Wall time of the pop/re-evaluate/mark selection loop.
  double select_seconds = 0.0;
};

struct CoverResult {
  // Chosen intervals, sorted by position (the canonical tableau order).
  std::vector<interval::Interval> chosen;
  // For each chosen[r], the index into the input `candidates` it came from
  // (lets callers join chosen intervals back to per-candidate metadata,
  // e.g. the confidences carried out of generation).
  std::vector<size_t> chosen_indices;
  // Ticks covered by the chosen union.
  int64_t covered = 0;
  // Ticks required: ceil(s_hat * n).
  int64_t required = 0;
  // False when even the union of all candidates cannot reach `required`;
  // `chosen` then covers as much as the candidates allow.
  bool satisfied = false;
  CoverStats stats;
};

struct CoverOptions {
  // Fraction of {1..n} that must be covered, in [0, 1].
  double s_hat = 1.0;
  // When true (default), ties on marginal coverage are broken toward the
  // earliest-starting interval, making results deterministic and stable.
  bool deterministic_tie_break = true;
  // Threads for seeding the initial gains (1 = sequential, 0 = hardware
  // concurrency). The chosen set is identical for every setting.
  int num_threads = 1;
};

// Runs greedy partial set cover over `candidates` on the universe {1..n}.
// Candidates must satisfy 1 <= begin <= end <= n.
CoverResult GreedyPartialSetCover(const std::vector<interval::Interval>& candidates,
                                  int64_t n, const CoverOptions& options);

}  // namespace conservation::cover

#endif  // CONSERVATION_COVER_PARTIAL_SET_COVER_H_
