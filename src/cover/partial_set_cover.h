// Greedy PARTIAL SET COVER for intervals — phase 2 of tableau discovery.
//
// Given candidate intervals over the tick universe {1..n} and a support
// requirement s_hat, choose a subcollection whose union covers at least
// ceil(s_hat * n) ticks, greedily picking at each step the interval covering
// the most not-yet-covered ticks (the algorithm of Golab et al., PVLDB'09
// [12], which the paper reuses unchanged). Greedy partial set cover yields a
// tableau at most a small constant factor larger than optimal.
//
// For intervals on a line, the marginal coverage of [b, e] against a set of
// covered ticks is computable in O(1) with a prefix-sum table over the
// covered indicator, which this implementation rebuilds once per greedy
// round: O(rounds * (n + k)) total for k candidates.

#ifndef CONSERVATION_COVER_PARTIAL_SET_COVER_H_
#define CONSERVATION_COVER_PARTIAL_SET_COVER_H_

#include <cstdint>
#include <vector>

#include "interval/interval.h"

namespace conservation::cover {

struct CoverResult {
  // Chosen intervals, sorted by position (the canonical tableau order).
  std::vector<interval::Interval> chosen;
  // Ticks covered by the chosen union.
  int64_t covered = 0;
  // Ticks required: ceil(s_hat * n).
  int64_t required = 0;
  // False when even the union of all candidates cannot reach `required`;
  // `chosen` then covers as much as the candidates allow.
  bool satisfied = false;
};

struct CoverOptions {
  // Fraction of {1..n} that must be covered, in [0, 1].
  double s_hat = 1.0;
  // When true (default), ties on marginal coverage are broken toward the
  // earliest-starting interval, making results deterministic and stable.
  bool deterministic_tie_break = true;
};

// Runs greedy partial set cover over `candidates` on the universe {1..n}.
// Candidates must satisfy 1 <= begin <= end <= n.
CoverResult GreedyPartialSetCover(const std::vector<interval::Interval>& candidates,
                                  int64_t n, const CoverOptions& options);

}  // namespace conservation::cover

#endif  // CONSERVATION_COVER_PARTIAL_SET_COVER_H_
