#include "cover/partial_set_cover.h"

#include <algorithm>
#include <cmath>

#include "obs/labels.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace conservation::cover {

namespace {

// Registry mirror of CoverStats (which stays the API-stable per-run view);
// these counters accumulate across runs. Batch-published after selection.
struct CoverMetrics {
  obs::Counter& rounds;
  obs::Counter& heap_pops;
  obs::Counter& stale_reevaluations;
  obs::Counter& tick_visits;
  obs::Histogram& seed_seconds;
  obs::Histogram& select_seconds;
  // Labeled mirror of the two phase histograms under one family
  // ("cover.phase_seconds"), so the scrape side can select on
  // {phase="seed"|"select"} like the other phase families.
  obs::Histogram& seed_phase;
  obs::Histogram& select_phase;

  static CoverMetrics& Get() {
    static CoverMetrics* metrics = [] {
      obs::Registry& registry = obs::Registry::Global();
      const std::vector<double> bounds = {1e-5, 1e-4, 1e-3, 1e-2,
                                          0.1,  1.0,  10.0};
      obs::HistogramFamily& phases =
          obs::LabeledHistogram("cover.phase_seconds", bounds);
      return new CoverMetrics{registry.Counter("cover.rounds"),
                              registry.Counter("cover.heap_pops"),
                              registry.Counter("cover.stale_reevaluations"),
                              registry.Counter("cover.tick_visits"),
                              registry.Histogram("cover.seed_seconds", bounds),
                              registry.Histogram("cover.select_seconds",
                                                 bounds),
                              phases.With({{"phase", "seed"}}),
                              phases.With({{"phase", "select"}})};
    }();
    return *metrics;
  }
};

// Fenwick (binary indexed) tree over the covered-tick indicator, 1-based.
// Mark() is called exactly once per tick that becomes covered; Covered()
// answers "how many of [1..t] are covered" in O(log n), which turns a
// marginal-coverage query into two prefix lookups.
class CoveredFenwick {
 public:
  explicit CoveredFenwick(int64_t n)
      : n_(n), tree_(static_cast<size_t>(n) + 1, 0) {}

  void Mark(int64_t t) {
    for (; t <= n_; t += t & -t) ++tree_[static_cast<size_t>(t)];
  }

  int64_t Covered(int64_t t) const {
    int64_t sum = 0;
    for (; t > 0; t -= t & -t) sum += tree_[static_cast<size_t>(t)];
    return sum;
  }

 private:
  int64_t n_;
  std::vector<int64_t> tree_;
};

struct HeapEntry {
  // Cached marginal gain: an upper bound on the true gain (coverage only
  // grows, so gains only decay after caching).
  int64_t gain = 0;
  size_t index = 0;
};

// "Worse-than" order for std::push_heap/pop_heap: the popped top must be
// the interval the naive linear scan would have selected, i.e. the argmax
// under (gain desc, ByPosition asc when deterministic, input index asc).
// The index component reproduces the scan's first-hit-wins behaviour for
// duplicate intervals (deterministic mode) and for equal gains
// (non-deterministic mode).
struct WorseThan {
  const std::vector<interval::Interval>* candidates;
  bool deterministic;

  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.gain != b.gain) return a.gain < b.gain;
    if (deterministic) {
      const interval::Interval& ia = (*candidates)[a.index];
      const interval::Interval& ib = (*candidates)[b.index];
      if (ia != ib) return interval::ByPosition(ib, ia);
    }
    return a.index > b.index;
  }
};

}  // namespace

CoverResult GreedyPartialSetCover(
    const std::vector<interval::Interval>& candidates, int64_t n,
    const CoverOptions& options) {
  CR_CHECK(n >= 1);
  CR_CHECK(options.s_hat >= 0.0 && options.s_hat <= 1.0);
  for (const interval::Interval& iv : candidates) {
    CR_CHECK(iv.begin >= 1 && iv.begin <= iv.end && iv.end <= n);
  }

  CoverResult result;
  result.required = static_cast<int64_t>(
      std::ceil(options.s_hat * static_cast<double>(n)));
  if (result.required <= 0 || candidates.empty()) {
    result.satisfied = result.covered >= result.required;
    return result;
  }

  CoveredFenwick fenwick(n);
  // next_uncovered[t] = smallest possibly-uncovered tick >= t (union-find
  // with path halving; n + 1 is the self-looping "past the end" sentinel).
  // Marking a tick links it to its right neighbour, so each tick is visited
  // O(alpha(n)) amortized across ALL picks — the naive per-pick
  // begin..end walk re-scanned already-covered runs.
  std::vector<int64_t> next_uncovered(static_cast<size_t>(n) + 2);
  for (size_t t = 0; t < next_uncovered.size(); ++t) {
    next_uncovered[t] = static_cast<int64_t>(t);
  }

  CoverStats& stats = result.stats;
  auto find_uncovered = [&next_uncovered, &stats](int64_t t) {
    while (next_uncovered[static_cast<size_t>(t)] != t) {
      ++stats.tick_visits;
      next_uncovered[static_cast<size_t>(t)] =
          next_uncovered[static_cast<size_t>(
              next_uncovered[static_cast<size_t>(t)])];
      t = next_uncovered[static_cast<size_t>(t)];
    }
    return t;
  };
  auto marginal_gain = [&fenwick, &candidates](size_t k) {
    const interval::Interval& iv = candidates[k];
    return iv.length() - (fenwick.Covered(iv.end) - fenwick.Covered(iv.begin - 1));
  };

  // Seed the initial gains in parallel (read-only Fenwick queries into
  // disjoint slots), then heapify once. With nothing covered yet every gain
  // equals the interval length, but routing through marginal_gain keeps the
  // seeding correct for any future warm-start coverage.
  util::Stopwatch seed_timer;
  std::vector<HeapEntry> heap(candidates.size());
  const WorseThan worse{&candidates, options.deterministic_tie_break};
  {
    CR_TRACE_SPAN_ARGS("cover.seed", "k",
                       static_cast<int64_t>(candidates.size()));
    util::ParallelFor(
        static_cast<int64_t>(candidates.size()), options.num_threads,
        [&heap, &marginal_gain](int64_t k) {
          heap[static_cast<size_t>(k)] =
              HeapEntry{marginal_gain(static_cast<size_t>(k)),
                        static_cast<size_t>(k)};
        });
    std::make_heap(heap.begin(), heap.end(), worse);
  }
  stats.seed_seconds = seed_timer.ElapsedSeconds();
  stats.peak_heap_size = static_cast<int64_t>(heap.size());

  // Span ends at function exit; the post-loop result assembly it also
  // covers is O(rounds log rounds) — noise next to the selection loop.
  CR_TRACE_SPAN_ARGS("cover.select", "required", result.required);
  util::Stopwatch select_timer;
  std::vector<size_t> picked;
  while (result.covered < result.required && !heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), worse);
    const HeapEntry top = heap.back();
    heap.pop_back();
    ++stats.heap_pops;
    // High-volume: emitted only at --trace_verbosity=2.
    CR_TRACE_INSTANT_V2("cover.heap_pop");

    const int64_t gain = marginal_gain(top.index);
    CR_CHECK(gain <= top.gain);  // gains are monotone non-increasing
    if (gain <= 0) continue;     // fully covered by earlier picks; retire
    if (gain < top.gain) {
      // Stale cache: refresh and re-insert. Correct because every cached
      // gain is an upper bound — when the top's cache IS current, no entry
      // below it can beat it (anything with a higher true gain would have a
      // higher cached gain and sit above the top).
      ++stats.stale_reevaluations;
      heap.push_back(HeapEntry{gain, top.index});
      std::push_heap(heap.begin(), heap.end(), worse);
      continue;
    }

    ++stats.rounds;
    picked.push_back(top.index);
    const interval::Interval& pick = candidates[top.index];
    for (int64_t t = find_uncovered(pick.begin); t <= pick.end;
         t = find_uncovered(t + 1)) {
      fenwick.Mark(t);
      next_uncovered[static_cast<size_t>(t)] = t + 1;
      ++result.covered;
    }
  }
  stats.select_seconds = select_timer.ElapsedSeconds();

  // Mirror the per-run CoverStats into the process-wide registry (one
  // batched add per counter; the selection loop itself stays untouched).
  CoverMetrics& metrics = CoverMetrics::Get();
  metrics.rounds.Add(static_cast<uint64_t>(stats.rounds));
  metrics.heap_pops.Add(static_cast<uint64_t>(stats.heap_pops));
  metrics.stale_reevaluations.Add(
      static_cast<uint64_t>(stats.stale_reevaluations));
  metrics.tick_visits.Add(static_cast<uint64_t>(stats.tick_visits));
  metrics.seed_seconds.Record(stats.seed_seconds);
  metrics.select_seconds.Record(stats.select_seconds);
  metrics.seed_phase.Record(stats.seed_seconds);
  metrics.select_phase.Record(stats.select_seconds);

  result.satisfied = result.covered >= result.required;
  // Chosen intervals are pairwise distinct (a duplicate of a pick never has
  // positive gain again), so ByPosition totally orders them.
  std::sort(picked.begin(), picked.end(), [&candidates](size_t a, size_t b) {
    return interval::ByPosition(candidates[a], candidates[b]);
  });
  result.chosen.reserve(picked.size());
  result.chosen_indices.reserve(picked.size());
  for (const size_t index : picked) {
    result.chosen.push_back(candidates[index]);
    result.chosen_indices.push_back(index);
  }
  return result;
}

}  // namespace conservation::cover
