#include "cover/partial_set_cover.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace conservation::cover {

namespace {

// Prefix counts of covered ticks: covered_prefix[t] = #covered in [1..t].
int64_t MarginalCoverage(const std::vector<int64_t>& covered_prefix,
                         const interval::Interval& iv) {
  const int64_t already =
      covered_prefix[static_cast<size_t>(iv.end)] -
      covered_prefix[static_cast<size_t>(iv.begin - 1)];
  return iv.length() - already;
}

}  // namespace

CoverResult GreedyPartialSetCover(
    const std::vector<interval::Interval>& candidates, int64_t n,
    const CoverOptions& options) {
  CR_CHECK(n >= 1);
  CR_CHECK(options.s_hat >= 0.0 && options.s_hat <= 1.0);
  for (const interval::Interval& iv : candidates) {
    CR_CHECK(iv.begin >= 1 && iv.begin <= iv.end && iv.end <= n);
  }

  CoverResult result;
  result.required = static_cast<int64_t>(
      std::ceil(options.s_hat * static_cast<double>(n)));

  std::vector<bool> covered(static_cast<size_t>(n) + 1, false);
  std::vector<int64_t> covered_prefix(static_cast<size_t>(n) + 1, 0);
  std::vector<bool> used(candidates.size(), false);

  while (result.covered < result.required) {
    // Rebuild the covered prefix sums for O(1) marginal-coverage queries.
    for (int64_t t = 1; t <= n; ++t) {
      covered_prefix[static_cast<size_t>(t)] =
          covered_prefix[static_cast<size_t>(t - 1)] +
          (covered[static_cast<size_t>(t)] ? 1 : 0);
    }

    int64_t best_gain = 0;
    size_t best_index = candidates.size();
    for (size_t k = 0; k < candidates.size(); ++k) {
      if (used[k]) continue;
      const int64_t gain = MarginalCoverage(covered_prefix, candidates[k]);
      bool better = gain > best_gain;
      if (options.deterministic_tie_break && gain == best_gain && gain > 0 &&
          best_index < candidates.size()) {
        const interval::Interval& cur = candidates[k];
        const interval::Interval& best = candidates[best_index];
        better = interval::ByPosition(cur, best);
      }
      if (better) {
        best_gain = gain;
        best_index = k;
      }
    }

    if (best_index == candidates.size() || best_gain == 0) {
      break;  // no candidate adds coverage; requirement unreachable
    }

    used[best_index] = true;
    const interval::Interval& pick = candidates[best_index];
    result.chosen.push_back(pick);
    for (int64_t t = pick.begin; t <= pick.end; ++t) {
      if (!covered[static_cast<size_t>(t)]) {
        covered[static_cast<size_t>(t)] = true;
        ++result.covered;
      }
    }
  }

  result.satisfied = result.covered >= result.required;
  std::sort(result.chosen.begin(), result.chosen.end(), interval::ByPosition);
  return result;
}

}  // namespace conservation::cover
