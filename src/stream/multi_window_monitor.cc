#include "stream/multi_window_monitor.h"

#include <set>

#include "util/parallel.h"

namespace conservation::stream {

MultiWindowMonitor::MultiWindowMonitor(const StreamOptions& base_options,
                                       const std::vector<int64_t>& windows,
                                       int num_threads)
    : windows_(windows), num_threads_(num_threads) {
  CR_CHECK(!windows.empty());
  std::set<int64_t> seen;
  monitors_.reserve(windows.size());
  for (const int64_t window : windows) {
    CR_CHECK(window >= 1);
    CR_CHECK(seen.insert(window).second);  // distinct lengths
    StreamOptions options = base_options;
    options.window = window;
    monitors_.emplace_back(options);
  }
}

void MultiWindowMonitor::Observe(double outbound_a, double inbound_b) {
  ++ticks_;
  for (StreamingMonitor& monitor : monitors_) {
    monitor.Observe(outbound_a, inbound_b);
  }
}

void MultiWindowMonitor::ObserveBatch(
    const std::vector<double>& outbound_a,
    const std::vector<double>& inbound_b) {
  CR_CHECK(outbound_a.size() == inbound_b.size());
  if (outbound_a.empty()) return;
  ticks_ += static_cast<int64_t>(outbound_a.size());
  // Windows are fully independent; each worker replays the whole batch into
  // its own monitor, so per-window tick order (and therefore episode
  // detection) matches the sequential Observe loop exactly.
  util::ParallelFor(static_cast<int64_t>(monitors_.size()), num_threads_,
                    [&](int64_t k) {
                      StreamingMonitor& monitor =
                          monitors_[static_cast<size_t>(k)];
                      for (size_t t = 0; t < outbound_a.size(); ++t) {
                        monitor.Observe(outbound_a[t], inbound_b[t]);
                      }
                    });
}

void MultiWindowMonitor::Flush() {
  for (StreamingMonitor& monitor : monitors_) monitor.Flush();
}

std::vector<std::optional<double>> MultiWindowMonitor::WindowConfidences()
    const {
  std::vector<std::optional<double>> out;
  out.reserve(monitors_.size());
  for (const StreamingMonitor& monitor : monitors_) {
    out.push_back(monitor.WindowConfidence());
  }
  return out;
}

std::optional<MultiWindowMonitor::WorstWindow> MultiWindowMonitor::Worst()
    const {
  std::optional<WorstWindow> worst;
  for (size_t k = 0; k < monitors_.size(); ++k) {
    const std::optional<double> conf = monitors_[k].WindowConfidence();
    if (!conf.has_value()) continue;
    if (!worst.has_value() || *conf < worst->confidence) {
      worst = WorstWindow{windows_[k], *conf};
    }
  }
  return worst;
}

bool MultiWindowMonitor::AnyViolation() const {
  for (const StreamingMonitor& monitor : monitors_) {
    if (monitor.in_violation()) return true;
  }
  return false;
}

std::vector<MultiWindowMonitor::ScopedEpisode>
MultiWindowMonitor::AllEpisodes() const {
  std::vector<ScopedEpisode> out;
  for (size_t k = 0; k < monitors_.size(); ++k) {
    for (const ViolationEpisode& episode : monitors_[k].episodes()) {
      out.push_back(ScopedEpisode{windows_[k], episode});
    }
  }
  return out;
}

}  // namespace conservation::stream
