#include "stream/streaming_monitor.h"

#include <algorithm>
#include <limits>

#include "obs/labels.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace conservation::stream {

namespace {

struct StreamMetrics {
  obs::Counter& ticks;
  obs::Counter& episodes;
  obs::Gauge& window_confidence;
  obs::Gauge& cumulative_confidence;

  static StreamMetrics& Get() {
    static StreamMetrics* metrics = [] {
      obs::Registry& registry = obs::Registry::Global();
      return new StreamMetrics{
          registry.Counter("stream.ticks"),
          registry.Counter("stream.episodes"),
          registry.Gauge("stream.window_confidence"),
          registry.Gauge("stream.cumulative_confidence")};
    }();
    return *metrics;
  }
};

}  // namespace

StreamingMonitor::StreamingMonitor(const StreamOptions& options)
    : options_(options) {
  CR_CHECK(options.window >= 1);
  CR_CHECK(options.clear_threshold >= options.alert_threshold);
  ring_size_ = options.window + 2;
  ring_A_.assign(static_cast<size_t>(ring_size_), 0.0);
  ring_B_.assign(static_cast<size_t>(ring_size_), 0.0);
  min_gap_ = std::numeric_limits<double>::infinity();
  if (!options_.tenant.empty()) {
    // One family lookup per monitor construction; Observe() then pays one
    // extra striped increment per tick, nothing more.
    const obs::LabelSet labels{{"tenant", options_.tenant}};
    tenant_ticks_ = &obs::LabeledCounter("stream.ticks").With(labels);
    tenant_episodes_ = &obs::LabeledCounter("stream.episodes").With(labels);
    tenant_window_confidence_ =
        &obs::LabeledGauge("stream.window_confidence").With(labels);
    tenant_cumulative_confidence_ =
        &obs::LabeledGauge("stream.cumulative_confidence").With(labels);
  }
}

void StreamingMonitor::Observe(double outbound_a, double inbound_b) {
  CR_CHECK(outbound_a >= 0.0 && inbound_b >= 0.0);
  ++t_;
  A_t_ += outbound_a;
  B_t_ += inbound_b;
  const double gap = B_t_ - A_t_;
  CR_CHECK(gap >= -1e-9);  // dominance; preprocess upstream if violated
  sum_A_ += A_t_;
  sum_B_ += B_t_;
  min_gap_ = std::min(min_gap_, gap);

  // Expire the tick leaving the window from the sliding sums before its
  // ring slot can be overwritten (ring_size_ > window guarantees the old
  // value is still present).
  if (t_ > options_.window) {
    window_sum_A_ -= RingA(t_ - options_.window);
    window_sum_B_ -= RingB(t_ - options_.window);
  }
  window_sum_A_ += A_t_;
  window_sum_B_ += B_t_;
  ring_A_[static_cast<size_t>(t_ % ring_size_)] = A_t_;
  ring_B_[static_cast<size_t>(t_ % ring_size_)] = B_t_;

  // Maintain the monotonic min-deque of gaps over the window.
  const int64_t window_begin = std::max<int64_t>(1, t_ - options_.window + 1);
  while (!gap_min_.empty() && gap_min_.front().first < window_begin) {
    gap_min_.pop_front();
  }
  while (!gap_min_.empty() && gap_min_.back().second >= gap) {
    gap_min_.pop_back();
  }
  gap_min_.emplace_back(t_, gap);

  UpdateAlerting(WindowConfidence());

  StreamMetrics::Get().ticks.Increment();
  if (tenant_ticks_ != nullptr) tenant_ticks_->Increment();
  if (options_.metrics_every > 0 && t_ % options_.metrics_every == 0) {
    StreamMetrics& metrics = StreamMetrics::Get();
    const double window_conf = WindowConfidence().value_or(-1.0);
    const double cumulative_conf = CumulativeConfidence().value_or(-1.0);
    metrics.window_confidence.Set(window_conf);
    metrics.cumulative_confidence.Set(cumulative_conf);
    if (tenant_window_confidence_ != nullptr) {
      tenant_window_confidence_->Set(window_conf);
      tenant_cumulative_confidence_->Set(cumulative_conf);
    }
    CR_TRACE_INSTANT("stream.snapshot");
  }
}

std::optional<double> StreamingMonitor::ConfidenceFrom(int64_t i) const {
  CR_CHECK(i >= 1 && i <= t_);
  const double len = static_cast<double>(t_ - i + 1);
  double sum_a;
  double sum_b;
  double prev_a;
  double suffix_min;
  if (i == 1) {
    sum_a = sum_A_;
    sum_b = sum_B_;
    prev_a = 0.0;
    suffix_min = min_gap_;
  } else {
    // Window query: i-1 is still inside the ring.
    CR_CHECK(i - 1 >= t_ - options_.window);
    sum_a = window_sum_A_;
    sum_b = window_sum_B_;
    prev_a = RingA(i - 1);
    CR_CHECK(!gap_min_.empty());
    suffix_min = gap_min_.front().second;
  }

  double baseline_a = prev_a;
  double baseline_b = prev_a;
  switch (options_.model) {
    case core::ConfidenceModel::kBalance:
      break;
    case core::ConfidenceModel::kCredit:
      baseline_a -= suffix_min;
      break;
    case core::ConfidenceModel::kDebit:
      baseline_b += suffix_min;
      break;
  }
  const double area_a = std::max(sum_a - len * baseline_a, 0.0);
  const double area_b = std::max(sum_b - len * baseline_b, 0.0);
  if (area_b <= 0.0) return std::nullopt;
  return area_a / area_b;
}

std::optional<double> StreamingMonitor::CumulativeConfidence() const {
  if (t_ == 0) return std::nullopt;
  return ConfidenceFrom(1);
}

std::optional<double> StreamingMonitor::WindowConfidence() const {
  if (t_ == 0) return std::nullopt;
  if (options_.require_full_window && t_ < options_.window) {
    return std::nullopt;
  }
  return ConfidenceFrom(std::max<int64_t>(1, t_ - options_.window + 1));
}

void StreamingMonitor::UpdateAlerting(std::optional<double> window_conf) {
  if (!window_conf.has_value()) return;  // no signal this tick
  if (!open_episode_.has_value()) {
    if (*window_conf < options_.alert_threshold) {
      open_episode_ = ViolationEpisode{t_, t_, *window_conf};
    }
    return;
  }
  if (*window_conf < options_.clear_threshold) {
    open_episode_->end = t_;
    open_episode_->min_confidence =
        std::min(open_episode_->min_confidence, *window_conf);
    return;
  }
  // Recovered: close the episode.
  episodes_.push_back(*open_episode_);
  StreamMetrics::Get().episodes.Increment();
  if (tenant_episodes_ != nullptr) tenant_episodes_->Increment();
  CR_TRACE_INSTANT("stream.episode_closed");
  if (callback_) callback_(*open_episode_);
  open_episode_.reset();
}

void StreamingMonitor::Flush() {
  if (open_episode_.has_value()) {
    episodes_.push_back(*open_episode_);
    StreamMetrics::Get().episodes.Increment();
    if (tenant_episodes_ != nullptr) tenant_episodes_->Increment();
    CR_TRACE_INSTANT("stream.episode_closed");
    if (callback_) callback_(*open_episode_);
    open_episode_.reset();
  }
}

}  // namespace conservation::stream
