// MultiWindowMonitor: one stream, several window lengths at once.
//
// Violations live at different time scales — a one-minute burst, an
// hour-long outage, a slow day-scale leak. Rather than picking one window,
// this composes a StreamingMonitor per configured window over a single
// Observe() feed; each window keeps its own episode stream, and the
// summary reports the most alarmed window at any moment.

#ifndef CONSERVATION_STREAM_MULTI_WINDOW_MONITOR_H_
#define CONSERVATION_STREAM_MULTI_WINDOW_MONITOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "stream/streaming_monitor.h"

namespace conservation::stream {

class MultiWindowMonitor {
 public:
  // One monitor per window length, sharing the base options (model,
  // thresholds). Window lengths must be positive and distinct.
  // `num_threads` bounds the per-window fan-out of ObserveBatch (1 =
  // sequential, 0 = hardware concurrency); single-tick Observe is always
  // sequential — the per-tick work is too small to ship across threads.
  MultiWindowMonitor(const StreamOptions& base_options,
                     const std::vector<int64_t>& windows,
                     int num_threads = 1);

  void Observe(double outbound_a, double inbound_b);

  // Ingests a whole batch of ticks, fanning the independent per-window
  // monitors out across the shared thread pool. Equivalent to calling
  // Observe per tick: each window's monitor still sees the ticks in order.
  // Episode callbacks may fire concurrently from different windows during a
  // batch; register thread-safe callbacks when using num_threads != 1.
  void ObserveBatch(const std::vector<double>& outbound_a,
                    const std::vector<double>& inbound_b);

  void Flush();

  int64_t ticks() const { return ticks_; }
  size_t num_windows() const { return monitors_.size(); }
  int64_t window_length(size_t index) const { return windows_[index]; }
  const StreamingMonitor& monitor(size_t index) const {
    return monitors_[index];
  }

  // Confidence per window at the current tick (nullopt where undefined).
  std::vector<std::optional<double>> WindowConfidences() const;

  // The lowest defined window confidence right now, with its window length;
  // nullopt when no window has a defined value yet.
  struct WorstWindow {
    int64_t window = 0;
    double confidence = 1.0;
  };
  std::optional<WorstWindow> Worst() const;

  // True when any window is inside a violation episode.
  bool AnyViolation() const;

  // All episodes across windows, annotated with their window length.
  struct ScopedEpisode {
    int64_t window = 0;
    ViolationEpisode episode;
  };
  std::vector<ScopedEpisode> AllEpisodes() const;

 private:
  std::vector<int64_t> windows_;
  std::vector<StreamingMonitor> monitors_;
  int64_t ticks_ = 0;
  int num_threads_ = 1;
};

}  // namespace conservation::stream

#endif  // CONSERVATION_STREAM_MULTI_WINDOW_MONITOR_H_
