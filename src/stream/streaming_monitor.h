// Online conservation monitoring over an unbounded stream of count pairs.
//
// The batch pipeline (ConservationRule + tableau discovery) analyzes a
// stored sequence; production monitoring systems instead see one
// (outbound_a, inbound_b) pair per tick and must react as data arrives —
// the setting the paper's introduction motivates. StreamingMonitor ingests
// ticks in O(1) amortized time and maintains:
//
//   * whole-stream confidence conf(1, t) under any model;
//   * sliding-window confidence conf(t-w+1, t) for a fixed window w,
//     via ring buffers and a monotonic deque over the gap B_l - A_l;
//   * violation episodes: maximal runs of ticks whose window confidence
//     sits below an alert threshold (with hysteresis), reported through a
//     callback as they close.
//
// Semantics note: the batch credit/debit models discount using
// S_i = min_{i <= k <= n} (B_k - A_k), which peeks at the *future*. A
// streaming monitor cannot, so it uses the prefix-consistent variant
// S_i^(t) = min_{i <= k <= t} (B_k - A_k). At any time t, the monitor's
// answers equal a batch ConfidenceEvaluator built over the first t ticks —
// a property the tests verify — and converge to the batch values as the
// suffix minimum settles.

#ifndef CONSERVATION_STREAM_STREAMING_MONITOR_H_
#define CONSERVATION_STREAM_STREAMING_MONITOR_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/model.h"
#include "interval/interval.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace conservation::stream {

// A maximal run of ticks whose sliding-window confidence stayed below the
// alert threshold.
struct ViolationEpisode {
  int64_t begin = 0;  // first tick whose window confidence was below
  int64_t end = 0;    // last such tick
  double min_confidence = 1.0;
};

struct StreamOptions {
  core::ConfidenceModel model = core::ConfidenceModel::kBalance;
  // Sliding-window length for WindowConfidence and alerting.
  int64_t window = 64;
  // An episode opens when window confidence drops below `alert_threshold`
  // and closes once it recovers above `clear_threshold` (hysteresis;
  // clear_threshold >= alert_threshold).
  double alert_threshold = 0.5;
  double clear_threshold = 0.6;
  // Ticks to wait before alerting (the window must be full).
  bool require_full_window = true;
  // Every this many ticks, publish the monitor's window/cumulative
  // confidence to the obs gauges ("stream.window_confidence",
  // "stream.cumulative_confidence") and drop a "stream.snapshot" trace
  // instant. 0 (default) disables periodic snapshots; per-tick counters
  // ("stream.ticks", "stream.episodes") are always maintained.
  int64_t metrics_every = 0;
  // When non-empty, this monitor additionally attributes its counters and
  // gauges to labeled children {tenant="<name>"} of the same base metrics
  // (obs/labels.h); the unlabeled series stay the all-up totals. Handles
  // resolve once at construction — no per-tick cost beyond one extra
  // striped increment.
  std::string tenant;
};

class StreamingMonitor {
 public:
  using EpisodeCallback = std::function<void(const ViolationEpisode&)>;

  explicit StreamingMonitor(const StreamOptions& options);

  // Ingests one tick. O(1) amortized. Counts must be non-negative and the
  // running inbound total must dominate the outbound total (preprocess
  // upstream if unsure).
  void Observe(double outbound_a, double inbound_b);

  // Registers a callback fired when a violation episode closes (and for
  // the still-open episode on Flush()).
  void OnEpisode(EpisodeCallback callback) { callback_ = std::move(callback); }

  // Closes any open episode; call at end of stream.
  void Flush();

  int64_t ticks() const { return t_; }

  // conf(1, t) under the monitor's model (prefix-consistent credit/debit).
  std::optional<double> CumulativeConfidence() const;

  // conf(max(1, t-w+1), t); nullopt when undefined or (with
  // require_full_window) before the window fills.
  std::optional<double> WindowConfidence() const;

  // Episodes closed so far (the open one, if any, is excluded until Flush).
  const std::vector<ViolationEpisode>& episodes() const { return episodes_; }
  bool in_violation() const { return open_episode_.has_value(); }

 private:
  // Ring-buffer access for cumulative values at absolute tick l
  // (t - window_history_ < l <= t). Index 0 holds tick 0 sentinels until
  // overwritten.
  double RingA(int64_t l) const {
    return ring_A_[static_cast<size_t>(l % ring_size_)];
  }
  double RingB(int64_t l) const {
    return ring_B_[static_cast<size_t>(l % ring_size_)];
  }

  std::optional<double> ConfidenceFrom(int64_t i) const;
  void UpdateAlerting(std::optional<double> window_conf);

  StreamOptions options_;
  EpisodeCallback callback_;

  int64_t t_ = 0;       // ticks observed
  double A_t_ = 0.0;    // cumulative outbound
  double B_t_ = 0.0;    // cumulative inbound
  double sum_A_ = 0.0;  // sum_{l<=t} A_l   (for whole-stream areas)
  double sum_B_ = 0.0;  // sum_{l<=t} B_l
  double min_gap_ = 0.0;  // min_{1<=k<=t} (B_k - A_k), prefix S_1

  // Ring buffers of cumulative values for the last `window`+1 ticks.
  int64_t ring_size_ = 0;
  std::vector<double> ring_A_;
  std::vector<double> ring_B_;
  // Sliding sums over the window: sum of A_l / B_l for l in (t-w, t].
  double window_sum_A_ = 0.0;
  double window_sum_B_ = 0.0;
  // Monotonic deque of (tick, gap) with increasing gap values, over the
  // window, for S_i^(t) = min gap in [i, t].
  std::deque<std::pair<int64_t, double>> gap_min_;

  std::optional<ViolationEpisode> open_episode_;
  std::vector<ViolationEpisode> episodes_;

  // Tenant-labeled children, resolved once in the constructor when
  // options.tenant is non-empty (null otherwise — check before use).
  obs::Counter* tenant_ticks_ = nullptr;
  obs::Counter* tenant_episodes_ = nullptr;
  obs::Gauge* tenant_window_confidence_ = nullptr;
  obs::Gauge* tenant_cumulative_confidence_ = nullptr;
};

}  // namespace conservation::stream

#endif  // CONSERVATION_STREAM_STREAMING_MONITOR_H_
