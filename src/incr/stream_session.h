// StreamSession: one append-only stream driving both maintenance planes.
//
// Production monitoring (stream/streaming_monitor.h) answers "is the rule
// holding right now?" per tick; tableau maintenance (incr/incremental.h)
// answers "where does the rule hold / fail over everything seen so far?"
// per batch. A StreamSession owns one of each and feeds every observed
// batch to both, so the caller ingests counts exactly once:
//
//   auto session = StreamSession::Create(initial, request, stream_options);
//   session->monitor().OnEpisode(...);          // online alerting
//   const core::Tableau& t = session->ObserveBatch(a, b);  // per batch
//
// The monitor sees ticks in order (seeded with the initial series at
// Create); the discoverer sees the same ticks as one append per
// ObserveBatch. Their models may differ intentionally — the monitor's
// credit/debit variant is prefix-consistent (no future peeking), while the
// tableau is the batch-exact one over the full series; for the balance
// model the two planes agree tick for tick.

#ifndef CONSERVATION_INCR_STREAM_SESSION_H_
#define CONSERVATION_INCR_STREAM_SESSION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/tableau.h"
#include "incr/incremental.h"
#include "series/sequence.h"
#include "stream/streaming_monitor.h"
#include "util/status.h"

namespace conservation::incr {

class StreamSession {
 public:
  // Validates `request` via IncrementalDiscoverer::Create, then seeds the
  // monitor with the initial series' ticks. The initial tableau is
  // available immediately.
  static util::Result<StreamSession> Create(
      const series::CountSequence& initial, const core::TableauRequest& request,
      const stream::StreamOptions& stream_options);

  StreamSession(StreamSession&&) = default;
  StreamSession& operator=(StreamSession&&) = default;

  // Ingests one batch: tick-by-tick into the monitor (episodes fire
  // in-line), one append into the discoverer. Returns the refreshed
  // tableau.
  const core::Tableau& ObserveBatch(const double* a, const double* b,
                                    int64_t m);
  const core::Tableau& ObserveBatch(const std::vector<double>& a,
                                    const std::vector<double>& b);

  const core::Tableau& tableau() const { return discoverer_->tableau(); }
  IncrementalDiscoverer& discoverer() { return *discoverer_; }
  const IncrementalDiscoverer& discoverer() const { return *discoverer_; }
  stream::StreamingMonitor& monitor() { return *monitor_; }
  const stream::StreamingMonitor& monitor() const { return *monitor_; }
  int64_t n() const { return discoverer_->n(); }

 private:
  StreamSession(IncrementalDiscoverer discoverer,
                const stream::StreamOptions& stream_options);

  // unique_ptr so the session stays movable without re-seeding state.
  std::unique_ptr<IncrementalDiscoverer> discoverer_;
  std::unique_ptr<stream::StreamingMonitor> monitor_;
};

}  // namespace conservation::incr

#endif  // CONSERVATION_INCR_STREAM_SESSION_H_
