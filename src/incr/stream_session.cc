#include "incr/stream_session.h"

#include <utility>

#include "util/check.h"

namespace conservation::incr {

util::Result<StreamSession> StreamSession::Create(
    const series::CountSequence& initial, const core::TableauRequest& request,
    const stream::StreamOptions& stream_options) {
  util::Result<IncrementalDiscoverer> discoverer =
      IncrementalDiscoverer::Create(initial, request);
  if (!discoverer.ok()) return discoverer.status();
  StreamSession session(std::move(discoverer).value(), stream_options);
  for (int64_t t = 1; t <= initial.n(); ++t) {
    session.monitor_->Observe(initial.a(t), initial.b(t));
  }
  return std::move(session);
}

StreamSession::StreamSession(IncrementalDiscoverer discoverer,
                             const stream::StreamOptions& stream_options)
    : discoverer_(
          std::make_unique<IncrementalDiscoverer>(std::move(discoverer))),
      monitor_(std::make_unique<stream::StreamingMonitor>(stream_options)) {}

const core::Tableau& StreamSession::ObserveBatch(const double* a,
                                                 const double* b, int64_t m) {
  CR_CHECK(m > 0);
  for (int64_t k = 0; k < m; ++k) {
    monitor_->Observe(a[k], b[k]);
  }
  return discoverer_->AppendBatch(a, b, m);
}

const core::Tableau& StreamSession::ObserveBatch(const std::vector<double>& a,
                                                 const std::vector<double>& b) {
  CR_CHECK(a.size() == b.size());
  return ObserveBatch(a.data(), b.data(), static_cast<int64_t>(a.size()));
}

}  // namespace conservation::incr
