#include "incr/incremental.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "interval/kernel.h"
#include "interval/non_area_based.h"
#include "interval/walk.h"
#include "obs/metrics.h"
#include "obs/watchdog.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace conservation::incr {

namespace {

using interval::internal::ConfidenceKernel;

// Registry mirror of IncrStats (which stays the API-stable per-discoverer
// view); these counters accumulate across discoverers. Batch-published at
// the end of every ProcessBatch.
struct IncrMetrics {
  obs::Counter& batches;
  obs::Counter& candidates_extended;
  obs::Counter& cover_warm_pops;
  obs::Counter& full_rebuilds;
  obs::Counter& dirty_anchors;
  // Per-AppendBatch wall time; the source of the windowed p50/p99 tick
  // latency quantiles on the scrape endpoint.
  obs::Histogram& batch_seconds;

  static IncrMetrics& Get() {
    static IncrMetrics* metrics = [] {
      obs::Registry& registry = obs::Registry::Global();
      return new IncrMetrics{registry.Counter("incr.batches"),
                             registry.Counter("incr.candidates_extended"),
                             registry.Counter("incr.cover_warm_pops"),
                             registry.Counter("incr.full_rebuilds"),
                             registry.Counter("incr.dirty_anchors"),
                             registry.Histogram(
                                 "incr.batch_seconds",
                                 {1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0})};
    }();
    return *metrics;
  }
};

// Largest j in [lo, hi] with area(i, j) <= threshold, or lo - 1 if even
// area(i, lo) exceeds it — the AB-opt generator's search verbatim
// (area_based_opt.cc), minus its probe counter. The kernel must be
// anchored at i.
int64_t LargestEndpointWithin(const ConfidenceKernel& kernel, int64_t lo,
                              int64_t hi, double threshold) {
  int64_t result = lo - 1;
  while (lo <= hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    if (kernel.SparseArea(mid) <= threshold) {
      result = mid;
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return result;
}

// One relaxed-threshold confidence test folded into a (best_j, best_conf)
// accumulator — the generators' exact guard (valid + qualifying + longer
// than the incumbent). kernel.Confidence is bit-identical to the batch
// kernels the fresh sweeps use (kernel.h contract), so folding tests one
// at a time across batches reproduces their single-pass folds.
void FoldRelaxedTest(const ConfidenceKernel& kernel,
                     const interval::GeneratorOptions& options, int64_t j,
                     int64_t* best_j, double* best_conf) {
  double conf;
  if (kernel.Confidence(j, &conf) &&
      interval::PassesRelaxedThreshold(conf, options) && j > *best_j) {
    *best_j = j;
    *best_conf = conf;
  }
}

// Credit-fail zero-prefix probes strictly below `zae`, replicating the
// generators' length-geometric list for the current n (duplicates from
// floor((1+eps)^h) included — they cannot displace themselves under the
// j > best_j guard, exactly as in the fresh sweep). The probed set is
// n-independent once zae is settled: every consumed entry is an uncapped
// floor power < zae <= n, and the list's final capped entry `n` maps to
// j = i + n - 1 >= zae, past the break.
void FoldZeroPrefix(const ConfidenceKernel& kernel,
                    const interval::GeneratorOptions& options, double growth,
                    int64_t i, int64_t zae, int64_t n, int64_t* best_j,
                    double* best_conf) {
  double power = 1.0;
  while (static_cast<int64_t>(power) < n) {
    const int64_t j = i + static_cast<int64_t>(power) - 1;
    if (j >= zae) return;
    FoldRelaxedTest(kernel, options, j, best_j, best_conf);
    power *= growth;
  }
}

// Fenwick tree over the covered-tick indicator — the cover phase's
// (partial_set_cover.cc), so warm-start marginal gains are computed with
// the identical arithmetic.
class CoveredFenwick {
 public:
  explicit CoveredFenwick(int64_t n)
      : n_(n), tree_(static_cast<size_t>(n) + 1, 0) {}

  void Mark(int64_t t) {
    for (; t <= n_; t += t & -t) ++tree_[static_cast<size_t>(t)];
  }

  int64_t Covered(int64_t t) const {
    int64_t sum = 0;
    for (; t > 0; t -= t & -t) sum += tree_[static_cast<size_t>(t)];
    return sum;
  }

 private:
  int64_t n_;
  std::vector<int64_t> tree_;
};

// "Worse-than" order for the warm heap. Matches GreedyPartialSetCover's
// deterministic WorseThan on every pair the selection can actually compare:
// gain descending, then ByPosition ascending. Live entries' intervals are
// pairwise position-distinct (one candidate per anchor, distinct anchors),
// so the fresh comparator's input-index component is unreachable for them;
// the seq tie-break only orders stale duplicates, which selection skips
// without side effects. Templated because HeapEntry is a private nested
// type of the discoverer.
template <typename Entry>
bool EntryWorse(const Entry& a, const Entry& b) {
  if (a.gain != b.gain) return a.gain < b.gain;
  if (a.iv.begin != b.iv.begin || a.iv.end != b.iv.end) {
    return interval::ByPosition(b.iv, a.iv);
  }
  return a.seq > b.seq;
}

}  // namespace

util::Result<IncrementalDiscoverer> IncrementalDiscoverer::Create(
    const series::CountSequence& initial, const core::TableauRequest& request) {
  if (util::Status status = core::ValidateTableauRequest(request);
      !status.ok()) {
    return status;
  }
  if (request.stop_on_full_cover) {
    return util::Status::InvalidArgument(
        "incremental maintenance does not support stop_on_full_cover (its "
        "emitted candidate set depends on sweep order, which maintenance "
        "cannot reproduce)");
  }
  IncrementalDiscoverer discoverer(initial, request);
  // The initial series is the first batch: every anchor is new.
  discoverer.ProcessBatch(series::CumulativeSeries::AppendResult{0, 1, false});
  return std::move(discoverer);
}

IncrementalDiscoverer::IncrementalDiscoverer(
    const series::CountSequence& initial, const core::TableauRequest& request)
    : request_(request),
      series_(std::make_unique<series::CumulativeSeries>(initial)),
      eval_(std::make_unique<core::ConfidenceEvaluator>(series_.get(),
                                                        request.model)) {
  // Sequential mirror of DiscoverTableau's options copy: the delta paths
  // run per-anchor O(1) resumes, which neither shard nor consult the
  // sketch screen (the per-anchor frontier already restricts re-walks).
  gen_options_.type = request.type;
  gen_options_.c_hat = request.c_hat;
  gen_options_.epsilon = request.epsilon;
  gen_options_.delta_mode = request.delta_mode;
  gen_options_.stop_on_full_cover = false;
  gen_options_.largest_first_early_exit = request.largest_first_early_exit;
  gen_options_.num_threads = 1;
  gen_options_.chunks_per_thread = request.chunks_per_thread;
  gen_options_.walk_width = request.walk_width;
  gen_options_.sketch = interval::SketchMode::kOff;
  gen_options_.sketch_block = request.sketch_block;
  credit_fail_ = request.type == core::TableauType::kFail &&
                 request.model == core::ConfidenceModel::kCredit;
  fail_type_ = request.type == core::TableauType::kFail;
  tableau_.type = request.type;
  tableau_.model = request.model;
}

const core::Tableau& IncrementalDiscoverer::AppendBatch(const double* a,
                                                        const double* b,
                                                        int64_t m) {
  CR_CHECK(m > 0);
  obs::ScopedDeadline deadline("incr.append_batch");
  util::Stopwatch batch_timer;
  const series::CumulativeSeries::AppendResult delta =
      series_->Append(a, b, m);
  if (!store_.empty()) {
    if (series_->n() <= store_.capacity()) {
      store_.Append(*series_, delta);
    } else {
      // Reserved capacity exhausted: detach rather than rebuild — arena
      // growth policy is the owner's call, not the maintenance loop's.
      store_ = series::SeriesStore();
    }
  }
  ProcessBatch(delta);
  IncrMetrics::Get().batch_seconds.Record(batch_timer.ElapsedSeconds());
  return tableau_;
}

const core::Tableau& IncrementalDiscoverer::AppendBatch(
    const std::vector<double>& a, const std::vector<double>& b) {
  CR_CHECK(a.size() == b.size());
  return AppendBatch(a.data(), b.data(), static_cast<int64_t>(a.size()));
}

bool IncrementalDiscoverer::AttachStore(int64_t capacity, int64_t block) {
  if (block <= 0 || capacity < series_->n()) return false;
  store_ = series::SeriesStore::Build(*series_, block, capacity);
  store_block_ = block;
  return true;
}

void IncrementalDiscoverer::ProcessBatch(
    const series::CumulativeSeries::AppendResult& delta) {
  const IncrStats before = stats_;
  const int64_t old_n = delta.old_n;
  const double cur_delta = interval::ResolveDelta(*series_, gen_options_);
  const bool uses_delta =
      request_.algorithm == interval::AlgorithmKind::kAreaBased ||
      request_.algorithm == interval::AlgorithmKind::kAreaBasedOpt;
  // Delta changing (a new tick introduced a smaller minimum positive count)
  // re-levels every AB/AB-opt threshold ladder: no settled level or chain
  // position survives, so reset and re-walk everything. Exhaustive and NAB
  // never consult Delta.
  bool full_rebuild = false;
  if (stats_.batches > 0 && uses_delta && cur_delta != prev_delta_) {
    full_rebuild = true;
    ++stats_.full_rebuilds;
  }
  prev_delta_ = cur_delta;
  GrowStateArrays(series_->n());

  int64_t dirty_begin = old_n + 1;
  if (full_rebuild) {
    ResetAllAnchorStates();
    dirty_begin = 1;
  } else if (request_.model != core::ConfidenceModel::kBalance &&
             delta.first_changed_s <= old_n) {
    // Credit/debit baselines read SuffixMinGap(i): anchors whose gap the
    // append lowered have moved baselines and must re-walk from scratch.
    dirty_begin = delta.first_changed_s;
    stats_.dirty_anchors += old_n - dirty_begin + 1;
  }

  switch (request_.algorithm) {
    case interval::AlgorithmKind::kAreaBased:
      ProcessAreaBased(delta, dirty_begin);
      break;
    case interval::AlgorithmKind::kAreaBasedOpt:
      ProcessAreaBasedOpt(delta, dirty_begin);
      break;
    case interval::AlgorithmKind::kExhaustive:
      ProcessExhaustive(delta, dirty_begin);
      break;
    case interval::AlgorithmKind::kNonAreaBased:
    case interval::AlgorithmKind::kNonAreaBasedOpt:
      ProcessNonAreaBased(delta);
      break;
  }

  ++stats_.batches;
  if (append_only_) {
    // Deferred-cover mode: the candidate store and pending heap entries now
    // carry this batch's full delta, so MaintainHeap + RunWarmCover at any
    // later RefreshCover() produce the same tableau a per-batch refresh
    // would have — deferral reorders no heap pushes (pending_entries_ keeps
    // arrival order) and selection state never persists across batches.
    cover_stale_ = true;
  } else {
    MaintainHeap();
    RunWarmCover();
    // If append-only mode was toggled off while stale, this eager pass
    // just absorbed the backlog too.
    cover_stale_ = false;
  }

  IncrMetrics& metrics = IncrMetrics::Get();
  metrics.batches.Increment();
  metrics.candidates_extended.Add(static_cast<uint64_t>(
      stats_.candidates_extended - before.candidates_extended));
  metrics.cover_warm_pops.Add(
      static_cast<uint64_t>(stats_.cover_warm_pops - before.cover_warm_pops));
  metrics.full_rebuilds.Add(
      static_cast<uint64_t>(stats_.full_rebuilds - before.full_rebuilds));
  metrics.dirty_anchors.Add(
      static_cast<uint64_t>(stats_.dirty_anchors - before.dirty_anchors));
}

const core::Tableau& IncrementalDiscoverer::RefreshCover() {
  if (cover_stale_) {
    MaintainHeap();
    RunWarmCover();
    cover_stale_ = false;
  }
  return tableau_;
}

void IncrementalDiscoverer::ResetAllAnchorStates() {
  std::fill(ab_.begin(), ab_.end(), AbState{});
  std::fill(abopt_.begin(), abopt_.end(), AbOptState{});
  std::fill(exh_.begin(), exh_.end(), ExhState{});
}

void IncrementalDiscoverer::GrowStateArrays(int64_t n) {
  const size_t size = static_cast<size_t>(n) + 1;
  switch (request_.algorithm) {
    case interval::AlgorithmKind::kAreaBased:
      ab_.resize(size);
      break;
    case interval::AlgorithmKind::kAreaBasedOpt:
      abopt_.resize(size);
      break;
    case interval::AlgorithmKind::kExhaustive:
      exh_.resize(size);
      break;
    default:
      break;  // NAB keeps no per-anchor resume state
  }
  cand_valid_.resize(size, 0);
  cand_begin_.resize(size, 0);
  cand_end_.resize(size, 0);
  cand_conf_.resize(size, 0.0);
  cand_version_.resize(size, 0);
}

// ---------------------------------------------------------------------------
// Area-based (AB): per-anchor level ladder with a resumable frontier.
//
// Mirrors AbWalkState level for level (walk.h). A level's breakpoint t
// (largest j in [i, n] with area <= T) SETTLES when t < n — the area is
// nondecreasing in j, so area(t + 1) > T persists under every append — and
// its confidence test folds into the persistent (best_j, best_conf) once.
// A walk that stopped at t == n holds an O(1) frontier: while
// area(i, n') <= T it stays stopped (the breakpoint rides the frontier and
// is evaluated tentatively each batch), and the first batch where the area
// crosses T settles the level by binary search and resumes the ladder.
// ---------------------------------------------------------------------------
void IncrementalDiscoverer::ProcessAreaBased(
    const series::CumulativeSeries::AppendResult& delta, int64_t dirty_begin) {
  const int64_t n = series_->n();
  const int64_t old_n = delta.old_n;
  const double growth = 1.0 + gen_options_.epsilon;
  const double dlt = prev_delta_;

  // Threshold ladder, rebuilt per batch exactly as the fresh generator
  // builds it (area_based.cc). Prefix-stable and size-nondecreasing across
  // appends: Delta is fixed (a decrease forced a full rebuild upstream)
  // and max_area only grows, so settled levels keep their thresholds.
  const double max_area = gen_options_.type == core::TableauType::kHold
                              ? series_->SumB(1, n)
                              : series_->SumA(1, n);
  int64_t num_levels = 0;
  if (max_area > dlt) {
    num_levels = static_cast<int64_t>(
                     std::ceil(std::log(max_area / dlt) / std::log(growth))) +
                 1;
  }
  std::vector<double> thresholds;
  if (fail_type_) thresholds.push_back(0.0);
  double t_value = dlt;
  for (int64_t l = 0; l <= num_levels; ++l) {
    thresholds.push_back(t_value);
    t_value *= growth;
  }
  const size_t num_thresholds = thresholds.size();

  ConfidenceKernel kernel(*eval_, gen_options_.type);
  for (int64_t i = 1; i <= n; ++i) {
    AbState& st = ab_[static_cast<size_t>(i)];
    if (i > old_n || i >= dirty_begin) st = AbState{};
    kernel.BeginAnchor(i);

    if (st.stage == AbState::kExhausted && st.level >= num_thresholds) {
      // Ladder fully consumed and no new levels appeared: the candidate is
      // exactly the settled fold. No version bump happens below.
      UpdateCandidate(i, st.best_j >= i, i, st.best_j, st.best_conf);
      continue;
    }

    // first_level replicates AbWalkState::Begin. For a clean anchor it is
    // batch-invariant: area(i, i), Delta and growth do not move (credit/
    // debit anchors whose SuffixMinGap changed were reset above).
    size_t first_level = fail_type_ ? 1 : 0;
    const double anchor_area = kernel.SparseArea(i);
    if (anchor_area > dlt) {
      const double levels_below =
          std::log(anchor_area / dlt) / std::log(growth);
      first_level += static_cast<size_t>(std::max(0.0, levels_below - 1.0));
    }

    size_t level;
    bool stopped = false;
    bool tent_at_n = false;  // frontier breakpoint at n, evaluated per batch
    bool tent_zp = false;    // zae would settle at n: tentative zero prefix
    if (st.stage == AbState::kFresh) {
      level = fail_type_ ? 0 : first_level;
    } else if (st.stage == AbState::kStopped) {
      const double threshold = thresholds[st.level];
      if (kernel.SparseArea(n) <= threshold) {
        // Still stopped: the breakpoint extended to the new n.
        stopped = true;
        tent_at_n = true;
        tent_zp = threshold == 0.0 && !st.zae_settled;
      } else {
        level = st.level;  // the stopped level settles in the loop below
      }
    } else {
      level = st.level;  // kExhausted: only the newly appeared levels run
    }

    if (!stopped) {
      while (level < num_thresholds) {
        const double threshold = thresholds[level];
        int64_t t;
        bool exists;
        if (kernel.SparseArea(n) <= threshold) {
          // Frontier shortcut: the fresh search would return n with a
          // within-threshold area. Value-identical to the walk's
          // breakpoint, found in O(1) instead of O(log n).
          t = n;
          exists = true;
        } else {
          // Fresh first-touch search verbatim (walk.h): default t = i, so
          // t == i with exists == false when even [i, i] exceeds T.
          int64_t lo = i;
          int64_t hi = n;
          t = i;
          while (lo <= hi) {
            const int64_t mid = lo + (hi - lo) / 2;
            if (kernel.SparseArea(mid) <= threshold) {
              t = mid;
              lo = mid + 1;
            } else {
              hi = mid - 1;
            }
          }
          exists = kernel.SparseArea(t) <= threshold;
        }
        if (exists && t == n) {
          st.stage = AbState::kStopped;
          st.level = static_cast<uint32_t>(level);
          stopped = true;
          tent_at_n = true;
          tent_zp = threshold == 0.0 && !st.zae_settled;
          break;
        }
        if (exists) {
          if (threshold == 0.0 && !st.zae_settled) {
            // Zero level settled below n: area(t + 1) > 0 persists, so the
            // zero-area end and its prefix probes are final.
            st.zae = t;
            st.zae_settled = true;
            if (credit_fail_ && st.zae > i) {
              FoldZeroPrefix(kernel, gen_options_, growth, i, st.zae, n,
                             &st.best_j, &st.best_conf);
            }
          }
          FoldRelaxedTest(kernel, gen_options_, t, &st.best_j, &st.best_conf);
        } else if (threshold == 0.0 && !st.zae_settled) {
          // area(i, i) > 0 persists: no zero-area prefix, ever.
          st.zae = 0;
          st.zae_settled = true;
        }
        ++level;
        if (level == 1 && first_level > 1) level = first_level;
      }
      if (!stopped) {
        st.stage = AbState::kExhausted;
        st.level = static_cast<uint32_t>(level);
      }
    }

    // Candidate = settled fold + this batch's tentative frontier tests.
    // Tentative results never enter st: they are recomputed (at the moved
    // frontier) next batch. The fold is argmax-j over qualifying tests, so
    // combining order does not matter.
    int64_t cj = st.best_j;
    double cc = st.best_conf;
    if (tent_zp && n > i) {
      FoldZeroPrefix(kernel, gen_options_, growth, i, /*zae=*/n, n, &cj, &cc);
    }
    if (tent_at_n) {
      FoldRelaxedTest(kernel, gen_options_, n, &cj, &cc);
    }
    UpdateCandidate(i, cj >= i, i, cj, cc);
  }
}

// ---------------------------------------------------------------------------
// AB-opt: per-anchor breakpoint chain with a resumable frontier.
//
// Mirrors the scalar per-anchor path of area_based_opt.cc. A breakpoint
// found strictly below n settles forever (same monotone-area argument as
// AB); a search whose result would sit at n — detected by the O(1) frontier
// probe area(i, n) <= threshold BEFORE any binary search — parks the anchor
// in a pending stage and is evaluated tentatively. Storing only the last
// settled chain position `cur` (the pending search re-derives its
// parameters from it) keeps the state O(1) per anchor; persisting the
// breakpoint list itself would be O(n) per anchor — ~12 GB at n = 1M.
// ---------------------------------------------------------------------------
void IncrementalDiscoverer::ProcessAreaBasedOpt(
    const series::CumulativeSeries::AppendResult& delta, int64_t dirty_begin) {
  const int64_t n = series_->n();
  const int64_t old_n = delta.old_n;
  const double growth = 1.0 + gen_options_.epsilon;
  const double dlt = prev_delta_;

  ConfidenceKernel kernel(*eval_, gen_options_.type);
  for (int64_t i = 1; i <= n; ++i) {
    AbOptState& st = abopt_[static_cast<size_t>(i)];
    if (i > old_n || i >= dirty_begin) st = AbOptState{};
    kernel.BeginAnchor(i);

    enum { kStepZero, kStepInit, kStepChain } step;
    int64_t cur = 0;
    switch (st.stage) {
      case AbOptState::kFresh:
        step = credit_fail_ ? kStepZero : kStepInit;
        break;
      case AbOptState::kPendingInit:
        step = kStepInit;
        break;
      default:  // kPendingChain, kChainEnd
        step = kStepChain;
        cur = st.cur;
        break;
    }

    bool parked = false;      // pending this batch: frontier test below
    bool tent_zp = false;     // sticky zero suffix: tentative zero prefix
    if (step == kStepZero) {
      if (kernel.SparseArea(n) <= 0.0) {
        // Sticky: the whole of [i, n] is zero-area. The fresh walk's
        // zae, init and chain breakpoints all collapse onto n; everything
        // is tentative and the stage stays kFresh for the next batch.
        tent_zp = true;
        parked = true;
      } else {
        const int64_t zae = LargestEndpointWithin(kernel, i, n, 0.0);
        // Settled: area(zae + 1) > 0 persists.
        st.zae = zae;
        st.zae_settled = true;
        if (zae >= i) {
          FoldZeroPrefix(kernel, gen_options_, growth, i, zae, n, &st.best_j,
                         &st.best_conf);
          FoldRelaxedTest(kernel, gen_options_, zae, &st.best_j,
                          &st.best_conf);
        }
        step = kStepInit;
      }
    }

    if (!parked && step == kStepInit) {
      if (kernel.SparseArea(n) <= dlt) {
        // The init breakpoint sits at n: evaluate tentatively, settle when
        // the area crosses Delta.
        st.stage = AbOptState::kPendingInit;
        parked = true;
      } else {
        const int64_t r = LargestEndpointWithin(kernel, i, n, dlt);
        cur = r >= i ? r : i;  // forced start when even [i, i] exceeds Delta
        // Dedup mirror of the fresh push guard (breakpoints.back() < cur):
        // the only possible back entry is a pushed zae, and cur >= zae
        // always, so the test is skipped exactly when cur == zae (already
        // folded above). A forced start implies zae < i (zero area is
        // within Delta), so it always tests.
        const bool zae_is_back =
            credit_fail_ && st.zae_settled && st.zae >= i && st.zae == cur;
        if (!zae_is_back) {
          FoldRelaxedTest(kernel, gen_options_, cur, &st.best_j,
                          &st.best_conf);
        }
        step = kStepChain;
      }
    }

    if (!parked) {
      // Chain from the last settled position. Each iteration probes the
      // frontier FIRST, so a binary search only ever runs (and settles)
      // when its result is provably below n; the loop exits at cur == n
      // only through a forced advance, which is settled too (the forcing
      // area(cur + 1) > target persists), so kChainEnd resumes exactly.
      while (cur < n) {
        const double target =
            std::max(kernel.SparseArea(cur), dlt) * growth;
        if (kernel.SparseArea(n) <= target) {
          st.stage = AbOptState::kPendingChain;
          st.cur = cur;
          parked = true;
          break;
        }
        int64_t next = LargestEndpointWithin(kernel, cur + 1, n, target);
        if (next < cur + 1) next = cur + 1;  // forced advance
        FoldRelaxedTest(kernel, gen_options_, next, &st.best_j,
                        &st.best_conf);
        cur = next;
      }
      if (!parked) {
        st.stage = AbOptState::kChainEnd;
        st.cur = n;
      }
    }

    int64_t cj = st.best_j;
    double cc = st.best_conf;
    if (tent_zp && n > i) {
      FoldZeroPrefix(kernel, gen_options_, growth, i, /*zae=*/n, n, &cj, &cc);
    }
    if (parked) {
      FoldRelaxedTest(kernel, gen_options_, n, &cj, &cc);
    }
    UpdateCandidate(i, cj >= i, i, cj, cc);
  }
}

// ---------------------------------------------------------------------------
// Exhaustive: every confidence test settles the batch it runs in, so old
// clean anchors scan only the appended suffix (old_n, n]. The fresh
// generator's per-block reverse scan + cross-block overwrite computes the
// largest qualifying j regardless of block boundaries, so resuming at
// old_n + 1 with re-based blocks folds identically.
// ---------------------------------------------------------------------------
void IncrementalDiscoverer::ProcessExhaustive(
    const series::CumulativeSeries::AppendResult& delta, int64_t dirty_begin) {
  const int64_t n = series_->n();
  const int64_t old_n = delta.old_n;
  ConfidenceKernel kernel(*eval_, gen_options_.type);
  constexpr int64_t kBatch = 512;
  double conf[kBatch];
  uint8_t valid[kBatch];
  for (int64_t i = 1; i <= n; ++i) {
    ExhState& st = exh_[static_cast<size_t>(i)];
    int64_t scan_from;
    if (i > old_n || i >= dirty_begin) {
      st = ExhState{};
      scan_from = i;
    } else {
      scan_from = old_n + 1;
    }
    kernel.BeginAnchor(i);
    for (int64_t j0 = scan_from; j0 <= n; j0 += kBatch) {
      const int64_t j1 = std::min<int64_t>(n, j0 + kBatch - 1);
      kernel.ConfidenceBatch(j0, j1, conf, valid);
      for (int64_t k = j1 - j0; k >= 0; --k) {
        if (valid[k] &&
            interval::PassesExactThreshold(conf[k], gen_options_)) {
          st.best_j = j0 + k;
          st.best_conf = conf[k];
          break;
        }
      }
    }
    UpdateCandidate(i, st.best_j >= i, i, st.best_j, st.best_conf);
  }
}

// ---------------------------------------------------------------------------
// NAB / NAB-opt: purely additive. An old right anchor's candidate is
// exactly unchanged under appends — its applicable schedule prefix and
// probe anchors are n-independent (entries below the first covering length
// are uncapped; the covering entry clamps to i = 1 under both the old and
// new cap) — so only the m new anchors walk. Balance-only (enforced at
// Create), hence never dirty; Delta is never consulted.
// ---------------------------------------------------------------------------
void IncrementalDiscoverer::ProcessNonAreaBased(
    const series::CumulativeSeries::AppendResult& delta) {
  const int64_t n = series_->n();
  const int64_t old_n = delta.old_n;
  const auto schedule =
      request_.algorithm == interval::AlgorithmKind::kNonAreaBased
          ? interval::NonAreaBasedGenerator::LengthSchedule::kGeometric
          : interval::NonAreaBasedGenerator::LengthSchedule::kRecursive;
  const std::vector<int64_t> lengths =
      interval::NonAreaBasedGenerator::MakeLengthSchedule(
          schedule, gen_options_.epsilon, n);

  ConfidenceKernel kernel(*eval_, gen_options_.type);
  const interval::internal::NabWalkContext ctx{&lengths, &gen_options_};
  interval::internal::NabWalkScratch scratch;
  interval::internal::WalkStepCounters counters;
  interval::internal::NabWalkState walk;
  for (int64_t j = old_n + 1; j <= n; ++j) {
    // The fresh sweep's descending first_covering cursor lands on the
    // first schedule entry >= j; lower_bound computes the same index
    // directly for the ascending anchor order here.
    const size_t first_covering = static_cast<size_t>(
        std::lower_bound(lengths.begin(), lengths.end(), j) -
        lengths.begin());
    kernel.BeginRightAnchor(j);
    walk.Begin(j, first_covering + 1);
    while (!walk.finished) {
      walk.Step(kernel, ctx, &scratch, &counters);
    }
    UpdateCandidate(j, walk.best_i >= 1, walk.best_i, j, walk.best_conf);
  }
}

void IncrementalDiscoverer::UpdateCandidate(int64_t anchor, bool valid,
                                            int64_t begin, int64_t end,
                                            double conf) {
  const size_t a = static_cast<size_t>(anchor);
  const bool was_valid = cand_valid_[a] != 0;
  if (valid == was_valid &&
      (!valid || (cand_begin_[a] == begin && cand_end_[a] == end))) {
    // Same interval — but a dirty re-walk can recompute the same (i, j)
    // under moved credit/debit baselines, so the confidence still tracks.
    if (valid) cand_conf_[a] = conf;
    return;
  }
  if (was_valid) ++stale_entries_;  // the anchor's live heap entry goes stale
  live_candidates_ += (valid ? 1 : 0) - (was_valid ? 1 : 0);
  cand_valid_[a] = valid ? 1 : 0;
  cand_begin_[a] = begin;
  cand_end_[a] = end;
  cand_conf_[a] = conf;
  ++cand_version_[a];
  ++stats_.candidates_extended;
  if (valid) {
    const interval::Interval iv{begin, end};
    pending_entries_.push_back(
        HeapEntry{iv.length(), iv, anchor, cand_version_[a], next_seq_++});
  }
}

void IncrementalDiscoverer::MaintainHeap() {
  // Persistent gains are interval lengths — exactly the seed gains of a
  // fresh cover against an empty Fenwick, and a valid upper bound for the
  // per-batch selection's stale-refresh invariant. Compact when stale
  // entries dominate; otherwise an O(log k) push per changed candidate.
  if (stale_entries_ * 2 > static_cast<int64_t>(heap_.size())) {
    std::vector<HeapEntry> live;
    live.reserve(heap_.size() + pending_entries_.size());
    for (const HeapEntry& e : heap_) {
      const size_t a = static_cast<size_t>(e.anchor);
      if (cand_valid_[a] != 0 && cand_version_[a] == e.version) {
        live.push_back(e);
      }
    }
    live.insert(live.end(), pending_entries_.begin(), pending_entries_.end());
    heap_ = std::move(live);
    std::make_heap(heap_.begin(), heap_.end(), EntryWorse<HeapEntry>);
    stale_entries_ = 0;
  } else {
    for (const HeapEntry& e : pending_entries_) {
      heap_.push_back(e);
      std::push_heap(heap_.begin(), heap_.end(), EntryWorse<HeapEntry>);
    }
  }
  pending_entries_.clear();
}

void IncrementalDiscoverer::RunWarmCover() {
  const int64_t n = series_->n();
  tableau_.rows.clear();
  tableau_.num_candidates = static_cast<uint64_t>(live_candidates_);
  tableau_.required = static_cast<int64_t>(
      std::ceil(request_.s_hat * static_cast<double>(n)));
  tableau_.covered = 0;
  if (tableau_.required <= 0 || live_candidates_ == 0) {
    // Fresh cover's early return (no selection, possibly satisfied by an
    // empty tableau when nothing is required).
    tableau_.support_satisfied = tableau_.covered >= tableau_.required;
    return;
  }

  CoveredFenwick fenwick(n);
  std::vector<int64_t> next_uncovered(static_cast<size_t>(n) + 2);
  for (size_t t = 0; t < next_uncovered.size(); ++t) {
    next_uncovered[t] = static_cast<int64_t>(t);
  }
  auto find_uncovered = [&next_uncovered](int64_t t) {
    while (next_uncovered[static_cast<size_t>(t)] != t) {
      next_uncovered[static_cast<size_t>(t)] =
          next_uncovered[static_cast<size_t>(
              next_uncovered[static_cast<size_t>(t)])];
      t = next_uncovered[static_cast<size_t>(t)];
    }
    return t;
  };

  // Selection runs on a COPY of the persistent heap: refreshed (coverage-
  // decayed) gains are valid only against this batch's Fenwick and must
  // not survive into the next batch, where coverage starts empty again.
  // Popping live entries in (gain desc, ByPosition asc) order with the
  // fresh loop's retire/refresh/pick logic reproduces
  // GreedyPartialSetCover's pick sequence; stale-version pops are skipped
  // before any side effect.
  std::vector<HeapEntry> heap = heap_;
  std::vector<int64_t> picked;
  while (tableau_.covered < tableau_.required && !heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), EntryWorse<HeapEntry>);
    HeapEntry top = heap.back();
    heap.pop_back();
    ++stats_.cover_warm_pops;
    const size_t a = static_cast<size_t>(top.anchor);
    if (cand_valid_[a] == 0 || cand_version_[a] != top.version) continue;

    const int64_t gain =
        top.iv.length() -
        (fenwick.Covered(top.iv.end) - fenwick.Covered(top.iv.begin - 1));
    CR_CHECK(gain <= top.gain);  // gains are monotone non-increasing
    if (gain <= 0) continue;     // fully covered by earlier picks; retire
    if (gain < top.gain) {
      top.gain = gain;
      heap.push_back(top);
      std::push_heap(heap.begin(), heap.end(), EntryWorse<HeapEntry>);
      continue;
    }

    picked.push_back(top.anchor);
    for (int64_t t = find_uncovered(top.iv.begin); t <= top.iv.end;
         t = find_uncovered(t + 1)) {
      fenwick.Mark(t);
      next_uncovered[static_cast<size_t>(t)] = t + 1;
      ++tableau_.covered;
    }
  }
  tableau_.support_satisfied = tableau_.covered >= tableau_.required;

  // Chosen intervals are pairwise distinct; ByPosition totally orders them
  // exactly as the fresh cover's result assembly does.
  std::sort(picked.begin(), picked.end(), [this](int64_t a, int64_t b) {
    const interval::Interval ia{cand_begin_[static_cast<size_t>(a)],
                                cand_end_[static_cast<size_t>(a)]};
    const interval::Interval ib{cand_begin_[static_cast<size_t>(b)],
                                cand_end_[static_cast<size_t>(b)]};
    return interval::ByPosition(ia, ib);
  });
  tableau_.rows.reserve(picked.size());
  for (const int64_t anchor : picked) {
    const size_t a = static_cast<size_t>(anchor);
    tableau_.rows.push_back(core::TableauRow{
        interval::Interval{cand_begin_[a], cand_end_[a]}, cand_conf_[a]});
  }
}

}  // namespace conservation::incr
