// IncrementalDiscoverer: tableau maintenance for append-only streams.
//
// DiscoverTableau (core/tableau.h) recomputes generation + cover from
// scratch; for an append-only series that repeats almost all of its work
// every batch. This engine maintains the tableau across AppendBatch calls
// in amortized o(full-run) time by exploiting how the generators' per-anchor
// tests behave under extension n -> n' (DESIGN.md §4g):
//
//   * Every generator emits at most one candidate per anchor, so a
//     per-anchor candidate store is a complete representation of the
//     candidate set, and candidates have pairwise-distinct positions.
//   * A per-anchor test (breakpoint search + confidence probe) is SETTLED
//     when its result provably cannot change under any extension: a level /
//     chain breakpoint strictly below the old n is settled forever (the
//     sparsification area is nondecreasing in j, so area(t+1) > T persists),
//     while a breakpoint AT the old n may extend. Settled confidence tests
//     fold into a per-anchor (best_j, best_conf) pair once and are never
//     re-evaluated; the at-most-one unsettled frontier test per anchor is
//     re-probed per batch in O(1) (is area(n') still within the frontier
//     threshold?) and binary-searched only when it settles.
//   * NAB/NAB-opt candidates for old right anchors are exactly unchanged
//     (their length schedule prefix and left-anchor probes are independent
//     of n), so only the m new anchors walk at all.
//   * The lazy-greedy cover warm-starts from a persistent heap of
//     length-gain entries (gain == interval length is exactly the seed gain
//     of a fresh run); per batch only changed candidates push new versioned
//     entries, selection runs on a copy with stale-version pops skipped,
//     and within-batch stale re-evaluations absorb the gain deltas. The
//     comparator is a strict total order on the position-distinct live
//     entries, so the pick sequence reproduces GreedyPartialSetCover's.
//
// Exactness contract: after every AppendBatch the maintained tableau is
// bit-identical to DiscoverTableau over the full series in the fields
// (rows, covered, required, support_satisfied, num_candidates).
// generation_stats / cover_stats / timings describe execution shape and are
// excluded. tests/incr_differential_test.cc enforces the contract across
// all five generators, models, tableau types, batch patterns, fresh-side
// thread counts and sketch settings.
//
// Correct-by-reset escape hatches (rare, counted in incr.* metrics):
//   * Delta (the area base unit) decreasing re-levels every AB/AB-opt
//     threshold ladder -> full per-anchor state rebuild (exhaustive and NAB
//     are Delta-independent).
//   * A credit/debit-model append can change SuffixMinGap(i) for old
//     anchors i >= first_changed_s; those anchors' baselines moved, so they
//     reset to fresh and re-walk (the balance model never dirties).
//
// Scope: sequential execution (the fresh side may use any thread count /
// sketch mode — candidates are bit-identical by those knobs' contracts);
// stop_on_full_cover is rejected (its emitted set depends on visit order,
// which incremental maintenance cannot reproduce); the sketch screen is not
// consulted on delta paths — the per-anchor frontier already restricts
// re-walks to exactly the anchors whose reachable suffix changed, which
// subsumes what a per-batch screen rebuild (O((n/block)^2)) would prune.
// The engine assumes B dominates A (paper §II; run series preprocessing
// first), which is what makes the sparsification areas monotone and the
// frontier O(1) probes sound — the same assumption the generators' binary
// searches already make.

#ifndef CONSERVATION_INCR_INCREMENTAL_H_
#define CONSERVATION_INCR_INCREMENTAL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/confidence.h"
#include "core/tableau.h"
#include "interval/generator.h"
#include "interval/interval.h"
#include "series/cumulative.h"
#include "series/sequence.h"
#include "series/store.h"
#include "util/status.h"

namespace conservation::incr {

// Cumulative counters for one discoverer (docs/OBSERVABILITY.md incr.*;
// the registry mirrors accumulate across discoverers).
struct IncrStats {
  // AppendBatch calls processed (the initial Create batch included).
  int64_t batches = 0;
  // Anchors whose stored candidate (validity or interval) changed this
  // lifetime — each pushed one new versioned entry into the warm heap.
  int64_t candidates_extended = 0;
  // Heap pops performed by the warm-started cover selections (the
  // incremental analogue of cover.heap_pops; includes stale-version skips).
  int64_t cover_warm_pops = 0;
  // Whole-state resets (Delta decreased under kMinPositiveCount).
  int64_t full_rebuilds = 0;
  // Old anchors re-walked because their SuffixMinGap changed (credit/debit).
  int64_t dirty_anchors = 0;
};

class IncrementalDiscoverer {
 public:
  // Validates the request exactly like DiscoverTableau (plus: rejects
  // stop_on_full_cover), then processes `initial` as the first batch. The
  // tableau is available immediately after Create.
  static util::Result<IncrementalDiscoverer> Create(
      const series::CountSequence& initial, const core::TableauRequest& request);

  IncrementalDiscoverer(IncrementalDiscoverer&&) = default;
  IncrementalDiscoverer& operator=(IncrementalDiscoverer&&) = default;

  // Appends m ticks (a[k], b[k] >= 0) and brings the tableau up to date.
  // Returns the maintained tableau (also available via tableau()).
  const core::Tableau& AppendBatch(const double* a, const double* b,
                                   int64_t m);
  const core::Tableau& AppendBatch(const std::vector<double>& a,
                                   const std::vector<double>& b);

  // Append-only mode (off by default): AppendBatch maintains the per-anchor
  // candidate state but defers heap maintenance and the warm-cover selection
  // — the expensive per-batch tail for small batches — until RefreshCover().
  // Between refreshes tableau() is the last refreshed snapshot (stale by
  // construction); at every refresh point the tableau is bit-identical to
  // what non-deferred maintenance (and hence from-scratch discovery) would
  // produce, because the candidate store and pending heap entries carry the
  // complete delta. Built for the serving daemon, which pays cover on a
  // periodic scheduler tick instead of on every small batch.
  void SetAppendOnly(bool append_only) { append_only_ = append_only; }
  bool append_only() const { return append_only_; }
  // True when batches were applied since the last cover refresh.
  bool cover_stale() const { return cover_stale_; }
  // Brings the tableau up to date with every applied batch; no-op when the
  // cover is already fresh. Returns the refreshed tableau.
  const core::Tableau& RefreshCover();

  const core::Tableau& tableau() const { return tableau_; }
  const series::CumulativeSeries& series() const { return *series_; }
  const core::TableauRequest& request() const { return request_; }
  int64_t n() const { return series_->n(); }
  const IncrStats& stats() const { return stats_; }

  // Optional columnar-arena maintenance: when enabled with a reserved
  // capacity, every AppendBatch also grows a SeriesStore in place
  // (series/store.h), keeping the sketch tier current for other tenants of
  // the arena. The store is byte-identical to a fresh Build at the same
  // capacity. Returns false when the capacity cannot hold the current n.
  bool AttachStore(int64_t capacity,
                   int64_t block = series::SeriesSketch::kDefaultBlock);
  const series::SeriesStore* store() const {
    return store_.empty() ? nullptr : &store_;
  }

 private:
  // Per-anchor resume state for the area-based level walk. `level` is the
  // stopped level (kStopped) or the next unprocessed one (kExhausted).
  struct AbState {
    enum : uint8_t { kFresh = 0, kStopped = 1, kExhausted = 2 };
    uint8_t stage = kFresh;
    uint32_t level = 0;
    bool zae_settled = false;
    int64_t zae = 0;  // settled zero-area end (credit-fail zero prefix)
    int64_t best_j = 0;
    double best_conf = 0.0;
  };

  // Per-anchor resume state for the AB-opt breakpoint chain. O(1) per
  // anchor: pending search parameters re-derive from `cur` (the last
  // settled chain position), so the walk never stores its breakpoint list.
  struct AbOptState {
    enum : uint8_t {
      kFresh = 0,        // never walked, or sticky (zero-area suffix == n)
      kPendingInit = 1,  // init search's frontier result sits at n
      kPendingChain = 2,  // chain search from settled `cur` sits at n
      kChainEnd = 3,      // chain settled exactly at n; resumes from cur
    };
    uint8_t stage = kFresh;
    bool zae_settled = false;
    int64_t zae = 0;
    int64_t cur = 0;
    int64_t best_j = 0;
    double best_conf = 0.0;
  };

  // Exhaustive: every test settles the batch it runs in.
  struct ExhState {
    int64_t best_j = 0;
    double best_conf = 0.0;
  };

  // Warm-cover heap entry. `gain` is the interval length — exactly the
  // gain a fresh cover seeds against an empty Fenwick, and a persistent
  // upper bound thereafter. Within-batch refreshed gains live only in the
  // per-selection copy, never here.
  struct HeapEntry {
    int64_t gain = 0;
    interval::Interval iv;
    int64_t anchor = 0;
    uint32_t version = 0;
    uint64_t seq = 0;
  };

  IncrementalDiscoverer(const series::CountSequence& initial,
                        const core::TableauRequest& request);

  // One maintenance pass over the append described by `delta` (for the
  // Create batch, old_n == 0 and every anchor is new).
  void ProcessBatch(const series::CumulativeSeries::AppendResult& delta);

  void ResetAllAnchorStates();
  void GrowStateArrays(int64_t n);

  // Per-algorithm delta generation. Each updates the candidate store for
  // the anchors it touches and records changes via UpdateCandidate.
  void ProcessAreaBased(const series::CumulativeSeries::AppendResult& delta,
                        int64_t dirty_begin);
  void ProcessAreaBasedOpt(
      const series::CumulativeSeries::AppendResult& delta,
      int64_t dirty_begin);
  void ProcessExhaustive(const series::CumulativeSeries::AppendResult& delta,
                         int64_t dirty_begin);
  void ProcessNonAreaBased(
      const series::CumulativeSeries::AppendResult& delta);

  // Stores anchor's candidate for this batch ((0,0) j/i == no candidate)
  // and, when validity or interval changed, bumps the anchor version and
  // queues a heap push.
  void UpdateCandidate(int64_t anchor, bool valid, int64_t begin, int64_t end,
                       double conf);

  void MaintainHeap();
  void RunWarmCover();

  core::TableauRequest request_;
  interval::GeneratorOptions gen_options_;  // request mirror, sequential
  // Held by pointer: eval_ keeps the series address, which must survive
  // moves of the discoverer.
  std::unique_ptr<series::CumulativeSeries> series_;
  std::unique_ptr<core::ConfidenceEvaluator> eval_;
  series::SeriesStore store_;  // empty unless AttachStore
  int64_t store_block_ = 0;

  double prev_delta_ = 0.0;
  bool credit_fail_ = false;
  bool fail_type_ = false;
  bool append_only_ = false;
  bool cover_stale_ = false;

  // 1-based per-anchor state (index 0 unused); only the request's
  // algorithm's vector is populated.
  std::vector<AbState> ab_;
  std::vector<AbOptState> abopt_;
  std::vector<ExhState> exh_;

  // 1-based per-anchor candidate store. For left-anchored algorithms the
  // anchor is the interval begin; for NAB it is the end.
  std::vector<uint8_t> cand_valid_;
  std::vector<int64_t> cand_begin_;
  std::vector<int64_t> cand_end_;
  std::vector<double> cand_conf_;
  std::vector<uint32_t> cand_version_;
  int64_t live_candidates_ = 0;

  std::vector<HeapEntry> heap_;  // persistent, heap-ordered
  std::vector<HeapEntry> pending_entries_;
  int64_t stale_entries_ = 0;
  uint64_t next_seq_ = 0;

  core::Tableau tableau_;
  IncrStats stats_;
};

}  // namespace conservation::incr

#endif  // CONSERVATION_INCR_INCREMENTAL_H_
