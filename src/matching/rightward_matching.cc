#include "matching/rightward_matching.h"

#include <cmath>
#include <deque>

#include "util/string_util.h"

namespace conservation::matching {

bool RightwardMatchingExists(const series::CumulativeSeries& series,
                             double tolerance) {
  const int64_t n = series.n();
  if (std::fabs(series.A(n) - series.B(n)) > tolerance) return false;
  return series.Dominates(tolerance);
}

double RightwardMatchingDelay(const series::CumulativeSeries& series) {
  CR_CHECK(RightwardMatchingExists(series));
  return series.TotalDelay();
}

util::Result<std::vector<MatchGroup>> BuildRightwardMatching(
    const series::CountSequence& counts, MatchPolicy policy) {
  const series::CumulativeSeries series(counts);
  const int64_t n = series.n();
  if (!series.Dominates()) {
    return util::Status::FailedPrecondition(
        "no rightward perfect matching: B does not dominate A (Lemma 1)");
  }
  if (std::fabs(series.A(n) - series.B(n)) > 1e-9) {
    return util::Status::FailedPrecondition(util::StrFormat(
        "no rightward perfect matching: A_n=%g != B_n=%g (Lemma 1)",
        series.A(n), series.B(n)));
  }

  // Pending inbound events, as (arrival time, remaining multiplicity).
  // FIFO consumes from the front, LIFO from the back.
  struct Pending {
    int64_t time;
    double remaining;
  };
  std::deque<Pending> pending;
  std::vector<MatchGroup> matching;

  for (int64_t t = 1; t <= n; ++t) {
    const double arrivals = counts.b(t);
    if (arrivals > 0.0) pending.push_back(Pending{t, arrivals});

    double departures = counts.a(t);
    while (departures > 1e-12) {
      // Dominance guarantees enough pending inbound mass.
      CR_CHECK(!pending.empty());
      Pending& source =
          policy == MatchPolicy::kFifo ? pending.front() : pending.back();
      const double used = std::min(departures, source.remaining);
      matching.push_back(MatchGroup{source.time, t, used});
      source.remaining -= used;
      departures -= used;
      if (source.remaining <= 1e-12) {
        if (policy == MatchPolicy::kFifo) {
          pending.pop_front();
        } else {
          pending.pop_back();
        }
      }
    }
  }
  return matching;
}

double MatchingDelay(const std::vector<MatchGroup>& matching) {
  double delay = 0.0;
  for (const MatchGroup& group : matching) delay += group.Delay();
  return delay;
}

}  // namespace conservation::matching
