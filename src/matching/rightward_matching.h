// Rightward perfect matchings between anonymous inbound/outbound events
// (paper §II, Lemmas 1-2).
//
// A rightward perfect matching pairs every inbound event with an outbound
// event occurring no earlier. Lemma 1: such a matching exists iff A_n = B_n
// and A_l <= B_l for all l. Lemma 2: when it exists, *every* rightward
// perfect matching has the same total delay, sum_l (B_l - A_l) — the fact
// that grounds the confidence definitions.
//
// This module constructs explicit matchings under different pairing policies
// (FIFO, LIFO) so that the delay-invariance theorem can be exercised rather
// than assumed; the examples also use it to report concrete matched pairs.

#ifndef CONSERVATION_MATCHING_RIGHTWARD_MATCHING_H_
#define CONSERVATION_MATCHING_RIGHTWARD_MATCHING_H_

#include <cstdint>
#include <vector>

#include "series/cumulative.h"
#include "series/sequence.h"
#include "util/status.h"

namespace conservation::matching {

// True iff a rightward perfect matching exists (Lemma 1).
bool RightwardMatchingExists(const series::CumulativeSeries& series,
                             double tolerance = 1e-9);

// The delay of every rightward perfect matching, sum_l (B_l - A_l)
// (Lemma 2). CR_CHECKs that the matching exists.
double RightwardMatchingDelay(const series::CumulativeSeries& series);

// A batch of matched events: `count` inbound events at `inbound_time` paired
// with outbound events at `outbound_time` (>= inbound_time). Batching keeps
// the representation compact for large integer counts.
struct MatchGroup {
  int64_t inbound_time = 0;
  int64_t outbound_time = 0;
  double count = 0.0;

  double Delay() const {
    return count * static_cast<double>(outbound_time - inbound_time);
  }
};

enum class MatchPolicy {
  // Match each outbound event to the earliest waiting inbound event.
  kFifo,
  // Match each outbound event to the latest waiting inbound event.
  kLifo,
};

// Builds an explicit rightward perfect matching, or an error when none
// exists (Lemma 1 conditions violated). Works for fractional counts too:
// groups carry fractional multiplicities.
util::Result<std::vector<MatchGroup>> BuildRightwardMatching(
    const series::CountSequence& counts, MatchPolicy policy);

// Total delay of an explicit matching.
double MatchingDelay(const std::vector<MatchGroup>& matching);

}  // namespace conservation::matching

#endif  // CONSERVATION_MATCHING_RIGHTWARD_MATCHING_H_
