file(REMOVE_RECURSE
  "CMakeFiles/multi_resolution_test.dir/multi_resolution_test.cc.o"
  "CMakeFiles/multi_resolution_test.dir/multi_resolution_test.cc.o.d"
  "multi_resolution_test"
  "multi_resolution_test.pdb"
  "multi_resolution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_resolution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
