# Empty compiler generated dependencies file for resample_compare_segmentation_test.
# This may be replaced when dependencies are built.
