file(REMOVE_RECURSE
  "CMakeFiles/resample_compare_segmentation_test.dir/resample_compare_segmentation_test.cc.o"
  "CMakeFiles/resample_compare_segmentation_test.dir/resample_compare_segmentation_test.cc.o.d"
  "resample_compare_segmentation_test"
  "resample_compare_segmentation_test.pdb"
  "resample_compare_segmentation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resample_compare_segmentation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
