file(REMOVE_RECURSE
  "CMakeFiles/generator_guarantees_test.dir/generator_guarantees_test.cc.o"
  "CMakeFiles/generator_guarantees_test.dir/generator_guarantees_test.cc.o.d"
  "generator_guarantees_test"
  "generator_guarantees_test.pdb"
  "generator_guarantees_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generator_guarantees_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
