# Empty compiler generated dependencies file for generator_guarantees_test.
# This may be replaced when dependencies are built.
