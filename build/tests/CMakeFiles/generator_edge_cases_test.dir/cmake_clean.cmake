file(REMOVE_RECURSE
  "CMakeFiles/generator_edge_cases_test.dir/generator_edge_cases_test.cc.o"
  "CMakeFiles/generator_edge_cases_test.dir/generator_edge_cases_test.cc.o.d"
  "generator_edge_cases_test"
  "generator_edge_cases_test.pdb"
  "generator_edge_cases_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generator_edge_cases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
