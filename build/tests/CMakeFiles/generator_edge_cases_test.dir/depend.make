# Empty dependencies file for generator_edge_cases_test.
# This may be replaced when dependencies are built.
