
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/report_test.cc" "tests/CMakeFiles/report_test.dir/report_test.cc.o" "gcc" "tests/CMakeFiles/report_test.dir/report_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/matching/CMakeFiles/cr_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/mining/CMakeFiles/cr_mining.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/cr_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/cr_io.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/cr_network.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cover/CMakeFiles/cr_cover.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/cr_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/interval/CMakeFiles/cr_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cr_core_base.dir/DependInfo.cmake"
  "/root/repo/build/src/series/CMakeFiles/cr_series.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
