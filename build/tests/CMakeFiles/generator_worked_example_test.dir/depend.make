# Empty dependencies file for generator_worked_example_test.
# This may be replaced when dependencies are built.
