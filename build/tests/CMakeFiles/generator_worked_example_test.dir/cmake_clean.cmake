file(REMOVE_RECURSE
  "CMakeFiles/generator_worked_example_test.dir/generator_worked_example_test.cc.o"
  "CMakeFiles/generator_worked_example_test.dir/generator_worked_example_test.cc.o.d"
  "generator_worked_example_test"
  "generator_worked_example_test.pdb"
  "generator_worked_example_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generator_worked_example_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
