file(REMOVE_RECURSE
  "CMakeFiles/power_grid_test.dir/power_grid_test.cc.o"
  "CMakeFiles/power_grid_test.dir/power_grid_test.cc.o.d"
  "power_grid_test"
  "power_grid_test.pdb"
  "power_grid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
