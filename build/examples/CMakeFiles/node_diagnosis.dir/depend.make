# Empty dependencies file for node_diagnosis.
# This may be replaced when dependencies are built.
