file(REMOVE_RECURSE
  "CMakeFiles/node_diagnosis.dir/node_diagnosis.cpp.o"
  "CMakeFiles/node_diagnosis.dir/node_diagnosis.cpp.o.d"
  "node_diagnosis"
  "node_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
