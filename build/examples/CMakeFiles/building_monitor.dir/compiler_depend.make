# Empty compiler generated dependencies file for building_monitor.
# This may be replaced when dependencies are built.
