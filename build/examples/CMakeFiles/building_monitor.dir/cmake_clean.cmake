file(REMOVE_RECURSE
  "CMakeFiles/building_monitor.dir/building_monitor.cpp.o"
  "CMakeFiles/building_monitor.dir/building_monitor.cpp.o.d"
  "building_monitor"
  "building_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/building_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
