# Empty dependencies file for grid_audit.
# This may be replaced when dependencies are built.
