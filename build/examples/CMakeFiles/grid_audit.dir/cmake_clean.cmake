file(REMOVE_RECURSE
  "CMakeFiles/grid_audit.dir/grid_audit.cpp.o"
  "CMakeFiles/grid_audit.dir/grid_audit.cpp.o.d"
  "grid_audit"
  "grid_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
