file(REMOVE_RECURSE
  "CMakeFiles/credit_card_analysis.dir/credit_card_analysis.cpp.o"
  "CMakeFiles/credit_card_analysis.dir/credit_card_analysis.cpp.o.d"
  "credit_card_analysis"
  "credit_card_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/credit_card_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
