# Empty dependencies file for credit_card_analysis.
# This may be replaced when dependencies are built.
