# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_credit_card_analysis "/root/repo/build/examples/credit_card_analysis")
set_tests_properties(example_credit_card_analysis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_building_monitor "/root/repo/build/examples/building_monitor")
set_tests_properties(example_building_monitor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_network_audit "/root/repo/build/examples/network_audit")
set_tests_properties(example_network_audit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_node_diagnosis "/root/repo/build/examples/node_diagnosis")
set_tests_properties(example_node_diagnosis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_live_monitor "/root/repo/build/examples/live_monitor")
set_tests_properties(example_live_monitor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_grid_audit "/root/repo/build/examples/grid_audit")
set_tests_properties(example_grid_audit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_traffic_study "/root/repo/build/examples/traffic_study")
set_tests_properties(example_traffic_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
