# Empty compiler generated dependencies file for bench_fig8_fail_ab_vs_nab.
# This may be replaced when dependencies are built.
