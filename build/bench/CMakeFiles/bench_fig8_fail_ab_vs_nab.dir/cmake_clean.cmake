file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_fail_ab_vs_nab.dir/bench_fig8_fail_ab_vs_nab.cc.o"
  "CMakeFiles/bench_fig8_fail_ab_vs_nab.dir/bench_fig8_fail_ab_vs_nab.cc.o.d"
  "bench_fig8_fail_ab_vs_nab"
  "bench_fig8_fail_ab_vs_nab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_fail_ab_vs_nab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
