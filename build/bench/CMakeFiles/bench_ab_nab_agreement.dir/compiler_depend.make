# Empty compiler generated dependencies file for bench_ab_nab_agreement.
# This may be replaced when dependencies are built.
