file(REMOVE_RECURSE
  "CMakeFiles/bench_ab_nab_agreement.dir/bench_ab_nab_agreement.cc.o"
  "CMakeFiles/bench_ab_nab_agreement.dir/bench_ab_nab_agreement.cc.o.d"
  "bench_ab_nab_agreement"
  "bench_ab_nab_agreement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ab_nab_agreement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
