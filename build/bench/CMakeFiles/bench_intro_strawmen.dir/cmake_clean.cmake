file(REMOVE_RECURSE
  "CMakeFiles/bench_intro_strawmen.dir/bench_intro_strawmen.cc.o"
  "CMakeFiles/bench_intro_strawmen.dir/bench_intro_strawmen.cc.o.d"
  "bench_intro_strawmen"
  "bench_intro_strawmen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intro_strawmen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
