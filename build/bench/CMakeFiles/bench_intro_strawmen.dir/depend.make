# Empty dependencies file for bench_intro_strawmen.
# This may be replaced when dependencies are built.
