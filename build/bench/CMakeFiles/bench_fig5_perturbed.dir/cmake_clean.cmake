file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_perturbed.dir/bench_fig5_perturbed.cc.o"
  "CMakeFiles/bench_fig5_perturbed.dir/bench_fig5_perturbed.cc.o.d"
  "bench_fig5_perturbed"
  "bench_fig5_perturbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_perturbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
