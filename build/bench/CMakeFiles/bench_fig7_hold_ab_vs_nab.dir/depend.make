# Empty dependencies file for bench_fig7_hold_ab_vs_nab.
# This may be replaced when dependencies are built.
