# Empty dependencies file for bench_fig10_ab_opt_vs_nab_opt.
# This may be replaced when dependencies are built.
