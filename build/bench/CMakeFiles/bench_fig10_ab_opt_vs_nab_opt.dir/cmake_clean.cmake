file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_ab_opt_vs_nab_opt.dir/bench_fig10_ab_opt_vs_nab_opt.cc.o"
  "CMakeFiles/bench_fig10_ab_opt_vs_nab_opt.dir/bench_fig10_ab_opt_vs_nab_opt.cc.o.d"
  "bench_fig10_ab_opt_vs_nab_opt"
  "bench_fig10_ab_opt_vs_nab_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_ab_opt_vs_nab_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
