# Empty compiler generated dependencies file for bench_table1_people_count.
# This may be replaced when dependencies are built.
