file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_credit_card.dir/bench_fig3_credit_card.cc.o"
  "CMakeFiles/bench_fig3_credit_card.dir/bench_fig3_credit_card.cc.o.d"
  "bench_fig3_credit_card"
  "bench_fig3_credit_card.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_credit_card.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
