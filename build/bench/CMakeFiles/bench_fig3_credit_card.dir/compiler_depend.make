# Empty compiler generated dependencies file for bench_fig3_credit_card.
# This may be replaced when dependencies are built.
