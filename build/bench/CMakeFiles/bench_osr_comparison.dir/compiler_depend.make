# Empty compiler generated dependencies file for bench_osr_comparison.
# This may be replaced when dependencies are built.
