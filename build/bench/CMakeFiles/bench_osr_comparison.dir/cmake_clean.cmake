file(REMOVE_RECURSE
  "CMakeFiles/bench_osr_comparison.dir/bench_osr_comparison.cc.o"
  "CMakeFiles/bench_osr_comparison.dir/bench_osr_comparison.cc.o.d"
  "bench_osr_comparison"
  "bench_osr_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_osr_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
