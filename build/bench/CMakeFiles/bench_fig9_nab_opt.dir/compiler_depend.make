# Empty compiler generated dependencies file for bench_fig9_nab_opt.
# This may be replaced when dependencies are built.
