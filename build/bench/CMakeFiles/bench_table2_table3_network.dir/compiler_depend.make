# Empty compiler generated dependencies file for bench_table2_table3_network.
# This may be replaced when dependencies are built.
