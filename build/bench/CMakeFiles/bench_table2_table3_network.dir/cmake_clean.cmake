file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_table3_network.dir/bench_table2_table3_network.cc.o"
  "CMakeFiles/bench_table2_table3_network.dir/bench_table2_table3_network.cc.o.d"
  "bench_table2_table3_network"
  "bench_table2_table3_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_table3_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
