# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_fig3 "/root/repo/build/bench/bench_fig3_credit_card")
set_tests_properties(bench_smoke_fig3 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;29;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig5 "/root/repo/build/bench/bench_fig5_perturbed" "--n=400")
set_tests_properties(bench_smoke_fig5 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;30;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig7 "/root/repo/build/bench/bench_fig7_hold_ab_vs_nab" "--n=20000")
set_tests_properties(bench_smoke_fig7 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig8 "/root/repo/build/bench/bench_fig8_fail_ab_vs_nab" "--n=10000")
set_tests_properties(bench_smoke_fig8 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;32;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig9 "/root/repo/build/bench/bench_fig9_nab_opt" "--n=10000" "--min_eps=0.01")
set_tests_properties(bench_smoke_fig9 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig10 "/root/repo/build/bench/bench_fig10_ab_opt_vs_nab_opt" "--n=10000" "--min_eps=0.03")
set_tests_properties(bench_smoke_fig10 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;34;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig6 "/root/repo/build/bench/bench_fig6_scalability" "--jobs_n=8000" "--tcp_n=4000" "--naive_max=4000")
set_tests_properties(bench_smoke_fig6 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;35;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table2 "/root/repo/build/bench/bench_table2_table3_network" "--num_clean=2" "--n=1000")
set_tests_properties(bench_smoke_table2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;36;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_agreement "/root/repo/build/bench/bench_ab_nab_agreement" "--tcp_n=4000")
set_tests_properties(bench_smoke_agreement PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;37;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_strawmen "/root/repo/build/bench/bench_intro_strawmen")
set_tests_properties(bench_smoke_strawmen PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
