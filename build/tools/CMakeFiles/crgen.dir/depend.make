# Empty dependencies file for crgen.
# This may be replaced when dependencies are built.
