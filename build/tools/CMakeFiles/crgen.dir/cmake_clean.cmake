file(REMOVE_RECURSE
  "CMakeFiles/crgen.dir/crgen.cc.o"
  "CMakeFiles/crgen.dir/crgen.cc.o.d"
  "crgen"
  "crgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
