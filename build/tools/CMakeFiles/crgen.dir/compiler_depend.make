# Empty compiler generated dependencies file for crgen.
# This may be replaced when dependencies are built.
