# Empty dependencies file for crdiscover.
# This may be replaced when dependencies are built.
