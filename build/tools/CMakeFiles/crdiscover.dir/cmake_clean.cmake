file(REMOVE_RECURSE
  "CMakeFiles/crdiscover.dir/crdiscover.cc.o"
  "CMakeFiles/crdiscover.dir/crdiscover.cc.o.d"
  "crdiscover"
  "crdiscover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crdiscover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
