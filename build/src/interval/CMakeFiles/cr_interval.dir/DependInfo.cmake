
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interval/area_based.cc" "src/interval/CMakeFiles/cr_interval.dir/area_based.cc.o" "gcc" "src/interval/CMakeFiles/cr_interval.dir/area_based.cc.o.d"
  "/root/repo/src/interval/area_based_opt.cc" "src/interval/CMakeFiles/cr_interval.dir/area_based_opt.cc.o" "gcc" "src/interval/CMakeFiles/cr_interval.dir/area_based_opt.cc.o.d"
  "/root/repo/src/interval/compare.cc" "src/interval/CMakeFiles/cr_interval.dir/compare.cc.o" "gcc" "src/interval/CMakeFiles/cr_interval.dir/compare.cc.o.d"
  "/root/repo/src/interval/exhaustive.cc" "src/interval/CMakeFiles/cr_interval.dir/exhaustive.cc.o" "gcc" "src/interval/CMakeFiles/cr_interval.dir/exhaustive.cc.o.d"
  "/root/repo/src/interval/generator.cc" "src/interval/CMakeFiles/cr_interval.dir/generator.cc.o" "gcc" "src/interval/CMakeFiles/cr_interval.dir/generator.cc.o.d"
  "/root/repo/src/interval/interval.cc" "src/interval/CMakeFiles/cr_interval.dir/interval.cc.o" "gcc" "src/interval/CMakeFiles/cr_interval.dir/interval.cc.o.d"
  "/root/repo/src/interval/non_area_based.cc" "src/interval/CMakeFiles/cr_interval.dir/non_area_based.cc.o" "gcc" "src/interval/CMakeFiles/cr_interval.dir/non_area_based.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cr_core_base.dir/DependInfo.cmake"
  "/root/repo/build/src/series/CMakeFiles/cr_series.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
