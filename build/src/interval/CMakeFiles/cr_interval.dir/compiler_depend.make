# Empty compiler generated dependencies file for cr_interval.
# This may be replaced when dependencies are built.
