file(REMOVE_RECURSE
  "CMakeFiles/cr_interval.dir/area_based.cc.o"
  "CMakeFiles/cr_interval.dir/area_based.cc.o.d"
  "CMakeFiles/cr_interval.dir/area_based_opt.cc.o"
  "CMakeFiles/cr_interval.dir/area_based_opt.cc.o.d"
  "CMakeFiles/cr_interval.dir/compare.cc.o"
  "CMakeFiles/cr_interval.dir/compare.cc.o.d"
  "CMakeFiles/cr_interval.dir/exhaustive.cc.o"
  "CMakeFiles/cr_interval.dir/exhaustive.cc.o.d"
  "CMakeFiles/cr_interval.dir/generator.cc.o"
  "CMakeFiles/cr_interval.dir/generator.cc.o.d"
  "CMakeFiles/cr_interval.dir/interval.cc.o"
  "CMakeFiles/cr_interval.dir/interval.cc.o.d"
  "CMakeFiles/cr_interval.dir/non_area_based.cc.o"
  "CMakeFiles/cr_interval.dir/non_area_based.cc.o.d"
  "libcr_interval.a"
  "libcr_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cr_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
