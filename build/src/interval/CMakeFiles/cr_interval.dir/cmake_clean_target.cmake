file(REMOVE_RECURSE
  "libcr_interval.a"
)
