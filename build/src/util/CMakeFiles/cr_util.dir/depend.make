# Empty dependencies file for cr_util.
# This may be replaced when dependencies are built.
