file(REMOVE_RECURSE
  "CMakeFiles/cr_util.dir/flags.cc.o"
  "CMakeFiles/cr_util.dir/flags.cc.o.d"
  "CMakeFiles/cr_util.dir/status.cc.o"
  "CMakeFiles/cr_util.dir/status.cc.o.d"
  "CMakeFiles/cr_util.dir/string_util.cc.o"
  "CMakeFiles/cr_util.dir/string_util.cc.o.d"
  "libcr_util.a"
  "libcr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
