file(REMOVE_RECURSE
  "libcr_util.a"
)
