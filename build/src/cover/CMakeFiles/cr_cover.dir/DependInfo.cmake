
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cover/partial_set_cover.cc" "src/cover/CMakeFiles/cr_cover.dir/partial_set_cover.cc.o" "gcc" "src/cover/CMakeFiles/cr_cover.dir/partial_set_cover.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/interval/CMakeFiles/cr_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cr_core_base.dir/DependInfo.cmake"
  "/root/repo/build/src/series/CMakeFiles/cr_series.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
