file(REMOVE_RECURSE
  "CMakeFiles/cr_cover.dir/partial_set_cover.cc.o"
  "CMakeFiles/cr_cover.dir/partial_set_cover.cc.o.d"
  "libcr_cover.a"
  "libcr_cover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cr_cover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
