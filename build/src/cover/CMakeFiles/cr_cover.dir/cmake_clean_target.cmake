file(REMOVE_RECURSE
  "libcr_cover.a"
)
