# Empty compiler generated dependencies file for cr_cover.
# This may be replaced when dependencies are built.
