
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/csv.cc" "src/io/CMakeFiles/cr_io.dir/csv.cc.o" "gcc" "src/io/CMakeFiles/cr_io.dir/csv.cc.o.d"
  "/root/repo/src/io/json.cc" "src/io/CMakeFiles/cr_io.dir/json.cc.o" "gcc" "src/io/CMakeFiles/cr_io.dir/json.cc.o.d"
  "/root/repo/src/io/table_printer.cc" "src/io/CMakeFiles/cr_io.dir/table_printer.cc.o" "gcc" "src/io/CMakeFiles/cr_io.dir/table_printer.cc.o.d"
  "/root/repo/src/io/timeline.cc" "src/io/CMakeFiles/cr_io.dir/timeline.cc.o" "gcc" "src/io/CMakeFiles/cr_io.dir/timeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/series/CMakeFiles/cr_series.dir/DependInfo.cmake"
  "/root/repo/build/src/interval/CMakeFiles/cr_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cover/CMakeFiles/cr_cover.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cr_core_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
