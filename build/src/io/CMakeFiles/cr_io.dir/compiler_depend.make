# Empty compiler generated dependencies file for cr_io.
# This may be replaced when dependencies are built.
