file(REMOVE_RECURSE
  "CMakeFiles/cr_io.dir/csv.cc.o"
  "CMakeFiles/cr_io.dir/csv.cc.o.d"
  "CMakeFiles/cr_io.dir/json.cc.o"
  "CMakeFiles/cr_io.dir/json.cc.o.d"
  "CMakeFiles/cr_io.dir/table_printer.cc.o"
  "CMakeFiles/cr_io.dir/table_printer.cc.o.d"
  "CMakeFiles/cr_io.dir/timeline.cc.o"
  "CMakeFiles/cr_io.dir/timeline.cc.o.d"
  "libcr_io.a"
  "libcr_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cr_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
