file(REMOVE_RECURSE
  "libcr_io.a"
)
