file(REMOVE_RECURSE
  "libcr_stream.a"
)
