file(REMOVE_RECURSE
  "CMakeFiles/cr_stream.dir/multi_window_monitor.cc.o"
  "CMakeFiles/cr_stream.dir/multi_window_monitor.cc.o.d"
  "CMakeFiles/cr_stream.dir/streaming_monitor.cc.o"
  "CMakeFiles/cr_stream.dir/streaming_monitor.cc.o.d"
  "libcr_stream.a"
  "libcr_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cr_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
