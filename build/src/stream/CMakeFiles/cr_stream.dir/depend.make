# Empty dependencies file for cr_stream.
# This may be replaced when dependencies are built.
