file(REMOVE_RECURSE
  "CMakeFiles/cr_matching.dir/rightward_matching.cc.o"
  "CMakeFiles/cr_matching.dir/rightward_matching.cc.o.d"
  "libcr_matching.a"
  "libcr_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cr_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
