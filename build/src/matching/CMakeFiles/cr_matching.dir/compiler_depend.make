# Empty compiler generated dependencies file for cr_matching.
# This may be replaced when dependencies are built.
