file(REMOVE_RECURSE
  "libcr_matching.a"
)
