file(REMOVE_RECURSE
  "libcr_mining.a"
)
