file(REMOVE_RECURSE
  "CMakeFiles/cr_mining.dir/divergence.cc.o"
  "CMakeFiles/cr_mining.dir/divergence.cc.o.d"
  "CMakeFiles/cr_mining.dir/support_rules.cc.o"
  "CMakeFiles/cr_mining.dir/support_rules.cc.o.d"
  "libcr_mining.a"
  "libcr_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cr_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
