# Empty dependencies file for cr_mining.
# This may be replaced when dependencies are built.
