# Empty compiler generated dependencies file for cr_network.
# This may be replaced when dependencies are built.
