file(REMOVE_RECURSE
  "libcr_network.a"
)
