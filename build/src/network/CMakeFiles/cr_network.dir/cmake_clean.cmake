file(REMOVE_RECURSE
  "CMakeFiles/cr_network.dir/node_monitor.cc.o"
  "CMakeFiles/cr_network.dir/node_monitor.cc.o.d"
  "CMakeFiles/cr_network.dir/simulator.cc.o"
  "CMakeFiles/cr_network.dir/simulator.cc.o.d"
  "libcr_network.a"
  "libcr_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cr_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
