file(REMOVE_RECURSE
  "CMakeFiles/cr_datagen.dir/credit_card.cc.o"
  "CMakeFiles/cr_datagen.dir/credit_card.cc.o.d"
  "CMakeFiles/cr_datagen.dir/intersection.cc.o"
  "CMakeFiles/cr_datagen.dir/intersection.cc.o.d"
  "CMakeFiles/cr_datagen.dir/job_log.cc.o"
  "CMakeFiles/cr_datagen.dir/job_log.cc.o.d"
  "CMakeFiles/cr_datagen.dir/people_count.cc.o"
  "CMakeFiles/cr_datagen.dir/people_count.cc.o.d"
  "CMakeFiles/cr_datagen.dir/perturb.cc.o"
  "CMakeFiles/cr_datagen.dir/perturb.cc.o.d"
  "CMakeFiles/cr_datagen.dir/power_grid.cc.o"
  "CMakeFiles/cr_datagen.dir/power_grid.cc.o.d"
  "CMakeFiles/cr_datagen.dir/router.cc.o"
  "CMakeFiles/cr_datagen.dir/router.cc.o.d"
  "CMakeFiles/cr_datagen.dir/tcp_trace.cc.o"
  "CMakeFiles/cr_datagen.dir/tcp_trace.cc.o.d"
  "libcr_datagen.a"
  "libcr_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cr_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
