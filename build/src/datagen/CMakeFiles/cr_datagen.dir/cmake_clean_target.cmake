file(REMOVE_RECURSE
  "libcr_datagen.a"
)
