# Empty dependencies file for cr_datagen.
# This may be replaced when dependencies are built.
