
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/credit_card.cc" "src/datagen/CMakeFiles/cr_datagen.dir/credit_card.cc.o" "gcc" "src/datagen/CMakeFiles/cr_datagen.dir/credit_card.cc.o.d"
  "/root/repo/src/datagen/intersection.cc" "src/datagen/CMakeFiles/cr_datagen.dir/intersection.cc.o" "gcc" "src/datagen/CMakeFiles/cr_datagen.dir/intersection.cc.o.d"
  "/root/repo/src/datagen/job_log.cc" "src/datagen/CMakeFiles/cr_datagen.dir/job_log.cc.o" "gcc" "src/datagen/CMakeFiles/cr_datagen.dir/job_log.cc.o.d"
  "/root/repo/src/datagen/people_count.cc" "src/datagen/CMakeFiles/cr_datagen.dir/people_count.cc.o" "gcc" "src/datagen/CMakeFiles/cr_datagen.dir/people_count.cc.o.d"
  "/root/repo/src/datagen/perturb.cc" "src/datagen/CMakeFiles/cr_datagen.dir/perturb.cc.o" "gcc" "src/datagen/CMakeFiles/cr_datagen.dir/perturb.cc.o.d"
  "/root/repo/src/datagen/power_grid.cc" "src/datagen/CMakeFiles/cr_datagen.dir/power_grid.cc.o" "gcc" "src/datagen/CMakeFiles/cr_datagen.dir/power_grid.cc.o.d"
  "/root/repo/src/datagen/router.cc" "src/datagen/CMakeFiles/cr_datagen.dir/router.cc.o" "gcc" "src/datagen/CMakeFiles/cr_datagen.dir/router.cc.o.d"
  "/root/repo/src/datagen/tcp_trace.cc" "src/datagen/CMakeFiles/cr_datagen.dir/tcp_trace.cc.o" "gcc" "src/datagen/CMakeFiles/cr_datagen.dir/tcp_trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/series/CMakeFiles/cr_series.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
