# Empty dependencies file for cr_core_base.
# This may be replaced when dependencies are built.
