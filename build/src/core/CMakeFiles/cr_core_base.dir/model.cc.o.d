src/core/CMakeFiles/cr_core_base.dir/model.cc.o: \
 /root/repo/src/core/model.cc /usr/include/stdc-predef.h \
 /root/repo/src/core/model.h
