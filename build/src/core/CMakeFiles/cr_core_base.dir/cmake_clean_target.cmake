file(REMOVE_RECURSE
  "libcr_core_base.a"
)
