file(REMOVE_RECURSE
  "CMakeFiles/cr_core_base.dir/delay.cc.o"
  "CMakeFiles/cr_core_base.dir/delay.cc.o.d"
  "CMakeFiles/cr_core_base.dir/model.cc.o"
  "CMakeFiles/cr_core_base.dir/model.cc.o.d"
  "libcr_core_base.a"
  "libcr_core_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cr_core_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
