file(REMOVE_RECURSE
  "CMakeFiles/cr_core.dir/analysis.cc.o"
  "CMakeFiles/cr_core.dir/analysis.cc.o.d"
  "CMakeFiles/cr_core.dir/conservation_rule.cc.o"
  "CMakeFiles/cr_core.dir/conservation_rule.cc.o.d"
  "CMakeFiles/cr_core.dir/diagnose.cc.o"
  "CMakeFiles/cr_core.dir/diagnose.cc.o.d"
  "CMakeFiles/cr_core.dir/multi_resolution.cc.o"
  "CMakeFiles/cr_core.dir/multi_resolution.cc.o.d"
  "CMakeFiles/cr_core.dir/report.cc.o"
  "CMakeFiles/cr_core.dir/report.cc.o.d"
  "CMakeFiles/cr_core.dir/segmentation.cc.o"
  "CMakeFiles/cr_core.dir/segmentation.cc.o.d"
  "CMakeFiles/cr_core.dir/tableau.cc.o"
  "CMakeFiles/cr_core.dir/tableau.cc.o.d"
  "libcr_core.a"
  "libcr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
