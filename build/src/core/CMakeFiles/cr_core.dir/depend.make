# Empty dependencies file for cr_core.
# This may be replaced when dependencies are built.
