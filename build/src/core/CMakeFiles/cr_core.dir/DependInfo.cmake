
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cc" "src/core/CMakeFiles/cr_core.dir/analysis.cc.o" "gcc" "src/core/CMakeFiles/cr_core.dir/analysis.cc.o.d"
  "/root/repo/src/core/conservation_rule.cc" "src/core/CMakeFiles/cr_core.dir/conservation_rule.cc.o" "gcc" "src/core/CMakeFiles/cr_core.dir/conservation_rule.cc.o.d"
  "/root/repo/src/core/diagnose.cc" "src/core/CMakeFiles/cr_core.dir/diagnose.cc.o" "gcc" "src/core/CMakeFiles/cr_core.dir/diagnose.cc.o.d"
  "/root/repo/src/core/multi_resolution.cc" "src/core/CMakeFiles/cr_core.dir/multi_resolution.cc.o" "gcc" "src/core/CMakeFiles/cr_core.dir/multi_resolution.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/cr_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/cr_core.dir/report.cc.o.d"
  "/root/repo/src/core/segmentation.cc" "src/core/CMakeFiles/cr_core.dir/segmentation.cc.o" "gcc" "src/core/CMakeFiles/cr_core.dir/segmentation.cc.o.d"
  "/root/repo/src/core/tableau.cc" "src/core/CMakeFiles/cr_core.dir/tableau.cc.o" "gcc" "src/core/CMakeFiles/cr_core.dir/tableau.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cr_core_base.dir/DependInfo.cmake"
  "/root/repo/build/src/interval/CMakeFiles/cr_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/cover/CMakeFiles/cr_cover.dir/DependInfo.cmake"
  "/root/repo/build/src/series/CMakeFiles/cr_series.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
