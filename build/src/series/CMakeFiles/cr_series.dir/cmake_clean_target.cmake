file(REMOVE_RECURSE
  "libcr_series.a"
)
