
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/series/cumulative.cc" "src/series/CMakeFiles/cr_series.dir/cumulative.cc.o" "gcc" "src/series/CMakeFiles/cr_series.dir/cumulative.cc.o.d"
  "/root/repo/src/series/preprocess.cc" "src/series/CMakeFiles/cr_series.dir/preprocess.cc.o" "gcc" "src/series/CMakeFiles/cr_series.dir/preprocess.cc.o.d"
  "/root/repo/src/series/resample.cc" "src/series/CMakeFiles/cr_series.dir/resample.cc.o" "gcc" "src/series/CMakeFiles/cr_series.dir/resample.cc.o.d"
  "/root/repo/src/series/sequence.cc" "src/series/CMakeFiles/cr_series.dir/sequence.cc.o" "gcc" "src/series/CMakeFiles/cr_series.dir/sequence.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
