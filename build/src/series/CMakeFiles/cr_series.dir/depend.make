# Empty dependencies file for cr_series.
# This may be replaced when dependencies are built.
