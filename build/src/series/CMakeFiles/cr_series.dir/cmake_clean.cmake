file(REMOVE_RECURSE
  "CMakeFiles/cr_series.dir/cumulative.cc.o"
  "CMakeFiles/cr_series.dir/cumulative.cc.o.d"
  "CMakeFiles/cr_series.dir/preprocess.cc.o"
  "CMakeFiles/cr_series.dir/preprocess.cc.o.d"
  "CMakeFiles/cr_series.dir/resample.cc.o"
  "CMakeFiles/cr_series.dir/resample.cc.o.d"
  "CMakeFiles/cr_series.dir/sequence.cc.o"
  "CMakeFiles/cr_series.dir/sequence.cc.o.d"
  "libcr_series.a"
  "libcr_series.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cr_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
