#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "obs/labels.h"
#include "obs/metrics.h"
#include "obs/watchdog.h"

namespace conservation::obs {
namespace {

// WatchdogStallCount() is cumulative for the process, so every assertion
// here is a delta against a baseline taken at the top of the test. Each
// test stops the watchdog on exit (StartWatchdog is a no-op while one is
// already running).

class WatchdogTest : public ::testing::Test {
 protected:
  void TearDown() override { StopWatchdog(); }

  static void SleepSeconds(double seconds) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
};

TEST_F(WatchdogTest, DisabledScopedDeadlineIsANoOp) {
  ASSERT_FALSE(WatchdogEnabled());
  const uint64_t before = WatchdogStallCount();
  {
    ScopedDeadline deadline("test.watchdog.disabled", 1e-9);
    SleepSeconds(0.02);  // far past the (unmonitored) budget
  }
  EXPECT_EQ(WatchdogStallCount(), before);
}

TEST_F(WatchdogTest, OverBudgetPhaseFlagsExactlyOneStall) {
  const uint64_t before = WatchdogStallCount();
  Counter& labeled =
      LabeledCounter("obs.stalls").With({{"phase", "test.watchdog.stall"}});
  const uint64_t labeled_before = labeled.Value();

  WatchdogOptions options;
  options.default_budget_seconds = 60.0;
  options.poll_interval_seconds = 0.01;
  StartWatchdog(options);
  ASSERT_TRUE(WatchdogEnabled());
  {
    ScopedDeadline deadline("test.watchdog.stall", /*budget_seconds=*/0.05);
    // Several poll intervals past the deadline: the flagged bit must make
    // this one stall, not one per poll.
    SleepSeconds(0.2);
  }
  EXPECT_EQ(WatchdogStallCount(), before + 1);
  EXPECT_EQ(labeled.Value(), labeled_before + 1);
  // The unlabeled all-up counter moved in lockstep.
  EXPECT_GE(Registry::Global().Counter("obs.stalls_detected").Value(),
            labeled.Value());
}

TEST_F(WatchdogTest, UnderBudgetPhaseNeverStalls) {
  const uint64_t before = WatchdogStallCount();
  WatchdogOptions options;
  options.poll_interval_seconds = 0.01;
  StartWatchdog(options);
  {
    ScopedDeadline deadline("test.watchdog.fast", /*budget_seconds=*/30.0);
    SleepSeconds(0.05);  // several polls, all inside the budget
  }
  SleepSeconds(0.03);  // let the poll thread see the released slot
  EXPECT_EQ(WatchdogStallCount(), before);
}

TEST_F(WatchdogTest, ZeroBudgetFallsBackToWatchdogDefault) {
  const uint64_t before = WatchdogStallCount();
  WatchdogOptions options;
  options.default_budget_seconds = 0.05;
  options.poll_interval_seconds = 0.01;
  StartWatchdog(options);
  {
    ScopedDeadline deadline("test.watchdog.default_budget");  // budget 0
    SleepSeconds(0.2);
  }
  EXPECT_EQ(WatchdogStallCount(), before + 1);
}

TEST_F(WatchdogTest, EachClaimStallsIndependently) {
  const uint64_t before = WatchdogStallCount();
  WatchdogOptions options;
  options.poll_interval_seconds = 0.01;
  StartWatchdog(options);
  for (int k = 0; k < 2; ++k) {
    ScopedDeadline deadline("test.watchdog.repeat", /*budget_seconds=*/0.04);
    SleepSeconds(0.15);
  }
  // Two claims, two stalls: the flagged bit resets with each fresh claim.
  EXPECT_EQ(WatchdogStallCount(), before + 2);
}

TEST_F(WatchdogTest, SlotExhaustionCountsMissesAndDegradesGracefully) {
  WatchdogOptions options;
  options.poll_interval_seconds = 0.01;
  StartWatchdog(options);
  Counter& missed = Registry::Global().Counter("obs.watchdog_slots_missed");
  const uint64_t missed_before = missed.Value();
  {
    // Fill the whole table, then claim one more.
    std::vector<internal::WatchdogSlot*> slots;
    for (int k = 0; k < kWatchdogSlots; ++k) {
      internal::WatchdogSlot* slot =
          internal::ClaimSlot("test.watchdog.fill", 30.0);
      ASSERT_NE(slot, nullptr);
      slots.push_back(slot);
    }
    EXPECT_EQ(internal::ClaimSlot("test.watchdog.overflow", 30.0), nullptr);
    EXPECT_EQ(missed.Value(), missed_before + 1);
    // A ScopedDeadline over a full table degrades to unmonitored, and its
    // destructor must not touch anything.
    { ScopedDeadline unmonitored("test.watchdog.unmonitored", 30.0); }
    EXPECT_EQ(missed.Value(), missed_before + 2);
    for (internal::WatchdogSlot* slot : slots) internal::ReleaseSlot(slot);
  }
  // Table drained: claims work again.
  internal::WatchdogSlot* slot = internal::ClaimSlot("test.watchdog.after", 30.0);
  ASSERT_NE(slot, nullptr);
  internal::ReleaseSlot(slot);
}

TEST_F(WatchdogTest, StopDisablesNewDeadlines) {
  StartWatchdog(WatchdogOptions());
  ASSERT_TRUE(WatchdogEnabled());
  StopWatchdog();
  ASSERT_FALSE(WatchdogEnabled());
  const uint64_t before = WatchdogStallCount();
  {
    ScopedDeadline deadline("test.watchdog.after_stop", 1e-9);
    SleepSeconds(0.02);
  }
  EXPECT_EQ(WatchdogStallCount(), before);
  StopWatchdog();  // idempotent
}

}  // namespace
}  // namespace conservation::obs
