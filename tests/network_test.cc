#include <gtest/gtest.h>

#include "network/node_monitor.h"
#include "network/simulator.h"
#include "series/cumulative.h"

namespace conservation::network {
namespace {

// The Figure 1 example: four links with one tick of counts. In (to node):
// A=50, B=80, C=65, D=30? The figure's point is totals match: use values
// whose in-total equals out-total.
TEST(NodeConservationTest, Figure1BalancedNode) {
  std::vector<LinkSeries> links = {
      {"A", {50}, {70}},
      {"B", {80}, {90}},
      {"C", {65}, {50}},
      {"D", {65}, {50}},
  };
  // in total = 260, out total = 260.
  auto node = NodeConservation::Create("intersection", std::move(links));
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node->n(), 1);
  EXPECT_DOUBLE_EQ(node->MissingOutboundFraction(), 0.0);
  EXPECT_DOUBLE_EQ(
      *node->rule().OverallConfidence(core::ConfidenceModel::kBalance), 1.0);
}

TEST(NodeConservationTest, RejectsMismatchedLengths) {
  std::vector<LinkSeries> links = {
      {"A", {1, 2}, {1, 2}},
      {"B", {1}, {1, 2}},
  };
  EXPECT_FALSE(NodeConservation::Create("x", std::move(links)).ok());
}

TEST(NodeConservationTest, RejectsEmpty) {
  EXPECT_FALSE(NodeConservation::Create("x", {}).ok());
}

TEST(NodeConservationTest, MissingOutboundFraction) {
  // 10 in per tick, 7.5 recorded out per tick.
  std::vector<LinkSeries> links = {
      {"A", {5, 5}, {5, 5}},
      {"B", {5, 5}, {2.5, 2.5}},
  };
  auto node = NodeConservation::Create("n", std::move(links));
  ASSERT_TRUE(node.ok());
  EXPECT_NEAR(node->MissingOutboundFraction(), 0.25, 1e-12);
}

TEST(SimulatorTest, HealthyNodeConserves) {
  NodeSimConfig config;
  config.num_ticks = 1500;
  config.seed = 11;
  const NodeSimResult sim = SimulateNode(config);
  ASSERT_EQ(sim.observed.size(), 4u);
  auto node = NodeConservation::Create(config.node_name, sim.observed);
  ASSERT_TRUE(node.ok());
  EXPECT_LT(node->MissingOutboundFraction(), 0.01);
  EXPECT_GT(
      *node->rule().OverallConfidence(core::ConfidenceModel::kBalance), 0.95);
}

TEST(SimulatorTest, HiddenLinkDepressesConservation) {
  NodeSimConfig config;
  config.num_ticks = 1500;
  config.seed = 12;
  config.departure_weights = {1.0, 1.0, 1.0, 3.0};
  config.hidden_links = {3};
  const NodeSimResult sim = SimulateNode(config);
  ASSERT_EQ(sim.observed.size(), 3u);
  ASSERT_EQ(sim.ground_truth.size(), 4u);
  auto node = NodeConservation::Create(config.node_name, sim.observed);
  ASSERT_TRUE(node.ok());
  // Hidden link carries 3/6 of departures: about half the outbound mass of
  // the *observed* inbound is missing.
  EXPECT_GT(node->MissingOutboundFraction(), 0.25);
  EXPECT_LT(
      *node->rule().OverallConfidence(core::ConfidenceModel::kBalance), 0.7);
}

TEST(SimulatorTest, GroundTruthConservesEvenWithHiddenLink) {
  NodeSimConfig config;
  config.num_ticks = 1200;
  config.seed = 13;
  config.hidden_links = {0};
  const NodeSimResult sim = SimulateNode(config);
  auto node = NodeConservation::Create(config.node_name, sim.ground_truth);
  ASSERT_TRUE(node.ok());
  EXPECT_LT(node->MissingOutboundFraction(), 0.01);
}

TEST(SimulatorTest, Deterministic) {
  NodeSimConfig config;
  config.num_ticks = 300;
  config.seed = 99;
  const NodeSimResult one = SimulateNode(config);
  const NodeSimResult two = SimulateNode(config);
  for (size_t l = 0; l < one.observed.size(); ++l) {
    EXPECT_EQ(one.observed[l].to_node, two.observed[l].to_node);
    EXPECT_EQ(one.observed[l].from_node, two.observed[l].from_node);
  }
}

TEST(DiagnosisTest, LeaveOneOutFingersTheImbalancedLink) {
  // Three links conserve; link "C" receives traffic whose outbound
  // counterpart is unrecorded (it leaves via an unmonitored path), so
  // excluding C repairs the node's confidence.
  const int64_t n = 400;
  std::vector<LinkSeries> links(3);
  links[0].name = "A";
  links[1].name = "B";
  links[2].name = "C";
  for (auto& link : links) {
    link.to_node.assign(n, 10.0);
    link.from_node.assign(n, 10.0);
  }
  // C's inbound never shows up on any outbound: drop a third of total out.
  for (int64_t t = 0; t < n; ++t) {
    links[2].from_node[static_cast<size_t>(t)] = 0.0;
    links[0].from_node[static_cast<size_t>(t)] = 10.0;
    links[1].from_node[static_cast<size_t>(t)] = 10.0;
  }
  auto node = NodeConservation::Create("n", links);
  ASSERT_TRUE(node.ok());
  const auto diagnoses =
      node->DiagnoseLinks(core::ConfidenceModel::kBalance);
  ASSERT_EQ(diagnoses.size(), 3u);
  EXPECT_EQ(diagnoses.front().link, "C");
  EXPECT_GT(diagnoses.front().impact, 0.1);
  EXPECT_GT(diagnoses.front().without_link_confidence,
            diagnoses.front().full_confidence);
}

TEST(FleetTest, RankingSeparatesBadNodes) {
  const std::vector<NodeSimResult> fleet = SimulateNodeFleet(6, 2, 800, 77);
  std::vector<NodeConservation> nodes;
  for (const NodeSimResult& sim : fleet) {
    auto node = NodeConservation::Create(sim.config.node_name, sim.observed);
    ASSERT_TRUE(node.ok());
    nodes.push_back(std::move(node).value());
  }
  core::TableauRequest request;
  request.type = core::TableauType::kFail;
  request.model = core::ConfidenceModel::kDebit;
  request.c_hat = 0.6;
  request.s_hat = 0.5;
  const std::vector<NodeRanking> ranking =
      RankNodesByFailure(nodes, request);
  ASSERT_EQ(ranking.size(), 6u);
  // The two bad nodes (node-00, node-01) rank first.
  EXPECT_TRUE(ranking[0].node_name == "node-00" ||
              ranking[0].node_name == "node-01");
  EXPECT_TRUE(ranking[1].node_name == "node-00" ||
              ranking[1].node_name == "node-01");
  EXPECT_GT(ranking[0].covered_fraction, ranking[2].covered_fraction);
}

}  // namespace
}  // namespace conservation::network
