// Differential tests for incremental tableau maintenance: after every
// AppendBatch the maintained tableau must be bit-identical to a from-scratch
// DiscoverTableau over the full series (rows, covered, required,
// support_satisfied, num_candidates — the exactness contract of
// incr/incremental.h), across all five generators, models, tableau types and
// batch patterns. The fresh side deliberately rotates thread counts, sketch
// modes and largest-first early exit per batch: those knobs are
// output-invariant by contract, so the incremental engine (sequential, no
// sketch) must match every configuration.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "core/confidence.h"
#include "core/tableau.h"
#include "incr/incremental.h"
#include "incr/stream_session.h"
#include "interval/generator.h"
#include "series/cumulative.h"
#include "series/sequence.h"
#include "series/store.h"
#include "tests/test_data.h"

namespace conservation {
namespace {

using core::ConfidenceModel;
using core::Tableau;
using core::TableauRequest;
using core::TableauType;
using incr::IncrementalDiscoverer;
using interval::AlgorithmKind;

bool SameBits(double x, double y) {
  return std::memcmp(&x, &y, sizeof(double)) == 0;
}

void ExpectSameTableau(const Tableau& incremental, const Tableau& fresh,
                       const std::string& context) {
  ASSERT_EQ(incremental.rows.size(), fresh.rows.size()) << context;
  for (size_t r = 0; r < fresh.rows.size(); ++r) {
    EXPECT_EQ(incremental.rows[r].interval.begin, fresh.rows[r].interval.begin)
        << context << " row " << r;
    EXPECT_EQ(incremental.rows[r].interval.end, fresh.rows[r].interval.end)
        << context << " row " << r;
    EXPECT_TRUE(SameBits(incremental.rows[r].confidence,
                         fresh.rows[r].confidence))
        << context << " row " << r << " conf "
        << incremental.rows[r].confidence << " vs "
        << fresh.rows[r].confidence;
  }
  EXPECT_EQ(incremental.covered, fresh.covered) << context;
  EXPECT_EQ(incremental.required, fresh.required) << context;
  EXPECT_EQ(incremental.support_satisfied, fresh.support_satisfied) << context;
  EXPECT_EQ(incremental.num_candidates, fresh.num_candidates) << context;
}

// Replays `counts` through an IncrementalDiscoverer in batches of
// `batch_size` (0 = one batch with everything) after an initial prefix,
// comparing against DiscoverTableau over each prefix with rotating
// output-invariant fresh-side knobs.
void RunReplay(const series::CountSequence& counts, TableauRequest request,
               int64_t initial_n, int64_t batch_size,
               const std::string& context) {
  request.num_threads = 1;
  request.sketch = interval::SketchMode::kAuto;  // engine ignores; fresh varies
  auto discoverer =
      IncrementalDiscoverer::Create(counts.Prefix(initial_n), request);
  ASSERT_TRUE(discoverer.ok()) << discoverer.status().message() << context;

  const std::vector<double>& a = counts.outbound();
  const std::vector<double>& b = counts.inbound();
  int64_t at = initial_n;
  int batch_index = 0;
  while (true) {
    // Fresh recompute over the same prefix, with contract-invariant knobs
    // rotated so one replay exercises threads x sketch x largest-first.
    const series::CumulativeSeries cumulative(counts.Prefix(at));
    const core::ConfidenceEvaluator eval(&cumulative, request.model);
    TableauRequest fresh_request = request;
    fresh_request.num_threads = (batch_index % 2 == 0) ? 1 : 4;
    fresh_request.sketch = (batch_index % 3 == 0) ? interval::SketchMode::kOff
                                                  : interval::SketchMode::kAuto;
    fresh_request.largest_first_early_exit = batch_index % 2 == 1;
    const auto fresh = core::DiscoverTableau(eval, fresh_request);
    ASSERT_TRUE(fresh.ok()) << fresh.status().message() << context;
    ExpectSameTableau(discoverer->tableau(), fresh.value(),
                      context + " n=" + std::to_string(at));
    if (::testing::Test::HasFailure()) return;  // one replay, first divergence

    if (at >= counts.n()) break;
    const int64_t m = batch_size == 0
                          ? counts.n() - at
                          : std::min<int64_t>(batch_size, counts.n() - at);
    discoverer->AppendBatch(a.data() + at, b.data() + at, m);
    at += m;
    ++batch_index;
  }
  EXPECT_EQ(discoverer->n(), counts.n()) << context;
  EXPECT_GT(discoverer->stats().batches, 0) << context;
}

class IncrDifferential : public ::testing::TestWithParam<AlgorithmKind> {};

TEST_P(IncrDifferential, MatchesFreshDiscoveryAcrossBatchPatterns) {
  const AlgorithmKind kind = GetParam();
  const bool nab = kind == AlgorithmKind::kNonAreaBased ||
                   kind == AlgorithmKind::kNonAreaBasedOpt;
  const int64_t total_n = 140;
  const int64_t initial_n = 35;
  const series::CountSequence counts =
      testing_util::RandomDominatedCounts(/*seed=*/2026, total_n);

  for (const ConfidenceModel model :
       {ConfidenceModel::kBalance, ConfidenceModel::kCredit,
        ConfidenceModel::kDebit}) {
    if (nab && model != ConfidenceModel::kBalance) continue;
    for (const TableauType type : {TableauType::kHold, TableauType::kFail}) {
      const series::CumulativeSeries cumulative(counts);
      const core::ConfidenceEvaluator eval(&cumulative, model);
      const double overall = eval.Confidence(1, counts.n()).value_or(0.5);

      TableauRequest request;
      request.algorithm = kind;
      request.model = model;
      request.type = type;
      request.c_hat = type == TableauType::kHold
                          ? std::min(1.0, overall * 0.9 + 0.1)
                          : overall * 0.75;
      request.s_hat = 0.4;
      request.epsilon = 0.05;

      for (const int64_t batch_size : {int64_t{1}, int64_t{3}, int64_t{7},
                                       int64_t{64}, int64_t{0}}) {
        const std::string context =
            std::string(" [model=") + core::ConfidenceModelName(model) +
            " type=" + core::TableauTypeName(type) +
            " batch=" + std::to_string(batch_size) + "]";
        RunReplay(counts, request, initial_n, batch_size, context);
        if (::testing::Test::HasFailure()) return;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, IncrDifferential,
    ::testing::Values(AlgorithmKind::kExhaustive, AlgorithmKind::kAreaBased,
                      AlgorithmKind::kAreaBasedOpt,
                      AlgorithmKind::kNonAreaBased,
                      AlgorithmKind::kNonAreaBasedOpt),
    [](const ::testing::TestParamInfo<AlgorithmKind>& info) {
      return std::string(interval::AlgorithmKindName(info.param));
    });

TEST(IncrementalDiscoverer, RejectsStopOnFullCover) {
  const series::CountSequence counts =
      testing_util::RandomDominatedCounts(/*seed=*/7, 40);
  TableauRequest request;
  request.stop_on_full_cover = true;
  const auto result = IncrementalDiscoverer::Create(counts, request);
  EXPECT_FALSE(result.ok());
}

// Delta decreasing mid-stream (a later batch introduces a smaller positive
// count) re-levels the AB/AB-opt threshold ladders; the engine must detect
// it, rebuild, and still match a fresh run.
TEST(IncrementalDiscoverer, DeltaDecreaseForcesRebuildAndStaysIdentical) {
  std::vector<double> a;
  std::vector<double> b;
  for (int t = 0; t < 30; ++t) {
    a.push_back(2.0);
    b.push_back(4.0);
  }
  // The appended suffix introduces count 1 < delta=2.
  std::vector<double> a2 = {1.0, 2.0, 0.0, 2.0, 1.0, 2.0};
  std::vector<double> b2 = {4.0, 4.0, 2.0, 4.0, 4.0, 2.0};

  for (const AlgorithmKind kind :
       {AlgorithmKind::kAreaBased, AlgorithmKind::kAreaBasedOpt}) {
    TableauRequest request;
    request.algorithm = kind;
    request.type = TableauType::kHold;
    request.c_hat = 0.6;
    request.s_hat = 0.5;
    request.epsilon = 0.1;

    auto initial = series::CountSequence::Create(a, b);
    ASSERT_TRUE(initial.ok());
    auto discoverer = IncrementalDiscoverer::Create(initial.value(), request);
    ASSERT_TRUE(discoverer.ok());
    discoverer->AppendBatch(a2, b2);
    EXPECT_EQ(discoverer->stats().full_rebuilds, 1)
        << interval::AlgorithmKindName(kind);

    std::vector<double> full_a = a;
    std::vector<double> full_b = b;
    full_a.insert(full_a.end(), a2.begin(), a2.end());
    full_b.insert(full_b.end(), b2.begin(), b2.end());
    auto full = series::CountSequence::Create(full_a, full_b);
    ASSERT_TRUE(full.ok());
    const series::CumulativeSeries cumulative(full.value());
    const core::ConfidenceEvaluator eval(&cumulative, request.model);
    const auto fresh = core::DiscoverTableau(eval, request);
    ASSERT_TRUE(fresh.ok());
    ExpectSameTableau(discoverer->tableau(), fresh.value(),
                      std::string(" delta-rebuild ") +
                          interval::AlgorithmKindName(kind));
  }
}

// A credit-model append that lowers old suffix-min gaps dirties exactly the
// affected anchors; they re-walk and the tableau stays identical.
TEST(IncrementalDiscoverer, CreditGapDropDirtiesAnchorsAndStaysIdentical) {
  std::vector<double> a;
  std::vector<double> b;
  for (int t = 0; t < 25; ++t) {
    a.push_back(1.0);
    b.push_back(3.0);
  }
  // Gap falls from 50 to 45: every old S_i above 45 changes.
  std::vector<double> a2 = {5.0, 1.0};
  std::vector<double> b2 = {0.0, 3.0};

  TableauRequest request;
  request.algorithm = AlgorithmKind::kAreaBased;
  request.model = ConfidenceModel::kCredit;
  request.type = TableauType::kFail;
  request.c_hat = 0.4;
  request.s_hat = 0.5;
  request.epsilon = 0.1;

  auto initial = series::CountSequence::Create(a, b);
  ASSERT_TRUE(initial.ok());
  auto discoverer = IncrementalDiscoverer::Create(initial.value(), request);
  ASSERT_TRUE(discoverer.ok());
  discoverer->AppendBatch(a2, b2);
  EXPECT_GT(discoverer->stats().dirty_anchors, 0);

  std::vector<double> full_a = a;
  std::vector<double> full_b = b;
  full_a.insert(full_a.end(), a2.begin(), a2.end());
  full_b.insert(full_b.end(), b2.begin(), b2.end());
  auto full = series::CountSequence::Create(full_a, full_b);
  ASSERT_TRUE(full.ok());
  const series::CumulativeSeries cumulative(full.value());
  const core::ConfidenceEvaluator eval(&cumulative, request.model);
  const auto fresh = core::DiscoverTableau(eval, request);
  ASSERT_TRUE(fresh.ok());
  ExpectSameTableau(discoverer->tableau(), fresh.value(), " credit-dirty");
}

// AttachStore keeps a columnar arena growing alongside the appends; the
// result must be byte-identical to a fresh Build over the final series at
// the same capacity and block.
TEST(IncrementalDiscoverer, AttachedStoreMatchesFreshBuildByteForByte) {
  const int64_t total_n = 200;
  const int64_t initial_n = 50;
  const int64_t block = 32;
  const series::CountSequence counts =
      testing_util::RandomDominatedCounts(/*seed=*/11, total_n);

  TableauRequest request;
  request.algorithm = AlgorithmKind::kAreaBasedOpt;
  request.epsilon = 0.05;
  auto discoverer =
      IncrementalDiscoverer::Create(counts.Prefix(initial_n), request);
  ASSERT_TRUE(discoverer.ok());
  ASSERT_TRUE(discoverer->AttachStore(total_n, block));
  ASSERT_NE(discoverer->store(), nullptr);

  const std::vector<double>& a = counts.outbound();
  const std::vector<double>& b = counts.inbound();
  for (int64_t at = initial_n; at < total_n; at += 37) {
    const int64_t m = std::min<int64_t>(37, total_n - at);
    discoverer->AppendBatch(a.data() + at, b.data() + at, m);
  }
  ASSERT_EQ(discoverer->n(), total_n);

  const series::CumulativeSeries cumulative(counts);
  const series::SeriesStore fresh =
      series::SeriesStore::Build(cumulative, block, total_n);
  const series::SeriesStore* maintained = discoverer->store();
  ASSERT_NE(maintained, nullptr);
  ASSERT_EQ(maintained->size(), fresh.size());
  EXPECT_EQ(std::memcmp(maintained->data(), fresh.data(), fresh.size()), 0);
}

// StreamSession drives the monitor and the discoverer off one ingest path.
TEST(StreamSession, FeedsBothPlanesAndMatchesFreshDiscovery) {
  const int64_t total_n = 120;
  const int64_t initial_n = 40;
  const series::CountSequence counts =
      testing_util::RandomDominatedCounts(/*seed=*/23, total_n);

  TableauRequest request;
  request.algorithm = AlgorithmKind::kNonAreaBased;
  request.epsilon = 0.05;
  request.s_hat = 0.4;
  stream::StreamOptions stream_options;
  stream_options.window = 16;

  auto session = incr::StreamSession::Create(counts.Prefix(initial_n), request,
                                             stream_options);
  ASSERT_TRUE(session.ok()) << session.status().message();
  EXPECT_EQ(session->monitor().ticks(), initial_n);

  const std::vector<double>& a = counts.outbound();
  const std::vector<double>& b = counts.inbound();
  for (int64_t at = initial_n; at < total_n; at += 16) {
    const int64_t m = std::min<int64_t>(16, total_n - at);
    session->ObserveBatch(a.data() + at, b.data() + at, m);
  }
  EXPECT_EQ(session->monitor().ticks(), total_n);
  EXPECT_EQ(session->n(), total_n);

  const series::CumulativeSeries cumulative(counts);
  const core::ConfidenceEvaluator eval(&cumulative, request.model);
  const auto fresh = core::DiscoverTableau(eval, request);
  ASSERT_TRUE(fresh.ok());
  ExpectSameTableau(session->tableau(), fresh.value(), " stream-session");
}

// Append-only mode defers heap maintenance and cover selection to
// RefreshCover; at every refresh point the tableau must be bit-identical
// to from-scratch discovery — regardless of how many batches accumulated
// between refreshes.
TEST(AppendOnlyMode, RefreshPointsMatchFreshDiscovery) {
  const int64_t total_n = 160;
  const int64_t initial_n = 30;
  const series::CountSequence counts =
      testing_util::RandomDominatedCounts(/*seed=*/77, total_n);

  for (const AlgorithmKind kind :
       {AlgorithmKind::kAreaBased, AlgorithmKind::kAreaBasedOpt,
        AlgorithmKind::kNonAreaBased, AlgorithmKind::kExhaustive}) {
    TableauRequest request;
    request.algorithm = kind;
    request.type = TableauType::kFail;
    request.c_hat = 0.6;
    request.s_hat = 0.1;
    request.epsilon = 0.05;

    auto discoverer =
        IncrementalDiscoverer::Create(counts.Prefix(initial_n), request);
    ASSERT_TRUE(discoverer.ok()) << discoverer.status().message();
    discoverer->SetAppendOnly(true);
    EXPECT_FALSE(discoverer->cover_stale());  // Create refreshed eagerly

    const std::vector<double>& a = counts.outbound();
    const std::vector<double>& b = counts.inbound();
    int64_t at = initial_n;
    int64_t batch = 7;  // varying batch sizes between refresh points
    while (at < total_n) {
      // Several deferred appends per refresh point.
      for (int i = 0; i < 3 && at < total_n; ++i, batch += 3) {
        const int64_t m = std::min<int64_t>(batch, total_n - at);
        discoverer->AppendBatch(a.data() + at, b.data() + at, m);
        at += m;
        EXPECT_TRUE(discoverer->cover_stale());
      }
      const Tableau& refreshed = discoverer->RefreshCover();
      EXPECT_FALSE(discoverer->cover_stale());

      const series::CumulativeSeries cumulative(counts.Prefix(at));
      const core::ConfidenceEvaluator eval(&cumulative, request.model);
      const auto fresh = core::DiscoverTableau(eval, request);
      ASSERT_TRUE(fresh.ok()) << fresh.status().message();
      ExpectSameTableau(refreshed, fresh.value(),
                        " append-only n=" + std::to_string(at) + " alg=" +
                            std::to_string(static_cast<int>(kind)));
      if (::testing::Test::HasFailure()) return;
    }
    // RefreshCover on a fresh cover is a no-op.
    const Tableau& again = discoverer->RefreshCover();
    EXPECT_EQ(&again, &discoverer->tableau());
  }
}

// Toggling append-only off mid-stream resumes eager per-batch maintenance
// (the serving daemon's --append_only=false path).
TEST(AppendOnlyMode, ToggleBackToEagerMatchesFreshDiscovery) {
  const int64_t total_n = 100;
  const series::CountSequence counts =
      testing_util::RandomDominatedCounts(/*seed=*/91, total_n);

  TableauRequest request;
  request.algorithm = AlgorithmKind::kAreaBasedOpt;
  request.type = TableauType::kHold;
  request.c_hat = 0.7;
  request.s_hat = 0.2;

  auto discoverer = IncrementalDiscoverer::Create(counts.Prefix(40), request);
  ASSERT_TRUE(discoverer.ok()) << discoverer.status().message();
  discoverer->SetAppendOnly(true);
  const std::vector<double>& a = counts.outbound();
  const std::vector<double>& b = counts.inbound();
  discoverer->AppendBatch(a.data() + 40, b.data() + 40, 30);
  EXPECT_TRUE(discoverer->cover_stale());
  discoverer->RefreshCover();

  discoverer->SetAppendOnly(false);
  discoverer->AppendBatch(a.data() + 70, b.data() + 70, 30);
  EXPECT_FALSE(discoverer->cover_stale());  // eager again

  const series::CumulativeSeries cumulative(counts);
  const core::ConfidenceEvaluator eval(&cumulative, request.model);
  const auto fresh = core::DiscoverTableau(eval, request);
  ASSERT_TRUE(fresh.ok());
  ExpectSameTableau(discoverer->tableau(), fresh.value(), " toggle-eager");
}

}  // namespace
}  // namespace conservation
