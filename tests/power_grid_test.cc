#include <gtest/gtest.h>

#include "core/conservation_rule.h"
#include "datagen/power_grid.h"
#include "series/cumulative.h"

namespace conservation::datagen {
namespace {

TEST(PowerGridTest, ShapeAndDominance) {
  const PowerGridData data = GeneratePowerGrid();
  EXPECT_EQ(data.counts.n(), 2880);
  const series::CumulativeSeries cumulative(data.counts);
  EXPECT_TRUE(cumulative.Dominates());
}

TEST(PowerGridTest, Deterministic) {
  const PowerGridData one = GeneratePowerGrid();
  const PowerGridData two = GeneratePowerGrid();
  for (int64_t t = 1; t <= one.counts.n(); t += 37) {
    EXPECT_DOUBLE_EQ(one.counts.a(t), two.counts.a(t));
  }
}

TEST(PowerGridTest, HealthyFeederHasSteadyTechnicalLoss) {
  const PowerGridData data = GeneratePowerGrid();
  const series::CumulativeSeries cumulative(data.counts);
  const int64_t n = data.counts.n();
  // Metered / supplied ratio approximates 1 - technical loss.
  const double ratio = cumulative.A(n) / cumulative.B(n);
  EXPECT_NEAR(ratio, 1.0 - data.params.technical_loss_fraction, 0.01);
}

TEST(PowerGridTest, TheftDepressesConfidenceAfterOnset) {
  PowerGridParams params;
  params.theft_start_tick = 1440;
  params.theft_fraction = 0.8;
  const PowerGridData data = GeneratePowerGrid(params);
  auto rule = core::ConservationRule::Create(data.counts);
  ASSERT_TRUE(rule.ok());
  const auto before = rule->Confidence(core::ConfidenceModel::kDebit, 96,
                                       params.theft_start_tick - 1);
  const auto after =
      rule->Confidence(core::ConfidenceModel::kDebit,
                       params.theft_start_tick, data.counts.n());
  ASSERT_TRUE(before.has_value());
  ASSERT_TRUE(after.has_value());
  EXPECT_GT(*before, *after + 0.01);
}

TEST(PowerGridTest, OutageIsBoundedInTime) {
  PowerGridParams params;
  params.outage_begin_tick = 1000;
  params.outage_end_tick = 1100;
  const PowerGridData data = GeneratePowerGrid(params);
  auto rule = core::ConservationRule::Create(data.counts);
  ASSERT_TRUE(rule.ok());

  // The outage is visible as a fail interval, and post-outage suffixes are
  // healthy under the debit model (prior imbalance discounted).
  core::TableauRequest request;
  request.type = core::TableauType::kFail;
  request.model = core::ConfidenceModel::kDebit;
  request.c_hat = 0.9;
  request.s_hat = 0.01;
  auto tableau = rule->DiscoverTableau(request);
  ASSERT_TRUE(tableau.ok());
  bool overlaps_outage = false;
  for (const core::TableauRow& row : tableau->rows) {
    if (row.interval.Overlaps({1000, 1100})) overlaps_outage = true;
  }
  EXPECT_TRUE(overlaps_outage);

  const auto post = rule->Confidence(core::ConfidenceModel::kDebit, 1400,
                                     data.counts.n());
  ASSERT_TRUE(post.has_value());
  EXPECT_GT(*post, 0.93);
}

TEST(PowerGridTest, TheftFractionScalesImbalance) {
  auto missing_share = [](double fraction) {
    PowerGridParams params;
    params.theft_start_tick = 1;
    params.theft_fraction = fraction;
    const PowerGridData data = GeneratePowerGrid(params);
    const series::CumulativeSeries cumulative(data.counts);
    return 1.0 - cumulative.A(data.counts.n()) / cumulative.B(data.counts.n());
  };
  EXPECT_LT(missing_share(0.2), missing_share(0.5));
  EXPECT_LT(missing_share(0.5), missing_share(0.9));
}

}  // namespace
}  // namespace conservation::datagen
