#include <gtest/gtest.h>

#include <numeric>

#include "datagen/perturb.h"
#include "datagen/router.h"
#include "series/cumulative.h"

namespace conservation::datagen {
namespace {

class PerturbTest : public ::testing::Test {
 protected:
  PerturbTest() : base_(GenerateWellBehavedTraffic(906)) {}

  static double Total(const std::vector<double>& values) {
    return std::accumulate(values.begin(), values.end(), 0.0);
  }

  series::CountSequence base_;
};

TEST_F(PerturbTest, DelayPreservesTotalOutbound) {
  PerturbationSpec spec;
  spec.fraction = 0.1;
  spec.compensate = true;
  PerturbationInfo info;
  const series::CountSequence perturbed =
      ApplyPerturbation(base_, spec, &info);
  EXPECT_NEAR(Total(perturbed.outbound()), Total(base_.outbound()), 1e-6);
  EXPECT_GT(info.recovery_tick, info.drop_end);
  EXPECT_NEAR(info.amount_removed, 0.1 * Total(base_.outbound()), 1e-6);
}

TEST_F(PerturbTest, LossRemovesMass) {
  PerturbationSpec spec;
  spec.fraction = 0.25;
  spec.compensate = false;
  PerturbationInfo info;
  const series::CountSequence perturbed =
      ApplyPerturbation(base_, spec, &info);
  EXPECT_NEAR(Total(perturbed.outbound()),
              0.75 * Total(base_.outbound()), 1e-6);
  EXPECT_EQ(info.recovery_tick, 0);
}

TEST_F(PerturbTest, DropStartsAtPeakTick) {
  PerturbationSpec spec;
  spec.fraction = 0.01;
  PerturbationInfo info;
  ApplyPerturbation(base_, spec, &info);
  int64_t peak = 1;
  for (int64_t t = 2; t <= base_.n(); ++t) {
    if (base_.a(t) > base_.a(peak)) peak = t;
  }
  EXPECT_EQ(info.drop_begin, peak);
}

TEST_F(PerturbTest, FullDropZeroesConsecutiveTicks) {
  PerturbationSpec spec;
  spec.fraction = 0.05;
  spec.max_step_drop_fraction = 1.0;
  PerturbationInfo info;
  const series::CountSequence perturbed =
      ApplyPerturbation(base_, spec, &info);
  // All ticks strictly inside the drop are fully drained.
  for (int64_t t = info.drop_begin; t < info.drop_end; ++t) {
    EXPECT_DOUBLE_EQ(perturbed.a(t), 0.0) << "t=" << t;
  }
}

TEST_F(PerturbTest, DampenedDropKeepsMostTraffic) {
  PerturbationSpec spec;
  spec.fraction = 0.05;
  spec.max_step_drop_fraction = 0.25;
  PerturbationInfo info;
  const series::CountSequence perturbed =
      ApplyPerturbation(base_, spec, &info);
  // Every perturbed tick keeps at least 75% of its traffic...
  for (int64_t t = info.drop_begin; t <= info.drop_end; ++t) {
    EXPECT_GE(perturbed.a(t), 0.7499 * base_.a(t)) << "t=" << t;
  }
  // ... so the drop stretches over more ticks than the full drop.
  PerturbationSpec full = spec;
  full.max_step_drop_fraction = 1.0;
  PerturbationInfo full_info;
  ApplyPerturbation(base_, full, &full_info);
  EXPECT_GT(info.drop_end - info.drop_begin,
            full_info.drop_end - full_info.drop_begin);
}

TEST_F(PerturbTest, DominancePreserved) {
  for (const bool compensate : {true, false}) {
    for (const double d : {0.01, 0.1, 0.25}) {
      PerturbationSpec spec;
      spec.fraction = d;
      spec.compensate = compensate;
      const series::CountSequence perturbed =
          ApplyPerturbation(base_, spec, nullptr);
      const series::CumulativeSeries cumulative(perturbed);
      EXPECT_TRUE(cumulative.Dominates())
          << "d=" << d << " compensate=" << compensate;
    }
  }
}

TEST_F(PerturbTest, ExplicitRecoveryTickHonored) {
  PerturbationSpec spec;
  spec.fraction = 0.1;
  spec.recovery_tick = 800;
  PerturbationInfo info;
  const series::CountSequence perturbed =
      ApplyPerturbation(base_, spec, &info);
  EXPECT_EQ(info.recovery_tick, 800);
  EXPECT_GT(perturbed.a(800), base_.a(800));
}

TEST_F(PerturbTest, InboundUntouched) {
  PerturbationSpec spec;
  spec.fraction = 0.1;
  const series::CountSequence perturbed =
      ApplyPerturbation(base_, spec, nullptr);
  for (int64_t t = 1; t <= base_.n(); ++t) {
    EXPECT_DOUBLE_EQ(perturbed.b(t), base_.b(t));
  }
}

}  // namespace
}  // namespace conservation::datagen
