// Serving daemon tests: protocol framing, admission/backpressure, tenant
// eviction + re-fault identity, and clean drain — the per-component
// counterpart to the end-to-end tools/serve_soak.cc concurrency smoke.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/confidence.h"
#include "core/tableau.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/protocol.h"
#include "serve/tenant_registry.h"
#include "series/cumulative.h"
#include "series/preprocess.h"
#include "series/sequence.h"
#include "tests/test_data.h"

namespace conservation {
namespace {

using serve::AckFrame;
using serve::AckStatus;
using serve::Frame;
using serve::FrameReader;
using serve::FrameType;

void ExpectSameTableau(const core::Tableau& lhs, const core::Tableau& rhs,
                       const std::string& context) {
  ASSERT_EQ(lhs.rows.size(), rhs.rows.size()) << context;
  for (size_t r = 0; r < rhs.rows.size(); ++r) {
    EXPECT_EQ(lhs.rows[r].interval.begin, rhs.rows[r].interval.begin)
        << context << " row " << r;
    EXPECT_EQ(lhs.rows[r].interval.end, rhs.rows[r].interval.end)
        << context << " row " << r;
    EXPECT_EQ(std::memcmp(&lhs.rows[r].confidence, &rhs.rows[r].confidence,
                          sizeof(double)),
              0)
        << context << " row " << r;
  }
  EXPECT_EQ(lhs.covered, rhs.covered) << context;
  EXPECT_EQ(lhs.required, rhs.required) << context;
  EXPECT_EQ(lhs.support_satisfied, rhs.support_satisfied) << context;
  EXPECT_EQ(lhs.num_candidates, rhs.num_candidates) << context;
}

// ---------------------------------------------------------------------------
// Protocol framing

TEST(Protocol, AppendRoundTripPreservesBits) {
  const std::vector<double> a = {1.5, 0.0, 3.25, 1e-300};
  const std::vector<double> b = {2.5, 1.0, 3.25, 7.75};
  std::string wire;
  serve::EncodeAppend(0xdeadbeefcafeULL, a.data(), b.data(), 4, &wire);

  FrameReader reader;
  reader.Feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_TRUE(reader.Next(&frame));
  EXPECT_EQ(frame.type, FrameType::kAppend);
  EXPECT_EQ(frame.append.tenant_id, 0xdeadbeefcafeULL);
  ASSERT_EQ(frame.append.a.size(), 4u);
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(std::memcmp(&frame.append.a[k], &a[k], sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&frame.append.b[k], &b[k], sizeof(double)), 0);
  }
  EXPECT_FALSE(reader.Next(&frame));  // exactly one frame
  EXPECT_FALSE(reader.failed());
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(Protocol, ByteAtATimeFeedingDecodesIdentically) {
  std::string wire;
  serve::EncodePing(&wire);
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {3.0, 4.0};
  serve::EncodeAppend(42, a.data(), b.data(), 2, &wire);
  AckFrame ack;
  ack.tenant_id = 42;
  ack.status = AckStatus::kBackpressure;
  ack.accepted_ticks = 0;
  ack.queued_ticks = 17;
  serve::EncodeAck(ack, &wire);

  FrameReader reader;
  std::vector<FrameType> seen;
  Frame frame;
  for (char byte : wire) {
    reader.Feed(&byte, 1);
    while (reader.Next(&frame)) seen.push_back(frame.type);
  }
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], FrameType::kPing);
  EXPECT_EQ(seen[1], FrameType::kAppend);
  EXPECT_EQ(seen[2], FrameType::kAck);
  EXPECT_EQ(frame.ack.status, AckStatus::kBackpressure);
  EXPECT_EQ(frame.ack.queued_ticks, 17u);
}

TEST(Protocol, StatsReplyRoundTrip) {
  serve::StatsReplyFrame stats;
  stats.tenants = 1000;
  stats.ticks_ingested = 1234567890123ULL;
  stats.ticks_processed = 1234567890000ULL;
  stats.batches_rejected = 7;
  std::string wire;
  serve::EncodeStatsReply(stats, &wire);
  FrameReader reader;
  reader.Feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_TRUE(reader.Next(&frame));
  EXPECT_EQ(frame.type, FrameType::kStatsReply);
  EXPECT_EQ(frame.stats.tenants, 1000u);
  EXPECT_EQ(frame.stats.ticks_ingested, 1234567890123ULL);
  EXPECT_EQ(frame.stats.ticks_processed, 1234567890000ULL);
  EXPECT_EQ(frame.stats.batches_rejected, 7u);
}

TEST(Protocol, OversizedFramePoisonsReader) {
  std::string wire;
  const uint32_t huge = serve::kMaxFramePayload + 1;
  wire.push_back(static_cast<char>(huge & 0xff));
  wire.push_back(static_cast<char>((huge >> 8) & 0xff));
  wire.push_back(static_cast<char>((huge >> 16) & 0xff));
  wire.push_back(static_cast<char>((huge >> 24) & 0xff));
  FrameReader reader;
  reader.Feed(wire.data(), wire.size());
  Frame frame;
  EXPECT_FALSE(reader.Next(&frame));
  EXPECT_TRUE(reader.failed());
  EXPECT_NE(reader.error().find("length"), std::string::npos);
  // Poisoned for good: further feeds/nexts stay failed.
  std::string ping;
  serve::EncodePing(&ping);
  reader.Feed(ping.data(), ping.size());
  EXPECT_FALSE(reader.Next(&frame));
  EXPECT_TRUE(reader.failed());
}

TEST(Protocol, MalformedBodiesAreViolations) {
  // Append whose body says 3 ticks but carries bytes for 2.
  std::vector<double> a = {1, 2, 3};
  std::vector<double> b = {4, 5, 6};
  std::string wire;
  serve::EncodeAppend(1, a.data(), b.data(), 3, &wire);
  // Truncate the payload by one tick pair and patch the length prefix.
  wire.resize(wire.size() - 16);
  const uint32_t payload = static_cast<uint32_t>(wire.size() - 4);
  wire[0] = static_cast<char>(payload & 0xff);
  wire[1] = static_cast<char>((payload >> 8) & 0xff);
  wire[2] = static_cast<char>((payload >> 16) & 0xff);
  wire[3] = static_cast<char>((payload >> 24) & 0xff);
  FrameReader reader;
  reader.Feed(wire.data(), wire.size());
  Frame frame;
  EXPECT_FALSE(reader.Next(&frame));
  EXPECT_TRUE(reader.failed());

  // Unknown frame type.
  std::string bad = std::string("\x01\x00\x00\x00", 4) + '\x63';
  FrameReader reader2;
  reader2.Feed(bad.data(), bad.size());
  EXPECT_FALSE(reader2.Next(&frame));
  EXPECT_TRUE(reader2.failed());
  EXPECT_NE(reader2.error().find("unknown frame type"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Dominance filter

TEST(DominanceFilter, StreamingMatchesBatchEnforceDominanceBitwise) {
  // Raw counts where a overruns b in places (dominance violated).
  std::vector<double> raw_a = {5, 0, 3, 7,   0, 2.25, 9, 1};
  std::vector<double> raw_b = {1, 4, 3, 0.5, 6, 2.25, 2, 8};
  auto counts = series::CountSequence::Create(raw_a, raw_b);
  ASSERT_TRUE(counts.ok());
  const series::CountSequence batch = series::EnforceDominance(counts.value());

  serve::DominanceFilter filter;
  for (size_t k = 0; k < raw_a.size(); ++k) {
    double fa = raw_a[k];
    double fb = raw_b[k];
    filter.Apply(&fa, &fb);
    EXPECT_EQ(std::memcmp(&fa, &batch.outbound()[k], sizeof(double)), 0)
        << "tick " << k;
    EXPECT_EQ(std::memcmp(&fb, &batch.inbound()[k], sizeof(double)), 0)
        << "tick " << k;
  }
}

// ---------------------------------------------------------------------------
// Daemon end to end (loopback sockets)

serve::TenantConfig TestTenantConfig() {
  serve::TenantConfig config;
  config.request.type = core::TableauType::kFail;
  config.request.c_hat = 0.5;
  config.request.s_hat = 0.05;
  config.append_only = true;
  return config;
}

TEST(ServeDaemon, ProtocolOverSocketMatchesFreshDiscovery) {
  serve::DaemonOptions options;
  options.refresh_ms = 0;  // deterministic: no background sweeps

  serve::ServeDaemon daemon(TestTenantConfig(), options);
  ASSERT_TRUE(daemon.Start().ok());

  const series::CountSequence counts =
      testing_util::RandomDominatedCounts(/*seed=*/5, 96);
  serve::ServeClient client;
  ASSERT_TRUE(client.Connect(daemon.port()).ok());
  const std::vector<double>& a = counts.outbound();
  const std::vector<double>& b = counts.inbound();
  for (int64_t at = 0; at < counts.n(); at += 12) {
    const int64_t m = std::min<int64_t>(12, counts.n() - at);
    auto ack = client.Append(7, a.data() + at, b.data() + at, m);
    ASSERT_TRUE(ack.ok()) << ack.status().message();
    EXPECT_EQ(ack->status, AckStatus::kOk);
    EXPECT_EQ(ack->accepted_ticks, static_cast<uint32_t>(m));
  }
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->tenants, 1u);
  EXPECT_EQ(stats->ticks_ingested, static_cast<uint64_t>(counts.n()));

  daemon.DrainQueues();
  serve::Tenant* tenant = daemon.registry().Find(7);
  ASSERT_NE(tenant, nullptr);
  ASSERT_NE(tenant->session, nullptr);
  daemon.registry().RefreshCover(*tenant);

  const series::CumulativeSeries cumulative(counts);
  const core::ConfidenceEvaluator eval(&cumulative,
                                       core::ConfidenceModel::kBalance);
  auto fresh = core::DiscoverTableau(eval, TestTenantConfig().request);
  ASSERT_TRUE(fresh.ok());
  ExpectSameTableau(tenant->session->tableau(), fresh.value(),
                    " socket-replay");
  daemon.Stop();
}

TEST(ServeDaemon, BackpressureRejectsOverfullTenantQueue) {
  serve::DaemonOptions options;
  options.refresh_ms = 0;
  options.max_tenant_queue_ticks = 8;  // tiny: second append must bounce
                                       // while the first is still queued
  serve::ServeDaemon daemon(TestTenantConfig(), options);
  ASSERT_TRUE(daemon.Start().ok());

  serve::ServeClient client;
  ASSERT_TRUE(client.Connect(daemon.port()).ok());
  std::vector<double> a(8, 1.0);
  std::vector<double> b(8, 2.0);

  // Saturate: keep appending until a backpressure ack arrives. The
  // dispatcher is draining concurrently, so acceptance counts vary, but
  // with an 8-tick bound and 8-tick appends a rejection must occur well
  // within the attempt budget on any scheduling.
  bool saw_backpressure = false;
  for (int attempt = 0; attempt < 10000 && !saw_backpressure; ++attempt) {
    auto ack = client.Append(1, a.data(), b.data(), 8);
    ASSERT_TRUE(ack.ok()) << ack.status().message();
    if (ack->status == AckStatus::kBackpressure) {
      saw_backpressure = true;
      EXPECT_EQ(ack->accepted_ticks, 0u);
    }
  }
  EXPECT_TRUE(saw_backpressure);

  // An append larger than the per-tenant bound can never be admitted.
  std::vector<double> big_a(9, 1.0);
  std::vector<double> big_b(9, 2.0);
  auto ack = client.Append(2, big_a.data(), big_b.data(), 9);
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack->status, AckStatus::kBackpressure);

  daemon.Stop();
  const serve::DaemonStats final_stats = daemon.Stats();
  EXPECT_GT(final_stats.appends_rejected, 0u);
  EXPECT_EQ(final_stats.ticks_ingested, final_stats.ticks_processed);
}

TEST(ServeDaemon, EvictionAndRefaultPreserveTableauBitwise) {
  serve::TenantConfig config = TestTenantConfig();
  serve::DaemonOptions options;
  options.refresh_ms = 0;
  serve::ServeDaemon daemon(config, options);
  ASSERT_TRUE(daemon.Start().ok());

  const series::CountSequence counts =
      testing_util::RandomDominatedCounts(/*seed=*/11, 80);
  serve::ServeClient client;
  ASSERT_TRUE(client.Connect(daemon.port()).ok());
  const std::vector<double>& a = counts.outbound();
  const std::vector<double>& b = counts.inbound();
  // First half, then evict, then second half — the re-faulted session must
  // land exactly where an always-hot one would.
  auto ack = client.Append(3, a.data(), b.data(), 40);
  ASSERT_TRUE(ack.ok());
  ASSERT_EQ(ack->status, AckStatus::kOk);
  daemon.DrainQueues();

  serve::Tenant* tenant = daemon.registry().Find(3);
  ASSERT_NE(tenant, nullptr);
  ASSERT_NE(tenant->session, nullptr);
  daemon.registry().Evict(*tenant);
  EXPECT_EQ(tenant->session, nullptr);
  EXPECT_FALSE(tenant->cold.empty());
  EXPECT_EQ(tenant->cold.tier(), series::SeriesStore::Tier::kSketch);
  EXPECT_EQ(tenant->cold.n(), 40);

  ack = client.Append(3, a.data() + 40, b.data() + 40, 40);
  ASSERT_TRUE(ack.ok());
  ASSERT_EQ(ack->status, AckStatus::kOk);
  daemon.DrainQueues();
  ASSERT_NE(tenant->session, nullptr);  // faulted back up
  EXPECT_TRUE(tenant->cold.empty());    // cold copy dropped on fault
  daemon.registry().RefreshCover(*tenant);

  const series::CumulativeSeries cumulative(counts);
  const core::ConfidenceEvaluator eval(&cumulative, config.request.model);
  auto fresh = core::DiscoverTableau(eval, config.request);
  ASSERT_TRUE(fresh.ok());
  ExpectSameTableau(tenant->session->tableau(), fresh.value(),
                    " evict-refault");
  EXPECT_EQ(daemon.registry().evictions(), 1);
  EXPECT_EQ(daemon.registry().faults(), 2);
  daemon.Stop();
}

TEST(ServeDaemon, StopDrainsEverythingAccepted) {
  serve::DaemonOptions options;
  options.refresh_ms = 5;
  serve::ServeDaemon daemon(TestTenantConfig(), options);
  ASSERT_TRUE(daemon.Start().ok());

  serve::ServeClient client;
  ASSERT_TRUE(client.Connect(daemon.port()).ok());
  std::vector<double> a(4, 1.0);
  std::vector<double> b(4, 2.5);
  uint64_t accepted_ticks = 0;
  for (int i = 0; i < 200; ++i) {
    auto ack = client.Append(1 + (i % 16), a.data(), b.data(), 4);
    ASSERT_TRUE(ack.ok());
    if (ack->status == AckStatus::kOk) accepted_ticks += 4;
  }
  daemon.Stop();  // drains without waiting for the client to disconnect
  const serve::DaemonStats stats = daemon.Stats();
  EXPECT_EQ(stats.ticks_ingested, accepted_ticks);
  EXPECT_EQ(stats.ticks_processed, accepted_ticks);
  for (auto& [id, tenant] : daemon.registry().tenants()) {
    EXPECT_TRUE(tenant->pend_a.empty()) << "tenant " << id;
    EXPECT_FALSE(tenant->cover_dirty) << "tenant " << id;
  }
}

TEST(ServeDaemon, AllZeroTenantStaysPendingOnlyUntilValid) {
  serve::DaemonOptions options;
  options.refresh_ms = 0;
  serve::ServeDaemon daemon(TestTenantConfig(), options);
  ASSERT_TRUE(daemon.Start().ok());

  serve::ServeClient client;
  ASSERT_TRUE(client.Connect(daemon.port()).ok());
  std::vector<double> zero(6, 0.0);
  auto ack = client.Append(9, zero.data(), zero.data(), 6);
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack->status, AckStatus::kOk);  // accepted: the log is the truth
  daemon.DrainQueues();
  serve::Tenant* tenant = daemon.registry().Find(9);
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(tenant->session, nullptr);  // all-zero: no session possible yet

  std::vector<double> a = {1.0, 0.5};
  std::vector<double> b = {2.0, 2.0};
  ack = client.Append(9, a.data(), b.data(), 2);
  ASSERT_TRUE(ack.ok());
  daemon.DrainQueues();
  ASSERT_NE(tenant->session, nullptr);  // first nonzero tick unlocked it
  EXPECT_EQ(tenant->session->n(), 8);   // zeros included in the series
  daemon.Stop();
}

}  // namespace
}  // namespace conservation
