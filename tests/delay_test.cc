#include <gtest/gtest.h>

#include "core/delay.h"
#include "series/cumulative.h"
#include "series/sequence.h"

namespace conservation::core {
namespace {

TEST(DelayTest, PaperFigure2TotalDelay) {
  // Figure 2(a): total delay is at least eight with the unmatched 7-in
  // event; sum (B_l - A_l) = 9 counts its one outstanding tick too.
  auto counts =
      series::CountSequence::Create({2, 0, 1, 1, 2}, {3, 1, 1, 2, 0});
  ASSERT_TRUE(counts.ok());
  const series::CumulativeSeries cumulative(*counts);
  const DelayReport report = TotalDelay(cumulative);
  EXPECT_DOUBLE_EQ(report.total_delay, 9.0);
  EXPECT_DOUBLE_EQ(report.outstanding_at_end, 1.0);
  EXPECT_DOUBLE_EQ(report.delay_per_event, 9.0 / 7.0);
}

TEST(DelayTest, ZeroDelayWhenCurvesCoincide) {
  auto counts = series::CountSequence::Create({3, 1, 2}, {3, 1, 2});
  ASSERT_TRUE(counts.ok());
  const series::CumulativeSeries cumulative(*counts);
  const DelayReport report = TotalDelay(cumulative);
  EXPECT_DOUBLE_EQ(report.total_delay, 0.0);
  EXPECT_DOUBLE_EQ(report.outstanding_at_end, 0.0);
}

TEST(DelayTest, IntervalDelayIsAdditive) {
  auto counts = series::CountSequence::Create({0, 1, 2, 1, 0},
                                              {2, 1, 0, 1, 0});
  ASSERT_TRUE(counts.ok());
  const series::CumulativeSeries cumulative(*counts);
  const double whole = IntervalDelay(cumulative, 1, 5).total_delay;
  const double left = IntervalDelay(cumulative, 1, 2).total_delay;
  const double right = IntervalDelay(cumulative, 3, 5).total_delay;
  EXPECT_DOUBLE_EQ(whole, left + right);
}

TEST(DelayTest, OneTickShiftDelaysEverything) {
  // b = <4, 0>, a = <0, 4>: four events each delayed one tick.
  auto counts = series::CountSequence::Create({0, 4}, {4, 0});
  ASSERT_TRUE(counts.ok());
  const series::CumulativeSeries cumulative(*counts);
  EXPECT_DOUBLE_EQ(TotalDelay(cumulative).total_delay, 4.0);
  EXPECT_DOUBLE_EQ(TotalDelay(cumulative).delay_per_event, 1.0);
}

}  // namespace
}  // namespace conservation::core
