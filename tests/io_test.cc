#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "io/csv.h"
#include "io/table_printer.h"
#include "io/timeline.h"

namespace conservation::io {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + "/" + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(CsvTest, RoundTrip) {
  TempFile file("roundtrip.csv");
  auto counts = series::CountSequence::Create({1, 2.5, 3}, {4, 5, 6.25});
  ASSERT_TRUE(counts.ok());
  ASSERT_TRUE(WriteCountsCsv(file.path(), *counts).ok());
  auto loaded = ReadCountsCsv(file.path());
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->n(), 3);
  EXPECT_DOUBLE_EQ(loaded->a(2), 2.5);
  EXPECT_DOUBLE_EQ(loaded->b(3), 6.25);
}

TEST(CsvTest, MissingFile) {
  auto loaded = ReadCountsCsv("/nonexistent/never.csv");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kNotFound);
}

TEST(CsvTest, CustomColumnsAndSeparator) {
  TempFile file("columns.csv");
  {
    std::ofstream out(file.path());
    out << "ts;in;out\n1;10;7\n2;11;8\n";
  }
  CsvReadOptions options;
  options.separator = ';';
  options.column_a = 2;  // out
  options.column_b = 1;  // in
  auto loaded = ReadCountsCsv(file.path(), options);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded->a(1), 7.0);
  EXPECT_DOUBLE_EQ(loaded->b(2), 11.0);
}

TEST(CsvTest, MalformedRowFailsByDefault) {
  TempFile file("malformed.csv");
  {
    std::ofstream out(file.path());
    out << "a,b\n1,2\nx,y\n";
  }
  EXPECT_FALSE(ReadCountsCsv(file.path()).ok());
  CsvReadOptions options;
  options.skip_malformed_rows = true;
  auto loaded = ReadCountsCsv(file.path(), options);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->n(), 1);
}

TEST(CsvTest, BlankLinesSkipped) {
  TempFile file("blank.csv");
  {
    std::ofstream out(file.path());
    out << "a,b\n1,2\n\n3,4\n   \n";
  }
  auto loaded = ReadCountsCsv(file.path());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->n(), 2);
}

TEST(CsvTest, WriteColumns) {
  TempFile file("cols.csv");
  ASSERT_TRUE(WriteColumnsCsv(file.path(),
                              {{"x", {1, 2}}, {"y", {3, 4}}})
                  .ok());
  std::ifstream in(file.path());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,3");
}

TEST(CsvTest, WriteColumnsLengthMismatch) {
  TempFile file("bad_cols.csv");
  EXPECT_FALSE(
      WriteColumnsCsv(file.path(), {{"x", {1, 2}}, {"y", {3}}}).ok());
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter printer({"name", "value"});
  printer.AddRow({"alpha", "1"});
  printer.AddRow({"b", "12345"});
  const std::string out = printer.ToString();
  EXPECT_NE(out.find("name   value"), std::string::npos);
  EXPECT_NE(out.find("alpha  1"), std::string::npos);
  EXPECT_NE(out.find("b      12345"), std::string::npos);
  EXPECT_EQ(printer.num_rows(), 2u);
}

TEST(MonthTimelineTest, LabelsAndRanges) {
  const MonthTimeline timeline(1981, 1);
  EXPECT_EQ(timeline.Label(1), "Jan 1981");
  EXPECT_EQ(timeline.Label(12), "Dec 1981");
  EXPECT_EQ(timeline.Label(13), "Jan 1982");
  EXPECT_EQ(timeline.LabelRange({323, 324}), "Nov-Dec 2007");
  EXPECT_EQ(timeline.LabelRange({324, 325}), "Dec 2007 - Jan 2008");
  EXPECT_EQ(timeline.LabelRange({5, 5}), "May 1981");
}

TEST(MonthTimelineTest, TickOf) {
  const MonthTimeline timeline(1981, 1);
  EXPECT_EQ(timeline.TickOf(1981, 1), 1);
  EXPECT_EQ(timeline.TickOf(2007, 11), 323);
  EXPECT_EQ(timeline.TickOf(1980, 12), 0);  // before start
}

TEST(MonthTimelineTest, MidYearStart) {
  const MonthTimeline timeline(2005, 7);
  EXPECT_EQ(timeline.Label(1), "Jul 2005");
  EXPECT_EQ(timeline.Label(7), "Jan 2006");
}

TEST(SlotTimelineTest, LabelsAndRanges) {
  const SlotTimeline timeline(48);
  EXPECT_EQ(timeline.DayOf(1), 0);
  EXPECT_EQ(timeline.SlotOf(1), 0);
  EXPECT_EQ(timeline.Label(1), "day 000 00:00");
  EXPECT_EQ(timeline.Label(48), "day 000 23:30");
  EXPECT_EQ(timeline.Label(49), "day 001 00:00");
  EXPECT_EQ(timeline.LabelRange({23, 29}),
            "day 000 11:00-14:00");
  EXPECT_EQ(timeline.LabelRange({48, 49}),
            "day 000 23:30 - day 001 00:00");
}

}  // namespace
}  // namespace conservation::io
