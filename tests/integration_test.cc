// End-to-end scenarios mirroring the paper's experiments (§IV), run through
// the full pipeline: generator -> ConservationRule -> tableau discovery.

#include <gtest/gtest.h>

#include "core/conservation_rule.h"
#include "datagen/credit_card.h"
#include "datagen/people_count.h"
#include "datagen/perturb.h"
#include "datagen/router.h"
#include "interval/generator.h"
#include "io/timeline.h"

namespace conservation {
namespace {

using core::ConfidenceModel;
using core::ConservationRule;
using core::TableauRequest;
using core::TableauType;

// --- §IV.D: perturbed data ------------------------------------------------

class PerturbedScenario : public ::testing::Test {
 protected:
  PerturbedScenario() : base_(datagen::GenerateWellBehavedTraffic(906)) {}

  series::CountSequence base_;
};

TEST_F(PerturbedScenario, WellBehavedDataHasEmptyFailTableau) {
  auto rule = ConservationRule::Create(base_);
  ASSERT_TRUE(rule.ok());
  TableauRequest request;
  request.type = TableauType::kFail;
  request.c_hat = 0.3;
  request.s_hat = 0.05;
  auto tableau = rule->DiscoverTableau(request);
  ASSERT_TRUE(tableau.ok());
  // Paper: "we obtained empty fail tableaux with a confidence bound as high
  // as 0.3" on the unperturbed data.
  EXPECT_FALSE(tableau->support_satisfied);
  EXPECT_EQ(tableau->covered, 0);
}

TEST_F(PerturbedScenario, WellBehavedDataHoldsNearOne) {
  auto rule = ConservationRule::Create(base_);
  ASSERT_TRUE(rule.ok());
  EXPECT_GT(*rule->OverallConfidence(ConfidenceModel::kBalance), 0.99);
}

TEST_F(PerturbedScenario, DelayedTrafficSplitsHoldTableau) {
  datagen::PerturbationSpec spec;
  spec.fraction = 0.1;
  spec.compensate = true;
  spec.latest_start_fraction = 0.4;  // leave room for outage + recovery
  datagen::PerturbationInfo info;
  const series::CountSequence perturbed =
      datagen::ApplyPerturbation(base_, spec, &info);
  auto rule = ConservationRule::Create(perturbed);
  ASSERT_TRUE(rule.ok());

  TableauRequest request;
  request.type = TableauType::kHold;
  request.c_hat = 0.99;
  request.s_hat = 0.6;
  request.epsilon = 0.01;
  auto tableau = rule->DiscoverTableau(request);
  ASSERT_TRUE(tableau.ok());
  ASSERT_GE(tableau->size(), 1u);

  // Paper: the hold tableau picks up the period before the drop and the
  // period after the compensation — the middle of the outage stays
  // uncovered.
  const int64_t mid = (info.drop_end + info.recovery_tick) / 2;
  for (const core::TableauRow& row : tableau->rows) {
    EXPECT_FALSE(row.interval.Contains(mid))
        << row.interval.ToString() << " covers outage midpoint " << mid;
  }
  // Some interval covers ticks before the drop and some covers ticks after
  // the recovery.
  bool covers_early = false;
  bool covers_late = false;
  for (const core::TableauRow& row : tableau->rows) {
    if (row.interval.begin < info.drop_begin) covers_early = true;
    if (row.interval.end > info.recovery_tick) covers_late = true;
  }
  EXPECT_TRUE(covers_early);
  EXPECT_TRUE(covers_late);
}

TEST_F(PerturbedScenario, FailTableauPinpointsTheDrop) {
  datagen::PerturbationSpec spec;
  spec.fraction = 0.1;
  spec.compensate = true;
  spec.latest_start_fraction = 0.4;  // leave room for outage + recovery
  datagen::PerturbationInfo info;
  const series::CountSequence perturbed =
      datagen::ApplyPerturbation(base_, spec, &info);
  auto rule = ConservationRule::Create(perturbed);
  ASSERT_TRUE(rule.ok());

  TableauRequest request;
  request.type = TableauType::kFail;
  request.c_hat = 0.1;
  request.s_hat = 0.01;
  request.epsilon = 0.01;
  auto tableau = rule->DiscoverTableau(request);
  ASSERT_TRUE(tableau.ok());
  ASSERT_GE(tableau->size(), 1u);
  // The reported intervals overlap the drop region.
  bool overlaps_drop = false;
  for (const core::TableauRow& row : tableau->rows) {
    if (row.interval.Overlaps({info.drop_begin, info.drop_end + 5})) {
      overlaps_drop = true;
    }
  }
  EXPECT_TRUE(overlaps_drop);
}

TEST_F(PerturbedScenario, LossKeepsFailingUntilTheEnd) {
  datagen::PerturbationSpec spec;
  spec.fraction = 0.25;
  spec.compensate = false;  // loss
  spec.latest_start_fraction = 0.4;
  datagen::PerturbationInfo info;
  const series::CountSequence perturbed =
      datagen::ApplyPerturbation(base_, spec, &info);
  auto rule = ConservationRule::Create(perturbed);
  ASSERT_TRUE(rule.ok());

  // Paper: "when there was loss rather than delay, hold tableaux picked up
  // only the interval before the loss, and fail tableaux picked up
  // intervals until the end of time" (balance model).
  TableauRequest hold;
  hold.type = TableauType::kHold;
  hold.c_hat = 0.99;
  hold.s_hat = 0.3;
  auto hold_tableau = rule->DiscoverTableau(hold);
  ASSERT_TRUE(hold_tableau.ok());
  for (const core::TableauRow& row : hold_tableau->rows) {
    EXPECT_LT(row.interval.end, info.drop_begin + 50);
  }

  TableauRequest fail;
  fail.type = TableauType::kFail;
  fail.c_hat = 0.3;
  fail.s_hat = 0.7;  // force coverage deep into the post-drop regime
  auto fail_tableau = rule->DiscoverTableau(fail);
  ASSERT_TRUE(fail_tableau.ok());
  ASSERT_GE(fail_tableau->size(), 1u);
  EXPECT_TRUE(fail_tableau->support_satisfied);
  int64_t latest_end = 0;
  for (const core::TableauRow& row : fail_tableau->rows) {
    latest_end = std::max(latest_end, row.interval.end);
  }
  EXPECT_GE(latest_end, base_.n() - 5);
}

TEST_F(PerturbedScenario, CreditModelForgivesLossAfterwards) {
  // With loss, credit/debit models discount the missing mass, so fail
  // tableaux report (roughly) only the drop period, not the suffix.
  datagen::PerturbationSpec spec;
  spec.fraction = 0.25;
  spec.compensate = false;
  spec.latest_start_fraction = 0.4;
  datagen::PerturbationInfo info;
  const series::CountSequence perturbed =
      datagen::ApplyPerturbation(base_, spec, &info);
  auto rule = ConservationRule::Create(perturbed);
  ASSERT_TRUE(rule.ok());

  // Confidence of a post-drop suffix: near zero under balance, near one
  // under credit.
  const int64_t suffix_start = info.drop_end + 50;
  const int64_t n = perturbed.n();
  if (suffix_start < n - 50) {
    const double balance =
        *rule->Confidence(ConfidenceModel::kBalance, suffix_start, n);
    const double credit =
        *rule->Confidence(ConfidenceModel::kCredit, suffix_start, n);
    EXPECT_LT(balance, 0.7);
    EXPECT_GT(credit, 0.9);
  }
}

// --- §IV.A: credit-card scenario -------------------------------------------

TEST(CreditCardScenario, FailTableauFindsHolidaySeasons) {
  const datagen::CreditCardData data = datagen::GenerateCreditCard();
  auto rule = ConservationRule::Create(data.counts);
  ASSERT_TRUE(rule.ok());

  // Whole-sequence confidence is high (bills eventually get paid).
  EXPECT_GT(*rule->OverallConfidence(ConfidenceModel::kBalance), 0.9);

  TableauRequest request;
  request.type = TableauType::kFail;
  request.model = ConfidenceModel::kBalance;
  // The paper used c_hat = 0.8 on the RBNZ data; our synthetic absolute
  // levels sit slightly lower, and 0.7 separates Nov-Dec (conf ~0.65) from
  // the clean Oct-Dec envelope (conf ~0.79). See EXPERIMENTS.md.
  request.c_hat = 0.7;
  request.s_hat = 0.03;
  request.epsilon = 0.01;
  auto tableau = rule->DiscoverTableau(request);
  ASSERT_TRUE(tableau.ok());
  ASSERT_GE(tableau->size(), 1u);

  const io::MonthTimeline timeline(data.params.start_year, 1);
  int november_or_december_starts = 0;
  for (const core::TableauRow& row : tableau->rows) {
    const int month = timeline.MonthOf(row.interval.begin);
    if (month == 11 || month == 12) ++november_or_december_starts;
    // Paper: no tableau intervals ending in January — the January payment
    // catch-up lifts confidence back above the threshold.
    EXPECT_NE(timeline.MonthOf(row.interval.end), 1)
        << timeline.LabelRange(row.interval);
  }
  EXPECT_GT(november_or_december_starts, 0);
}

// --- §IV.B: people-count scenario -------------------------------------------

TEST(PeopleCountScenario, CreditFailIntervalsAlignWithEvents) {
  const datagen::PeopleCountData data = datagen::GeneratePeopleCount();
  auto rule = ConservationRule::Create(data.counts);
  ASSERT_TRUE(rule.ok());

  // Mirror the paper's Table I protocol: generate the candidate maximal
  // fail intervals (credit model, c_hat = 0.6) and, for each event day,
  // check that some interval on that day overlaps the event.
  const core::ConfidenceEvaluator eval =
      rule->Evaluator(ConfidenceModel::kCredit);
  interval::GeneratorOptions options;
  options.type = TableauType::kFail;
  options.c_hat = 0.6;
  options.epsilon = 0.01;
  const auto generator =
      interval::MakeGenerator(interval::AlgorithmKind::kAreaBased);
  const std::vector<interval::Interval> candidates =
      generator->Generate(eval, options, nullptr);

  int matched = 0;
  for (const datagen::BuildingEvent& event : data.events) {
    const interval::Interval event_range{event.BeginTick(), event.EndTick()};
    for (const interval::Interval& candidate : candidates) {
      if (candidate.Overlaps(event_range)) {
        ++matched;
        break;
      }
    }
  }
  // A clear majority of events is flagged (a couple of low-attendance or
  // late-day events can stay above the threshold, as in any real trace).
  EXPECT_GE(matched * 10, static_cast<int>(data.events.size()) * 6);

  // And the side-exit imbalance depresses the *balance* model on late days
  // while the credit model holds — the reason the paper switches models.
  const int64_t n = data.counts.n();
  const int64_t late_day_begin = n - 48 * 7 + 1;  // last week
  const double balance_conf =
      *rule->Confidence(ConfidenceModel::kBalance, late_day_begin, n);
  const double credit_conf =
      *rule->Confidence(ConfidenceModel::kCredit, late_day_begin, n);
  EXPECT_GT(credit_conf, balance_conf + 0.1);
}

// --- §IV.C: network scenario ------------------------------------------------

TEST(NetworkScenario, DebitFailTableauFlagsOnlyBadRouters) {
  const std::vector<datagen::RouterData> fleet =
      datagen::GenerateRouterFleet(4, 1200, 31337);
  for (const datagen::RouterData& router : fleet) {
    auto rule = ConservationRule::Create(router.counts);
    ASSERT_TRUE(rule.ok()) << router.name;
    TableauRequest request;
    request.type = TableauType::kFail;
    request.model = ConfidenceModel::kDebit;
    request.c_hat = 0.5;
    request.s_hat = 0.5;
    auto tableau = rule->DiscoverTableau(request);
    ASSERT_TRUE(tableau.ok()) << router.name;

    const bool is_bad =
        router.params.profile != datagen::RouterProfile::kClean;
    EXPECT_EQ(tableau->support_satisfied, is_bad) << router.name;
  }
}

}  // namespace
}  // namespace conservation
