#include <gtest/gtest.h>

#include "core/conservation_rule.h"
#include "io/json.h"

namespace conservation::io {
namespace {

TEST(JsonWriterTest, PrimitiveValues) {
  {
    JsonWriter json;
    json.Int(42);
    EXPECT_EQ(json.str(), "42");
  }
  {
    JsonWriter json;
    json.Double(2.5);
    EXPECT_EQ(json.str(), "2.5");
  }
  {
    JsonWriter json;
    json.Bool(true);
    EXPECT_EQ(json.str(), "true");
  }
  {
    JsonWriter json;
    json.Null();
    EXPECT_EQ(json.str(), "null");
  }
  {
    JsonWriter json;
    json.String("hi");
    EXPECT_EQ(json.str(), "\"hi\"");
  }
}

TEST(JsonWriterTest, NestedStructure) {
  JsonWriter json;
  json.BeginObject();
  json.Key("a");
  json.Int(1);
  json.Key("list");
  json.BeginArray();
  json.Int(1);
  json.Int(2);
  json.BeginObject();
  json.Key("x");
  json.Bool(false);
  json.EndObject();
  json.EndArray();
  json.Key("b");
  json.String("z");
  json.EndObject();
  EXPECT_EQ(std::move(json).Take(),
            R"({"a":1,"list":[1,2,{"x":false}],"b":"z"})");
}

TEST(JsonWriterTest, StringEscaping) {
  JsonWriter json;
  json.String("a\"b\\c\nd\te");
  EXPECT_EQ(json.str(), "\"a\\\"b\\\\c\\nd\\te\"");
}

TEST(JsonWriterTest, ControlCharactersEscaped) {
  JsonWriter json;
  json.String(std::string("x") + '\x01' + "y");
  EXPECT_EQ(json.str(), "\"x\\u0001y\"");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter json;
  json.BeginArray();
  json.Double(std::numeric_limits<double>::quiet_NaN());
  json.Double(std::numeric_limits<double>::infinity());
  json.EndArray();
  EXPECT_EQ(json.str(), "[null,null]");
}

TEST(TableauJsonTest, RoundTripShape) {
  auto rule = core::ConservationRule::Create({9, 9, 0, 0, 9, 9},
                                             {9, 9, 9, 9, 9, 9});
  ASSERT_TRUE(rule.ok());
  core::TableauRequest request;
  request.type = core::TableauType::kFail;
  request.c_hat = 0.3;
  request.s_hat = 0.2;
  auto tableau = rule->DiscoverTableau(request);
  ASSERT_TRUE(tableau.ok());
  const std::string json = TableauToJson(*tableau);

  EXPECT_NE(json.find("\"type\":\"fail\""), std::string::npos);
  EXPECT_NE(json.find("\"model\":\"balance\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\":["), std::string::npos);
  EXPECT_NE(json.find("\"begin\":"), std::string::npos);
  EXPECT_NE(json.find("\"support_satisfied\":true"), std::string::npos);
  // Balanced braces/brackets (cheap structural sanity).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

}  // namespace
}  // namespace conservation::io
