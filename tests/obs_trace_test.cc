#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>

#include "obs/trace.h"

namespace conservation::obs {
namespace {

// Tests share the process-global trace rings; each test starts a fresh
// session (StartTracing zeroes every ring) and stops recording on exit so
// later tests never see its events.

#if CONSERVATION_TRACING

TEST(TraceTest, DisabledRecordsNothing) {
  StopTracing();
  ClearTrace();
  {
    CR_TRACE_SPAN("test.trace.disabled_span");
  }
  CR_TRACE_INSTANT("test.trace.disabled_instant");
  const std::string json = TraceToJson();
  EXPECT_EQ(json.find("test.trace.disabled_span"), std::string::npos);
  EXPECT_EQ(json.find("test.trace.disabled_instant"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\":0"), std::string::npos);
}

TEST(TraceTest, SpanWithArgsRecorded) {
  StartTracing();
  {
    CR_TRACE_SPAN_ARGS("test.trace.span_args", "k", 7, "j", 9);
  }
  StopTracing();
  const std::string json = TraceToJson();
  EXPECT_NE(json.find("\"name\":\"test.trace.span_args\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"k\":7,\"j\":9}"), std::string::npos);
}

TEST(TraceTest, InstantRecordedWithThreadScope) {
  StartTracing();
  CR_TRACE_INSTANT("test.trace.instant");
  StopTracing();
  const std::string json = TraceToJson();
  const size_t at = json.find("\"name\":\"test.trace.instant\"");
  ASSERT_NE(at, std::string::npos);
  // The instant's own event object carries ph:"i" and thread scope.
  const std::string event = json.substr(at, json.find('}', at) - at);
  EXPECT_NE(event.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(event.find("\"s\":\"t\""), std::string::npos);
}

TEST(TraceTest, VerbosityGatesHighVolumeInstants) {
  TraceOptions options;
  options.verbosity = 1;
  StartTracing(options);
  CR_TRACE_INSTANT_V2("test.trace.v2_suppressed");
  StopTracing();
  EXPECT_EQ(TraceToJson().find("test.trace.v2_suppressed"),
            std::string::npos);

  options.verbosity = 2;
  StartTracing(options);
  CR_TRACE_INSTANT_V2("test.trace.v2_recorded");
  StopTracing();
  EXPECT_NE(TraceToJson().find("test.trace.v2_recorded"), std::string::npos);
}

TEST(TraceTest, TwoThreadsGetDistinctNamedTracks) {
  StartTracing();
  SetCurrentThreadName("trace-test-main");
  {
    CR_TRACE_SPAN("test.trace.main_span");
  }
  std::thread worker([] {
    SetCurrentThreadName("trace-test-worker");
    CR_TRACE_SPAN("test.trace.worker_span");
  });
  worker.join();
  StopTracing();

  const std::string json = TraceToJson();
  EXPECT_NE(json.find("\"args\":{\"name\":\"trace-test-main\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"trace-test-worker\"}"),
            std::string::npos);

  // The two spans sit on different tid tracks.
  auto tid_of = [&json](const char* name) {
    const size_t at = json.find(std::string("\"name\":\"") + name + "\"");
    EXPECT_NE(at, std::string::npos);
    const size_t tid_at = json.find("\"tid\":", at);
    return json.substr(tid_at, json.find(',', tid_at) - tid_at);
  };
  EXPECT_NE(tid_of("test.trace.main_span"), tid_of("test.trace.worker_span"));
}

TEST(TraceTest, RingOverflowCountsDroppedEvents) {
  TraceOptions options;
  options.buffer_capacity = 16;  // the enforced minimum
  StartTracing(options);
  for (int k = 0; k < 50; ++k) {
    CR_TRACE_INSTANT("test.trace.overflow");
  }
  StopTracing();
  const std::string json = TraceToJson();
  // head = 50, retained = 16 -> 34 dropped; most recent events win.
  EXPECT_NE(json.find("\"dropped_events\":34"), std::string::npos);
}

TEST(TraceTest, WriteTraceProducesLoadableFile) {
  StartTracing();
  {
    CR_TRACE_SPAN("test.trace.file_span");
  }
  StopTracing();
  const std::string path = testing::TempDir() + "obs_trace_test.json";
  ASSERT_TRUE(WriteTrace(path));
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string contents(1 << 16, '\0');
  contents.resize(std::fread(contents.data(), 1, contents.size(), file));
  std::fclose(file);
  std::remove(path.c_str());
  EXPECT_NE(contents.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(contents.find("test.trace.file_span"), std::string::npos);
}

TEST(TraceTest, RestartClearsPreviousSession) {
  StartTracing();
  CR_TRACE_INSTANT("test.trace.first_session");
  StopTracing();
  StartTracing();  // new session: old events must be gone
  CR_TRACE_INSTANT("test.trace.second_session");
  StopTracing();
  const std::string json = TraceToJson();
  EXPECT_EQ(json.find("test.trace.first_session"), std::string::npos);
  EXPECT_NE(json.find("test.trace.second_session"), std::string::npos);
}

#else  // !CONSERVATION_TRACING

TEST(TraceTest, MacrosCompileToNothing) {
  // In a -DCONSERVATION_TRACING=OFF build the macros must still be valid
  // statements that record nothing.
  StartTracing();
  {
    CR_TRACE_SPAN("test.trace.compiled_out");
    CR_TRACE_SPAN_ARGS("test.trace.compiled_out_args", "k", 1);
  }
  CR_TRACE_INSTANT("test.trace.compiled_out_instant");
  CR_TRACE_INSTANT_V2("test.trace.compiled_out_v2");
  StopTracing();
  EXPECT_EQ(TraceToJson().find("test.trace.compiled_out"), std::string::npos);
}

#endif  // CONSERVATION_TRACING

}  // namespace
}  // namespace conservation::obs
