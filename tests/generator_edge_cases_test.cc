// Edge-case and adversarial inputs for the candidate generators: the
// degenerate shapes that motivate the paper's design choices, including the
// §VII counterexample showing why overlapping-interval similarity (the
// assumption behind the sequential-dependency algorithm of [12]) fails for
// conservation rules.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/confidence.h"
#include "interval/generator.h"
#include "series/cumulative.h"
#include "series/sequence.h"

namespace conservation::interval {
namespace {

using core::ConfidenceEvaluator;
using core::ConfidenceModel;
using core::TableauType;
using series::CountSequence;
using series::CumulativeSeries;

std::vector<Interval> RunGen(const CountSequence& counts, AlgorithmKind kind,
                          TableauType type, ConfidenceModel model,
                          double c_hat, double epsilon = 0.1) {
  const CumulativeSeries cumulative(counts);
  const ConfidenceEvaluator eval(&cumulative, model);
  GeneratorOptions options;
  options.type = type;
  options.c_hat = c_hat;
  options.epsilon = epsilon;
  return MakeGenerator(kind)->Generate(eval, options, nullptr);
}

constexpr AlgorithmKind kAllKinds[] = {
    AlgorithmKind::kExhaustive, AlgorithmKind::kAreaBased,
    AlgorithmKind::kAreaBasedOpt, AlgorithmKind::kNonAreaBased,
    AlgorithmKind::kNonAreaBasedOpt};

TEST(GeneratorEdgeCases, SingleTick) {
  auto counts = CountSequence::Create({3}, {3});
  ASSERT_TRUE(counts.ok());
  for (const AlgorithmKind kind : kAllKinds) {
    const auto hold = RunGen(*counts, kind, TableauType::kHold,
                          ConfidenceModel::kBalance, 0.9);
    ASSERT_EQ(hold.size(), 1u) << AlgorithmKindName(kind);
    EXPECT_EQ(hold[0], (Interval{1, 1})) << AlgorithmKindName(kind);
    const auto fail = RunGen(*counts, kind, TableauType::kFail,
                          ConfidenceModel::kBalance, 0.5);
    EXPECT_TRUE(fail.empty()) << AlgorithmKindName(kind);  // conf = 1
  }
}

TEST(GeneratorEdgeCases, AllOutboundZero) {
  // Total loss: every interval has confidence 0.
  auto counts = CountSequence::Create({0, 0, 0, 0}, {2, 3, 1, 4});
  ASSERT_TRUE(counts.ok());
  for (const AlgorithmKind kind : kAllKinds) {
    const auto hold = RunGen(*counts, kind, TableauType::kHold,
                          ConfidenceModel::kBalance, 0.5);
    EXPECT_TRUE(hold.empty()) << AlgorithmKindName(kind);
    const auto fail = RunGen(*counts, kind, TableauType::kFail,
                          ConfidenceModel::kBalance, 0.5);
    // The whole range fails; every anchor produces a candidate reaching n.
    ASSERT_FALSE(fail.empty()) << AlgorithmKindName(kind);
    int64_t latest = 0;
    for (const Interval& iv : fail) latest = std::max(latest, iv.end);
    EXPECT_EQ(latest, 4) << AlgorithmKindName(kind);
  }
}

TEST(GeneratorEdgeCases, PerfectConservation) {
  auto counts = CountSequence::Create({5, 5, 5, 5, 5}, {5, 5, 5, 5, 5});
  ASSERT_TRUE(counts.ok());
  for (const AlgorithmKind kind : kAllKinds) {
    const auto hold = RunGen(*counts, kind, TableauType::kHold,
                          ConfidenceModel::kBalance, 1.0);
    ASSERT_FALSE(hold.empty()) << AlgorithmKindName(kind);
    // Some candidate spans everything.
    bool full = false;
    for (const Interval& iv : hold) full |= iv == Interval{1, 5};
    EXPECT_TRUE(full) << AlgorithmKindName(kind);
  }
}

TEST(GeneratorEdgeCases, Section7Counterexample) {
  // §VII: "take any interval and add a single arbitrarily large b_i with a
  // corresponding a_i = 0" — two highly-overlapping intervals of similar
  // size then have wildly different confidences, which is why the
  // interval-finding machinery of [12] cannot be reused.
  std::vector<double> a(20, 10.0);
  std::vector<double> b(20, 10.0);
  b[10] = 10000.0;  // tick 11: inbound burst, no outbound
  a[10] = 0.0;
  auto counts = CountSequence::Create(a, b);
  ASSERT_TRUE(counts.ok());
  const CumulativeSeries cumulative(*counts);
  const ConfidenceEvaluator eval(&cumulative, ConfidenceModel::kBalance);
  const double before = *eval.Confidence(1, 10);
  const double with_burst = *eval.Confidence(1, 11);
  EXPECT_GT(before, 0.9);
  EXPECT_LT(with_burst, 0.2);
  // And the generators still satisfy their guarantees around the spike:
  for (const AlgorithmKind kind :
       {AlgorithmKind::kAreaBased, AlgorithmKind::kAreaBasedOpt}) {
    const auto hold = RunGen(*counts, kind, TableauType::kHold,
                          ConfidenceModel::kBalance, 0.9, 0.01);
    // Anchor 1's exact optimum is [1, 10]; approximate output must reach it.
    const auto anchored =
        std::find_if(hold.begin(), hold.end(),
                     [](const Interval& iv) { return iv.begin == 1; });
    ASSERT_NE(anchored, hold.end()) << AlgorithmKindName(kind);
    EXPECT_GE(anchored->end, 10) << AlgorithmKindName(kind);
  }
}

TEST(GeneratorEdgeCases, LongZeroPlateausDoNotBreakFailGeneration) {
  // Inbound and outbound both flat-zero in the middle: areas stall, which
  // stresses the breakpoint logic (undefined confidences, zero levels).
  std::vector<double> a = {4, 4, 0, 0, 0, 0, 0, 0, 4, 4};
  std::vector<double> b = {4, 4, 0, 0, 0, 0, 0, 0, 4, 4};
  auto counts = CountSequence::Create(a, b);
  ASSERT_TRUE(counts.ok());
  for (const AlgorithmKind kind : kAllKinds) {
    for (const ConfidenceModel model :
         {ConfidenceModel::kBalance, ConfidenceModel::kCredit,
          ConfidenceModel::kDebit}) {
      const bool nab = kind == AlgorithmKind::kNonAreaBased ||
                       kind == AlgorithmKind::kNonAreaBasedOpt;
      if (nab && model != ConfidenceModel::kBalance) continue;
      const auto fail = RunGen(*counts, kind, TableauType::kFail, model, 0.4);
      // Perfect conservation: nothing fails at 0.4 (confidence is 1 or
      // undefined everywhere).
      EXPECT_TRUE(fail.empty())
          << AlgorithmKindName(kind) << "/" << ConfidenceModelName(model);
    }
  }
}

TEST(GeneratorEdgeCases, CreditFailZeroAreaPrefixIsCovered) {
  // Regression test for the credit-model fail special case: within the
  // zero-balance-area prefix the credit confidence is neither zero nor
  // monotone, and the paper's plain breakpoints can overshoot. Construct a
  // flat-A prefix with a growing gap so intermediate lengths qualify.
  std::vector<double> a = {1, 0, 0, 0, 0, 0, 0, 0, 0, 9};
  std::vector<double> b = {2, 3, 1, 4, 2, 3, 1, 2, 3, 1};
  auto counts = CountSequence::Create(a, b);
  ASSERT_TRUE(counts.ok());
  const CumulativeSeries cumulative(*counts);
  const ConfidenceEvaluator eval(&cumulative, ConfidenceModel::kCredit);

  GeneratorOptions options;
  options.type = TableauType::kFail;
  options.c_hat = 0.5;
  options.epsilon = 0.05;

  // Exhaustive ground truth per anchor.
  const auto exact = MakeGenerator(AlgorithmKind::kExhaustive)
                         ->Generate(eval, options, nullptr);
  for (const AlgorithmKind kind :
       {AlgorithmKind::kAreaBased, AlgorithmKind::kAreaBasedOpt}) {
    const auto approx = MakeGenerator(kind)->Generate(eval, options, nullptr);
    for (const Interval& optimal : exact) {
      const auto anchored = std::find_if(
          approx.begin(), approx.end(),
          [&](const Interval& iv) { return iv.begin == optimal.begin; });
      ASSERT_NE(anchored, approx.end())
          << AlgorithmKindName(kind) << " missing anchor "
          << optimal.begin;
      EXPECT_GE(anchored->end, optimal.end) << AlgorithmKindName(kind);
    }
  }
}

TEST(GeneratorEdgeCases, StopOnFullCoverShortCircuits) {
  auto counts = CountSequence::Create({5, 5, 5, 5, 5, 5, 5, 5},
                                      {5, 5, 5, 5, 5, 5, 5, 5});
  ASSERT_TRUE(counts.ok());
  const CumulativeSeries cumulative(*counts);
  const ConfidenceEvaluator eval(&cumulative, ConfidenceModel::kBalance);
  GeneratorOptions options;
  options.type = TableauType::kHold;
  options.c_hat = 0.99;
  options.epsilon = 0.1;
  options.stop_on_full_cover = true;
  for (const AlgorithmKind kind : kAllKinds) {
    GeneratorStats stats;
    const auto out = MakeGenerator(kind)->Generate(eval, options, &stats);
    ASSERT_EQ(out.size(), 1u) << AlgorithmKindName(kind);
    EXPECT_EQ(out[0], (Interval{1, 8})) << AlgorithmKindName(kind);
  }
}

TEST(GeneratorEdgeCases, FractionalCounts) {
  // Non-integer data (credit-card-like); generators must remain exact with
  // respect to their guarantees even when Delta is fractional.
  auto counts = CountSequence::Create({0.25, 1.75, 0.5, 2.0},
                                      {1.0, 1.5, 1.0, 1.0});
  ASSERT_TRUE(counts.ok());
  for (const AlgorithmKind kind : kAllKinds) {
    const auto hold = RunGen(*counts, kind, TableauType::kHold,
                          ConfidenceModel::kBalance, 0.5, 0.01);
    for (const Interval& iv : hold) {
      const CumulativeSeries cumulative(*counts);
      const ConfidenceEvaluator eval(&cumulative, ConfidenceModel::kBalance);
      const auto conf = eval.Confidence(iv.begin, iv.end);
      ASSERT_TRUE(conf.has_value());
      EXPECT_GE(*conf, 0.5 / 1.01) << AlgorithmKindName(kind);
    }
  }
}

}  // namespace
}  // namespace conservation::interval
