#include <gtest/gtest.h>

#include "core/report.h"
#include "datagen/perturb.h"
#include "datagen/router.h"

namespace conservation::core {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  ReportTest() : base_(datagen::GenerateWellBehavedTraffic(906)) {}

  series::CountSequence base_;
};

TEST_F(ReportTest, CleanDataReportsEmptyTableau) {
  auto rule = ConservationRule::Create(base_);
  ASSERT_TRUE(rule.ok());
  ReportOptions options;
  options.fail_c_hat = 0.3;
  auto report = BuildQualityReport(*rule, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->n, 906);
  EXPECT_TRUE(report->fail_tableau.rows.empty());
  ASSERT_EQ(report->overall.size(), 3u);
  for (const auto& [name, conf] : report->overall) {
    ASSERT_TRUE(conf.has_value()) << name;
    EXPECT_GT(*conf, 0.99) << name;
  }
  const std::string text = report->ToString();
  EXPECT_NE(text.find("quality report (906 ticks)"), std::string::npos);
  EXPECT_NE(text.find("empty"), std::string::npos);
  EXPECT_NE(text.find("per-segment confidence"), std::string::npos);
}

TEST_F(ReportTest, OutageShowsUpWithDiagnosisAndSeverity) {
  datagen::PerturbationSpec spec;
  spec.fraction = 0.1;
  spec.compensate = true;
  spec.latest_start_fraction = 0.4;
  datagen::PerturbationInfo info;
  const series::CountSequence perturbed =
      datagen::ApplyPerturbation(base_, spec, &info);
  auto rule = ConservationRule::Create(perturbed);
  ASSERT_TRUE(rule.ok());

  ReportOptions options;
  options.fail_c_hat = 0.3;
  options.support = 0.02;
  auto report = BuildQualityReport(*rule, options);
  ASSERT_TRUE(report.ok());
  ASSERT_GE(report->fail_tableau.size(), 1u);
  ASSERT_EQ(report->diagnoses.size(), report->fail_tableau.size());
  ASSERT_EQ(report->by_severity.size(), report->fail_tableau.size());

  // The rendered report names the violation kind and draws segment bars.
  const std::string text = report->ToString();
  EXPECT_NE(text.find("delay"), std::string::npos);
  EXPECT_NE(text.find("worst interval by misplaced mass"),
            std::string::npos);
  EXPECT_NE(text.find('#'), std::string::npos);
}

TEST_F(ReportTest, SegmentLengthOverride) {
  auto rule = ConservationRule::Create(base_);
  ASSERT_TRUE(rule.ok());
  ReportOptions options;
  options.segment_length = 100;
  auto report = BuildQualityReport(*rule, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->segments.size(), 10u);  // ceil(906 / 100)
}

TEST_F(ReportTest, InvalidOptionsPropagate) {
  auto rule = ConservationRule::Create(base_);
  ASSERT_TRUE(rule.ok());
  ReportOptions options;
  options.fail_c_hat = 1.7;
  EXPECT_FALSE(BuildQualityReport(*rule, options).ok());
}

}  // namespace
}  // namespace conservation::core
