#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "obs/labels.h"
#include "obs/metrics.h"
#include "obs/scrape.h"
#include "obs/window.h"

namespace conservation::obs {
namespace {

// Exposition-format tests build MetricsSnapshot / WindowSnapshot values by
// hand so the expected text is exact, independent of whatever the other
// suites registered in the shared global registry. The live-server tests at
// the bottom only assert properties that survive registry sharing.

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

TEST(SanitizePromNameTest, MapsIllegalCharactersToUnderscore) {
  EXPECT_EQ(SanitizePromName("stream.ticks"), "stream_ticks");
  EXPECT_EQ(SanitizePromName("already_legal:name"), "already_legal:name");
  EXPECT_EQ(SanitizePromName("a-b c/d"), "a_b_c_d");
}

TEST(SanitizePromNameTest, LeadingDigitGetsUnderscorePrefix) {
  EXPECT_EQ(SanitizePromName("9lives"), "_9lives");
  EXPECT_EQ(SanitizePromName("a9"), "a9");  // digits fine after the first
}

TEST(SanitizePromNameTest, EmptyBecomesSingleUnderscore) {
  EXPECT_EQ(SanitizePromName(""), "_");
}

TEST(ToPrometheusTextTest, CountersAndGaugesWithTypeOncePerFamily) {
  MetricsSnapshot snapshot;
  snapshot.counters = {
      {"incr.batches", 7},
      {EncodeLabeledName("incr.batches", {{"tenant", "t0"}}), 3},
      {EncodeLabeledName("incr.batches", {{"tenant", "t1"}}), 4},
  };
  snapshot.gauges = {{"stream.level", 2.5}};
  const std::string text = ToPrometheusText(snapshot, nullptr);

  EXPECT_EQ(CountOccurrences(text, "# TYPE incr_batches counter"), 1u);
  EXPECT_NE(text.find("incr_batches 7\n"), std::string::npos);
  EXPECT_NE(text.find("incr_batches{tenant=\"t0\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("incr_batches{tenant=\"t1\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE stream_level gauge\nstream_level 2.5\n"),
            std::string::npos);
  // TYPE precedes the first sample of its family.
  EXPECT_LT(text.find("# TYPE incr_batches counter"),
            text.find("incr_batches 7"));
  EXPECT_EQ(text.back(), '\n');
}

TEST(ToPrometheusTextTest, HistogramsExportCumulativeBuckets) {
  MetricsSnapshot snapshot;
  HistogramSnapshot histogram;
  histogram.name = EncodeLabeledName("cover.seconds", {{"phase", "seed"}});
  histogram.bounds = {0.1, 1.0};
  histogram.counts = {2, 3, 1};  // per-bucket; exposition is cumulative
  histogram.total_count = 6;
  histogram.sum = 4.25;
  snapshot.histograms.push_back(histogram);
  const std::string text = ToPrometheusText(snapshot, nullptr);

  EXPECT_EQ(CountOccurrences(text, "# TYPE cover_seconds histogram"), 1u);
  EXPECT_NE(text.find("cover_seconds_bucket{phase=\"seed\",le=\"0.1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("cover_seconds_bucket{phase=\"seed\",le=\"1\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("cover_seconds_bucket{phase=\"seed\",le=\"+Inf\"} 6\n"),
            std::string::npos);
  EXPECT_NE(text.find("cover_seconds_sum{phase=\"seed\"} 4.25\n"),
            std::string::npos);
  // The +Inf bucket equals _count — validate_prom.py's invariant.
  EXPECT_NE(text.find("cover_seconds_count{phase=\"seed\"} 6\n"),
            std::string::npos);
}

TEST(ToPrometheusTextTest, WindowBlockExportsSummariesRatesAndSpan) {
  MetricsSnapshot snapshot;
  snapshot.counters = {{"pool.tasks", 10}};
  WindowSnapshot windows;
  windows.span_seconds = 2.0;
  windows.epochs = 4;
  WindowedCounter rate;
  rate.name = "pool.tasks";
  rate.delta = 6;
  rate.rate_per_sec = 3.0;
  windows.counters.push_back(rate);
  WindowedHistogram summary;
  summary.name = EncodeLabeledName("incr.batch_seconds", {{"tenant", "t0"}});
  summary.count = 12;
  summary.sum = 1.5;
  summary.rate_per_sec = 6.0;
  summary.p50 = 0.1;
  summary.p95 = 0.4;
  summary.p99 = 0.45;
  windows.histograms.push_back(summary);
  const std::string text = ToPrometheusText(snapshot, &windows);

  EXPECT_NE(text.find("# TYPE obs_window_span_seconds gauge\n"
                      "obs_window_span_seconds 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE pool_tasks_window_rate gauge\n"
                      "pool_tasks_window_rate 3\n"),
            std::string::npos);
  EXPECT_EQ(CountOccurrences(text, "# TYPE incr_batch_seconds_window summary"),
            1u);
  EXPECT_NE(text.find("incr_batch_seconds_window"
                      "{tenant=\"t0\",quantile=\"0.5\"} 0.1\n"),
            std::string::npos);
  EXPECT_NE(text.find("incr_batch_seconds_window"
                      "{tenant=\"t0\",quantile=\"0.99\"} 0.45\n"),
            std::string::npos);
  EXPECT_NE(text.find("incr_batch_seconds_window_sum{tenant=\"t0\"} 1.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("incr_batch_seconds_window_count{tenant=\"t0\"} 12\n"),
            std::string::npos);
}

TEST(ToPrometheusTextTest, NullWindowOmitsWindowSection) {
  MetricsSnapshot snapshot;
  snapshot.counters = {{"x", 1}};
  const std::string text = ToPrometheusText(snapshot, nullptr);
  EXPECT_EQ(text.find("_window"), std::string::npos);
  EXPECT_EQ(text.find("obs_window_span_seconds"), std::string::npos);
}

TEST(ToPrometheusTextTest, LabelValuesEscapeQuotesAndBackslashes) {
  MetricsSnapshot snapshot;
  snapshot.counters = {
      {EncodeLabeledName("m", {{"k", "a\"b\\c"}}), 1},
  };
  const std::string text = ToPrometheusText(snapshot, nullptr);
  EXPECT_NE(text.find("m{k=\"a\\\"b\\\\c\"} 1\n"), std::string::npos);
}

TEST(ScrapeServerTest, ServesMetricsHealthzAndNotFound) {
  Registry::Global().Counter("test.scrape.live").Add(5);
  ScrapeServer server;
  ScrapeServerOptions options;  // port 0: ephemeral
  options.window_advance_seconds = 0.0;  // this test owns the window cadence
  std::string error;
  ASSERT_TRUE(server.Start(options, &error)) << error;
  ASSERT_TRUE(server.running());
  ASSERT_GT(server.port(), 0);

  const std::string metrics = ScrapeOnce(server.port(), "/metrics");
  EXPECT_NE(metrics.find("# TYPE test_scrape_live counter"),
            std::string::npos);
  EXPECT_NE(metrics.find("test_scrape_live 5"), std::string::npos);
  // The serve loop's own scrape counter is live too.
  EXPECT_NE(metrics.find("obs_scrapes_served"), std::string::npos);

  const std::string json = ScrapeOnce(server.port(), "/metrics.json");
  EXPECT_NE(json.find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(json.find("\"windows\":{"), std::string::npos);

  EXPECT_EQ(ScrapeOnce(server.port(), "/healthz"), "ok\n");
  EXPECT_EQ(ScrapeOnce(server.port(), "/nope"), "not found\n");

  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(ScrapeServerTest, StopIsIdempotentAndServerRestarts) {
  ScrapeServer server;
  ScrapeServerOptions options;
  options.window_advance_seconds = 0.0;
  std::string error;
  ASSERT_TRUE(server.Start(options, &error)) << error;
  const int first_port = server.port();
  server.Stop();
  server.Stop();  // second Stop is a no-op, not a crash
  EXPECT_FALSE(server.running());

  // Start works again after Stop (possibly on a different ephemeral port).
  ASSERT_TRUE(server.Start(options, &error)) << error;
  EXPECT_GT(server.port(), 0);
  EXPECT_NE(ScrapeOnce(server.port(), "/healthz"), "");
  server.Stop();
  (void)first_port;
}

TEST(ScrapeServerTest, SecondStartWhileRunningFails) {
  ScrapeServer server;
  ScrapeServerOptions options;
  options.window_advance_seconds = 0.0;
  std::string error;
  ASSERT_TRUE(server.Start(options, &error)) << error;
  std::string second_error;
  EXPECT_FALSE(server.Start(options, &second_error));
  EXPECT_FALSE(second_error.empty());
  server.Stop();
}

TEST(ScrapeServerTest, WritesPortFileAtomically) {
  const std::string path =
      ::testing::TempDir() + "/scrape_port_file_test.port";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());

  ScrapeServer server;
  ScrapeServerOptions options;
  options.window_advance_seconds = 0.0;
  options.port_file = path;
  std::string error;
  ASSERT_TRUE(server.Start(options, &error)) << error;

  // The file exists by the time Start returns, holds exactly the bound
  // port, and the tmp staging file was renamed away (rename is the atomic
  // commit — a reader can never observe a partial write).
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  int port = 0;
  in >> port;
  EXPECT_EQ(port, server.port());
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());

  server.Stop();
  std::remove(path.c_str());
}

TEST(ScrapeServerTest, PortFileWriteFailureFailsStart) {
  ScrapeServer server;
  ScrapeServerOptions options;
  options.window_advance_seconds = 0.0;
  options.port_file = "/nonexistent-dir-for-sure/x.port";
  std::string error;
  EXPECT_FALSE(server.Start(options, &error));
  EXPECT_NE(error.find("port file"), std::string::npos) << error;
  EXPECT_FALSE(server.running());
}

TEST(AtomicWriteFileTest, ReplacesExistingContentsCompletely) {
  const std::string path = ::testing::TempDir() + "/atomic_write_test.txt";
  std::string error;
  ASSERT_TRUE(AtomicWriteFile(path, "first version\n", &error)) << error;
  ASSERT_TRUE(AtomicWriteFile(path, "v2\n", &error)) << error;
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "v2\n");
  std::remove(path.c_str());
}

TEST(ScrapeServerTest, ScrapeOnceReturnsEmptyWhenNothingListens) {
  ScrapeServer server;
  ScrapeServerOptions options;
  options.window_advance_seconds = 0.0;
  std::string error;
  ASSERT_TRUE(server.Start(options, &error)) << error;
  const int port = server.port();
  server.Stop();
  // The listener is gone; the loopback client reports "" rather than
  // hanging or throwing.
  EXPECT_EQ(ScrapeOnce(port, "/metrics"), "");
}

}  // namespace
}  // namespace conservation::obs
