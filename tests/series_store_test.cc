// Tests for the tiered columnar series store (series/store.h) and its
// serialization (io/store_io.h): the arena round-trips bitwise through
// disk, generators produce identical output running off store views as off
// owning arrays, eviction on a file-backed store drops and refaults pages
// without changing any value, and the cold tier's resident footprint meets
// the <= 2 bytes/tick budget.

#include <gtest/gtest.h>
#include <unistd.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/confidence.h"
#include "core/model.h"
#include "interval/generator.h"
#include "io/store_io.h"
#include "series/cumulative.h"
#include "series/sketch.h"
#include "series/store.h"
#include "test_data.h"

namespace conservation {
namespace {

using core::ConfidenceEvaluator;
using core::ConfidenceModel;
using interval::Candidate;
using interval::GeneratorOptions;
using series::CumulativeSeries;
using series::SeriesSketch;
using series::SeriesStore;

uint64_t Bits(double value) { return std::bit_cast<uint64_t>(value); }

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

CumulativeSeries MakeSeries(int64_t n) {
  return CumulativeSeries(testing_util::RandomDominatedCounts(17, n));
}

void ExpectViewMatches(const SeriesStore& store,
                       const CumulativeSeries& series) {
  const CumulativeSeries view = store.MakeSeriesView();
  ASSERT_EQ(view.n(), series.n());
  EXPECT_EQ(Bits(view.delta()), Bits(series.delta()));
  for (int64_t l = 0; l <= series.n(); ++l) {
    ASSERT_EQ(Bits(view.A(l)), Bits(series.A(l))) << l;
    ASSERT_EQ(Bits(view.B(l)), Bits(series.B(l))) << l;
    ASSERT_EQ(Bits(view.sa_data()[l]), Bits(series.sa_data()[l])) << l;
    ASSERT_EQ(Bits(view.sb_data()[l]), Bits(series.sb_data()[l])) << l;
  }
  for (int64_t i = 1; i <= series.n() + 1; ++i) {
    ASSERT_EQ(Bits(view.suffix_min_gap_data()[i]),
              Bits(series.suffix_min_gap_data()[i]))
        << i;
  }
}

TEST(SeriesStore, BuildViewsMatchOwningArrays) {
  const CumulativeSeries series = MakeSeries(1000);
  const SeriesStore store = SeriesStore::Build(series, 64);
  ASSERT_FALSE(store.empty());
  EXPECT_FALSE(store.file_backed());
  EXPECT_EQ(store.n(), 1000);
  EXPECT_EQ(store.block(), 64);
  ExpectViewMatches(store, series);

  // The arena's sketch tier equals a freshly built sketch byte for byte.
  const SeriesSketch direct = SeriesSketch::Build(series, 64);
  const SeriesSketch view = store.MakeSketchView();
  ASSERT_EQ(view.num_blocks(), direct.num_blocks());
  EXPECT_EQ(std::memcmp(view.maps(), direct.maps(), direct.MapBytes()), 0);
  EXPECT_EQ(std::memcmp(view.codes(), direct.codes(), direct.CodeBytes()), 0);
}

TEST(SeriesStore, GenerationFromStoreViewIsIdentical) {
  const CumulativeSeries series = MakeSeries(900);
  const SeriesStore store = SeriesStore::Build(series, 32);
  const CumulativeSeries view = store.MakeSeriesView();
  const SeriesSketch sketch_view = store.MakeSketchView();

  GeneratorOptions options;
  options.c_hat = 0.6;
  options.epsilon = 0.1;
  options.sketch_block = 32;
  const auto generator =
      interval::MakeGenerator(interval::AlgorithmKind::kAreaBased);

  const ConfidenceEvaluator owned_eval(&series, ConfidenceModel::kBalance);
  const std::vector<Candidate> owned_out =
      generator->GenerateCandidates(owned_eval, options, nullptr);

  const ConfidenceEvaluator view_eval(&view, ConfidenceModel::kBalance);
  // The store's prebuilt sketch tier feeds the screen directly; the
  // generator reuses it instead of building a transient sketch.
  options.sketch_ptr = &sketch_view;
  const std::vector<Candidate> view_out =
      generator->GenerateCandidates(view_eval, options, nullptr);

  ASSERT_EQ(view_out.size(), owned_out.size());
  for (size_t k = 0; k < view_out.size(); ++k) {
    EXPECT_EQ(view_out[k].interval, owned_out[k].interval);
    EXPECT_EQ(Bits(view_out[k].confidence), Bits(owned_out[k].confidence));
  }
}

TEST(SeriesStore, SaveLoadRoundTripsBitwise) {
  const CumulativeSeries series = MakeSeries(2000);
  const SeriesStore built = SeriesStore::Build(series, 256);
  const std::string path = TempPath("store_roundtrip.crs");
  ASSERT_TRUE(io::SaveSeriesStore(built, path).ok());

  auto loaded = io::LoadSeriesStore(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->file_backed());
  ASSERT_EQ(loaded->size(), built.size());
  EXPECT_EQ(std::memcmp(loaded->data(), built.data(), built.size()), 0);
  ExpectViewMatches(*loaded, series);
  std::remove(path.c_str());
}

TEST(SeriesStore, LoadRejectsCorruptHeader) {
  const CumulativeSeries series = MakeSeries(600);
  const SeriesStore built = SeriesStore::Build(series, 64);
  const std::string path = TempPath("store_corrupt.crs");
  ASSERT_TRUE(io::SaveSeriesStore(built, path).ok());

  // Flip a magic byte.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fputc('X', f);
  std::fclose(f);
  EXPECT_FALSE(io::LoadSeriesStore(path).ok());

  // Truncated arena.
  ASSERT_TRUE(io::SaveSeriesStore(built, path).ok());
  ASSERT_EQ(truncate(path.c_str(),
                     static_cast<off_t>(built.size() - SeriesStore::kAlign)),
            0);
  EXPECT_FALSE(io::LoadSeriesStore(path).ok());
  std::remove(path.c_str());
}

TEST(SeriesStore, EvictOnFileBackedStoreRefaultsIdentically) {
  const CumulativeSeries series = MakeSeries(3000);
  const SeriesStore built = SeriesStore::Build(series, 128);
  const std::string path = TempPath("store_evict.crs");
  ASSERT_TRUE(io::SaveSeriesStore(built, path).ok());
  auto loaded = io::LoadSeriesStore(path);
  ASSERT_TRUE(loaded.ok());

  // Touch everything, evict to the sketch tier, then read the full
  // precision columns again: pages refault from the file with identical
  // bits.
  ExpectViewMatches(*loaded, series);
  loaded->Evict(SeriesStore::Tier::kSketch);
  EXPECT_EQ(loaded->tier(), SeriesStore::Tier::kSketch);
  ExpectViewMatches(*loaded, series);

  // Cold tier drops most code columns too; the sketch view still decodes
  // (refaulted) and the store can be warmed back up.
  loaded->Evict(SeriesStore::Tier::kCold);
  const SeriesSketch sketch = loaded->MakeSketchView();
  const SeriesSketch direct = SeriesSketch::Build(series, 128);
  EXPECT_EQ(std::memcmp(sketch.codes(), direct.codes(), direct.CodeBytes()),
            0);
  loaded->Evict(SeriesStore::Tier::kFull);
  ExpectViewMatches(*loaded, series);
  std::remove(path.c_str());
}

TEST(SeriesStore, EvictOnAnonymousStoreIsBookkeepingOnly) {
  const CumulativeSeries series = MakeSeries(1200);
  SeriesStore store = SeriesStore::Build(series, 64);
  // MADV_DONTNEED would zero anonymous pages; Evict must retier without
  // touching the data.
  store.Evict(SeriesStore::Tier::kCold);
  EXPECT_EQ(store.tier(), SeriesStore::Tier::kCold);
  ExpectViewMatches(store, series);
  store.Evict(SeriesStore::Tier::kFull);
  ExpectViewMatches(store, series);
}

TEST(SeriesStore, ColdTierMeetsTwoBytesPerTickBudget) {
  // Large enough that the fixed header/padding overhead amortizes away.
  const int64_t n = 200000;
  const CumulativeSeries series = MakeSeries(n);
  const SeriesStore store = SeriesStore::Build(series, 256);

  const size_t full = store.ResidentBytesEstimate();
  EXPECT_EQ(full, store.total_bytes());

  SeriesStore mutable_store = SeriesStore::Build(series, 256);
  mutable_store.Evict(SeriesStore::Tier::kSketch);
  const size_t sketch_resident = mutable_store.ResidentBytesEstimate();
  // Sketch tier: 5 code columns (~5 B/tick) + maps (~0.47 B/tick).
  EXPECT_LT(sketch_resident, static_cast<size_t>(6 * n));
  EXPECT_LT(sketch_resident, full / 6);

  mutable_store.Evict(SeriesStore::Tier::kCold);
  const size_t cold_resident = mutable_store.ResidentBytesEstimate();
  // Acceptance budget: the cold tier (maps + SA codes) holds <= 2 B/tick.
  EXPECT_LE(cold_resident, static_cast<size_t>(2 * n));
}

TEST(SeriesStore, MoveTransfersOwnership) {
  const CumulativeSeries series = MakeSeries(500);
  SeriesStore store = SeriesStore::Build(series, 64);
  const uint8_t* arena = store.data();
  SeriesStore moved = std::move(store);
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(moved.data(), arena);
  ExpectViewMatches(moved, series);
}

}  // namespace
}  // namespace conservation
