// Differential tests for the quantized-sketch anchor screen
// (interval/prune.h): with the screen on, every generator must emit a
// candidate set bit-identical to its unscreened run — on every model ×
// tableau-type × epsilon × series-family combination, at every thread
// count and walk width, on every SIMD backend — because the screen only
// skips anchors whose per-anchor optimum is provably empty. The suite
// also checks the screen's soundness invariant directly (every emitted
// candidate's anchor must survive MayEmit), the prune-counter extremes
// (all-pruned and none-pruned adversarial families), determinism of the
// new counters across thread counts, and the sketch encoder's degenerate
// blocks (constant values, the +infinity suffix sentinel).
//
// This suite also runs under the ASan/TSan ctest configurations
// (tools/sanitizer_smoke.sh) to cover the shared read-only screen.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <tuple>
#include <vector>

#include "core/confidence.h"
#include "core/model.h"
#include "interval/generator.h"
#include "interval/kernel_simd.h"
#include "interval/prune.h"
#include "series/sketch.h"
#include "test_data.h"
#include "util/random.h"

namespace conservation {
namespace {

using core::ConfidenceEvaluator;
using core::ConfidenceModel;
using core::TableauType;
using interval::AlgorithmKind;
using interval::Candidate;
using interval::GeneratorOptions;
using interval::GeneratorStats;
using interval::SketchMode;
using interval::internal::ActiveSimdBackend;
using interval::internal::ScopedSketchScreen;
using interval::internal::SetSimdBackendForTest;
using interval::internal::SimdBackend;
using interval::internal::SimdBackendName;
using interval::internal::SketchScreen;
using interval::internal::SketchScreenEnabled;
using series::SeriesSketch;

class BackendGuard {
 public:
  BackendGuard() : saved_(ActiveSimdBackend()) {}
  ~BackendGuard() { SetSimdBackendForTest(saved_); }

 private:
  const SimdBackend saved_;
};

std::vector<SimdBackend> TestableBackends() {
  std::vector<SimdBackend> backends{SimdBackend::kScalar};
  const SimdBackend active = ActiveSimdBackend();
  if (active != SimdBackend::kScalar) backends.push_back(active);
  return backends;
}

// Adversarial families for the screen:
//   low_conf_hold - b is a fat Poisson stream, a only a few isolated
//                   spikes: hold confidence is tiny everywhere, so a high
//                   c_hat prunes every anchor (the all-pruned extreme).
//   uniform_pass  - a == b, confidence is exactly 1 everywhere: no anchor
//                   can be pruned for hold (the none-pruned extreme), and
//                   every anchor is prunable for fail at a low c_hat.
//   mixed         - random dominated counts; pruned and surviving anchors
//                   interleave, exercising the mixed-group per-anchor scan
//                   and the per-tick refinement path.
//   saturated     - outbound spikes above the inbound baseline: raw areas
//                   go negative, the kernel clamps saturate, and many
//                   sketch blocks are sign-mixed.
//   constant      - a == b == const: every sketch block is degenerate
//                   (zero quantization width).
series::CountSequence MakeFamily(const std::string& family, int64_t n) {
  std::vector<double> a(static_cast<size_t>(n), 0.0);
  std::vector<double> b(static_cast<size_t>(n), 0.0);
  util::Rng rng(29);
  if (family == "mixed") return testing_util::RandomDominatedCounts(11, n);
  if (family == "low_conf_hold") {
    for (int64_t t = 0; t < n; ++t) {
      b[static_cast<size_t>(t)] = 2.0 + static_cast<double>(rng.Poisson(6.0));
      if (t % 97 == 13) a[static_cast<size_t>(t)] = 1.0;
    }
  } else if (family == "uniform_pass") {
    for (int64_t t = 0; t < n; ++t) {
      const double v = 1.0 + static_cast<double>(rng.Poisson(3.0));
      a[static_cast<size_t>(t)] = v;
      b[static_cast<size_t>(t)] = v;
    }
  } else if (family == "saturated") {
    for (int64_t t = 0; t < n; ++t) {
      b[static_cast<size_t>(t)] = 1.0;
      a[static_cast<size_t>(t)] =
          rng.Bernoulli(0.15) ? static_cast<double>(rng.UniformInt(4, 16))
                              : 0.0;
    }
  } else if (family == "constant") {
    for (int64_t t = 0; t < n; ++t) {
      a[static_cast<size_t>(t)] = 3.0;
      b[static_cast<size_t>(t)] = 3.0;
    }
  } else {
    CR_UNREACHABLE();
  }
  auto counts = series::CountSequence::Create(std::move(a), std::move(b));
  CR_CHECK(counts.ok());
  return std::move(counts).value();
}

const std::string kFamilies[] = {"low_conf_hold", "uniform_pass", "mixed",
                                 "saturated", "constant"};
const TableauType kTypes[] = {TableauType::kHold, TableauType::kFail};

// Large enough that the auto gate (n >= 2 * block) engages at the test
// block span, small enough that the exhaustive O(n^2) runs stay fast.
constexpr int64_t kN = 700;
constexpr int64_t kBlock = 32;

uint64_t Bits(double value) { return std::bit_cast<uint64_t>(value); }

GeneratorOptions BaseOptions(TableauType type) {
  GeneratorOptions options;
  options.type = type;
  options.c_hat = type == TableauType::kHold ? 0.9 : 0.3;
  options.epsilon = 0.05;
  options.sketch_block = kBlock;
  return options;
}

void ExpectSameCandidates(const std::vector<Candidate>& got,
                          const std::vector<Candidate>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t k = 0; k < got.size(); ++k) {
    ASSERT_EQ(got[k].interval, want[k].interval) << "k=" << k;
    ASSERT_EQ(Bits(got[k].confidence), Bits(want[k].confidence)) << "k=" << k;
  }
}

// --- Differential: candidates bit-identical, screen on vs off -------------

class SketchPruneDifferential
    : public ::testing::TestWithParam<std::tuple<std::string, TableauType>> {};

TEST_P(SketchPruneDifferential, CandidatesIdenticalAcrossEverything) {
  const auto& [family, type] = GetParam();
  const series::CountSequence counts = MakeFamily(family, kN);
  const series::CumulativeSeries cumulative(counts);

  const AlgorithmKind kinds[] = {
      AlgorithmKind::kExhaustive, AlgorithmKind::kAreaBased,
      AlgorithmKind::kAreaBasedOpt, AlgorithmKind::kNonAreaBased,
      AlgorithmKind::kNonAreaBasedOpt};
  const ConfidenceModel models[] = {ConfidenceModel::kBalance,
                                    ConfidenceModel::kCredit,
                                    ConfidenceModel::kDebit};

  BackendGuard guard;
  for (const ConfidenceModel model : models) {
    const ConfidenceEvaluator eval(&cumulative, model);
    for (const AlgorithmKind kind : kinds) {
      if (model != ConfidenceModel::kBalance &&
          (kind == AlgorithmKind::kNonAreaBased ||
           kind == AlgorithmKind::kNonAreaBasedOpt)) {
        continue;
      }
      const auto generator = interval::MakeGenerator(kind);
      for (const double epsilon : {0.05, 0.5}) {
        GeneratorOptions options = BaseOptions(type);
        options.epsilon = epsilon;
        SCOPED_TRACE(std::string(AlgorithmKindName(kind)) + " model=" +
                     ConfidenceModelName(model) +
                     " eps=" + std::to_string(epsilon));

        options.sketch = SketchMode::kOff;
        const std::vector<Candidate> baseline =
            generator->GenerateCandidates(eval, options, nullptr);

        options.sketch = SketchMode::kAuto;
        ASSERT_TRUE(SketchScreenEnabled(options, kN));
        GeneratorStats seq_stats;
        {
          const std::vector<Candidate> screened =
              generator->GenerateCandidates(eval, options, &seq_stats);
          ExpectSameCandidates(screened, baseline);
        }
        for (const SimdBackend backend : TestableBackends()) {
          SetSimdBackendForTest(backend);
          SCOPED_TRACE(std::string("backend=") + SimdBackendName(backend));
          for (const int threads : {1, 3}) {
            options.num_threads = threads;
            GeneratorStats stats;
            const std::vector<Candidate> screened =
                generator->GenerateCandidates(eval, options, &stats);
            ExpectSameCandidates(screened, baseline);
            // Screen decisions are pure functions of (series, options,
            // anchor): the prune counter must not depend on threading or
            // backend.
            EXPECT_EQ(stats.anchors_pruned, seq_stats.anchors_pruned);
          }
          if (kind == AlgorithmKind::kAreaBasedOpt) {
            options.num_threads = 1;
            for (const int width : {1, 7}) {
              options.walk_width = width;
              GeneratorStats stats;
              const std::vector<Candidate> screened =
                  generator->GenerateCandidates(eval, options, &stats);
              ExpectSameCandidates(screened, baseline);
              EXPECT_EQ(stats.anchors_pruned, seq_stats.anchors_pruned);
            }
            options.walk_width = 0;
          }
          SetSimdBackendForTest(SimdBackend::kScalar);
        }
        options.num_threads = 1;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SketchPruneDifferential,
                         ::testing::Combine(::testing::ValuesIn(kFamilies),
                                            ::testing::ValuesIn(kTypes)));

// --- Prune-rate extremes ---------------------------------------------------

TEST(SketchPruneExtremes, AllPrunedFamilyPrunesEveryAnchor) {
  const series::CountSequence counts = MakeFamily("low_conf_hold", kN);
  const series::CumulativeSeries cumulative(counts);
  const ConfidenceEvaluator eval(&cumulative, ConfidenceModel::kBalance);

  GeneratorOptions options = BaseOptions(TableauType::kHold);  // c_hat = 0.9
  const auto generator = interval::MakeGenerator(AlgorithmKind::kAreaBased);
  GeneratorStats stats;
  const std::vector<Candidate> out =
      generator->GenerateCandidates(eval, options, &stats);
  EXPECT_TRUE(out.empty());
  // Nearly the whole sweep is skipped: the conservative bounds may let a
  // handful of anchors through (measured: 699 of 700 pruned), but the
  // prune rate must stay essentially total and the surviving work a small
  // fraction of the unscreened n^2/2 endpoint sweep.
  EXPECT_GE(stats.anchors_pruned, static_cast<uint64_t>(kN - kN / 100));
  EXPECT_LT(stats.intervals_tested, static_cast<uint64_t>(kN));
  EXPECT_GT(stats.sketch_blocks, 0u);
}

TEST(SketchPruneExtremes, NonePrunedFamilyKeepsEveryAnchor) {
  const series::CountSequence counts = MakeFamily("uniform_pass", kN);
  const series::CumulativeSeries cumulative(counts);
  const ConfidenceEvaluator eval(&cumulative, ConfidenceModel::kBalance);

  // conf == 1 everywhere, so no anchor can be ruled out for hold.
  GeneratorOptions options = BaseOptions(TableauType::kHold);
  const auto generator = interval::MakeGenerator(AlgorithmKind::kAreaBased);
  GeneratorStats stats;
  const std::vector<Candidate> out =
      generator->GenerateCandidates(eval, options, &stats);
  EXPECT_FALSE(out.empty());
  EXPECT_EQ(stats.anchors_pruned, 0u);
}

// --- Screen soundness, asserted directly -----------------------------------

// Every candidate the UNSCREENED generator emits must have a surviving
// anchor under the screen — the no-false-negative invariant, checked
// against the screen object itself rather than through the generator.
class SketchScreenSoundness
    : public ::testing::TestWithParam<std::tuple<std::string, TableauType>> {};

TEST_P(SketchScreenSoundness, EmittedAnchorsSurviveTheScreen) {
  const auto& [family, type] = GetParam();
  const series::CountSequence counts = MakeFamily(family, kN);
  const series::CumulativeSeries cumulative(counts);
  const ConfidenceModel models[] = {ConfidenceModel::kBalance,
                                    ConfidenceModel::kCredit,
                                    ConfidenceModel::kDebit};
  for (const ConfidenceModel model : models) {
    const ConfidenceEvaluator eval(&cumulative, model);
    GeneratorOptions options = BaseOptions(type);
    options.sketch = SketchMode::kOff;
    SCOPED_TRACE(std::string("model=") + ConfidenceModelName(model));

    // Left screens: relaxed (AB family) against the AB run, exact against
    // the exhaustive run.
    for (const bool relaxed : {true, false}) {
      const auto generator = interval::MakeGenerator(
          relaxed ? AlgorithmKind::kAreaBased : AlgorithmKind::kExhaustive);
      const std::vector<Candidate> baseline =
          generator->GenerateCandidates(eval, options, nullptr);
      GeneratorOptions screen_options = options;
      screen_options.sketch = SketchMode::kAuto;
      const ScopedSketchScreen scoped(eval, screen_options,
                                      SketchScreen::Anchor::kLeft, relaxed);
      ASSERT_NE(scoped.get(), nullptr);
      uint64_t blocks = 0;
      for (const Candidate& c : baseline) {
        EXPECT_TRUE(scoped.get()->MayEmit(c.interval.begin, &blocks))
            << "relaxed=" << relaxed << " " << c.interval.ToString();
      }
    }

    // Right screen (balance only) against the NAB run.
    if (model == ConfidenceModel::kBalance) {
      const auto generator =
          interval::MakeGenerator(AlgorithmKind::kNonAreaBased);
      const std::vector<Candidate> baseline =
          generator->GenerateCandidates(eval, options, nullptr);
      GeneratorOptions screen_options = options;
      screen_options.sketch = SketchMode::kAuto;
      const ScopedSketchScreen scoped(eval, screen_options,
                                      SketchScreen::Anchor::kRight,
                                      /*relaxed=*/true);
      ASSERT_NE(scoped.get(), nullptr);
      uint64_t blocks = 0;
      for (const Candidate& c : baseline) {
        EXPECT_TRUE(scoped.get()->MayEmitRight(c.interval.end, &blocks))
            << c.interval.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SketchScreenSoundness,
                         ::testing::Combine(::testing::ValuesIn(kFamilies),
                                            ::testing::ValuesIn(kTypes)));

// --- Gating ----------------------------------------------------------------

TEST(SketchGate, AutoGateAndExplicitOff) {
  GeneratorOptions options;
  options.sketch_block = 256;
  // The env override is not set in the test harness, so resolution falls
  // through to options + the auto gate.
#ifdef CONSERVATION_SKETCH_DISABLED
  EXPECT_FALSE(SketchScreenEnabled(options, 4096));
#else
  EXPECT_TRUE(SketchScreenEnabled(options, 4096));
  EXPECT_TRUE(SketchScreenEnabled(options, 512));
  EXPECT_FALSE(SketchScreenEnabled(options, 511));  // n < 2 * block
  options.sketch = SketchMode::kOff;
  EXPECT_FALSE(SketchScreenEnabled(options, 4096));
#endif
}

// --- Quantization edge cases (satellite d) ---------------------------------

// Exact per-index bracketing over every column of every family, including
// the degenerate all-constant blocks and the +infinity suffix sentinel.
TEST(SketchQuantization, CodesBracketEveryColumnEverywhere) {
  for (const std::string& family : kFamilies) {
    const series::CountSequence counts = MakeFamily(family, 300);
    const series::CumulativeSeries cumulative(counts);
    const SeriesSketch sketch = SeriesSketch::Build(cumulative, 16);
    SCOPED_TRACE(family);

    const auto column_value = [&](SeriesSketch::Column c, int64_t idx) {
      switch (c) {
        case SeriesSketch::kA: return cumulative.a_data()[idx];
        case SeriesSketch::kB: return cumulative.b_data()[idx];
        case SeriesSketch::kSA: return cumulative.sa_data()[idx];
        case SeriesSketch::kSB: return cumulative.sb_data()[idx];
        case SeriesSketch::kS: return cumulative.suffix_min_gap_data()[idx];
        default: CR_UNREACHABLE();
      }
    };
    for (int c = 0; c < SeriesSketch::kNumColumns; ++c) {
      const auto column = static_cast<SeriesSketch::Column>(c);
      for (int64_t idx = 0; idx < sketch.column_length(column); ++idx) {
        const double v = column_value(column, idx);
        const double lo = sketch.CodeLower(column, idx);
        const double hi = sketch.CodeUpper(column, idx);
        ASSERT_FALSE(std::isnan(lo)) << "c=" << c << " idx=" << idx;
        ASSERT_FALSE(std::isnan(hi)) << "c=" << c << " idx=" << idx;
        ASSERT_LE(lo, v) << "c=" << c << " idx=" << idx;
        ASSERT_GE(hi, v) << "c=" << c << " idx=" << idx;
      }
    }

    // The suffix sentinel at index n+1 is +infinity; its block map and
    // decoded upper bound must reproduce it without NaN (inf - inf) codes.
    const int64_t sentinel = cumulative.n() + 1;
    EXPECT_TRUE(std::isinf(sketch.CodeUpper(SeriesSketch::kS, sentinel)));
    EXPECT_FALSE(std::isnan(sketch.CodeLower(SeriesSketch::kS, sentinel)));
  }
}

TEST(SketchQuantization, ConstantBlocksAreExact) {
  // a == b == 3 gives piecewise-linear columns; A and B are exactly linear,
  // so each block spans a nonzero range, while suffix_min_gap is constant 0
  // with a +inf sentinel: its finite blocks must collapse to zero width and
  // decode exactly.
  const series::CountSequence counts = MakeFamily("constant", 128);
  const series::CumulativeSeries cumulative(counts);
  const SeriesSketch sketch = SeriesSketch::Build(cumulative, 16);
  // Stop before the sentinel's own block: there the block span is
  // [0, +inf], width degenerates to 0, and decoding falls back to the
  // (infinite) block bounds for every index it covers — still bracketing,
  // just not exact.
  const int64_t sentinel_block_start = ((cumulative.n() + 1) / 16) * 16;
  for (int64_t i = 1; i < sentinel_block_start; ++i) {
    EXPECT_EQ(Bits(sketch.CodeLower(SeriesSketch::kS, i)), Bits(0.0));
    EXPECT_EQ(Bits(sketch.CodeUpper(SeriesSketch::kS, i)), Bits(0.0));
  }
  // Range bounds touching the sentinel block stay NaN-free: the upper
  // bound is the +inf sentinel itself, the lower bound the block's finite
  // minimum (block granularity unions the whole covering block).
  double lo = 0.0, hi = 0.0;
  sketch.RangeBounds(SeriesSketch::kS, cumulative.n() + 1, cumulative.n() + 1,
                     &lo, &hi);
  EXPECT_FALSE(std::isnan(lo));
  EXPECT_EQ(hi, std::numeric_limits<double>::infinity());
}

}  // namespace
}  // namespace conservation
